(* Candidate custom instructions by dataflow-subgraph enumeration.

   Generalises {!Epic.Custom_gen} (single-use expression trees, the flow
   that rediscovers SHA-256's rotates) to {e convex connected subgraphs}
   of the per-block dataflow DAG, the formulation of the
   application-specific instruction-set literature (Atasu/Kavvadias):

   - nodes are fusable single-cycle ALU operations (unguarded [Bin]s);
   - an interior value may feed {e several} consumers inside the
     subgraph (DAG sharing, not just trees), but never a consumer
     outside it — the custom-operation slot has one output port;
   - external operands are at most [max_inputs] distinct registers (the
     slot has two input ports); embedded constants are free;
   - convexity — no dataflow path leaving the subgraph and re-entering —
     falls out of the single-output rule: interior values cannot escape,
     every chain inside the subgraph ends at the root, and all nodes
     precede the root in block order.  {!convex} re-checks it
     explicitly; the qcheck suite asserts it on random programs.

   Isomorphic candidates are folded by {e structural hashing}: each
   subgraph is canonicalised (commutative operands sorted by shape,
   external inputs numbered by first occurrence in the canonical
   traversal) and keyed by the printed expression, so a pattern that
   appears under different register names — or with commuted operands —
   is evaluated once per campaign rather than once per occurrence. *)

module Ir = Epic_mir.Ir
module CG = Epic.Custom_gen
module Interp = Epic_mir.Interp

(* One concrete occurrence of a candidate inside a block. *)
type occurrence = {
  oc_root : int;                (* block index of the root instruction *)
  oc_nodes : int list;          (* sorted indices of all fused nodes (incl. root) *)
  oc_expr : CG.expr;            (* canonical expression *)
  oc_args : Ir.operand array;   (* bindings for X 0 / X 1 (length 2) *)
}

let fusable = function
  | Ir.Add | Ir.Sub | Ir.And | Ir.Or | Ir.Xor | Ir.Shl | Ir.Shr | Ir.Shra
  | Ir.Min | Ir.Max -> true
  | Ir.Mul | Ir.Div | Ir.Rem -> false

let commutative = function
  | Ir.Add | Ir.Mul | Ir.And | Ir.Or | Ir.Xor | Ir.Min | Ir.Max -> true
  | Ir.Sub | Ir.Div | Ir.Rem | Ir.Shl | Ir.Shr | Ir.Shra -> false

(* GPR use counts over the whole function (guard uses are predicates and
   do not contribute).  An interior node may only be fused if every one
   of its uses — anywhere in the function — lies inside the subgraph. *)
let function_use_counts (f : Ir.func) =
  let counts = Hashtbl.create 64 in
  let bump (cls, v) =
    if cls = Ir.Cgpr then
      Hashtbl.replace counts v
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter (fun i -> List.iter bump (Ir.uses_of_inst i)) b.Ir.b_insts;
      List.iter bump (Ir.uses_of_term b.Ir.b_term))
    f.Ir.f_blocks;
  counts

(* ------------------------------------------------------------------ *)
(* Canonicalisation: raw per-node expressions carry external inputs
   tagged by their register; commutative operands are then sorted by an
   input-blind shape string; finally externals are numbered by first
   occurrence in the canonical traversal. *)

type pexpr =
  | PX of int                       (* external input, tagged by vreg *)
  | PC of int                       (* embedded constant *)
  | POp of Ir.binop * pexpr * pexpr

(* Register-blind shape, the sort key for commutative operand pairs: two
   operands that differ only in which external register feeds them
   compare equal and keep their original order (a deterministic
   tie-break). *)
let rec shape = function
  | PX _ -> "x"
  | PC v -> Printf.sprintf "#%d" v
  | POp (op, a, b) ->
    Printf.sprintf "%s(%s,%s)" (Ir.string_of_binop op) (shape a) (shape b)

let rec normalise = function
  | (PX _ | PC _) as e -> e
  | POp (op, a, b) ->
    let a = normalise a and b = normalise b in
    if commutative op && shape b < shape a then POp (op, b, a)
    else POp (op, a, b)

(* Number external inputs in traversal order and produce the final
   candidate expression plus the argument bindings. *)
let to_expr (p : pexpr) =
  let order = ref [] in
  let index r =
    match List.assoc_opt r !order with
    | Some i -> i
    | None ->
      let i = List.length !order in
      order := !order @ [ (r, i) ];
      i
  in
  let rec go = function
    | PX r -> CG.X (index r)
    | PC v -> CG.C v
    | POp (op, a, b) ->
      let a = go a in
      let b = go b in
      CG.Op (op, a, b)
  in
  let e = go p in
  (e, List.map fst !order)

(* ------------------------------------------------------------------ *)
(* Enumeration inside one block. *)

let block_occurrences ~(func : Ir.func) ?(max_ops = 3) ?(max_inputs = 2)
    (b : Ir.block) =
  let insts = Array.of_list b.Ir.b_insts in
  let n = Array.length insts in
  let use_counts = function_use_counts func in
  let eligible k =
    match (insts.(k).Ir.kind, insts.(k).Ir.guard) with
    | Ir.Bin (op, _, _, _), None -> fusable op
    | _ -> false
  in
  (* def_once.(v) = Some k iff vreg v is defined exactly once in this
     block, by the eligible node k.  Single definition means an internal
     producer-consumer edge can never be invalidated by a redefinition. *)
  let def_once = Hashtbl.create 16 in
  Array.iteri
    (fun k (i : Ir.inst) ->
      List.iter
        (fun (cls, v) ->
          if cls = Ir.Cgpr then
            if Hashtbl.mem def_once v then Hashtbl.replace def_once v None
            else Hashtbl.replace def_once v (if eligible k then Some k else None))
        (Ir.defs_of_inst i))
    insts;
  let producer v =
    match Hashtbl.find_opt def_once v with Some (Some k) -> Some k | _ -> None
  in
  let defs_gpr k =
    List.filter_map
      (fun (cls, v) -> if cls = Ir.Cgpr then Some v else None)
      (Ir.defs_of_inst insts.(k))
  in
  let def_of k = match defs_gpr k with [ d ] -> d | _ -> -1 in
  (* Is register [r] (re)defined at any index in (lo, hi)? *)
  let redefined r lo hi =
    let hit = ref false in
    for k = lo + 1 to hi - 1 do
      if List.mem r (defs_gpr k) then hit := true
    done;
    !hit
  in
  let operands k =
    match insts.(k).Ir.kind with
    | Ir.Bin (op, _, a, b) -> (op, a, b)
    | _ -> invalid_arg "Subgraph.operands: not a Bin"
  in
  let occs = ref [] in
  for root = n - 1 downto 0 do
    if eligible root then begin
      (* Bounded backward cone of eligible producers. *)
      let cone = ref [] in
      let rec grow k =
        let _, a, b = operands k in
        List.iter
          (fun (o : Ir.operand) ->
            match o with
            | Ir.Imm _ -> ()
            | Ir.Reg r ->
              (match producer r with
               | Some d when d < k && not (List.mem d !cone) ->
                 if List.length !cone < 12 then begin
                   cone := d :: !cone;
                   grow d
                 end
               | _ -> ()))
          [ a; b ]
      in
      grow root;
      let cone = List.sort compare !cone in
      (* Every subset of the cone of size < max_ops, plus the root. *)
      let rec subsets acc budget = function
        | [] -> [ acc ]
        | d :: rest ->
          if budget = 0 then [ acc ]
          else subsets acc budget rest @ subsets (d :: acc) (budget - 1) rest
      in
      let candidate_sets = subsets [] (max_ops - 1) cone in
      let seen_exprs = ref [] in
      List.iter
        (fun interior ->
          if interior <> [] then begin
            let nodes = List.sort compare (root :: interior) in
            let in_s k = List.mem k nodes in
            (* Single output port: every use of an interior value — in
               this block, other blocks, terminators — must be a node of
               the subgraph. *)
            let uses_inside v =
              List.fold_left
                (fun acc k ->
                  let _, a, b = operands k in
                  List.fold_left
                    (fun acc (o : Ir.operand) ->
                      match o with Ir.Reg r when r = v -> acc + 1 | _ -> acc)
                    acc [ a; b ])
                0 nodes
            in
            let closed =
              List.for_all
                (fun u ->
                  let d = def_of u in
                  let total =
                    Option.value ~default:0 (Hashtbl.find_opt use_counts d)
                  in
                  total > 0 && uses_inside d = total)
                interior
            in
            (* External operands must be stable: the hardware reads them
               when the root issues, so no redefinition may sit between
               the fused reader and the root. *)
            let stable =
              List.for_all
                (fun u ->
                  let _, a, b = operands u in
                  List.for_all
                    (fun (o : Ir.operand) ->
                      match o with
                      | Ir.Imm _ -> true
                      | Ir.Reg r ->
                        (match producer r with
                         | Some d when d < u && in_s d -> true  (* internal edge *)
                         | _ -> not (redefined r u (root + 1))))
                    [ a; b ])
                nodes
            in
            if closed && stable then begin
              (* Build the canonical expression; count external inputs. *)
              let rec pexpr_of k =
                let op, a, b = operands k in
                let conv (o : Ir.operand) =
                  match o with
                  | Ir.Imm v -> PC v
                  | Ir.Reg r ->
                    (match producer r with
                     | Some d when d < k && in_s d -> pexpr_of d
                     | _ -> PX r)
                in
                POp (op, conv a, conv b)
              in
              let expr, ext = to_expr (normalise (pexpr_of root)) in
              let n_ext = List.length ext in
              if n_ext >= 1 && n_ext <= max_inputs then begin
                let key = CG.expr_to_string expr in
                (* One occurrence per (root, canonical expr). *)
                if not (List.mem key !seen_exprs) then begin
                  seen_exprs := key :: !seen_exprs;
                  let args = Array.make 2 (Ir.Imm 0) in
                  List.iteri (fun i r -> args.(i) <- Ir.Reg r) ext;
                  occs :=
                    { oc_root = root; oc_nodes = nodes; oc_expr = expr;
                      oc_args = args }
                    :: !occs
                end
              end
            end
          end)
        candidate_sets
    end
  done;
  !occs

(* Explicit convexity check (tests): along the dataflow edges of the
   block, no path from a subgraph node may re-enter the subgraph through
   an outside node. *)
let convex (b : Ir.block) (nodes : int list) =
  let insts = Array.of_list b.Ir.b_insts in
  let n = Array.length insts in
  let in_s k = List.mem k nodes in
  (* taint.(v) = the value of vreg v currently derives from the subgraph
     through at least one outside node. *)
  let escaped = Hashtbl.create 16 in     (* vreg -> true *)
  let defined_by_s = Hashtbl.create 16 in
  let violation = ref false in
  for k = 0 to n - 1 do
    let i = insts.(k) in
    let reads_escaped =
      List.exists
        (fun (cls, v) ->
          cls = Ir.Cgpr && Hashtbl.find_opt escaped v = Some true)
        (Ir.uses_of_inst i)
    in
    let reads_s =
      List.exists
        (fun (cls, v) ->
          cls = Ir.Cgpr && Hashtbl.find_opt defined_by_s v = Some true)
        (Ir.uses_of_inst i)
    in
    if in_s k && reads_escaped then violation := true;
    List.iter
      (fun (cls, v) ->
        if cls = Ir.Cgpr then
          if in_s k then begin
            Hashtbl.replace defined_by_s v true;
            Hashtbl.replace escaped v false
          end
          else begin
            Hashtbl.replace escaped v (reads_s || reads_escaped);
            Hashtbl.replace defined_by_s v false
          end)
      (Ir.defs_of_inst i)
  done;
  not !violation

(* ------------------------------------------------------------------ *)
(* Whole-program identification with structural folding. *)

let count_ops e =
  let rec go = function
    | CG.X _ | CG.C _ -> 0
    | CG.Op (_, a, b) -> 1 + go a + go b
  in
  go e

let name_of_expr e =
  let s = CG.expr_to_string e in
  Printf.sprintf "GEN_%06X" (Hashtbl.hash s land 0xFFFFFF)

let enumerate ?(max_ops = 3) ?(max_inputs = 2) ?(top = 5) ?(entry = "main")
    ?custom (p : Ir.program) =
  let profile = (Interp.run ?custom p ~entry).Interp.block_counts in
  let weight fname bid =
    Option.value ~default:0 (Hashtbl.find_opt profile (fname, bid))
  in
  let table : (string, CG.expr * int * int * int * int) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          let w = weight f.Ir.f_name b.Ir.b_id in
          List.iter
            (fun occ ->
              let key = CG.expr_to_string occ.oc_expr in
              let fused = List.length occ.oc_nodes in
              let saved = fused - 1 in
              let _, st, dy, sv, _ =
                Option.value ~default:(occ.oc_expr, 0, 0, 0, fused)
                  (Hashtbl.find_opt table key)
              in
              Hashtbl.replace table key
                (occ.oc_expr, st + 1, dy + w, sv + (saved * w), fused))
            (block_occurrences ~func:f ~max_ops ~max_inputs b))
        f.Ir.f_blocks)
    p.Ir.p_funcs;
  Hashtbl.fold
    (fun _key (expr, st, dy, sv, fused) acc ->
      let inputs =
        let rec go = function
          | CG.X k -> k + 1
          | CG.C _ -> 0
          | CG.Op (_, a, b) -> max (go a) (go b)
        in
        go expr
      in
      { CG.cg_name = name_of_expr expr;
        cg_expr = expr;
        cg_inputs = max 1 inputs;
        cg_ops = max fused (count_ops expr);
        cg_static = st;
        cg_dynamic = dy;
        cg_saved_ops = sv }
      :: acc)
    table []
  |> List.filter (fun (c : CG.candidate) -> c.CG.cg_saved_ops > 0)
  |> List.sort (fun (a : CG.candidate) (b : CG.candidate) ->
         match compare b.CG.cg_saved_ops a.CG.cg_saved_ops with
         | 0 -> compare a.CG.cg_name b.CG.cg_name  (* deterministic ties *)
         | c -> c)
  |> List.filteri (fun i _ -> i < top)

(* ------------------------------------------------------------------ *)
(* Rewriting a candidate set into a program copy. *)

let apply_one (p : Ir.program) (c : CG.candidate) =
  let rewritten = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          let occs =
            block_occurrences ~func:f ~max_ops:(max 2 c.CG.cg_ops) b
            |> List.filter (fun o ->
                   CG.expr_to_string o.oc_expr = CG.expr_to_string c.CG.cg_expr)
          in
          if occs <> [] then begin
            let insts = Array.of_list b.Ir.b_insts in
            List.iter
              (fun occ ->
                match insts.(occ.oc_root).Ir.kind with
                | Ir.Bin (_, d, _, _) ->
                  insts.(occ.oc_root) <-
                    Ir.no_guard
                      (Ir.Custom (c.CG.cg_name, d, occ.oc_args.(0),
                                  occ.oc_args.(1)));
                  incr rewritten
                | _ -> ())
              occs;
            b.Ir.b_insts <- Array.to_list insts
          end)
        f.Ir.f_blocks)
    p.Ir.p_funcs;
  !rewritten

(* Rewrite every candidate of [cands] (in order) into a copy of [p];
   fused producers fall to dead-code elimination after each candidate so
   later candidates see a clean program.  Returns the rewritten copy and
   the total rewrite count. *)
let apply (p : Ir.program) (cands : CG.candidate list) =
  let p = ref (Epic_opt.Common.copy_program p) in
  let total = ref 0 in
  List.iter
    (fun c ->
      let k = apply_one !p c in
      if k > 0 then p := Epic_opt.Dce.run !p;
      total := !total + k)
    cands;
  (!p, !total)
