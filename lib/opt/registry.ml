(* Pass registry: every machine-independent optimisation pass registered
   by name with metadata, so that pipelines can be assembled by name from
   the command line (epicc --passes/--disable-pass), the experiment
   harness, and the tests.

   Mutation contract shared by every registered pass: a pass mutates the
   MUTABLE CONTAINERS of the program it is given — block records
   ([b_insts], [b_term]) and function records ([f_blocks], [f_nvregs],
   [f_npregs], [f_frame_bytes]) — but never an instruction record or a
   cons cell in place (both are immutable; rewrites build new lists and
   assign them wholesale).  {!Common.copy_program} therefore only has to
   copy the containers; sharing the instruction lists and [p_globals]
   between the copy and the original is sound. *)

module Ir = Epic_mir.Ir

type pass = {
  pass_name : string;
  pass_descr : string;
  pass_run : Ir.program -> Ir.program;
}

let simplify =
  { pass_name = "simplify-cfg";
    pass_descr =
      "CFG cleaning: constant branches, jump threading, unreachable-block \
       removal, linear-block merging";
    pass_run = Simplify.run }

let inline =
  { pass_name = "inline";
    pass_descr = "bottom-up inlining of small or single-site leaf functions";
    pass_run = Inline.run ?small_threshold:None ?single_site:None }

(* The scalar baseline has few registers: only tiny leaves are worth
   inlining there (mirrors how production compilers weigh inlining against
   register pressure). *)
let inline_small =
  { pass_name = "inline-small";
    pass_descr = "pressure-aware inlining (tiny leaves only, for the SA-110)";
    pass_run = Inline.run ~small_threshold:12 ~single_site:false }

let constfold =
  { pass_name = "constfold";
    pass_descr =
      "block-local constant folding, constant/copy propagation, algebraic \
       simplification, strength reduction";
    pass_run = Constfold.run }

let cse =
  { pass_name = "cse";
    pass_descr =
      "block-local common-subexpression elimination, loads included under a \
       memory generation counter";
    pass_run = Cse.run }

let licm =
  { pass_name = "licm";
    pass_descr = "loop-invariant code motion to fresh preheaders";
    pass_run = Licm.run }

let dce =
  { pass_name = "dce";
    pass_descr = "liveness-based dead-code elimination";
    pass_run = Dce.run }

let if_convert =
  { pass_name = "if-convert";
    pass_descr =
      "if-conversion of branch diamonds/triangles to predicated code (EPIC \
       targets only)";
    pass_run = Ifconvert.run ?max_insts:None }

let all = [ simplify; inline; inline_small; constfold; cse; licm; dce; if_convert ]

let names () = List.map (fun p -> p.pass_name) all

let find name = List.find_opt (fun p -> p.pass_name = name) all

let find_exn name =
  match find name with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "unknown pass %s (known: %s)" name
         (String.concat ", " (names ())))

(* Parse a comma-separated pass list as written on the command line. *)
let parse_list s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun n -> n <> "")
  |> List.map find_exn
