(* End-to-end drivers: C source -> optimised MIR -> (EPIC backend ->
   schedule -> assemble -> cycle simulation) and (ARM backend -> SA-110
   cycle simulation).  This is the narrow waist the executables, the
   examples and the experiment harness all share. *)

module Config = Epic_config
module Cfront = Epic_cfront
module Ir = Epic_mir.Ir
module Memmap = Epic_mir.Memmap
module Opt = Epic_opt
module Sched = Epic_sched
module Asm = Epic_asm
module Sim = Epic_sim
module Arm = Epic_arm

type epic_artifacts = {
  ea_config : Config.t;
  ea_mir : Ir.program;          (* after optimisation *)
  ea_layout : Memmap.t;
  ea_unit : Asm.Aunit.t;        (* scheduled symbolic assembly *)
  ea_image : Asm.Aunit.image;   (* resolved instruction stream *)
  ea_words : int64 array;       (* encoded binary *)
  ea_sched : Sched.Sched.stats;
  ea_report : Opt.Pipeline.report;  (* per-pass pipeline report *)
  ea_pre : Sim.Predecode.t;     (* image decoded once for the simulator *)
}

type arm_artifacts = {
  aa_mir : Ir.program;          (* optimised, runtime linked *)
  aa_layout : Memmap.t;
  aa_prog : Arm.Isa.program;
  aa_report : Opt.Pipeline.report;
}

type opt_level = O0 | O1  (** O1 = the full machine-independent pipeline. *)

(* Pipeline control threaded from the command line (epicc --passes,
   --disable-pass, --verify-ir, --diff-check, --time-passes,
   --dump-after) and the experiment harness into the pass manager. *)
type pipeline = {
  pp_passes : string list option;  (* replace the default pass list *)
  pp_disable : string list;        (* drop every occurrence by name *)
  pp_verify : bool;                (* verify MIR between passes *)
  pp_diff_check : bool;            (* differential-check each pass *)
  pp_time : bool;                  (* callers: print the report *)
  pp_dump_after : string list;     (* dump MIR after these passes *)
}

let default_pipeline =
  { pp_passes = None; pp_disable = []; pp_verify = false; pp_diff_check = false;
    pp_time = false; pp_dump_after = [] }

(* ------------------------------------------------------------------ *)
(* Compile cache.  Two levels, both keyed strings ({!Epic_exec.Cache}):

   - [front]: source x front-end options -> optimised MIR + pipeline
     report.  The front end and the optimiser never look at the
     processor configuration, so a 1-4-ALU sweep parses and optimises
     each workload ONCE.  The backend mutates the MIR it compiles
     (regalloc rewrites blocks in place), so a hit hands out a
     [Common.copy_program] copy — the copy discipline of lib/opt.

   - [epic_art] / [arm_art]: the front key x config fingerprint (or the
     ARM target) -> full artifacts.  A hit returns the physically
     identical artifacts; they are safe to share across domains because
     nothing downstream mutates them ([Sim.run] never writes the image,
     [run_epic]/[fault_campaign] build fresh memory per run).

   Keys include every compile option that can change the output.
   Pipelines that dump IR to stderr bypass the cache (a hit would
   silently skip the dump). *)

type front = { fr_mir : Ir.program; fr_report : Opt.Pipeline.report }

module Compile_cache = struct
  type t = {
    front : front Epic_exec.Cache.t;
    epic_art : epic_artifacts Epic_exec.Cache.t;
    arm_art : arm_artifacts Epic_exec.Cache.t;
  }

  let create () =
    { front = Epic_exec.Cache.create ~name:"front" ();
      epic_art = Epic_exec.Cache.create ~name:"artifacts" ();
      arm_art = Epic_exec.Cache.create ~name:"arm-artifacts" () }

  let frontend_stats t = Epic_exec.Cache.stats t.front

  let artifact_stats t =
    let a = Epic_exec.Cache.stats t.epic_art in
    let b = Epic_exec.Cache.stats t.arm_art in
    { Epic_exec.Cache.hits = a.Epic_exec.Cache.hits + b.Epic_exec.Cache.hits;
      misses = a.Epic_exec.Cache.misses + b.Epic_exec.Cache.misses }

  let stats t =
    [ (Epic_exec.Cache.name t.front, frontend_stats t);
      ("artifacts", artifact_stats t) ]
end

(* Key material: every option that can change the compile's output.
   [pp_time] is reporting-only and deliberately excluded. *)
let pipeline_key (pl : pipeline) =
  Printf.sprintf "passes=%s;disable=%s;verify=%b;diff=%b"
    (match pl.pp_passes with
     | None -> "<default>"
     | Some ps -> String.concat "," ps)
    (String.concat "," pl.pp_disable)
    pl.pp_verify pl.pp_diff_check

let front_key ~target ~opt ~predication ~unroll ~pipeline ~source =
  Printf.sprintf "%s|opt=%s|pred=%b|unroll=%d|%s|src=%s" target
    (match opt with O0 -> "O0" | O1 -> "O1")
    predication unroll (pipeline_key pipeline)
    (Digest.to_hex (Digest.string source))

(* A dumping pipeline writes IR to stderr as a side effect; a cache hit
   would silently skip it, so such compiles bypass the cache. *)
let cacheable (pl : pipeline) = pl.pp_dump_after = []

(* Resolve the effective pass list and run it through the pass manager. *)
let run_pipeline (pl : pipeline) ~default mir =
  let base =
    match pl.pp_passes with
    | None -> default
    | Some names -> List.map Opt.Registry.find_exn names
  in
  List.iter (fun n -> ignore (Opt.Registry.find_exn n)) pl.pp_disable;
  let passes =
    List.filter
      (fun (p : Opt.pass) -> not (List.mem p.Opt.pass_name pl.pp_disable))
      base
  in
  let options =
    { Opt.Pipeline.verify = pl.pp_verify; diff_check = pl.pp_diff_check;
      dump_after = pl.pp_dump_after; dump = None }
  in
  Opt.Pipeline.run ~options passes mir

(* Loop unrolling is available (A8 ablation, [?unroll] below) but off by
   default: on these workloads the hand-unrolled kernels already expose
   the ILP, fully flattening the outer loops mostly bloats code (and
   super-linear compile time on the giant blocks), and it slightly hurts
   the DCT through worse I-side behaviour. *)
let default_unroll = 1

(* Front end + optimiser, optionally memoised.  The backend mutates the
   program it compiles, so a cache hit hands out a fresh copy. *)
let compile_front ?cache ~target ~opt ~predication ~unroll ~pipeline ~default
    source =
  let build () =
    let mir = Cfront.compile ~unroll source in
    let mir, report = run_pipeline pipeline ~default mir in
    { fr_mir = mir; fr_report = report }
  in
  match cache with
  | Some c when cacheable pipeline ->
    let key = front_key ~target ~opt ~predication ~unroll ~pipeline ~source in
    let f = Epic_exec.Cache.find_or_add c.Compile_cache.front key build in
    (Opt.Common.copy_program f.fr_mir, f.fr_report)
  | _ ->
    let f = build () in
    (f.fr_mir, f.fr_report)

let compile_epic ?(opt = O1) ?(predication = true) ?(unroll = default_unroll)
    ?mem_bytes ?(pipeline = default_pipeline) ?cache (cfg : Config.t) ~source
    () =
  let cfg = Config.validate_exn cfg in
  let default =
    match opt with
    | O0 -> []
    | O1 -> Opt.default_passes ~epic:true ~predication
  in
  let build () =
    let mir, report =
      compile_front ?cache ~target:"epic" ~opt ~predication ~unroll ~pipeline
        ~default source
    in
    let layout = Memmap.layout ?mem_bytes mir in
    let unit_, sched = Sched.compile_program cfg layout mir in
    let image, words = Asm.assemble cfg unit_ in
    { ea_config = cfg; ea_mir = mir; ea_layout = layout; ea_unit = unit_;
      ea_image = image; ea_words = words; ea_sched = sched; ea_report = report;
      ea_pre = Sim.Predecode.of_image cfg image }
  in
  match cache with
  | Some c when cacheable pipeline ->
    let key =
      Printf.sprintf "%s|cfg=%s|mb=%s"
        (front_key ~target:"epic" ~opt ~predication ~unroll ~pipeline ~source)
        (Config.fingerprint cfg)
        (match mem_bytes with None -> "-" | Some b -> string_of_int b)
    in
    Epic_exec.Cache.find_or_add c.Compile_cache.epic_art key build
  | _ -> build ()

(* Backend-only compile from an already-optimised (and possibly
   rewritten) MIR program — the entry point of the design-space explorer,
   whose candidate rewrites happen at the MIR level and so cannot go
   through [compile_epic]'s source front-end.  The backend mutates the
   program it compiles, so the caller's program is copied first.  [key]
   must identify the MIR (the explorer uses the workload digest plus the
   canonical candidate expressions); the cache key extends it with the
   config fingerprint, the same discipline as [compile_epic]. *)
let compile_epic_mir ?mem_bytes ?cache ~key (cfg : Config.t) ~mir () =
  let cfg = Config.validate_exn cfg in
  let build () =
    let mir = Opt.Common.copy_program mir in
    let layout = Memmap.layout ?mem_bytes mir in
    let unit_, sched = Sched.compile_program cfg layout mir in
    let image, words = Asm.assemble cfg unit_ in
    { ea_config = cfg; ea_mir = mir; ea_layout = layout; ea_unit = unit_;
      ea_image = image; ea_words = words; ea_sched = sched;
      ea_report = Opt.Pipeline.empty_report;
      ea_pre = Sim.Predecode.of_image cfg image }
  in
  match cache with
  | Some c ->
    let key =
      Printf.sprintf "mir|%s|cfg=%s|mb=%s" key (Config.fingerprint cfg)
        (match mem_bytes with None -> "-" | Some b -> string_of_int b)
    in
    Epic_exec.Cache.find_or_add c.Compile_cache.epic_art key build
  | None -> build ()

let entry_of (a : epic_artifacts) =
  match List.assoc_opt "_start" a.ea_image.Asm.Aunit.im_symbols with
  | Some e -> e
  | None -> 0

let run_epic ?fuel ?trace ?profile (a : epic_artifacts) =
  let mem = Memmap.init_memory a.ea_layout a.ea_mir in
  let sink = Option.map Epic_profile.sink profile in
  Sim.run ?fuel ?trace ?sink ~pre:a.ea_pre a.ea_config ~image:a.ea_image ~mem
    ~entry:(entry_of a) ()

(* Profiled run: attach a fresh recorder and return it with the result. *)
let profile_epic ?fuel ?keep_events (a : epic_artifacts) =
  let profile = Epic_profile.create ?keep_events a.ea_config a.ea_image in
  let r = run_epic ?fuel ~profile a in
  (r, profile)

(* Fault-injection campaign over compiled artifacts.  The golden run is
   cross-checked against the MIR reference interpreter (the same
   differential oracle the pass manager uses), so an SDC classification
   is always relative to an independently validated result. *)
let fault_campaign ?seed ?runs ?targets ?fuel_factor ?jobs
    ?(check_golden = true) (a : epic_artifacts) =
  let mem = Memmap.init_memory a.ea_layout a.ea_mir in
  let rp =
    Epic_fault.campaign ?seed ?runs ?targets ?fuel_factor ?jobs
      ~pre:a.ea_pre a.ea_config ~image:a.ea_image ~mem ~entry:(entry_of a) ()
  in
  if check_golden then begin
    let custom = Config.custom_eval a.ea_config in
    let reference =
      (Epic_mir.Interp.run ~custom a.ea_mir ~entry:"main").Epic_mir.Interp.ret
    in
    let reference = Epic_isa.Word.mask a.ea_config.Config.width reference in
    if rp.Epic_fault.rp_golden_ret <> reference then
      Epic_diag.raisef ~code:"fault/golden-mismatch"
        "golden run returned %#x but the MIR reference interpreter returned %#x"
        rp.Epic_fault.rp_golden_ret reference
  end;
  rp

let compile_arm ?(opt = O1) ?(unroll = default_unroll) ?mem_bytes
    ?(pipeline = default_pipeline) ?cache ~source () =
  let default =
    match opt with
    | O0 -> []
    | O1 -> Opt.default_passes ~epic:false ~predication:false
  in
  let build () =
    let mir, report =
      compile_front ?cache ~target:"arm" ~opt ~predication:false ~unroll
        ~pipeline ~default source
    in
    let prog, layout, linked = Arm.compile_program ?mem_bytes mir in
    { aa_mir = linked; aa_layout = layout; aa_prog = prog; aa_report = report }
  in
  match cache with
  | Some c when cacheable pipeline ->
    let key =
      Printf.sprintf "%s|mb=%s"
        (front_key ~target:"arm" ~opt ~predication:false ~unroll ~pipeline
           ~source)
        (match mem_bytes with None -> "-" | Some b -> string_of_int b)
    in
    Epic_exec.Cache.find_or_add c.Compile_cache.arm_art key build
  | _ -> build ()

let run_arm ?fuel (a : arm_artifacts) =
  let mem = Memmap.init_memory a.aa_layout a.aa_mir in
  Arm.Sim.run ?fuel a.aa_prog ~mem ()

(* Convenience wrappers used throughout the tests and examples. *)

let epic_cycles ?opt ?predication ?unroll ?pipeline ?cache (cfg : Config.t)
    ~source ~expected () =
  let a = compile_epic ?opt ?predication ?unroll ?pipeline ?cache cfg ~source () in
  let r = run_epic a in
  (match r.Sim.trap with
   | Some t -> failwith (Format.asprintf "EPIC run trapped: %a" Sim.pp_trap t)
   | None -> ());
  if r.Sim.ret <> expected land 0xFFFFFFFF then
    failwith
      (Printf.sprintf "EPIC run returned %#x, expected %#x" r.Sim.ret
         (expected land 0xFFFFFFFF));
  r.Sim.stats

let arm_cycles ?opt ?unroll ?pipeline ?cache ~source ~expected () =
  let a = compile_arm ?opt ?unroll ?pipeline ?cache ~source () in
  let r = run_arm a in
  if r.Arm.Sim.ret <> expected land 0xFFFFFFFF then
    failwith
      (Printf.sprintf "ARM run returned %#x, expected %#x" r.Arm.Sim.ret
         (expected land 0xFFFFFFFF));
  r.Arm.Sim.stats
