(* Incremental Pareto archive over (cost, time) — the dominance filter of
   the design-space explorer.  The archive replaces the old O(n^2)
   post-filter in epic_explore: points are folded in one at a time, each
   insertion costs O(frontier), and the archive is at all times exactly
   the Pareto frontier of the points inserted so far (minimal AND
   complete — asserted against the brute-force filter by the qcheck
   property suite).

   Dominance is weak with tie-breaking towards the incumbent: a point
   equal to an archived point on both objectives is a duplicate and is
   rejected (the first-inserted representative survives), which fixes the
   old filter's bug of letting equal-cost duplicates both through. *)

type 'a point = {
  pt_cost : int;    (* first objective: FPGA slices (minimise) *)
  pt_time : float;  (* second objective: execution time in ms (minimise) *)
  pt_data : 'a;     (* carried payload, never inspected *)
}

(* A point [a] weakly dominates [b]: no worse on either objective.
   Equality on both counts as dominating, so duplicates are rejected. *)
let dominates ~cost ~time (p : 'a point) =
  p.pt_cost <= cost && p.pt_time <= time

(* Strict dominance, used to discard incumbents: the newcomer must be
   strictly better on at least one objective (a newcomer equal to an
   incumbent was already rejected as a duplicate). *)
let strictly_dominates ~cost ~time (p : 'a point) =
  cost <= p.pt_cost && time <= p.pt_time
  && (cost < p.pt_cost || time < p.pt_time)

(* Invariant: sorted by cost strictly increasing, time strictly
   decreasing — mutually non-dominated by construction. *)
type 'a t = { points : 'a point list; size : int }

let empty = { points = []; size = 0 }
let size t = t.size
let points t = t.points

type verdict = Kept | Dominated | Duplicate

(* Insert one point.  Returns the updated archive and what happened:
   [Kept] (now on the frontier, possibly displacing incumbents),
   [Dominated] (a strictly better archived point exists) or [Duplicate]
   (an archived point ties on both objectives). *)
let add (t : 'a t) (p : 'a point) =
  let cost = p.pt_cost and time = p.pt_time in
  if
    List.exists
      (fun q -> q.pt_cost = cost && q.pt_time = time)
      t.points
  then (t, Duplicate)
  else if List.exists (dominates ~cost ~time) t.points then (t, Dominated)
  else
    let survivors =
      List.filter (fun q -> not (strictly_dominates ~cost ~time q)) t.points
    in
    let rec insert = function
      | [] -> [ p ]
      | q :: rest ->
        if cost < q.pt_cost || (cost = q.pt_cost && time < q.pt_time) then
          p :: q :: rest
        else q :: insert rest
    in
    let points = insert survivors in
    ({ points; size = List.length points }, Kept)

(* Would a point at (cost, time) be rejected?  The cheap lower-bound cut
   of the campaign driver asks this with [time] an optimistic bound: if
   even the bound is dominated, the real point cannot reach the frontier
   and its compilation is skipped. *)
let covers (t : 'a t) ~cost ~time =
  List.exists (dominates ~cost ~time) t.points

(* Reference implementation: the brute-force dominance filter with
   duplicate removal, in the archive's canonical order.  The qcheck suite
   checks [of_list] and [add]-folding agree on random point sets. *)
let of_list (ps : 'a point list) =
  List.fold_left (fun t p -> fst (add t p)) empty ps
