(** Automatic custom-instruction generation — the paper's stated future
    work ("supporting automatic generation of custom instructions",
    Section 6), implemented as a profile-guided flow:

    + profile the program with the MIR reference interpreter (dynamic
      block execution counts);
    + enumerate connected dataflow trees inside basic blocks — fusable
      ALU operations whose intermediate values have a single use — under
      the hardware I/O constraint of the custom-operation slot: at most
      two external register inputs and one output, with constants
      embedded into the functional unit;
    + rank patterns by estimated dynamic savings;
    + materialise winners: synthesise combinational semantics as a
      {!Epic_config.custom_op}, rewrite every occurrence into an
      [X.GEN_xxxxxx] instruction, and extend the configuration.

    Running this on the SHA-256 benchmark rediscovers the rotate
    instructions (OR of SHR and SHL with embedded shift counts) without
    being told about them. *)

(** A candidate pattern: an expression tree over external inputs [X 0],
    [X 1] and embedded constants. *)
type expr =
  | X of int
  | C of int
  | Op of Epic_mir.Ir.binop * expr * expr

type candidate = {
  cg_name : string;     (** Generated mnemonic, e.g. [GEN_0DA185]. *)
  cg_expr : expr;
  cg_inputs : int;      (** External inputs used (1 or 2). *)
  cg_ops : int;         (** Base operations fused. *)
  cg_static : int;      (** Static occurrences in the program. *)
  cg_dynamic : int;     (** Dynamic occurrences (profile-weighted). *)
  cg_saved_ops : int;   (** Dynamic operations eliminated if applied. *)
}

val expr_to_string : expr -> string
val pp_expr : Format.formatter -> expr -> unit

val identify :
  ?max_ops:int -> ?top:int -> ?entry:string ->
  ?custom:(string -> int -> int -> int) ->
  Epic_mir.Ir.program -> candidate list
(** Profile [entry] (default ["main"]; [custom] resolves custom operations
    already present) and return the [top] candidates (default 5) of at
    most [max_ops] fused operations (default 3), best first. *)

val to_custom_op : candidate -> Epic_config.custom_op
(** Synthesised combinational semantics, latency (1 for 2-op chains, 2 for
    deeper trees) and an area estimate. *)

val apply : Epic_mir.Ir.program -> candidate -> Epic_mir.Ir.program * int
(** Rewrite every occurrence of the candidate's pattern (the fused
    producers become dead and fall to DCE); returns the rewrite count.
    Mutates and returns its argument. *)

val specialise :
  ?max_ops:int -> ?rounds:int -> ?min_saved:int ->
  Epic_config.t -> Epic_mir.Ir.program ->
  (Epic_config.t * Epic_mir.Ir.program * (candidate * int) list) option
(** The whole flow, iterated: repeatedly identify the best remaining
    candidate, rewrite, sweep dead code, and extend the configuration —
    up to [rounds] generated instructions (default 4) or until estimated
    savings fall below [min_saved].  Returns the extended configuration,
    the rewritten program (the input is copied, not mutated) and the
    chosen candidates with their rewrite counts; [None] when nothing
    profitable exists. *)
