lib/cfront/lower.ml: Array Ast Epic_mir Format List String
