lib/workloads/epic_workloads.ml: Aes_ref Dct_ref Dijkstra_ref Prng Sha256_ref Sources
