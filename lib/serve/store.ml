(* Persistent on-disk artifact cache: key -> payload files under a
   versioned directory, published atomically via rename.  See the .mli
   for the layout, versioning and concurrency story. *)

let format_version = 1

type stats = { st_hits : int; st_misses : int; st_evictions : int }

type t = {
  root : string;             (* user-supplied directory *)
  entry_dir : string;        (* root/v<version> *)
  max_entries : int option;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable tmp_seq : int;     (* per-process unique temp names *)
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error (_, _, _) -> ())
  | _ -> (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | exception Unix.Unix_error (_, _, _) -> ()

let is_entry name = name <> "" && name.[0] <> '.'

let open_ ?(version = format_version) ?max_entries root =
  let entry_dir = Filename.concat root (Printf.sprintf "v%d" version) in
  mkdir_p entry_dir;
  (* Invalidate other format versions wholesale, and sweep temporaries a
     crashed writer may have left behind. *)
  Array.iter
    (fun name ->
      let path = Filename.concat root name in
      if String.length name > 1 && name.[0] = 'v'
         && name <> Printf.sprintf "v%d" version
         && Sys.is_directory path
      then rm_rf path)
    (Sys.readdir root);
  Array.iter
    (fun name ->
      if not (is_entry name) && name <> "." && name <> ".." then
        try Unix.unlink (Filename.concat entry_dir name)
        with Unix.Unix_error (_, _, _) -> ())
    (Sys.readdir entry_dir);
  { root; entry_dir; max_entries; mutex = Mutex.create ();
    hits = 0; misses = 0; evictions = 0; tmp_seq = 0 }

let dir t = t.root

let path_of_key t key =
  Filename.concat t.entry_dir (Digest.to_hex (Digest.string key))

(* Keys may in principle contain anything; the stored key line is
   escaped so it is newline-free and comparable byte-for-byte. *)
let key_line key = String.escaped key

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let read_entry path ~key =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    (match input_line ic with
     | exception End_of_file -> None
     | line when line <> key_line key -> None  (* collision or foreign file *)
     | _ ->
       let pos = pos_in ic in
       let len = in_channel_length ic - pos in
       if len < 0 then None else Some (really_input_string ic len))

let entry_names t =
  match Sys.readdir t.entry_dir with
  | names -> List.filter is_entry (Array.to_list names)
  | exception Sys_error _ -> []

let entries t = List.length (entry_names t)

(* Oldest-mtime first; ties broken by name so eviction order is stable
   within one second. *)
let evict_over_cap t =
  match t.max_entries with
  | None -> ()
  | Some cap ->
    let stamped =
      List.filter_map
        (fun name ->
          let path = Filename.concat t.entry_dir name in
          match Unix.stat path with
          | st -> Some (st.Unix.st_mtime, name, path)
          | exception Unix.Unix_error (_, _, _) -> None)
        (entry_names t)
    in
    let excess = List.length stamped - cap in
    if excess > 0 then begin
      let doomed =
        List.sort compare stamped |> List.filteri (fun i _ -> i < excess)
      in
      let removed =
        List.fold_left
          (fun n (_, _, path) ->
            match Unix.unlink path with
            | () -> n + 1
            | exception Unix.Unix_error (_, _, _) -> n)
          0 doomed
      in
      locked t (fun () -> t.evictions <- t.evictions + removed)
    end

let add t ~key payload =
  let final = path_of_key t key in
  let tmp =
    locked t (fun () ->
        t.tmp_seq <- t.tmp_seq + 1;
        Filename.concat t.entry_dir
          (Printf.sprintf ".tmp-%d-%d" (Unix.getpid ()) t.tmp_seq))
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc (key_line key);
     output_char oc '\n';
     output_string oc payload;
     close_out oc
   with e -> close_out_noerr oc; (try Unix.unlink tmp with _ -> ()); raise e);
  Unix.rename tmp final;
  evict_over_cap t

let find t ~key =
  match read_entry (path_of_key t key) ~key with
  | Some payload ->
    locked t (fun () -> t.hits <- t.hits + 1);
    Some payload
  | None ->
    locked t (fun () -> t.misses <- t.misses + 1);
    None

let find_or_add t ~key f =
  match find t ~key with
  | Some payload -> (payload, true)
  | None ->
    let payload = f () in
    add t ~key payload;
    (payload, false)

let stats t =
  locked t (fun () ->
      { st_hits = t.hits; st_misses = t.misses; st_evictions = t.evictions })

let reset_stats t =
  locked t (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)

let hit_rate s =
  let total = s.st_hits + s.st_misses in
  if total = 0 then 0. else float_of_int s.st_hits /. float_of_int total

let wipe t =
  List.iter
    (fun name ->
      try Unix.unlink (Filename.concat t.entry_dir name)
      with Unix.Unix_error (_, _, _) -> ())
    (entry_names t)

let stats_to_json t =
  let s = stats t in
  Epic.Profile.Json.Obj
    [ ("hits", Epic.Profile.Json.Int s.st_hits);
      ("misses", Epic.Profile.Json.Int s.st_misses);
      ("evictions", Epic.Profile.Json.Int s.st_evictions);
      ("entries", Epic.Profile.Json.Int (entries t)) ]
