(* Serving-daemon tests: wire-protocol round-trips for every request
   kind, strict-parser diagnostics for malformed input, byte-identity of
   batch responses across --jobs values, disk-cache persistence across
   daemon restarts, the store's atomicity/eviction/versioning mechanics,
   and the memo-cache observation API. *)

module P = Epic_serve.Protocol
module Server = Epic_serve.Server
module Store = Epic_serve.Store
module Config = Epic.Config
module J = Epic.Profile.Json

let tiny_asm = "_start:\n{ MOV r3, #42 }\n{ HALT }\n"

let sha_wl = P.Src_workload { P.wl_name = "sha"; wl_params = [ ("bytes", 64) ] }

let sample_requests =
  [ P.Compile
      { P.c_config = { Config.default with Config.n_alus = 2 };
        c_source = sha_wl; c_opt = Epic.Toolchain.O0; c_predication = false;
        c_unroll = 2; c_fuel = Some 100000 };
    P.Simulate
      { P.s_config = Config.default; s_asm = tiny_asm; s_fuel = None;
        s_mem_bytes = 4096 };
    P.Fault_campaign
      { P.fc_config = { Config.default with Config.issue_width = 2 };
        fc_source = P.Src_text "int main() { return 7; }"; fc_seed = 3;
        fc_runs = 2; fc_targets = [ Epic.Fault.F_gpr; Epic.Fault.F_mem ];
        fc_fuel_factor = 8 };
    P.Fuzz_batch
      { P.fz_seed = 5; fz_cases = 4; fz_kinds = [ Epic.Difftest.K_enc ];
        fz_shrink = false };
    P.Explore_slice
      { P.ex_source = sha_wl; ex_alus = [ 1; 3 ]; ex_issues = [ 2; 4 ] };
    P.Stats; P.Shutdown ]

(* ---- protocol ----------------------------------------------------- *)

let test_roundtrip () =
  List.iteri
    (fun i op ->
      let r = { P.rq_id = Some i; rq_deadline_ms = None; rq_op = op } in
      match P.request_of_line (P.to_line r) with
      | Ok r' ->
        Alcotest.(check bool)
          (Printf.sprintf "round-trip %s" (P.op_name op))
          true (P.request_equal r r')
      | Error d ->
        Alcotest.failf "%s failed to re-parse: %s" (P.op_name op)
          (Epic.Diag.to_string d))
    sample_requests;
  (* An id-less request survives too. *)
  match P.request_of_line (P.to_line { P.rq_id = None; rq_deadline_ms = None; rq_op = P.Stats }) with
  | Ok r -> Alcotest.(check bool) "no id" true (r.P.rq_id = None)
  | Error _ -> Alcotest.fail "id-less request rejected"

let check_bad name line expected_code =
  match P.request_of_line line with
  | Ok _ -> Alcotest.failf "%s: parsed but should not" name
  | Error d -> Alcotest.(check string) name expected_code d.Epic.Diag.code

let test_malformed () =
  check_bad "not json" "{oops" "serve/parse";
  check_bad "unknown op" {|{"op":"teleport"}|} "serve/op";
  check_bad "missing op" {|{"id":1}|} "serve/request";
  check_bad "unknown field"
    {|{"op":"compile","workload":{"name":"sha"},"volume":11}|} "serve/request";
  check_bad "ill-typed id" {|{"id":"seven","op":"stats"}|} "serve/request";
  check_bad "invalid config"
    {|{"op":"compile","config":{"alus":0},"workload":{"name":"sha"}}|}
    "serve/config";
  check_bad "unknown custom"
    {|{"op":"compile","config":{"custom":["WARP"]},"workload":{"name":"sha"}}|}
    "serve/config";
  check_bad "both sources"
    {|{"op":"compile","source":"int main(){return 0;}","workload":{"name":"sha"}}|}
    "serve/request";
  check_bad "missing asm" {|{"op":"simulate"}|} "serve/request"

(* Errors only detectable at evaluation time come back as ok:false
   responses with structured diagnostics. *)
let test_eval_errors () =
  let t = Server.create ~jobs:1 () in
  let lines =
    [ {|{"id":0,"op":"compile","workload":{"name":"quicksort"}}|};
      {|{"id":1,"op":"simulate","asm":"{ FLY b0 }"}|};
      {|{"id":2,"op":"simulate","asm":"_start:\n{ HALT }\n","mem_bytes":-4}|} ]
  in
  let responses = Server.serve_strings t lines in
  Alcotest.(check int) "three responses" 3 (List.length responses);
  List.iter
    (fun line ->
      match J.parse line with
      | Error e -> Alcotest.failf "unparseable response: %s" e
      | Ok j ->
        Alcotest.(check bool) "ok:false" true
          (J.member "ok" j = Some (J.Bool false));
        (match Option.bind (J.member "error" j) (J.member "code") with
         | Some (J.Str code) ->
           Alcotest.(check bool)
             (Printf.sprintf "code %s is serve/*or asm" code)
             true
             (String.length code > 0)
         | _ -> Alcotest.fail "missing error.code"))
    responses;
  (* The workload error specifically carries the serve/workload code. *)
  match J.parse (List.hd responses) with
  | Ok j ->
    (match Option.bind (J.member "error" j) (J.member "code") with
     | Some (J.Str c) -> Alcotest.(check string) "workload code" "serve/workload" c
     | _ -> Alcotest.fail "missing code")
  | Error e -> Alcotest.failf "unparseable: %s" e

(* ---- determinism across jobs -------------------------------------- *)

let work_batch () =
  let reqs =
    List.mapi
      (fun i op -> { P.rq_id = Some i; rq_deadline_ms = None; rq_op = op })
      (List.filter (fun op -> not (P.is_control op)) sample_requests)
  in
  List.map P.to_line reqs

let test_jobs_invariance () =
  let serve jobs =
    Server.serve_strings (Server.create ~jobs ()) (work_batch ())
  in
  let r1 = serve 1 in
  let r3 = serve 3 in
  let r4 = serve 4 in
  Alcotest.(check (list string)) "jobs 1 = jobs 3" r1 r3;
  Alcotest.(check (list string)) "jobs 1 = jobs 4" r1 r4;
  List.iter
    (fun line ->
      match Option.bind (Result.to_option (J.parse line)) (J.member "ok") with
      | Some (J.Bool true) -> ()
      | _ -> Alcotest.failf "work response not ok: %s" line)
    r1

(* ---- disk persistence across restarts ----------------------------- *)

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "epic_serve_test_%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm dir;
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let test_restart_persistence () =
  with_tmpdir @@ fun dir ->
  let batch = work_batch () in
  let n_cacheable = List.length batch in
  (* First daemon lifetime: all misses, entries written. *)
  let store1 = Store.open_ dir in
  let r1 = Server.serve_strings (Server.create ~jobs:2 ~store:store1 ()) batch in
  let s1 = Store.stats store1 in
  Alcotest.(check int) "first run misses" n_cacheable s1.Store.st_misses;
  Alcotest.(check int) "first run hits" 0 s1.Store.st_hits;
  Alcotest.(check int) "entries on disk" n_cacheable (Store.entries store1);
  (* Second daemon lifetime (a restart): same directory, fresh handles —
     every request is a disk hit and the bytes are identical. *)
  let store2 = Store.open_ dir in
  let r2 = Server.serve_strings (Server.create ~jobs:2 ~store:store2 ()) batch in
  let s2 = Store.stats store2 in
  Alcotest.(check int) "second run hits" n_cacheable s2.Store.st_hits;
  Alcotest.(check int) "second run misses" 0 s2.Store.st_misses;
  Alcotest.(check (float 1e-9)) "hit rate" 1.0 (Store.hit_rate s2);
  Alcotest.(check (list string)) "byte-identical responses" r1 r2

(* ---- store mechanics ---------------------------------------------- *)

let entry_path dir key =
  Filename.concat
    (Filename.concat dir (Printf.sprintf "v%d" Store.format_version))
    (Digest.to_hex (Digest.string key))

let test_store_key_guard () =
  with_tmpdir @@ fun dir ->
  let st = Store.open_ dir in
  Store.add st ~key:"alpha" "payload-a";
  Alcotest.(check (option string)) "hit" (Some "payload-a")
    (Store.find st ~key:"alpha");
  (* A foreign file squatting on a key's digest path reads as a miss,
     not as someone else's payload. *)
  let oc = open_out_bin (entry_path dir "beta") in
  output_string oc "gamma\nstolen";
  close_out oc;
  Alcotest.(check (option string)) "foreign file is a miss" None
    (Store.find st ~key:"beta");
  (* Truncated (empty) entry: also a miss. *)
  let oc = open_out_bin (entry_path dir "delta") in
  close_out oc;
  Alcotest.(check (option string)) "empty file is a miss" None
    (Store.find st ~key:"delta")

let test_store_eviction () =
  with_tmpdir @@ fun dir ->
  let st = Store.open_ ~max_entries:2 dir in
  Store.add st ~key:"one" "1";
  Store.add st ~key:"two" "2";
  Store.add st ~key:"three" "3";
  Alcotest.(check int) "capped" 2 (Store.entries st);
  Alcotest.(check int) "evictions counted" 1 (Store.stats st).Store.st_evictions

let test_store_versioning () =
  with_tmpdir @@ fun dir ->
  let st = Store.open_ dir in
  Store.add st ~key:"k" "v";
  Alcotest.(check int) "one entry" 1 (Store.entries st);
  (* A leftover temporary from a crashed writer is swept on open. *)
  let tmp =
    Filename.concat
      (Filename.concat dir (Printf.sprintf "v%d" Store.format_version))
      ".tmp-999-1"
  in
  let oc = open_out_bin tmp in
  output_string oc "torn";
  close_out oc;
  (* Bumping the format version invalidates the old generation wholesale. *)
  let st2 = Store.open_ ~version:(Store.format_version + 1) dir in
  Alcotest.(check int) "new generation empty" 0 (Store.entries st2);
  Alcotest.(check (option string)) "old entry gone" None (Store.find st2 ~key:"k");
  Alcotest.(check bool) "old generation removed" false
    (Sys.file_exists
       (Filename.concat dir (Printf.sprintf "v%d" Store.format_version)));
  (* Re-opening the original version again: the sweep removed it, so the
     store is empty but usable. *)
  let st3 = Store.open_ dir in
  Alcotest.(check bool) "tmp swept" false (Sys.file_exists tmp);
  Alcotest.(check (option string)) "fresh generation" None
    (Store.find st3 ~key:"k")

(* ---- store integrity: checksums, quarantine, scrub ---------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_store_integrity () =
  with_tmpdir @@ fun dir ->
  let st = Store.open_ dir in
  Store.add st ~key:"alpha" "payload-alpha";
  Store.add st ~key:"beta" "payload-beta";
  (* Bit rot: flip one payload bit; the checksum must catch it and the
     entry must be quarantined, never served. *)
  let pa = entry_path dir "alpha" in
  let s = read_file pa in
  let i = String.length s - 3 in
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  write_file pa (Bytes.to_string b);
  Alcotest.(check (option string)) "flipped entry is a miss" None
    (Store.find st ~key:"alpha");
  Alcotest.(check int) "quarantine counted" 1
    (Store.stats st).Store.st_quarantined;
  Alcotest.(check int) "moved to quarantine/" 1 (Store.quarantined_entries st);
  Alcotest.(check bool) "off its key's path" false (Sys.file_exists pa);
  (* Torn write: header intact, payload cut short. *)
  let pb = entry_path dir "beta" in
  let sb = read_file pb in
  write_file pb (String.sub sb 0 (String.length sb - 4));
  Alcotest.(check (option string)) "truncated entry is a miss" None
    (Store.find st ~key:"beta");
  Alcotest.(check int) "second quarantine" 2
    (Store.stats st).Store.st_quarantined;
  (* Recomputation republishes on the same path and hits again. *)
  Store.add st ~key:"alpha" "payload-alpha";
  Alcotest.(check (option string)) "recomputed entry hits"
    (Some "payload-alpha")
    (Store.find st ~key:"alpha")

let test_store_verify () =
  with_tmpdir @@ fun dir ->
  let st = Store.open_ dir in
  Store.add st ~key:"one" "1111";
  Store.add st ~key:"two" "2222";
  Store.add st ~key:"three" "3333";
  Alcotest.(check int) "clean scrub finds nothing" 0 (Store.verify st);
  let p = entry_path dir "two" in
  let s = read_file p in
  write_file p (String.sub s 0 (String.length s - 2));
  Alcotest.(check int) "scrub quarantines the bad entry" 1 (Store.verify st);
  Alcotest.(check int) "survivors stay on disk" 2 (Store.entries st);
  Alcotest.(check (option string)) "survivor still hits" (Some "1111")
    (Store.find st ~key:"one")

let test_store_swept () =
  with_tmpdir @@ fun dir ->
  let st = Store.open_ dir in
  Store.add st ~key:"k" "v";
  (* A crashed writer's temporary in a {e new} format generation must be
     swept by the open that performs the version bump. *)
  let next = Store.format_version + 1 in
  let vdir = Filename.concat dir (Printf.sprintf "v%d" next) in
  Unix.mkdir vdir 0o755;
  write_file (Filename.concat vdir ".tmp-1-1") "torn";
  let st2 = Store.open_ ~version:next dir in
  Alcotest.(check int) "bump open sweeps" 1 (Store.stats st2).Store.st_swept;
  Alcotest.(check int) "nothing left to sweep" 0 (Store.sweep st2);
  (* The sweep count is part of the stats JSON. *)
  (match J.member "swept" (Store.stats_to_json st2) with
   | Some (J.Int 1) -> ()
   | _ -> Alcotest.fail "stats JSON lacks the swept count")

(* ---- protocol limits ---------------------------------------------- *)

let test_oversized () =
  (* One byte over the limit: rejected with the dedicated code. *)
  check_bad "over the line limit"
    (String.make (P.max_line_bytes + 1) 'x')
    "serve/oversized";
  (* Exactly at the limit: admitted past the length check (this junk
     then fails as a plain parse error, not as oversized). *)
  match P.request_of_line (String.make P.max_line_bytes 'x') with
  | Error d ->
    Alcotest.(check string) "at the limit is not oversized" "serve/parse"
      d.Epic.Diag.code
  | Ok _ -> Alcotest.fail "junk line parsed"

(* End-to-end through the bounded pipe reader: an oversized frame gets a
   structured error and the daemon keeps serving the same connection. *)
let test_oversized_pipe () =
  with_tmpdir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let input = Filename.concat dir "input" in
  let oc = open_out_bin input in
  output_string oc (String.make (P.max_line_bytes + 100) 'z');
  output_char oc '\n';
  output_string oc {|{"id":7,"op":"stats"}|};
  output_char oc '\n';
  close_out oc;
  let fd = Unix.openfile input [ Unix.O_RDONLY ] 0 in
  let out_path = Filename.concat dir "out" in
  let out = open_out out_path in
  let t = Server.create ~jobs:1 () in
  let stop = Server.run_pipe t ~in_fd:fd ~out in
  close_out out;
  Unix.close fd;
  Alcotest.(check bool) "served to EOF" true (stop = Server.Eof);
  let ic = open_in out_path in
  let l1 = input_line ic in
  let l2 = input_line ic in
  close_in ic;
  (match Option.bind (Result.to_option (J.parse l1)) (J.member "error") with
   | Some e ->
     Alcotest.(check bool) "oversized code" true
       (J.member "code" e = Some (J.Str "serve/oversized"))
   | None -> Alcotest.failf "expected an error response, got %s" l1);
  match Result.to_option (J.parse l2) with
  | Some j ->
    Alcotest.(check bool) "stats answered after the oversized frame" true
      (J.member "ok" j = Some (J.Bool true) && J.member "id" j = Some (J.Int 7))
  | None -> Alcotest.failf "unparseable second response: %s" l2

(* ---- deadlines ---------------------------------------------------- *)

let spin_asm = "_start:\n{ PBRR b0, @spin }\nspin:\n{ BRU #0 }\n"

let sim_line ?dl ?fuel ~id asm =
  P.to_line
    { P.rq_id = Some id; rq_deadline_ms = dl;
      rq_op =
        P.Simulate
          { P.s_config = Config.default; s_asm = asm; s_fuel = fuel;
            s_mem_bytes = 4096 } }

let response_code line =
  Option.bind
    (Option.bind (Result.to_option (J.parse line)) (J.member "error"))
    (J.member "code")

let response_ok line =
  match Option.bind (Result.to_option (J.parse line)) (J.member "ok") with
  | Some (J.Bool b) -> b
  | _ -> false

let test_deadline () =
  let t = Server.create ~jobs:1 () in
  let one line = List.hd (Server.serve_strings t [ line ]) in
  (* Already expired on arrival: shed before any work happens. *)
  Alcotest.(check bool) "deadline_ms=0 times out" true
    (response_code (one (sim_line ~dl:0 ~id:0 tiny_asm))
     = Some (J.Str "serve/deadline"));
  (* A non-halting program cannot outlive its deadline: the fuel cap
     derived from the deadline stops it and reports the timeout. *)
  Alcotest.(check bool) "spin under a 50 ms deadline times out" true
    (response_code (one (sim_line ~dl:50 ~id:1 spin_asm))
     = Some (J.Str "serve/deadline"));
  (* An explicitly requested tight fuel budget is a legitimate result,
     not a timeout — even under a deadline, because the deadline did not
     tighten the budget. *)
  Alcotest.(check bool) "explicit fuel trap is ok" true
    (response_ok (one (sim_line ~fuel:1000 ~id:2 spin_asm)));
  Alcotest.(check bool) "explicit fuel trap under a deadline is ok" true
    (response_ok (one (sim_line ~dl:50 ~fuel:1000 ~id:3 spin_asm)));
  (* A generous deadline on a terminating program changes nothing. *)
  Alcotest.(check bool) "generous deadline is ok" true
    (response_ok (one (sim_line ~dl:60000 ~id:4 tiny_asm)));
  (* The timeouts were counted. *)
  let stats =
    one (P.to_line { P.rq_id = Some 9; rq_deadline_ms = None; rq_op = P.Stats })
  in
  match
    Option.bind
      (Option.bind (Result.to_option (J.parse stats)) (J.member "result"))
      (J.member "deadline_timeouts")
  with
  | Some (J.Int n) -> Alcotest.(check int) "two timeouts counted" 2 n
  | _ -> Alcotest.fail "stats lack deadline_timeouts"

(* The server-wide default deadline applies to requests that set none. *)
let test_deadline_server_default () =
  let t = Server.create ~jobs:1 ~deadline_ms:0 () in
  let r = List.hd (Server.serve_strings t [ sim_line ~id:0 tiny_asm ]) in
  Alcotest.(check bool) "server default enforced" true
    (response_code r = Some (J.Str "serve/deadline"))

(* ---- overload shedding -------------------------------------------- *)

let test_overload_shedding () =
  let lines =
    List.map
      (fun i -> sim_line ~id:i (Printf.sprintf "_start:\n{ MOV r3, #%d }\n{ HALT }\n" i))
      [ 0; 1; 2; 3; 4; 5 ]
    @ [ P.to_line { P.rq_id = Some 9; rq_deadline_ms = None; rq_op = P.Stats } ]
  in
  let serve () =
    Server.serve_strings (Server.create ~jobs:2 ~queue_max:2 ()) lines
  in
  let rs = serve () in
  Alcotest.(check int) "every request answered" 7 (List.length rs);
  let shed =
    List.filter (fun l -> response_code l = Some (J.Str "serve/overload")) rs
  in
  let ok = List.filter response_ok rs in
  Alcotest.(check int) "four shed" 4 (List.length shed);
  Alcotest.(check int) "two served plus stats" 3 (List.length ok);
  (* Shed responses carry the request id and the queue state. *)
  (match Result.to_option (J.parse (List.hd shed)) with
   | Some j ->
     Alcotest.(check bool) "shed response has an id" true
       (J.member "id" j <> None && J.member "id" j <> Some J.Null)
   | None -> Alcotest.fail "unparseable shed response");
  (* The stats response reports the admission counters. *)
  let stats = List.find (fun l -> not (response_ok l = false)) (List.rev rs) in
  (match
     Option.bind (Result.to_option (J.parse stats)) (J.member "result")
   with
   | Some r ->
     Alcotest.(check bool) "shed counter" true (J.member "shed" r = Some (J.Int 4));
     Alcotest.(check bool) "admitted counter" true
       (J.member "admitted" r = Some (J.Int 2))
   | None -> Alcotest.fail "unparseable stats");
  (* Shedding is deterministic on the in-memory transport (the stats
     response is excluded: it embeds wall-clock measurements). *)
  let work l =
    match Option.bind (Result.to_option (J.parse l)) (J.member "id") with
    | Some (J.Int 9) -> false
    | _ -> true
  in
  Alcotest.(check (list string)) "deterministic under overload"
    (List.filter work rs)
    (List.filter work (serve ()))

(* ---- retry backoff ------------------------------------------------ *)

let test_backoff () =
  let d = Epic.Exec.Backoff.delay_ms ~seed:7 ~key:3 ~attempt:4 () in
  Alcotest.(check (float 1e-9)) "deterministic"
    d
    (Epic.Exec.Backoff.delay_ms ~seed:7 ~key:3 ~attempt:4 ());
  Alcotest.(check bool) "seed changes the jitter" true
    (d <> Epic.Exec.Backoff.delay_ms ~seed:8 ~key:3 ~attempt:4 ());
  Alcotest.(check (float 1e-9)) "attempt 0 is immediate" 0.
    (Epic.Exec.Backoff.delay_ms ~seed:7 ~key:3 ~attempt:0 ());
  for attempt = 1 to 20 do
    let v = Epic.Exec.Backoff.delay_ms ~seed:1 ~key:1 ~attempt () in
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d in (0, window]" attempt)
      true
      (v > 0.
       && v <= Float.min 2000. (25. *. Float.pow 2. (float_of_int (attempt - 1))))
  done

(* ---- socket resilience -------------------------------------------- *)

let test_socket_resilience () =
  with_tmpdir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "sock" in
  let t = Server.create ~jobs:1 () in
  let srv = Domain.spawn (fun () -> Server.run_socket t ~path) in
  let rec await n =
    if Sys.file_exists path then ()
    else if n = 0 then Alcotest.fail "socket never appeared"
    else (Unix.sleepf 0.02; await (n - 1))
  in
  await 250;
  let connect () =
    let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect s (Unix.ADDR_UNIX path);
    s
  in
  (* Client 1 connects and slams the door without a word. *)
  Unix.close (connect ());
  (* Client 2 leaves a partial frame and disconnects before reading the
     response: the daemon's write hits a dead peer and must not die. *)
  let c2 = connect () in
  ignore (Unix.write_substring c2 "{oops" 0 5);
  Unix.close c2;
  (* Client 3 is a well-behaved session: the daemon must still serve it
     and honour its shutdown. *)
  let c3 = connect () in
  let oc = Unix.out_channel_of_descr c3 in
  output_string oc "{\"id\":1,\"op\":\"stats\"}\n{\"op\":\"shutdown\"}\n";
  flush oc;
  Unix.shutdown c3 Unix.SHUTDOWN_SEND;
  let ic = Unix.in_channel_of_descr c3 in
  let rec read acc =
    match input_line ic with
    | l -> read (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let responses = read [] in
  (try Unix.close c3 with Unix.Unix_error (_, _, _) -> ());
  (match responses with
   | stats :: _ ->
     Alcotest.(check bool) "stats served after rude clients" true
       (response_ok stats)
   | [] -> Alcotest.fail "no response on the surviving connection");
  let stop = Domain.join srv in
  Alcotest.(check bool) "daemon honoured shutdown" true
    (stop = Server.Shutdown_requested)

(* ---- bounded latency reservoir ------------------------------------ *)

let test_latency_reservoir () =
  let feed r =
    for i = 1 to 1000 do
      Server.Reservoir.add r (float_of_int i)
    done
  in
  let r = Server.Reservoir.create ~cap:8 () in
  feed r;
  Alcotest.(check int) "count is the true total" 1000
    (Server.Reservoir.count r);
  Alcotest.(check int) "sample bounded by cap" 8 (Server.Reservoir.sampled r);
  let snap = Server.Reservoir.snapshot r in
  Alcotest.(check int) "snapshot is the sample" 8 (Array.length snap);
  Array.iter
    (fun v ->
      Alcotest.(check bool) "sampled value came from the stream" true
        (v >= 1. && v <= 1000.))
    snap;
  (* Replacement is seeded, not random: identical streams keep identical
     samples. *)
  let r2 = Server.Reservoir.create ~cap:8 () in
  feed r2;
  Alcotest.(check (list (float 1e-9))) "deterministic replacement"
    (Array.to_list snap)
    (Array.to_list (Server.Reservoir.snapshot r2));
  (* Below the cap the sample is exact. *)
  let small = Server.Reservoir.create ~cap:8 () in
  List.iter (Server.Reservoir.add small) [ 3.; 1.; 2. ];
  Alcotest.(check (list (float 1e-9))) "exact below the cap" [ 3.; 1.; 2. ]
    (Array.to_list (Server.Reservoir.snapshot small));
  (* The daemon's stats advertise the bound. *)
  let t = Server.create ~jobs:1 () in
  let rs =
    Server.serve_strings t
      [ sim_line ~id:0 tiny_asm;
        P.to_line { P.rq_id = Some 1; rq_deadline_ms = None; rq_op = P.Stats } ]
  in
  let stats = List.nth rs 1 in
  let field path =
    List.fold_left
      (fun j k -> Option.bind j (J.member k))
      (Result.to_option (J.parse stats))
      path
  in
  (match field [ "result"; "latency"; "reservoir_cap" ] with
   | Some (J.Int cap) -> Alcotest.(check bool) "cap advertised" true (cap > 0)
   | _ -> Alcotest.fail "stats lack latency.reservoir_cap");
  match field [ "result"; "latency"; "sampled" ] with
  | Some (J.Int 1) -> ()
  | _ -> Alcotest.fail "stats lack latency.sampled"

(* ---- LRU-ish eviction: hits refresh mtime -------------------------- *)

let test_store_hit_refreshes_mtime () =
  with_tmpdir @@ fun dir ->
  let st = Store.open_ ~max_entries:2 dir in
  Store.add st ~key:"hot" "H";
  Store.add st ~key:"cold" "C";
  (* Age both entries into the past; only the hit refreshes one. *)
  let past = Unix.gettimeofday () -. 3600. in
  Unix.utimes (entry_path dir "hot") past past;
  Unix.utimes (entry_path dir "cold") past past;
  Alcotest.(check (option string)) "hot entry hit" (Some "H")
    (Store.find st ~key:"hot");
  (* Eviction pressure: one entry must go — the cold one, not the one
     that was just served. *)
  Store.add st ~key:"newcomer" "N";
  Alcotest.(check int) "capped" 2 (Store.entries st);
  Alcotest.(check int) "one eviction" 1 (Store.stats st).Store.st_evictions;
  Alcotest.(check (option string)) "repeatedly-hit entry survived" (Some "H")
    (Store.find st ~key:"hot");
  Alcotest.(check (option string)) "stale entry evicted" None
    (Store.find st ~key:"cold")

(* ---- in-flight dedup table ----------------------------------------- *)

let no_retry : exn -> bool = fun _ -> false

let test_dedup_inflight () =
  let d = Server.Dedup.create () in
  let hits = ref 0 in
  let leader = ref None in
  let th =
    Thread.create
      (fun () ->
        leader :=
          Some
            (Server.Dedup.run d ~retry:no_retry
               ~on_hit:(fun () -> ())
               "k"
               (fun () ->
                 Unix.sleepf 0.2;
                 ("payload", true))))
      ()
  in
  Unix.sleepf 0.05;
  (* A second evaluator of the same key while the first is in flight:
     must wait and share, never recompute. *)
  let p, disk, shared =
    Server.Dedup.run d ~retry:no_retry
      ~on_hit:(fun () -> incr hits)
      "k"
      (fun () -> Alcotest.fail "waiter recomputed the payload")
  in
  Thread.join th;
  Alcotest.(check string) "shared the leader's payload" "payload" p;
  Alcotest.(check bool) "waiter does not claim the disk hit" false disk;
  Alcotest.(check bool) "marked as shared" true shared;
  Alcotest.(check int) "one dedup hit" 1 !hits;
  (match !leader with
   | Some ("payload", true, false) -> ()
   | _ -> Alcotest.fail "leader outcome wrong");
  (* The entry's lifetime is the leader's evaluation: afterwards the key
     is free and a new request computes afresh. *)
  let p2, _, shared2 =
    Server.Dedup.run d ~retry:no_retry
      ~on_hit:(fun () -> ())
      "k"
      (fun () -> ("fresh", false))
  in
  Alcotest.(check string) "key free after resolution" "fresh" p2;
  Alcotest.(check bool) "not shared" false shared2;
  (* Failures are shared too: deterministic errors are one evaluation. *)
  let th2 =
    Thread.create
      (fun () ->
        match
          Server.Dedup.run d ~retry:no_retry
            ~on_hit:(fun () -> ())
            "boom"
            (fun () ->
              Unix.sleepf 0.2;
              failwith "deterministic failure")
        with
        | _ -> ()
        | exception Failure _ -> ())
      ()
  in
  Unix.sleepf 0.05;
  (match
     Server.Dedup.run d ~retry:no_retry
       ~on_hit:(fun () -> incr hits)
       "boom"
       (fun () -> Alcotest.fail "waiter recomputed the failure")
   with
   | _ -> Alcotest.fail "leader failure was not shared"
   | exception Failure m ->
     Alcotest.(check string) "shared exception" "deterministic failure" m);
  Thread.join th2

(* ---- adaptive intra-request fan-out -------------------------------- *)

let stats_field line path =
  List.fold_left
    (fun j k -> Option.bind j (J.member k))
    (Result.to_option (J.parse line))
    ("result" :: path)

let test_adaptive_fanout () =
  let big_ops =
    [ P.Fuzz_batch
        { P.fz_seed = 5; fz_cases = 4; fz_kinds = [ Epic.Difftest.K_enc ];
          fz_shrink = false };
      P.Fault_campaign
        { P.fc_config = { Config.default with Config.issue_width = 2 };
          fc_source = P.Src_text "int main() { return 7; }"; fc_seed = 3;
          fc_runs = 2; fc_targets = [ Epic.Fault.F_gpr; Epic.Fault.F_mem ];
          fc_fuel_factor = 8 } ]
  in
  let lines =
    List.mapi
      (fun i op -> P.to_line { P.rq_id = Some i; rq_deadline_ms = None; rq_op = op })
      big_ops
  in
  let stats_line =
    P.to_line { P.rq_id = Some 9; rq_deadline_ms = None; rq_op = P.Stats }
  in
  let serve jobs =
    let t = Server.create ~jobs () in
    (* One request per serve call: each arrives on an idle daemon. *)
    let work = List.concat_map (fun l -> Server.serve_strings t [ l ]) lines in
    let stats = List.hd (Server.serve_strings t [ stats_line ]) in
    (work, stats)
  in
  let w1, s1 = serve 1 in
  let w4, s4 = serve 4 in
  (* The fix for the hardwired ~jobs:1: alone on an idle multi-job
     daemon, fault/fuzz requests must fan out over the pool... *)
  (match stats_field s4 [ "intra_fanout" ] with
   | Some (J.Int n) ->
     Alcotest.(check int) "both big requests fanned out on jobs=4" 2 n
   | _ -> Alcotest.fail "stats lack intra_fanout");
  (match stats_field s1 [ "intra_fanout" ] with
   | Some (J.Int 0) -> ()
   | _ -> Alcotest.fail "jobs=1 daemon must not report fan-out");
  (* ...while staying byte-identical to the serialised result. *)
  Alcotest.(check (list string)) "fanned-out responses byte-identical" w1 w4;
  List.iter
    (fun l -> Alcotest.(check bool) "response ok" true (response_ok l))
    w4

(* ---- concurrent socket serving ------------------------------------- *)

let test_socket_concurrent () =
  with_tmpdir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "sock" in
  let t = Server.create ~jobs:2 () in
  let srv = Domain.spawn (fun () -> Server.run_socket ~max_conns:8 t ~path) in
  let rec await n =
    if Sys.file_exists path then ()
    else if n = 0 then Alcotest.fail "socket never appeared"
    else (Unix.sleepf 0.02; await (n - 1))
  in
  await 250;
  let connect () =
    let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect s (Unix.ADDR_UNIX path);
    s
  in
  let request_lines sock lines =
    let oc = Unix.out_channel_of_descr sock in
    List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
    flush oc;
    Unix.shutdown sock Unix.SHUTDOWN_SEND;
    let ic = Unix.in_channel_of_descr sock in
    let rec read acc =
      match input_line ic with
      | l -> read (l :: acc)
      | exception End_of_file -> List.rev acc
    in
    let rs = read [] in
    (try Unix.close sock with Unix.Unix_error (_, _, _) -> ());
    rs
  in
  (* Every client sends the same expensive requests (they should overlap
     and collapse in flight) plus one request of its own. *)
  let shared_ops =
    [ P.Compile
        { P.c_config = { Config.default with Config.n_alus = 3 };
          c_source = sha_wl; c_opt = Epic.Toolchain.O1; c_predication = true;
          c_unroll = Epic.Toolchain.default_unroll; c_fuel = None };
      P.Explore_slice
        { P.ex_source = sha_wl; ex_alus = [ 1; 2 ]; ex_issues = [ 4 ] } ]
  in
  let n_shared = List.length shared_ops in
  let lines_for ci =
    List.mapi
      (fun i op -> P.to_line { P.rq_id = Some i; rq_deadline_ms = None; rq_op = op })
      shared_ops
    @ [ sim_line ~id:n_shared
          (Printf.sprintf "_start:\n{ MOV r3, #%d }\n{ HALT }\n" (ci + 1)) ]
  in
  let n_clients = 3 in
  let results = Array.make n_clients [] in
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let go = ref false in
  let client ci =
    Mutex.lock mu;
    while not !go do
      Condition.wait cv mu
    done;
    Mutex.unlock mu;
    results.(ci) <- request_lines (connect ()) (lines_for ci)
  in
  let ths = List.init n_clients (fun ci -> Thread.create client ci) in
  Mutex.lock mu;
  go := true;
  Condition.broadcast cv;
  Mutex.unlock mu;
  (* A rude client drops mid-frame while the others are in flight: the
     daemon must shrug and keep serving them. *)
  let rude = connect () in
  ignore (Unix.write_substring rude {|{"id":0,"op":"comp|} 0 18);
  Unix.sleepf 0.05;
  Unix.close rude;
  List.iter Thread.join ths;
  (* Per-connection: complete, ok, and in request order. *)
  Array.iteri
    (fun ci rs ->
      Alcotest.(check int)
        (Printf.sprintf "client %d: all requests answered" ci)
        (n_shared + 1) (List.length rs);
      List.iteri
        (fun i l ->
          Alcotest.(check bool)
            (Printf.sprintf "client %d response %d ok" ci i)
            true (response_ok l);
          match Option.bind (Result.to_option (J.parse l)) (J.member "id") with
          | Some (J.Int id) ->
            Alcotest.(check int)
              (Printf.sprintf "client %d response %d in order" ci i)
              i id
          | _ -> Alcotest.failf "client %d response %d has no id" ci i)
        rs)
    results;
  (* The shared requests must come back byte-identical on every
     connection. *)
  let shared ci = List.filteri (fun i _ -> i < n_shared) results.(ci) in
  for ci = 1 to n_clients - 1 do
    Alcotest.(check (list string))
      (Printf.sprintf "client %d shared responses = client 0" ci)
      (shared 0) (shared ci)
  done;
  (* Control connection: overlapping identical requests were collapsed,
     and shutdown still works. *)
  let ctl =
    request_lines (connect ())
      [ P.to_line { P.rq_id = Some 90; rq_deadline_ms = None; rq_op = P.Stats };
        P.to_line
          { P.rq_id = Some 91; rq_deadline_ms = None; rq_op = P.Shutdown } ]
  in
  (match ctl with
   | [ stats; bye ] ->
     Alcotest.(check bool) "stats ok" true (response_ok stats);
     Alcotest.(check bool) "shutdown ok" true (response_ok bye);
     (match stats_field stats [ "dedup_hits" ] with
      | Some (J.Int n) ->
        Alcotest.(check bool)
          (Printf.sprintf "dedup hits > 0 (got %d)" n)
          true (n > 0)
      | _ -> Alcotest.fail "stats lack dedup_hits")
   | rs -> Alcotest.failf "control connection got %d responses" (List.length rs));
  let stop = Domain.join srv in
  Alcotest.(check bool) "daemon honoured shutdown" true
    (stop = Server.Shutdown_requested)

(* ---- memo-cache observation API ----------------------------------- *)

let test_cache_snapshot_reset () =
  let c = Epic.Exec.Cache.create ~name:"t" () in
  ignore (Epic.Exec.Cache.find_or_add c "k" (fun () -> 1));
  ignore (Epic.Exec.Cache.find_or_add c "k" (fun () -> 2));
  let s = Epic.Exec.Cache.snapshot c in
  Alcotest.(check int) "one miss" 1 s.Epic.Exec.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Epic.Exec.Cache.hits;
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Epic.Exec.Cache.hit_rate s);
  Epic.Exec.Cache.reset_stats c;
  let s0 = Epic.Exec.Cache.snapshot c in
  Alcotest.(check int) "counters zeroed" 0
    (s0.Epic.Exec.Cache.hits + s0.Epic.Exec.Cache.misses);
  (* Entries survive a counter reset: the next lookup is a pure hit. *)
  Alcotest.(check int) "entry kept" 1
    (Epic.Exec.Cache.find_or_add c "k" (fun () -> 3));
  let s1 = Epic.Exec.Cache.snapshot c in
  Alcotest.(check int) "hit after reset" 1 s1.Epic.Exec.Cache.hits;
  Alcotest.(check int) "no miss after reset" 0 s1.Epic.Exec.Cache.misses

let suite =
  [ Alcotest.test_case "protocol round-trip" `Quick test_roundtrip;
    Alcotest.test_case "malformed requests" `Quick test_malformed;
    Alcotest.test_case "evaluation errors" `Quick test_eval_errors;
    Alcotest.test_case "jobs invariance" `Quick test_jobs_invariance;
    Alcotest.test_case "restart persistence" `Quick test_restart_persistence;
    Alcotest.test_case "store key guard" `Quick test_store_key_guard;
    Alcotest.test_case "store eviction" `Quick test_store_eviction;
    Alcotest.test_case "store versioning" `Quick test_store_versioning;
    Alcotest.test_case "store integrity quarantine" `Quick test_store_integrity;
    Alcotest.test_case "store verify scrub" `Quick test_store_verify;
    Alcotest.test_case "store swept counter" `Quick test_store_swept;
    Alcotest.test_case "oversized frames" `Quick test_oversized;
    Alcotest.test_case "oversized frame on a pipe" `Quick test_oversized_pipe;
    Alcotest.test_case "deadlines" `Quick test_deadline;
    Alcotest.test_case "server default deadline" `Quick test_deadline_server_default;
    Alcotest.test_case "overload shedding" `Quick test_overload_shedding;
    Alcotest.test_case "retry backoff" `Quick test_backoff;
    Alcotest.test_case "socket resilience" `Quick test_socket_resilience;
    Alcotest.test_case "latency reservoir" `Quick test_latency_reservoir;
    Alcotest.test_case "store hit refreshes mtime" `Quick
      test_store_hit_refreshes_mtime;
    Alcotest.test_case "in-flight dedup table" `Quick test_dedup_inflight;
    Alcotest.test_case "adaptive intra-request fan-out" `Quick
      test_adaptive_fanout;
    Alcotest.test_case "concurrent socket serving" `Quick
      test_socket_concurrent;
    Alcotest.test_case "cache snapshot/reset" `Quick test_cache_snapshot_reset ]
