lib/sched/epic_sched.ml: Codegen Epic_config Epic_mdes Epic_mir Sched
