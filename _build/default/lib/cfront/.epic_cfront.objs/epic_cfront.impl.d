lib/cfront/epic_cfront.ml: Ast Lexer Lower Parser Printf
