lib/opt/cse.ml: Epic_mir Hashtbl List
