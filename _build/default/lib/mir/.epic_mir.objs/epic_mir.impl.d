lib/mir/epic_mir.ml: Dominators Interp Ir Liveness Memmap
