(* Data-memory layout shared by the MIR interpreter and both backends:
   global placement, stack position, and big-endian byte access (the paper
   adopts a big-endian architecture, Section 3.1). *)

type t = {
  mem_bytes : int;                 (* total data memory size *)
  symbols : (string * int) list;   (* global name -> byte address *)
  globals_end : int;
  stack_top : int;                 (* initial SP; stack grows down *)
}

let default_mem_bytes = 1 lsl 20
let globals_base = 0x1000

let align4 v = (v + 3) land lnot 3

let layout ?(mem_bytes = default_mem_bytes) (p : Ir.program) =
  let addr = ref globals_base in
  let symbols =
    List.map
      (fun (g : Ir.global) ->
        let a = !addr in
        addr := align4 (a + g.Ir.g_bytes);
        (g.Ir.g_name, a))
      p.Ir.p_globals
  in
  if !addr >= mem_bytes - 0x1000 then
    invalid_arg "Memmap.layout: globals do not fit in data memory";
  { mem_bytes; symbols; globals_end = !addr; stack_top = mem_bytes }

let addr_of t name =
  match List.assoc_opt name t.symbols with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Memmap.addr_of: unknown global %s" name)

(* Big-endian byte access on a Bytes.t data memory. *)

let read_u8 m a = Char.code (Bytes.get m a)
let write_u8 m a v = Bytes.set m a (Char.chr (v land 0xFF))

let read_u16 m a = (read_u8 m a lsl 8) lor read_u8 m (a + 1)

let write_u16 m a v =
  write_u8 m a (v lsr 8);
  write_u8 m (a + 1) v

let read_u32 m a = (read_u16 m a lsl 16) lor read_u16 m (a + 2)

let write_u32 m a v =
  write_u16 m a (v lsr 16);
  write_u16 m (a + 2) v

let sign_extend bits v =
  if v land (1 lsl (bits - 1)) <> 0 then v - (1 lsl bits) else v

let read ~size ~(ext : Ir.ext) m a =
  match (size : Ir.mem_size) with
  | Ir.I8 ->
    let v = read_u8 m a in
    (match ext with Ir.Zx -> v | Ir.Sx -> sign_extend 8 v land 0xFFFFFFFF)
  | Ir.I16 ->
    let v = read_u16 m a in
    (match ext with Ir.Zx -> v | Ir.Sx -> sign_extend 16 v land 0xFFFFFFFF)
  | Ir.I32 -> read_u32 m a

let write ~size m a v =
  match (size : Ir.mem_size) with
  | Ir.I8 -> write_u8 m a v
  | Ir.I16 -> write_u16 m a v
  | Ir.I32 -> write_u32 m a v

let init_memory t (p : Ir.program) =
  let m = Bytes.make t.mem_bytes '\000' in
  List.iter
    (fun (g : Ir.global) ->
      let base = addr_of t g.Ir.g_name in
      Array.iteri (fun k v -> write_u32 m (base + (4 * k)) (v land 0xFFFFFFFF)) g.Ir.g_init)
    p.Ir.p_globals;
  m
