(* epic_explore: production-scale design-space exploration.

   Sweeps the configuration axes of the customisable processor (ALUs,
   issue width, register files, immediate payload, pipeline depth) x
   candidate custom-instruction sets discovered by the MIR
   dataflow-subgraph enumerator, costs each point with the calibrated
   area/clock model plus a cycle-level simulation, prunes dominated
   points through an incremental Pareto archive, and persists point
   evaluations in the same on-disk store epicd uses (--cache-dir), so
   repeated campaigns hit disk instead of the compiler.

   Determinism: stdout and the --json document are byte-identical for
   every --jobs value and for cold vs warm caches; wall time, hit rates
   and wave progress go to stderr (and --stats-json). *)

open Cmdliner

module C = Epic_explore.Campaign
module Pareto = Epic_explore.Pareto
module S = Epic.Workloads.Sources
module Store = Epic_serve.Store
module Json = Epic.Profile.Json

let axis_conv ~flag s =
  match
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
    |> List.map int_of_string_opt |> List.map Option.to_list |> List.concat
  with
  | [] -> failwith (Printf.sprintf "%s: expected a comma-separated int list" flag)
  | l -> l

let axis_term name doc =
  Arg.(value & opt (some string) None & info [ name ] ~docv:"LIST" ~doc)

(* A user-supplied source becomes a one-workload campaign; the expected
   return value is taken from the MIR reference interpreter, the same
   oracle the pass manager trusts. *)
let benchmark_of_file path =
  let source = Cli_common.read_file path in
  let program = Epic.Opt.for_epic (Epic.Cfront.compile source) in
  let expected =
    (Epic.Interp.run program ~entry:"main").Epic.Interp.ret land 0xFFFFFFFF
  in
  { S.bm_name = Filename.remove_extension (Filename.basename path);
    bm_source = source; bm_expected = expected;
    bm_description = "user workload " ^ path }

let small_workloads () =
  [ S.sha_benchmark ~bytes:64 ();
    S.aes_benchmark ~iters:4 ();
    S.dct_benchmark ~width:16 ~height:16 ();
    S.dijkstra_benchmark ~nodes:12 () ]

let cand_names (cands : Epic.Custom_gen.candidate list) k =
  if k = 0 then "-"
  else
    String.concat ","
      (List.filteri (fun i _ -> i < k) cands
       |> List.map (fun (c : Epic.Custom_gen.candidate) -> c.Epic.Custom_gen.cg_name))

let print_frontiers (r : C.result) =
  Printf.printf
    "campaign: grid %d, sampled %d, evaluated %d, pruned %d, invalid %d, \
     errors %d\n"
    r.C.r_grid r.C.r_sampled r.C.r_counts.C.c_evaluated
    r.C.r_counts.C.c_pruned r.C.r_counts.C.c_invalid r.C.r_counts.C.c_errors;
  List.iter
    (fun (wname, points) ->
      let cands =
        Option.value ~default:[] (List.assoc_opt wname r.C.r_candidates)
      in
      Printf.printf "\n== %s: %d candidate(s), %d Pareto-optimal design(s) ==\n"
        wname (List.length cands) (List.length points);
      List.iter
        (fun (c : Epic.Custom_gen.candidate) ->
          Printf.printf "  candidate %-12s %s\n" c.Epic.Custom_gen.cg_name
            (Epic.Custom_gen.expr_to_string c.Epic.Custom_gen.cg_expr))
        cands;
      Printf.printf "%8s %6s %7s %9s %10s  %-5s %-6s %-5s %-6s %-5s %-8s %-7s %s\n"
        "slices" "BRAMs" "MHz" "cycles" "time(ms)" "alus" "issue" "gprs"
        "preds" "btrs" "payload" "stages" "candidates";
      List.iter
        (fun (pt : C.eval Pareto.point) ->
          let e = pt.Pareto.pt_data in
          let p = e.C.e_point in
          let cycles =
            match e.C.e_outcome with C.Measured n -> n | C.Failed _ -> 0
          in
          Printf.printf
            "%8d %6d %7.1f %9d %10.4f  %-5d %-6d %-5d %-6d %-5d %-8d %-7d %s\n"
            e.C.e_slices e.C.e_brams e.C.e_clock cycles pt.Pareto.pt_time
            p.C.p_alus p.C.p_issue p.C.p_gprs p.C.p_preds p.C.p_btrs
            p.C.p_payload p.C.p_stages
            (cand_names cands p.C.p_cands))
        points)
    r.C.r_archives

let write_file path body =
  let oc = open_out_bin path in
  output_string oc body;
  output_char oc '\n';
  close_out oc

let run input budget seed wave no_prune candidates max_ops cache_dir
    cache_entries resume small alus issues gprs preds btrs payloads stages
    max_alus sweep_issue json_out stats_out expect_hit_rate jobs =
  Cli_common.handle_errors @@ fun () ->
  let workloads =
    match input with
    | Some path -> [ benchmark_of_file path ]
    | None -> if small then small_workloads () else S.all ()
  in
  let d = C.default_axes in
  let axis flag override legacy current =
    match (override, legacy) with
    | Some s, _ -> axis_conv ~flag s
    | None, Some l -> l
    | None, None -> current
  in
  let axes =
    { C.ax_alus =
        axis "alus" alus
          (Option.map (fun n -> List.init n (fun i -> i + 1)) max_alus)
          d.C.ax_alus;
      ax_issues =
        axis "issues" issues
          (if sweep_issue then Some [ 1; 2; 4 ] else None)
          d.C.ax_issues;
      ax_gprs = axis "gprs" gprs None d.C.ax_gprs;
      ax_preds = axis "preds" preds None d.C.ax_preds;
      ax_btrs = axis "btrs" btrs None d.C.ax_btrs;
      ax_payloads = axis "payloads" payloads None d.C.ax_payloads;
      ax_stages = axis "stages" stages None d.C.ax_stages }
  in
  let opts =
    { C.o_budget = budget; o_seed = seed; o_jobs = jobs; o_wave = wave;
      o_prune = not no_prune; o_max_cands = candidates; o_max_ops = max_ops;
      o_cache_dir = cache_dir; o_cache_entries = cache_entries;
      o_resume = resume; o_workloads = workloads; o_axes = axes }
  in
  let result, cs =
    Epic.Exec.run_campaign ~label:"epic_explore" ~jobs
      ~notes:(fun (r : C.result) ->
        [ ("pruned", r.C.r_counts.C.c_pruned);
          ("invalid", r.C.r_counts.C.c_invalid);
          ("errors", r.C.r_counts.C.c_errors) ])
      ~tasks:(fun (r : C.result) -> r.C.r_counts.C.c_evaluated)
      (fun () -> C.run ~progress:prerr_endline opts)
  in
  print_frontiers result;
  (match json_out with
   | Some path -> write_file path (Json.to_string result.C.r_doc)
   | None -> ());
  (* Volatile observability: wall time and store traffic never enter
     stdout or the frontier document. *)
  let store_stats =
    Option.map (fun st -> (Store.stats st, Store.stats_to_json st))
      result.C.r_store
  in
  (match stats_out with
   | Some path ->
     let doc =
       Json.Obj
         ([ ("campaign", Epic.Exec.campaign_stats_to_json cs) ]
          @ (match store_stats with
             | Some (s, j) ->
               [ ("store", j);
                 ("store_hit_rate", Json.Float (Store.hit_rate s)) ]
             | None -> []))
     in
     write_file path (Json.to_string doc)
   | None -> ());
  (match (expect_hit_rate, store_stats) with
   | Some want, Some (s, _) ->
     let got = Store.hit_rate s in
     if got < want then begin
       Printf.eprintf
         "error: store hit rate %.3f below the required %.3f (hits=%d \
          misses=%d)\n"
         got want s.Store.st_hits s.Store.st_misses;
       exit 1
     end
     else
       Printf.eprintf "store hit rate %.3f (>= %.3f required)\n" got want
   | Some _, None ->
     Printf.eprintf "error: --expect-hit-rate requires --cache-dir\n";
     exit 1
   | None, _ -> ())

let cmd =
  let input =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"FILE"
           ~doc:"Explore a single EPIC-C source instead of the built-in \
                 benchmark suite (expected result taken from the MIR \
                 reference interpreter).")
  in
  let budget =
    Arg.(value & opt int 10_000
         & info [ "budget" ] ~docv:"N"
           ~doc:"Design points to evaluate; when the grid is larger it is \
                 sampled deterministically (see --seed).")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N" ~doc:"Sampling seed (with --budget).")
  in
  let wave =
    Arg.(value & opt int 256
         & info [ "wave" ] ~docv:"N"
           ~doc:"Points per pruning wave: dominance decisions use the \
                 archive frozen at the previous wave boundary, keeping \
                 output byte-identical for any --jobs.")
  in
  let no_prune =
    Arg.(value & flag
         & info [ "no-prune" ]
           ~doc:"Disable the heuristic lower-bound cut (exact sweep: every \
                 sampled valid point is evaluated).")
  in
  let candidates =
    Arg.(value & opt int 3
         & info [ "candidates" ] ~docv:"K"
           ~doc:"Custom-instruction candidates per workload; prefixes of \
                 the ranked list (0..K) form the candidate axis.")
  in
  let max_ops =
    Arg.(value & opt int 3
         & info [ "max-ops" ] ~docv:"N"
           ~doc:"Largest fused subgraph a candidate may cover.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persist point evaluations in the on-disk store (shared \
                 with epicd); warm re-runs hit disk instead of the \
                 compiler.")
  in
  let cache_entries =
    Arg.(value & opt (some int) None
         & info [ "cache-entries" ] ~docv:"N"
           ~doc:"Cap the store's entry count (oldest evicted).")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
           ~doc:"Resume an interrupted campaign from the manifest in \
                 --cache-dir (parameters must match).")
  in
  let small =
    Arg.(value & flag
         & info [ "small" ]
           ~doc:"Use reduced workload sizes (CI smoke budget).")
  in
  let ax name doc = axis_term name doc in
  let max_alus =
    Arg.(value & opt (some int) None
         & info [ "max-alus" ] ~docv:"N" ~doc:"Shorthand: sweep 1..N ALUs.")
  in
  let sweep_issue =
    Arg.(value & flag
         & info [ "sweep-issue" ]
           ~doc:"Shorthand: sweep issue widths 1, 2, 4.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the frontier document (deterministic: byte-identical \
                 for any --jobs and cold vs warm caches).")
  in
  let stats_out =
    Arg.(value & opt (some string) None
         & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"Write volatile campaign statistics (wall time, store hit \
                 rates).")
  in
  let expect_hit_rate =
    Arg.(value & opt (some float) None
         & info [ "expect-hit-rate" ] ~docv:"RATE"
           ~doc:"Exit non-zero unless the store hit rate reaches RATE \
                 (the CI warm-cache gate).")
  in
  Cmd.v
    (Cmd.info "epic_explore"
       ~doc:"Explore performance/area trade-offs of EPIC designs")
    Term.(const run $ input $ budget $ seed $ wave $ no_prune $ candidates
          $ max_ops $ cache_dir $ cache_entries $ resume $ small
          $ ax "alus" "ALU counts to sweep (comma-separated)."
          $ ax "issues" "Issue widths to sweep."
          $ ax "gprs" "GPR file sizes to sweep."
          $ ax "preds" "Predicate file sizes to sweep."
          $ ax "btrs" "Branch-target file sizes to sweep."
          $ ax "payloads" "Immediate payload widths (src_bits) to sweep."
          $ ax "stages" "Pipeline depths to sweep."
          $ max_alus $ sweep_issue $ json_out $ stats_out $ expect_hit_rate
          $ Cli_common.jobs_term)

let () = exit (Cmd.eval cmd)
