(* Reference interpreter for MIR programs.  It defines the semantics the
   two backends must preserve, and is used by the test suite to validate
   the front-end and every optimisation pass against the OCaml reference
   implementations of the benchmarks. *)

module Word = Epic_isa.Word

exception Runtime_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type result = {
  ret : int;                 (* canonical 32-bit return value of the entry *)
  dyn_insts : int;           (* dynamically executed MIR instructions *)
  mem : Bytes.t;
  map : Memmap.t;
  block_counts : (string * int, int) Hashtbl.t;
      (* (function, block) -> executions; the profile driving automatic
         custom-instruction identification *)
}

let width = 32
let m32 v = v land 0xFFFFFFFF

let eval_binop (op : Ir.binop) a b =
  let sa () = Word.to_signed width a and sb () = Word.to_signed width b in
  match op with
  | Ir.Add -> m32 (a + b)
  | Ir.Sub -> m32 (a - b)
  | Ir.Mul -> m32 (a * b)
  | Ir.Div ->
    let d = sb () in
    if d = 0 then fail "division by zero" else Word.of_signed width (sa () / d)
  | Ir.Rem ->
    let d = sb () in
    if d = 0 then fail "remainder by zero" else Word.of_signed width (sa () mod d)
  | Ir.And -> a land b
  | Ir.Or -> a lor b
  | Ir.Xor -> a lxor b
  (* Shift semantics match the EPIC datapath: amounts >= width give 0
     (sign fill for arithmetic right shifts). *)
  | Ir.Shl -> if b >= width then 0 else m32 (a lsl b)
  | Ir.Shr -> if b >= width then 0 else a lsr b
  | Ir.Shra -> Word.of_signed width (sa () asr min b (width - 1))
  | Ir.Min -> if sa () <= sb () then a else b
  | Ir.Max -> if sa () >= sb () then a else b

let eval_relop (r : Ir.relop) a b =
  let sa = Word.to_signed width a and sb = Word.to_signed width b in
  match r with
  | Ir.Req -> a = b
  | Ir.Rne -> a <> b
  | Ir.Rlt -> sa < sb
  | Ir.Rle -> sa <= sb
  | Ir.Rgt -> sa > sb
  | Ir.Rge -> sa >= sb
  | Ir.Rltu -> a < b
  | Ir.Rleu -> a <= b
  | Ir.Rgtu -> a > b
  | Ir.Rgeu -> a >= b

let run ?(mem_bytes = Memmap.default_mem_bytes) ?(fuel = 2_000_000_000)
    ?(custom = fun name _ _ -> fail "unknown custom operation %s" name)
    ?(args = []) (p : Ir.program) ~entry =
  let map = Memmap.layout ~mem_bytes p in
  let mem = Memmap.init_memory map p in
  let dyn = ref 0 in
  let block_counts = Hashtbl.create 64 in
  let budget = ref fuel in
  let check_addr a n =
    if a < 0 || a + n > map.Memmap.mem_bytes then fail "memory access at %#x out of bounds" a
  in
  let rec call fname sp (actuals : int list) =
    let f =
      match Ir.find_func p fname with
      | Some f -> f
      | None -> fail "call to undefined function %s" fname
    in
    if List.length actuals <> List.length f.Ir.f_params then
      fail "%s expects %d arguments, got %d" fname (List.length f.Ir.f_params)
        (List.length actuals);
    let vregs = Array.make (max 1 f.Ir.f_nvregs) 0 in
    let pregs = Array.make (max 1 f.Ir.f_npregs) false in
    (* Predicate 0 is hardwired true, mirroring the hardware. *)
    if f.Ir.f_npregs > 0 then pregs.(0) <- true;
    List.iteri (fun k (prm : Ir.vreg) -> vregs.(prm) <- m32 (List.nth actuals k)) f.Ir.f_params;
    let sp = (sp - f.Ir.f_frame_bytes) land lnot 7 in
    if sp <= map.Memmap.globals_end then fail "stack overflow in %s" fname;
    let operand = function Ir.Reg r -> vregs.(r) | Ir.Imm v -> m32 v in
    let exec_inst (i : Ir.inst) =
      decr budget;
      if !budget <= 0 then fail "out of fuel (infinite loop?)";
      incr dyn;
      let enabled =
        match i.Ir.guard with
        | None -> true
        | Some g -> pregs.(g.Ir.g_reg) = g.Ir.g_pos
      in
      if enabled then
        match i.Ir.kind with
        | Ir.Bin (op, d, a, b) -> vregs.(d) <- eval_binop op (operand a) (operand b)
        | Ir.Mov (d, a) -> vregs.(d) <- operand a
        | Ir.Cmp (r, d, a, b) ->
          vregs.(d) <- (if eval_relop r (operand a) (operand b) then 1 else 0)
        | Ir.Setp (r, q, a, b) -> if q <> 0 then pregs.(q) <- eval_relop r (operand a) (operand b)
        | Ir.Custom (name, d, a, b) -> vregs.(d) <- m32 (custom name (operand a) (operand b))
        | Ir.Load (size, ext, d, base, off) ->
          let a = m32 (operand base + operand off) in
          check_addr a (match size with Ir.I8 -> 1 | Ir.I16 -> 2 | Ir.I32 -> 4);
          vregs.(d) <- Memmap.read ~size ~ext mem a
        | Ir.Store (size, addr, v) ->
          let a = operand addr in
          check_addr a (match size with Ir.I8 -> 1 | Ir.I16 -> 2 | Ir.I32 -> 4);
          Memmap.write ~size mem a (operand v)
        | Ir.Call (d, g, cargs) ->
          let r = call g sp (List.map operand cargs) in
          (match d with Some d -> vregs.(d) <- r | None -> ())
        | Ir.AddrOf (d, g) -> vregs.(d) <- Memmap.addr_of map g
        | Ir.FrameAddr (d, off) -> vregs.(d) <- sp + off
        | Ir.LoadFrame (d, off) ->
          check_addr (sp + off) 4;
          vregs.(d) <- Memmap.read ~size:Ir.I32 ~ext:Ir.Zx mem (sp + off)
        | Ir.StoreFrame (off, r) ->
          check_addr (sp + off) 4;
          Memmap.write ~size:Ir.I32 mem (sp + off) vregs.(r)
    in
    let rec exec_block (b : Ir.block) =
      (* Charge the terminator so empty infinite loops still burn fuel. *)
      decr budget;
      if !budget <= 0 then fail "out of fuel (infinite loop?)";
      let key = (fname, b.Ir.b_id) in
      Hashtbl.replace block_counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt block_counts key));
      List.iter exec_inst b.Ir.b_insts;
      incr dyn;
      match b.Ir.b_term with
      | Ir.Ret None -> 0
      | Ir.Ret (Some o) -> operand o
      | Ir.Jmp l -> exec_block (Ir.find_block f l)
      | Ir.Br (r, a, b', lt, lf) ->
        let t = eval_relop r (operand a) (operand b') in
        exec_block (Ir.find_block f (if t then lt else lf))
    in
    exec_block (Ir.entry_block f)
  in
  let ret = call entry map.Memmap.stack_top args in
  { ret; dyn_insts = !dyn; mem; map; block_counts }
