(* If-conversion: turn small branch diamonds and triangles into straight-
   line predicated code.  This is the paper's central EPIC mechanism
   ("predicated instructions transform control dependence to data
   dependence", Section 2): instead of branching, both sides issue and the
   predicate decides which results commit.

   Pattern requirements (conservative):
   - the candidate side blocks have exactly one predecessor,
   - they contain no calls and no already-guarded instructions,
   - they are small (at most [max_insts] instructions),
   - both fall through to the same join block. *)

module Ir = Epic_mir.Ir

let default_max_insts = 8

let convertible (b : Ir.block) max_insts =
  List.length b.Ir.b_insts <= max_insts
  && List.for_all
       (fun (i : Ir.inst) ->
         i.Ir.guard = None
         &&
         match i.Ir.kind with
         (* Calls cannot be nullified; Cmp expands to predicate-guarded
            moves whose guards cannot be conjoined with another guard. *)
         | Ir.Call _ | Ir.Cmp _ -> false
         | _ -> true)
       b.Ir.b_insts

let jumps_to (b : Ir.block) =
  match b.Ir.b_term with Ir.Jmp l -> Some l | Ir.Br _ | Ir.Ret _ -> None

let guard_insts insts q pos =
  List.map (fun (i : Ir.inst) -> { i with Ir.guard = Some { Ir.g_reg = q; g_pos = pos } }) insts

let run_func ?(max_insts = default_max_insts) (f : Ir.func) =
  let changed = ref true in
  let total = ref 0 in
  while !changed do
    changed := false;
    let counts = Simplify.predecessor_counts f in
    let try_convert (b : Ir.block) =
      match b.Ir.b_term with
      | Ir.Br (rel, x, y, lt, lf) when lt <> lf && lt <> b.Ir.b_id && lf <> b.Ir.b_id ->
        let bt = Ir.find_block f lt and bf = Ir.find_block f lf in
        let single l = Hashtbl.find counts l = 1 in
        (* Diamond: B -> {T, F} -> J *)
        (match (jumps_to bt, jumps_to bf) with
         | Some jt, Some jf
           when jt = jf && jt <> lt && jt <> lf && single lt && single lf
                && convertible bt max_insts && convertible bf max_insts ->
           let q = f.Ir.f_npregs in
           f.Ir.f_npregs <- q + 1;
           b.Ir.b_insts <-
             b.Ir.b_insts
             @ [ Ir.no_guard (Ir.Setp (rel, q, x, y)) ]
             @ guard_insts bt.Ir.b_insts q true
             @ guard_insts bf.Ir.b_insts q false;
           b.Ir.b_term <- Ir.Jmp jt;
           changed := true;
           incr total;
           true
         | _ ->
           (* Triangle: B -> T -> J with F = J *)
           (match jumps_to bt with
            | Some jt
              when jt = lf && jt <> lt && single lt && convertible bt max_insts ->
              let q = f.Ir.f_npregs in
              f.Ir.f_npregs <- q + 1;
              b.Ir.b_insts <-
                b.Ir.b_insts
                @ [ Ir.no_guard (Ir.Setp (rel, q, x, y)) ]
                @ guard_insts bt.Ir.b_insts q true;
              b.Ir.b_term <- Ir.Jmp jt;
              changed := true;
              incr total;
              true
            | _ ->
              (* Mirror triangle: B -> F -> J with T = J *)
              (match jumps_to bf with
               | Some jf
                 when jf = lt && jf <> lf && single lf && convertible bf max_insts ->
                 let q = f.Ir.f_npregs in
                 f.Ir.f_npregs <- q + 1;
                 b.Ir.b_insts <-
                   b.Ir.b_insts
                   @ [ Ir.no_guard (Ir.Setp (rel, q, x, y)) ]
                   @ guard_insts bf.Ir.b_insts q false;
                 b.Ir.b_term <- Ir.Jmp jf;
                 changed := true;
                 incr total;
                 true
               | _ -> false)))
      | Ir.Br _ | Ir.Jmp _ | Ir.Ret _ -> false
    in
    (* One conversion per scan: predecessor counts go stale after a change. *)
    ignore (List.exists try_convert f.Ir.f_blocks);
    if !changed then Simplify.run_func f
  done;
  !total

let run ?max_insts (p : Ir.program) =
  List.iter (fun f -> ignore (run_func ?max_insts f)) p.Ir.p_funcs;
  p

let count ?max_insts (p : Ir.program) =
  List.fold_left (fun acc f -> acc + run_func ?max_insts f) 0 p.Ir.p_funcs
