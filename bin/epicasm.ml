(* epicasm: the standalone assembler.  Reads textual EPIC assembly,
   resolves labels, pads bundles with no-ops, validates every operation
   against the configuration header and emits encoded 64-bit words —
   optionally disassembling them back as a self-check (--roundtrip), or
   executing the image directly (--run). *)

open Cmdliner

let run input cfg roundtrip execute listing =
  Cli_common.handle_errors @@ fun () ->
  let text = Cli_common.read_file input in
  let image, words = Epic.Asm.assemble_text cfg text in
  Printf.eprintf "%d bundles, %d slots, %d no-op pads, %d symbols\n"
    (Array.length words / cfg.Epic.Config.issue_width)
    (Array.length words)
    (Epic.Asm.Aunit.nop_count image)
    (List.length image.Epic.Asm.Aunit.im_symbols);
  if roundtrip then begin
    let table = Epic.Encoding.make_table cfg in
    let decoded = Epic.Asm.Aunit.decode_image cfg table words in
    Array.iteri
      (fun k i ->
        if not (Epic.Isa.equal_inst i image.Epic.Asm.Aunit.im_insts.(k)) then
          failwith (Printf.sprintf "decode mismatch at slot %d" k))
      decoded;
    Printf.eprintf "binary round-trip OK\n"
  end;
  if listing then begin
    (* Disassembly listing: bundle address, slot, operation. *)
    let w = cfg.Epic.Config.issue_width in
    Array.iteri
      (fun k (i : Epic.Isa.inst) ->
        if k mod w = 0 then begin
          List.iter
            (fun (l, a) -> if a = k / w then Printf.printf "%s:\n" l)
            image.Epic.Asm.Aunit.im_symbols;
          Printf.printf "%5d:" (k / w)
        end;
        Format.printf "  %-28s" (Format.asprintf "%a" Epic.Isa.pp_inst i);
        if k mod w = w - 1 then print_newline ())
      image.Epic.Asm.Aunit.im_insts
  end;
  if execute then begin
    let mem = Bytes.make (1 lsl 20) '\000' in
    let entry =
      match List.assoc_opt "_start" image.Epic.Asm.Aunit.im_symbols with
      | Some e -> e
      | None -> 0
    in
    let r = Epic.Sim.run cfg ~image ~mem ~entry () in
    (match r.Epic.Sim.trap with
     | Some t ->
       Printf.printf "%s\n" (Format.asprintf "%a" Epic.Sim.pp_trap t);
       Format.printf "partial statistics:@.%a@." Epic.Sim.pp_stats r.Epic.Sim.stats;
       exit (Cli_common.trap_exit_code t)
     | None -> ());
    Printf.printf "returned %d (0x%08x)\n" r.Epic.Sim.ret r.Epic.Sim.ret;
    Format.printf "%a@." Epic.Sim.pp_stats r.Epic.Sim.stats
  end
  else if not listing then Array.iter (fun w -> Printf.printf "%016Lx\n" w) words

let cmd =
  let roundtrip = Arg.(value & flag & info [ "roundtrip" ] ~doc:"Verify decode(encode(x)) = x.") in
  let execute = Arg.(value & flag & info [ "run" ] ~doc:"Execute the image instead of dumping hex.") in
  let listing = Arg.(value & flag & info [ "list" ] ~doc:"Print a disassembly listing instead of hex.") in
  Cmd.v
    (Cmd.info "epicasm" ~doc:"Assemble EPIC assembly against a configuration header")
    Term.(const run $ Cli_common.input_term $ Cli_common.config_term $ roundtrip
          $ execute $ listing)

let () = exit (Cmd.eval cmd)
