(* Differential fuzzer: a seeded, deterministic generator of small
   well-formed programs and a multi-way oracle over the repository's
   engines.  Three case kinds:

   - MIR cases: a random MIR program through the real backend (codegen,
     list scheduling, assembly, encoding) under a sampled grid of valid
     configurations, with scheduling on and off, each compared against
     the reference interpreter (return value, final globals memory, trap
     taxonomy) and against the ARM baseline when the program uses no
     predication.  Emitted schedules are replayed against the mdes by the
     schedule-contract checker, so scheduler bugs are caught even when
     the interlocked simulator masks them into mere slowdowns.
   - ASM cases: random legal assembly bundles (forward branches only, so
     every program terminates) assembled once under an envelope
     configuration and executed under timing-only variations (ALUs, port
     budget, forwarding, pipeline depth) plus an encode->decode->execute
     round trip; architectural results must be bit-identical.
   - ENC cases: random instructions under randomly sampled field-width
     configurations; whatever the encoder accepts must decode back to the
     same instruction and re-encode to the same bits.

   Everything is derived from one campaign seed: case [i] uses the mixed
   seed [case_seed ~seed ~index:i], so campaigns are byte-identical for
   every [--jobs] value (the pool is index-keyed) and any failure can be
   replayed in isolation. *)

module Isa = Epic_isa
module Config = Epic_config
module Diag = Epic_diag
module Enc = Epic_encoding
module Mdes = Epic_mdes
module Ir = Epic_mir.Ir
module Interp = Epic_mir.Interp
module Memmap = Epic_mir.Memmap
module Verify = Epic_mir.Verify
module A = Epic_asm.Aunit
module Text = Epic_asm.Text
module Codegen = Epic_sched.Codegen
module Sched = Epic_sched.Sched
module Sim = Epic_sim
module Arm = Epic_arm
module Exec = Epic_exec

(* ------------------------------------------------------------------ *)
(* Deterministic PRNG: a splitmix-style mixer over OCaml's 63-bit ints.
   No dependency on [Random] — the stream must be identical across OCaml
   versions and across [--jobs] values. *)

module Rng = struct
  type t = { mutable state : int }

  let mix z =
    let z = z lxor (z lsr 33) in
    let z = z * 0xff51afd7ed558cc land max_int in
    let z = z lxor (z lsr 29) in
    let z = z * 0xc4ceb9fe1a85ec5 land max_int in
    z lxor (z lsr 32)

  let create seed = { state = mix (seed land max_int) }

  let next t =
    t.state <- (t.state + 0x9e3779b97f4a7c) land max_int;
    mix t.state

  let int t n = if n <= 0 then 0 else next t mod n
  let range t lo hi = lo + int t (hi - lo + 1)
  let bool t = next t land 1 = 1
  let chance t pct = int t 100 < pct

  let pick t l =
    match l with
    | [] -> invalid_arg "Rng.pick: empty list"
    | _ -> List.nth l (int t (List.length l))

  (* Per-case seed: mixing the campaign seed with the case index makes
     the case streams independent of fan-out order. *)
  let case_seed ~seed ~index = mix ((mix (seed + 1) lxor (index + 1)) land max_int)
end

(* ------------------------------------------------------------------ *)
(* Findings *)

type kind = K_mir | K_asm | K_enc

let string_of_kind = function K_mir -> "mir" | K_asm -> "asm" | K_enc -> "enc"

type finding = {
  f_case : int;          (* campaign case index *)
  f_kind : kind;
  f_class : string;      (* ret | mem | trap | gprs | compile | contract
                            | encoding | engine-error | arm-ret | arm-mem *)
  f_engine : string;     (* label of the diverging engine / config *)
  f_detail : string;     (* one-line human-readable explanation *)
  f_repro : string;      (* minimised program text *)
}

let pp_finding ppf f =
  Format.fprintf ppf "@[<v>FINDING case=%d kind=%s class=%s engine=%s@,%s@,--- repro ---@,%s@,-------------@]"
    f.f_case (string_of_kind f.f_kind) f.f_class f.f_engine f.f_detail f.f_repro

(* ------------------------------------------------------------------ *)
(* Schedule-contract checker.

   Replays a cycle-indexed schedule (the stall-free form produced by
   [Sched.schedule_block_cycles]) against the machine description,
   independently of the scheduler's own dependence analysis:

   - the schedule must be a permutation of the original instruction list
     (nothing lost, nothing duplicated);
   - within a bundle, slot order must follow program order (phase-2
     execution is sequential over slots: this is what keeps same-cycle
     memory pairs and branch shadowing sequentialisable);
   - per-cycle resources: unit caps, issue width, and the register-file
     port budget under the forwarding model the simulator implements (a
     GPR read is free exactly when its value arrives);
   - dependence distances in cycles: RAW >= latency of the producer,
     WAR >= 0, WAW >= max 1 (lat_i - lat_j + 1) (the later write must
     land last), memory pairs involving a store >= 1, every operation
     after a branch >= 1 cycle later, nothing moves below the branch. *)

module Contract = struct
  type violation = string

  let check (md : Mdes.t) ~(original : A.inst list) (cycles : A.inst list array) :
      violation list =
    let viol = ref [] in
    let add fmt = Format.kasprintf (fun s -> viol := s :: !viol) fmt in
    let orig = Array.of_list original in
    let n = Array.length orig in
    let approx = Array.map A.to_isa_approx orig in
    let lat k = Mdes.latency md approx.(k).Isa.op in
    (* Flatten with (cycle, slot). *)
    let flat = ref [] in
    Array.iteri
      (fun c insts -> List.iteri (fun s i -> flat := (c, s, i) :: !flat) insts)
      cycles;
    let flat = List.rev !flat in
    (* Greedy in-order matching of original instructions to schedule
       slots (duplicates are interchangeable, so first-unused works). *)
    let used = Array.make (List.length flat) false in
    let flat_arr = Array.of_list flat in
    let cycle_of = Array.make n (-1) and slot_of = Array.make n (-1) in
    for k = 0 to n - 1 do
      let rec find j =
        if j >= Array.length flat_arr then -1
        else
          let _, _, i = flat_arr.(j) in
          if (not used.(j)) && i = orig.(k) then j
          else find (j + 1)
      in
      match find 0 with
      | -1 -> add "instruction %d (%s) lost by the scheduler" k
                (Isa.string_of_opcode approx.(k).Isa.op)
      | j ->
        used.(j) <- true;
        let c, s, _ = flat_arr.(j) in
        cycle_of.(k) <- c;
        slot_of.(k) <- s
    done;
    Array.iteri
      (fun j u ->
        if not u then
          let c, s, _ = flat_arr.(j) in
          add "extra instruction at cycle %d slot %d not in the source block" c s)
      used;
    if !viol <> [] then List.rev !viol
    else begin
      (* Within-bundle slot order must follow program order. *)
      for k = 0 to n - 1 do
        for k' = k + 1 to n - 1 do
          if cycle_of.(k) = cycle_of.(k') && slot_of.(k) > slot_of.(k') then
            add "ops %d and %d share cycle %d but slot order inverts program order"
              k k' cycle_of.(k)
        done
      done;
      (* Per-cycle resources. *)
      let cap = function
        | Isa.U_alu -> md.Mdes.md_alus
        | Isa.U_lsu -> md.Mdes.md_lsus
        | Isa.U_cmpu -> md.Mdes.md_cmpus
        | Isa.U_bru -> md.Mdes.md_brus
        | Isa.U_none -> max_int
      in
      let available : (int, int) Hashtbl.t = Hashtbl.create 16 in
      Array.iteri
        (fun c insts ->
          let ap = List.map A.to_isa_approx insts in
          if List.length insts > md.Mdes.md_issue_width then
            add "cycle %d issues %d ops, issue width is %d" c (List.length insts)
              md.Mdes.md_issue_width;
          List.iter
            (fun u ->
              let uses =
                List.length (List.filter (fun a -> Isa.unit_of a.Isa.op = u) ap)
              in
              if uses > cap u then
                add "cycle %d uses %d units of a class capped at %d" c uses (cap u))
            [ Isa.U_alu; Isa.U_lsu; Isa.U_cmpu; Isa.U_bru ];
          let ports =
            List.fold_left
              (fun acc a ->
                let reads =
                  List.fold_left
                    (fun acc (file, idx) ->
                      match (file : Isa.regfile) with
                      | Isa.R_gpr ->
                        let fwd =
                          md.Mdes.md_forwarding
                          && Hashtbl.find_opt available idx = Some c
                        in
                        if fwd then acc else acc + 1
                      | Isa.R_pred | Isa.R_btr -> acc)
                    0 (Isa.reads a)
                in
                let writes =
                  List.fold_left
                    (fun acc (file, _) ->
                      match (file : Isa.regfile) with
                      | Isa.R_gpr -> acc + 1
                      | Isa.R_pred | Isa.R_btr -> acc)
                    0 (Isa.writes a)
                in
                acc + reads + writes)
              0 ap
          in
          if ports > md.Mdes.md_rf_port_budget then
            add "cycle %d needs %d register ports, budget is %d" c ports
              md.Mdes.md_rf_port_budget;
          List.iter
            (fun a ->
              List.iter
                (fun (file, idx) ->
                  match (file : Isa.regfile) with
                  | Isa.R_gpr ->
                    Hashtbl.replace available idx (c + Mdes.latency md a.Isa.op)
                  | Isa.R_pred | Isa.R_btr -> ())
                (Isa.writes a))
            ap)
        cycles;
      (* Dependence distances, recomputed from scratch. *)
      for j = 0 to n - 1 do
        let jr = Isa.reads approx.(j) and jw = Isa.writes approx.(j) in
        let j_mem =
          Isa.is_load approx.(j).Isa.op || Isa.is_store approx.(j).Isa.op
        in
        let j_store = Isa.is_store approx.(j).Isa.op in
        let j_branch =
          Isa.is_branch approx.(j).Isa.op || approx.(j).Isa.op = Isa.HALT
        in
        for i = 0 to j - 1 do
          let iw = Isa.writes approx.(i) and ir = Isa.reads approx.(i) in
          let i_mem =
            Isa.is_load approx.(i).Isa.op || Isa.is_store approx.(i).Isa.op
          in
          let i_store = Isa.is_store approx.(i).Isa.op in
          let i_branch =
            Isa.is_branch approx.(i).Isa.op || approx.(i).Isa.op = Isa.HALT
          in
          let need = ref min_int in
          let require d = if d > !need then need := d in
          if List.exists (fun r -> List.mem r jr) iw then require (lat i);
          if List.exists (fun r -> List.mem r ir) jw then require 0;
          if List.exists (fun r -> List.mem r iw) jw then
            require (max 1 (lat i - lat j + 1));
          if (i_store && j_mem) || (i_mem && j_store) then require 1;
          if i_branch then require 1;
          if j_branch && not i_branch then require 0;
          if !need > min_int && cycle_of.(j) - cycle_of.(i) < !need then
            add "ops %d -> %d scheduled %d cycles apart, dependence needs %d"
              i j (cycle_of.(j) - cycle_of.(i)) !need
        done
      done;
      List.rev !viol
    end
end

(* ------------------------------------------------------------------ *)
(* Configuration samplers *)

let valid cfg = match Config.validate cfg with Ok () -> true | Error _ -> false

(* The narrow 45-bit instruction format: legal per the validator, and the
   harshest known client of the encoder's field-width parameterisation. *)
let narrow_fields cfg =
  { cfg with
    Config.n_gprs = 32; n_preds = 16; n_btrs = 8;
    opcode_bits = 9; dst_bits = 5; src_bits = 11; pred_bits = 4 }

(* Architectural envelope for ASM cases: fixed register files (results
   are compared register-for-register), sampled issue width, and
   occasionally the narrow instruction format. *)
let gen_asm_envelope rng =
  let base =
    { Config.default with
      Config.n_gprs = 32; n_preds = 16; n_btrs = 8;
      issue_width = Rng.range rng 1 4 }
  in
  if Rng.chance rng 25 then narrow_fields base else base

(* Timing-only variations: same architectural state, different cycle
   behaviour.  Results must not change. *)
let gen_timing_variants rng (env : Config.t) =
  List.init 3 (fun _ ->
      { env with
        Config.n_alus = Rng.range rng 1 4;
        rf_port_budget = Rng.pick rng [ 2; 4; 8 ];
        forwarding = Rng.bool rng;
        pipeline_stages = Rng.range rng 2 4 })
  |> List.filter valid

(* Config grid for MIR cases: width stays 32 (the interpreter's width);
   everything the backend retargets over is sampled.  Port budget stays
   >= 4 so every base operation is schedulable (feasibility needs 3 ports
   for a 2-source ALU op). *)
let gen_mir_grid rng =
  let sample () =
    { Config.default with
      Config.n_alus = Rng.range rng 1 4;
      n_gprs = Rng.pick rng [ 20; 32; 64 ];
      n_preds = Rng.pick rng [ 16; 32 ];
      n_btrs = Rng.pick rng [ 8; 16 ];
      issue_width = Rng.range rng 1 4;
      rf_port_budget = Rng.pick rng [ 4; 8 ];
      forwarding = Rng.bool rng;
      pipeline_stages = Rng.range rng 2 4 }
  in
  let narrow = { (narrow_fields Config.default) with Config.issue_width = Rng.range rng 1 3 } in
  List.filter valid [ Config.default; narrow; sample (); sample (); sample () ]

(* Random instruction-format configuration for encoding round trips. *)
let gen_field_config rng =
  let attempt () =
    let dst_bits = Rng.range rng 5 8 in
    let src_bits = Rng.range rng 6 16 in
    let pred_bits = Rng.range rng 4 6 in
    let opcode_bits = Rng.range rng 8 15 in
    { Config.default with
      Config.n_gprs = 32; n_preds = 16; n_btrs = 8;
      issue_width = 1;
      regs_per_inst = Rng.range rng 3 4;
      opcode_bits; dst_bits; src_bits; pred_bits }
  in
  let rec go tries =
    if tries = 0 then Config.default
    else
      let c = attempt () in
      if valid c then c else go (tries - 1)
  in
  go 50

(* ------------------------------------------------------------------ *)
(* Random instruction generator (for ENC cases and the qcheck property).
   Fields are filled according to the encoder's usage map, biased toward
   the signed-literal boundary values. *)

let interesting_imms payload =
  let b = 1 lsl (payload - 1) in
  [ 0; 1; -1; 2; 7; b - 1; -b; b - 2; -b + 1 ]

let gen_src rng (cfg : Config.t) =
  if Rng.bool rng then Isa.Sreg (Rng.int rng cfg.Config.n_gprs)
  else
    let payload = cfg.Config.src_bits - 1 in
    if Rng.chance rng 40 then Isa.Simm (Rng.pick rng (interesting_imms payload))
    else
      let b = 1 lsl (payload - 1) in
      Isa.Simm (Rng.range rng (-b) (b - 1))

let base_op_pool =
  [ Isa.ADD; Isa.SUB; Isa.MPY; Isa.DIV; Isa.REM; Isa.MIN; Isa.MAX; Isa.ABS;
    Isa.AND; Isa.OR; Isa.XOR; Isa.ANDCM; Isa.NAND; Isa.NOR;
    Isa.SHL; Isa.SHR; Isa.SHRA; Isa.MOV;
    Isa.LD Isa.M_byte; Isa.LD Isa.M_half; Isa.LD Isa.M_word;
    Isa.LDU Isa.M_byte; Isa.LDU Isa.M_half;
    Isa.ST Isa.M_byte; Isa.ST Isa.M_half; Isa.ST Isa.M_word;
    Isa.CMPP Isa.C_eq; Isa.CMPP Isa.C_ne; Isa.CMPP Isa.C_lt; Isa.CMPP Isa.C_le;
    Isa.CMPP Isa.C_ltu; Isa.CMPP Isa.C_geu;
    Isa.PBRR; Isa.BRU_; Isa.BRCT; Isa.BRCF; Isa.BRL; Isa.HALT; Isa.NOP ]

let gen_inst rng (cfg : Config.t) =
  let op = Rng.pick rng base_op_pool in
  let u = Enc.usage op in
  let dst = function
    | Enc.Dreg Isa.R_gpr -> Rng.int rng cfg.Config.n_gprs
    | Enc.Dreg Isa.R_pred -> Rng.int rng cfg.Config.n_preds
    | Enc.Dreg Isa.R_btr -> Rng.int rng cfg.Config.n_btrs
    | Enc.Dimm -> Rng.int rng (1 lsl cfg.Config.dst_bits)
    | Enc.Dnone -> 0
  in
  let src used =
    if not used then Isa.Simm 0
    else
      match op with
      | Isa.BRU_ | Isa.BRL | Isa.BRCT | Isa.BRCF | Isa.PBRR ->
        (* Branch sources are BTR indices / code labels: small literals. *)
        Isa.Simm (Rng.int rng cfg.Config.n_btrs)
      | _ -> gen_src rng cfg
  in
  let src2 used =
    if not used then Isa.Simm 0
    else
      match op with
      | Isa.BRCT | Isa.BRCF -> Isa.Simm (Rng.int rng cfg.Config.n_preds)
      | _ -> gen_src rng cfg
  in
  { Isa.op;
    dst1 = dst u.Enc.u_dst1;
    dst2 = dst u.Enc.u_dst2;
    src1 = src u.Enc.u_src1;
    src2 = src2 u.Enc.u_src2;
    guard = (if Rng.chance rng 30 then Rng.int rng cfg.Config.n_preds else 0) }

(* ------------------------------------------------------------------ *)
(* ASM program generator: random legal bundles, forward control flow. *)

let mem_base = 384          (* fits the narrowest literal payload *)
let asm_mem_bytes = 8192

let string_of_asm (u : A.t) = Text.to_string u

let gen_alu_op rng (cfg : Config.t) ~dsts ~srcs =
  let op =
    Rng.pick rng
      [ Isa.ADD; Isa.SUB; Isa.MPY; Isa.DIV; Isa.REM; Isa.MIN; Isa.MAX;
        Isa.AND; Isa.OR; Isa.XOR; Isa.ANDCM; Isa.NAND; Isa.NOR;
        Isa.SHL; Isa.SHR; Isa.SHRA; Isa.MOV; Isa.ABS ]
  in
  let payload = cfg.Config.src_bits - 1 in
  let imm () =
    let v =
      if Rng.chance rng 35 then Rng.pick rng (interesting_imms payload)
      else Rng.range rng (-200) 200
    in
    (* Shift amounts around the datapath width exercise the >= width
       clamp in both evaluators. *)
    match op with
    | Isa.SHL | Isa.SHR | Isa.SHRA when Rng.bool rng -> A.Imm (Rng.range rng 0 40)
    | _ -> A.Imm v
  in
  let src () = if Rng.bool rng then A.Reg (Rng.pick rng srcs) else imm () in
  let d1 = Rng.pick rng dsts in
  let g = if Rng.chance rng 25 then Rng.range rng 1 (cfg.Config.n_preds - 1) else 0 in
  match op with
  | Isa.MOV | Isa.ABS -> A.simple op ~d1 ~s1:(src ()) ~g ()
  | _ -> A.simple op ~d1 ~s1:(src ()) ~s2:(src ()) ~g ()

let gen_mem_op rng (cfg : Config.t) ~dsts ~srcs =
  let mw = Rng.pick rng [ Isa.M_byte; Isa.M_half; Isa.M_word ] in
  let g = if Rng.chance rng 20 then Rng.range rng 1 (cfg.Config.n_preds - 1) else 0 in
  if Rng.bool rng then
    (* Load: base register + small positive literal offset. *)
    let off = Rng.range rng 0 255 in
    A.simple (Isa.LD mw) ~d1:(Rng.pick rng dsts) ~s1:(A.Reg 1) ~s2:(A.Imm off) ~g ()
  else
    (* Store: EA = base + dst1 * width-bytes (dst1 is the scaled offset
       field). *)
    let off = Rng.range rng 0 31 in
    let v = if Rng.bool rng then A.Reg (Rng.pick rng srcs) else A.Imm (Rng.range rng (-100) 100) in
    A.simple (Isa.ST mw) ~d1:off ~s1:(A.Reg 1) ~s2:v ~g ()

let gen_cmp_op rng (cfg : Config.t) ~srcs =
  let cond =
    Rng.pick rng
      [ Isa.C_eq; Isa.C_ne; Isa.C_lt; Isa.C_le; Isa.C_gt; Isa.C_ge;
        Isa.C_ltu; Isa.C_leu; Isa.C_gtu; Isa.C_geu ]
  in
  let np = cfg.Config.n_preds in
  let src () =
    if Rng.bool rng then A.Reg (Rng.pick rng srcs) else A.Imm (Rng.range rng (-50) 50)
  in
  A.simple (Isa.CMPP cond) ~d1:(Rng.int rng np) ~d2:(Rng.int rng np)
    ~s1:(src ()) ~s2:(src ()) ()

(* One random ASM case: (envelope configuration, assembly unit).  Layout:
     B0:   seed registers (r1 = memory base, a few constants)
     B1..: labelled random bundles; a bundle may end with a forward
           branch whose PBRR sits in an earlier slot (or its own bundle
           at issue width 1)
     end:  HALT *)
let gen_asm_case rng =
  let cfg = gen_asm_envelope rng in
  let iw = cfg.Config.issue_width in
  let n_body = Rng.range rng 3 8 in
  (* Registers: r1 = base (never overwritten), r2..r11 general. *)
  let dsts = [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ] in
  let srcs = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ] in
  let payload = cfg.Config.src_bits - 1 in
  let seed_imm () = Rng.range rng (-(1 lsl (payload - 1))) ((1 lsl (payload - 1)) - 1) in
  let items = ref [] in
  let push it = items := it :: !items in
  (* Seed bundles: one op per bundle keeps them legal at issue width 1. *)
  push (A.Ibundle [ A.simple Isa.MOV ~d1:1 ~s1:(A.Imm mem_base) () ]);
  List.iter
    (fun r -> push (A.Ibundle [ A.simple Isa.MOV ~d1:r ~s1:(A.Imm (seed_imm ())) () ]))
    [ 4; 5; 6; 7 ];
  let gen_op () =
    match Rng.int rng 10 with
    | 0 | 1 -> gen_mem_op rng cfg ~dsts ~srcs
    | 2 -> gen_cmp_op rng cfg ~srcs
    | _ -> gen_alu_op rng cfg ~dsts ~srcs
  in
  for i = 0 to n_body - 1 do
    push (A.Ilabel (Printf.sprintf "B%d" i));
    let has_branch = Rng.chance rng 35 in
    if has_branch then begin
      let target =
        if Rng.bool rng || i = n_body - 1 then "end"
        else Printf.sprintf "B%d" (Rng.range rng (i + 1) (n_body - 1))
      in
      let btr = i mod cfg.Config.n_btrs in
      let pbrr = A.simple Isa.PBRR ~d1:btr ~s1:(A.Lab target) () in
      let branch =
        match Rng.int rng 4 with
        | 0 -> A.simple Isa.BRU_ ~s1:(A.Imm btr) ()
        | 1 -> A.simple Isa.BRL ~d1:2 ~s1:(A.Imm btr) ()
        | 2 ->
          A.simple Isa.BRCT ~s1:(A.Imm btr)
            ~s2:(A.Imm (Rng.int rng cfg.Config.n_preds)) ()
        | _ ->
          A.simple Isa.BRCF ~s1:(A.Imm btr)
            ~s2:(A.Imm (Rng.int rng cfg.Config.n_preds)) ()
      in
      if iw = 1 then begin
        push (A.Ibundle [ pbrr ]);
        push (A.Ibundle [ branch ])
      end
      else begin
        let fillers = List.init (Rng.int rng (iw - 1)) (fun _ -> gen_op ()) in
        push (A.Ibundle ((pbrr :: fillers) @ [ branch ]))
      end
    end
    else begin
      let ops = List.init (Rng.range rng 1 iw) (fun _ -> gen_op ()) in
      push (A.Ibundle ops)
    end
  done;
  push (A.Ilabel "end");
  push (A.Ibundle [ A.simple Isa.HALT () ]);
  (cfg, { A.items = List.rev !items })

(* ------------------------------------------------------------------ *)
(* MIR program generator. *)

let gen_operand rng nv =
  if Rng.bool rng then Ir.Reg (Rng.int rng nv) else Ir.Imm (Rng.range rng (-4096) 4095)

let all_binops =
  [ Ir.Add; Ir.Sub; Ir.Mul; Ir.Div; Ir.Rem; Ir.And; Ir.Or; Ir.Xor;
    Ir.Shl; Ir.Shr; Ir.Shra; Ir.Min; Ir.Max ]

let all_relops =
  [ Ir.Req; Ir.Rne; Ir.Rlt; Ir.Rle; Ir.Rgt; Ir.Rge; Ir.Rltu; Ir.Rleu;
    Ir.Rgtu; Ir.Rgeu ]

(* Generate one block's instruction list.  Memory operations are emitted
   as short sequences (AddrOf + optional Add) so every address is a
   single in-bounds operand. *)
let gen_block_insts rng ~nv ~np ~globals ~use_guards ~len =
  let insts = ref [] in
  let emit k = insts := { Ir.kind = k; guard = None } :: !insts in
  let emit_guarded k g = insts := { Ir.kind = k; guard = g } :: !insts in
  let operand () = gen_operand rng nv in
  let dst () = Rng.int rng nv in
  let guard () =
    if use_guards && np > 1 && Rng.chance rng 25 then
      Some { Ir.g_reg = Rng.range rng 1 (np - 1); g_pos = Rng.bool rng }
    else None
  in
  for _ = 1 to len do
    match Rng.int rng 12 with
    | 0 | 1 | 2 | 3 ->
      let op = Rng.pick rng all_binops in
      let b =
        match op with
        | Ir.Div | Ir.Rem ->
          let v = Rng.range rng 1 64 in
          Ir.Imm (if Rng.bool rng then v else -v)
        | Ir.Shl | Ir.Shr | Ir.Shra when Rng.bool rng -> Ir.Imm (Rng.range rng 0 40)
        | _ -> operand ()
      in
      emit_guarded (Ir.Bin (op, dst (), operand (), b)) (guard ())
    | 4 -> emit_guarded (Ir.Mov (dst (), operand ())) (guard ())
    | 5 -> emit (Ir.Cmp (Rng.pick rng all_relops, dst (), operand (), operand ()))
    | 6 when use_guards && np > 1 ->
      emit (Ir.Setp (Rng.pick rng all_relops, Rng.range rng 1 (np - 1), operand (), operand ()))
    | 6 -> emit (Ir.Mov (dst (), operand ()))
    | 7 | 8 | 9 ->
      (* Addresses live only in the reserved scratch vregs [nv+1] and
         [nv+2]: a frame or global address is an engine-specific numeric
         (codegen rebases frame slots past the callee-save area, which
         varies with the configuration), so letting one flow into stored
         values, compares or return values would make architecturally
         correct engines diverge. *)
      let gname, g_bytes = Rng.pick rng globals in
      let sz = Rng.pick rng [ Ir.I8; Ir.I16; Ir.I32 ] in
      let bytes = match sz with Ir.I8 -> 1 | Ir.I16 -> 2 | Ir.I32 -> 4 in
      let off = Rng.int rng (g_bytes - bytes + 1) in
      let a = nv + 1 in
      emit (Ir.AddrOf (a, gname));
      if Rng.bool rng then
        emit (Ir.Load (sz, Rng.pick rng [ Ir.Sx; Ir.Zx ], dst (), Ir.Reg a, Ir.Imm off))
      else begin
        let a2 = nv + 2 in
        emit (Ir.Bin (Ir.Add, a2, Ir.Reg a, Ir.Imm off));
        emit_guarded (Ir.Store (sz, Ir.Reg a2, operand ())) (guard ())
      end
    | 10 ->
      (* Frame traffic: in-frame address arithmetic through FrameAddr. *)
      let off = 4 * Rng.int rng 8 in
      let a = nv + 1 in
      emit (Ir.FrameAddr (a, off));
      if Rng.bool rng then emit (Ir.Load (Ir.I32, Ir.Sx, dst (), Ir.Reg a, Ir.Imm 0))
      else emit (Ir.Store (Ir.I32, Ir.Reg a, operand ()))
    | _ -> emit (Ir.Bin (Ir.Add, dst (), operand (), operand ()))
  done;
  List.rev !insts

(* A random program: one or two globals, a possibly-called leaf function,
   and a [main] whose CFG is forward (DAG) except for at most one counted
   self-loop — so termination is structural, not statistical. *)
let gen_mir_program rng =
  let use_guards = Rng.chance rng 50 in
  let nv = Rng.range rng 5 10 in
  let np = Rng.range rng 2 4 in
  let g_bytes = 4 * Rng.range rng 4 16 in
  let globals =
    [ { Ir.g_name = "g0"; g_bytes;
        g_init = Array.init (g_bytes / 4) (fun _ -> Rng.range rng (-1000) 1000) } ]
  in
  let glob_shapes = [ ("g0", g_bytes) ] in
  let with_leaf = Rng.chance rng 40 in
  let leaf =
    { Ir.f_name = "leaf"; f_params = [ 0; 1 ]; f_nvregs = 3; f_npregs = 1;
      f_frame_bytes = 0;
      f_blocks =
        [ { Ir.b_id = 0;
            b_insts =
              [ Ir.no_guard
                  (Ir.Bin (Rng.pick rng [ Ir.Add; Ir.Xor; Ir.Mul; Ir.Min ], 2,
                           Ir.Reg 0, Ir.Reg 1)) ];
            b_term = Ir.Ret (Some (Ir.Reg 2)) } ] }
  in
  let n_blocks = Rng.range rng 1 4 in
  (* The loop block must not be the entry block: the entry is prefixed with
     the seeding MOVs below, which would reset the induction variable on
     every trip round the back edge and never terminate.  It must also not
     be the last block, which carries the Ret. *)
  let loop_at =
    if n_blocks >= 3 && Rng.chance rng 40 then
      Some (Rng.range rng 1 (n_blocks - 2))
    else None
  in
  (* v(nv) is the loop induction variable when a loop is present;
     v(nv+1) and v(nv+2) are the address scratch registers (see
     [gen_block_insts]).  None of the three is reachable from
     [gen_operand], which draws from v0..v(nv-1). *)
  let nv_total = nv + 3 in
  let blocks =
    List.init n_blocks (fun i ->
        let len = Rng.range rng 1 6 in
        let insts = gen_block_insts rng ~nv ~np ~globals:glob_shapes ~use_guards ~len in
        let insts =
          if with_leaf && Rng.chance rng 50 then
            insts
            @ [ Ir.no_guard
                  (Ir.Call (Some (Rng.int rng nv), "leaf",
                            [ gen_operand rng nv; gen_operand rng nv ])) ]
          else insts
        in
        let insts =
          match loop_at with
          | Some l when l = i ->
            insts @ [ Ir.no_guard (Ir.Bin (Ir.Add, nv, Ir.Reg nv, Ir.Imm 1)) ]
          | _ -> insts
        in
        let term =
          if i = n_blocks - 1 then Ir.Ret (Some (gen_operand rng nv))
          else
            match loop_at with
            | Some l when l = i ->
              (* Counted back edge: at most [bound] iterations. *)
              let bound = Rng.range rng 2 8 in
              Ir.Br (Ir.Rlt, Ir.Reg nv, Ir.Imm bound, i, i + 1)
            | _ ->
              if Rng.bool rng && i + 2 <= n_blocks - 1 then
                Ir.Br (Rng.pick rng all_relops, gen_operand rng nv,
                       gen_operand rng nv, Rng.range rng (i + 1) (n_blocks - 1), i + 1)
              else Ir.Jmp (i + 1)
        in
        { Ir.b_id = i; b_insts = insts; b_term = term })
  in
  (* Define every vreg and every predicate up front: all uses are then
     defined on every path, including guards whose setp would otherwise
     not dominate them (the verifier rejects such programs, and so does
     codegen's predicate-pair allocator).  q0 is hardwired true. *)
  let seed =
    List.init nv_total (fun v -> Ir.no_guard (Ir.Mov (v, Ir.Imm (Rng.range rng (-100) 100))))
    @ List.init (np - 1) (fun q ->
          Ir.no_guard
            (Ir.Setp (Rng.pick rng all_relops, q + 1,
                      Ir.Imm (Rng.range rng (-100) 100),
                      Ir.Imm (Rng.range rng (-100) 100))))
  in
  (match blocks with
   | b :: _ -> b.Ir.b_insts <- seed @ b.Ir.b_insts
   | [] -> ());
  let main =
    { Ir.f_name = "main"; f_params = []; f_nvregs = nv_total;
      f_npregs = np; f_blocks = blocks;
      f_frame_bytes = 32 }
  in
  let funcs = if with_leaf then [ leaf; main ] else [ main ] in
  { Ir.p_globals = globals; p_funcs = funcs }

let mir_uses_predication (p : Ir.program) =
  List.exists
    (fun f ->
      List.exists
        (fun b ->
          List.exists
            (fun i ->
              i.Ir.guard <> None
              || match i.Ir.kind with Ir.Setp _ -> true | _ -> false)
            b.Ir.b_insts)
        f.Ir.f_blocks)
    p.Ir.p_funcs

let string_of_mir (p : Ir.program) = Format.asprintf "%a" Ir.pp_program p

(* ------------------------------------------------------------------ *)
(* Oracles *)

let label_of_config (cfg : Config.t) ~scheduling =
  Printf.sprintf
    "alus=%d gprs=%d iw=%d ports=%d fwd=%b stages=%d fields=%d/%d/%d/%d sched=%b"
    cfg.Config.n_alus cfg.Config.n_gprs cfg.Config.issue_width
    cfg.Config.rf_port_budget cfg.Config.forwarding cfg.Config.pipeline_stages
    cfg.Config.opcode_bits cfg.Config.dst_bits cfg.Config.src_bits
    cfg.Config.pred_bits scheduling

let trap_sig = function
  | None -> "none"
  | Some t -> Printf.sprintf "%s@pc=%d" (Sim.string_of_trap_cause t.Sim.tr_cause) t.Sim.tr_pc

(* -- ASM oracle ----------------------------------------------------- *)

let run_image (cfg : Config.t) image =
  let mem = Bytes.make asm_mem_bytes '\000' in
  Sim.run ~fuel:200_000 cfg ~image ~mem ()

let check_asm ~case ~repro (cfg : Config.t) (u : A.t) : finding list =
  let fnd = ref [] in
  let add f_class f_engine fmt =
    Format.kasprintf
      (fun s ->
        fnd :=
          { f_case = case; f_kind = K_asm; f_class; f_engine; f_detail = s;
            f_repro = repro } :: !fnd)
      fmt
  in
  (match A.assemble cfg u with
   | exception exn -> add "compile" "assembler" "%s" (Printexc.to_string exn)
   | image, words ->
     let reference = run_image cfg image in
     let compare_run engine (r : Sim.result) =
       if trap_sig r.Sim.trap <> trap_sig reference.Sim.trap then
         add "trap" engine "trap %s, reference %s" (trap_sig r.Sim.trap)
           (trap_sig reference.Sim.trap)
       else begin
         if r.Sim.ret <> reference.Sim.ret then
           add "ret" engine "returned %#x, reference %#x" r.Sim.ret reference.Sim.ret;
         if r.Sim.gprs <> reference.Sim.gprs then begin
           let k = ref (-1) in
           Array.iteri
             (fun i v -> if !k < 0 && v <> reference.Sim.gprs.(i) then k := i)
             r.Sim.gprs;
           add "gprs" engine "r%d = %#x, reference %#x" !k r.Sim.gprs.(!k)
             reference.Sim.gprs.(!k)
         end;
         if not (Bytes.equal r.Sim.mem reference.Sim.mem) then
           add "mem" engine "final memory differs from the reference run"
       end
     in
     (* Encode -> decode -> execute: the decoded image must behave
        identically to the resolved one. *)
     (match
        let table = Enc.make_table cfg in
        { image with A.im_insts = A.decode_image cfg table words }
      with
      | exception exn -> add "encoding" "decoder" "%s" (Printexc.to_string exn)
      | decoded -> compare_run "decoded-image" (run_image cfg decoded));
     (* Timing-only variations: architectural results must not move. *)
     List.iter
       (fun vcfg ->
         match run_image vcfg image with
         | r -> compare_run (label_of_config vcfg ~scheduling:false) r
         | exception exn ->
           add "engine-error" (label_of_config vcfg ~scheduling:false) "%s"
             (Printexc.to_string exn))
       (gen_timing_variants (Rng.create case) cfg));
  List.rev !fnd

(* -- MIR oracle ----------------------------------------------------- *)

(* Compile one MIR program for one configuration, returning the image,
   the layout, the entry bundle and any schedule-contract violations.
   The backend mutates the program (register allocation rewrites blocks),
   so it works on a private copy. *)
let compile_mir (cfg : Config.t) ~scheduling (p : Ir.program) =
  let p = Epic_opt.Common.copy_program p in
  let layout = Memmap.layout p in
  let md = Mdes.of_config cfg in
  let cfuncs = Codegen.gen_program cfg layout p in
  let violations = ref [] in
  let items =
    List.concat_map
      (fun (cf : Codegen.cfunc) ->
        List.concat_map
          (fun (cb : Codegen.cblock) ->
            let bundles =
              if scheduling then begin
                let cycles = Sched.schedule_block_cycles md cb.Codegen.cb_insts in
                List.iter
                  (fun v ->
                    violations := Printf.sprintf "%s: %s" cb.Codegen.cb_label v :: !violations)
                  (Contract.check md ~original:cb.Codegen.cb_insts cycles);
                Array.to_list cycles |> List.filter (fun b -> b <> [])
              end
              else Sched.schedule_sequential cb.Codegen.cb_insts
            in
            A.Ilabel cb.Codegen.cb_label :: List.map (fun b -> A.Ibundle b) bundles)
          cf.Codegen.cf_blocks)
      cfuncs
  in
  let image, _words = Epic_asm.assemble cfg { A.items } in
  let entry =
    match List.assoc_opt "_start" image.A.im_symbols with
    | Some a -> a
    | None -> 0
  in
  (image, layout, entry, p, List.rev !violations)

let region_equal mem1 mem2 ~len =
  Bytes.equal (Bytes.sub mem1 0 len) (Bytes.sub mem2 0 len)

let check_mir ~case ~repro (p : Ir.program) : finding list =
  let fnd = ref [] in
  let add f_class f_engine fmt =
    Format.kasprintf
      (fun s ->
        fnd :=
          { f_case = case; f_kind = K_mir; f_class; f_engine; f_detail = s;
            f_repro = repro } :: !fnd)
      fmt
  in
  (* Generator sanity: every generated program must be well-formed MIR.
     A verifier rejection is a bug in the generator itself, not in any
     engine, and is reported as such. *)
  (match Verify.check_program p with
   | Error errs ->
     add "engine-error" "generator" "invalid MIR: %s" (String.concat "; " errs)
   | Ok () -> ());
  (* Bounded fuel: generated programs terminate structurally, so running
     out of fuel is itself an engine-error finding (a generator or
     interpreter bug), reported fast instead of hanging the campaign. *)
  (match Interp.run ~fuel:2_000_000 p ~entry:"main" with
   | exception exn -> add "engine-error" "interp" "%s" (Printexc.to_string exn)
   | reference ->
     let glen = reference.Interp.map.Memmap.globals_end in
     let grid = gen_mir_grid (Rng.create (case + 0x5bd1)) in
     List.iter
       (fun cfg ->
         List.iter
           (fun scheduling ->
             let engine = label_of_config cfg ~scheduling in
             match compile_mir cfg ~scheduling p with
             | exception exn -> add "compile" engine "%s" (Printexc.to_string exn)
             | image, layout, entry, compiled, violations ->
               List.iter (fun v -> add "contract" engine "%s" v) violations;
               let mem = Memmap.init_memory layout compiled in
               (match Sim.run ~fuel:2_000_000 cfg ~image ~mem ~entry () with
                | exception exn -> add "engine-error" engine "%s" (Printexc.to_string exn)
                | r ->
                  (match r.Sim.trap with
                   | Some t -> add "trap" engine "%a" Sim.pp_trap t
                   | None ->
                     if r.Sim.ret <> reference.Interp.ret then
                       add "ret" engine "returned %#x, interpreter %#x" r.Sim.ret
                         reference.Interp.ret;
                     if not (region_equal r.Sim.mem reference.Interp.mem ~len:glen) then
                       add "mem" engine "final globals memory differs from the interpreter")))
           [ true; false ])
       grid;
     (* ARM baseline: defined for unpredicated programs only. *)
     if not (mir_uses_predication p) then begin
       match
         let arm_prog, arm_layout, linked = Arm.compile_program (Epic_opt.Common.copy_program p) in
         let mem = Memmap.init_memory arm_layout linked in
         (Arm.Sim.run ~fuel:2_000_000 arm_prog ~mem (), arm_layout)
       with
       | exception exn -> add "compile" "arm" "%s" (Printexc.to_string exn)
       | r, arm_layout ->
         if r.Arm.Sim.ret <> reference.Interp.ret then
           add "arm-ret" "arm" "returned %#x, interpreter %#x" r.Arm.Sim.ret
             reference.Interp.ret;
         List.iter
           (fun (g : Ir.global) ->
             let a_epic = Memmap.addr_of reference.Interp.map g.Ir.g_name in
             let a_arm = Memmap.addr_of arm_layout g.Ir.g_name in
             if
               not
                 (Bytes.equal
                    (Bytes.sub reference.Interp.mem a_epic g.Ir.g_bytes)
                    (Bytes.sub r.Arm.Sim.mem a_arm g.Ir.g_bytes))
             then add "arm-mem" "arm" "global %s differs from the interpreter" g.Ir.g_name)
           p.Ir.p_globals
     end);
  List.rev !fnd

(* -- ENC oracle ----------------------------------------------------- *)

let check_enc_inst ~case (cfg : Config.t) table (i : Isa.inst) : finding list =
  let repro =
    Format.asprintf "%a  under fields %d/%d/%d/%d" Isa.pp_inst i
      cfg.Config.opcode_bits cfg.Config.dst_bits cfg.Config.src_bits
      cfg.Config.pred_bits
  in
  let add f_class fmt =
    Format.kasprintf
      (fun s ->
        [ { f_case = case; f_kind = K_enc; f_class; f_engine = "encoding";
            f_detail = s; f_repro = repro } ])
      fmt
  in
  match Enc.encode table cfg i with
  | exception Enc.Encode_error _ -> []   (* legal rejection *)
  | exception exn -> add "engine-error" "encode raised %s" (Printexc.to_string exn)
  | w -> (
    match Enc.decode table cfg w with
    | exception exn -> add "encoding" "decode raised %s" (Printexc.to_string exn)
    | d ->
      if d <> i then
        add "encoding" "decode(%#Lx) = %a, not the encoded instruction" w Isa.pp_inst d
      else begin
        match Enc.encode table cfg d with
        | exception exn ->
          add "encoding" "re-encode of a decoded instruction raised %s"
            (Printexc.to_string exn)
        | w2 ->
          if w2 <> w then add "encoding" "re-encode %#Lx <> first encode %#Lx" w2 w
          else begin
            let b = Enc.word_to_bytes cfg w in
            let w3 = Enc.word_of_bytes cfg b 0 in
            if w3 <> w then add "encoding" "byte round trip %#Lx <> %#Lx" w3 w
            else []
          end
      end)

let check_enc ~case rng : finding list =
  let cfg = gen_field_config rng in
  let table = Enc.make_table cfg in
  let insts = List.init 32 (fun _ -> gen_inst rng cfg) in
  List.concat_map (fun i -> check_enc_inst ~case cfg table i) insts

(* ------------------------------------------------------------------ *)
(* Greedy shrinkers: keep removing pieces while the (re-run) oracle
   still produces a finding of one of the original classes. *)

let classes fs = List.sort_uniq compare (List.map (fun f -> f.f_class) fs)

let still_fails ~want fs =
  List.exists (fun f -> List.mem f.f_class want) fs

let shrink_asm ~case (cfg : Config.t) (u : A.t) (found : finding list) =
  let want = classes found in
  let eval items =
    let u = { A.items } in
    check_asm ~case ~repro:"" cfg u
  in
  let budget = ref 300 in
  let rec go items =
    if !budget <= 0 then items
    else begin
      (* Candidate edits: drop a whole bundle, or one op of a bundle. *)
      let n = List.length items in
      let rec try_at k =
        if k >= n then None
        else
          let cands =
            match List.nth items k with
            | A.Ibundle [ _ ] | A.Ilabel _ | A.Idirective _ ->
              [ List.filteri (fun j _ -> j <> k) items ]
            | A.Ibundle ops ->
              List.filteri (fun j _ -> j <> k) items
              :: List.mapi
                   (fun oi _ ->
                     List.mapi
                       (fun j it ->
                         if j = k then
                           A.Ibundle (List.filteri (fun x _ -> x <> oi) ops)
                         else it)
                       items)
                   ops
          in
          let hit =
            List.find_opt
              (fun cand ->
                decr budget;
                !budget >= 0 && still_fails ~want (eval cand))
              cands
          in
          (match hit with Some c -> Some c | None -> try_at (k + 1))
      in
      match try_at 0 with Some smaller -> go smaller | None -> items
    end
  in
  { A.items = go u.A.items }

let shrink_mir ~case (p : Ir.program) (found : finding list) =
  let want = classes found in
  (* A candidate must stay well-formed MIR: dropping a defining
     instruction would otherwise make the program fail for a fresh
     reason (use before definition) of the same finding class, and the
     shrinker would chase that instead of the original divergence. *)
  let eval q =
    match Verify.check_program q with
    | Error _ -> []
    | Ok () -> check_mir ~case ~repro:"" q
  in
  let copy = Epic_opt.Common.copy_program in
  let budget = ref 60 in
  let rec go p =
    if !budget <= 0 then p
    else begin
      let cands = ref [] in
      List.iteri
        (fun fi (f : Ir.func) ->
          List.iteri
            (fun bi (b : Ir.block) ->
              List.iteri
                (fun ii _ ->
                  cands :=
                    (fun () ->
                      let q = copy p in
                      let fb = List.nth (List.nth q.Ir.p_funcs fi).Ir.f_blocks bi in
                      fb.Ir.b_insts <- List.filteri (fun j _ -> j <> ii) fb.Ir.b_insts;
                      q)
                    :: !cands)
                b.Ir.b_insts;
              match b.Ir.b_term with
              | Ir.Br (_, _, _, lt, lf) ->
                List.iter
                  (fun l ->
                    cands :=
                      (fun () ->
                        let q = copy p in
                        let fb = List.nth (List.nth q.Ir.p_funcs fi).Ir.f_blocks bi in
                        fb.Ir.b_term <- Ir.Jmp l;
                        q)
                      :: !cands)
                  [ lt; lf ]
              | _ -> ())
            f.Ir.f_blocks)
        p.Ir.p_funcs;
      let hit =
        List.find_map
          (fun mk ->
            if !budget <= 0 then None
            else begin
              decr budget;
              let q = mk () in
              if still_fails ~want (eval q) then Some q else None
            end)
          (List.rev !cands)
      in
      match hit with Some q -> go q | None -> p
    end
  in
  go p

(* ------------------------------------------------------------------ *)
(* Campaign driver *)

type report = {
  r_cases : int;
  r_mir : int;
  r_asm : int;
  r_enc : int;
  r_findings : finding list;
  r_stats : Exec.campaign_stats;
}

let default_kinds = [ K_mir; K_asm; K_enc ]

let run_case ~seed ~shrink index kind : finding list =
  let rng = Rng.create (Rng.case_seed ~seed ~index) in
  try
    match kind with
    | K_enc -> check_enc ~case:index rng
    | K_asm ->
      let cfg, u = gen_asm_case rng in
      (match check_asm ~case:index ~repro:"" cfg u with
       | [] -> []
       | found ->
         let u = if shrink then shrink_asm ~case:index cfg u found else u in
         let repro =
           Printf.sprintf "# envelope: %s\n%s"
             (label_of_config cfg ~scheduling:false) (string_of_asm u)
         in
         List.map (fun f -> { f with f_repro = repro })
           (check_asm ~case:index ~repro cfg u))
    | K_mir ->
      let p = gen_mir_program rng in
      (match check_mir ~case:index ~repro:"" p with
       | [] -> []
       | found ->
         let p = if shrink then shrink_mir ~case:index p found else p in
         let repro = string_of_mir p in
         List.map (fun f -> { f with f_repro = repro }) (check_mir ~case:index ~repro p))
  with exn ->
    [ { f_case = index; f_kind = kind; f_class = "engine-error"; f_engine = "driver";
        f_detail = Printexc.to_string exn; f_repro = "" } ]

let fuzz ?jobs ?(shrink = true) ?(kinds = default_kinds) ~seed ~cases () : report =
  if kinds = [] then invalid_arg "Epic_difftest.fuzz: no case kinds";
  let karr = Array.of_list kinds in
  let t0 = Exec.now () in
  let results =
    Exec.Pool.run ?jobs cases (fun i ->
        run_case ~seed ~shrink i karr.(i mod Array.length karr))
  in
  let count k =
    let c = ref 0 in
    Array.iteri (fun i _ -> if karr.(i mod Array.length karr) = k then incr c) results;
    !c
  in
  let findings = Array.to_list results |> List.concat in
  let stats =
    { Exec.cs_label = "epicfuzz";
      cs_jobs = (match jobs with Some j when j > 0 -> j | _ -> Exec.default_jobs ());
      cs_tasks = cases;
      cs_wall_s = Exec.now () -. t0;
      cs_caches = []; cs_notes = [] }
  in
  { r_cases = cases;
    r_mir = count K_mir;
    r_asm = count K_asm;
    r_enc = count K_enc;
    r_findings = findings;
    r_stats = stats }

let pp_report ppf r =
  List.iter (fun f -> Format.fprintf ppf "%a@." pp_finding f) r.r_findings;
  let contract =
    List.length (List.filter (fun f -> f.f_class = "contract") r.r_findings)
  in
  Format.fprintf ppf
    "epicfuzz: %d cases (mir %d, asm %d, enc %d): %d divergence(s), %d contract violation(s)@."
    r.r_cases r.r_mir r.r_asm r.r_enc
    (List.length r.r_findings - contract)
    contract
