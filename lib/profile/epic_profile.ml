(* Cycle-attribution profiler for the EPIC cycle-level simulator.

   {!Epic_sim.run}'s event stream is conservative — every simulated cycle
   is covered by exactly one event — so attributing each event to the
   basic block (and enclosing function) of its program counter yields a
   profile whose totals sum to [stats.cycles] exactly.  The symbol
   information needed to name blocks and functions is already in the
   assembled image ({!Epic_asm.Aunit.image.im_symbols}): the code
   generator labels every function with its name and every basic block
   with ".L<function>_<id>" ({!Epic_sched}), and the assembler resolves
   those labels to bundle indices.

   Function-level cumulative times come from a shadow call stack driven
   by the event stream itself: a taken BRL pushes (callee, return pc);
   a taken branch back to the recorded return pc pops.  Every cycle is
   charged once to the "self" of the block/function containing its pc
   and once to the cumulative time of each distinct function on the
   stack (so recursion never double-counts and [cum >= self] always
   holds; the bottom frame — [_start] — accumulates exactly the total).

   Pipeline-refill bubbles after a call or return are charged to the
   block holding the branch (their architectural cause), which places a
   call's refill in the callee's cumulative time — the same convention
   gprof uses for call overhead. *)

module Isa = Epic_isa
module Config = Epic_config
module Mdes = Epic_mdes
module A = Epic_asm.Aunit
module Sim = Epic_sim

(* ------------------------------------------------------------------ *)
(* Minimal JSON value: enough to emit the machine-readable dumps and to
   validate them (the golden tests parse what the exporters emit).  *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    emit buf t;
    Buffer.contents buf

  exception Parse of string

  (* Recursive-descent parser over the full grammar; used by the tests to
     check exporter output and by consumers of the stats dumps. *)
  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then (pos := !pos + l; v)
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
           | Some '"' -> Buffer.add_char buf '"'; advance ()
           | Some '\\' -> Buffer.add_char buf '\\'; advance ()
           | Some '/' -> Buffer.add_char buf '/'; advance ()
           | Some 'n' -> Buffer.add_char buf '\n'; advance ()
           | Some 'r' -> Buffer.add_char buf '\r'; advance ()
           | Some 't' -> Buffer.add_char buf '\t'; advance ()
           | Some 'b' -> Buffer.add_char buf '\b'; advance ()
           | Some 'f' -> Buffer.add_char buf '\012'; advance ()
           | Some 'u' ->
             advance ();
             if !pos + 4 > n then fail "bad \\u escape";
             let hex = String.sub s !pos 4 in
             (match int_of_string_opt ("0x" ^ hex) with
              | Some code ->
                (* Keep it simple: store the code point raw if ASCII,
                   else a '?' (the exporters only escape control chars). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else Buffer.add_char buf '?';
                pos := !pos + 4
              | None -> fail "bad \\u escape")
           | _ -> fail "bad escape");
          go ()
        | Some c -> Buffer.add_char buf c; advance (); go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c when is_num_char c -> true | _ -> false) do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None ->
        (match float_of_string_opt tok with
         | Some f -> Float f
         | None -> fail (Printf.sprintf "bad number %S" tok))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> Str (parse_string ())
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else begin
          let items = ref [] in
          let rec go () =
            items := parse_value () :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); go ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          List (List.rev !items)
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let items = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            items := (k, v) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); go ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          Obj (List.rev !items)
        end
      | Some ('0' .. '9' | '-') -> parse_number ()
      | _ -> fail "unexpected character"
    in
    try
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
      else Ok v
    with Parse m -> Error m

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Symbol table: the image's labels, as half-open bundle-index regions. *)

type region = {
  rg_label : string;  (* the label starting the region *)
  rg_func : string;   (* enclosing function (block labels are .L<fn>_<id>) *)
  rg_start : int;     (* first bundle index *)
  rg_end : int;       (* one past the last bundle index *)
}

type symtab = {
  sy_regions : region array;  (* sorted by rg_start, covering [0, n) *)
  sy_n_bundles : int;
}

(* Block labels are ".L<function>_<id>" (Epic_sched.Codegen.block_label);
   anything else is a function-entry label. *)
let func_of_label l =
  if String.length l > 2 && l.[0] = '.' && l.[1] = 'L' then
    match String.rindex_opt l '_' with
    | Some i when i > 2 -> String.sub l 2 (i - 2)
    | _ -> l
  else l

let symtab_of_image (im : A.image) =
  let n = Array.length im.A.im_insts / im.A.im_issue_width in
  let syms =
    List.sort
      (fun (l1, a1) (l2, a2) ->
        match compare a1 a2 with 0 -> compare l1 l2 | c -> c)
      im.A.im_symbols
  in
  (* Two labels on one bundle: keep the function label over the block's. *)
  let rec dedupe = function
    | (l1, a1) :: (l2, a2) :: rest when a1 = a2 ->
      let keep = if String.length l1 > 0 && l1.[0] = '.' then l2 else l1 in
      dedupe ((keep, a1) :: rest)
    | x :: rest -> x :: dedupe rest
    | [] -> []
  in
  let syms = dedupe syms in
  let syms =
    match syms with (_, 0) :: _ -> syms | _ -> ("(code)", 0) :: syms
  in
  let arr = Array.of_list syms in
  let regions =
    Array.mapi
      (fun i (l, a) ->
        let e = if i + 1 < Array.length arr then snd arr.(i + 1) else n in
        { rg_label = l; rg_func = func_of_label l; rg_start = a; rg_end = e })
      arr
  in
  { sy_regions = regions; sy_n_bundles = n }

let region_index st pc =
  let r = st.sy_regions in
  let lo = ref 0 and hi = ref (Array.length r - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if r.(mid).rg_start <= pc then lo := mid else hi := mid - 1
  done;
  !lo

let region_of_pc st pc = st.sy_regions.(region_index st pc)
let func_of_pc st pc = (region_of_pc st pc).rg_func

(* ------------------------------------------------------------------ *)
(* Recorder *)

type func_acc = {
  mutable fa_self : int;      (* cycles with pc inside the function *)
  mutable fa_cum : int;       (* cycles with the function on the stack *)
  mutable fa_calls : int;     (* times pushed by a taken BRL *)
  mutable fa_operand : int;   (* self stall-cycle breakdown *)
  mutable fa_port : int;
  mutable fa_branch : int;
}

type frame = { fr_fn : string; fr_ret : int }

(* Retained events, four ints each: issue cycle, pc, packed metadata and
   an auxiliary word.  Tag in meta bits 0-1 (0 issue / 1 operand / 2 port
   / 3 branch); for issues, bits 4-11 hold the executed-op count, bit 12
   "taken", bit 13 "call" (a BRL was executed), and aux is next_pc; for
   stalls aux is the stall length. *)
let tag_issue = 0
and tag_operand = 1
and tag_port = 2
and tag_branch = 3

type t = {
  pr_cfg : Config.t;
  pr_image : A.image;
  pr_symtab : symtab;
  pr_units : int array;       (* functional units per class (ALU/LSU/CMPU/BRU) *)
  (* per-bundle-index accumulation *)
  pr_issues : int array;
  pr_operand : int array;
  pr_port : int array;
  pr_branch : int array;
  (* totals *)
  mutable pr_cycles : int;
  mutable pr_bundles : int;
  pr_fu_ops : int array;      (* executed ops per unit class *)
  pr_fu_squashed : int array;
  (* function attribution *)
  pr_funcs : (string, func_acc) Hashtbl.t;
  mutable pr_stack : frame list;  (* top first; never empties *)
  (* retained event log (chrome-trace export) *)
  pr_keep : bool;
  mutable pr_n : int;
  mutable pr_at : int array;
  mutable pr_pc : int array;
  mutable pr_meta : int array;
  mutable pr_aux : int array;
}

let unit_slot = function
  | Isa.U_alu -> 0
  | Isa.U_lsu -> 1
  | Isa.U_cmpu -> 2
  | Isa.U_bru -> 3
  | Isa.U_none -> -1

let unit_name = function
  | 0 -> "ALU"
  | 1 -> "LSU"
  | 2 -> "CMPU"
  | _ -> "BRU"

let create ?(keep_events = false) (cfg : Config.t) (image : A.image) =
  let symtab = symtab_of_image image in
  let n = symtab.sy_n_bundles in
  let md = Mdes.of_config cfg in
  {
    pr_cfg = cfg;
    pr_image = image;
    pr_symtab = symtab;
    pr_units =
      [| md.Mdes.md_alus; md.Mdes.md_lsus; md.Mdes.md_cmpus; md.Mdes.md_brus |];
    pr_issues = Array.make n 0;
    pr_operand = Array.make n 0;
    pr_port = Array.make n 0;
    pr_branch = Array.make n 0;
    pr_cycles = 0;
    pr_bundles = 0;
    pr_fu_ops = Array.make 4 0;
    pr_fu_squashed = Array.make 4 0;
    pr_funcs = Hashtbl.create 16;
    pr_stack = [];
    pr_keep = keep_events;
    pr_n = 0;
    pr_at = (if keep_events then Array.make 4096 0 else [||]);
    pr_pc = (if keep_events then Array.make 4096 0 else [||]);
    pr_meta = (if keep_events then Array.make 4096 0 else [||]);
    pr_aux = (if keep_events then Array.make 4096 0 else [||]);
  }

let acc t fn =
  match Hashtbl.find_opt t.pr_funcs fn with
  | Some a -> a
  | None ->
    let a =
      { fa_self = 0; fa_cum = 0; fa_calls = 0; fa_operand = 0; fa_port = 0;
        fa_branch = 0 }
    in
    Hashtbl.add t.pr_funcs fn a;
    a

(* Charge [n] cycles: self to the function owning [pc], cumulative once
   to each distinct function of stack + {self} (recursion-safe). *)
let charge t pc n =
  let self_fn = func_of_pc t.pr_symtab pc in
  let sa = acc t self_fn in
  sa.fa_self <- sa.fa_self + n;
  sa.fa_cum <- sa.fa_cum + n;
  let rec go seen = function
    | [] -> ()
    | f :: rest ->
      if f.fr_fn <> self_fn && not (List.mem f.fr_fn seen) then begin
        let a = acc t f.fr_fn in
        a.fa_cum <- a.fa_cum + n
      end;
      go (f.fr_fn :: seen) rest
  in
  go [ self_fn ] t.pr_stack;
  t.pr_cycles <- t.pr_cycles + n;
  sa

let push_event t at pc meta aux =
  if t.pr_keep then begin
    if t.pr_n = Array.length t.pr_at then begin
      let grow a = Array.append a (Array.make (Array.length a) 0) in
      t.pr_at <- grow t.pr_at;
      t.pr_pc <- grow t.pr_pc;
      t.pr_meta <- grow t.pr_meta;
      t.pr_aux <- grow t.pr_aux
    end;
    t.pr_at.(t.pr_n) <- at;
    t.pr_pc.(t.pr_n) <- pc;
    t.pr_meta.(t.pr_n) <- meta;
    t.pr_aux.(t.pr_n) <- aux;
    t.pr_n <- t.pr_n + 1
  end

let sink t (ev : Sim.event) =
  (* Lazily seed the shadow stack from the first event's function. *)
  (match ev, t.pr_stack with
   | (Sim.Ev_stall { pc; _ } | Sim.Ev_issue { pc; _ }), [] ->
     t.pr_stack <- [ { fr_fn = func_of_pc t.pr_symtab pc; fr_ret = -1 } ]
   | _ -> ());
  match ev with
  | Sim.Ev_stall { at; pc; cause; cycles } ->
    let sa = charge t pc cycles in
    let tag, per_pc, bump =
      match cause with
      | Sim.S_operand ->
        (tag_operand, t.pr_operand, fun () -> sa.fa_operand <- sa.fa_operand + cycles)
      | Sim.S_port ->
        (tag_port, t.pr_port, fun () -> sa.fa_port <- sa.fa_port + cycles)
      | Sim.S_branch ->
        (tag_branch, t.pr_branch, fun () -> sa.fa_branch <- sa.fa_branch + cycles)
    in
    per_pc.(pc) <- per_pc.(pc) + cycles;
    bump ();
    push_event t at pc tag cycles
  | Sim.Ev_issue { at; pc; slots; next_pc; taken } ->
    ignore (charge t pc 1);
    t.pr_issues.(pc) <- t.pr_issues.(pc) + 1;
    t.pr_bundles <- t.pr_bundles + 1;
    let ops = ref 0 in
    let is_call = ref false in
    Array.iter
      (fun s ->
        match s with
        | Sim.Sl_op op ->
          incr ops;
          if op = Isa.BRL then is_call := true;
          let u = unit_slot (Isa.unit_of op) in
          if u >= 0 then t.pr_fu_ops.(u) <- t.pr_fu_ops.(u) + 1
        | Sim.Sl_squashed op ->
          incr ops;
          let u = unit_slot (Isa.unit_of op) in
          if u >= 0 then t.pr_fu_squashed.(u) <- t.pr_fu_squashed.(u) + 1
        | Sim.Sl_empty | Sim.Sl_shadowed _ -> ())
      slots;
    let is_call = !is_call && taken in
    if taken then begin
      if is_call then begin
        let callee = func_of_pc t.pr_symtab next_pc in
        (acc t callee).fa_calls <- (acc t callee).fa_calls + 1;
        t.pr_stack <- { fr_fn = callee; fr_ret = pc + 1 } :: t.pr_stack
      end
      else
        match t.pr_stack with
        | top :: (_ :: _ as rest) when top.fr_ret = next_pc ->
          t.pr_stack <- rest
        | _ -> ()
    end;
    let meta =
      tag_issue lor (!ops lsl 4)
      lor (if taken then 1 lsl 12 else 0)
      lor (if is_call then 1 lsl 13 else 0)
    in
    push_event t at pc meta next_pc

(* ------------------------------------------------------------------ *)
(* Reports *)

type block_row = {
  br_label : string;
  br_func : string;
  br_start : int;
  br_end : int;
  br_cycles : int;    (* issues + stalls of the block's bundles *)
  br_issues : int;
  br_operand : int;
  br_port : int;
  br_branch : int;
}

type func_row = {
  fr_name : string;
  fr_self : int;
  fr_cum : int;
  fr_calls : int;
  fr_operand : int;
  fr_port : int;
  fr_branch : int;
}

type unit_row = {
  ur_name : string;     (* ALU / LSU / CMPU / BRU *)
  ur_count : int;       (* functional units of this class *)
  ur_ops : int;         (* executed operations *)
  ur_squashed : int;    (* issued but nullified by a false guard *)
  ur_util : float;      (* ops / (cycles * count) *)
}

type report = {
  rp_cycles : int;      (* = sum over blocks of br_cycles *)
  rp_bundles : int;
  rp_operand : int;
  rp_port : int;
  rp_branch : int;
  rp_blocks : block_row list;  (* hottest first *)
  rp_funcs : func_row list;    (* by cumulative cycles, descending *)
  rp_units : unit_row list;
}

let sum_range (a : int array) lo hi =
  let s = ref 0 in
  for i = lo to hi - 1 do
    s := !s + a.(i)
  done;
  !s

let report t =
  let blocks =
    Array.to_list t.pr_symtab.sy_regions
    |> List.filter_map (fun r ->
           let issues = sum_range t.pr_issues r.rg_start r.rg_end in
           let operand = sum_range t.pr_operand r.rg_start r.rg_end in
           let port = sum_range t.pr_port r.rg_start r.rg_end in
           let branch = sum_range t.pr_branch r.rg_start r.rg_end in
           let cycles = issues + operand + port + branch in
           if cycles = 0 then None
           else
             Some
               { br_label = r.rg_label; br_func = r.rg_func;
                 br_start = r.rg_start; br_end = r.rg_end;
                 br_cycles = cycles; br_issues = issues; br_operand = operand;
                 br_port = port; br_branch = branch })
    |> List.sort (fun a b -> compare b.br_cycles a.br_cycles)
  in
  let funcs =
    Hashtbl.fold
      (fun name (a : func_acc) rows ->
        { fr_name = name; fr_self = a.fa_self; fr_cum = a.fa_cum;
          fr_calls = a.fa_calls; fr_operand = a.fa_operand;
          fr_port = a.fa_port; fr_branch = a.fa_branch }
        :: rows)
      t.pr_funcs []
    |> List.sort (fun a b ->
           match compare b.fr_cum a.fr_cum with
           | 0 -> compare a.fr_name b.fr_name
           | c -> c)
  in
  let units =
    List.init 4 (fun u ->
        let count = t.pr_units.(u) in
        let ops = t.pr_fu_ops.(u) in
        {
          ur_name = unit_name u;
          ur_count = count;
          ur_ops = ops;
          ur_squashed = t.pr_fu_squashed.(u);
          ur_util =
            (if t.pr_cycles = 0 || count = 0 then 0.0
             else float_of_int ops /. float_of_int (t.pr_cycles * count));
        })
  in
  {
    rp_cycles = t.pr_cycles;
    rp_bundles = t.pr_bundles;
    rp_operand = Array.fold_left ( + ) 0 t.pr_operand;
    rp_port = Array.fold_left ( + ) 0 t.pr_port;
    rp_branch = Array.fold_left ( + ) 0 t.pr_branch;
    rp_blocks = blocks;
    rp_funcs = funcs;
    rp_units = units;
  }

let pct total n =
  if total = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int total

let pp_report ppf (r : report) =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "cycles %d  (issue %d  operand stalls %d [%.1f%%]  port stalls %d [%.1f%%]  \
     branch bubbles %d [%.1f%%])@,"
    r.rp_cycles r.rp_bundles r.rp_operand
    (pct r.rp_cycles r.rp_operand)
    r.rp_port (pct r.rp_cycles r.rp_port) r.rp_branch
    (pct r.rp_cycles r.rp_branch);
  Format.fprintf ppf "@,%-24s %10s %7s %10s %7s %8s@," "function" "self"
    "self%" "cumulative" "cum%" "calls";
  List.iter
    (fun f ->
      Format.fprintf ppf "%-24s %10d %6.1f%% %10d %6.1f%% %8d@," f.fr_name
        f.fr_self
        (pct r.rp_cycles f.fr_self)
        f.fr_cum
        (pct r.rp_cycles f.fr_cum)
        f.fr_calls)
    r.rp_funcs;
  Format.fprintf ppf "@,%-24s %10s %7s %9s %8s %8s %8s@," "block" "cycles"
    "cyc%" "issues" "operand" "port" "branch";
  List.iter
    (fun b ->
      Format.fprintf ppf "%-24s %10d %6.1f%% %9d %8d %8d %8d@," b.br_label
        b.br_cycles
        (pct r.rp_cycles b.br_cycles)
        b.br_issues b.br_operand b.br_port b.br_branch)
    r.rp_blocks;
  Format.fprintf ppf "@,%-6s %6s %12s %10s %12s@," "unit" "count" "ops"
    "squashed" "occupancy";
  List.iter
    (fun u ->
      Format.fprintf ppf "%-6s %6d %12d %10d %11.1f%%@," u.ur_name u.ur_count
        u.ur_ops u.ur_squashed (100.0 *. u.ur_util))
    r.rp_units;
  Format.fprintf ppf "@]"

(* Annotated scheduled assembly of the hottest blocks: per bundle, the
   issue count, the stall cycles it caused, and the operations. *)
let pp_hot ?(top = 5) t ppf (r : report) =
  let w = t.pr_image.A.im_issue_width in
  let insts = t.pr_image.A.im_insts in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i b ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf
        "-- %s (%s)  %d cycles (%.1f%%): %d issues, stalls %d/%d/%d \
         (operand/port/branch)@,"
        b.br_label b.br_func b.br_cycles
        (pct r.rp_cycles b.br_cycles)
        b.br_issues b.br_operand b.br_port b.br_branch;
      for pc = b.br_start to b.br_end - 1 do
        let stall = t.pr_operand.(pc) + t.pr_port.(pc) + t.pr_branch.(pc) in
        Format.fprintf ppf "%6d  %9d issues %7d stalls  { " pc t.pr_issues.(pc)
          stall;
        let first = ref true in
        for k = 0 to w - 1 do
          let inst = insts.((pc * w) + k) in
          if inst.Isa.op <> Isa.NOP then begin
            if not !first then Format.fprintf ppf " ; ";
            first := false;
            Isa.pp_inst ppf inst
          end
        done;
        if !first then Format.fprintf ppf "NOP";
        Format.fprintf ppf " }@,"
      done)
    (take top r.rp_blocks);
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Machine-readable exporters *)

let stats_to_json (st : Sim.stats) =
  Json.Obj
    [
      ("cycles", Json.Int st.Sim.cycles);
      ("bundles", Json.Int st.Sim.bundles);
      ("ops", Json.Int st.Sim.ops);
      ("nops", Json.Int st.Sim.nops);
      ("squashed", Json.Int st.Sim.squashed);
      ("operand_stalls", Json.Int st.Sim.operand_stalls);
      ("port_stalls", Json.Int st.Sim.port_stalls);
      ("branch_bubbles", Json.Int st.Sim.branch_bubbles);
      ("mem_reads", Json.Int st.Sim.mem_reads);
      ("mem_writes", Json.Int st.Sim.mem_writes);
      ("alu_ops", Json.Int st.Sim.alu_ops);
      ("lsu_ops", Json.Int st.Sim.lsu_ops);
      ("cmpu_ops", Json.Int st.Sim.cmpu_ops);
      ("bru_ops", Json.Int st.Sim.bru_ops);
      ("ilp", Json.Float (Sim.ilp st));
    ]

let report_to_json (r : report) =
  let block b =
    Json.Obj
      [
        ("label", Json.Str b.br_label);
        ("function", Json.Str b.br_func);
        ("start", Json.Int b.br_start);
        ("end", Json.Int b.br_end);
        ("cycles", Json.Int b.br_cycles);
        ("issues", Json.Int b.br_issues);
        ("operand_stalls", Json.Int b.br_operand);
        ("port_stalls", Json.Int b.br_port);
        ("branch_bubbles", Json.Int b.br_branch);
      ]
  in
  let func f =
    Json.Obj
      [
        ("name", Json.Str f.fr_name);
        ("self", Json.Int f.fr_self);
        ("cumulative", Json.Int f.fr_cum);
        ("calls", Json.Int f.fr_calls);
        ("operand_stalls", Json.Int f.fr_operand);
        ("port_stalls", Json.Int f.fr_port);
        ("branch_bubbles", Json.Int f.fr_branch);
      ]
  in
  let unit u =
    Json.Obj
      [
        ("unit", Json.Str u.ur_name);
        ("count", Json.Int u.ur_count);
        ("ops", Json.Int u.ur_ops);
        ("squashed", Json.Int u.ur_squashed);
        ("occupancy", Json.Float u.ur_util);
      ]
  in
  Json.Obj
    [
      ("cycles", Json.Int r.rp_cycles);
      ("bundles", Json.Int r.rp_bundles);
      ("operand_stalls", Json.Int r.rp_operand);
      ("port_stalls", Json.Int r.rp_port);
      ("branch_bubbles", Json.Int r.rp_branch);
      ("functions", Json.List (List.map func r.rp_funcs));
      ("blocks", Json.List (List.map block r.rp_blocks));
      ("units", Json.List (List.map unit r.rp_units));
    ]

(* Chrome trace-event JSON (chrome://tracing, Perfetto).  Timestamps are
   simulated cycles presented as microseconds.  Thread 0 carries the
   pipeline: one complete ("X") event per issued bundle named after its
   basic block, nested inside begin/end ("B"/"E") spans for the function
   call tree reconstructed from the shadow stack.  Thread 1 carries one
   "X" event per stall, named after its cause. *)

let chrome_trace t emit =
  if not t.pr_keep then
    invalid_arg "Epic_profile.chrome_trace: recorder was not created with \
                 ~keep_events:true";
  let st = t.pr_symtab in
  let first = ref true in
  let obj line =
    if !first then first := false else emit ",\n";
    emit line
  in
  emit "{\"traceEvents\":[\n";
  obj
    "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\
     \"EPIC cycle-level simulation (1 cycle = 1us)\"}}";
  obj
    "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\",\"args\":\
     {\"name\":\"pipeline\"}}";
  obj
    "{\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\",\"args\":\
     {\"name\":\"stalls\"}}";
  (* Replay the event log through the same call-stack logic as the
     recorder, emitting B/E spans for calls and returns. *)
  let stack = ref [] in
  let begin_fn name ts =
    obj
      (Printf.sprintf
         "{\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":%d,\"name\":\"%s\"}" ts
         (Json.escape name))
  in
  let end_fn ts =
    obj (Printf.sprintf "{\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":%d}" ts)
  in
  let last_at = ref 0 in
  for i = 0 to t.pr_n - 1 do
    let at = t.pr_at.(i)
    and pc = t.pr_pc.(i)
    and meta = t.pr_meta.(i)
    and aux = t.pr_aux.(i) in
    last_at := at;
    let tag = meta land 3 in
    if tag = tag_issue then begin
      (if !stack = [] then begin
         let fn = func_of_pc st pc in
         stack := [ { fr_fn = fn; fr_ret = -1 } ];
         begin_fn fn at
       end);
      let r = region_of_pc st pc in
      let ops = (meta lsr 4) land 0xff in
      obj
        (Printf.sprintf
           "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":%d,\"dur\":1,\"name\":\
            \"%s\",\"cat\":\"bundle\",\"args\":{\"pc\":%d,\"ops\":%d}}"
           at (Json.escape r.rg_label) pc ops);
      let taken = meta land (1 lsl 12) <> 0
      and call = meta land (1 lsl 13) <> 0 in
      if taken then
        if call then begin
          let callee = func_of_pc st aux in
          stack := { fr_fn = callee; fr_ret = pc + 1 } :: !stack;
          begin_fn callee (at + 1)
        end
        else
          match !stack with
          | top :: (_ :: _ as rest) when top.fr_ret = aux ->
            stack := rest;
            end_fn (at + 1)
          | _ -> ()
    end
    else begin
      let cause =
        if tag = tag_operand then "operand stall"
        else if tag = tag_port then "port stall"
        else "branch bubbles"
      in
      obj
        (Printf.sprintf
           "{\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":%d,\"dur\":%d,\"name\":\
            \"%s\",\"cat\":\"stall\",\"args\":{\"pc\":%d}}"
           at aux cause pc)
    end
  done;
  (* Close whatever is still open (the bottom frame always is). *)
  List.iter (fun _ -> end_fn (!last_at + 1)) !stack;
  emit "\n],\"displayTimeUnit\":\"ms\"}\n"

let chrome_trace_to_string t =
  let buf = Buffer.create 65536 in
  chrome_trace t (Buffer.add_string buf);
  Buffer.contents buf

let chrome_trace_to_channel t oc = chrome_trace t (output_string oc)
