(* Programming the processor directly in EPIC assembly: the paper's
   Section 3.1 format end to end — textual assembly through the assembler
   (label resolution, bundle padding, configuration checking, 64-bit
   encoding) and onto the cycle-level simulator, with a bundle trace.

   The program computes gcd(1071, 462) with explicitly scheduled bundles,
   showing PBRR/branch pairs, predication and the STW offset field.

   Run with: dune exec examples/handwritten_asm.exe *)

let program =
  ";; gcd(r12, r13) by repeated remainder, result in r3\n\
   _start:\n\
   { MOV r1, #4096 ; MOV r12, #1071 ; MOV r13, #462 ; PBRR b0, @loop }\n\
   loop:\n\
   ;; p1 <- (r13 != 0), p2 <- its complement, prepared branch in b1\n\
   { CMPP.NE p1, p2, r13, #0 ; PBRR b1, @done }\n\
   { BRCT #1, #2 }\n\
   { REM r14, r12, r13 }\n\
   { MOV r12, r13 ; MOV r13, r14 }\n\
   { BRU #0 }\n\
   done:\n\
   ;; store the result to memory as well (STW offset field in words)\n\
   { MOV r3, r12 }\n\
   { STW r1, #2, r3 }\n\
   { HALT }\n"

let () =
  let cfg = Epic.Config.default in
  print_endline "Assembling:";
  print_string program;
  let image, words = Epic.Asm.assemble_text cfg program in
  Printf.printf "\n%d bundles, %d slots, %d NOP pads inserted\n"
    (Array.length words / cfg.Epic.Config.issue_width)
    (Array.length words)
    (Epic.Asm.Aunit.nop_count image);
  print_endline "\nFirst encoded words (big-endian, as stored in the 4 banks):";
  Array.iteri (fun k w -> if k < 8 then Printf.printf "  %03d: %016Lx\n" k w) words;

  (* Round-trip self-check, as epicasm --roundtrip does. *)
  let table = Epic.Encoding.make_table cfg in
  let decoded = Epic.Asm.Aunit.decode_image cfg table words in
  assert (Array.for_all2 Epic.Isa.equal_inst decoded image.Epic.Asm.Aunit.im_insts);
  print_endline "binary round-trip: OK";

  print_endline "\nExecution trace:";
  let mem = Bytes.make 65536 '\000' in
  let r = Epic.Sim.run cfg ~trace:Format.std_formatter ~image ~mem () in
  Printf.printf "\ngcd(1071, 462) = %d (expected 21)\n" r.Epic.Sim.ret;
  Printf.printf "stored copy at 4096+8: %d\n"
    (Epic.Memmap.read ~size:Epic.Ir.I32 ~ext:Epic.Ir.Zx r.Epic.Sim.mem (4096 + 8))

let () =
  (* The same binary refuses to assemble for a machine without a divider —
     the assembler checks every operation against the configuration
     header, like the paper's. *)
  let no_div = { Epic.Config.default with Epic.Config.alu_omit = [ Epic.Isa.REM ] } in
  match Epic.Asm.assemble_text no_div program with
  | exception Epic.Asm.Asm_error d ->
    Printf.printf "\nwithout a remainder unit the assembler rejects it:\n  %s\n"
      (Epic.Diag.to_string d)
  | _ -> assert false
