bin/epicsim.mli:
