(* Shared command-line handling for the EPIC tools: every architectural
   parameter of the configuration header is a flag, so the whole
   customisation space of the paper is reachable from the shell. *)

open Cmdliner

let config_term =
  let alus =
    Arg.(value & opt int 4 & info [ "alus" ] ~docv:"N" ~doc:"Number of ALUs.")
  in
  let gprs =
    Arg.(value & opt int 64 & info [ "gprs" ] ~docv:"N" ~doc:"General-purpose registers.")
  in
  let preds =
    Arg.(value & opt int 32 & info [ "preds" ] ~docv:"N" ~doc:"Predicate registers.")
  in
  let btrs =
    Arg.(value & opt int 16 & info [ "btrs" ] ~docv:"N" ~doc:"Branch target registers.")
  in
  let issue =
    Arg.(value & opt int 4 & info [ "issue" ] ~docv:"N" ~doc:"Instructions per issue (1-4).")
  in
  let width =
    Arg.(value & opt int 32 & info [ "width" ] ~docv:"BITS" ~doc:"Datapath width.")
  in
  let ports =
    Arg.(value & opt int 8 & info [ "rf-ports" ] ~docv:"N"
         ~doc:"Register-file operations per cycle.")
  in
  let no_forwarding =
    Arg.(value & flag & info [ "no-forwarding" ] ~doc:"Disable result forwarding.")
  in
  let customs =
    Arg.(value & opt_all string [] & info [ "custom" ] ~docv:"NAME"
         ~doc:"Include a custom instruction from the registry (e.g. ROTR).")
  in
  let omits =
    Arg.(value & opt_all string [] & info [ "omit" ] ~docv:"OP"
         ~doc:"Remove an ALU operation from the datapath (e.g. DIV).")
  in
  let build alus gprs preds btrs issue width ports no_forwarding customs omits =
    let cfg =
      { Epic.Config.default with
        Epic.Config.n_alus = alus; n_gprs = gprs; n_preds = preds;
        n_btrs = btrs; issue_width = issue; width; rf_port_budget = ports;
        forwarding = not no_forwarding }
    in
    let cfg =
      List.fold_left
        (fun cfg o ->
          match Epic.Isa.opcode_of_string (String.uppercase_ascii o) with
          | Some op -> { cfg with Epic.Config.alu_omit = op :: cfg.Epic.Config.alu_omit }
          | None -> failwith (Printf.sprintf "unknown operation %s" o))
        cfg omits
    in
    let cfg =
      List.fold_left
        (fun cfg c -> Epic.Config.add_custom cfg (String.uppercase_ascii c))
        cfg customs
    in
    match Epic.Config.validate cfg with
    | Ok () -> cfg
    | Error ds ->
      (* One line per violated constraint, then exit non-zero. *)
      List.iter
        (fun d -> Printf.eprintf "error: invalid configuration: %s\n" (Epic.Diag.to_string d))
        ds;
      exit 1
  in
  Term.(const build $ alus $ gprs $ preds $ btrs $ issue $ width $ ports
        $ no_forwarding $ customs $ omits)

(* Pipeline control shared by the compiling tools (epicc, epicsim,
   epicprof): pass selection, MIR verification, differential checking,
   timing, and IR dumping. *)
let pipeline_term =
  let passes =
    Arg.(value & opt (some string) None
         & info [ "passes" ] ~docv:"LIST"
           ~doc:"Replace the default pass pipeline with a comma-separated \
                 list of registry passes (see --list-passes).")
  in
  let disable =
    Arg.(value & opt_all string []
         & info [ "disable-pass" ] ~docv:"NAME"
           ~doc:"Remove every occurrence of a pass from the pipeline \
                 (repeatable).")
  in
  let verify =
    Arg.(value & flag
         & info [ "verify-ir" ]
           ~doc:"Run the MIR well-formedness verifier on the pipeline input \
                 and after every pass.")
  in
  let diff =
    Arg.(value & flag
         & info [ "diff-check" ]
           ~doc:"Differentially check each pass: re-run the reference \
                 interpreter and compare results against the pre-pass \
                 program.")
  in
  let time =
    Arg.(value & flag
         & info [ "time-passes" ]
           ~doc:"Print a per-pass wall-time and IR-delta report to stderr.")
  in
  let dump =
    Arg.(value & opt_all string []
         & info [ "dump-after" ] ~docv:"PASS"
           ~doc:"Dump the MIR to stderr after each occurrence of a pass \
                 (repeatable).")
  in
  let build passes disable verify diff time dump =
    { Epic.Toolchain.pp_passes =
        Option.map
          (fun s ->
            String.split_on_char ',' s |> List.map String.trim
            |> List.filter (fun n -> n <> ""))
          passes;
      pp_disable = disable; pp_verify = verify; pp_diff_check = diff;
      pp_time = time; pp_dump_after = dump }
  in
  Term.(const build $ passes $ disable $ verify $ diff $ time $ dump)

(* Print the pipeline report when --time-passes was given. *)
let report_pipeline (pl : Epic.Toolchain.pipeline) report =
  if pl.Epic.Toolchain.pp_time then
    Format.eprintf "%a@." Epic.Opt.Pipeline.pp_report report

let list_passes () =
  List.iter
    (fun (p : Epic.Opt.pass) ->
      Printf.printf "%-14s %s\n" p.Epic.Opt.pass_name p.Epic.Opt.pass_descr)
    Epic.Opt.Registry.all

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let input_term =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input file.")

(* --jobs N, shared by every campaign tool.  0 is shorthand for the
   recommended domain count (also the default).  Campaign results are
   bit-identical for every jobs value; only wall time changes. *)
let jobs_term =
  let jobs =
    Arg.(value & opt int 0
         & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Evaluate independent campaign runs on $(docv) domains \
                 (default: the recommended domain count of this machine). \
                 Results are bit-identical for every value.")
  in
  let build n =
    if n < 0 then failwith "--jobs must be >= 0"
    else if n = 0 then Epic.Exec.default_jobs ()
    else n
  in
  Term.(const build $ jobs)

(* Exit-code convention for trapped simulations, shared by epicsim,
   epicasm and epicd's smoke tooling: the watchdog (fuel) trap exits 3,
   every other architectural fault exits 2. *)
let trap_exit_code (t : Epic.Sim.trap) =
  match t.Epic.Sim.tr_cause with Epic.Sim.T_fuel -> 3 | _ -> 2

(* Campaign convention shared by the campaign tools (epicfault,
   epic_explore, epicd, epicload): stdout stays byte-identical across
   --jobs values; wall time and cache statistics go to stderr. *)
let campaign ~label ~jobs ?caches ~tasks f =
  fst (Epic.Exec.run_campaign ~label ~jobs ?caches ~tasks f)

let handle_errors f =
  try f () with
  | Failure m | Sys_error m ->
    Printf.eprintf "error: %s\n" m;
    exit 1
  | Epic.Cfront.Error m ->
    Printf.eprintf "compile error: %s\n" m;
    exit 1
  | Epic.Opt.Pipeline.Error m ->
    Printf.eprintf "pipeline error: %s\n" m;
    exit 1
  | Epic.Asm.Asm_error d ->
    Printf.eprintf "assembler error: %s\n" (Epic.Diag.to_string d);
    exit 1
  | Epic.Encoding.Encode_error d ->
    Printf.eprintf "encoding error: %s\n" (Epic.Diag.to_string d);
    exit 1
  | Epic.Diag.Error d ->
    Printf.eprintf "error: %s\n" (Epic.Diag.to_string d);
    exit 1
  | Epic.Sched.Codegen.Codegen_error m ->
    Printf.eprintf "code generation error: %s\n" m;
    exit 1
  | Epic.Sim.Sim_error d ->
    Printf.eprintf "simulation error: %s\n" (Epic.Diag.to_string d);
    exit 1
  | Invalid_argument m ->
    Printf.eprintf "error: %s\n" m;
    exit 1
