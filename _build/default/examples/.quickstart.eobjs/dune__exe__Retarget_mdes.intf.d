examples/retarget_mdes.mli:
