lib/workloads/prng.ml: Printf
