(** End-to-end drivers: EPIC-C source through the full toolchain to a
    cycle-level simulation, for both the customisable EPIC processor and
    the SA-110 baseline.  This is the narrow waist shared by the command
    line tools ([bin/]), the examples and the experiment harness. *)

type epic_artifacts = {
  ea_config : Epic_config.t;
  ea_mir : Epic_mir.Ir.program;        (** After optimisation. *)
  ea_layout : Epic_mir.Memmap.t;       (** Global/stack placement. *)
  ea_unit : Epic_asm.Aunit.t;          (** Scheduled symbolic assembly. *)
  ea_image : Epic_asm.Aunit.image;     (** Resolved instruction stream. *)
  ea_words : int64 array;              (** Encoded binary. *)
  ea_sched : Epic_sched.Sched.stats;   (** Static scheduling statistics. *)
}

type opt_level =
  | O0  (** Straight lowering, no optimisation. *)
  | O1  (** The full machine-independent pipeline (default). *)

val default_unroll : int
(** Counted-loop unrolling threshold used when [?unroll] is omitted
    (1 = off: on these workloads the hand-unrolled kernels already expose
    the ILP and flattening the outer loops mostly bloats code; see the A8
    ablation). *)

val compile_epic :
  ?opt:opt_level -> ?predication:bool -> ?unroll:int -> ?mem_bytes:int ->
  Epic_config.t -> source:string -> unit -> epic_artifacts
(** Compile EPIC-C for a configuration: front-end (with optional loop
    unrolling) -> optimiser (if-conversion unless [predication:false]) ->
    code generation + register allocation -> list scheduling -> assembly.
    Validates the configuration first.
    @raise Epic_cfront.Error, @raise Epic_sched.Codegen.Codegen_error,
    @raise Epic_asm.Asm_error, @raise Invalid_argument as appropriate. *)

val run_epic :
  ?fuel:int -> ?trace:Format.formatter -> ?profile:Epic_profile.t ->
  epic_artifacts -> Epic_sim.result
(** Initialise data memory from the program's globals and simulate from
    [_start].  [profile] attaches a {!Epic_profile} recorder to the
    simulator's event sink; without it the simulator runs exactly as
    before (identical cycle counts). *)

val profile_epic :
  ?fuel:int -> ?keep_events:bool -> epic_artifacts ->
  Epic_sim.result * Epic_profile.t
(** Run with a fresh profile recorder attached and return both.
    [keep_events] retains the full event log (needed for Chrome-trace
    export; default false). *)

type arm_artifacts = {
  aa_mir : Epic_mir.Ir.program;  (** Optimised, software-divide runtime linked. *)
  aa_layout : Epic_mir.Memmap.t;
  aa_prog : Epic_arm.Isa.program;
}

val compile_arm :
  ?opt:opt_level -> ?unroll:int -> ?mem_bytes:int -> source:string -> unit ->
  arm_artifacts
(** Compile the same source for the SA-110 baseline (shared front-end and
    optimiser, pressure-aware inlining, no predication). *)

val run_arm : ?fuel:int -> arm_artifacts -> Epic_arm.Sim.result

(** {1 Checked convenience wrappers}

    Compile, run, and compare the result against an expected checksum —
    the harness never reports cycles for a wrong answer. *)

val epic_cycles :
  ?opt:opt_level -> ?predication:bool -> ?unroll:int ->
  Epic_config.t -> source:string -> expected:int -> unit -> Epic_sim.stats
(** @raise Failure when the run returns anything but [expected]. *)

val arm_cycles :
  ?opt:opt_level -> ?unroll:int -> source:string -> expected:int -> unit ->
  Epic_arm.Sim.stats
(** @raise Failure when the run returns anything but [expected]. *)
