lib/sched/sched.ml: Array Codegen Epic_asm Epic_isa Epic_mdes Format Hashtbl List
