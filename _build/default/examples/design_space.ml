(* Design-space exploration (paper Section 1: customisable designs
   "provide a platform for designers to explore performance/area
   trade-offs for a specific application using different
   implementations").

   This example sweeps ALU count and issue width for the DCT workload,
   prints the full grid, and reports the Pareto frontier in the
   (slices, execution time) plane.

   Run with: dune exec examples/design_space.exe *)

module Sources = Epic.Workloads.Sources

type point = {
  alus : int;
  issue : int;
  cycles : int;
  slices : int;
  micros : float;
}

let () =
  let bm = Sources.dct_benchmark ~width:16 ~height:16 () in
  let points = ref [] in
  Printf.printf "DCT encode+decode of a 16x16 image:\n\n";
  Printf.printf "%5s %6s %9s %8s %8s %10s\n" "ALUs" "issue" "cycles" "slices"
    "MHz" "time (us)";
  List.iter
    (fun issue ->
      List.iter
        (fun alus ->
          let cfg =
            { Epic.Config.default with Epic.Config.n_alus = alus; issue_width = issue }
          in
          match Epic.Config.validate cfg with
          | Error _ -> ()
          | Ok () ->
            let st =
              Epic.Toolchain.epic_cycles cfg ~source:bm.Sources.bm_source
                ~expected:bm.Sources.bm_expected ()
            in
            let area = Epic.Area.estimate cfg in
            let micros =
              float_of_int st.Epic.Sim.cycles /. area.Epic.Area.clock_mhz
            in
            points :=
              { alus; issue; cycles = st.Epic.Sim.cycles;
                slices = area.Epic.Area.slices; micros }
              :: !points;
            Printf.printf "%5d %6d %9d %8d %8.1f %10.1f\n" alus issue
              st.Epic.Sim.cycles area.Epic.Area.slices area.Epic.Area.clock_mhz
              micros)
        [ 1; 2; 3; 4 ])
    [ 1; 2; 4 ];
  let pts = List.rev !points in
  let dominated p =
    List.exists
      (fun q ->
        (q.slices < p.slices && q.micros <= p.micros)
        || (q.slices <= p.slices && q.micros < p.micros))
      pts
  in
  print_endline "\nPareto-optimal designs:";
  List.iter
    (fun p ->
      if not (dominated p) then
        Printf.printf "  %d ALU(s) x %d-issue: %5d slices, %7.1f us\n" p.alus
          p.issue p.slices p.micros)
    pts;
  (* The headline trade-off the paper draws: parallel ALUs pay off on
     arithmetic-dense kernels. *)
  let find a i = List.find (fun p -> p.alus = a && p.issue = i) pts in
  let small = find 1 4 and big = find 4 4 in
  Printf.printf
    "\n4 ALUs vs 1 ALU at 4-issue: %.2fx faster for %.2fx the area\n"
    (float_of_int small.cycles /. float_of_int big.cycles)
    (float_of_int big.slices /. float_of_int small.slices)
