(* Backend integration tests: the EPIC pipeline (codegen -> regalloc ->
   schedule -> assemble -> cycle simulation) and the ARM baseline, checked
   against the MIR reference interpreter on a corpus of programs; plus
   structural properties of the list scheduler and targeted simulator
   unit tests driven by handwritten assembly. *)

module Config = Epic.Config
module Isa = Epic.Isa
module T = Epic.Toolchain
module Interp = Epic.Interp
module Cfront = Epic.Cfront
module A = Epic.Asm.Aunit
module Text = Epic.Asm.Text

(* Programs with interesting shapes; each returns a deterministic value. *)
let corpus =
  [
    ("constant", "int main() { return 12345; }");
    ("big constant", "int main() { return 0x12345678; }");
    ("negative", "int main() { return -123456789; }");
    ("arith", "int main() { return (7 * 9 - 4) / 3 % 11; }");
    ("params", "int main(int x, int y) { return x * 10 + y; }");
    ("loop", "int main() { int s = 0; for (int i = 0; i < 100; i++) s += i; return s; }");
    ("nested loop",
     "int main() { int s = 0; for (int i = 0; i < 12; i++)\n\
      for (int j = 0; j < 12; j++) s += i * j; return s; }");
    ("while break",
     "int main() { int i = 0; while (1) { i += 3; if (i > 20) break; } return i; }");
    ("diamond", "int main(int x, int y) { int r; if (x < y) r = x; else r = y; return r * 2; }");
    ("calls",
     "int sq(int v) { return v * v; }\n\
      int main() { int s = 0; for (int i = 1; i <= 5; i++) s += sq(i); return s; }");
    ("recursion",
     "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n\
      int main() { return fib(12); }");
    ("deep recursion",
     "int down(int n) { if (n == 0) return 0; return 1 + down(n - 1); }\n\
      int main() { return down(200); }");
    ("global array",
     "int a[16];\n\
      int main() { for (int i = 0; i < 16; i++) a[i] = i * i;\n\
      int s = 0; for (int i = 0; i < 16; i++) s += a[i]; return s; }");
    ("local array",
     "int main() { int a[8]; for (int i = 0; i < 8; i++) a[i] = i + 1;\n\
      int s = 0; for (int i = 0; i < 8; i++) s += a[7 - i] * i; return s; }");
    ("byte memory",
     "int a[4];\n\
      int main() { a[0] = 0x11223344; a[1] = -2; return a[0] + a[1]; }");
    ("shifts",
     "int main(int x, int y) { return (x << 5) ^ __lsr(x, 7) ^ (x >> 3); }");
    ("division",
     "int main(int x, int y) { return x / y + x % y; }");
    ("negative division",
     "int main(int x, int y) { return (0 - x) / y + (0 - x) % y; }");
    ("unsigned compare",
     "int main() { return __ltu(-1, 1) * 10 + __ltu(1, -1); }");
    ("minmax", "int main(int x, int y) { return __min(x, y) * 100 + __max(x, y); }");
    ("short circuit",
     "int g = 0;\n\
      int bump() { g++; return 1; }\n\
      int main(int x, int y) { if (x < y && bump()) g += 10; return g; }");
    ("many args",
     "int f(int a, int b, int c, int d) { return a + 2*b + 3*c + 4*d; }\n\
      int main() { return f(1, 2, 3, 4); }");
    ("spill pressure",
     "int main(int x, int y) {\n\
      \  int a = x + 1; int b = x + 2; int c = x + 3; int d = x + 4;\n\
      \  int e = x + 5; int f = x + 6; int g = x + 7; int h = x + 8;\n\
      \  int i = x + 9; int j = x + 10; int k = x + 11; int l = x + 12;\n\
      \  int s = 0;\n\
      \  for (int t = 0; t < 3; t++) s += a + b + c + d + e + f + g + h + i + j + k + l;\n\
      \  return s + a * b + c * d + e * f + g * h + i * j + k * l;\n\
      }");
  ]

let interp_ret ?(args = []) src =
  (Interp.run ~args (Cfront.compile src) ~entry:"main").Interp.ret

let epic_ret ?(cfg = Config.default) ?opt ?predication ?(args = []) src =
  if args <> [] then Alcotest.fail "EPIC corpus runs take no args";
  let a = T.compile_epic ?opt ?predication cfg ~source:src () in
  (T.run_epic a).Epic.Sim.ret

let arm_ret ?opt src =
  let a = T.compile_arm ?opt ~source:src () in
  (T.run_arm a).Epic.Arm.Sim.ret

(* Parameters are baked in by wrapping main when needed. *)
let bake src args =
  match args with
  | [] -> src
  | [ x; y ] ->
    (* rename main -> body, add a fresh main passing constants *)
    let renamed = Str.global_replace (Str.regexp_string "int main(") "int body__(" src in
    Printf.sprintf "%s\nint main() { return body__(%d, %d); }" renamed x y
  | _ -> Alcotest.fail "bake supports 0 or 2 args"

let arg_sets = [ []; [ 17; 5 ]; [ -9; 4 ]; [ 1000; -3 ] ]

let test_epic_matches_interp () =
  List.iter
    (fun (name, src) ->
      let wants_args =
        try ignore (Str.search_forward (Str.regexp_string "int main(int") src 0); true
        with Not_found -> false
      in
      let sets = if wants_args then List.filter (( <> ) []) arg_sets else [ [] ] in
      List.iter
        (fun args ->
          let src = bake src args in
          let expected = interp_ret src in
          Alcotest.(check int) (name ^ " O1") expected (epic_ret src);
          Alcotest.(check int) (name ^ " O0") expected (epic_ret ~opt:T.O0 src))
        sets)
    corpus

let test_arm_matches_interp () =
  List.iter
    (fun (name, src) ->
      let wants_args =
        try ignore (Str.search_forward (Str.regexp_string "int main(int") src 0); true
        with Not_found -> false
      in
      let sets = if wants_args then [ [ 17; 5 ]; [ -9; 4 ] ] else [ [] ] in
      List.iter
        (fun args ->
          let src = bake src args in
          let expected = interp_ret src in
          Alcotest.(check int) (name ^ " ARM O1") expected (arm_ret src);
          Alcotest.(check int) (name ^ " ARM O0") expected (arm_ret ~opt:T.O0 src))
        sets)
    corpus

let test_epic_configs_agree () =
  let src = bake (List.assoc "nested loop" corpus) [] in
  let expected = interp_ret src in
  (* ALU counts, issue widths, port budgets, predication, forwarding and
     datapath parameters must never change results, only cycles. *)
  let configs =
    [ Config.with_alus 1; Config.with_alus 2; Config.with_alus 3;
      { Config.default with Config.issue_width = 1 };
      { Config.default with Config.issue_width = 2 };
      { Config.default with Config.rf_port_budget = 4 };
      { Config.default with Config.rf_port_budget = 3 };
      { Config.default with Config.forwarding = false };
      { Config.default with Config.n_gprs = 24 };
      { Config.default with Config.n_preds = 8 };
      { Config.default with Config.n_btrs = 2 };
      { Config.default with Config.n_gprs = 32; n_preds = 4; n_btrs = 4 } ]
  in
  List.iter
    (fun cfg ->
      Alcotest.(check int) "config-independent result" expected
        (epic_ret ~cfg:(Config.validate_exn cfg) src))
    configs;
  Alcotest.(check int) "no predication" expected (epic_ret ~predication:false src)

let test_benchmarks_on_epic () =
  List.iter
    (fun (bm : Epic.Workloads.Sources.benchmark) ->
      let st =
        T.epic_cycles Config.default ~source:bm.Epic.Workloads.Sources.bm_source
          ~expected:bm.Epic.Workloads.Sources.bm_expected ()
      in
      Alcotest.(check bool)
        (bm.Epic.Workloads.Sources.bm_name ^ " runs")
        true (st.Epic.Sim.cycles > 0))
    (Epic.Workloads.Sources.all ~sha_bytes:64 ~aes_iters:1 ~dct_size:(8, 8)
       ~dijkstra_nodes:6 ())

let test_benchmarks_on_arm () =
  List.iter
    (fun (bm : Epic.Workloads.Sources.benchmark) ->
      let st =
        T.arm_cycles ~source:bm.Epic.Workloads.Sources.bm_source
          ~expected:bm.Epic.Workloads.Sources.bm_expected ()
      in
      Alcotest.(check bool)
        (bm.Epic.Workloads.Sources.bm_name ^ " runs")
        true (st.Epic.Arm.Sim.cycles > 0))
    (Epic.Workloads.Sources.all ~sha_bytes:64 ~aes_iters:1 ~dct_size:(8, 8)
       ~dijkstra_nodes:6 ())

let test_custom_op_end_to_end () =
  let cfg = Config.add_custom Config.default "ROTR" in
  let src = "int main() { return __x_rotr(0x80000001, 1); }" in
  let a = T.compile_epic cfg ~source:src () in
  Alcotest.(check int) "rotr" 0xC0000000 (T.run_epic a).Epic.Sim.ret

let test_narrow_datapath () =
  (* A 16-bit datapath computes modulo 2^16. *)
  let cfg = Config.validate_exn { Config.default with Config.width = 16 } in
  let src = "int main() { return 300 * 300; }" in
  let a = T.compile_epic cfg ~source:src () in
  Alcotest.(check int) "mod 2^16" (300 * 300 land 0xFFFF) (T.run_epic a).Epic.Sim.ret

(* ------------------------------------------------------------------ *)
(* Scheduler structural properties *)

let md = Epic.Mdes.of_config Config.default

let reconstruct_cycles bundles =
  List.concat (List.mapi (fun c insts -> List.map (fun i -> (c, i)) insts) bundles)

let gen_block =
  let open QCheck.Gen in
  let reg = map (fun r -> 12 + r) (int_bound 10) in
  let alu =
    map2
      (fun (d, a) b ->
        A.simple Isa.ADD ~d1:d ~s1:(A.Reg a) ~s2:(A.Imm b) ())
      (pair reg reg) (int_range (-100) 100)
  in
  let mul =
    map2 (fun (d, a) b -> A.simple Isa.MPY ~d1:d ~s1:(A.Reg a) ~s2:(A.Reg b) ())
      (pair reg reg) reg
  in
  let load =
    map2 (fun d off -> A.simple (Isa.LD Isa.M_word) ~d1:d ~s1:(A.Reg 1) ~s2:(A.Imm (4 * off)) ())
      reg (int_bound 20)
  in
  let store =
    map2 (fun v off -> A.simple (Isa.ST Isa.M_word) ~d1:off ~s1:(A.Reg 1) ~s2:(A.Reg v) ())
      reg (int_bound 20)
  in
  let cmp =
    map2
      (fun (a, b) () -> A.simple (Isa.CMPP Isa.C_lt) ~d1:1 ~d2:2 ~s1:(A.Reg a) ~s2:(A.Reg b) ())
      (pair reg reg) (return ())
  in
  list_size (int_range 1 40) (frequency [ (5, alu); (2, mul); (2, load); (2, store); (1, cmp) ])

let arb_block =
  QCheck.make
    ~print:(fun insts ->
      String.concat "; " (List.map (Format.asprintf "%a" Text.pp_inst) insts))
    gen_block

let prop_schedule_preserves_instructions =
  QCheck.Test.make ~name:"schedule preserves the instruction multiset" ~count:200
    arb_block
    (fun insts ->
      let bundles = Epic.Sched.Sched.schedule_block md insts in
      let flat = List.concat bundles in
      List.sort compare flat = List.sort compare insts)

let prop_schedule_respects_resources =
  QCheck.Test.make ~name:"bundles respect unit counts and width" ~count:200
    arb_block
    (fun insts ->
      let bundles = Epic.Sched.Sched.schedule_block md insts in
      List.for_all
        (fun bundle ->
          let count u =
            List.length
              (List.filter (fun (i : A.inst) -> Isa.unit_of i.A.op = u) bundle)
          in
          List.length bundle <= 4
          && count Isa.U_alu <= 4 && count Isa.U_lsu <= 1
          && count Isa.U_cmpu <= 1 && count Isa.U_bru <= 1)
        bundles)

(* The scheduler compacts empty cycles (the simulator's scoreboard
   interlock supplies any residual producer latency at the same cycle
   cost), so the structural invariant is strict BUNDLE ordering: a RAW,
   WAW or memory-ordered pair must never share a bundle or be reordered.
   WAR pairs may share a bundle (register reads happen at issue). *)
let prop_schedule_respects_dependences =
  QCheck.Test.make ~name:"RAW/WAW/memory order respected" ~count:200
    arb_block
    (fun insts ->
      let bundles = Epic.Sched.Sched.schedule_block md insts in
      let placed = reconstruct_cycles bundles in
      let cycle_of i = fst (List.find (fun (_, j) -> j == i) placed) in
      let arr = Array.of_list insts in
      let ok = ref true in
      for x = 0 to Array.length arr - 1 do
        for y = x + 1 to Array.length arr - 1 do
          let a = A.to_isa_approx arr.(x) and b = A.to_isa_approx arr.(y) in
          let ca = cycle_of arr.(x) and cb = cycle_of arr.(y) in
          (* RAW *)
          if List.exists (fun r -> List.mem r (Isa.reads b)) (Isa.writes a) then
            if cb <= ca then ok := false;
          (* WAW *)
          if List.exists (fun r -> List.mem r (Isa.writes b)) (Isa.writes a) then
            if cb <= ca then ok := false;
          (* memory order: stores ordered with all memory ops *)
          let mem i = Isa.is_load i.Isa.op || Isa.is_store i.Isa.op in
          if (Isa.is_store a.Isa.op && mem b) || (mem a && Isa.is_store b.Isa.op)
          then if cb <= ca then ok := false
        done
      done;
      !ok)

(* Differential property: random programs agree between the reference
   interpreter, the EPIC backend and the ARM baseline. *)
let prop_backends_agree =
  QCheck.Test.make ~name:"EPIC and ARM agree with the interpreter" ~count:40
    (QCheck.make
       ~print:(fun (src, x, y) -> Printf.sprintf "x=%d y=%d\n%s" x y src)
       QCheck.Gen.(triple Test_opt.gen_program (int_range (-500) 500) (int_range (-500) 500)))
    (fun (src, x, y) ->
      let baked =
        Str.global_replace (Str.regexp_string "int main(") "int body__(" src
        ^ Printf.sprintf "\nint main() { return body__(%d, %d); }" x y
      in
      let expected = interp_ret baked in
      epic_ret baked = expected && arm_ret baked = expected)

(* ------------------------------------------------------------------ *)
(* Simulator unit tests via handwritten assembly *)

let run_asm ?(cfg = Config.default) text =
  let image, _words = Epic.Asm.assemble_text cfg text in
  let mem = Bytes.make 65536 '\000' in
  Epic.Sim.run cfg ~image ~mem ()

let test_sim_halt_return () =
  let r = run_asm "_start:\n{ MOV r3, #42 }\n{ HALT }\n" in
  Alcotest.(check int) "returns r3" 42 r.Epic.Sim.ret;
  Alcotest.(check int) "two bundles" 2 r.Epic.Sim.stats.Epic.Sim.bundles

let test_sim_branch_and_link () =
  let r =
    run_asm
      "_start:\n\
       { PBRR b0, @f }\n\
       { BRL r2, #0 }\n\
       { ADD r3, r12, #1 }\n\
       { HALT }\n\
       f:\n\
       { MOV r12, #10 }\n\
       { PBRR b1, r2 }\n\
       { BRU #1 }\n"
  in
  Alcotest.(check int) "call/return flow" 11 r.Epic.Sim.ret

let test_sim_predication () =
  let r =
    run_asm
      "_start:\n\
       { CMPP.LT p1, p2, #3, #5 }\n\
       { MOV r3, #100 (p2) ; MOV r12, #0 }\n\
       { MOV r3, #7 (p1) }\n\
       { HALT }\n"
  in
  Alcotest.(check int) "true-guard move wins" 7 r.Epic.Sim.ret;
  Alcotest.(check int) "one squashed" 1 r.Epic.Sim.stats.Epic.Sim.squashed

let test_sim_memory_big_endian () =
  (* 0x11223344 does not fit a literal; build it with shifts. *)
  let r =
    run_asm
      "_start:\n\
       { MOV r12, #4096 ; MOV r13, #0x1122 }\n\
       { SHL r13, r13, #16 }\n\
       { OR r13, r13, #0x3344 }\n\
       { STW r12, #0, r13 }\n\
       { LDUB r3, r12, #0 }\n\
       { HALT }\n"
  in
  Alcotest.(check int) "MSB first in memory" 0x11 r.Epic.Sim.ret

let test_sim_load_latency_interlock () =
  (* Using a load result immediately stalls one cycle (latency 2). *)
  let r =
    run_asm
      "_start:\n\
       { MOV r12, #4096 ; MOV r13, #77 }\n\
       { STW r12, #0, r13 }\n\
       { LDW r14, r12, #0 }\n\
       { ADD r3, r14, #0 }\n\
       { HALT }\n"
  in
  Alcotest.(check int) "value flows" 77 r.Epic.Sim.ret;
  Alcotest.(check bool) "stalled at least once" true
    (r.Epic.Sim.stats.Epic.Sim.operand_stalls >= 1)

let test_sim_taken_branch_bubble () =
  let r =
    run_asm
      "_start:\n\
       { PBRR b0, @t }\n\
       { BRU #0 }\n\
       { MOV r3, #1 }\n\
       t:\n\
       { MOV r3, #2 }\n\
       { HALT }\n"
  in
  Alcotest.(check int) "skipped fallthrough" 2 r.Epic.Sim.ret;
  Alcotest.(check int) "one bubble" 1 r.Epic.Sim.stats.Epic.Sim.branch_bubbles

let test_sim_port_budget () =
  (* Four 3-port ALU ops in one bundle = 12 port ops > 8: one stall. *)
  let cfg = Config.default in
  let r =
    run_asm ~cfg
      "_start:\n\
       { ADD r12, r13, r14 ; ADD r15, r16, r17 ; ADD r18, r19, r20 ; ADD r21, r22, r23 }\n\
       { HALT }\n"
  in
  Alcotest.(check int) "port stall" 1 r.Epic.Sim.stats.Epic.Sim.port_stalls

let test_sim_r0_hardwired () =
  let r =
    run_asm "_start:\n{ MOV r0, #99 }\n{ ADD r3, r0, #1 }\n{ HALT }\n"
  in
  Alcotest.(check int) "r0 stays zero" 1 r.Epic.Sim.ret

let suite =
  [
    Alcotest.test_case "EPIC matches interpreter (corpus)" `Quick test_epic_matches_interp;
    Alcotest.test_case "ARM matches interpreter (corpus)" `Quick test_arm_matches_interp;
    Alcotest.test_case "EPIC configs agree" `Quick test_epic_configs_agree;
    Alcotest.test_case "benchmarks on EPIC" `Quick test_benchmarks_on_epic;
    Alcotest.test_case "benchmarks on ARM" `Quick test_benchmarks_on_arm;
    Alcotest.test_case "custom op end-to-end" `Quick test_custom_op_end_to_end;
    Alcotest.test_case "16-bit datapath" `Quick test_narrow_datapath;
    QCheck_alcotest.to_alcotest prop_schedule_preserves_instructions;
    QCheck_alcotest.to_alcotest prop_schedule_respects_resources;
    QCheck_alcotest.to_alcotest prop_schedule_respects_dependences;
    QCheck_alcotest.to_alcotest prop_backends_agree;
    Alcotest.test_case "sim: halt" `Quick test_sim_halt_return;
    Alcotest.test_case "sim: branch and link" `Quick test_sim_branch_and_link;
    Alcotest.test_case "sim: predication" `Quick test_sim_predication;
    Alcotest.test_case "sim: big-endian memory" `Quick test_sim_memory_big_endian;
    Alcotest.test_case "sim: load interlock" `Quick test_sim_load_latency_interlock;
    Alcotest.test_case "sim: branch bubble" `Quick test_sim_taken_branch_bubble;
    Alcotest.test_case "sim: port budget" `Quick test_sim_port_budget;
    Alcotest.test_case "sim: r0 hardwired" `Quick test_sim_r0_hardwired;
  ]
