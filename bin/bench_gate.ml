(* bench_gate: the CI benchmark-regression gate.  Compares a fresh
   `bench --json` dump against the committed BENCH_BASELINE.json:

   - cycle counts (table1: SA-110 and every EPIC design point) must not
     exceed the baseline by more than --cycle-tolerance percent (cycle
     counts are fully deterministic, so the default tolerance is 0);
   - FPGA slice counts (resources) are held to the same tolerance;
   - campaign wall time (meta.campaigns) must not exceed the baseline by
     more than --wall-tolerance x (generous by default: CI machines and
     the baseline recorder differ);
   - host simulator throughput (meta.sim_rate.cycles_per_s) must stay
     above baseline / tolerance, where the tolerance factor is committed
     in the baseline's meta.sim_rate_tolerance (--rate-tolerance
     overrides it; 0 disables the band).  This is the gate that fails CI
     when the simulator's hot path regresses in wall clock even though
     cycle counts are unchanged.

   Exit status: 0 = gate passed, 1 = regression, 2 = bad input.
   Improvements beyond tolerance are reported as a hint to refresh the
   baseline, but pass. *)

open Cmdliner
module J = Epic.Profile.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("bench_gate: " ^ m); exit 2) fmt

let load path =
  let s = Cli_common.read_file path in
  match J.parse s with
  | Ok v -> v
  | Error e -> fail "%s: invalid JSON: %s" path e

let as_float = function
  | J.Int i -> Some (float_of_int i)
  | J.Float f -> Some f
  | _ -> None

let as_str = function J.Str s -> Some s | _ -> None

let as_list = function J.List l -> Some l | _ -> None

(* Index a list of objects by a string field. *)
let index_by field rows =
  List.filter_map
    (fun row -> Option.map (fun k -> (k, row)) (Option.bind (J.member field row) as_str))
    rows

let regressions = ref 0
let improvements = ref 0
let checked = ref 0

let check ~label ~tol ~base ~cur =
  incr checked;
  if cur > base *. (1.0 +. (tol /. 100.0)) then begin
    incr regressions;
    Printf.printf "REGRESSION %-40s %14.0f -> %.0f (+%.2f%%)\n" label base cur
      (100.0 *. (cur -. base) /. base)
  end
  else if cur < base *. (1.0 -. (tol /. 100.0)) then begin
    incr improvements;
    Printf.printf "improved   %-40s %14.0f -> %.0f (%.2f%%)\n" label base cur
      (100.0 *. (cur -. base) /. base)
  end

(* table1: per-benchmark SA-110 cycles and the per-ALU EPIC cycles. *)
let gate_table1 tol base cur =
  match (Option.bind (J.member "table1" base) as_list,
         Option.bind (J.member "table1" cur) as_list) with
  | Some brows, Some crows ->
    let cindex = index_by "benchmark" crows in
    List.iter
      (fun brow ->
        match Option.bind (J.member "benchmark" brow) as_str with
        | None -> ()
        | Some name ->
          (match List.assoc_opt name cindex with
           | None ->
             incr regressions;
             Printf.printf "REGRESSION table1/%s: missing from current run\n" name
           | Some crow ->
             (match (Option.bind (J.member "sa110_cycles" brow) as_float,
                     Option.bind (J.member "sa110_cycles" crow) as_float) with
              | Some b, Some c ->
                check ~label:(Printf.sprintf "table1/%s/sa110" name) ~tol
                  ~base:b ~cur:c
              | _ -> ());
             (match (J.member "epic_cycles" brow, J.member "epic_cycles" crow) with
              | Some (J.Obj bpts), Some (J.Obj cpts) ->
                List.iter
                  (fun (alus, bv) ->
                    match (as_float bv,
                           Option.bind (List.assoc_opt alus cpts) as_float) with
                    | Some b, Some c ->
                      check
                        ~label:(Printf.sprintf "table1/%s/epic-%s-alu" name alus)
                        ~tol ~base:b ~cur:c
                    | _, None ->
                      incr regressions;
                      Printf.printf
                        "REGRESSION table1/%s: %s-ALU point missing from current run\n"
                        name alus
                    | _ -> ())
                  bpts
              | _ -> ())))
      brows
  | None, _ -> print_endline "note: baseline has no table1 section; skipped"
  | _, None ->
    incr regressions;
    print_endline "REGRESSION current run has no table1 section"

(* resources: FPGA slices per ALU count. *)
let gate_resources tol base cur =
  match (Option.bind (J.member "resources" base) as_list,
         Option.bind (J.member "resources" cur) as_list) with
  | Some brows, Some crows ->
    List.iter
      (fun brow ->
        match (Option.bind (J.member "alus" brow) as_float,
               Option.bind (J.member "slices" brow) as_float) with
        | Some alus, Some b ->
          let matching crow =
            Option.bind (J.member "alus" crow) as_float = Some alus
          in
          (match List.find_opt matching crows with
           | Some crow ->
             (match Option.bind (J.member "slices" crow) as_float with
              | Some c ->
                check ~label:(Printf.sprintf "resources/%.0f-alu/slices" alus)
                  ~tol ~base:b ~cur:c
              | None -> ())
           | None -> ())
        | _ -> ())
      brows
  | _ -> print_endline "note: no resources section on both sides; skipped"

(* meta.campaigns: wall-clock per campaign, gated with a factor. *)
let gate_wall factor base cur =
  let campaigns doc =
    Option.bind (J.member "meta" doc) (fun m ->
        Option.bind (J.member "campaigns" m) as_list)
  in
  match (campaigns base, campaigns cur) with
  | Some bcs, Some ccs ->
    let cindex = index_by "label" ccs in
    List.iter
      (fun bc ->
        match (Option.bind (J.member "label" bc) as_str,
               Option.bind (J.member "wall_seconds" bc) as_float) with
        | Some label, Some b ->
          (match Option.bind (List.assoc_opt label cindex)
                   (fun c -> Option.bind (J.member "wall_seconds" c) as_float)
           with
           | Some c ->
             incr checked;
             if c > b *. factor then begin
               incr regressions;
               Printf.printf
                 "REGRESSION wall/%s: %.2fs -> %.2fs (budget %.2fs = %.1fx baseline)\n"
                 label b c (b *. factor) factor
             end
           | None -> ())
        | _ -> ())
      bcs
  | _ ->
    print_endline "note: no campaign wall-time on both sides; skipped"

(* meta.sim_rate: host simulated cycles per second, gated as a lower
   band — current >= baseline / factor.  Unlike the cycle gates this is
   a wall-clock measurement, so the band is a committed factor, not a
   percentage. *)
let gate_rate override base cur =
  let rate doc =
    Option.bind (J.member "meta" doc) (fun m ->
        Option.bind (J.member "sim_rate" m) (fun r ->
            Option.bind (J.member "cycles_per_s" r) as_float))
  in
  let committed =
    Option.bind (J.member "meta" base) (fun m ->
        Option.bind (J.member "sim_rate_tolerance" m) as_float)
  in
  let factor = match override with Some f -> Some f | None -> committed in
  match (factor, rate base, rate cur) with
  | Some f, _, _ when f <= 0.0 -> ()
  | Some f, Some b, Some c ->
    incr checked;
    if c < b /. f then begin
      incr regressions;
      Printf.printf
        "REGRESSION sim-rate: %.3e -> %.3e cyc/s (floor %.3e = baseline / %.1f)\n"
        b c (b /. f) f
    end
  | _ -> print_endline "note: no sim-rate band on both sides; skipped"

let run baseline current tol wall_factor rate_factor =
  let base = load baseline and cur = load current in
  gate_table1 tol base cur;
  gate_resources tol base cur;
  if wall_factor > 0.0 then gate_wall wall_factor base cur;
  gate_rate rate_factor base cur;
  Printf.printf
    "bench_gate: %d comparisons, %d regression(s), %d improvement(s)\n" !checked
    !regressions !improvements;
  if !improvements > 0 && !regressions = 0 then
    print_endline
      "hint: cycle counts improved — consider refreshing BENCH_BASELINE.json";
  if !regressions > 0 then exit 1

let cmd =
  let baseline =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"BASELINE" ~doc:"Committed baseline JSON (bench --json).")
  in
  let current =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"CURRENT" ~doc:"Freshly produced JSON to gate.")
  in
  let tol =
    Arg.(value & opt float 0.0
         & info [ "cycle-tolerance" ] ~docv:"PCT"
           ~doc:"Allowed cycle/slice increase in percent (cycle counts are \
                 deterministic, so the default is 0).")
  in
  let wall =
    Arg.(value & opt float 10.0
         & info [ "wall-tolerance" ] ~docv:"FACTOR"
           ~doc:"Allowed campaign wall-time as a multiple of the baseline \
                 (0 disables the wall-time gate).")
  in
  let rate =
    Arg.(value & opt (some float) None
         & info [ "rate-tolerance" ] ~docv:"FACTOR"
           ~doc:"Required host sim rate as baseline / $(docv).  Defaults \
                 to the factor committed in the baseline's \
                 meta.sim_rate_tolerance; 0 disables the band.")
  in
  Cmd.v
    (Cmd.info "bench_gate"
       ~doc:"Compare a bench --json dump against the committed baseline")
    Term.(const run $ baseline $ current $ tol $ wall $ rate)

let () = exit (Cmd.eval cmd)
