(* Software integer division for the ARM baseline: the SA-110, like all
   ARMv4 parts, has no divide instruction, so compilers emit calls to a
   runtime routine.  The routine is written in the same C subset as the
   benchmarks and compiled by the same front-end; the semantics for
   division by zero match the EPIC datapath's divider (0 for quotient,
   dividend for remainder) so both targets agree. *)

let source =
  "int __udivmod_q;\n\
   int __udivmod_r;\n\
   void __udivmod(int a, int b) {\n\
   \  int q = 0;\n\
   \  int r = 0;\n\
   \  int i;\n\
   \  for (i = 31; i >= 0; i--) {\n\
   \    r = (r << 1) | (__lsr(a, i) & 1);\n\
   \    if (!__ltu(r, b)) { r = r - b; q = q | (1 << i); }\n\
   \  }\n\
   \  __udivmod_q = q;\n\
   \  __udivmod_r = r;\n\
   }\n\
   int __sdiv(int a, int b) {\n\
   \  int neg = 0;\n\
   \  if (b == 0) return 0;\n\
   \  if (a < 0) { a = 0 - a; neg = neg ^ 1; }\n\
   \  if (b < 0) { b = 0 - b; neg = neg ^ 1; }\n\
   \  __udivmod(a, b);\n\
   \  if (neg) return 0 - __udivmod_q;\n\
   \  return __udivmod_q;\n\
   }\n\
   int __srem(int a, int b) {\n\
   \  int neg = 0;\n\
   \  if (b == 0) return a;\n\
   \  if (a < 0) { a = 0 - a; neg = 1; }\n\
   \  if (b < 0) b = 0 - b;\n\
   \  __udivmod(a, b);\n\
   \  if (neg) return 0 - __udivmod_r;\n\
   \  return __udivmod_r;\n\
   }\n"

let function_names = [ "__udivmod"; "__sdiv"; "__srem" ]

module Ir = Epic_mir.Ir

(* Append the runtime to a program and rewrite Div/Rem into calls.  The
   runtime itself is division-free, so rewriting everything is safe. *)
let link_and_rewrite (p : Ir.program) =
  if List.exists (fun (f : Ir.func) -> List.mem f.Ir.f_name function_names) p.Ir.p_funcs
  then invalid_arg "Runtime.link_and_rewrite: runtime symbols already defined";
  let rt = Epic_cfront.compile source in
  let merged =
    {
      Ir.p_globals = p.Ir.p_globals @ rt.Ir.p_globals;
      p_funcs = p.Ir.p_funcs @ rt.Ir.p_funcs;
    }
  in
  List.iter
    (fun (f : Ir.func) ->
      if not (List.mem f.Ir.f_name function_names) then
        List.iter
          (fun (b : Ir.block) ->
            b.Ir.b_insts <-
              List.map
                (fun (i : Ir.inst) ->
                  match i.Ir.kind with
                  | Ir.Bin (Ir.Div, d, a, b') ->
                    { i with Ir.kind = Ir.Call (Some d, "__sdiv", [ a; b' ]) }
                  | Ir.Bin (Ir.Rem, d, a, b') ->
                    { i with Ir.kind = Ir.Call (Some d, "__srem", [ a; b' ]) }
                  | _ -> i)
                b.Ir.b_insts)
          f.Ir.f_blocks)
    merged.Ir.p_funcs;
  merged
