(** End-to-end drivers: EPIC-C source through the full toolchain to a
    cycle-level simulation, for both the customisable EPIC processor and
    the SA-110 baseline.  This is the narrow waist shared by the command
    line tools ([bin/]), the examples and the experiment harness. *)

type epic_artifacts = {
  ea_config : Epic_config.t;
  ea_mir : Epic_mir.Ir.program;        (** After optimisation. *)
  ea_layout : Epic_mir.Memmap.t;       (** Global/stack placement. *)
  ea_unit : Epic_asm.Aunit.t;          (** Scheduled symbolic assembly. *)
  ea_image : Epic_asm.Aunit.image;     (** Resolved instruction stream. *)
  ea_words : int64 array;              (** Encoded binary. *)
  ea_sched : Epic_sched.Sched.stats;   (** Static scheduling statistics. *)
  ea_report : Epic_opt.Pipeline.report;
      (** Structured pipeline report: per-pass wall time and IR deltas,
          verifier and differential-check tallies. *)
  ea_pre : Epic_sim.Predecode.t;
      (** The image decoded and legality-checked once for the simulator;
          [run_epic] and [fault_campaign] pass it as [Sim.run ~pre], so
          repeated runs of the same artifacts never re-decode. *)
}

type arm_artifacts = {
  aa_mir : Epic_mir.Ir.program;  (** Optimised, software-divide runtime linked. *)
  aa_layout : Epic_mir.Memmap.t;
  aa_prog : Epic_arm.Isa.program;
  aa_report : Epic_opt.Pipeline.report;  (** Pipeline report (see below). *)
}

type opt_level =
  | O0  (** Straight lowering, no optimisation. *)
  | O1  (** The full machine-independent pipeline (default). *)

(** {1 Pipeline control}

    Fine-grained control over the machine-independent pass pipeline,
    mirroring the epicc flags.  [pp_passes] replaces the default pass
    list with named registry passes ({!Epic_opt.Registry}); [pp_disable]
    removes every occurrence of the named passes; [pp_verify] runs the
    MIR verifier ({!Epic_mir.Verify}) on the pipeline input and after
    every pass; [pp_diff_check] re-runs the reference interpreter after
    each pass and compares against the pre-pass program; [pp_dump_after]
    pretty-prints the MIR after each named pass to stderr.  [pp_time] is
    carried for callers that print the report (the toolchain always
    collects timings).
    @raise Invalid_argument on unknown pass names.
    @raise Epic_opt.Pipeline.Error on verifier or differential failures. *)
type pipeline = {
  pp_passes : string list option;
  pp_disable : string list;
  pp_verify : bool;
  pp_diff_check : bool;
  pp_time : bool;
  pp_dump_after : string list;
}

val default_pipeline : pipeline
(** Default pass list for the target, no checking, no dumping. *)

val default_unroll : int
(** Counted-loop unrolling threshold used when [?unroll] is omitted
    (1 = off: on these workloads the hand-unrolled kernels already expose
    the ILP and flattening the outer loops mostly bloats code; see the A8
    ablation). *)

(** {1 Compile cache}

    A keyed, domain-safe memo for compiled artifacts
    ({!Epic_exec.Cache}), shared by a campaign's jobs.  Two levels:

    - {e front-end}: [source x options -> optimised MIR].  The front end
      and optimiser never read the processor configuration, so a
      1–4-ALU sweep parses and optimises each workload once.  Because
      the backend mutates the MIR it compiles, a hit hands out a copy.
    - {e artifacts}: [front key x config fingerprint -> artifacts].  A
      hit returns the physically identical artifacts; they are safe to
      share across domains ({!Epic_sim.run} never writes the image, and
      every run builds fresh data memory).

    Compiles whose [pipeline] dumps IR ([pp_dump_after]) bypass the
    cache — a hit would silently skip the dump.  Cache hits never change
    any output: cached and uncached compiles produce identical artifacts
    (identical cycle counts, tables, reports). *)
module Compile_cache : sig
  type t

  val create : unit -> t

  val frontend_stats : t -> Epic_exec.Cache.stats
  val artifact_stats : t -> Epic_exec.Cache.stats
  val stats : t -> (string * Epic_exec.Cache.stats) list
  (** [("front", _); ("artifacts", _)] — ready for
      {!Epic_exec.campaign_stats}. *)
end

val compile_epic :
  ?opt:opt_level -> ?predication:bool -> ?unroll:int -> ?mem_bytes:int ->
  ?pipeline:pipeline -> ?cache:Compile_cache.t -> Epic_config.t ->
  source:string -> unit -> epic_artifacts
(** Compile EPIC-C for a configuration: front-end (with optional loop
    unrolling) -> optimiser (if-conversion unless [predication:false]) ->
    code generation + register allocation -> list scheduling -> assembly.
    Validates the configuration first.  [pipeline] overrides and
    instruments the optimiser pass list; with [pp_passes = None] the
    default list is [opt]/[predication]'s pipeline, so the two interfaces
    compose.  [cache] memoises both compile levels (see
    {!Compile_cache}); artifacts returned from the cache are shared —
    treat them as read-only, which every toolchain entry point does.
    @raise Epic_cfront.Error, @raise Epic_sched.Codegen.Codegen_error,
    @raise Epic_asm.Asm_error, @raise Epic_opt.Pipeline.Error,
    @raise Invalid_argument as appropriate. *)

val compile_epic_mir :
  ?mem_bytes:int -> ?cache:Compile_cache.t -> key:string -> Epic_config.t ->
  mir:Epic_mir.Ir.program -> unit -> epic_artifacts
(** Backend-only compile from an already-optimised MIR program (layout ->
    scheduling -> assembly -> predecode), for callers that rewrite MIR
    directly — the design-space explorer fuses candidate custom
    instructions into MIR and cannot go through the source front-end.
    The program is copied before the backend mutates it.  [key] must
    uniquely identify the MIR contents; with [cache] the artifacts are
    memoised under [key x config fingerprint], the same discipline as
    {!compile_epic}.  The pipeline report is
    {!Epic_opt.Pipeline.empty_report} (no passes run here). *)

val run_epic :
  ?fuel:int -> ?trace:Format.formatter -> ?profile:Epic_profile.t ->
  epic_artifacts -> Epic_sim.result
(** Initialise data memory from the program's globals and simulate from
    [_start].  [profile] attaches a {!Epic_profile} recorder to the
    simulator's event sink; without it the simulator runs exactly as
    before (identical cycle counts). *)

val profile_epic :
  ?fuel:int -> ?keep_events:bool -> epic_artifacts ->
  Epic_sim.result * Epic_profile.t
(** Run with a fresh profile recorder attached and return both.
    [keep_events] retains the full event log (needed for Chrome-trace
    export; default false). *)

val fault_campaign :
  ?seed:int -> ?runs:int -> ?targets:Epic_fault.target list ->
  ?fuel_factor:int -> ?jobs:int -> ?check_golden:bool -> epic_artifacts ->
  Epic_fault.report
(** Run a deterministic fault-injection campaign ({!Epic_fault.campaign})
    over compiled artifacts: data memory initialised from the program's
    globals, execution from [_start].  [jobs] (default 1) fans the
    injected runs out across domains; the report is bit-identical for
    every [jobs] value (see {!Epic_fault.campaign}).  Unless
    [check_golden:false], the golden run's return value is cross-checked
    against the MIR reference interpreter, so SDC classification is
    relative to an independently validated result.
    @raise Epic_diag.Error ([fault/golden-mismatch]) when the simulator
    and the reference interpreter disagree on the fault-free run. *)

val compile_arm :
  ?opt:opt_level -> ?unroll:int -> ?mem_bytes:int -> ?pipeline:pipeline ->
  ?cache:Compile_cache.t -> source:string -> unit -> arm_artifacts
(** Compile the same source for the SA-110 baseline (shared front-end and
    optimiser, pressure-aware inlining, no predication). *)

val run_arm : ?fuel:int -> arm_artifacts -> Epic_arm.Sim.result

(** {1 Checked convenience wrappers}

    Compile, run, and compare the result against an expected checksum —
    the harness never reports cycles for a wrong answer. *)

val epic_cycles :
  ?opt:opt_level -> ?predication:bool -> ?unroll:int -> ?pipeline:pipeline ->
  ?cache:Compile_cache.t -> Epic_config.t -> source:string -> expected:int ->
  unit -> Epic_sim.stats
(** @raise Failure when the run returns anything but [expected]. *)

val arm_cycles :
  ?opt:opt_level -> ?unroll:int -> ?pipeline:pipeline ->
  ?cache:Compile_cache.t -> source:string -> expected:int -> unit ->
  Epic_arm.Sim.stats
(** @raise Failure when the run returns anything but [expected]. *)
