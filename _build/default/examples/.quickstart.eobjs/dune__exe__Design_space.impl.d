examples/design_space.ml: Epic List Printf
