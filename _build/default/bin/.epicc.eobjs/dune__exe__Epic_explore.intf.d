bin/epic_explore.mli:
