(* Pass-manager tests: registry lookup, the MIR verifier (positive and
   hand-built negative cases), per-pass semantics preservation over the
   four paper workloads, and end-to-end pipeline control through the
   toolchain (--passes / --disable-pass behaviour). *)

module Ir = Epic.Ir
module Opt = Epic.Opt
module Pl = Epic.Opt.Pipeline
module Verify = Epic.Verify
module Cfront = Epic.Cfront
module Interp = Epic.Interp
module T = Epic.Toolchain
module W = Epic.Workloads

let tiny_benchmarks () =
  W.Sources.all ~sha_bytes:64 ~aes_iters:1 ~dct_size:(8, 8) ~dijkstra_nodes:6 ()

let custom name a b =
  match Epic.Config.registry_find name with
  | Some c -> c.Epic.Config.cop_semantics ~width:32 a b
  | None -> Alcotest.failf "unknown custom op %s" name

let run_ret p = (Interp.run ~custom p ~entry:"main").Interp.ret

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_lookup () =
  let names = Opt.Registry.names () in
  Alcotest.(check bool) "registry non-empty" true (names <> []);
  Alcotest.(check int) "names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun n ->
      match Opt.Registry.find n with
      | Some p -> Alcotest.(check string) "find round-trips" n p.Opt.pass_name
      | None -> Alcotest.failf "registered pass %s not found" n)
    names;
  Alcotest.(check bool) "unknown name" true (Opt.Registry.find "nosuch" = None);
  (match Opt.Registry.find_exn "nosuch" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "find_exn accepted an unknown pass")

let test_registry_parse_list () =
  let ps = Opt.Registry.parse_list " cse, dce ,," in
  Alcotest.(check (list string)) "parsed in order" [ "cse"; "dce" ]
    (List.map (fun (p : Opt.pass) -> p.Opt.pass_name) ps);
  (match Opt.Registry.parse_list "cse,bogus" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "parse_list accepted an unknown pass")

(* ------------------------------------------------------------------ *)
(* Verifier: hand-built negative cases.  [expect_error] asserts at least
   one finding mentions [frag]. *)

let block id insts term = { Ir.b_id = id; b_insts = insts; b_term = term }
let i k = Ir.no_guard k

let mk_func ?(name = "f") ?(params = []) ?(nvregs = 4) ?(npregs = 2)
    ?(frame = 0) blocks =
  { Ir.f_name = name; f_params = params; f_nvregs = nvregs; f_npregs = npregs;
    f_blocks = blocks; f_frame_bytes = frame }

let prog_of f = { Ir.p_globals = []; p_funcs = [ f ] }

let expect_error frag p =
  match Verify.program_errors p with
  | [] -> Alcotest.failf "verifier accepted bad IR (wanted %S)" frag
  | errs ->
    let contains s =
      let n = String.length frag in
      let rec go i = i + n <= String.length s && (String.sub s i n = frag || go (i + 1)) in
      go 0
    in
    if not (List.exists contains errs) then
      Alcotest.failf "no finding mentions %S:\n  %s" frag (String.concat "\n  " errs)

let expect_clean f =
  match Verify.func_errors f with
  | [] -> ()
  | errs -> Alcotest.failf "verifier rejected sound IR:\n  %s" (String.concat "\n  " errs)

let test_verify_dangling_target () =
  expect_error "does not resolve"
    (prog_of (mk_func [ block 0 [] (Ir.Jmp 7) ]))

let test_verify_duplicate_blocks () =
  expect_error "duplicate block ids"
    (prog_of
       (mk_func
          [ block 0 [] (Ir.Jmp 0); block 0 [] (Ir.Ret None) ]))

let test_verify_vreg_range () =
  expect_error "out of range"
    (prog_of
       (mk_func ~nvregs:4
          [ block 0 [ i (Ir.Mov (9, Ir.Imm 1)) ] (Ir.Ret None) ]))

let test_verify_guard_range () =
  expect_error "out of range"
    (prog_of
       (mk_func ~npregs:2
          [ block 0
              [ { Ir.kind = Ir.Mov (1, Ir.Imm 0);
                  guard = Some { Ir.g_reg = 5; g_pos = true } } ]
              (Ir.Ret None) ]))

let test_verify_frame_bounds () =
  expect_error "outside frame"
    (prog_of
       (mk_func ~frame:4
          [ block 0 [ i (Ir.LoadFrame (1, 4)) ] (Ir.Ret None) ]))

let test_verify_use_before_def () =
  expect_error "used before definition"
    (prog_of
       (mk_func ~params:[]
          [ block 0 [ i (Ir.Mov (1, Ir.Reg 0)) ] (Ir.Ret None) ]))

let test_verify_partial_def_on_join () =
  (* v1 is defined on the true arm only; its use at the join must flag. *)
  expect_error "used before definition"
    (prog_of
       (mk_func ~params:[ 0 ]
          [ block 0 [] (Ir.Br (Ir.Rlt, Ir.Reg 0, Ir.Imm 0, 1, 2));
            block 1 [ i (Ir.Mov (1, Ir.Imm 7)) ] (Ir.Jmp 2);
            block 2 [] (Ir.Ret (Some (Ir.Reg 1))) ]))

let test_verify_guarded_defs_count () =
  (* The if-converted form of the same diamond: both polarities define v1
     under a predicate, which the verifier accepts as defining. *)
  expect_clean
    (mk_func ~params:[ 0 ]
       [ block 0
           [ i (Ir.Setp (Ir.Rlt, 1, Ir.Reg 0, Ir.Imm 0));
             { Ir.kind = Ir.Mov (1, Ir.Imm 7);
               guard = Some { Ir.g_reg = 1; g_pos = true } };
             { Ir.kind = Ir.Mov (1, Ir.Imm 9);
               guard = Some { Ir.g_reg = 1; g_pos = false } } ]
           (Ir.Ret (Some (Ir.Reg 1))) ])

let test_verify_call_arity () =
  let callee = mk_func ~name:"g" ~params:[ 0; 1 ] [ block 0 [] (Ir.Ret None) ] in
  let caller =
    mk_func ~name:"f"
      [ block 0 [ i (Ir.Call (None, "g", [ Ir.Imm 1 ])) ] (Ir.Ret None) ]
  in
  expect_error "expects 2" { Ir.p_globals = []; p_funcs = [ caller; callee ] };
  let bad =
    mk_func ~name:"f"
      [ block 0 [ i (Ir.Call (None, "nowhere", [])) ] (Ir.Ret None) ]
  in
  expect_error "undefined function" (prog_of bad)

let test_verify_accepts_benchmarks () =
  List.iter
    (fun (bm : W.Sources.benchmark) ->
      match Verify.check_program (Cfront.compile bm.W.Sources.bm_source) with
      | Ok () -> ()
      | Error errs ->
        Alcotest.failf "%s rejected:\n  %s" bm.W.Sources.bm_name
          (String.concat "\n  " errs))
    (tiny_benchmarks ())

(* ------------------------------------------------------------------ *)
(* Semantics preservation, pass by pass and end to end.  Each registered
   pass runs alone (under the verifier) over every workload and must keep
   the reference checksum; then the full EPIC pipeline runs with both
   verification and differential checking enabled. *)

let test_each_pass_preserves_semantics () =
  List.iter
    (fun (bm : W.Sources.benchmark) ->
      let p0 = Cfront.compile bm.W.Sources.bm_source in
      List.iter
        (fun (pass : Opt.pass) ->
          let p1, report =
            Pl.run ~options:{ Pl.default_options with Pl.verify = true }
              [ pass ] p0
          in
          Alcotest.(check int)
            (Printf.sprintf "%s after %s alone" bm.W.Sources.bm_name
               pass.Opt.pass_name)
            bm.W.Sources.bm_expected (run_ret p1);
          Alcotest.(check int) "verifier ran before and after" 2
            report.Pl.rp_verify_runs)
        Opt.Registry.all)
    (tiny_benchmarks ())

let test_full_pipeline_checked () =
  let passes = Opt.epic_passes in
  let n = List.length passes in
  List.iter
    (fun (bm : W.Sources.benchmark) ->
      let p0 = Cfront.compile bm.W.Sources.bm_source in
      let p1, report =
        Pl.run
          ~options:
            { Pl.default_options with Pl.verify = true; Pl.diff_check = true }
          passes p0
      in
      Alcotest.(check int)
        (Printf.sprintf "%s checksum after full pipeline" bm.W.Sources.bm_name)
        bm.W.Sources.bm_expected (run_ret p1);
      Alcotest.(check int) "one verifier run per pass plus the input" (n + 1)
        report.Pl.rp_verify_runs;
      Alcotest.(check int) "one differential check per pass" n
        report.Pl.rp_diff_checks;
      Alcotest.(check (list string)) "report covers the pipeline in order"
        (List.map (fun (p : Opt.pass) -> p.Opt.pass_name) passes)
        (List.map (fun s -> s.Pl.sp_pass) report.Pl.rp_passes);
      List.iter
        (fun s ->
          if s.Pl.sp_ms < 0.0 then
            Alcotest.failf "negative wall time for %s" s.Pl.sp_pass)
        report.Pl.rp_passes)
    (tiny_benchmarks ())

(* ------------------------------------------------------------------ *)
(* Pipeline control through the toolchain. *)

let sha_source () =
  (List.hd (tiny_benchmarks ())).W.Sources.bm_source

let diamond_source =
  "int main(int x, int y) { int r; if (x < y) r = x * 2; else r = y * 3; return r; }"

let guarded_count (p : Ir.program) =
  List.fold_left
    (fun acc (f : Ir.func) ->
      List.fold_left
        (fun acc (b : Ir.block) ->
          acc
          + List.length (List.filter (fun i -> i.Ir.guard <> None) b.Ir.b_insts))
        acc f.Ir.f_blocks)
    0 p.Ir.p_funcs

let compile ?(pipeline = T.default_pipeline) ?opt source =
  T.compile_epic ?opt ~pipeline Epic.Config.default ~source ()

let test_disable_pass_drops_guards () =
  let a = compile diamond_source in
  Alcotest.(check bool) "default pipeline predicates the diamond" true
    (guarded_count a.T.ea_mir > 0);
  let b =
    compile
      ~pipeline:{ T.default_pipeline with T.pp_disable = [ "if-convert" ] }
      diamond_source
  in
  Alcotest.(check int) "--disable-pass if-convert leaves no guards" 0
    (guarded_count b.T.ea_mir)

let test_passes_changes_schedule () =
  let src = sha_source () in
  let a = compile src in
  let b =
    compile
      ~pipeline:
        { T.default_pipeline with T.pp_passes = Some [ "simplify-cfg" ] }
      src
  in
  Alcotest.(check bool) "--passes changes the emitted schedule" true
    (a.T.ea_sched.Epic.Sched.Sched.st_insts
     <> b.T.ea_sched.Epic.Sched.Sched.st_insts)

let test_explicit_pipeline_is_default () =
  let src = sha_source () in
  let a = compile src in
  let names = List.map (fun (p : Opt.pass) -> p.Opt.pass_name) Opt.epic_passes in
  let b =
    compile ~pipeline:{ T.default_pipeline with T.pp_passes = Some names } src
  in
  Alcotest.(check bool) "spelling out the default pipeline is bit-identical"
    true (a.T.ea_words = b.T.ea_words)

let test_empty_passes_is_o0 () =
  let src = sha_source () in
  let a = compile ~opt:T.O0 src in
  let b =
    compile ~pipeline:{ T.default_pipeline with T.pp_passes = Some [] } src
  in
  Alcotest.(check bool) "--passes '' matches -O0 bit for bit" true
    (a.T.ea_words = b.T.ea_words)

let test_unknown_pass_rejected () =
  let reject pipeline =
    match compile ~pipeline diamond_source with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "unknown pass name accepted"
  in
  reject { T.default_pipeline with T.pp_passes = Some [ "nosuch" ] };
  reject { T.default_pipeline with T.pp_disable = [ "nosuch" ] }

let test_checked_compile_to_binary () =
  (* The acceptance path: compile with both checks enabled all the way to
     an encoded binary, and confirm the report reached the artifacts. *)
  let a =
    compile
      ~pipeline:
        { T.default_pipeline with T.pp_verify = true; T.pp_diff_check = true }
      (sha_source ())
  in
  Alcotest.(check bool) "binary emitted" true (Array.length a.T.ea_words > 0);
  Alcotest.(check int) "report covers the default pipeline"
    (List.length Opt.epic_passes)
    (List.length a.T.ea_report.Pl.rp_passes)

let suite =
  [
    Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
    Alcotest.test_case "registry parse_list" `Quick test_registry_parse_list;
    Alcotest.test_case "verify: dangling branch target" `Quick test_verify_dangling_target;
    Alcotest.test_case "verify: duplicate block ids" `Quick test_verify_duplicate_blocks;
    Alcotest.test_case "verify: vreg out of range" `Quick test_verify_vreg_range;
    Alcotest.test_case "verify: guard out of range" `Quick test_verify_guard_range;
    Alcotest.test_case "verify: frame bounds" `Quick test_verify_frame_bounds;
    Alcotest.test_case "verify: use before def" `Quick test_verify_use_before_def;
    Alcotest.test_case "verify: partial def flags join use" `Quick test_verify_partial_def_on_join;
    Alcotest.test_case "verify: guarded defs count" `Quick test_verify_guarded_defs_count;
    Alcotest.test_case "verify: call arity" `Quick test_verify_call_arity;
    Alcotest.test_case "verify: accepts the benchmarks" `Quick test_verify_accepts_benchmarks;
    Alcotest.test_case "each pass preserves semantics" `Slow test_each_pass_preserves_semantics;
    Alcotest.test_case "full pipeline under verify+diff" `Slow test_full_pipeline_checked;
    Alcotest.test_case "--disable-pass if-convert" `Quick test_disable_pass_drops_guards;
    Alcotest.test_case "--passes changes the schedule" `Quick test_passes_changes_schedule;
    Alcotest.test_case "explicit default pipeline identical" `Quick test_explicit_pipeline_is_default;
    Alcotest.test_case "--passes '' matches -O0" `Quick test_empty_passes_is_o0;
    Alcotest.test_case "unknown pass rejected" `Quick test_unknown_pass_rejected;
    Alcotest.test_case "checked compile to binary" `Quick test_checked_compile_to_binary;
  ]
