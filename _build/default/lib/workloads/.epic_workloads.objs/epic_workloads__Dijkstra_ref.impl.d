lib/workloads/dijkstra_ref.ml: Array Prng
