(* Optimiser tests: structural effects of each pass plus property-based
   semantics preservation of the whole pipeline. *)

module Ir = Epic.Ir
module Opt = Epic.Opt
module Cfront = Epic.Cfront
module Interp = Epic.Interp

let compile = Cfront.compile

let func p name =
  match Ir.find_func p name with
  | Some f -> f
  | None -> Alcotest.failf "function %s missing" name

let count_insts (f : Ir.func) =
  List.fold_left (fun acc (b : Ir.block) -> acc + List.length b.Ir.b_insts) 0 f.Ir.f_blocks

let count_matching p name pred =
  List.fold_left
    (fun acc (b : Ir.block) ->
      acc + List.length (List.filter pred b.Ir.b_insts))
    0 (func p name).Ir.f_blocks

let run_ret ?args p = (Interp.run ?args p ~entry:"main").Interp.ret

let test_constfold_folds () =
  let p = Opt.standard (compile "int main() { return 2 + 3 * 4; }") in
  let main = func p "main" in
  Alcotest.(check int) "single block" 1 (List.length main.Ir.f_blocks);
  Alcotest.(check int) "no instructions left" 0 (count_insts main);
  (match (List.hd main.Ir.f_blocks).Ir.b_term with
   | Ir.Ret (Some (Ir.Imm 14)) -> ()
   | t -> Alcotest.failf "unexpected terminator %s" (Format.asprintf "%a" Ir.pp_terminator t))

let test_constfold_propagates_through_locals () =
  let p =
    Opt.standard
      (compile "int main() { int x = 6; int y = x * 7; return y - 2; }")
  in
  Alcotest.(check int) "folded to 40" 40 (run_ret p);
  Alcotest.(check int) "no instructions" 0 (count_insts (func p "main"))

let test_strength_reduction () =
  let p = Opt.standard (compile "int main(int x, int y) { return x * 8; }") in
  let muls =
    count_matching p "main" (fun i ->
        match i.Ir.kind with Ir.Bin (Ir.Mul, _, _, _) -> true | _ -> false)
  in
  let shifts =
    count_matching p "main" (fun i ->
        match i.Ir.kind with Ir.Bin (Ir.Shl, _, _, Ir.Imm 3) -> true | _ -> false)
  in
  Alcotest.(check int) "multiply gone" 0 muls;
  Alcotest.(check int) "shift instead" 1 shifts;
  Alcotest.(check int) "still correct" 72 (run_ret ~args:[ 9; 0 ] p)

let test_division_by_zero_not_folded () =
  (* Folding 1/0 would change behaviour; it must survive to run time. *)
  let p = Opt.standard (compile "int main() { return 1 / 0; }") in
  (match Interp.run p ~entry:"main" with
   | exception Interp.Runtime_error _ -> ()
   | _ -> Alcotest.fail "expected a runtime division-by-zero")

let test_dce_removes_dead_code () =
  let src = "int main(int x, int y) { int a = x * y; int b = a + 1; return x; }" in
  let p0 = Opt.none (compile src) in
  let p1 = Opt.standard (compile src) in
  Alcotest.(check bool) "dead code removed" true
    (count_insts (func p1 "main") < count_insts (func p0 "main"));
  Alcotest.(check int) "semantics" 5 (run_ret ~args:[ 5; 7 ] p1)

let test_dce_keeps_stores () =
  let p =
    Opt.standard
      (compile "int g[2]; int main() { g[0] = 42; return 0; }")
  in
  let stores =
    count_matching p "main" (fun i ->
        match i.Ir.kind with Ir.Store _ -> true | _ -> false)
  in
  Alcotest.(check int) "store survives" 1 stores

let test_cse_loads () =
  let src =
    "int a[4];\n\
     int main(int i, int j) { a[1] = i; return a[1] + a[1] + a[1]; }"
  in
  let p = Opt.standard (compile src) in
  let loads =
    count_matching p "main" (fun i ->
        match i.Ir.kind with Ir.Load _ -> true | _ -> false)
  in
  Alcotest.(check int) "one load after CSE" 1 loads;
  Alcotest.(check int) "value" 21 (run_ret ~args:[ 7; 0 ] p)

let test_cse_invalidated_by_store () =
  let src =
    "int a[4];\n\
     int main(int i, int j) { a[0] = i; int x = a[0]; a[0] = j; return x + a[0]; }"
  in
  let p = Opt.standard (compile src) in
  Alcotest.(check int) "store invalidates load CSE" 12 (run_ret ~args:[ 5; 7 ] p)

let test_simplify_removes_unreachable () =
  let src = "int main() { return 1; int x = 2; return x; }" in
  let p = Opt.standard (compile src) in
  Alcotest.(check int) "one block" 1 (List.length (func p "main").Ir.f_blocks);
  Alcotest.(check int) "result" 1 (run_ret p)

let test_simplify_folds_constant_branch () =
  let src = "int main(int x, int y) { if (1 < 2) return x; return 0 - x; }" in
  let p = Opt.standard (compile src) in
  Alcotest.(check int) "one block" 1 (List.length (func p "main").Ir.f_blocks);
  Alcotest.(check int) "took true branch" 9 (run_ret ~args:[ 9; 0 ] p)

let guarded_count p name =
  count_matching p name (fun i -> i.Ir.guard <> None)

let test_if_convert_diamond () =
  let src =
    "int main(int x, int y) { int r; if (x < y) r = x * 2; else r = y * 3; return r; }"
  in
  let p = Opt.for_epic (compile src) in
  Alcotest.(check bool) "guards present" true (guarded_count p "main" > 0);
  Alcotest.(check int) "one block" 1 (List.length (func p "main").Ir.f_blocks);
  Alcotest.(check int) "true side" 6 (run_ret ~args:[ 3; 9 ] p);
  Alcotest.(check int) "false side" 9 (run_ret ~args:[ 9; 3 ] p)

let test_if_convert_triangle () =
  let src = "int main(int x, int y) { int r = x; if (x < 0) r = 0 - x; return r; }" in
  let p = Opt.for_epic (compile src) in
  Alcotest.(check bool) "guards present" true (guarded_count p "main" > 0);
  Alcotest.(check int) "abs positive" 5 (run_ret ~args:[ 5; 0 ] p);
  Alcotest.(check int) "abs negative" 5 (run_ret ~args:[ -5 land 0xFFFFFFFF; 0 ] p)

let test_if_convert_skips_calls () =
  let src =
    "int g;\n\
     void bump() { g = g + 1; }\n\
     int main(int x, int y) { if (x < y) bump(); return g; }"
  in
  (* With the call inlined the body becomes a store, which IS convertible;
     force the shape by exceeding the inline size with a loop. *)
  let p = Opt.for_epic (compile src) in
  Alcotest.(check int) "called" 1 (run_ret ~args:[ 1; 2 ] p);
  Alcotest.(check int) "not called" 0 (run_ret ~args:[ 2; 1 ] p)

let test_if_convert_disabled () =
  let src =
    "int main(int x, int y) { int r; if (x < y) r = x; else r = y; return r; }"
  in
  let p = Opt.for_epic ~predication:false (compile src) in
  Alcotest.(check int) "no guards" 0 (guarded_count p "main");
  Alcotest.(check int) "correct" 3 (run_ret ~args:[ 7; 3 ] p)

let test_inline_single_site () =
  let src =
    "int helper(int a, int b) {\n\
     \  int s = 0;\n\
     \  for (int i = 0; i < a; i++) s += b;\n\
     \  return s;\n\
     }\n\
     int main() { return helper(6, 7); }"
  in
  let p = Opt.standard (compile src) in
  Alcotest.(check int) "helper inlined away" 1 (List.length p.Ir.p_funcs);
  Alcotest.(check int) "semantics" 42 (run_ret p)

let test_inline_keeps_recursive () =
  let src =
    "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }\n\
     int main() { return fact(5); }"
  in
  let p = Opt.standard (compile src) in
  Alcotest.(check int) "fact survives" 2 (List.length p.Ir.p_funcs);
  Alcotest.(check int) "semantics" 120 (run_ret p)

let test_inline_frame_offsets () =
  (* Both caller and callee own local arrays: inlining must keep their
     frame slots disjoint. *)
  let src =
    "int f() { int a[4]; a[0] = 1; a[1] = 2; return a[0] + a[1]; }\n\
     int main() { int b[4]; b[0] = 10; int r = f(); return r + b[0]; }"
  in
  let p = Opt.standard (compile src) in
  Alcotest.(check int) "frames disjoint" 13 (run_ret p)

let test_licm_hoists_addrof () =
  let src =
    "int g[8];\n\
     int main(int n, int y) {\n\
     \  int s = 0;\n\
     \  int i = 0;\n\
     \  while (i < n) { s += g[i & 7] + y * 3; i++; }\n\
     \  return s;\n\
     }"
  in
  let p = Opt.standard (compile src) in
  let main = func p "main" in
  (* y * 3 and &g are loop-invariant: they must not remain in any block
     that is inside a loop (a block that can reach itself). *)
  let doms = Epic.Dominators.analyse main in
  let loops = Epic.Dominators.natural_loops doms main in
  Alcotest.(check bool) "loop found" true (loops <> []);
  let in_loop b =
    List.exists (fun l -> Epic.Dominators.LSet.mem b l.Epic.Dominators.body) loops
  in
  List.iter
    (fun (b : Ir.block) ->
      if in_loop b.Ir.b_id then
        List.iter
          (fun (i : Ir.inst) ->
            match i.Ir.kind with
            | Ir.AddrOf _ -> Alcotest.fail "AddrOf left inside the loop"
            | Ir.Bin (Ir.Mul, _, _, _) -> Alcotest.fail "invariant multiply left inside"
            | _ -> ())
          b.Ir.b_insts)
    main.Ir.f_blocks;
  Alcotest.(check int) "semantics" 282 (run_ret ~args:[ 2; 47 ] p)

let test_licm_keeps_variant_code () =
  (* i * 2 depends on the induction variable: must stay in the loop. *)
  let src =
    "int main(int n, int y) { int s = 0; int i = 0;\n\
     while (i < n) { s += i * 2; i++; } return s; }"
  in
  let p = Opt.standard (compile src) in
  Alcotest.(check int) "sum of evens" 20 (run_ret ~args:[ 5; 0 ] p)

let test_licm_zero_trip_loop () =
  (* The loop never runs: hoisted pure code must not change the result,
     and division must never be hoisted (it could trap). *)
  let src =
    "int g = 3;\n\
     int main(int n, int y) {\n\
     \  int s = 1;\n\
     \  int i = 0;\n\
     \  while (i < n) { s += y / g + y * 5; i++; }\n\
     \  return s;\n\
     }"
  in
  let p = Opt.standard (compile src) in
  Alcotest.(check int) "zero-trip" 1 (run_ret ~args:[ 0; 7 ] p);
  Alcotest.(check int) "two-trip" (1 + 2 * ((7 / 3) + 35)) (run_ret ~args:[ 2; 7 ] p)

let test_dominators_basic () =
  let p = compile "int main(int x, int y) { int s = 0; while (s < x) s += y; return s; }" in
  let main = func p "main" in
  let doms = Epic.Dominators.analyse main in
  let entry = (Ir.entry_block main).Ir.b_id in
  List.iter
    (fun (b : Ir.block) ->
      Alcotest.(check bool) "entry dominates all" true
        (Epic.Dominators.dominates doms entry b.Ir.b_id);
      Alcotest.(check bool) "self-domination" true
        (Epic.Dominators.dominates doms b.Ir.b_id b.Ir.b_id))
    main.Ir.f_blocks;
  let loops = Epic.Dominators.natural_loops doms main in
  Alcotest.(check int) "one loop" 1 (List.length loops)

let test_validates_after_opt () =
  List.iter
    (fun (bm : Epic.Workloads.Sources.benchmark) ->
      let p = Opt.for_epic (compile bm.Epic.Workloads.Sources.bm_source) in
      match Ir.validate_program p with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s invalid after opt: %s" bm.Epic.Workloads.Sources.bm_name m)
    (Epic.Workloads.Sources.all ~sha_bytes:64 ~aes_iters:1 ~dct_size:(8, 8)
       ~dijkstra_nodes:6 ())

(* Random program generator for semantics-preservation properties: nested
   arithmetic over two parameters, a bounded loop and an array, avoiding
   division (by-zero traps would diverge between halves of the test). *)
let gen_program =
  let open QCheck.Gen in
  let rec gen_expr depth =
    if depth = 0 then
      oneof [ map string_of_int (int_range (-100) 100); return "x"; return "y"; return "s" ]
    else
      let sub = gen_expr (depth - 1) in
      oneof
        [
          map2 (fun a b -> Printf.sprintf "(%s + %s)" a b) sub sub;
          map2 (fun a b -> Printf.sprintf "(%s - %s)" a b) sub sub;
          map2 (fun a b -> Printf.sprintf "(%s * %s)" a b) sub sub;
          map2 (fun a b -> Printf.sprintf "(%s ^ %s)" a b) sub sub;
          map2 (fun a b -> Printf.sprintf "(%s & %s)" a b) sub sub;
          map2 (fun a b -> Printf.sprintf "(%s | %s)" a b) sub sub;
          map (fun a -> Printf.sprintf "(%s << 3)" a) sub;
          map (fun a -> Printf.sprintf "__lsr(%s, 5)" a) sub;
          map2 (fun a b -> Printf.sprintf "(%s < %s ? %s : %s)" a b b a) sub sub;
        ]
  in
  let* e1 = gen_expr 3 in
  let* e2 = gen_expr 3 in
  let* n = int_range 1 8 in
  return
    (Printf.sprintf
       "int a[8];\n\
        int main(int x, int y) {\n\
        \  int s = 0;\n\
        \  for (int i = 0; i < %d; i++) {\n\
        \    a[i] = %s;\n\
        \    s = s + a[i] + (%s);\n\
        \  }\n\
        \  return s;\n\
        }"
       n e1 e2)

let prop_opt_preserves_semantics =
  QCheck.Test.make ~name:"optimised program agrees with unoptimised" ~count:120
    (QCheck.make
       ~print:(fun (src, x, y) -> Printf.sprintf "x=%d y=%d\n%s" x y src)
       QCheck.Gen.(triple gen_program (int_range (-1000) 1000) (int_range (-1000) 1000)))
    (fun (src, x, y) ->
      let args = [ x land 0xFFFFFFFF; y land 0xFFFFFFFF ] in
      let p0 = compile src in
      let r0 = run_ret ~args (Opt.none p0) in
      let r1 = run_ret ~args (Opt.standard p0) in
      let r2 = run_ret ~args (Opt.for_epic p0) in
      r0 = r1 && r0 = r2)

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constfold_folds;
    Alcotest.test_case "constant propagation" `Quick test_constfold_propagates_through_locals;
    Alcotest.test_case "strength reduction" `Quick test_strength_reduction;
    Alcotest.test_case "div-by-zero survives folding" `Quick test_division_by_zero_not_folded;
    Alcotest.test_case "dce removes dead code" `Quick test_dce_removes_dead_code;
    Alcotest.test_case "dce keeps stores" `Quick test_dce_keeps_stores;
    Alcotest.test_case "cse merges loads" `Quick test_cse_loads;
    Alcotest.test_case "cse invalidated by store" `Quick test_cse_invalidated_by_store;
    Alcotest.test_case "unreachable code removed" `Quick test_simplify_removes_unreachable;
    Alcotest.test_case "constant branch folded" `Quick test_simplify_folds_constant_branch;
    Alcotest.test_case "if-conversion (diamond)" `Quick test_if_convert_diamond;
    Alcotest.test_case "if-conversion (triangle)" `Quick test_if_convert_triangle;
    Alcotest.test_case "if-conversion around calls" `Quick test_if_convert_skips_calls;
    Alcotest.test_case "if-conversion can be disabled" `Quick test_if_convert_disabled;
    Alcotest.test_case "inline single-site" `Quick test_inline_single_site;
    Alcotest.test_case "inline keeps recursion" `Quick test_inline_keeps_recursive;
    Alcotest.test_case "inline frame offsets" `Quick test_inline_frame_offsets;
    Alcotest.test_case "licm hoists invariants" `Quick test_licm_hoists_addrof;
    Alcotest.test_case "licm keeps variant code" `Quick test_licm_keeps_variant_code;
    Alcotest.test_case "licm zero-trip safety" `Quick test_licm_zero_trip_loop;
    Alcotest.test_case "dominators + loops" `Quick test_dominators_basic;
    Alcotest.test_case "benchmarks validate after opt" `Quick test_validates_after_opt;
    QCheck_alcotest.to_alcotest prop_opt_preserves_semantics;
  ]
