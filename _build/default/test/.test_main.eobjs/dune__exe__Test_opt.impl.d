test/test_opt.ml: Alcotest Epic Format List Printf QCheck QCheck_alcotest
