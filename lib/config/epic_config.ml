module Isa = Epic_isa

type custom_op = {
  cop_name : string;
  cop_semantics : width:int -> int -> int -> int;
  cop_latency : int;
  cop_slices : int;
  cop_description : string;
}

type t = {
  n_alus : int;
  n_gprs : int;
  n_preds : int;
  n_btrs : int;
  regs_per_inst : int;
  issue_width : int;
  width : int;
  alu_omit : Isa.opcode list;
  custom_ops : custom_op list;
  opcode_bits : int;
  dst_bits : int;
  src_bits : int;
  pred_bits : int;
  rf_port_budget : int;
  forwarding : bool;
  mem_banks : int;
  pipeline_stages : int;
  clock_mhz : float;
  lat_overrides : (Isa.opcode * int) list;
}

let default =
  {
    n_alus = 4;
    n_gprs = 64;
    n_preds = 32;
    n_btrs = 16;
    regs_per_inst = 4;
    issue_width = 4;
    width = 32;
    alu_omit = [];
    custom_ops = [];
    opcode_bits = 15;
    dst_bits = 6;
    src_bits = 16;
    pred_bits = 5;
    rf_port_budget = 8;
    forwarding = true;
    mem_banks = 4;
    pipeline_stages = 2;
    clock_mhz = 41.8;
    lat_overrides = [];
  }

let with_alus n = { default with n_alus = n }

let inst_bits c = c.opcode_bits + (2 * c.dst_bits) + (2 * c.src_bits) + c.pred_bits

(* Validation collects every violated constraint (not just the first) as a
   structured diagnostic, so a tool can report the whole shape of a bad
   configuration header in one pass. *)
let validate c =
  let ds = ref [] in
  let err ?(ctx = []) code fmt =
    Format.kasprintf
      (fun m -> ds := Epic_diag.v ~context:ctx ~code m :: !ds)
      fmt
  in
  let pow2 b = 1 lsl b in
  let i = string_of_int in
  if c.n_alus < 1 then
    err "config/alus" ~ctx:[ ("n_alus", i c.n_alus) ]
      "n_alus must be >= 1 (got %d)" c.n_alus;
  if c.width < 8 || c.width > Isa.Word.max_width then
    err "config/width" ~ctx:[ ("width", i c.width) ]
      "width must be within 8..%d (got %d)" Isa.Word.max_width c.width;
  if c.n_gprs < 16 then
    err "config/gprs" ~ctx:[ ("n_gprs", i c.n_gprs) ]
      "n_gprs must be >= 16 for the calling convention (got %d)" c.n_gprs;
  if c.dst_bits >= 1 && c.n_gprs > pow2 c.dst_bits then
    err "config/gprs-dst-field"
      ~ctx:[ ("n_gprs", i c.n_gprs); ("dst_bits", i c.dst_bits) ]
      "n_gprs = %d exceeds the 2^%d = %d registers addressable by the \
       destination field; re-design the instruction format (enlarge dst_bits)"
      c.n_gprs c.dst_bits (pow2 c.dst_bits);
  if c.src_bits >= 2 && c.n_gprs > pow2 (c.src_bits - 1) then
    err "config/gprs-src-field"
      ~ctx:[ ("n_gprs", i c.n_gprs); ("src_bits", i c.src_bits) ]
      "n_gprs = %d exceeds the %d registers addressable by a source field \
       (one bit is the literal flag)" c.n_gprs (pow2 (c.src_bits - 1));
  if c.n_preds < 1 then
    err "config/preds" ~ctx:[ ("n_preds", i c.n_preds) ] "n_preds must be >= 1";
  if c.n_preds > pow2 c.pred_bits then
    err "config/preds-field"
      ~ctx:[ ("n_preds", i c.n_preds); ("pred_bits", i c.pred_bits) ]
      "n_preds = %d exceeds 2^%d addressable by the predicate field"
      c.n_preds c.pred_bits;
  if c.n_preds > pow2 c.dst_bits then
    err "config/preds-dst-field"
      ~ctx:[ ("n_preds", i c.n_preds); ("dst_bits", i c.dst_bits) ]
      "n_preds = %d exceeds the destination field range" c.n_preds;
  if c.n_btrs < 1 then
    err "config/btrs" ~ctx:[ ("n_btrs", i c.n_btrs) ] "n_btrs must be >= 1";
  if c.n_btrs > pow2 c.dst_bits then
    err "config/btrs-dst-field"
      ~ctx:[ ("n_btrs", i c.n_btrs); ("dst_bits", i c.dst_bits) ]
      "n_btrs = %d exceeds the destination field range" c.n_btrs;
  if c.regs_per_inst < 2 || c.regs_per_inst > 4 then
    err "config/regs-per-inst" ~ctx:[ ("regs_per_inst", i c.regs_per_inst) ]
      "regs_per_inst must be within 2..4 (got %d)" c.regs_per_inst;
  if c.issue_width < 1 then
    err "config/issue-width" ~ctx:[ ("issue_width", i c.issue_width) ]
      "issue_width must be >= 1";
  if c.issue_width * inst_bits c > c.mem_banks * 32 * 2 then
    err "config/fetch-bandwidth"
      ~ctx:[ ("issue_width", i c.issue_width); ("mem_banks", i c.mem_banks);
             ("inst_bits", i (inst_bits c)) ]
      "issue_width %d needs %d fetch bits/cycle but %d banks at double \
       rate provide only %d (paper: issue constrained between one and four)"
      c.issue_width
      (c.issue_width * inst_bits c)
      c.mem_banks (c.mem_banks * 32 * 2);
  if c.rf_port_budget < 2 then
    err "config/rf-ports" ~ctx:[ ("rf_port_budget", i c.rf_port_budget) ]
      "rf_port_budget must be >= 2";
  if c.pipeline_stages < 2 || c.pipeline_stages > 4 then
    err "config/pipeline-stages" ~ctx:[ ("pipeline_stages", i c.pipeline_stages) ]
      "pipeline_stages must be within 2..4 (got %d)" c.pipeline_stages;
  if List.exists (fun (_, l) -> l < 1) c.lat_overrides then
    err "config/latency" "operation latencies must be >= 1";
  if c.opcode_bits < 8 then
    err "config/opcode-bits" ~ctx:[ ("opcode_bits", i c.opcode_bits) ]
      "opcode_bits must be >= 8 to number the base instruction set";
  List.iter
    (fun op ->
      if Isa.unit_of op <> Isa.U_alu then
        err "config/alu-omit" ~ctx:[ ("op", Isa.string_of_opcode op) ]
          "alu_omit may only list ALU-class operations (got %s)"
          (Isa.string_of_opcode op))
    c.alu_omit;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun cop ->
      if Hashtbl.mem seen cop.cop_name then
        err "config/custom-dup" ~ctx:[ ("name", cop.cop_name) ]
          "duplicate custom operation name %s" cop.cop_name
      else Hashtbl.add seen cop.cop_name ())
    c.custom_ops;
  match List.rev !ds with [] -> Ok () | ds -> Error ds

let validate_exn c =
  match validate c with
  | Ok () -> c
  | Error ds -> invalid_arg ("Epic_config: " ^ Epic_diag.to_string_list ds)

(* ------------------------------------------------------------------ *)
(* Custom-operation registry                                           *)

let rotr ~width a b =
  let n = b mod width in
  if n = 0 then a else Isa.Word.mask width ((a lsr n) lor (a lsl (width - n)))

let rotl ~width a b =
  let n = b mod width in
  if n = 0 then a else Isa.Word.mask width ((a lsl n) lor (a lsr (width - n)))

let bswap ~width a _b =
  let nbytes = width / 8 in
  let rec go i acc =
    if i = nbytes then acc
    else go (i + 1) ((acc lsl 8) lor ((a lsr (8 * i)) land 0xFF))
  in
  Isa.Word.mask width (go 0 0)

let popcnt ~width a _b =
  let rec go i acc = if i = width then acc else go (i + 1) (acc + ((a lsr i) land 1)) in
  go 0 0

let clz ~width a _b =
  let rec go i = if i = width then width else if (a lsr (width - 1 - i)) land 1 = 1 then i else go (i + 1) in
  go 0

let satadd ~width a b =
  let s = Isa.Word.to_signed width a + Isa.Word.to_signed width b in
  let s = max (Isa.Word.min_signed width) (min (Isa.Word.max_signed width) s) in
  Isa.Word.of_signed width s

let registry =
  [
    { cop_name = "ROTR"; cop_semantics = rotr; cop_latency = 1; cop_slices = 180;
      cop_description = "rotate right (SHA-256 sigma functions)" };
    { cop_name = "ROTL"; cop_semantics = rotl; cop_latency = 1; cop_slices = 180;
      cop_description = "rotate left" };
    { cop_name = "BSWAP"; cop_semantics = bswap; cop_latency = 1; cop_slices = 40;
      cop_description = "byte reversal (endianness conversion)" };
    { cop_name = "POPCNT"; cop_semantics = popcnt; cop_latency = 1; cop_slices = 90;
      cop_description = "population count" };
    { cop_name = "CLZ"; cop_semantics = clz; cop_latency = 1; cop_slices = 110;
      cop_description = "count leading zeros" };
    { cop_name = "SATADD"; cop_semantics = satadd; cop_latency = 1; cop_slices = 70;
      cop_description = "signed saturating add (DSP kernels)" };
  ]

let registry_find name = List.find_opt (fun c -> c.cop_name = name) registry

(* Include an arbitrary (e.g. automatically generated) custom operation. *)
let add_custom_op cfg cop =
  if List.exists (fun c -> c.cop_name = cop.cop_name) cfg.custom_ops then cfg
  else { cfg with custom_ops = cfg.custom_ops @ [ cop ] }

let add_custom cfg name =
  match registry_find name with
  | None -> invalid_arg (Printf.sprintf "Epic_config.add_custom: unknown custom op %s" name)
  | Some cop ->
    if List.exists (fun c -> c.cop_name = name) cfg.custom_ops then cfg
    else { cfg with custom_ops = cfg.custom_ops @ [ cop ] }

let find_custom cfg name = List.find_opt (fun c -> c.cop_name = name) cfg.custom_ops

let custom_eval cfg name a b =
  match find_custom cfg name with
  | Some cop -> cop.cop_semantics ~width:cfg.width a b
  | None ->
    invalid_arg
      (Printf.sprintf "custom operation %s is not in this configuration" name)

let op_supported cfg (op : Isa.opcode) =
  match op with
  | Isa.CUSTOM name -> find_custom cfg name <> None
  | _ -> not (List.exists (fun o -> Isa.equal_opcode o op) cfg.alu_omit)

let latency cfg (op : Isa.opcode) =
  match List.find_opt (fun (o, _) -> Isa.equal_opcode o op) cfg.lat_overrides with
  | Some (_, l) -> l
  | None ->
    (match op with
     | Isa.CUSTOM name ->
       (match find_custom cfg name with
        | Some cop -> cop.cop_latency
        | None -> Isa.default_latency op)
     | _ -> Isa.default_latency op)

let pp ppf c =
  Format.fprintf ppf
    "@[<v>// EPIC configuration header@,\
     ALUS            = %d@,\
     GPRS            = %d@,\
     PREDS           = %d@,\
     BTRS            = %d@,\
     REGS_PER_INST   = %d@,\
     ISSUE_WIDTH     = %d@,\
     WIDTH           = %d@,\
     OPCODE_BITS     = %d@,\
     DST_BITS        = %d@,\
     SRC_BITS        = %d@,\
     PRED_BITS       = %d@,\
     RF_PORT_BUDGET  = %d@,\
     FORWARDING      = %b@,\
     MEM_BANKS       = %d@,\
     PIPELINE_STAGES = %d@,\
     CLOCK_MHZ       = %.1f@,\
     ALU_OMIT        = %s@,\
     CUSTOM_OPS      = %s@]"
    c.n_alus c.n_gprs c.n_preds c.n_btrs c.regs_per_inst c.issue_width c.width
    c.opcode_bits c.dst_bits c.src_bits c.pred_bits c.rf_port_budget
    c.forwarding c.mem_banks c.pipeline_stages c.clock_mhz
    (String.concat "," (List.map Isa.string_of_opcode c.alu_omit))
    (String.concat "," (List.map (fun o -> o.cop_name) c.custom_ops))

let equal a b =
  let names c = List.map (fun o -> o.cop_name) c.custom_ops in
  { a with custom_ops = [] } = { b with custom_ops = [] } && names a = names b

(* Canonical fingerprint over every architectural field — the
   configuration half of the compile-cache key.  Custom operations
   contribute name, latency and slice cost (their semantics are closures,
   identified by name exactly as in [equal]); list-valued fields keep
   their order, since order is observable (e.g. registry lookup). *)
let fingerprint c =
  let ops l = String.concat "," (List.map Isa.string_of_opcode l) in
  let customs =
    String.concat ","
      (List.map
         (fun o -> Printf.sprintf "%s:%d:%d" o.cop_name o.cop_latency o.cop_slices)
         c.custom_ops)
  in
  let lats =
    String.concat ","
      (List.map
         (fun (op, l) -> Printf.sprintf "%s:%d" (Isa.string_of_opcode op) l)
         c.lat_overrides)
  in
  Printf.sprintf
    "alus=%d;gprs=%d;preds=%d;btrs=%d;rpi=%d;iw=%d;w=%d;omit=%s;custom=%s;\
     ob=%d;db=%d;sb=%d;pb=%d;ports=%d;fwd=%b;banks=%d;stages=%d;clk=%h;lat=%s"
    c.n_alus c.n_gprs c.n_preds c.n_btrs c.regs_per_inst c.issue_width c.width
    (ops c.alu_omit) customs c.opcode_bits c.dst_bits c.src_bits c.pred_bits
    c.rf_port_budget c.forwarding c.mem_banks c.pipeline_stages c.clock_mhz
    lats
