lib/opt/ifconvert.ml: Epic_mir Hashtbl List Simplify
