(** Umbrella module of the EPIC toolchain: the customisable processor's
    ISA, configuration, encoding, machine description, compiler (front-end,
    optimiser, register allocator, scheduler), assembler, cycle-level
    simulator, the SA-110 baseline, the FPGA area model, the paper's
    benchmarks, and the end-to-end drivers and experiment harness. *)

module Isa = Epic_isa
module Diag = Epic_diag
module Config = Epic_config
module Encoding = Epic_encoding
module Mdes = Epic_mdes
module Ir = Epic_mir.Ir
module Liveness = Epic_mir.Liveness
module Dominators = Epic_mir.Dominators
module Memmap = Epic_mir.Memmap
module Interp = Epic_mir.Interp
module Verify = Epic_mir.Verify
module Cfront = Epic_cfront
module Opt = Epic_opt
module Regalloc = Epic_regalloc
module Sched = Epic_sched
module Asm = Epic_asm
module Sim = Epic_sim
module Fault = Epic_fault
module Profile = Epic_profile
module Arm = Epic_arm
module Area = Epic_area
module Workloads = Epic_workloads
module Exec = Epic_exec
module Difftest = Epic_difftest
module Toolchain = Toolchain
module Experiments = Experiments
module Custom_gen = Custom_gen
