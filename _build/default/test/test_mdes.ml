(* Machine-description tests: derivation from configurations, the
   HMDES-style textual round-trip, and retargeting behaviour. *)

module Mdes = Epic.Mdes
module Config = Epic.Config
module Isa = Epic.Isa

let test_of_config_default () =
  let md = Mdes.of_config Config.default in
  Alcotest.(check int) "ALUs" 4 md.Mdes.md_alus;
  Alcotest.(check int) "LSU" 1 md.Mdes.md_lsus;
  Alcotest.(check int) "CMPU" 1 md.Mdes.md_cmpus;
  Alcotest.(check int) "BRU" 1 md.Mdes.md_brus;
  Alcotest.(check int) "issue" 4 md.Mdes.md_issue_width;
  Alcotest.(check int) "ports" 8 md.Mdes.md_rf_port_budget;
  Alcotest.(check bool) "forwarding" true md.Mdes.md_forwarding;
  Alcotest.(check bool) "has ADD" true (Mdes.op_supported md Isa.ADD);
  Alcotest.(check bool) "has stores" true (Mdes.op_supported md (Isa.ST Isa.M_word));
  Alcotest.(check bool) "no customs by default" false
    (Mdes.op_supported md (Isa.CUSTOM "ROTR"))

let test_omissions_propagate () =
  let cfg = { Config.default with Config.alu_omit = [ Isa.DIV; Isa.REM ] } in
  let md = Mdes.of_config cfg in
  Alcotest.(check bool) "DIV dropped" false (Mdes.op_supported md Isa.DIV);
  Alcotest.(check bool) "ADD kept" true (Mdes.op_supported md Isa.ADD)

let test_customs_propagate () =
  let cfg = Config.add_custom Config.default "ROTR" in
  let md = Mdes.of_config cfg in
  Alcotest.(check bool) "ROTR present" true (Mdes.op_supported md (Isa.CUSTOM "ROTR"));
  Alcotest.(check int) "ROTR latency" 1 (Mdes.latency md (Isa.CUSTOM "ROTR"))

let test_latencies () =
  let md = Mdes.of_config Config.default in
  Alcotest.(check int) "ADD" 1 (Mdes.latency md Isa.ADD);
  Alcotest.(check int) "MPY" 3 (Mdes.latency md Isa.MPY);
  Alcotest.(check int) "LDW" 2 (Mdes.latency md (Isa.LD Isa.M_word))

let test_unit_counts () =
  let md = Mdes.of_config (Config.with_alus 2) in
  Alcotest.(check int) "alu count" 2 (Mdes.unit_count md Isa.U_alu);
  Alcotest.(check int) "lsu count" 1 (Mdes.unit_count md Isa.U_lsu)

let test_text_roundtrip () =
  List.iter
    (fun cfg ->
      let md = Mdes.of_config cfg in
      let text = Mdes.to_string md in
      match Mdes.of_string text with
      | Ok md' -> Alcotest.(check bool) "roundtrip equal" true (Mdes.equal md md')
      | Error m -> Alcotest.failf "parse failed: %s" m)
    [ Config.default; Config.with_alus 1;
      Config.add_custom (Config.with_alus 2) "BSWAP";
      { Config.default with Config.alu_omit = [ Isa.DIV ]; forwarding = false };
      { Config.default with Config.issue_width = 2; rf_port_budget = 4 } ]

let test_parse_errors () =
  let bad s =
    match Mdes.of_string s with
    | Ok _ -> Alcotest.failf "expected parse error for %S" s
    | Error _ -> ()
  in
  bad "NOTASECTION Resource { }";
  bad "SECTION Bogus { X(count(1)); }";
  bad "SECTION Operation { FROB(unit(ALU) latency(1)); }";
  bad "SECTION Resource { ALU(count(1)) }"

let test_parsed_drives_defaults () =
  (* A hand-written description is usable directly. *)
  let text =
    "SECTION Resource { ALU(count(2)); ISSUE(count(2)); }\n\
     SECTION Operation { ADD(unit(ALU) latency(1)); MPY(unit(ALU) latency(5)); }"
  in
  match Mdes.of_string text with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok md ->
    Alcotest.(check int) "alus" 2 md.Mdes.md_alus;
    Alcotest.(check int) "issue" 2 md.Mdes.md_issue_width;
    Alcotest.(check int) "default lsu" 1 md.Mdes.md_lsus;
    Alcotest.(check int) "overridden MPY latency" 5 (Mdes.latency md Isa.MPY);
    Alcotest.(check bool) "only listed ops" false (Mdes.op_supported md Isa.SUB)

let suite =
  [
    Alcotest.test_case "of_config defaults" `Quick test_of_config_default;
    Alcotest.test_case "omissions propagate" `Quick test_omissions_propagate;
    Alcotest.test_case "customs propagate" `Quick test_customs_propagate;
    Alcotest.test_case "latencies" `Quick test_latencies;
    Alcotest.test_case "unit counts" `Quick test_unit_counts;
    Alcotest.test_case "text roundtrip" `Quick test_text_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "hand-written description" `Quick test_parsed_drives_defaults;
  ]
