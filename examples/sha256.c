/* SHA-256 of a 64-byte synthetic message (generated from
   Epic_workloads.Sources.sha_benchmark ~bytes:64; expected return value
   0x6de65400 = XOR of the eight digest words).  The worked profiling
   example of README section "Profiling a program" runs epicprof on
   this file. */
int __prng_state = 625341585;
int prng_next() {
  int s = __prng_state;
  s = s ^ (s << 13);
  s = s ^ __lsr(s, 17);
  s = s ^ (s << 5);
  __prng_state = s;
  return s;
}
int K[64] = {
  1116352408,1899447441,3049323471,3921009573,961987163,1508970993,2453635748,2870763221,3624381080,310598401,607225278,1426881987,
  1925078388,2162078206,2614888103,3248222580,3835390401,4022224774,264347078,604807628,770255983,1249150122,1555081692,1996064986,
  2554220882,2821834349,2952996808,3210313671,3336571891,3584528711,113926993,338241895,666307205,773529912,1294757372,1396182291,
  1695183700,1986661051,2177026350,2456956037,2730485921,2820302411,3259730800,3345764771,3516065817,3600352804,4094571909,275423344,
  430227734,506948616,659060556,883997877,958139571,1322822218,1537002063,1747873779,1955562222,2024104815,2227730452,2361852424,
  2428436474,2756734187,3204031479,3329325298
};
int data[128];
int H[8];
int W[64];
int main() {
  int i; int t; int blk; int bitlen;
  for (i = 0; i < 64; i++) data[i] = prng_next() & 255;
  data[64] = 0x80;
  bitlen = 512;
  for (i = 0; i < 8; i++) data[128 - 1 - i] = __lsr(bitlen, 8 * i) & 255;
  H[0] = 0x6a09e667; H[1] = 0xbb67ae85; H[2] = 0x3c6ef372; H[3] = 0xa54ff53a;
  H[4] = 0x510e527f; H[5] = 0x9b05688c; H[6] = 0x1f83d9ab; H[7] = 0x5be0cd19;
  for (blk = 0; blk < 2; blk++) {
    int base = blk * 64;
    for (t = 0; t < 16; t++)
      W[t] = (data[base + 4*t] << 24) | (data[base + 4*t + 1] << 16)
           | (data[base + 4*t + 2] << 8) | data[base + 4*t + 3];
    for (t = 16; t < 64; t++) {
      int x = W[t - 15];
      int y = W[t - 2];
      int s0 = (__lsr(x, 7) | (x << 25)) ^ (__lsr(x, 18) | (x << 14)) ^ __lsr(x, 3);
      int s1 = (__lsr(y, 17) | (y << 15)) ^ (__lsr(y, 19) | (y << 13)) ^ __lsr(y, 10);
      W[t] = W[t - 16] + s0 + W[t - 7] + s1;
    }
    int a = H[0]; int b = H[1]; int c = H[2]; int d = H[3];
    int e = H[4]; int f = H[5]; int g = H[6]; int h = H[7];
    for (t = 0; t < 64; t++) {
      int s1 = (__lsr(e, 6) | (e << 26)) ^ (__lsr(e, 11) | (e << 21)) ^ (__lsr(e, 25) | (e << 7));
      int ch = (e & f) ^ (~e & g);
      int t1 = h + s1 + ch + K[t] + W[t];
      int s0 = (__lsr(a, 2) | (a << 30)) ^ (__lsr(a, 13) | (a << 19)) ^ (__lsr(a, 22) | (a << 10));
      int maj = (a & b) ^ (a & c) ^ (b & c);
      int t2 = s0 + maj;
      h = g; g = f; f = e; e = d + t1; d = c; c = b; b = a; a = t1 + t2;
    }
    H[0] += a; H[1] += b; H[2] += c; H[3] += d;
    H[4] += e; H[5] += f; H[6] += g; H[7] += h;
  }
  return H[0] ^ H[1] ^ H[2] ^ H[3] ^ H[4] ^ H[5] ^ H[6] ^ H[7];
}
