(** Cycle-level simulator of the customisable EPIC processor — the
    ReaCT-ILP role in the paper's Trimaran flow ("the number of cycles
    taken by our EPIC design is measured by ... a cycle-level simulator",
    Section 5.2).

    Modelled microarchitecture (paper Sections 3.2–3.3):
    - pipeline of {!Epic_config.t.pipeline_stages} stages (the paper's
      prototype: 2 — Fetch/Decode/Issue then Execute/Write-back); a taken
      branch costs [stages - 1] refill bubbles;
    - in-order issue of one bundle (up to [issue_width] operations) per
      cycle; the whole bundle stalls until every source operand is ready
      (scoreboard interlock, so a mis-scheduled program is slow, never
      wrong);
    - register-file controller: at most [rf_port_budget] GPR reads+writes
      per processor cycle (dual-port block RAM clocked at 4x); exceeding
      the budget stalls for the extra controller rounds; with forwarding
      enabled, a value consumed exactly the cycle it becomes available
      bypasses the register file and costs no port;
    - predication: a false guard nullifies the operation (counted in
      [squashed]);
    - branch-target registers written by PBRR and read by branches; code
      addresses are bundle indices;
    - r0 and p0 hardwired; registers hold canonical [width]-bit values;
      memory is the shared big-endian byte memory of {!Epic_mir.Memmap}.

    {b Immutability contract (relied on by {!Epic_exec}).}  [run] treats
    the configuration and the assembled [image] as read-only: it aliases
    [image.im_insts] but never writes to it — the only code path that
    mutates the instruction stream is the caller's own [tamper] hook
    acting on the {!machine} view it is handed.  All simulation state
    (register files, scoreboard, statistics) is allocated per call, and
    the module has no global mutable state.  Consequently one config and
    one image may be shared, without copying or locking, by concurrent
    [run] calls on different domains — this is what the parallel campaign
    engine does — provided each call gets its own [mem] buffer ([mem] is
    caller-owned and IS mutated by stores) and any [tamper]/[sink]/[trace]
    callbacks touch only domain-local state. *)

exception Sim_error of Epic_diag.t
(** Misuse of the simulator API (e.g. an image assembled for a different
    issue width), as a structured diagnostic (code [sim/...]).
    Architectural faults do NOT raise: they end the run gracefully with a
    {!trap} record in the {!result} — see {!run_exn} for the old raising
    behaviour. *)

(** {1 Architectural trap model}

    A fault detected while executing terminates the run gracefully: the
    result carries partial statistics, the final architectural state, and
    a machine-readable trap record.  The four causes mirror what the
    hardware's decode/execute stages can detect. *)

type trap_cause =
  | T_bad_pc      (** PC left the code image. *)
  | T_mem_bounds  (** Load/store outside data memory. *)
  | T_illegal_op  (** Unimplemented/illegal operation or operand (decode-stage
                      validation: unknown opcode patterns, register indices
                      beyond the configured files, malformed branch operands). *)
  | T_fuel        (** Watchdog: the cycle budget ([fuel]) ran out. *)

type trap = {
  tr_cause : trap_cause;
  tr_pc : int;         (** Bundle index at the faulting cycle. *)
  tr_cycle : int;      (** Architectural cycle of the fault. *)
  tr_message : string; (** Human-readable detail. *)
}

val string_of_trap_cause : trap_cause -> string
(** ["bad-pc"], ["mem-bounds"], ["illegal-op"], ["fuel"]. *)

val pp_trap : Format.formatter -> trap -> unit

type stats = {
  mutable cycles : int;
  mutable bundles : int;        (** Bundles issued (excludes stall cycles). *)
  mutable ops : int;            (** Non-NOP operations issued (incl. squashed). *)
  mutable nops : int;           (** NOP slots fetched (assembler padding). *)
  mutable squashed : int;       (** Operations nullified by a false guard. *)
  mutable operand_stalls : int; (** Cycles lost to scoreboard interlocks. *)
  mutable port_stalls : int;    (** Cycles lost to the register-port budget. *)
  mutable branch_bubbles : int; (** Pipeline refill cycles after taken branches. *)
  mutable mem_reads : int;
  mutable mem_writes : int;
  mutable alu_ops : int;
  mutable lsu_ops : int;
  mutable cmpu_ops : int;
  mutable bru_ops : int;
}

type result = {
  ret : int;          (** r3 at HALT (the calling convention's return value);
                          for a trapped run, r3 at the fault. *)
  stats : stats;      (** Complete for clean runs, partial up to the trap. *)
  mem : Bytes.t;      (** Final data memory (same buffer as passed in). *)
  gprs : int array;   (** Final architectural register file. *)
  trap : trap option; (** [None] for a clean HALT. *)
}

(** Mutable view of the whole architectural state, handed to {!run}'s
    [tamper] hook once per cycle (after the fuel and PC checks, before
    fetch) — the fault-injection surface of {!Epic_fault}.  The arrays
    and buffer are the simulator's own: mutations take effect
    immediately.  [m_insts] is the image's instruction stream, indexed
    [bundle * issue_width + slot]. *)
type machine = {
  m_gprs : int array;
  m_preds : bool array;
  m_btrs : int array;
  m_mem : Bytes.t;
  m_insts : Epic_isa.inst array;
  m_issue_width : int;
  m_pc : int;     (** Bundle about to be fetched. *)
  m_cycle : int;  (** Current architectural cycle. *)
}

val ilp : stats -> float
(** Issued operations per cycle. *)

(** {1 Structured event stream}

    The profiling hook ({!Epic_profile} is the main consumer).  When
    {!run} is given a [sink], it emits one {!event} per issued bundle and
    one per stall, in simulated-time order.  The stream is conservative:
    every simulated cycle is covered by exactly one event (an issue costs
    one cycle; a stall event carries its cycle count), so summing over
    events recovers [stats.cycles] exactly.  Without a sink the simulator
    takes the exact same path as before — cycle counts are unchanged. *)

type stall_cause =
  | S_operand  (** Scoreboard interlock: a source operand not yet ready. *)
  | S_port     (** Register-file port budget exceeded. *)
  | S_branch   (** Pipeline refill bubbles after a taken branch. *)

type slot =
  | Sl_empty                   (** NOP padding slot. *)
  | Sl_op of Epic_isa.opcode   (** Issued and executed. *)
  | Sl_squashed of Epic_isa.opcode  (** Nullified by a false guard. *)
  | Sl_shadowed of Epic_isa.opcode
      (** Skipped: an earlier slot of the bundle took a branch. *)

type event =
  | Ev_stall of { at : int; pc : int; cause : stall_cause; cycles : int }
  | Ev_issue of {
      at : int;            (** Cycle the bundle issued. *)
      pc : int;            (** Bundle index. *)
      slots : slot array;  (** One entry per issue slot. *)
      next_pc : int;       (** Bundle executing next. *)
      taken : bool;        (** A branch (or HALT) redirected the flow. *)
    }

val string_of_stall_cause : stall_cause -> string

(** {1 Predecode: the first tier of the two-tier engine}

    {!run} decodes and legality-checks each image {e once} per
    (image x config) into flat resolved op records — int-coded dispatch
    classes, flattened read/write register sets, resolved latencies —
    and the cycle loops consume only those.  Callers that re-simulate
    the same image many times (fault campaigns, the serving daemon, DSE
    sweeps) should build the predecode once with {!Predecode.of_image}
    (or obtain it from {!Epic_exec.Cache} keyed by
    [Epic_config.fingerprint] x {!Predecode.image_digest}) and pass it
    as [run ~pre].

    Legality checks move to predecode time, but the trap taxonomy for
    corrupted images is preserved exactly: failures are {e recorded},
    not raised, and the simulator raises them at the original program
    points (fetch / issue / execute), so a bundle that is never reached
    never traps.

    A predecode is immutable and holds no mutable simulator state: like
    the image itself it may be shared across concurrent domains.
    [run ~pre] rejects (with [Sim_error], code [sim/predecode-mismatch])
    a predecode built for a different instruction stream, issue width or
    configuration.  Runs with a [tamper] hook re-decode any bundle whose
    fetched slots are no longer the records the predecode was built from
    (physical per-slot comparison), so fault injection still sees raw
    instruction words. *)

module Predecode : sig
  type t
  (** A fully resolved (image x config) decode. *)

  val of_image : Epic_config.t -> Epic_asm.Aunit.image -> t
  (** Decode and legality-check every bundle of [image].  Never raises
      on illegal content — failures are deferred to the run that reaches
      them. *)

  val image_digest : Epic_asm.Aunit.image -> string
  (** Content digest of the instruction stream, for cache keying by
      (config fingerprint x image). *)

  val n_bundles : t -> int

  val issue_width : t -> int

  val fetch_trap : t -> int -> string option
  (** [fetch_trap t pc] is the decode-stage failure the simulator will
      raise (as [T_illegal_op]) when bundle [pc] is fetched, if any. *)

  val bundle_reads : t -> int -> int list * int list * int list
  (** Flattened (GPR, predicate, BTR) read indices of a bundle,
      multiplicity preserved — equals the concatenation of
      [Epic_isa.reads] over the bundle's slots (introspection for
      tests). *)

  val gpr_write_ports : t -> int -> int
  (** GPR write-port count of a bundle — equals the GPR entries of
      [Epic_isa.writes] over its slots. *)

  val slot_latency : t -> bundle:int -> slot:int -> int
  (** Resolved result latency, i.e. [Epic_config.latency]. *)

  val slot_kind : t -> bundle:int -> slot:int -> string
  (** Dispatch class: ["nop"], ["alu"], ["load"], ["store"], ["cmpp"],
      ["pbrr"], ["bru"], ["brc"], ["brl"] or ["halt"]. *)
end

val default_fuel : int
(** The cycle budget {!run} applies when [fuel] is absent (5*10^8).
    Exposed so callers that {e tighten} the budget — the serving
    daemon's fuel-based deadlines — can tell whether a cap they computed
    is below what the simulator would have used anyway. *)

val run :
  ?fuel:int ->
  ?trace:Format.formatter ->
  ?sink:(event -> unit) ->
  ?tamper:(machine -> unit) ->
  ?pre:Predecode.t ->
  Epic_config.t ->
  image:Epic_asm.Aunit.image ->
  mem:Bytes.t ->
  ?entry:int ->
  unit ->
  result
(** Execute an assembled image until HALT or a trap.  [fuel] bounds
    simulated cycles (default 5*10^8; exhaustion is a [T_fuel] trap, not
    an exception); [trace] prints one line per issued bundle (cycle, PC,
    live operations, squashed ones bracketed); [sink] receives the
    structured event stream (see above; no overhead when absent);
    [tamper] is called once per cycle with the mutable {!machine} view
    (fault injection; no overhead when absent); [pre] is a predecode of
    exactly this image under exactly this configuration (built fresh
    when absent — pass it to amortise decode across repeated runs);
    [entry] is the starting bundle index (default 0, where the toolchain
    places [_start]).  Without [trace]/[sink]/[tamper] the cycle loop
    allocates nothing per cycle.  Architectural faults are returned in
    [result.trap]; only API misuse raises {!Sim_error}. *)

val run_exn :
  ?fuel:int ->
  ?trace:Format.formatter ->
  ?sink:(event -> unit) ->
  ?tamper:(machine -> unit) ->
  ?pre:Predecode.t ->
  Epic_config.t ->
  image:Epic_asm.Aunit.image ->
  mem:Bytes.t ->
  ?entry:int ->
  unit ->
  result
(** Compatibility wrapper over {!run}: a trapped run raises {!Sim_error}
    with the rendered trap instead of returning it. *)

val pp_stats : Format.formatter -> stats -> unit
