(* Deterministic fault-injection campaigns over the cycle-level simulator.

   The fault model is the classic single-event-upset study: one transient
   bit flip per run, in an architectural structure (GPR, predicate, BTR,
   data memory, or a fetched instruction word), at a chosen cycle.  Each
   injected run is classified against a clean golden run:

   - masked:  the program still halts with the golden return value and a
              bit-identical final data memory;
   - SDC:     silent data corruption — halts cleanly but the return value
              or final memory differs;
   - trap:    the architectural trap model caught the fault (bad PC,
              memory bounds, illegal operation);
   - timeout: the watchdog fuel (a multiple of the golden cycle count)
              ran out — the fault sent the program into a loop.

   Everything is driven by the repository's xorshift32 PRNG with an
   explicit seed, so a campaign re-run with the same seed reproduces the
   identical fault list and the identical report. *)

module Isa = Epic_isa
module Diag = Epic_diag
module Config = Epic_config
module Enc = Epic_encoding
module A = Epic_asm.Aunit
module Sim = Epic_sim
module Prng = Epic_workloads.Prng
module Json = Epic_profile.Json

type target =
  | F_gpr   (* general-purpose register bit *)
  | F_pred  (* predicate register (1-bit: flip = negate) *)
  | F_btr   (* branch-target register bit *)
  | F_mem   (* data-memory byte bit *)
  | F_inst  (* fetched instruction word bit (transient, one fetch) *)

let all_targets = [ F_gpr; F_pred; F_btr; F_mem; F_inst ]

let string_of_target = function
  | F_gpr -> "gpr"
  | F_pred -> "pred"
  | F_btr -> "btr"
  | F_mem -> "mem"
  | F_inst -> "inst"

let target_of_string = function
  | "gpr" -> Some F_gpr
  | "pred" -> Some F_pred
  | "btr" -> Some F_btr
  | "mem" -> Some F_mem
  | "inst" -> Some F_inst
  | _ -> None

type fault = {
  f_target : target;
  f_cycle : int;  (* first cycle at (or after) which the flip fires *)
  f_index : int;  (* register index / byte address / issue slot *)
  f_bit : int;    (* bit position within the structure *)
}

type outcome =
  | O_masked
  | O_sdc
  | O_trap of Sim.trap_cause
  | O_timeout

let string_of_outcome = function
  | O_masked -> "masked"
  | O_sdc -> "sdc"
  | O_trap c -> "trap:" ^ Sim.string_of_trap_cause c
  | O_timeout -> "timeout"

let pp_fault ppf f =
  Format.fprintf ppf "%s[%d] bit %d @ cycle %d"
    (string_of_target f.f_target) f.f_index f.f_bit f.f_cycle

(* ------------------------------------------------------------------ *)
(* Single injected run.                                                *)

let copy_image (image : A.image) =
  { image with A.im_insts = Array.copy image.A.im_insts }

let classify ~golden_ret ~golden_mem (r : Sim.result) =
  match r.Sim.trap with
  | Some t when t.Sim.tr_cause = Sim.T_fuel -> O_timeout
  | Some t -> O_trap t.Sim.tr_cause
  | None ->
    if r.Sim.ret = golden_ret && Bytes.equal r.Sim.mem golden_mem then O_masked
    else O_sdc

(* Run the program once with [fault] injected and classify the outcome
   against the golden run.  The image and memory are copied, so the
   caller's structures are never corrupted.  An instruction flip is
   transient: the corrupted word lives for exactly one fetch and is
   restored on the next cycle (an SEU on the fetch path, not a stuck-at
   fault in instruction memory). *)
let inject ?pre (cfg : Config.t) ~(image : A.image) ~mem ~entry ~fuel
    ~golden_ret ~golden_mem (fault : fault) =
  let image = copy_image image in
  let mem = Bytes.copy mem in
  let table = lazy (Enc.make_table cfg) in
  let fired = ref false in
  let transient = ref None in
  let tamper (m : Sim.machine) =
    (match !transient with
     | Some (pos, orig) ->
       m.Sim.m_insts.(pos) <- orig;
       transient := None
     | None -> ());
    if (not !fired) && m.Sim.m_cycle >= fault.f_cycle then begin
      fired := true;
      match fault.f_target with
      | F_gpr ->
        m.Sim.m_gprs.(fault.f_index) <-
          m.Sim.m_gprs.(fault.f_index) lxor (1 lsl fault.f_bit)
      | F_pred ->
        m.Sim.m_preds.(fault.f_index) <- not m.Sim.m_preds.(fault.f_index)
      | F_btr ->
        m.Sim.m_btrs.(fault.f_index) <-
          m.Sim.m_btrs.(fault.f_index) lxor (1 lsl fault.f_bit)
      | F_mem ->
        let b = Char.code (Bytes.get m.Sim.m_mem fault.f_index) in
        Bytes.set m.Sim.m_mem fault.f_index
          (Char.chr (b lxor (1 lsl (fault.f_bit land 7))))
      | F_inst ->
        (* Corrupt one word of the bundle about to be fetched: encode the
           clean instruction, flip the bit, decode the junk back (decode
           is total, so any pattern yields an instruction — possibly the
           ILLEGAL marker the simulator traps on). *)
        let t = Lazy.force table in
        let pos =
          (m.Sim.m_pc * m.Sim.m_issue_width)
          + (fault.f_index mod m.Sim.m_issue_width)
        in
        let word = Enc.encode t cfg m.Sim.m_insts.(pos) in
        let word = Int64.logxor word (Int64.shift_left 1L fault.f_bit) in
        transient := Some (pos, m.Sim.m_insts.(pos));
        m.Sim.m_insts.(pos) <- Enc.decode t cfg word
    end
  in
  (* [copy_image] is shallow, so the slot records are physically those
     the predecode was built from; the simulator's tamper-mode re-decode
     contract covers the transient F_inst flips. *)
  let r = Sim.run ~fuel ~tamper ?pre cfg ~image ~mem ~entry () in
  classify ~golden_ret ~golden_mem r

(* ------------------------------------------------------------------ *)
(* Campaign: per-structure AVF table.                                  *)

type row = {
  r_target : target;
  r_masked : int;
  r_sdc : int;
  r_trap : int;
  r_timeout : int;
}

let row_runs r = r.r_masked + r.r_sdc + r.r_trap + r.r_timeout

(* Architectural vulnerability: fraction of injected flips that visibly
   derailed the program (anything but masked). *)
let row_avf r =
  let n = row_runs r in
  if n = 0 then 0.0 else float_of_int (n - r.r_masked) /. float_of_int n

type report = {
  rp_seed : int;
  rp_runs : int;
  rp_fuel : int;
  rp_golden_ret : int;
  rp_golden_cycles : int;
  rp_rows : row list;
  rp_faults : (fault * outcome) list;
}

let golden ?fuel ?pre (cfg : Config.t) ~image ~mem ~entry =
  let g =
    Sim.run ?fuel ?pre cfg ~image:(copy_image image) ~mem:(Bytes.copy mem)
      ~entry ()
  in
  (match g.Sim.trap with
   | Some t ->
     Diag.raisef ~code:"fault/golden-trap"
       "golden (fault-free) run trapped: %s"
       (Format.asprintf "%a" Sim.pp_trap t)
   | None -> ());
  g

let draw_fault rng (cfg : Config.t) ~issue_width ~mem_len ~golden_cycles target =
  let draw bound = if bound <= 1 then 0 else Prng.next rng mod bound in
  let cycle = draw golden_cycles in
  let index, bit =
    match target with
    | F_gpr ->
      (* r0 is hardwired; flipping it would violate the architecture, not
         model a storage fault. *)
      (1 + draw (cfg.Config.n_gprs - 1), draw cfg.Config.width)
    | F_pred -> (1 + draw (cfg.Config.n_preds - 1), 0)
    | F_btr ->
      (* BTRs hold bundle indices: flip within the branch-literal range so
         the corrupted target is representative of reachable code sizes. *)
      (draw cfg.Config.n_btrs, draw (cfg.Config.src_bits - 1))
    | F_mem -> (draw mem_len, draw 8)
    | F_inst -> (draw issue_width, draw (Config.inst_bits cfg))
  in
  { f_target = target; f_cycle = cycle; f_index = index; f_bit = bit }

let campaign ?(seed = 1) ?(runs = 32) ?(targets = all_targets)
    ?(fuel_factor = 4) ?(jobs = 1) ?pre (cfg : Config.t) ~(image : A.image)
    ~(mem : Bytes.t) ~entry () =
  if seed land 0xFFFFFFFF = 0 then
    Diag.raisef ~code:"fault/seed" "campaign seed must be non-zero";
  if runs < 1 then Diag.raisef ~code:"fault/runs" "runs must be >= 1";
  if fuel_factor < 1 then
    Diag.raisef ~code:"fault/fuel-factor" "fuel_factor must be >= 1";
  if Bytes.length mem = 0 then
    Diag.raisef ~code:"fault/mem" "data memory is empty";
  (* Decode the image once; the golden run and every injected run (often
     thousands, across domains) share the immutable predecode. *)
  let pre =
    match pre with Some p -> p | None -> Sim.Predecode.of_image cfg image
  in
  let g = golden ~pre cfg ~image ~mem ~entry in
  let golden_cycles = g.Sim.stats.Sim.cycles in
  let golden_ret = g.Sim.ret in
  let golden_mem = g.Sim.mem in
  (* Watchdog: a faulting run that has not halted after [fuel_factor]
     times the golden cycle count is classified as a timeout.  The slack
     constant keeps trivially short programs from racing the watchdog. *)
  let fuel = (fuel_factor * golden_cycles) + 64 in
  let rng = Prng.create ~seed () in
  (* Draw every fault site up front, in exactly the order the sequential
     loop drew them (the PRNG stream never depends on outcomes), then fan
     the independent injected runs out across domains.  Each run copies
     the image and memory ([inject]); the golden state is shared
     read-only.  Outcomes are keyed by draw index, so the report is
     bit-identical whatever [jobs] is. *)
  let n_targets = List.length targets in
  let faults =
    Array.make (n_targets * runs)
      { f_target = F_gpr; f_cycle = 0; f_index = 0; f_bit = 0 }
  in
  List.iteri
    (fun t target ->
      for k = 0 to runs - 1 do
        faults.((t * runs) + k) <-
          draw_fault rng cfg ~issue_width:image.A.im_issue_width
            ~mem_len:(Bytes.length mem) ~golden_cycles target
      done)
    targets;
  let outcomes =
    Epic_exec.Pool.run ~jobs (Array.length faults) (fun i ->
        inject ~pre cfg ~image ~mem ~entry ~fuel ~golden_ret ~golden_mem
          faults.(i))
  in
  let rows =
    List.mapi
      (fun t target ->
        let masked = ref 0 and sdc = ref 0 and trap = ref 0 and timeout = ref 0 in
        for k = 0 to runs - 1 do
          match outcomes.((t * runs) + k) with
          | O_masked -> incr masked
          | O_sdc -> incr sdc
          | O_trap _ -> incr trap
          | O_timeout -> incr timeout
        done;
        { r_target = target; r_masked = !masked; r_sdc = !sdc;
          r_trap = !trap; r_timeout = !timeout })
      targets
  in
  { rp_seed = seed; rp_runs = runs; rp_fuel = fuel; rp_golden_ret = golden_ret;
    rp_golden_cycles = golden_cycles; rp_rows = rows;
    rp_faults = List.init (Array.length faults) (fun i -> (faults.(i), outcomes.(i))) }

let total_runs rp = List.fold_left (fun a r -> a + row_runs r) 0 rp.rp_rows

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let pp_report ppf rp =
  Format.fprintf ppf
    "@[<v>fault-injection campaign: seed=%d runs/target=%d fuel=%d@,\
     golden run: ret=%d cycles=%d@,@,\
     %-8s %7s %7s %7s %8s %7s@,"
    rp.rp_seed rp.rp_runs rp.rp_fuel rp.rp_golden_ret rp.rp_golden_cycles
    "target" "masked" "sdc" "trap" "timeout" "AVF";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-8s %7d %7d %7d %8d %6.1f%%@,"
        (string_of_target r.r_target) r.r_masked r.r_sdc r.r_trap r.r_timeout
        (100.0 *. row_avf r))
    rp.rp_rows;
  Format.fprintf ppf "@]"

let json_of_fault (f, o) =
  Json.Obj
    [ ("target", Json.Str (string_of_target f.f_target));
      ("cycle", Json.Int f.f_cycle);
      ("index", Json.Int f.f_index);
      ("bit", Json.Int f.f_bit);
      ("outcome", Json.Str (string_of_outcome o)) ]

let report_to_json ?(faults = false) rp =
  let rows =
    List.map
      (fun r ->
        Json.Obj
          [ ("target", Json.Str (string_of_target r.r_target));
            ("masked", Json.Int r.r_masked);
            ("sdc", Json.Int r.r_sdc);
            ("trap", Json.Int r.r_trap);
            ("timeout", Json.Int r.r_timeout);
            ("avf", Json.Float (row_avf r)) ])
      rp.rp_rows
  in
  Json.Obj
    ([ ("seed", Json.Int rp.rp_seed);
       ("runs_per_target", Json.Int rp.rp_runs);
       ("fuel", Json.Int rp.rp_fuel);
       ("golden_ret", Json.Int rp.rp_golden_ret);
       ("golden_cycles", Json.Int rp.rp_golden_cycles);
       ("rows", Json.List rows) ]
     @ if faults then [ ("faults", Json.List (List.map json_of_fault rp.rp_faults)) ]
       else [])
