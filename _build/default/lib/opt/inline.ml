(* Function inlining (IMPACT-style machine-independent optimisation).

   Policy: in each round, inline call sites whose callee is a LEAF
   function (no calls left in its body — rounds make call chains collapse
   bottom-up) that is either small or has a single call site, is not
   recursive (leaf implies that) and is not main.  Afterwards, functions
   no longer reachable from main are dropped.

   Inlining matters doubly on an EPIC target: besides removing call
   overhead, it widens basic-block scope for the list scheduler and
   removes the callee-save memory traffic of the calling convention. *)

module Ir = Epic_mir.Ir

let default_small_threshold = 48
let max_rounds = 6
let caller_growth_cap = 20_000

let body_size (f : Ir.func) =
  List.fold_left (fun acc (b : Ir.block) -> acc + 1 + List.length b.Ir.b_insts) 0 f.Ir.f_blocks

let is_leaf (f : Ir.func) =
  List.for_all
    (fun (b : Ir.block) ->
      List.for_all
        (fun (i : Ir.inst) -> match i.Ir.kind with Ir.Call _ -> false | _ -> true)
        b.Ir.b_insts)
    f.Ir.f_blocks

let call_sites (p : Ir.program) name =
  List.fold_left
    (fun acc (f : Ir.func) ->
      List.fold_left
        (fun acc (b : Ir.block) ->
          List.fold_left
            (fun acc (i : Ir.inst) ->
              match i.Ir.kind with
              | Ir.Call (_, g, _) when g = name -> acc + 1
              | _ -> acc)
            acc b.Ir.b_insts)
        acc f.Ir.f_blocks)
    0 p.Ir.p_funcs

(* Splice [callee] at the call site [idx] in [block] of [caller]. *)
let inline_at (caller : Ir.func) (block : Ir.block) idx (callee : Ir.func) dst args =
  let voff = caller.Ir.f_nvregs in
  let qoff = caller.Ir.f_npregs in
  let frame_off = caller.Ir.f_frame_bytes in
  caller.Ir.f_nvregs <- caller.Ir.f_nvregs + callee.Ir.f_nvregs;
  caller.Ir.f_npregs <- caller.Ir.f_npregs + callee.Ir.f_npregs;
  caller.Ir.f_frame_bytes <- caller.Ir.f_frame_bytes + callee.Ir.f_frame_bytes;
  let max_label =
    List.fold_left (fun acc (b : Ir.block) -> max acc b.Ir.b_id) 0 caller.Ir.f_blocks
  in
  let loff = max_label + 1 in
  let map_label l = l + loff in
  let tail_label = loff + List.fold_left (fun acc (b : Ir.block) -> max acc b.Ir.b_id) 0 callee.Ir.f_blocks + 1 in
  let map_op = function Ir.Reg r -> Ir.Reg (r + voff) | Ir.Imm _ as o -> o in
  let map_guard = function
    | None -> None
    | Some g -> Some { Ir.g_reg = g.Ir.g_reg + qoff; g_pos = g.Ir.g_pos }
  in
  let map_kind = function
    | Ir.Bin (op, d, a, b) -> Ir.Bin (op, d + voff, map_op a, map_op b)
    | Ir.Mov (d, a) -> Ir.Mov (d + voff, map_op a)
    | Ir.Cmp (r, d, a, b) -> Ir.Cmp (r, d + voff, map_op a, map_op b)
    | Ir.Setp (r, q, a, b) -> Ir.Setp (r, q + qoff, map_op a, map_op b)
    | Ir.Custom (n, d, a, b) -> Ir.Custom (n, d + voff, map_op a, map_op b)
    | Ir.Load (sz, e, d, base, off) -> Ir.Load (sz, e, d + voff, map_op base, map_op off)
    | Ir.Store (sz, a, v) -> Ir.Store (sz, map_op a, map_op v)
    | Ir.Call (d, g, cargs) ->
      Ir.Call (Option.map (fun d -> d + voff) d, g, List.map map_op cargs)
    | Ir.AddrOf (d, g) -> Ir.AddrOf (d + voff, g)
    | Ir.FrameAddr (d, off) -> Ir.FrameAddr (d + voff, off + frame_off)
    | Ir.LoadFrame (d, off) -> Ir.LoadFrame (d + voff, off + frame_off)
    | Ir.StoreFrame (off, r) -> Ir.StoreFrame (off + frame_off, r + voff)
  in
  let map_inst (i : Ir.inst) = { Ir.kind = map_kind i.Ir.kind; guard = map_guard i.Ir.guard } in
  let map_term = function
    | Ir.Ret o ->
      (* Return becomes: bind the destination, jump to the continuation. *)
      let binding =
        match dst with
        | Some d ->
          let v = match o with Some o -> map_op o | None -> Ir.Imm 0 in
          [ Ir.no_guard (Ir.Mov (d, v)) ]
        | None -> []
      in
      (binding, Ir.Jmp tail_label)
    | Ir.Jmp l -> ([], Ir.Jmp (map_label l))
    | Ir.Br (r, a, b, lt, lf) -> ([], Ir.Br (r, map_op a, map_op b, map_label lt, map_label lf))
  in
  let new_blocks =
    List.map
      (fun (b : Ir.block) ->
        let extra, term = map_term b.Ir.b_term in
        { Ir.b_id = map_label b.Ir.b_id;
          b_insts = List.map map_inst b.Ir.b_insts @ extra;
          b_term = term })
      callee.Ir.f_blocks
  in
  (* Split the call block. *)
  let before = List.filteri (fun k _ -> k < idx) block.Ir.b_insts in
  let after = List.filteri (fun k _ -> k > idx) block.Ir.b_insts in
  let param_moves =
    List.map2
      (fun prm arg -> Ir.no_guard (Ir.Mov (prm + voff, arg)))
      callee.Ir.f_params args
  in
  let tail_block = { Ir.b_id = tail_label; b_insts = after; b_term = block.Ir.b_term } in
  let entry_label = map_label (Ir.entry_block callee).Ir.b_id in
  block.Ir.b_insts <- before @ param_moves;
  block.Ir.b_term <- Ir.Jmp entry_label;
  caller.Ir.f_blocks <- caller.Ir.f_blocks @ new_blocks @ [ tail_block ]

(* Inline every eligible call site in [caller]; returns true on change. *)
let inline_in_func (p : Ir.program) eligible (caller : Ir.func) =
  let changed = ref false in
  let rec scan_blocks () =
    let found =
      List.find_map
        (fun (b : Ir.block) ->
          let rec find k = function
            | [] -> None
            | ({ Ir.kind = Ir.Call (d, g, args); guard = None } : Ir.inst) :: _
              when eligible g && g <> caller.Ir.f_name ->
              Some (b, k, g, d, args)
            | _ :: rest -> find (k + 1) rest
          in
          find 0 b.Ir.b_insts)
        caller.Ir.f_blocks
    in
    match found with
    | Some (b, k, g, d, args) when body_size caller < caller_growth_cap ->
      (match Ir.find_func p g with
       | Some callee ->
         inline_at caller b k callee d args;
         changed := true;
         scan_blocks ()
       | None -> ())
    | Some _ | None -> ()
  in
  scan_blocks ();
  !changed

let reachable_funcs (p : Ir.program) =
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      match Ir.find_func p name with
      | Some f ->
        List.iter
          (fun (b : Ir.block) ->
            List.iter
              (fun (i : Ir.inst) ->
                match i.Ir.kind with Ir.Call (_, g, _) -> visit g | _ -> ())
              b.Ir.b_insts)
          f.Ir.f_blocks
      | None -> ()
    end
  in
  visit "main";
  seen

(* [single_site] additionally inlines any leaf with exactly one call
   site regardless of size; profitable when the target has registers to
   spare (the EPIC configurations), counter-productive on the 16-register
   baseline where it just creates spill traffic. *)
let run ?(small_threshold = default_small_threshold) ?(single_site = true)
    (p : Ir.program) =
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds do
    incr rounds;
    let eligible name =
      match Ir.find_func p name with
      | Some callee ->
        callee.Ir.f_name <> "main" && is_leaf callee
        && (body_size callee <= small_threshold
            || (single_site && call_sites p name = 1))
      | None -> false
    in
    continue_ :=
      List.fold_left
        (fun acc f -> inline_in_func p eligible f || acc)
        false p.Ir.p_funcs
  done;
  (* Drop functions that are no longer reachable from main. *)
  (match Ir.find_func p "main" with
   | Some _ ->
     let keep = reachable_funcs p in
     { p with Ir.p_funcs = List.filter (fun (f : Ir.func) -> Hashtbl.mem keep f.Ir.f_name) p.Ir.p_funcs }
   | None -> p)
