examples/quickstart.mli:
