(* Persistent on-disk artifact cache: key -> payload files under a
   versioned directory, published atomically via rename, verified by a
   payload checksum on every read.  See the .mli for the layout,
   versioning, integrity and concurrency story. *)

let format_version = 2

type stats = {
  st_hits : int;
  st_misses : int;
  st_evictions : int;
  st_quarantined : int;
  st_swept : int;
}

type t = {
  root : string;             (* user-supplied directory *)
  entry_dir : string;        (* root/v<version> *)
  quarantine_dir : string;   (* root/quarantine *)
  max_entries : int option;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable quarantined : int; (* corrupt entries moved aside *)
  mutable swept : int;       (* crashed-writer temporaries removed *)
  mutable tmp_seq : int;     (* per-process unique temp names *)
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error (_, _, _) -> ())
  | _ -> (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | exception Unix.Unix_error (_, _, _) -> ()

let is_entry name = name <> "" && name.[0] <> '.'

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Crashed-writer sweep: remove dot-prefixed temporaries from the entry
   directory.  Runs at open (including the open that performs a version
   bump) and on demand via {!sweep}. *)
let sweep_dir entry_dir =
  match Sys.readdir entry_dir with
  | exception Sys_error _ -> 0
  | names ->
    Array.fold_left
      (fun n name ->
        if not (is_entry name) && name <> "." && name <> ".." then
          match Unix.unlink (Filename.concat entry_dir name) with
          | () -> n + 1
          | exception Unix.Unix_error (_, _, _) -> n
        else n)
      0 names

let open_ ?(version = format_version) ?max_entries root =
  let entry_dir = Filename.concat root (Printf.sprintf "v%d" version) in
  let quarantine_dir = Filename.concat root "quarantine" in
  mkdir_p entry_dir;
  (* Invalidate other format versions wholesale.  A crash mid-removal
     leaves a partial generation; the next open simply resumes the
     removal, so partially-deleted generations cannot be read from
     (they are never the current entry_dir) and do not survive. *)
  Array.iter
    (fun name ->
      let path = Filename.concat root name in
      if String.length name > 1 && name.[0] = 'v'
         && name <> Printf.sprintf "v%d" version
         && Sys.is_directory path
      then rm_rf path)
    (Sys.readdir root);
  let swept = sweep_dir entry_dir in
  { root; entry_dir; quarantine_dir; max_entries; mutex = Mutex.create ();
    hits = 0; misses = 0; evictions = 0; quarantined = 0; swept;
    tmp_seq = 0 }

let dir t = t.root
let quarantine_dir t = t.quarantine_dir

let sweep t =
  let n = sweep_dir t.entry_dir in
  locked t (fun () -> t.swept <- t.swept + n);
  n

let path_of_key t key =
  Filename.concat t.entry_dir (Digest.to_hex (Digest.string key))

(* Keys may in principle contain anything; the stored key line is
   escaped so it is newline-free and comparable byte-for-byte. *)
let key_line key = String.escaped key

let checksum_line payload = "md5:" ^ Digest.to_hex (Digest.string payload)

(* What a read of an entry file can conclude.  [Foreign] (a key-line
   mismatch: digest collision or a foreign file squatting on the path)
   is a plain miss — recomputing overwrites it harmlessly.  [Corrupt]
   covers everything structurally broken: truncation before or inside
   the header, a malformed checksum line, or a checksum mismatch
   (torn write published by a non-atomic filesystem, bit rot, manual
   tampering).  Corrupt entries are quarantined, never served. *)
type verdict = Absent | Foreign | Corrupt of string | Valid of string

let read_entry path ~key =
  match open_in_bin path with
  | exception Sys_error _ -> Absent
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    (match input_line ic with
     | exception End_of_file -> Corrupt "empty entry file"
     | line when line <> key_line key -> Foreign
     | _ ->
       (match input_line ic with
        | exception End_of_file -> Corrupt "truncated before checksum line"
        | sum when String.length sum < 5 || String.sub sum 0 4 <> "md5:" ->
          Corrupt "malformed checksum line"
        | sum ->
          let pos = pos_in ic in
          let len = in_channel_length ic - pos in
          if len < 0 then Corrupt "negative payload length"
          else
            let payload = really_input_string ic len in
            if checksum_line payload = sum then Valid payload
            else Corrupt "payload checksum mismatch"))

let entry_names t =
  match Sys.readdir t.entry_dir with
  | names -> List.filter is_entry (Array.to_list names)
  | exception Sys_error _ -> []

let entries t = List.length (entry_names t)

let quarantined_entries t =
  match Sys.readdir t.quarantine_dir with
  | names -> List.length (List.filter is_entry (Array.to_list names))
  | exception Sys_error _ -> 0

(* Move a corrupt entry aside for post-mortem instead of serving or
   deleting it.  The destination name keeps the entry digest and gains a
   uniquifying suffix, so repeated corruption of one path never clobbers
   earlier evidence.  Falls back to deletion when rename fails (e.g. the
   quarantine directory is unwritable): a corrupt entry must never stay
   on its key's path. *)
let quarantine t path reason =
  mkdir_p t.quarantine_dir;
  let base = Filename.basename path in
  let seq = locked t (fun () -> t.tmp_seq <- t.tmp_seq + 1; t.tmp_seq) in
  let dest =
    Filename.concat t.quarantine_dir
      (Printf.sprintf "%s.%d-%d" base (Unix.getpid ()) seq)
  in
  (match Unix.rename path dest with
   | () -> ()
   | exception Unix.Unix_error (_, _, _) ->
     (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ()));
  locked t (fun () -> t.quarantined <- t.quarantined + 1);
  ignore reason

(* Oldest-mtime first; ties broken by name so eviction order is stable
   within one second. *)
let evict_over_cap t =
  match t.max_entries with
  | None -> ()
  | Some cap ->
    let stamped =
      List.filter_map
        (fun name ->
          let path = Filename.concat t.entry_dir name in
          match Unix.stat path with
          | st -> Some (st.Unix.st_mtime, name, path)
          | exception Unix.Unix_error (_, _, _) -> None)
        (entry_names t)
    in
    let excess = List.length stamped - cap in
    if excess > 0 then begin
      let doomed =
        List.sort compare stamped |> List.filteri (fun i _ -> i < excess)
      in
      let removed =
        List.fold_left
          (fun n (_, _, path) ->
            match Unix.unlink path with
            | () -> n + 1
            | exception Unix.Unix_error (_, _, _) -> n)
          0 doomed
      in
      locked t (fun () -> t.evictions <- t.evictions + removed)
    end

let add t ~key payload =
  let final = path_of_key t key in
  let tmp =
    locked t (fun () ->
        t.tmp_seq <- t.tmp_seq + 1;
        Filename.concat t.entry_dir
          (Printf.sprintf ".tmp-%d-%d" (Unix.getpid ()) t.tmp_seq))
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc (key_line key);
     output_char oc '\n';
     output_string oc (checksum_line payload);
     output_char oc '\n';
     output_string oc payload;
     close_out oc
   with e -> close_out_noerr oc; (try Unix.unlink tmp with _ -> ()); raise e);
  Unix.rename tmp final;
  evict_over_cap t

let find t ~key =
  let path = path_of_key t key in
  match read_entry path ~key with
  | Valid payload ->
    (* Eviction is oldest-mtime-first, so a hit must refresh the entry's
       mtime or the hottest entries are exactly the ones evicted under
       sustained traffic.  [utimes 0 0] means "now"; best-effort — a
       read-only cache directory still serves hits, it just cannot
       remember recency. *)
    (try Unix.utimes path 0.0 0.0 with Unix.Unix_error (_, _, _) -> ());
    locked t (fun () -> t.hits <- t.hits + 1);
    Some payload
  | Absent | Foreign ->
    locked t (fun () -> t.misses <- t.misses + 1);
    None
  | Corrupt reason ->
    quarantine t path reason;
    locked t (fun () -> t.misses <- t.misses + 1);
    None

let find_or_add t ~key f =
  match find t ~key with
  | Some payload -> (payload, true)
  | None ->
    let payload = f () in
    add t ~key payload;
    (payload, false)

(* Integrity scrub: re-read every entry against its own embedded key
   line and checksum.  The key line is self-describing (an escaped copy
   of the key), so verification needs no key list: unescape it and check
   the file sits on its key's digest path.  Anything broken is
   quarantined.  Counters other than [quarantined] are untouched. *)
let verify t =
  List.fold_left
    (fun bad name ->
      let path = Filename.concat t.entry_dir name in
      match open_in_bin path with
      | exception Sys_error _ -> bad
      | ic ->
        let header =
          Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
          match input_line ic with
          | exception End_of_file -> Error "empty entry file"
          | key_esc ->
            (match Scanf.unescaped key_esc with
             | exception Scanf.Scan_failure _ -> Error "unparseable key line"
             | key -> Ok key)
        in
        (match header with
         | Error reason -> quarantine t path reason; bad + 1
         | Ok key ->
           if Filename.basename (path_of_key t key) <> name then begin
             quarantine t path "entry not on its key's path"; bad + 1
           end
           else
             (match read_entry path ~key with
              | Valid _ -> bad
              | Absent -> bad (* raced with an eviction; nothing to do *)
              | Foreign ->
                (* Unreachable in practice: the key line just matched. *)
                quarantine t path "unstable key line"; bad + 1
              | Corrupt reason -> quarantine t path reason; bad + 1)))
    0 (entry_names t)

let stats t =
  locked t (fun () ->
      { st_hits = t.hits; st_misses = t.misses; st_evictions = t.evictions;
        st_quarantined = t.quarantined; st_swept = t.swept })

let reset_stats t =
  locked t (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      t.quarantined <- 0;
      t.swept <- 0)

let hit_rate s =
  let total = s.st_hits + s.st_misses in
  if total = 0 then 0. else float_of_int s.st_hits /. float_of_int total

let wipe t =
  List.iter
    (fun name ->
      try Unix.unlink (Filename.concat t.entry_dir name)
      with Unix.Unix_error (_, _, _) -> ())
    (entry_names t)

let stats_to_json t =
  let s = stats t in
  Epic.Profile.Json.Obj
    [ ("hits", Epic.Profile.Json.Int s.st_hits);
      ("misses", Epic.Profile.Json.Int s.st_misses);
      ("evictions", Epic.Profile.Json.Int s.st_evictions);
      ("quarantined", Epic.Profile.Json.Int s.st_quarantined);
      ("swept", Epic.Profile.Json.Int s.st_swept);
      ("entries", Epic.Profile.Json.Int (entries t)) ]
