(* Target-independent mid-level IR: three-address code over virtual
   registers, organised as a control-flow graph of basic blocks.  This is
   the hand-over point between the machine-independent part of the
   toolchain (front-end + optimiser, the IMPACT role) and the two backends
   (EPIC and the SA-110 baseline). *)

type vreg = int
type preg = int
type label = int

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor
  | Shl | Shr | Shra
  | Min | Max

type relop = Req | Rne | Rlt | Rle | Rgt | Rge | Rltu | Rleu | Rgtu | Rgeu

type operand = Reg of vreg | Imm of int

type mem_size = I8 | I16 | I32
type ext = Sx | Zx

(* Guard: execute the instruction only if predicate [g_reg] equals
   [g_pos].  Produced by if-conversion; absent elsewhere. *)
type guard = { g_reg : preg; g_pos : bool }

type inst_kind =
  | Bin of binop * vreg * operand * operand
  | Mov of vreg * operand
  | Cmp of relop * vreg * operand * operand      (* dst <- cond ? 1 : 0 *)
  | Setp of relop * preg * operand * operand     (* predicate define *)
  | Custom of string * vreg * operand * operand  (* custom ALU operation *)
  | Load of mem_size * ext * vreg * operand * operand  (* dst <- mem[base+off] *)
  | Store of mem_size * operand * operand        (* mem[addr] <- value *)
  | Call of vreg option * string * operand list
  | AddrOf of vreg * string                      (* dst <- &global *)
  | FrameAddr of vreg * int                      (* dst <- sp + byte offset *)
  | LoadFrame of vreg * int                      (* spill reload: dst <- mem32[sp+off] *)
  | StoreFrame of int * vreg                     (* spill store: mem32[sp+off] <- src *)

type inst = { kind : inst_kind; guard : guard option }

type terminator =
  | Ret of operand option
  | Jmp of label
  | Br of relop * operand * operand * label * label  (* fused cmp+branch *)

type block = {
  b_id : label;
  mutable b_insts : inst list;
  mutable b_term : terminator;
}

type func = {
  f_name : string;
  f_params : vreg list;
  mutable f_nvregs : int;
  mutable f_npregs : int;
  mutable f_blocks : block list;  (* entry block first; layout order *)
  mutable f_frame_bytes : int;    (* local array storage, FrameAddr offsets *)
}

type global = {
  g_name : string;
  g_bytes : int;          (* size in bytes, word-aligned allocation *)
  g_init : int array;     (* initial word values, may be shorter than size *)
}

type program = { p_globals : global list; p_funcs : func list }

let no_guard kind = { kind; guard = None }

let find_func p name = List.find_opt (fun f -> f.f_name = name) p.p_funcs

let find_block f id =
  match List.find_opt (fun b -> b.b_id = id) f.f_blocks with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Ir.find_block: %s has no block L%d" f.f_name id)

let entry_block f =
  match f.f_blocks with
  | b :: _ -> b
  | [] -> invalid_arg (Printf.sprintf "Ir.entry_block: %s has no blocks" f.f_name)

let successors = function
  | Ret _ -> []
  | Jmp l -> [ l ]
  | Br (_, _, _, lt, lf) -> [ lt; lf ]

(* ------------------------------------------------------------------ *)
(* Def/use sets.  Registers are tagged with their class so that liveness
   and allocation can treat GPR-class and predicate-class uniformly. *)

type rclass = Cgpr | Cpred

let op_uses acc = function Reg r -> (Cgpr, r) :: acc | Imm _ -> acc

let uses_of_kind = function
  | Bin (_, _, a, b) | Cmp (_, _, a, b) | Custom (_, _, a, b)
  | Load (_, _, _, a, b) | Store (_, a, b) | Setp (_, _, a, b) ->
    op_uses (op_uses [] a) b
  | Mov (_, a) -> op_uses [] a
  | Call (_, _, args) -> List.fold_left op_uses [] args
  | StoreFrame (_, r) -> [ (Cgpr, r) ]
  | AddrOf _ | FrameAddr _ | LoadFrame _ -> []

let defs_of_kind = function
  | Bin (_, d, _, _) | Mov (d, _) | Cmp (_, d, _, _) | Custom (_, d, _, _)
  | Load (_, _, d, _, _) | AddrOf (d, _) | FrameAddr (d, _) | LoadFrame (d, _) ->
    [ (Cgpr, d) ]
  | Setp (_, p, _, _) -> [ (Cpred, p) ]
  | Store _ | StoreFrame _ -> []
  | Call (Some d, _, _) -> [ (Cgpr, d) ]
  | Call (None, _, _) -> []

let uses_of_inst i =
  let base = uses_of_kind i.kind in
  match i.guard with None -> base | Some g -> (Cpred, g.g_reg) :: base

let defs_of_inst i = defs_of_kind i.kind

(* A guarded definition only partially defines its target: the old value
   survives when the guard is false, so for liveness the target must also
   be treated as used. *)
let partial_defs i = match i.guard with None -> [] | Some _ -> defs_of_kind i.kind

let uses_of_term = function
  | Ret (Some o) -> op_uses [] o
  | Ret None -> []
  | Jmp _ -> []
  | Br (_, a, b, _, _) -> op_uses (op_uses [] a) b

let has_side_effect = function
  | Store _ | Call _ | StoreFrame _ -> true
  | Bin _ | Mov _ | Cmp _ | Setp _ | Custom _ | Load _ | AddrOf _ | FrameAddr _
  | LoadFrame _ ->
    false

(* ------------------------------------------------------------------ *)
(* Fresh-name builder used by the front-end and by transformation passes. *)

module Builder = struct
  type t = {
    fn : func;
    mutable cur : block option;
    mutable next_label : int;
  }

  let create ~name ~params =
    let fn =
      { f_name = name; f_params = params; f_nvregs = List.length params;
        f_npregs = 1; f_blocks = []; f_frame_bytes = 0 }
    in
    { fn; cur = None; next_label = 0 }

  let fresh_vreg b =
    let r = b.fn.f_nvregs in
    b.fn.f_nvregs <- r + 1;
    r

  let fresh_preg b =
    let p = b.fn.f_npregs in
    b.fn.f_npregs <- p + 1;
    p

  let fresh_label b =
    let l = b.next_label in
    b.next_label <- l + 1;
    l

  (* Blocks are appended in creation order; the terminator is a
     placeholder until sealed. *)
  let start_block b l =
    (match b.cur with
     | Some _ -> invalid_arg "Builder.start_block: current block not sealed"
     | None -> ());
    let blk = { b_id = l; b_insts = []; b_term = Ret None } in
    b.fn.f_blocks <- b.fn.f_blocks @ [ blk ];
    b.cur <- Some blk

  let emit b kind =
    match b.cur with
    | Some blk -> blk.b_insts <- blk.b_insts @ [ no_guard kind ]
    | None -> invalid_arg "Builder.emit: no current block"

  let seal b term =
    match b.cur with
    | Some blk ->
      blk.b_term <- term;
      b.cur <- None
    | None -> invalid_arg "Builder.seal: no current block"

  let in_block b = b.cur <> None
  let func b = b.fn
end

(* ------------------------------------------------------------------ *)
(* Printing *)

let string_of_binop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Shr -> "shr" | Shra -> "shra"
  | Min -> "min" | Max -> "max"

let string_of_relop = function
  | Req -> "eq" | Rne -> "ne" | Rlt -> "lt" | Rle -> "le" | Rgt -> "gt"
  | Rge -> "ge" | Rltu -> "ltu" | Rleu -> "leu" | Rgtu -> "gtu" | Rgeu -> "geu"

let string_of_size = function I8 -> "8" | I16 -> "16" | I32 -> "32"

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "v%d" r
  | Imm v -> Format.fprintf ppf "%d" v

let pp_inst ppf i =
  let pp_guard ppf = function
    | None -> ()
    | Some g -> Format.fprintf ppf " if %sq%d" (if g.g_pos then "" else "!") g.g_reg
  in
  (match i.kind with
   | Bin (op, d, a, b) ->
     Format.fprintf ppf "v%d = %s %a, %a" d (string_of_binop op) pp_operand a pp_operand b
   | Mov (d, a) -> Format.fprintf ppf "v%d = %a" d pp_operand a
   | Cmp (r, d, a, b) ->
     Format.fprintf ppf "v%d = cmp.%s %a, %a" d (string_of_relop r) pp_operand a pp_operand b
   | Setp (r, p, a, b) ->
     Format.fprintf ppf "q%d = setp.%s %a, %a" p (string_of_relop r) pp_operand a pp_operand b
   | Custom (name, d, a, b) ->
     Format.fprintf ppf "v%d = custom.%s %a, %a" d name pp_operand a pp_operand b
   | Load (sz, e, d, base, off) ->
     Format.fprintf ppf "v%d = load.%s%s %a + %a" d
       (match e with Sx -> "s" | Zx -> "u") (string_of_size sz)
       pp_operand base pp_operand off
   | Store (sz, addr, v) ->
     Format.fprintf ppf "store.%s %a <- %a" (string_of_size sz) pp_operand addr pp_operand v
   | Call (d, f, args) ->
     (match d with
      | Some d -> Format.fprintf ppf "v%d = call %s(" d f
      | None -> Format.fprintf ppf "call %s(" f);
     List.iteri
       (fun k a -> Format.fprintf ppf "%s%a" (if k > 0 then ", " else "") pp_operand a)
       args;
     Format.fprintf ppf ")"
   | AddrOf (d, g) -> Format.fprintf ppf "v%d = &%s" d g
   | FrameAddr (d, off) -> Format.fprintf ppf "v%d = frame + %d" d off
   | LoadFrame (d, off) -> Format.fprintf ppf "v%d = frame32[%d]" d off
   | StoreFrame (off, r) -> Format.fprintf ppf "frame32[%d] = v%d" off r);
  pp_guard ppf i.guard

let pp_terminator ppf = function
  | Ret None -> Format.fprintf ppf "ret"
  | Ret (Some o) -> Format.fprintf ppf "ret %a" pp_operand o
  | Jmp l -> Format.fprintf ppf "jmp L%d" l
  | Br (r, a, b, lt, lf) ->
    Format.fprintf ppf "br.%s %a, %a -> L%d, L%d" (string_of_relop r) pp_operand a
      pp_operand b lt lf

let pp_block ppf b =
  Format.fprintf ppf "@[<v 2>L%d:" b.b_id;
  List.iter (fun i -> Format.fprintf ppf "@,%a" pp_inst i) b.b_insts;
  Format.fprintf ppf "@,%a@]" pp_terminator b.b_term

let pp_func ppf f =
  Format.fprintf ppf "@[<v>func %s(%s) [frame %d]" f.f_name
    (String.concat ", " (List.map (Printf.sprintf "v%d") f.f_params))
    f.f_frame_bytes;
  List.iter (fun b -> Format.fprintf ppf "@,%a" pp_block b) f.f_blocks;
  Format.fprintf ppf "@]"

let pp_program ppf p =
  List.iter
    (fun g -> Format.fprintf ppf "global %s[%d bytes]@." g.g_name g.g_bytes)
    p.p_globals;
  List.iter (fun f -> Format.fprintf ppf "%a@.@." pp_func f) p.p_funcs

(* ------------------------------------------------------------------ *)
(* Structural validation, used by tests and as a pass postcondition. *)

let validate_func f =
  let err fmt = Format.kasprintf (fun s -> Error (f.f_name ^ ": " ^ s)) fmt in
  let labels = List.map (fun b -> b.b_id) f.f_blocks in
  let distinct = List.sort_uniq compare labels in
  if List.length distinct <> List.length labels then err "duplicate block labels"
  else if f.f_blocks = [] then err "no blocks"
  else
    let check_reg acc (cls, r) =
      match acc with
      | Error _ -> acc
      | Ok () ->
        let limit = match cls with Cgpr -> f.f_nvregs | Cpred -> f.f_npregs in
        if r < 0 || r >= limit then err "register index %d out of range" r else Ok ()
    in
    List.fold_left
      (fun acc b ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          let targets = successors b.b_term in
          if List.exists (fun t -> not (List.mem t labels)) targets then
            err "block L%d branches to a missing label" b.b_id
          else
            List.fold_left
              (fun acc i ->
                let acc = List.fold_left check_reg acc (uses_of_inst i) in
                List.fold_left check_reg acc (defs_of_inst i))
              acc b.b_insts)
      (Ok ()) f.f_blocks

let validate_program p =
  let dup_glob =
    List.length (List.sort_uniq compare (List.map (fun g -> g.g_name) p.p_globals))
    <> List.length p.p_globals
  in
  if dup_glob then Error "duplicate global names"
  else
    List.fold_left
      (fun acc f -> match acc with Error _ -> acc | Ok () -> validate_func f)
      (Ok ()) p.p_funcs
