lib/cfront/parser.ml: Array Ast Lexer List Printf
