lib/mir/dominators.ml: Hashtbl Int Ir List Option Set
