test/test_mir.ml: Alcotest Bytes Epic Hashtbl List Str
