(* Quickstart: compile an EPIC-C program for the paper's default
   processor (4 ALUs, 64 GPRs, 4-issue, 41.8 MHz), inspect the scheduled
   assembly, run it on the cycle-level simulator, and compare with the
   StrongARM SA-110 baseline.

   Run with: dune exec examples/quickstart.exe *)

let source =
  "// Dot product of two vectors, with the vectors synthesised in place.\n\
   int a[64];\n\
   int b[64];\n\
   int main() {\n\
   \  int i;\n\
   \  for (i = 0; i < 64; i++) { a[i] = i * 3 + 1; b[i] = 64 - i; }\n\
   \  int dot = 0;\n\
   \  for (i = 0; i < 64; i++) dot += a[i] * b[i];\n\
   \  return dot;\n\
   }\n"

let () =
  (* 1. Pick a processor configuration — this is the paper's default. *)
  let cfg = Epic.Config.default in
  Format.printf "Configuration header:@.%a@.@." Epic.Config.pp cfg;

  (* 2. Compile: front-end -> optimiser -> schedule -> assemble. *)
  let artifacts = Epic.Toolchain.compile_epic cfg ~source () in
  let sched = artifacts.Epic.Toolchain.ea_sched in
  Printf.printf "Compiled %d operations into %d bundles across %d blocks.\n"
    sched.Epic.Sched.Sched.st_insts sched.Epic.Sched.Sched.st_bundles
    sched.Epic.Sched.Sched.st_blocks;

  (* A peek at the scheduled assembly (first 12 lines). *)
  let asm = Epic.Asm.Text.to_string artifacts.Epic.Toolchain.ea_unit in
  let lines = String.split_on_char '\n' asm in
  print_endline "First bundles of the program:";
  List.iteri (fun i l -> if i < 12 then print_endline ("  " ^ l)) lines;

  (* 3. Simulate. *)
  let r = Epic.Toolchain.run_epic artifacts in
  Printf.printf "\nEPIC result: %d\n" r.Epic.Sim.ret;
  Format.printf "%a@." Epic.Sim.pp_stats r.Epic.Sim.stats;

  (* 4. The hardcore baseline. *)
  let arm = Epic.Toolchain.compile_arm ~source () in
  let ra = Epic.Toolchain.run_arm arm in
  Printf.printf "\nSA-110 result: %d, cycles: %d\n" ra.Epic.Arm.Sim.ret
    ra.Epic.Arm.Sim.stats.Epic.Arm.Sim.cycles;

  (* 5. What would it cost on the FPGA? *)
  Format.printf "@.FPGA estimate:@.%a@." Epic.Area.pp (Epic.Area.estimate cfg)
