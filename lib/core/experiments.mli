(** Experiment harness regenerating every table and figure of the paper's
    evaluation (Section 5), plus the ablations listed in DESIGN.md's
    experiment index.  Every run verifies the benchmark checksum against
    the OCaml reference implementation before any cycle count escapes. *)

type sizes = {
  sha_bytes : int;
  aes_iters : int;
  dct_size : int * int;
  dijkstra_nodes : int;
}
(** Benchmark input sizes. *)

val default_sizes : sizes
(** Fast defaults preserving the paper's cycle-count shape
    (sha 768 B, aes 40, dct 32x32, dijkstra 24). *)

val paper_sizes : sizes
(** The paper's inputs: 256x256x3-byte image, 1000 AES iterations,
    256x256 DCT, a 100-node graph. *)

(** {1 E1 / Table 1} *)

type table1_row = {
  t1_name : string;
  t1_sa110 : int;              (** SA-110 baseline cycles. *)
  t1_epic : (int * int) list;  (** (ALU count, EPIC cycles). *)
}

val alu_sweep : int list
(** The paper's 1-4 ALU sweep. *)

val table1 :
  ?jobs:int -> ?cache:Toolchain.Compile_cache.t -> ?sizes:sizes ->
  ?alus:int list -> unit -> table1_row list
(** [jobs] (default 1) evaluates the (workload x design point) grid on
    that many domains ({!Epic_exec.Pool}); rows are identical for every
    [jobs] value.  [cache] (default a fresh one) memoises compiles across
    the grid — pass your own to also observe hit statistics. *)

(** {1 E2-E4 / Figures 3-5} *)

val sa110_mhz : float
(** 100 MHz (paper Section 5.2). *)

type fig_point = { fp_label : string; fp_seconds : float }

val fig_times : table1_row -> fig_point list
(** Execution times: SA-110 at 100 MHz, each EPIC design at the area
    model's clock. *)

type speedup = {
  sp_same_clock : float;  (** 4-ALU cycle ratio (paper: 3.8x SHA, 12.3x DCT, 1.7x Dijkstra). *)
  sp_wall_clock : float;  (** Time ratio at the real clocks (paper: 1.6x SHA, 6.15x DCT). *)
}

val speedups : table1_row -> speedup

(** {1 E5 / resources} *)

type resource_row = { rr_alus : int; rr : Epic_area.report }

val resources : ?alus:int list -> unit -> resource_row list

val paper_slices : (int * int) list
(** The published slice counts: 4181/6779/9367/11988 for 1-4 ALUs. *)

(** {1 Ablations} *)

type port_point = {
  pp_budget : int;
  pp_forwarding : bool;
  pp_cycles : int;
  pp_port_stalls : int;
}

val ablate_ports : ?sizes:sizes -> ?budgets:int list -> unit -> port_point list
(** A1: register-file port budget x forwarding (SHA, 4 ALUs). *)

type custom_point = { cp_label : string; cp_cycles : int; cp_slices : int }

val ablate_custom : ?sizes:sizes -> unit -> custom_point list
(** A2: the ROTR custom instruction for SHA (include/exclude). *)

type issue_point = { ip_issue : int; ip_cycles : int; ip_nops : int }

val ablate_issue : ?sizes:sizes -> unit -> issue_point list
(** A3: instructions per issue 1-4 (DCT, 4 ALUs), with NOP padding cost. *)

type pred_point = { dp_name : string; dp_with : int; dp_without : int }

val ablate_predication : ?sizes:sizes -> unit -> pred_point list
(** A4: if-conversion on/off (Dijkstra and DCT). *)

type pipe_point = {
  pl_stages : int;
  pl_name : string;
  pl_cycles : int;
  pl_bubbles : int;
  pl_mhz : float;
  pl_micros : float;
}

val ablate_pipeline : ?sizes:sizes -> unit -> pipe_point list
(** A5 (future work): pipeline depth 2-4. *)

val activity_of_stats : Epic_sim.stats -> Epic_area.activity
(** Bridge from simulator statistics to the power model. *)

type power_point = {
  po_alus : int;
  po_cycles : int;
  po_power : Epic_area.power_report;
  po_micros : float;
}

val ablate_power : ?sizes:sizes -> unit -> power_point list
(** A6 (future work): power/performance across the ALU sweep (DCT). *)

type autogen_point = {
  ag_alus : int;
  ag_base_cycles : int;
  ag_spec_cycles : int;
  ag_generated : string list;
  ag_base_slices : int;
  ag_spec_slices : int;
}

val ablate_autogen : ?sizes:sizes -> unit -> autogen_point list
(** A7 (future work): automatic custom-instruction generation on SHA. *)

type unroll_point = { un_factor : int; un_name : string; un_cycles : int }

val ablate_unroll : ?sizes:sizes -> unit -> unroll_point list
(** A8: loop unrolling factor (AES and a 16x16 DCT). *)

type pass_point = {
  pa_pass : string;      (** disabled pass; [""] is the full-pipeline baseline *)
  pa_cycles : int;
  pa_static_ops : int;   (** scheduled operations, a code-size proxy *)
}

val ablate_passes : ?sizes:sizes -> unit -> pass_point list
(** A9: optimisation-pass ablation on SHA (4 ALUs) — the default pipeline,
    then each distinct pass disabled in turn via the pass manager. *)

type avf_point = {
  af_name : string;                 (** Workload name. *)
  af_alus : int;
  af_report : Epic_fault.report;    (** Per-structure vulnerability table. *)
}

val inject_faults :
  ?jobs:int -> ?cache:Toolchain.Compile_cache.t -> ?sizes:sizes ->
  ?alus:int list -> ?seed:int -> ?runs:int -> unit -> avf_point list
(** A10: deterministic fault-injection campaigns
    ({!Toolchain.fault_campaign}) over the paper's workloads across the
    ALU sweep.  [runs] (default 16) injected flips per structure per
    campaign; the golden run of every campaign is checksum-verified.
    [jobs] (default 1) evaluates the (workload x ALU-count) grid points
    concurrently; the AVF rows are identical for every [jobs] value.
    @raise Failure on a checksum mismatch. *)

type sim_rate = {
  sr_runs : int;             (** Simulations completed within the budget. *)
  sr_cycles : int;           (** Simulated cycles per run. *)
  sr_wall_s : float;
  sr_cycles_per_s : float;   (** Host throughput: simulated cycles / second. *)
}

val sim_rate : ?budget_s:float -> unit -> sim_rate
(** Host-side simulator throughput probe: compile a small fixed workload
    (SHA/64B, 4 ALUs) once, then re-simulate until [budget_s] (default
    0.25 s) of wall clock has elapsed.  Machine-dependent by design;
    reported in [bench --json]'s meta section and gated by [bench_gate]
    as a lower band (current >= baseline / tolerance). *)

val sim_rate_table : ?budget_s:float -> unit -> (string * sim_rate) list
(** The same probe over all four workloads (small fixed inputs, 4 ALUs):
    the [make perf] table.  Machine-dependent, so it is only printed on
    request — never part of the deterministic bench stdout. *)

val sim_rate_to_json : sim_rate -> Epic_profile.Json.t
