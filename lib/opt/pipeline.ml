(* The pass manager: runs a pipeline of registered passes over a MIR
   program with optional invariant checking, producing a structured
   per-pass report (wall time, IR deltas) instead of an opaque fold.

   Instrumentation available per pass:
   - [verify]: run the {!Epic_mir.Verify} well-formedness checker on the
     input program and after every pass; any finding aborts compilation
     with {!Error} naming the offending pass.
   - [diff_check]: differential checking against the reference
     interpreter — execute the program before and after each pass (entry
     [main], zero arguments) and compare the return value and the final
     contents of the globals region.  A pass that changes either is
     miscompiling and aborts with {!Error}.  Executions that trap in the
     reference run are skipped: the optimiser is allowed to remove a trap
     whose result is dead (DCE on a dead division), so only trap-free
     behaviour is required to be preserved.
   - [dump_after]: pretty-print the program after each named pass (every
     occurrence) to [dump] (stderr by default).

   Timing and IR-delta statistics are always collected — they cost two
   clock reads and a program walk per pass — so callers decide at print
   time, not compile time, whether to surface them. *)

module Ir = Epic_mir.Ir
module Interp = Epic_mir.Interp
module Verify = Epic_mir.Verify
module Memmap = Epic_mir.Memmap

exception Error of string

type options = {
  verify : bool;
  diff_check : bool;
  dump_after : string list;
  dump : Format.formatter option;  (* default stderr *)
}

let default_options =
  { verify = false; diff_check = false; dump_after = []; dump = None }

type pass_stat = {
  sp_pass : string;
  sp_ms : float;              (* wall time of the pass itself *)
  sp_insts_before : int;
  sp_insts_after : int;
  sp_blocks_before : int;
  sp_blocks_after : int;
  sp_funcs_before : int;
  sp_funcs_after : int;
}

type report = {
  rp_passes : pass_stat list;  (* execution order *)
  rp_total_ms : float;         (* passes + instrumentation *)
  rp_verify_runs : int;        (* completed verifier runs (all clean) *)
  rp_diff_checks : int;        (* completed differential comparisons *)
}

let empty_report =
  { rp_passes = []; rp_total_ms = 0.0; rp_verify_runs = 0; rp_diff_checks = 0 }

(* ------------------------------------------------------------------ *)

type shape = { sh_insts : int; sh_blocks : int; sh_funcs : int }

let shape (p : Ir.program) =
  List.fold_left
    (fun acc (f : Ir.func) ->
      List.fold_left
        (fun acc (b : Ir.block) ->
          { acc with
            sh_insts = acc.sh_insts + List.length b.Ir.b_insts;
            sh_blocks = acc.sh_blocks + 1 })
        { acc with sh_funcs = acc.sh_funcs + 1 }
        f.Ir.f_blocks)
    { sh_insts = 0; sh_blocks = 0; sh_funcs = 0 }
    p.Ir.p_funcs

let verify_exn ~stage (p : Ir.program) =
  match Verify.check_program p with
  | Ok () -> ()
  | Error msgs ->
    raise
      (Error
         (Printf.sprintf "IR verification failed %s:\n  %s" stage
            (String.concat "\n  " msgs)))

(* Reference-interpreter observation for differential checking: the entry
   function's return value and the final globals region.  [None] when the
   program has no [main]; [Error] when the reference run traps. *)
let observe (p : Ir.program) =
  match Ir.find_func p "main" with
  | None -> None
  | Some f ->
    let args = List.map (fun _ -> 0) f.Ir.f_params in
    Some
      (try
         let r = Interp.run ~args p ~entry:"main" in
         Ok (r.Interp.ret, Bytes.sub r.Interp.mem 0 r.Interp.map.Memmap.globals_end)
       with Interp.Runtime_error m -> Result.Error m)

let diff_exn ~pass before after =
  match (before, after) with
  | None, _ | _, None -> ()            (* no main: nothing to execute *)
  | Some (Result.Error _), _ -> ()     (* reference run traps: skip (see above) *)
  | Some (Ok _), Some (Result.Error m) ->
    raise
      (Error
         (Printf.sprintf
            "differential check failed after %s: optimised program traps (%s)"
            pass m))
  | Some (Ok (r0, g0)), Some (Ok (r1, g1)) ->
    if r0 <> r1 then
      raise
        (Error
           (Printf.sprintf
              "differential check failed after %s: result %#x, expected %#x"
              pass r1 r0));
    if not (Bytes.equal g0 g1) then
      raise
        (Error
           (Printf.sprintf
              "differential check failed after %s: globals region differs" pass))

(* ------------------------------------------------------------------ *)

let run ?(options = default_options) (passes : Registry.pass list)
    (p : Ir.program) : Ir.program * report =
  let t_start = Unix.gettimeofday () in
  let p = Common.copy_program p in
  let verify_runs = ref 0 and diff_checks = ref 0 in
  if options.verify then begin
    verify_exn ~stage:"on the pipeline input" p;
    incr verify_runs
  end;
  let dump_ppf = Option.value ~default:Format.err_formatter options.dump in
  let stats_rev = ref [] in
  (* Passes mutate their argument's containers and return the program;
     [Inline.run] may return a NEW program record (after dropping dead
     functions), so the result must be threaded, not discarded. *)
  let p =
    List.fold_left
      (fun p (pass : Registry.pass) ->
        let before = if options.diff_check then observe p else None in
        let sh0 = shape p in
        let t0 = Unix.gettimeofday () in
        let p' = pass.pass_run p in
        let t1 = Unix.gettimeofday () in
        let sh1 = shape p' in
        stats_rev :=
          { sp_pass = pass.pass_name;
            sp_ms = (t1 -. t0) *. 1000.0;
            sp_insts_before = sh0.sh_insts;
            sp_insts_after = sh1.sh_insts;
            sp_blocks_before = sh0.sh_blocks;
            sp_blocks_after = sh1.sh_blocks;
            sp_funcs_before = sh0.sh_funcs;
            sp_funcs_after = sh1.sh_funcs }
          :: !stats_rev;
        if options.verify then begin
          verify_exn ~stage:(Printf.sprintf "after pass %s" pass.pass_name) p';
          incr verify_runs
        end;
        if options.diff_check then begin
          diff_exn ~pass:pass.pass_name before (observe p');
          incr diff_checks
        end;
        if List.mem pass.pass_name options.dump_after then
          Format.fprintf dump_ppf "@[<v>;; MIR after %s@,%a@]@." pass.pass_name
            Ir.pp_program p';
        p')
      p passes
  in
  ( p,
    { rp_passes = List.rev !stats_rev;
      rp_total_ms = (Unix.gettimeofday () -. t_start) *. 1000.0;
      rp_verify_runs = !verify_runs;
      rp_diff_checks = !diff_checks } )

(* ------------------------------------------------------------------ *)
(* Report rendering (epicc --time-passes). *)

let pp_report ppf (r : report) =
  let open Format in
  fprintf ppf "@[<v>%-14s %9s %15s %11s %7s@," "pass" "ms" "insts" "blocks" "funcs";
  List.iter
    (fun s ->
      fprintf ppf "%-14s %9.3f %7d->%-7d %5d->%-5d %3d->%-3d@," s.sp_pass s.sp_ms
        s.sp_insts_before s.sp_insts_after s.sp_blocks_before s.sp_blocks_after
        s.sp_funcs_before s.sp_funcs_after)
    r.rp_passes;
  fprintf ppf "%-14s %9.3f" "total" r.rp_total_ms;
  if r.rp_verify_runs > 0 then fprintf ppf "  (verifier: %d runs clean)" r.rp_verify_runs;
  if r.rp_diff_checks > 0 then
    fprintf ppf "  (differential: %d checks passed)" r.rp_diff_checks;
  fprintf ppf "@]"
