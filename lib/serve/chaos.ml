(* Chaos harness for the serving stack: inject faults at every seam the
   daemon is supposed to survive — corrupt cache entries on disk,
   garbage and oversized frames on the wire, clients that dribble bytes,
   handlers that blow their deadline, the daemon itself killed and
   restarted — and assert after {e every} injection that the daemon is
   still up, work responses are byte-identical to a clean run, and the
   store recovers its warm-hit rate.

   Everything is seeded: which entries are corrupted, where they are
   truncated, which bits flip, what the garbage frames contain are all
   pure functions of [seed], so a failing campaign replays exactly.

   The harness drives the real [epicd] binary over pipes (the same
   transport as `make serve-smoke`), because the failure modes under
   test — kill -9 mid-flight, partial frames, a dead peer — only exist
   across a process boundary.  [Epicload]'s [--chaos] flag is the CLI
   entry point; `make chaos-smoke` wires a seeded campaign into CI. *)

module P = Protocol
module J = Epic.Profile.Json

(* ------------------------------------------------------------------ *)
(* Deterministic PRNG (splitmix-style, same family as Epic.Difftest) *)

module Prng = struct
  type t = { mutable state : int }

  let create seed = { state = (seed * 0x9e3779b9) lor 1 }

  let next t =
    let z = ref (t.state + 0x9e3779b9) in
    t.state <- !z;
    z := (!z lxor (!z lsr 16)) * 0x21f0aaad land max_int;
    z := (!z lxor (!z lsr 15)) * 0x735a2d97 land max_int;
    (!z lxor (!z lsr 15)) land max_int

  let below t n = if n <= 0 then 0 else next t mod n

  (* Deterministic sample of [k] distinct elements, order-stable. *)
  let pick t k xs =
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let k = min k n in
    for i = 0 to k - 1 do
      let j = i + below t (n - i) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    Array.to_list (Array.sub arr 0 k)
end

(* ------------------------------------------------------------------ *)
(* Disk-level fault injection against a store directory *)

module Corrupt = struct
  let entry_dir root =
    Filename.concat root (Printf.sprintf "v%d" Store.format_version)

  (* Published entries, name-sorted so seeded choices are stable. *)
  let entries root =
    match Sys.readdir (entry_dir root) with
    | exception Sys_error _ -> []
    | names ->
      Array.to_list names
      |> List.filter (fun n -> n <> "" && n.[0] <> '.')
      |> List.sort compare
      |> List.map (Filename.concat (entry_dir root))

  let read_file path =
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    really_input_string ic (in_channel_length ic)

  let write_file path s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc

  (* Offset of the first payload byte: one past the second newline
     (key line, checksum line).  None if the file has no payload
     region — already truncated below the header. *)
  let payload_start s =
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
      (match String.index_from_opt s (i + 1) '\n' with
       | None -> None
       | Some j when j + 1 < String.length s -> Some (j + 1)
       | Some _ -> None)

  (* Simulate a torn write published by a non-atomic filesystem (or a
     kill inside the rename window): truncate the entry to a prefix.
     With [~keep:0] the file becomes empty; otherwise the header is kept
     intact and the payload is cut short, so the checksum — not the key
     guard — must catch it. *)
  let truncate_entry prng path ~keep_header =
    let s = read_file path in
    if not keep_header then begin
      write_file path "";
      "truncated to 0 bytes"
    end
    else
      match payload_start s with
      | None ->
        write_file path "";
        "no payload region; truncated to 0 bytes"
      | Some start ->
        let payload_len = String.length s - start in
        let keep = start + Prng.below prng payload_len in
        write_file path (String.sub s 0 keep);
        Printf.sprintf "truncated %d -> %d bytes" (String.length s) keep

  (* Flip one seeded bit inside the payload region. *)
  let flip_bit prng path =
    let s = read_file path in
    match payload_start s with
    | None -> "no payload region; left as-is"
    | Some start ->
      let i = start + Prng.below prng (String.length s - start) in
      let bit = Prng.below prng 8 in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code s.[i] lxor (1 lsl bit)));
      write_file path (Bytes.to_string b);
      Printf.sprintf "flipped bit %d of byte %d" bit i

  (* A crashed writer's leftover: a plausible temporary that the next
     open must sweep. *)
  let plant_tmp root =
    let path = Filename.concat (entry_dir root) ".tmp-99999-1" in
    write_file path "key line without its payload";
    path
end

(* ------------------------------------------------------------------ *)
(* Wire-level garbage *)

module Frames = struct
  let binary prng n =
    String.init n (fun _ ->
        (* Any byte but newline (frames are lines). *)
        match Char.chr (Prng.below prng 256) with '\n' -> '\x00' | c -> c)

  let oversized () = String.make (P.max_line_bytes + 1) 'x'

  let garbage prng =
    [ ("not-json", "{this is not json");
      ("binary", binary prng 64);
      ("oversized", oversized ()) ]
end

(* ------------------------------------------------------------------ *)
(* Driving a real daemon over pipes *)

module Proc = struct
  type t = {
    pid : int;
    req_fd : Unix.file_descr;   (* raw, so partial frames are possible *)
    resp_ic : in_channel;
    mutable req_open : bool;
  }

  let spawn bin args =
    let req_r, req_w = Unix.pipe ~cloexec:true () in
    let resp_r, resp_w = Unix.pipe ~cloexec:true () in
    let pid =
      Unix.create_process bin
        (Array.of_list (bin :: args))
        req_r resp_w Unix.stderr
    in
    Unix.close req_r;
    Unix.close resp_w;
    { pid; req_fd = req_w; resp_ic = Unix.in_channel_of_descr resp_r;
      req_open = true }

  let send_raw p s =
    let n = String.length s in
    let rec go off =
      if off < n then
        match Unix.write_substring p.req_fd s off (n - off) with
        | w -> go (off + w)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0

  let send_line p line =
    send_raw p line;
    send_raw p "\n"

  let recv p =
    match input_line p.resp_ic with
    | line -> Some line
    | exception End_of_file -> None

  let recv_n p n =
    let rec go acc k =
      if k = 0 then List.rev acc
      else
        match recv p with
        | None -> List.rev acc
        | Some l -> go (l :: acc) (k - 1)
    in
    go [] n

  let close_input p =
    if p.req_open then begin
      p.req_open <- false;
      try Unix.close p.req_fd with Unix.Unix_error (_, _, _) -> ()
    end

  (* Graceful end of a pass: EOF on the daemon's stdin, drain any
     remaining responses, reap.  Returns (remaining lines, exit ok). *)
  let finish p =
    close_input p;
    let rec drain acc =
      match recv p with None -> List.rev acc | Some l -> drain (l :: acc)
    in
    let rest = drain [] in
    close_in_noerr p.resp_ic;
    let ok =
      match Unix.waitpid [] p.pid with
      | _, Unix.WEXITED 0 -> true
      | _ -> false
    in
    (rest, ok)

  let kill p =
    (try Unix.kill p.pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
    close_input p;
    close_in_noerr p.resp_ic;
    ignore (Unix.waitpid [] p.pid)

  let alive p =
    match Unix.waitpid [ Unix.WNOHANG ] p.pid with
    | 0, _ -> true
    | _ -> false
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> false
end

(* ------------------------------------------------------------------ *)
(* The campaign *)

type injection = {
  in_kind : string;          (* torn-write | bit-flip | ... *)
  in_detail : string;        (* what exactly was injected *)
  in_survived : bool;        (* daemon completed the pass and exited 0 *)
  in_identical : bool;       (* work responses byte-identical to clean *)
  in_recovered : bool;       (* follow-up warm pass >= min hit rate *)
  in_hit_rate : float;       (* of the follow-up warm pass *)
  in_failures : string list; (* empty = injection fully survived *)
}

type report = {
  r_seed : int;
  r_requests : int;          (* work requests per pass *)
  r_injections : injection list;
  r_ok : bool;
}

let injection_to_json i =
  J.Obj
    [ ("kind", J.Str i.in_kind);
      ("detail", J.Str i.in_detail);
      ("survived", J.Bool i.in_survived);
      ("identical", J.Bool i.in_identical);
      ("recovered", J.Bool i.in_recovered);
      ("hit_rate", J.Float i.in_hit_rate);
      ("failures", J.List (List.map (fun f -> J.Str f) i.in_failures)) ]

let report_to_json r =
  J.Obj
    [ ("seed", J.Int r.r_seed);
      ("requests_per_pass", J.Int r.r_requests);
      ("injections", J.List (List.map injection_to_json r.r_injections));
      ("ok", J.Bool r.r_ok) ]

(* --- the base scenario: small, fully cacheable, deterministic ------ *)

let wl name params =
  P.Src_workload { P.wl_name = name; wl_params = List.sort compare params }

let gcd_asm =
  ";; gcd(r12, r13) by repeated remainder, result in r3\n\
   _start:\n\
   { MOV r1, #4096 ; MOV r12, #1071 ; MOV r13, #462 ; PBRR b0, @loop }\n\
   loop:\n\
   { CMPP.NE p1, p2, r13, #0 ; PBRR b1, @done }\n\
   { BRCT #1, #2 }\n\
   { REM r14, r12, r13 }\n\
   { MOV r12, r13 ; MOV r13, r14 }\n\
   { BRU #0 }\n\
   done:\n\
   { MOV r3, r12 }\n\
   { STW r1, #2, r3 }\n\
   { HALT }\n"

(* A program that never halts: the fuel-based deadline's worst case. *)
let spin_asm = "_start:\n{ PBRR b0, @spin }\nspin:\n{ BRU #0 }\n"

let compile cfg src =
  P.Compile
    { P.c_config = cfg; c_source = src; c_opt = Epic.Toolchain.O1;
      c_predication = true; c_unroll = Epic.Toolchain.default_unroll;
      c_fuel = None }

let base_ops =
  let cfgs =
    List.map
      (fun n -> { Epic.Config.default with Epic.Config.n_alus = n })
      [ 2; 3 ]
  in
  List.concat_map
    (fun c ->
      List.map (compile c)
        [ wl "sha" [ ("bytes", 64) ];
          wl "dct" [ ("width", 8); ("height", 8) ];
          wl "dijkstra" [ ("nodes", 6) ] ])
    cfgs
  @ [ P.Simulate
        { P.s_config = Epic.Config.default; s_asm = gcd_asm; s_fuel = None;
          s_mem_bytes = 65536 } ]

let stats_id = 99

let base_lines =
  let work =
    List.mapi
      (fun i op ->
        P.to_line { P.rq_id = Some i; rq_deadline_ms = None; rq_op = op })
      base_ops
  in
  work
  @ [ P.to_line { P.rq_id = Some stats_id; rq_deadline_ms = None; rq_op = P.Stats } ]

let n_work = List.length base_ops

(* --- response probing ---------------------------------------------- *)

let id_of line =
  match Option.bind (Result.to_option (J.parse line)) (J.member "id") with
  | Some (J.Int i) -> Some i
  | _ -> None

let is_ok line =
  match Option.bind (Result.to_option (J.parse line)) (J.member "ok") with
  | Some (J.Bool b) -> b
  | _ -> false

let error_code line =
  match
    Option.bind
      (Option.bind (Result.to_option (J.parse line)) (J.member "error"))
      (J.member "code")
  with
  | Some (J.Str c) -> Some c
  | _ -> None

let stats_member path line =
  match J.parse line with
  | Error _ -> None
  | Ok j ->
    List.fold_left (fun j k -> Option.bind j (J.member k)) (Some j)
      ("result" :: path)

let stats_num path line =
  match stats_member path line with
  | Some (J.Int i) -> Some (float_of_int i)
  | Some (J.Float f) -> Some f
  | _ -> None

(* Work responses of one pass, keyed by id and sorted — the comparison
   basis for byte-identity.  Only the base scenario's ids count: stats
   responses are machine-dependent and injection probes (ids >= 100)
   carry their own assertions. *)
let work_responses lines =
  List.filter_map
    (fun l ->
      match id_of l with
      | Some i when i >= 0 && i < n_work -> Some (i, l)
      | _ -> None)
    lines
  |> List.sort compare

(* --- one pass over a fresh daemon ---------------------------------- *)

type pass = {
  p_responses : string list;  (* everything the daemon answered *)
  p_exit_ok : bool;
  p_stats : string option;    (* the stats response, if seen *)
}

let run_pass ~bin ~daemon_args lines =
  let p = Proc.spawn bin daemon_args in
  List.iter (Proc.send_line p) lines;
  let responses = Proc.recv_n p (List.length lines) in
  let rest, exit_ok = Proc.finish p in
  let responses = responses @ rest in
  let stats =
    List.find_opt (fun l -> id_of l = Some stats_id) responses
  in
  { p_responses = responses; p_exit_ok = exit_ok; p_stats = stats }

let hit_rate_of pass =
  match pass.p_stats with
  | None -> 0.
  | Some s ->
    (match
       (stats_num [ "disk_cache"; "hits" ] s,
        stats_num [ "disk_cache"; "misses" ] s)
     with
     | Some h, Some m when h +. m > 0. -> h /. (h +. m)
     | _ -> 0.)

(* ------------------------------------------------------------------ *)

type t = {
  bin : string;                (* the epicd binary *)
  cache_dir : string;
  jobs : int;
  min_hit_rate : float;
  verbose : bool;
  mutable golden : (int * string) list;
}

let daemon_args ?(extra = []) t =
  [ "--jobs"; string_of_int t.jobs; "--cache-dir"; t.cache_dir ] @ extra

let say t fmt =
  Printf.ksprintf
    (fun m -> if t.verbose then Printf.printf "chaos: %s\n%!" m)
    fmt

(* Assert the three invariants of one injection: the daemon survived
   the pass that ran {e with} the injected fault, its work responses
   match the golden run, and a follow-up warm pass recovers the disk
   hit rate. *)
let assess t ~kind ~detail (pass : pass) =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  if not pass.p_exit_ok then fail "daemon did not exit cleanly";
  let work = work_responses pass.p_responses in
  if List.length work <> n_work then
    fail "expected %d work responses, got %d" n_work (List.length work);
  List.iter
    (fun (i, l) -> if not (is_ok l) then fail "response %d not ok: %s" i l)
    work;
  let identical = work = t.golden in
  if not identical then fail "work responses differ from the clean run";
  (* Recovery: one more pass, everything from disk. *)
  let recovery = run_pass ~bin:t.bin ~daemon_args:(daemon_args t) base_lines in
  let rate = hit_rate_of recovery in
  let recovered = recovery.p_exit_ok && rate >= t.min_hit_rate in
  if not recovered then
    fail "recovery pass hit rate %.2f below %.2f" rate t.min_hit_rate;
  if work_responses recovery.p_responses <> t.golden then
    fail "recovery pass responses differ from the clean run";
  { in_kind = kind; in_detail = detail;
    in_survived = pass.p_exit_ok;
    in_identical = identical;
    in_recovered = recovered;
    in_hit_rate = rate;
    in_failures = List.rev !failures }

(* --- injections ---------------------------------------------------- *)

let inject_torn_writes t prng =
  let victims = Prng.pick prng 2 (Corrupt.entries t.cache_dir) in
  let details =
    List.mapi
      (fun i path ->
        Printf.sprintf "%s: %s" (Filename.basename path)
          (Corrupt.truncate_entry prng path ~keep_header:(i > 0)))
      victims
  in
  let detail = String.concat "; " details in
  say t "torn-write: %s" detail;
  let pass = run_pass ~bin:t.bin ~daemon_args:(daemon_args t) base_lines in
  let a = assess t ~kind:"torn-write" ~detail pass in
  (* The header-intact truncation must have been caught by the checksum
     and quarantined (the empty file too); both recomputed. *)
  let quarantined =
    match pass.p_stats with
    | Some s -> stats_num [ "disk_cache"; "quarantined" ] s
    | None -> None
  in
  match quarantined with
  | Some q when q >= float_of_int (List.length victims) -> a
  | q ->
    { a with
      in_failures =
        Printf.sprintf "expected >= %d quarantined entries, stats said %s"
          (List.length victims)
          (match q with None -> "nothing" | Some q -> string_of_float q)
        :: a.in_failures }

let inject_bit_flips t prng =
  let victims = Prng.pick prng 2 (Corrupt.entries t.cache_dir) in
  let details =
    List.map
      (fun path ->
        Printf.sprintf "%s: %s" (Filename.basename path)
          (Corrupt.flip_bit prng path))
      victims
  in
  let detail = String.concat "; " details in
  say t "bit-flip: %s" detail;
  let pass = run_pass ~bin:t.bin ~daemon_args:(daemon_args t) base_lines in
  assess t ~kind:"bit-flip" ~detail pass

let inject_garbage_frames t prng =
  let garbage = Frames.garbage prng in
  (* Interleave: garbage, then the whole base scenario, garbage ids are
     absent (unparseable) so they never collide with work ids. *)
  let lines = List.map snd garbage @ base_lines in
  say t "garbage-frames: %s"
    (String.concat ", " (List.map fst garbage));
  let p = Proc.spawn t.bin (daemon_args t) in
  List.iter (Proc.send_line p) lines;
  let responses = Proc.recv_n p (List.length lines) in
  let rest, exit_ok = Proc.finish p in
  let responses = responses @ rest in
  let pass =
    { p_responses = responses; p_exit_ok = exit_ok;
      p_stats = List.find_opt (fun l -> id_of l = Some stats_id) responses }
  in
  let a =
    assess t ~kind:"garbage-frames"
      ~detail:(String.concat ", " (List.map fst garbage))
      pass
  in
  (* Every garbage frame must have been answered with a structured
     error — the daemon neither died nor went silent. *)
  let error_lines =
    List.filter (fun l -> id_of l = None && not (is_ok l)) responses
  in
  let codes = List.filter_map error_code error_lines in
  let expect_code c =
    if not (List.mem c codes) then
      Some (Printf.sprintf "no %s error for the matching garbage frame" c)
    else None
  in
  let missing =
    List.filter_map expect_code [ "serve/parse"; "serve/oversized" ]
  in
  { a with in_failures = a.in_failures @ missing }

let inject_slow_loris t _prng =
  say t "slow-loris: dribbling the first request byte group by byte group";
  let p = Proc.spawn t.bin (daemon_args t) in
  (match base_lines with
   | first :: rest ->
     let half = String.length first / 2 in
     Proc.send_raw p (String.sub first 0 half);
     Unix.sleepf 0.3;
     Proc.send_raw p (String.sub first half (String.length first - half));
     Proc.send_raw p "\n";
     List.iter (Proc.send_line p) rest
   | [] -> ());
  let responses = Proc.recv_n p (List.length base_lines) in
  let rest, exit_ok = Proc.finish p in
  let pass =
    { p_responses = responses @ rest; p_exit_ok = exit_ok;
      p_stats =
        List.find_opt (fun l -> id_of l = Some stats_id) (responses @ rest) }
  in
  assess t ~kind:"slow-loris" ~detail:"first frame split with a 300 ms stall"
    pass

let inject_deadline t _prng =
  (* Three probes ahead of the normal pass:
     - deadline_ms 0: expired before dispatch, the wall-clock path;
     - a non-halting program under a small deadline: the fuel path;
     - the same program with explicit tight fuel and no deadline: a
       legitimate, cacheable fuel-trap {e result}, proving the two are
       distinguished. *)
  let sim ?deadline ?fuel () =
    P.to_line
      { P.rq_id = Some (100 + (match deadline with Some _ -> 0 | None -> 1));
        rq_deadline_ms = deadline;
        rq_op =
          P.Simulate
            { P.s_config = Epic.Config.default; s_asm = spin_asm;
              s_fuel = fuel; s_mem_bytes = 4096 } }
  in
  let probe0 =
    P.to_line
      { P.rq_id = Some 102; rq_deadline_ms = Some 0;
        rq_op = List.hd base_ops }
  in
  let probes = [ probe0; sim ~deadline:50 (); sim ~fuel:1000 () ] in
  say t "deadline: expired-on-arrival, fuel-capped spin, legitimate fuel trap";
  let lines = probes @ base_lines in
  let p = Proc.spawn t.bin (daemon_args t) in
  List.iter (Proc.send_line p) lines;
  let responses = Proc.recv_n p (List.length lines) in
  let rest, exit_ok = Proc.finish p in
  let responses = responses @ rest in
  let pass =
    { p_responses = responses; p_exit_ok = exit_ok;
      p_stats = List.find_opt (fun l -> id_of l = Some stats_id) responses }
  in
  let a =
    assess t ~kind:"deadline"
      ~detail:"deadline_ms=0 compile; 50 ms deadline on a non-halting \
               simulate; fuel=1000 control"
      pass
  in
  let find i = List.find_opt (fun l -> id_of l = Some i) responses in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (match find 102 with
   | Some l when error_code l = Some "serve/deadline" -> ()
   | Some l -> fail "deadline_ms=0 request was not shed: %s" l
   | None -> fail "no response to the deadline_ms=0 request");
  (match find 100 with
   | Some l when error_code l = Some "serve/deadline" -> ()
   | Some l -> fail "fuel-capped spin did not report serve/deadline: %s" l
   | None -> fail "no response to the fuel-capped spin");
  (match find 101 with
   | Some l when is_ok l -> ()
   | Some l -> fail "legitimate fuel trap was not an ok result: %s" l
   | None -> fail "no response to the fuel-trap control");
  (match pass.p_stats with
   | Some s
     when (match stats_num [ "deadline_timeouts" ] s with
           | Some n -> n >= 2.
           | None -> false) ->
     ()
   | _ -> fail "stats did not report >= 2 deadline timeouts");
  { a with in_failures = a.in_failures @ List.rev !failures }

let inject_kill_restart t _prng =
  say t "kill-restart: SIGKILL after the first response";
  let p = Proc.spawn t.bin (daemon_args t) in
  List.iter (Proc.send_line p) base_lines;
  (* Let it answer something, then pull the rug. *)
  let first = Proc.recv p in
  Proc.kill p;
  let alive = Proc.alive p in
  (* The temporary a killed writer would have left behind — planted
     after the kill so the {e restarted} open is the one that sweeps. *)
  let tmp = Corrupt.plant_tmp t.cache_dir in
  (* The restarted daemon must sweep the planted temporary and serve the
     full scenario from the surviving entries. *)
  let pass = run_pass ~bin:t.bin ~daemon_args:(daemon_args t) base_lines in
  let a =
    assess t ~kind:"kill-restart"
      ~detail:"SIGKILL mid-pass with a planted crashed-writer temporary"
      pass
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  if first = None then fail "daemon answered nothing before the kill";
  if alive then fail "daemon survived SIGKILL?";
  (match pass.p_stats with
   | Some s
     when (match stats_num [ "disk_cache"; "swept" ] s with
           | Some n -> n >= 1.
           | None -> false) ->
     ()
   | _ -> fail "restarted daemon did not report sweeping the temporary");
  if Sys.file_exists tmp then fail "planted temporary still on disk";
  { a with in_failures = a.in_failures @ List.rev !failures }

(* --- concurrent-socket injection ----------------------------------- *)

let send_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* The daemon binds its socket after it starts; retry the dial until it
   is there. *)
let rec connect_retry path tries =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect sock (Unix.ADDR_UNIX path) with
  | () -> sock
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
    when tries > 0 ->
    (try Unix.close sock with Unix.Unix_error (_, _, _) -> ());
    Unix.sleepf 0.05;
    connect_retry path (tries - 1)

let read_to_eof fd =
  let ic = Unix.in_channel_of_descr fd in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let responses = read [] in
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
  responses

let socket_request_lines sock lines =
  let oc = Unix.out_channel_of_descr sock in
  List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
  flush oc;
  Unix.shutdown sock Unix.SHUTDOWN_SEND;
  read_to_eof sock

(* Multi-connection mode under an abrupt mid-request disconnect: client
   A sends half a frame and vanishes while client B — on its own
   connection of the same daemon — replays the whole base scenario.  B
   must receive complete, golden-identical responses; A's corpse must
   cost the daemon nothing; a control connection then shuts the daemon
   down cleanly. *)
let inject_conn_drop t _prng =
  say t "conn-drop: abrupt mid-request disconnect beside a live connection";
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "epicd-chaos-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
  let p =
    Proc.spawn t.bin
      (daemon_args t ~extra:[ "--socket"; path; "--max-conns"; "4" ])
  in
  (* Client A: half of the first frame, then silence. *)
  let a = connect_retry path 100 in
  (match base_lines with
   | first :: _ -> send_all a (String.sub first 0 (String.length first / 2))
   | [] -> ());
  (* Client B: the full scenario on a second connection. *)
  let b = connect_retry path 10 in
  let b_oc = Unix.out_channel_of_descr b in
  List.iter (fun l -> output_string b_oc l; output_char b_oc '\n') base_lines;
  flush b_oc;
  Unix.shutdown b Unix.SHUTDOWN_SEND;
  (* While the daemon grinds B's requests, A drops mid-frame. *)
  Unix.sleepf 0.05;
  (try Unix.close a with Unix.Unix_error (_, _, _) -> ());
  let b_responses = read_to_eof b in
  (* Control connection: clean shutdown must still work. *)
  let shutdown_id = 103 in
  let control =
    socket_request_lines (connect_retry path 10)
      [ P.to_line
          { P.rq_id = Some shutdown_id; rq_deadline_ms = None;
            rq_op = P.Shutdown } ]
  in
  let rest, exit_ok = Proc.finish p in
  let responses = b_responses @ control @ rest in
  let pass =
    { p_responses = responses; p_exit_ok = exit_ok;
      p_stats = List.find_opt (fun l -> id_of l = Some stats_id) responses }
  in
  let a' =
    assess t ~kind:"conn-drop"
      ~detail:"half a frame then an abrupt close, beside a full replay on a \
               second connection"
      pass
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (match List.find_opt (fun l -> id_of l = Some shutdown_id) control with
   | Some l when is_ok l -> ()
   | Some l -> fail "shutdown request not answered ok: %s" l
   | None -> fail "no response to the shutdown request");
  (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
  { a' with in_failures = a'.in_failures @ List.rev !failures }

(* --- campaign ------------------------------------------------------ *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error (_, _, _) -> ())
  | _ -> (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | exception Unix.Unix_error (_, _, _) -> ()

let run ?(jobs = 2) ?(min_hit_rate = 0.9) ?(seed = 0) ?(verbose = true)
    ~bin ~cache_dir () =
  let t =
    { bin; cache_dir; jobs; min_hit_rate; verbose; golden = [] }
  in
  let prng = Prng.create seed in
  rm_rf cache_dir;
  (* Clean run: establishes the golden responses and fills the cache. *)
  say t "clean run (%d work requests)" n_work;
  let clean = run_pass ~bin ~daemon_args:(daemon_args t) base_lines in
  t.golden <- work_responses clean.p_responses;
  let clean_inj =
    let failures = ref [] in
    if not clean.p_exit_ok then
      failures := "clean run: daemon did not exit cleanly" :: !failures;
    if List.length t.golden <> n_work then
      failures :=
        Printf.sprintf "clean run: expected %d work responses, got %d" n_work
          (List.length t.golden)
        :: !failures;
    List.iter
      (fun (i, l) ->
        if not (is_ok l) then
          failures := Printf.sprintf "clean run: response %d not ok" i :: !failures)
      t.golden;
    { in_kind = "clean"; in_detail = "no fault injected (golden run)";
      in_survived = clean.p_exit_ok; in_identical = true;
      in_recovered = true; in_hit_rate = 0.; in_failures = List.rev !failures }
  in
  let injections =
    if clean_inj.in_failures <> [] then [ clean_inj ]
    else
      clean_inj
      :: List.map
           (fun f -> f t prng)
           [ inject_torn_writes; inject_bit_flips; inject_garbage_frames;
             inject_slow_loris; inject_deadline; inject_conn_drop;
             inject_kill_restart ]
  in
  let ok = List.for_all (fun i -> i.in_failures = []) injections in
  List.iter
    (fun i ->
      say t "%-14s %s%s" i.in_kind
        (if i.in_failures = [] then "OK" else "FAIL")
        (match i.in_failures with
         | [] -> ""
         | fs -> ": " ^ String.concat "; " fs))
    injections;
  { r_seed = seed; r_requests = n_work; r_injections = injections; r_ok = ok }
