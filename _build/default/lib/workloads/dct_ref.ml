(* Reference fixed-point 8x8 DCT encode/decode (the paper's DCT benchmark
   does "fixed-point Discrete Cosine Transform encoding and decoding" of
   an image).  Separable 2D DCT-II with an 11-bit fixed-point cosine
   table; the compiled benchmark embeds the very same table constants, so
   the integer arithmetic matches bit for bit. *)

let scale_bits = 11
let round_add = 1 lsl (scale_bits - 1)

(* table.(u).(x) = round(c_u / 2 * cos((2x+1) u pi / 16) * 2^11),
   c_0 = 1/sqrt 2, otherwise 1. *)
let table =
  Array.init 8 (fun u ->
      Array.init 8 (fun x ->
          let c = if u = 0 then 1.0 /. sqrt 2.0 else 1.0 in
          let v =
            c /. 2.0
            *. cos ((((2.0 *. float_of_int x) +. 1.0) *. float_of_int u *. Float.pi) /. 16.0)
            *. float_of_int (1 lsl scale_bits)
          in
          int_of_float (Float.round v)))

(* Forward DCT of one 8x8 block (row-major pixels 0..255); coefficients
   are small signed ints. *)
let forward (px : int array) =
  let tmp = Array.make 64 0 in
  (* tmp.(u*8+y) = sum_x px.(x*8+y) * table.(u).(x), rescaled *)
  for u = 0 to 7 do
    for y = 0 to 7 do
      let s = ref 0 in
      for x = 0 to 7 do
        s := !s + (px.((x * 8) + y) * table.(u).(x))
      done;
      tmp.((u * 8) + y) <- (!s + round_add) asr scale_bits
    done
  done;
  let coeff = Array.make 64 0 in
  for u = 0 to 7 do
    for v = 0 to 7 do
      let s = ref 0 in
      for y = 0 to 7 do
        s := !s + (tmp.((u * 8) + y) * table.(v).(y))
      done;
      coeff.((u * 8) + v) <- (!s + round_add) asr scale_bits
    done
  done;
  coeff

(* Inverse DCT; clamps the reconstruction to 0..255. *)
let inverse (coeff : int array) =
  let tmp = Array.make 64 0 in
  (* tmp.(x*8+v) = sum_u coeff.(u*8+v) * table.(u).(x), rescaled *)
  for x = 0 to 7 do
    for v = 0 to 7 do
      let s = ref 0 in
      for u = 0 to 7 do
        s := !s + (coeff.((u * 8) + v) * table.(u).(x))
      done;
      tmp.((x * 8) + v) <- (!s + round_add) asr scale_bits
    done
  done;
  let px = Array.make 64 0 in
  for x = 0 to 7 do
    for y = 0 to 7 do
      let s = ref 0 in
      for v = 0 to 7 do
        s := !s + (tmp.((x * 8) + v) * table.(v).(y))
      done;
      let p = (s.contents + round_add) asr scale_bits in
      px.((x * 8) + y) <- (if p < 0 then 0 else if p > 255 then 255 else p)
    done
  done;
  px

let roundtrip px = inverse (forward px)

let max_error px =
  let r = roundtrip px in
  let e = ref 0 in
  Array.iteri (fun i v -> e := max !e (abs (v - r.(i)))) px;
  !e
