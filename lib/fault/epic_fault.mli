(** Deterministic fault-injection campaigns over the cycle-level simulator.

    The classic single-event-upset study for the customisable EPIC core:
    one transient bit flip per run in an architectural structure, at a
    chosen cycle, classified against a clean golden run and aggregated
    into an AVF-style vulnerability table per structure.

    Campaigns are fully deterministic: fault sites are drawn from the
    repository's seeded xorshift32 PRNG ({!Epic_workloads.Prng}), so the
    same seed reproduces the identical fault list and report. *)

(** Architectural structure a flip lands in. *)
type target =
  | F_gpr   (** General-purpose register bit. *)
  | F_pred  (** Predicate register (1-bit: flip = negate). *)
  | F_btr   (** Branch-target register bit. *)
  | F_mem   (** Data-memory byte bit. *)
  | F_inst  (** Fetched instruction word bit — transient: the corruption
                lives for exactly one fetch (an SEU on the fetch path,
                not a stuck-at fault in instruction memory). *)

val all_targets : target list
(** All five structures, in campaign order. *)

val string_of_target : target -> string
(** ["gpr"], ["pred"], ["btr"], ["mem"], ["inst"]. *)

val target_of_string : string -> target option

type fault = {
  f_target : target;
  f_cycle : int;  (** First cycle at (or after) which the flip fires. *)
  f_index : int;  (** Register index / byte address / issue slot. *)
  f_bit : int;    (** Bit position within the structure. *)
}

val pp_fault : Format.formatter -> fault -> unit

(** Classification of one injected run against the golden run. *)
type outcome =
  | O_masked   (** Golden return value and bit-identical final memory. *)
  | O_sdc      (** Silent data corruption: clean HALT, wrong result. *)
  | O_trap of Epic_sim.trap_cause  (** The trap model caught the fault. *)
  | O_timeout  (** Watchdog fuel exhausted — the fault caused a loop. *)

val string_of_outcome : outcome -> string
(** ["masked"], ["sdc"], ["trap:<cause>"], ["timeout"]. *)

val golden :
  ?fuel:int -> ?pre:Epic_sim.Predecode.t -> Epic_config.t ->
  image:Epic_asm.Aunit.image -> mem:Bytes.t -> entry:int -> Epic_sim.result
(** Run the program fault-free on copies of the image and memory.
    @raise Epic_diag.Error ([fault/golden-trap]) if the clean run traps —
    a campaign over a faulty program is meaningless. *)

val inject :
  ?pre:Epic_sim.Predecode.t ->
  Epic_config.t ->
  image:Epic_asm.Aunit.image ->
  mem:Bytes.t ->
  entry:int ->
  fuel:int ->
  golden_ret:int ->
  golden_mem:Bytes.t ->
  fault ->
  outcome
(** Run the program once with the fault injected (on copies — the
    caller's image and memory are never mutated) and classify the
    outcome.  [fuel] is the watchdog bound; [golden_ret]/[golden_mem]
    come from {!golden}; [pre] is a predecode of the {e clean} image —
    the image copy is shallow, so it still matches, and the simulator's
    tamper-mode re-decode covers the injected flips. *)

(** One line of the vulnerability table: outcome counts for one
    structure.  Counts always sum to the campaign's runs-per-target. *)
type row = {
  r_target : target;
  r_masked : int;
  r_sdc : int;
  r_trap : int;
  r_timeout : int;
}

val row_runs : row -> int
(** Sum of the four outcome counts. *)

val row_avf : row -> float
(** Architectural vulnerability factor: fraction of flips not masked. *)

type report = {
  rp_seed : int;
  rp_runs : int;           (** Runs per target. *)
  rp_fuel : int;           (** Watchdog fuel used for injected runs. *)
  rp_golden_ret : int;
  rp_golden_cycles : int;
  rp_rows : row list;      (** One per campaigned target, in order. *)
  rp_faults : (fault * outcome) list;
      (** Every injected fault with its classification, in injection
          order — the machine-readable campaign log. *)
}

val campaign :
  ?seed:int ->
  ?runs:int ->
  ?targets:target list ->
  ?fuel_factor:int ->
  ?jobs:int ->
  ?pre:Epic_sim.Predecode.t ->
  Epic_config.t ->
  image:Epic_asm.Aunit.image ->
  mem:Bytes.t ->
  entry:int ->
  unit ->
  report
(** Run a full campaign: a golden run, then [runs] (default 32) injected
    runs per target (default {!all_targets}), each with a fault site
    drawn from the seeded PRNG (default seed 1).  Injected runs execute
    under a watchdog of [fuel_factor] (default 4) times the golden cycle
    count plus slack; exhaustion classifies as {!O_timeout}.

    [jobs] (default 1) fans the injected runs out across that many
    domains ({!Epic_exec.Pool}): every fault site is drawn from the PRNG
    up front in sequential order, the golden run is computed once and
    shared read-only, and each injected run works on private copies of
    the image and memory — so the report is {e bit-identical} for every
    [jobs] value.
    @raise Epic_diag.Error on a zero seed, non-positive [runs] or
    [fuel_factor], empty memory, or a trapping golden run. *)

val total_runs : report -> int
(** Total injected runs across all rows. *)

val pp_report : Format.formatter -> report -> unit
(** Render the vulnerability table (text form of the [epicfault] CLI). *)

val report_to_json : ?faults:bool -> report -> Epic_profile.Json.t
(** Machine-readable report; [faults] (default false) additionally
    includes the per-fault campaign log. *)
