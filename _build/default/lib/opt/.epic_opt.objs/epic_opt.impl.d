lib/opt/epic_opt.ml: Common Constfold Cse Dce Epic_mir Ifconvert Inline Licm List Simplify
