lib/sched/codegen.ml: Epic_asm Epic_config Epic_isa Epic_mir Epic_regalloc Format Hashtbl List Printf
