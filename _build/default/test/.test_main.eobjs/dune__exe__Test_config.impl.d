test/test_config.ml: Alcotest Epic List QCheck QCheck_alcotest String
