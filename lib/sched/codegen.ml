(* MIR -> EPIC code generation (instruction selection + calling
   convention), producing symbolic assembly blocks that the list
   scheduler then packs into issue bundles.

   Register convention (GPRs):
     r0          hardwired zero
     r1          stack pointer (grows down)
     r2          return address (written by BRL)
     r3          return value / code-generator scratch
     r4 .. r11   argument registers
     r12 ..      allocatable pool (callee-saved: the prologue saves every
                 pool register the body touches, so values are never live
                 in clobberable registers across calls)

   Predicate registers: p0 is hardwired true; each MIR predicate maps to a
   (true, false) hardware pair.  Predicates whose live range is contained
   in one block get a pair from the per-block recycling allocator;
   predicates that cross a block boundary (set in one block, guarding in
   another, or live around a loop) are pinned to a fixed pair carved from
   the top of the predicate file for the whole function.  Branch target
   registers are allocated round-robin per block; reuse is safe because
   the scheduler serialises through BTR dependences. *)

module Isa = Epic_isa
module Config = Epic_config
module Ir = Epic_mir.Ir
module Memmap = Epic_mir.Memmap
module Regalloc = Epic_regalloc
module A = Epic_asm.Aunit

exception Codegen_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Codegen_error s)) fmt

let reg_zero = 0
let reg_sp = 1
let reg_ra = 2
let reg_rv = 3
let reg_arg0 = 4
let max_args = 8
let pool_base = 12

type cblock = { cb_label : string; mutable cb_insts : A.inst list }
type cfunc = { cf_name : string; cf_blocks : cblock list }

let fits_literal (cfg : Config.t) v =
  let payload = cfg.Config.src_bits - 1 in
  v >= -(1 lsl (payload - 1)) && v < 1 lsl (payload - 1)

(* Two-immediate operations where a literal exceeds the configured
   payload are folded at compile time: materialising both literals would
   need two scratch registers, which sites without a free destination
   (Br, Setp, guarded ops) do not have.  The fold uses the reference
   semantics ([Interp.eval_binop]/[eval_relop]), which the differential
   fuzzer holds equal to the datapath's.  Nothing is folded while both
   literals fit, so code under roomy configurations is unchanged. *)
let fold2 (cfg : Config.t) (a : Ir.operand) (b : Ir.operand) =
  let signed v =
    let v32 = v land 0xFFFFFFFF in
    if v32 land 0x80000000 <> 0 then v32 - 0x100000000 else v32
  in
  match (a, b) with
  | Ir.Imm x, Ir.Imm y
    when not (fits_literal cfg (signed x) && fits_literal cfg (signed y)) ->
    Some (x land 0xFFFFFFFF, y land 0xFFFFFFFF)
  | _ -> None

(* Emission context for one block. *)
type ctx = {
  cfg : Config.t;
  layout : Memmap.t;
  mutable out : A.inst list;  (* reversed *)
  mutable next_pred : int;    (* high-water mark of pair allocation *)
  mutable free_pairs : (int * int) list;  (* recycled pairs *)
  mutable next_btr : int;
  pred_map : (int, int * int) Hashtbl.t;  (* MIR preg -> (p_true, p_false) *)
  pred_limit : int;  (* dynamic pairs live strictly below this register *)
  fixed_preds : (int * (int * int)) list;  (* function-wide pinned pairs *)
}

let emit ctx i = ctx.out <- i :: ctx.out

let emit_op ctx op ?(d1 = 0) ?(d2 = 0) ?(s1 = A.Imm 0) ?(s2 = A.Imm 0) ?(g = 0) () =
  emit ctx (A.simple op ~d1 ~d2 ~s1 ~s2 ~g ())

(* Predicate pairs are recycled once their MIR predicate is dead (its last
   guarded use in the block has been emitted): long if-converted regions
   would otherwise exhaust the predicate file.  Reuse only adds WAW/RAW
   dependences on the predicate registers, which the scheduler honours. *)
let alloc_pred_pair ctx =
  match ctx.free_pairs with
  | pair :: rest ->
    ctx.free_pairs <- rest;
    pair
  | [] ->
    let p = ctx.next_pred in
    if p + 1 >= ctx.pred_limit then
      fail "block needs more than %d predicate registers; increase n_preds"
        ctx.cfg.Config.n_preds;
    ctx.next_pred <- p + 2;
    (p, p + 1)

let release_pred_pair ctx pair = ctx.free_pairs <- pair :: ctx.free_pairs

let pred_pair ctx q =
  match Hashtbl.find_opt ctx.pred_map q with
  | Some pair -> pair
  | None ->
    let pair = alloc_pred_pair ctx in
    Hashtbl.replace ctx.pred_map q pair;
    pair

let release_mir_pred ctx q =
  (* Pinned (cross-block) predicates keep their pair for the whole
     function; recycling one would let a later CMPP temporary clobber a
     predicate that is still live in another block. *)
  if not (List.mem_assoc q ctx.fixed_preds) then
    match Hashtbl.find_opt ctx.pred_map q with
    | Some pair ->
      Hashtbl.remove ctx.pred_map q;
      release_pred_pair ctx pair
    | None -> ()

let alloc_btr ctx =
  let b = ctx.next_btr in
  ctx.next_btr <- b + 1;
  b mod ctx.cfg.Config.n_btrs

let guard_field ctx = function
  | None -> 0
  | Some g ->
    (match Hashtbl.find_opt ctx.pred_map g.Ir.g_reg with
     | Some (pt, pf) -> if g.Ir.g_pos then pt else pf
     | None -> fail "guard predicate q%d used before its setp" g.Ir.g_reg)

(* Build a (possibly large) constant into [dst] as MOV/SHL/OR chunks.
   The chunk width tracks the configured immediate payload: each unsigned
   chunk must fit the non-negative half of the signed literal range, so
   at most [payload - 1] bits per chunk (capped at 13, the width used by
   the default 16-bit source field). *)
let emit_const ctx ?(g = 0) dst v =
  let v32 = v land 0xFFFFFFFF in
  let signed = if v32 land 0x80000000 <> 0 then v32 - 0x100000000 else v32 in
  if fits_literal ctx.cfg signed then emit_op ctx Isa.MOV ~d1:dst ~s1:(A.Imm signed) ~g ()
  else begin
    let payload = ctx.cfg.Config.src_bits - 1 in
    let chunk = max 1 (min 13 (payload - 1)) in
    let mask = (1 lsl chunk) - 1 in
    (* Most-significant chunk first. *)
    let rec split v acc = if v = 0 then acc else split (v lsr chunk) ((v land mask) :: acc) in
    let rec lower = function
      | [] -> ()
      | [ c ] ->
        (* Final chunk: operand order kept as (imm, reg) historically. *)
        emit_op ctx Isa.SHL ~d1:dst ~s1:(A.Reg dst) ~s2:(A.Imm chunk) ~g ();
        emit_op ctx Isa.OR ~d1:dst ~s1:(A.Imm c) ~s2:(A.Reg dst) ~g ()
      | c :: rest ->
        emit_op ctx Isa.SHL ~d1:dst ~s1:(A.Reg dst) ~s2:(A.Imm chunk) ~g ();
        emit_op ctx Isa.OR ~d1:dst ~s1:(A.Reg dst) ~s2:(A.Imm c) ~g ();
        lower rest
    in
    match split v32 [] with
    | [] -> emit_op ctx Isa.MOV ~d1:dst ~s1:(A.Imm 0) ~g ()
    | c0 :: rest ->
      emit_op ctx Isa.MOV ~d1:dst ~s1:(A.Imm c0) ~g ();
      lower rest
  end

(* Convert a MIR operand to a source field, materialising literals that do
   not fit.  [scratch_order] lists registers usable for materialisation,
   most preferred first. *)
let src_of ctx ~scratch operand =
  match (operand : Ir.operand) with
  | Ir.Reg r -> A.Reg r
  | Ir.Imm v ->
    let v32 = v land 0xFFFFFFFF in
    let signed = if v32 land 0x80000000 <> 0 then v32 - 0x100000000 else v32 in
    if fits_literal ctx.cfg signed then A.Imm signed
    else begin
      match !scratch with
      | s :: rest ->
        scratch := rest;
        emit_const ctx s v;
        A.Reg s
      | [] -> fail "ran out of scratch registers materialising %d" v
    end

let binop_op = function
  | Ir.Add -> Isa.ADD | Ir.Sub -> Isa.SUB | Ir.Mul -> Isa.MPY
  | Ir.Div -> Isa.DIV | Ir.Rem -> Isa.REM | Ir.And -> Isa.AND
  | Ir.Or -> Isa.OR | Ir.Xor -> Isa.XOR | Ir.Shl -> Isa.SHL
  | Ir.Shr -> Isa.SHR | Ir.Shra -> Isa.SHRA | Ir.Min -> Isa.MIN
  | Ir.Max -> Isa.MAX

let cond_of_relop = function
  | Ir.Req -> Isa.C_eq | Ir.Rne -> Isa.C_ne | Ir.Rlt -> Isa.C_lt
  | Ir.Rle -> Isa.C_le | Ir.Rgt -> Isa.C_gt | Ir.Rge -> Isa.C_ge
  | Ir.Rltu -> Isa.C_ltu | Ir.Rleu -> Isa.C_leu | Ir.Rgtu -> Isa.C_gtu
  | Ir.Rgeu -> Isa.C_geu

let size_of = function Ir.I8 -> Isa.M_byte | Ir.I16 -> Isa.M_half | Ir.I32 -> Isa.M_word

(* Scratch registers usable for an instruction: the destination register
   first (when it is not read by any source and the instruction is
   unguarded — a guarded instruction must not clobber its destination
   during unconditional literal materialisation), then the codegen
   scratch. *)
let scratches_for ?dst ~guard ~reads () =
  let base = [ reg_rv ] in
  match dst with
  | Some d
    when guard = 0 && (not (List.exists (fun r -> r = d) reads)) && d <> reg_rv ->
    d :: base
  | _ -> base

let operand_reads (ops : Ir.operand list) =
  List.filter_map (function Ir.Reg r -> Some r | Ir.Imm _ -> None) ops

(* The word-scaled store offset field: EA = base + dst1 * size. *)
let store_offset_limit cfg = (1 lsl cfg.Config.dst_bits) - 1

let emit_store_frame ctx off value_reg guard =
  let g = guard in
  if off mod 4 = 0 && off / 4 <= store_offset_limit ctx.cfg then
    emit_op ctx (Isa.ST Isa.M_word) ~d1:(off / 4) ~s1:(A.Reg reg_sp)
      ~s2:(A.Reg value_reg) ~g ()
  else begin
    if not (fits_literal ctx.cfg off) then fail "frame offset %d too large" off;
    (* The address computation is unconditional; only the store commits
       under the guard. *)
    emit_op ctx Isa.ADD ~d1:reg_rv ~s1:(A.Reg reg_sp) ~s2:(A.Imm off) ();
    emit_op ctx (Isa.ST Isa.M_word) ~s1:(A.Reg reg_rv) ~s2:(A.Reg value_reg) ~g ()
  end

let emit_inst ctx (i : Ir.inst) =
  let g = guard_field ctx i.Ir.guard in
  match i.Ir.kind with
  | Ir.Bin (op, d, a, b) ->
    (match fold2 ctx.cfg a b with
     | Some (x, y)
       when not ((op = Ir.Div || op = Ir.Rem) && y land 0xFFFFFFFF = 0) ->
       emit_const ctx ~g d (Epic_mir.Interp.eval_binop op x y)
     | _ ->
       let scratch = ref (scratches_for ~dst:d ~guard:g ~reads:(operand_reads [ a; b ]) ()) in
       let s1 = src_of ctx ~scratch a in
       let s2 = src_of ctx ~scratch b in
       emit_op ctx (binop_op op) ~d1:d ~s1 ~s2 ~g ())
  | Ir.Mov (d, Ir.Imm v) -> emit_const ctx ~g d v
  | Ir.Mov (d, Ir.Reg r) -> emit_op ctx Isa.MOV ~d1:d ~s1:(A.Reg r) ~g ()
  | Ir.Cmp (rel, d, a, b) ->
    (* A guarded-off Cmp would leave the scratch pair stale while the
       value moves still fire; hardware guards cannot express the needed
       conjunction, so if-conversion never guards Cmp. *)
    if g <> 0 then fail "guarded compare-to-value is not supported";
    (match fold2 ctx.cfg a b with
     | Some (x, y) ->
       emit_op ctx Isa.MOV ~d1:d
         ~s1:(A.Imm (if Epic_mir.Interp.eval_relop rel x y then 1 else 0)) ()
     | None ->
       let scratch = ref (scratches_for ~dst:d ~guard:g ~reads:(operand_reads [ a; b ]) ()) in
       let s1 = src_of ctx ~scratch a in
       let s2 = src_of ctx ~scratch b in
       let pt, pf = alloc_pred_pair ctx in
       emit_op ctx (Isa.CMPP (cond_of_relop rel)) ~d1:pt ~d2:pf ~s1 ~s2 ();
       emit_op ctx Isa.MOV ~d1:d ~s1:(A.Imm 0) ~g:pf ();
       emit_op ctx Isa.MOV ~d1:d ~s1:(A.Imm 1) ~g:pt ();
       release_pred_pair ctx (pt, pf))
  | Ir.Setp (rel, q, a, b) ->
    if g <> 0 then fail "guarded setp is not supported";
    (match fold2 ctx.cfg a b with
     | Some (x, y) ->
       (* The statically-known truth value, expressed as a comparison
          that needs no literals: EQ 0,0 sets the pair true, NE 0,0
          false. *)
       let rel' =
         if Epic_mir.Interp.eval_relop rel x y then Ir.Req else Ir.Rne
       in
       let pt, pf = pred_pair ctx q in
       emit_op ctx (Isa.CMPP (cond_of_relop rel')) ~d1:pt ~d2:pf
         ~s1:(A.Imm 0) ~s2:(A.Imm 0) ()
     | None ->
       let scratch = ref (scratches_for ~guard:g ~reads:(operand_reads [ a; b ]) ()) in
       let s1 = src_of ctx ~scratch a in
       let s2 = src_of ctx ~scratch b in
       let pt, pf = pred_pair ctx q in
       emit_op ctx (Isa.CMPP (cond_of_relop rel)) ~d1:pt ~d2:pf ~s1 ~s2 ())
  | Ir.Custom (name, d, a, b) ->
    let scratch = ref (scratches_for ~dst:d ~guard:g ~reads:(operand_reads [ a; b ]) ()) in
    let s1 = src_of ctx ~scratch a in
    let s2 = src_of ctx ~scratch b in
    emit_op ctx (Isa.CUSTOM name) ~d1:d ~s1 ~s2 ~g ()
  | Ir.Load (sz, ext, d, base, off) ->
    let scratch = ref (scratches_for ~dst:d ~guard:g ~reads:(operand_reads [ base; off ]) ()) in
    let s1 = src_of ctx ~scratch base in
    let s2 = src_of ctx ~scratch off in
    let op = match ext with Ir.Sx -> Isa.LD (size_of sz) | Ir.Zx -> Isa.LDU (size_of sz) in
    emit_op ctx op ~d1:d ~s1 ~s2 ~g ()
  | Ir.Store (sz, addr, v) ->
    let scratch = ref [ reg_rv ] in
    let s1 = src_of ctx ~scratch addr in
    let s2 = src_of ctx ~scratch v in
    emit_op ctx (Isa.ST (size_of sz)) ~s1 ~s2 ~g ()
  | Ir.Call (d, fname, args) ->
    if g <> 0 then fail "guarded calls are not supported";
    if List.length args > max_args then
      fail "%s passes %d arguments; the convention supports %d" fname
        (List.length args) max_args;
    List.iteri
      (fun k arg ->
        let dst = reg_arg0 + k in
        match (arg : Ir.operand) with
        | Ir.Reg r -> emit_op ctx Isa.MOV ~d1:dst ~s1:(A.Reg r) ()
        | Ir.Imm v -> emit_const ctx dst v)
      args;
    let b = alloc_btr ctx in
    emit_op ctx Isa.PBRR ~d1:b ~s1:(A.Lab fname) ();
    emit_op ctx Isa.BRL ~d1:reg_ra ~s1:(A.Imm b) ();
    (match d with
     | Some d -> emit_op ctx Isa.MOV ~d1:d ~s1:(A.Reg reg_rv) ()
     | None -> ())
  | Ir.AddrOf (d, gname) -> emit_const ctx ~g d (Memmap.addr_of ctx.layout gname)
  | Ir.FrameAddr (d, off) ->
    if fits_literal ctx.cfg off then
      emit_op ctx Isa.ADD ~d1:d ~s1:(A.Reg reg_sp) ~s2:(A.Imm off) ~g ()
    else begin
      if g <> 0 then fail "guarded large frame address unsupported";
      emit_const ctx d off;
      emit_op ctx Isa.ADD ~d1:d ~s1:(A.Reg reg_sp) ~s2:(A.Reg d) ()
    end
  | Ir.LoadFrame (d, off) ->
    if not (fits_literal ctx.cfg off) then fail "frame offset %d too large" off;
    emit_op ctx (Isa.LDU Isa.M_word) ~d1:d ~s1:(A.Reg reg_sp) ~s2:(A.Imm off) ~g ()
  | Ir.StoreFrame (off, r) -> emit_store_frame ctx off r g

(* ------------------------------------------------------------------ *)
(* Function assembly *)

let block_label fname id = Printf.sprintf ".L%s_%d" fname id

let align8 v = (v + 7) land lnot 7

let rebase_frame_offsets (f : Ir.func) delta =
  if delta <> 0 then
    List.iter
      (fun (b : Ir.block) ->
        b.Ir.b_insts <-
          List.map
            (fun (i : Ir.inst) ->
              let kind =
                match i.Ir.kind with
                | Ir.FrameAddr (d, off) -> Ir.FrameAddr (d, off + delta)
                | Ir.LoadFrame (d, off) -> Ir.LoadFrame (d, off + delta)
                | Ir.StoreFrame (off, r) -> Ir.StoreFrame (off + delta, r)
                | k -> k
              in
              { i with Ir.kind })
            b.Ir.b_insts)
      f.Ir.f_blocks

let gen_func (cfg : Config.t) layout (f : Ir.func) =
  if List.length f.Ir.f_params > max_args then
    fail "%s takes %d parameters; the convention supports %d" f.Ir.f_name
      (List.length f.Ir.f_params) max_args;
  let pool = List.init (cfg.Config.n_gprs - pool_base) (fun k -> pool_base + k) in
  if List.length pool < 5 then
    fail "configuration has too few GPRs (%d) for code generation" cfg.Config.n_gprs;
  let ra = Regalloc.allocate f ~pool in
  let body = ra.Regalloc.fn in
  let makes_calls =
    List.exists
      (fun (b : Ir.block) ->
        List.exists
          (fun (i : Ir.inst) -> match i.Ir.kind with Ir.Call _ -> true | _ -> false)
          b.Ir.b_insts)
      body.Ir.f_blocks
  in
  (* Callee-save area sits at the bottom of the frame (small STW offsets);
     locals and spill slots above it. *)
  let saves = (if makes_calls then [ reg_ra ] else []) @ ra.Regalloc.used_regs in
  let save_bytes = 4 * List.length saves in
  rebase_frame_offsets body save_bytes;
  let frame_total = align8 (save_bytes + body.Ir.f_frame_bytes) in
  if not (fits_literal cfg frame_total) then
    fail "%s needs a %d-byte frame, beyond the literal range" f.Ir.f_name frame_total;
  (* Predicates whose live range crosses a block boundary: mentioned in
     two or more blocks, or first mentioned in some block as a guard
     (the value then flows in from another block, e.g. around a loop).
     These are pinned to fixed pairs at the top of the predicate file;
     the per-block allocator works strictly below them. *)
  let fixed_preds, pred_limit =
    let info : (int, int * bool) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (b : Ir.block) ->
        let seen = Hashtbl.create 4 in
        let mention q ~use =
          if q <> 0 && not (Hashtbl.mem seen q) then begin
            Hashtbl.replace seen q ();
            let n, u = Option.value ~default:(0, false) (Hashtbl.find_opt info q) in
            Hashtbl.replace info q (n + 1, u || use)
          end
        in
        List.iter
          (fun (i : Ir.inst) ->
            (match i.Ir.guard with
             | Some g -> mention g.Ir.g_reg ~use:true
             | None -> ());
            match i.Ir.kind with
            | Ir.Setp (_, q, _, _) -> mention q ~use:false
            | _ -> ())
          b.Ir.b_insts)
      body.Ir.f_blocks;
    let cross =
      Hashtbl.fold
        (fun q (n, use) acc -> if n >= 2 || use then q :: acc else acc)
        info []
      |> List.sort compare
    in
    let top = ref cfg.Config.n_preds in
    let pairs =
      List.map
        (fun q ->
          if !top - 2 < 1 then
            fail "%s needs more than %d predicate registers for its \
                  cross-block predicates; increase n_preds"
              f.Ir.f_name cfg.Config.n_preds;
          top := !top - 2;
          (q, (!top, !top + 1)))
        cross
    in
    (pairs, !top)
  in
  let mkctx () =
    let pred_map = Hashtbl.create 8 in
    List.iter (fun (q, pair) -> Hashtbl.replace pred_map q pair) fixed_preds;
    { cfg; layout; out = []; next_pred = 1; free_pairs = []; next_btr = 0;
      pred_map; pred_limit; fixed_preds }
  in
  (* Prologue block. *)
  let pro = mkctx () in
  if frame_total > 0 then
    emit_op pro Isa.SUB ~d1:reg_sp ~s1:(A.Reg reg_sp) ~s2:(A.Imm frame_total) ();
  List.iteri
    (fun k r ->
      emit_op pro (Isa.ST Isa.M_word) ~d1:k ~s1:(A.Reg reg_sp) ~s2:(A.Reg r) ())
    saves;
  List.iteri
    (fun k loc ->
      let arg = reg_arg0 + k in
      match (loc : Regalloc.location option) with
      | Some (Regalloc.Lreg p) ->
        if p <> arg then emit_op pro Isa.MOV ~d1:p ~s1:(A.Reg arg) ()
      | Some (Regalloc.Lslot off) -> emit_store_frame pro (off + save_bytes) arg 0
      | None -> ())
    ra.Regalloc.param_locs;
  let epilogue ctx =
    List.iteri
      (fun k r ->
        emit_op ctx (Isa.LDU Isa.M_word) ~d1:r ~s1:(A.Reg reg_sp) ~s2:(A.Imm (4 * k)) ())
      saves;
    if frame_total > 0 then
      emit_op ctx Isa.ADD ~d1:reg_sp ~s1:(A.Reg reg_sp) ~s2:(A.Imm frame_total) ();
    let b = alloc_btr ctx in
    emit_op ctx Isa.PBRR ~d1:b ~s1:(A.Reg reg_ra) ();
    emit_op ctx Isa.BRU_ ~s1:(A.Imm b) ()
  in
  (* Body blocks in layout order; fall-through branches are omitted. *)
  let order = List.map (fun (b : Ir.block) -> b.Ir.b_id) body.Ir.f_blocks in
  let next_of =
    let rec pairs = function
      | a :: (b :: _ as rest) -> (a, Some b) :: pairs rest
      | [ a ] -> [ (a, None) ]
      | [] -> []
    in
    pairs order
  in
  let gen_block (b : Ir.block) =
    let ctx = mkctx () in
    (* Last mention (definition or guard use) of each MIR predicate, for
       pair recycling. *)
    let last_use = Hashtbl.create 8 in
    List.iteri
      (fun k (i : Ir.inst) ->
        (match i.Ir.kind with
         | Ir.Setp (_, q, _, _) -> Hashtbl.replace last_use q k
         | _ -> ());
        match i.Ir.guard with
        | Some g -> Hashtbl.replace last_use g.Ir.g_reg k
        | None -> ())
      b.Ir.b_insts;
    List.iteri
      (fun k (i : Ir.inst) ->
        emit_inst ctx i;
        let dead q = Hashtbl.find_opt last_use q = Some k in
        (match i.Ir.kind with
         | Ir.Setp (_, q, _, _) when dead q -> release_mir_pred ctx q
         | _ -> ());
        match i.Ir.guard with
        | Some g when dead g.Ir.g_reg -> release_mir_pred ctx g.Ir.g_reg
        | _ -> ())
      b.Ir.b_insts;
    let next = List.assoc b.Ir.b_id next_of in
    (match b.Ir.b_term with
     | Ir.Ret o ->
       (match o with
        | Some (Ir.Reg r) -> if r <> reg_rv then emit_op ctx Isa.MOV ~d1:reg_rv ~s1:(A.Reg r) ()
        | Some (Ir.Imm v) -> emit_const ctx reg_rv v
        | None -> emit_op ctx Isa.MOV ~d1:reg_rv ~s1:(A.Imm 0) ());
       epilogue ctx
     | Ir.Jmp l ->
       if next <> Some l then begin
         let bt = alloc_btr ctx in
         emit_op ctx Isa.PBRR ~d1:bt ~s1:(A.Lab (block_label f.Ir.f_name l)) ();
         emit_op ctx Isa.BRU_ ~s1:(A.Imm bt) ()
       end
     | Ir.Br (rel, x, y, lt, lf) ->
       (match fold2 ctx.cfg x y with
        | Some (a, b) ->
          (* Statically decided branch: the Br arm has a single scratch
             register, which cannot materialise two oversized literals,
             but it never needs to. *)
          let l = if Epic_mir.Interp.eval_relop rel a b then lt else lf in
          if next <> Some l then begin
            let bt = alloc_btr ctx in
            emit_op ctx Isa.PBRR ~d1:bt ~s1:(A.Lab (block_label f.Ir.f_name l)) ();
            emit_op ctx Isa.BRU_ ~s1:(A.Imm bt) ()
          end
        | None ->
          let scratch = ref [ reg_rv ] in
          let s1 = src_of ctx ~scratch x in
          let s2 = src_of ctx ~scratch y in
          let pt, pf = alloc_pred_pair ctx in
          emit_op ctx (Isa.CMPP (cond_of_relop rel)) ~d1:pt ~d2:pf ~s1 ~s2 ();
          let branch_to cond_pred target =
            let bt = alloc_btr ctx in
            emit_op ctx Isa.PBRR ~d1:bt ~s1:(A.Lab (block_label f.Ir.f_name target)) ();
            emit_op ctx Isa.BRCT ~s1:(A.Imm bt) ~s2:(A.Imm cond_pred) ()
          in
          if next = Some lf then branch_to pt lt
          else if next = Some lt then branch_to pf lf
          else begin
            branch_to pt lt;
            let bt = alloc_btr ctx in
            emit_op ctx Isa.PBRR ~d1:bt ~s1:(A.Lab (block_label f.Ir.f_name lf)) ();
            emit_op ctx Isa.BRU_ ~s1:(A.Imm bt) ()
          end));
    { cb_label = block_label f.Ir.f_name b.Ir.b_id; cb_insts = List.rev ctx.out }
  in
  (* The prologue falls through into the entry block, which keeps loops
     whose header is the entry block from re-running it. *)
  let pro_block = { cb_label = f.Ir.f_name; cb_insts = List.rev pro.out } in
  { cf_name = f.Ir.f_name; cf_blocks = pro_block :: List.map gen_block body.Ir.f_blocks }

(* The startup stub: set up the stack, call main, halt. *)
let gen_start (cfg : Config.t) (layout : Memmap.t) =
  let ctx =
    { cfg; layout; out = []; next_pred = 1; free_pairs = []; next_btr = 0;
      pred_map = Hashtbl.create 1; pred_limit = cfg.Config.n_preds;
      fixed_preds = [] }
  in
  emit_const ctx reg_sp layout.Memmap.stack_top;
  emit_op ctx Isa.PBRR ~d1:0 ~s1:(A.Lab "main") ();
  emit_op ctx Isa.BRL ~d1:reg_ra ~s1:(A.Imm 0) ();
  emit_op ctx Isa.HALT ();
  { cf_name = "_start"; cf_blocks = [ { cb_label = "_start"; cb_insts = List.rev ctx.out } ] }

let gen_program (cfg : Config.t) (layout : Memmap.t) (p : Ir.program) =
  if Ir.find_func p "main" = None then fail "program has no main function";
  gen_start cfg layout
  :: List.map (gen_func cfg layout) p.Ir.p_funcs
