(* Cycle-approximate simulator for the ARM-like baseline, standing in for
   SimIt-ARM's model of the StrongARM SA-110 (5-stage, single-issue,
   in-order):

   - 1 cycle per instruction issued;
   - MUL: 2 extra cycles (the SA-110 multiplier takes 1-3 depending on
     the operand; we charge the middle);
   - loads: the result is available one cycle later; a consumer in the
     next cycle stalls one cycle (load-use interlock);
   - taken branches (including BL/BX): 2 refill cycles (the SA-110
     fetches straight-line speculatively);
   - caches are assumed to always hit, which is GENEROUS to the baseline:
     the EPIC prototype runs without caches from banked memory.

   Flags are modelled as the operand pair of the last CMP. *)

module I = Arm_isa
module Memmap = Epic_mir.Memmap
module Word = Epic_isa.Word

exception Sim_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Sim_error s)) fmt

type stats = {
  mutable cycles : int;
  mutable insts : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable taken_branches : int;
  mutable load_use_stalls : int;
  mutable muls : int;
}

type result = { ret : int; stats : stats; mem : Bytes.t }

let m32 v = v land 0xFFFFFFFF

let mul_extra_cycles = 2
let taken_branch_penalty = 2

let run ?(fuel = 2_000_000_000) (prog : I.program) ~(mem : Bytes.t) () =
  let items = Array.of_list prog in
  (* Flatten: labels -> instruction index. *)
  let labels = Hashtbl.create 64 in
  let insts = ref [] in
  let count = ref 0 in
  Array.iter
    (function
      | I.Label l ->
        if Hashtbl.mem labels l then fail "duplicate label %s" l;
        Hashtbl.replace labels l !count
      | I.Inst i ->
        insts := i :: !insts;
        incr count)
    items;
  let insts = Array.of_list (List.rev !insts) in
  let target l =
    match Hashtbl.find_opt labels l with
    | Some t -> t
    | None -> fail "undefined label %s" l
  in
  let entry = target "_start" in
  let regs = Array.make I.n_regs 0 in
  let ready = Array.make I.n_regs 0 in
  let flags = ref (0, 0) in
  let st = { cycles = 0; insts = 0; loads = 0; stores = 0; branches = 0;
             taken_branches = 0; load_use_stalls = 0; muls = 0 } in
  let mem_len = Bytes.length mem in
  let check_addr a n = if a < 0 || a + n > mem_len then fail "address %#x out of bounds" a in
  let pc = ref entry in
  let halted = ref false in
  let ret = ref 0 in
  let cond_holds c =
    let a, b = !flags in
    let sa = Word.to_signed 32 a and sb = Word.to_signed 32 b in
    match (c : I.cond) with
    | I.Ceq -> a = b
    | I.Cne -> a <> b
    | I.Clt -> sa < sb
    | I.Cle -> sa <= sb
    | I.Cgt -> sa > sb
    | I.Cge -> sa >= sb
    | I.Cltu -> a < b
    | I.Cleu -> a <= b
    | I.Cgtu -> a > b
    | I.Cgeu -> a >= b
  in
  while not !halted do
    if st.cycles > fuel then fail "out of fuel after %d cycles" st.cycles;
    if !pc < 0 || !pc >= Array.length insts then fail "PC %d outside code" !pc;
    let i = insts.(!pc) in
    let now = st.cycles in
    (* Load-use interlock: reading a register before its load completes. *)
    let read r =
      if ready.(r) > now then begin
        let stall = ready.(r) - now in
        st.load_use_stalls <- st.load_use_stalls + stall;
        st.cycles <- st.cycles + stall
      end;
      regs.(r)
    in
    let op2v = function I.Rop r -> read r | I.Iop v -> m32 v in
    let write r v = regs.(r) <- m32 v; ready.(r) <- 0 in
    st.insts <- st.insts + 1;
    let next = ref (!pc + 1) in
    (match i with
     | I.Alu (op, rd, rn, o2) ->
       let a = read rn in
       let b = op2v o2 in
       let v =
         let sa = Word.to_signed 32 a in
         match op with
         | I.Aadd -> a + b
         | I.Asub -> a - b
         | I.Arsb -> b - a
         | I.Amul ->
           st.muls <- st.muls + 1;
           st.cycles <- st.cycles + mul_extra_cycles;
           a * b
         | I.Aand -> a land b
         | I.Aorr -> a lor b
         | I.Aeor -> a lxor b
         | I.Abic -> a land lnot b
         | I.Alsl -> if b >= 32 then 0 else a lsl b
         | I.Alsr -> if b >= 32 then 0 else a lsr b
         | I.Aasr -> Word.of_signed 32 (sa asr min b 31)
       in
       write rd v
     | I.Mov (rd, o2) -> write rd (op2v o2)
     | I.Mvn (rd, o2) -> write rd (lnot (op2v o2))
     | I.Cmp (rn, o2) ->
       let a = read rn in
       let b = op2v o2 in
       flags := (a, b)
     | I.CondMov (c, rd, o2) ->
       let v = op2v o2 in
       if cond_holds c then write rd v
     | I.Ldr (sz, ext, rd, rn, o2) ->
       let a = m32 (read rn + op2v o2) in
       let size = match sz with I.S8 -> Epic_mir.Ir.I8 | I.S16 -> Epic_mir.Ir.I16 | I.S32 -> Epic_mir.Ir.I32 in
       check_addr a (match sz with I.S8 -> 1 | I.S16 -> 2 | I.S32 -> 4);
       st.loads <- st.loads + 1;
       let v = Memmap.read ~size
           ~ext:(match ext with I.Xs -> Epic_mir.Ir.Sx | I.Xz -> Epic_mir.Ir.Zx) mem a
       in
       regs.(rd) <- m32 v;
       (* Result usable the cycle after next (1-cycle load-use penalty). *)
       ready.(rd) <- st.cycles + 2
     | I.Str (sz, rs, rn, o2) ->
       let a = m32 (read rn + op2v o2) in
       check_addr a (match sz with I.S8 -> 1 | I.S16 -> 2 | I.S32 -> 4);
       st.stores <- st.stores + 1;
       let size = match sz with I.S8 -> Epic_mir.Ir.I8 | I.S16 -> Epic_mir.Ir.I16 | I.S32 -> Epic_mir.Ir.I32 in
       Memmap.write ~size mem a (read rs)
     | I.B l ->
       st.branches <- st.branches + 1;
       st.taken_branches <- st.taken_branches + 1;
       st.cycles <- st.cycles + taken_branch_penalty;
       next := target l
     | I.Bc (c, l) ->
       st.branches <- st.branches + 1;
       if cond_holds c then begin
         st.taken_branches <- st.taken_branches + 1;
         st.cycles <- st.cycles + taken_branch_penalty;
         next := target l
       end
     | I.Bl l ->
       st.branches <- st.branches + 1;
       st.taken_branches <- st.taken_branches + 1;
       st.cycles <- st.cycles + taken_branch_penalty;
       write I.reg_lr (!pc + 1);
       next := target l
     | I.Bx r ->
       st.branches <- st.branches + 1;
       st.taken_branches <- st.taken_branches + 1;
       st.cycles <- st.cycles + taken_branch_penalty;
       next := read r
     | I.Halt ->
       halted := true;
       ret := regs.(I.reg_rv));
    st.cycles <- st.cycles + 1;
    pc := !next
  done;
  { ret = !ret; stats = st; mem }

let pp_stats ppf st =
  Format.fprintf ppf
    "@[<v>cycles          %d@,instructions    %d@,loads/stores    %d/%d@,\
     branches        %d (%d taken)@,load-use stalls %d@,multiplies      %d@]"
    st.cycles st.insts st.loads st.stores st.branches st.taken_branches
    st.load_use_stalls st.muls
