lib/opt/simplify.ml: Common Epic_mir Hashtbl List
