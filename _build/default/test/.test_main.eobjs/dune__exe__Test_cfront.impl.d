test/test_cfront.ml: Alcotest Array Epic List Printf QCheck QCheck_alcotest String Test
