(** Structured diagnostics for the EPIC toolchain.

    A user mistake — an inconsistent configuration header, an operand that
    does not fit the instruction format, an undefined assembly label — is
    reported as a {!t}: a stable machine-readable code, a human-readable
    message, and key/value context.  The command-line tools render each
    diagnostic as one line and exit non-zero; nothing user-facing should
    escape as a bare [Failure] backtrace. *)

type t = {
  code : string;
      (** Stable machine-readable identifier, [area/condition] form
          (e.g. ["config/gprs-dst-field"], ["enc/literal-range"]). *)
  message : string;     (** Human-readable, single line. *)
  context : (string * string) list;
      (** Key/value details (parameter values, indices, operation names). *)
}

exception Error of t
(** Shared carrier for raise-style APIs built on diagnostics. *)

val v : ?context:(string * string) list -> code:string -> string -> t

val errorf :
  ?context:(string * string) list -> code:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a
(** Build a diagnostic with a formatted message. *)

val raisef :
  ?context:(string * string) list -> code:string ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Like {!errorf} but raises {!Error}. *)

val add_context : (string * string) list -> t -> t
(** Prepend context entries (used when wrapping a lower-level diagnostic). *)

val to_string : t -> string
(** One line: [code: message [k=v, ...]]. *)

val pp : Format.formatter -> t -> unit

val to_string_list : t list -> string
(** All diagnostics joined with ["; "] — for exception payloads that can
    only carry one string. *)
