(** Cycle-level simulator of the customisable EPIC processor — the
    ReaCT-ILP role in the paper's Trimaran flow ("the number of cycles
    taken by our EPIC design is measured by ... a cycle-level simulator",
    Section 5.2).

    Modelled microarchitecture (paper Sections 3.2–3.3):
    - pipeline of {!Epic_config.t.pipeline_stages} stages (the paper's
      prototype: 2 — Fetch/Decode/Issue then Execute/Write-back); a taken
      branch costs [stages - 1] refill bubbles;
    - in-order issue of one bundle (up to [issue_width] operations) per
      cycle; the whole bundle stalls until every source operand is ready
      (scoreboard interlock, so a mis-scheduled program is slow, never
      wrong);
    - register-file controller: at most [rf_port_budget] GPR reads+writes
      per processor cycle (dual-port block RAM clocked at 4x); exceeding
      the budget stalls for the extra controller rounds; with forwarding
      enabled, a value consumed exactly the cycle it becomes available
      bypasses the register file and costs no port;
    - predication: a false guard nullifies the operation (counted in
      [squashed]);
    - branch-target registers written by PBRR and read by branches; code
      addresses are bundle indices;
    - r0 and p0 hardwired; registers hold canonical [width]-bit values;
      memory is the shared big-endian byte memory of {!Epic_mir.Memmap}. *)

exception Sim_error of string
(** Out-of-range memory access, bad PC, malformed operand, or fuel
    exhaustion. *)

type stats = {
  mutable cycles : int;
  mutable bundles : int;        (** Bundles issued (excludes stall cycles). *)
  mutable ops : int;            (** Non-NOP operations issued (incl. squashed). *)
  mutable nops : int;           (** NOP slots fetched (assembler padding). *)
  mutable squashed : int;       (** Operations nullified by a false guard. *)
  mutable operand_stalls : int; (** Cycles lost to scoreboard interlocks. *)
  mutable port_stalls : int;    (** Cycles lost to the register-port budget. *)
  mutable branch_bubbles : int; (** Pipeline refill cycles after taken branches. *)
  mutable mem_reads : int;
  mutable mem_writes : int;
  mutable alu_ops : int;
  mutable lsu_ops : int;
  mutable cmpu_ops : int;
  mutable bru_ops : int;
}

type result = {
  ret : int;          (** r3 at HALT (the calling convention's return value). *)
  stats : stats;
  mem : Bytes.t;      (** Final data memory (same buffer as passed in). *)
  gprs : int array;   (** Final architectural register file. *)
}

val ilp : stats -> float
(** Issued operations per cycle. *)

(** {1 Structured event stream}

    The profiling hook ({!Epic_profile} is the main consumer).  When
    {!run} is given a [sink], it emits one {!event} per issued bundle and
    one per stall, in simulated-time order.  The stream is conservative:
    every simulated cycle is covered by exactly one event (an issue costs
    one cycle; a stall event carries its cycle count), so summing over
    events recovers [stats.cycles] exactly.  Without a sink the simulator
    takes the exact same path as before — cycle counts are unchanged. *)

type stall_cause =
  | S_operand  (** Scoreboard interlock: a source operand not yet ready. *)
  | S_port     (** Register-file port budget exceeded. *)
  | S_branch   (** Pipeline refill bubbles after a taken branch. *)

type slot =
  | Sl_empty                   (** NOP padding slot. *)
  | Sl_op of Epic_isa.opcode   (** Issued and executed. *)
  | Sl_squashed of Epic_isa.opcode  (** Nullified by a false guard. *)
  | Sl_shadowed of Epic_isa.opcode
      (** Skipped: an earlier slot of the bundle took a branch. *)

type event =
  | Ev_stall of { at : int; pc : int; cause : stall_cause; cycles : int }
  | Ev_issue of {
      at : int;            (** Cycle the bundle issued. *)
      pc : int;            (** Bundle index. *)
      slots : slot array;  (** One entry per issue slot. *)
      next_pc : int;       (** Bundle executing next. *)
      taken : bool;        (** A branch (or HALT) redirected the flow. *)
    }

val string_of_stall_cause : stall_cause -> string

val run :
  ?fuel:int ->
  ?trace:Format.formatter ->
  ?sink:(event -> unit) ->
  Epic_config.t ->
  image:Epic_asm.Aunit.image ->
  mem:Bytes.t ->
  ?entry:int ->
  unit ->
  result
(** Execute an assembled image until HALT.  [fuel] bounds simulated cycles
    (default 5*10^8); [trace] prints one line per issued bundle (cycle,
    PC, live operations, squashed ones bracketed); [sink] receives the
    structured event stream (see above; no overhead when absent); [entry]
    is the starting bundle index (default 0, where the toolchain places
    [_start]).
    @raise Sim_error on faults. *)

val pp_stats : Format.formatter -> stats -> unit
