lib/asm/aunit.ml: Array Epic_config Epic_encoding Epic_isa Format List
