(** Machine description — the HMDES role in the paper's Trimaran flow.

    The scheduler never reads the configuration directly: it consumes a
    machine description derived from it ("processor organisation
    information, including number of functional units, instruction issues
    per cycle and functionality of each module, is captured in the machine
    description language HMDES and serves as an input to elcor", paper
    Section 4.1).  Retargeting the compiler to a customised processor
    therefore only means regenerating this value; no tool is recompiled.

    The textual form (HMDES-flavoured [SECTION] syntax) prints and parses
    back losslessly, so descriptions can be stored beside a design:

    {v
    SECTION Resource {
      ALU(count(4)); LSU(count(1)); CMPU(count(1)); BRU(count(1));
      ISSUE(count(4)); RFPORT(count(8)); FORWARD(count(1));
    }
    SECTION Operation {
      ADD(unit(ALU) latency(1));
      MPY(unit(ALU) latency(3));
      ...
    }
    v} *)

type op_entry = {
  oe_op : Epic_isa.opcode;
  oe_unit : Epic_isa.unit_class;
  oe_latency : int;  (** Producer-to-consumer distance in cycles. *)
}

type t = {
  md_name : string;
  md_alus : int;
  md_lsus : int;
  md_cmpus : int;
  md_brus : int;
  md_issue_width : int;
  md_rf_port_budget : int;
  md_forwarding : bool;
      (** Whether the register-file controller forwards results consumed
          the cycle they become available; the scheduler then stops
          charging ports for such reads. *)
  md_ops : op_entry list;  (** The operations this datapath implements. *)
}

val of_config : ?name:string -> Epic_config.t -> t
(** Derive the description for a configuration (base operations minus
    [alu_omit], plus its custom operations, with its latencies). *)

val unit_count : t -> Epic_isa.unit_class -> int
val find_op : t -> Epic_isa.opcode -> op_entry option

val latency : t -> Epic_isa.opcode -> int
(** Falls back to {!Epic_isa.default_latency} for unlisted operations. *)

val op_supported : t -> Epic_isa.opcode -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

exception Parse_error of string

val parse : string -> t
(** Parse the textual form. @raise Parse_error on malformed input;
    unlisted resources default (1 unit each, 8 ports, forwarding on). *)

val of_string : string -> (t, string) result
(** Exception-free wrapper around {!parse}. *)

val equal : t -> t -> bool
