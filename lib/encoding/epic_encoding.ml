module Isa = Epic_isa
module Config = Epic_config
module Diag = Epic_diag

exception Encode_error of Diag.t

let fail ?ctx code fmt =
  Format.kasprintf
    (fun s -> raise (Encode_error (Diag.v ?context:ctx ~code s)))
    fmt

(* Marker opcode produced when decoding a word whose opcode bit pattern is
   unassigned: decoding is total, and the simulator turns the marker into an
   illegal-operation trap instead of the decoder raising. *)
let illegal_prefix = "ILLEGAL:"

let illegal_opcode code = Isa.CUSTOM (Printf.sprintf "%s%#x" illegal_prefix code)

let is_illegal (op : Isa.opcode) =
  match op with
  | Isa.CUSTOM name ->
    String.length name >= String.length illegal_prefix
    && String.sub name 0 (String.length illegal_prefix) = illegal_prefix
  | _ -> false

type table = {
  forward : (Isa.opcode * int) list;
  backward : (int, Isa.opcode) Hashtbl.t;
}

(* Class tags placed in the top two bits of the opcode field.  NOP shares
   the ALU tag with in-class index 0 so that the all-zero word is a NOP. *)
let class_tag (op : Isa.opcode) =
  match Isa.unit_of op with
  | Isa.U_none | Isa.U_alu -> 0
  | Isa.U_lsu -> 1
  | Isa.U_cmpu -> 2
  | Isa.U_bru -> 3

let make_table (cfg : Config.t) =
  let ops =
    Isa.NOP
    :: List.filter (fun o -> not (Isa.equal_opcode o Isa.NOP)) Isa.all_base_opcodes
    @ List.map (fun c -> Isa.CUSTOM c.Config.cop_name) cfg.Config.custom_ops
  in
  let shift = cfg.Config.opcode_bits - 2 in
  let counters = Array.make 4 0 in
  let forward =
    List.map
      (fun op ->
        let tag = class_tag op in
        let index = counters.(tag) in
        counters.(tag) <- index + 1;
        if index >= 1 lsl shift then
          fail "enc/opcode-space"
            ~ctx:[ ("opcode_bits", string_of_int cfg.Config.opcode_bits) ]
            "opcode field too narrow for instruction set";
        (op, (tag lsl shift) lor index))
      ops
  in
  let backward = Hashtbl.create 64 in
  List.iter (fun (op, code) -> Hashtbl.replace backward code op) forward;
  { forward; backward }

let code_of_opcode t op =
  List.find_map (fun (o, c) -> if Isa.equal_opcode o op then Some c else None) t.forward

let opcode_of_code t code = Hashtbl.find_opt t.backward code

let all_codes t = t.forward

let literal_fits (cfg : Config.t) v =
  let payload = cfg.Config.src_bits - 1 in
  v >= -(1 lsl (payload - 1)) && v < 1 lsl (payload - 1)

(* Which fields are architecturally meaningful for an opcode.  [Dimm] is
   a destination field reused as a small immediate (the store offset). *)
type dst_usage = Dreg of Isa.regfile | Dimm | Dnone

type field_usage = {
  u_dst1 : dst_usage;
  u_dst2 : dst_usage;
  u_src1 : bool;
  u_src2 : bool;
}

let usage (op : Isa.opcode) =
  let d1, d2 =
    match op with
    | Isa.ADD | Isa.SUB | Isa.MPY | Isa.DIV | Isa.REM | Isa.MIN | Isa.MAX
    | Isa.ABS | Isa.AND | Isa.OR | Isa.XOR | Isa.ANDCM | Isa.NAND | Isa.NOR
    | Isa.SHL | Isa.SHR | Isa.SHRA | Isa.MOV | Isa.CUSTOM _
    | Isa.LD _ | Isa.LDU _ | Isa.BRL -> (Dreg Isa.R_gpr, Dnone)
    | Isa.CMPP _ -> (Dreg Isa.R_pred, Dreg Isa.R_pred)
    | Isa.PBRR -> (Dreg Isa.R_btr, Dnone)
    | Isa.ST _ -> (Dimm, Dnone)
    | Isa.BRU_ | Isa.BRCT | Isa.BRCF | Isa.HALT | Isa.NOP -> (Dnone, Dnone)
  in
  let s1, s2 =
    match op with
    | Isa.ABS | Isa.MOV | Isa.PBRR | Isa.BRU_ | Isa.BRL -> (true, false)
    | Isa.HALT | Isa.NOP -> (false, false)
    | Isa.ADD | Isa.SUB | Isa.MPY | Isa.DIV | Isa.REM | Isa.MIN | Isa.MAX
    | Isa.AND | Isa.OR | Isa.XOR | Isa.ANDCM | Isa.NAND | Isa.NOR
    | Isa.SHL | Isa.SHR | Isa.SHRA | Isa.CUSTOM _
    | Isa.LD _ | Isa.LDU _ | Isa.ST _ | Isa.CMPP _ | Isa.BRCT | Isa.BRCF ->
      (true, true)
  in
  { u_dst1 = d1; u_dst2 = d2; u_src1 = s1; u_src2 = s2 }

let check_dst (cfg : Config.t) file idx =
  let limit, name =
    match file with
    | Isa.R_gpr -> (cfg.Config.n_gprs, "GPR")
    | Isa.R_pred -> (cfg.Config.n_preds, "predicate register")
    | Isa.R_btr -> (cfg.Config.n_btrs, "branch target register")
  in
  if idx < 0 || idx >= limit then
    fail "enc/dst-range" ~ctx:[ ("index", string_of_int idx) ]
      "%s index %d out of range 0..%d" name idx (limit - 1);
  if idx >= 1 lsl cfg.Config.dst_bits then
    fail "enc/dst-field" ~ctx:[ ("index", string_of_int idx) ]
      "destination index %d exceeds the %d-bit field" idx cfg.Config.dst_bits

let encode_src (cfg : Config.t) (s : Isa.src) =
  let payload = cfg.Config.src_bits - 1 in
  match s with
  | Isa.Sreg r ->
    if r < 0 || r >= cfg.Config.n_gprs then
      fail "enc/src-reg-range" ~ctx:[ ("reg", string_of_int r) ]
        "source register r%d out of range" r;
    if r >= 1 lsl payload then
      fail "enc/src-reg-field" ~ctx:[ ("reg", string_of_int r) ]
        "register r%d exceeds the source field" r;
    r
  | Isa.Simm v ->
    if not (literal_fits cfg v) then
      fail "enc/literal-range" ~ctx:[ ("literal", string_of_int v) ]
        "literal %d does not fit the %d-bit source payload" v payload;
    (1 lsl payload) lor (v land ((1 lsl payload) - 1))

let decode_src (cfg : Config.t) bits =
  let payload = cfg.Config.src_bits - 1 in
  if bits land (1 lsl payload) <> 0 then begin
    let v = bits land ((1 lsl payload) - 1) in
    let v = if v land (1 lsl (payload - 1)) <> 0 then v - (1 lsl payload) else v in
    Isa.Simm v
  end
  else Isa.Sreg bits

let count_distinct_gprs (i : Isa.inst) =
  let u = usage i.Isa.op in
  let add acc r = if List.mem r acc then acc else r :: acc in
  let acc = [] in
  let acc = match u.u_dst1 with Dreg Isa.R_gpr -> add acc i.Isa.dst1 | _ -> acc in
  let acc = match u.u_dst2 with Dreg Isa.R_gpr -> add acc i.Isa.dst2 | _ -> acc in
  let acc =
    if u.u_src1 then match i.Isa.src1 with Isa.Sreg r -> add acc r | Isa.Simm _ -> acc
    else acc
  in
  let acc =
    if u.u_src2 then match i.Isa.src2 with Isa.Sreg r -> add acc r | Isa.Simm _ -> acc
    else acc
  in
  List.length acc

let encode t (cfg : Config.t) (i : Isa.inst) =
  if Config.inst_bits cfg > 64 then
    fail "enc/inst-width" "instruction width %d exceeds 64 bits" (Config.inst_bits cfg);
  if not (Config.op_supported cfg i.Isa.op) then
    fail "enc/unsupported-op" ~ctx:[ ("op", Isa.string_of_opcode i.Isa.op) ]
      "operation %s is not implemented by this configuration"
      (Isa.string_of_opcode i.Isa.op);
  let code =
    match code_of_opcode t i.Isa.op with
    | Some c -> c
    | None ->
      fail "enc/no-opcode" ~ctx:[ ("op", Isa.string_of_opcode i.Isa.op) ]
        "operation %s has no opcode in this configuration"
        (Isa.string_of_opcode i.Isa.op)
  in
  let u = usage i.Isa.op in
  let check_imm v =
    if v < 0 || v >= 1 lsl cfg.Config.dst_bits then
      fail "enc/dimm-range" ~ctx:[ ("immediate", string_of_int v) ]
        "destination-field immediate %d exceeds the %d-bit field" v cfg.Config.dst_bits;
    v
  in
  let d1 =
    match u.u_dst1 with
    | Dreg file -> check_dst cfg file i.Isa.dst1; i.Isa.dst1
    | Dimm -> check_imm i.Isa.dst1
    | Dnone -> 0
  in
  let d2 =
    match u.u_dst2 with
    | Dreg file -> check_dst cfg file i.Isa.dst2; i.Isa.dst2
    | Dimm -> check_imm i.Isa.dst2
    | Dnone -> 0
  in
  let s1 = if u.u_src1 then encode_src cfg i.Isa.src1 else 0 in
  let s2 = if u.u_src2 then encode_src cfg i.Isa.src2 else 0 in
  if i.Isa.guard < 0 || i.Isa.guard >= cfg.Config.n_preds then
    fail "enc/guard-range" ~ctx:[ ("guard", string_of_int i.Isa.guard) ]
      "guard predicate p%d out of range" i.Isa.guard;
  if count_distinct_gprs i > cfg.Config.regs_per_inst then
    fail "enc/regs-per-inst"
      ~ctx:[ ("distinct_gprs", string_of_int (count_distinct_gprs i)) ]
      "instruction names %d distinct GPRs but regs_per_inst = %d"
      (count_distinct_gprs i) cfg.Config.regs_per_inst;
  let ( ||| ) = Int64.logor in
  let field v shift = Int64.shift_left (Int64.of_int v) shift in
  let pb = cfg.Config.pred_bits and sb = cfg.Config.src_bits and db = cfg.Config.dst_bits in
  field i.Isa.guard 0
  ||| field s2 pb
  ||| field s1 (pb + sb)
  ||| field d2 (pb + (2 * sb))
  ||| field d1 (pb + (2 * sb) + db)
  ||| field code (pb + (2 * sb) + (2 * db))

let extract word shift bits =
  Int64.to_int (Int64.logand (Int64.shift_right_logical word shift) (Int64.sub (Int64.shift_left 1L bits) 1L))

let decode t (cfg : Config.t) word =
  let pb = cfg.Config.pred_bits and sb = cfg.Config.src_bits and db = cfg.Config.dst_bits in
  let guard = extract word 0 pb in
  let s2 = extract word pb sb in
  let s1 = extract word (pb + sb) sb in
  let d2 = extract word (pb + (2 * sb)) db in
  let d1 = extract word (pb + (2 * sb) + db) db in
  let code = extract word (pb + (2 * sb) + (2 * db)) cfg.Config.opcode_bits in
  (* Decoding is total: an unassigned opcode pattern yields an ILLEGAL
     marker instruction (its fields decoded raw) rather than an exception,
     so junk instruction words — e.g. injected bit flips — surface as an
     architectural illegal-operation trap in the simulator. *)
  let op =
    match opcode_of_code t code with
    | Some op -> op
    | None -> illegal_opcode code
  in
  let u = usage op in
  {
    Isa.op;
    dst1 = (match u.u_dst1 with Dreg _ | Dimm -> d1 | Dnone -> 0);
    dst2 = (match u.u_dst2 with Dreg _ | Dimm -> d2 | Dnone -> 0);
    src1 = (if u.u_src1 then decode_src cfg s1 else Isa.Simm 0);
    src2 = (if u.u_src2 then decode_src cfg s2 else Isa.Simm 0);
    guard;
  }

let word_to_bytes (cfg : Config.t) word =
  let nbytes = (Config.inst_bits cfg + 7) / 8 in
  let b = Bytes.create nbytes in
  for k = 0 to nbytes - 1 do
    (* Big-endian: most significant byte first. *)
    let shift = 8 * (nbytes - 1 - k) in
    Bytes.set b k (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical word shift) 0xFFL)))
  done;
  b

let word_of_bytes (cfg : Config.t) b off =
  let nbytes = (Config.inst_bits cfg + 7) / 8 in
  let rec go k acc =
    if k = nbytes then acc
    else
      go (k + 1)
        (Int64.logor (Int64.shift_left acc 8) (Int64.of_int (Char.code (Bytes.get b (off + k)))))
  in
  go 0 0L
