lib/core/experiments.mli: Epic_area Epic_sim
