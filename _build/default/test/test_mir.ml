(* Unit tests for the MIR layer: IR metadata and validation, liveness
   analysis, the memory map, the reference interpreter's edge cases, and
   the register allocator. *)

module Ir = Epic.Ir
module Liveness = Epic.Liveness
module Memmap = Epic.Memmap
module Interp = Epic.Interp
module Regalloc = Epic.Regalloc

let m32 v = v land 0xFFFFFFFF

(* Hand-build: f(x) = loop { s += x; n-- } with a diamond. *)
let build_sum_func () =
  let b = Ir.Builder.create ~name:"f" ~params:[ 0; 1 ] in
  let s = Ir.Builder.fresh_vreg b in
  let l0 = Ir.Builder.fresh_label b in
  let head = Ir.Builder.fresh_label b in
  let body = Ir.Builder.fresh_label b in
  let exit_ = Ir.Builder.fresh_label b in
  Ir.Builder.start_block b l0;
  Ir.Builder.emit b (Ir.Mov (s, Ir.Imm 0));
  Ir.Builder.seal b (Ir.Jmp head);
  Ir.Builder.start_block b head;
  Ir.Builder.seal b (Ir.Br (Ir.Rgt, Ir.Reg 1, Ir.Imm 0, body, exit_));
  Ir.Builder.start_block b body;
  Ir.Builder.emit b (Ir.Bin (Ir.Add, s, Ir.Reg s, Ir.Reg 0));
  Ir.Builder.emit b (Ir.Bin (Ir.Sub, 1, Ir.Reg 1, Ir.Imm 1));
  Ir.Builder.seal b (Ir.Jmp head);
  Ir.Builder.start_block b exit_;
  Ir.Builder.seal b (Ir.Ret (Some (Ir.Reg s)));
  Ir.Builder.func b

let test_builder_and_validate () =
  let f = build_sum_func () in
  Alcotest.(check int) "blocks" 4 (List.length f.Ir.f_blocks);
  (match Ir.validate_func f with
   | Ok () -> ()
   | Error m -> Alcotest.failf "validate: %s" m);
  (* Run it through the interpreter. *)
  let p = { Ir.p_globals = []; p_funcs = [ f ] } in
  Alcotest.(check int) "5 * 7" 35 (Interp.run ~args:[ 5; 7 ] p ~entry:"f").Interp.ret

let test_validate_catches_bad_label () =
  let f = build_sum_func () in
  (List.hd f.Ir.f_blocks).Ir.b_term <- Ir.Jmp 999;
  (match Ir.validate_func f with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "missing label not caught")

let test_validate_catches_bad_vreg () =
  let f = build_sum_func () in
  (List.hd f.Ir.f_blocks).Ir.b_insts <- [ Ir.no_guard (Ir.Mov (999, Ir.Imm 0)) ];
  (match Ir.validate_func f with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "vreg out of range not caught")

let test_defs_uses () =
  let i = Ir.no_guard (Ir.Bin (Ir.Add, 5, Ir.Reg 3, Ir.Imm 7)) in
  Alcotest.(check (list (pair bool int))) "defs" [ (true, 5) ]
    (List.map (fun (c, r) -> (c = Ir.Cgpr, r)) (Ir.defs_of_inst i));
  Alcotest.(check (list (pair bool int))) "uses" [ (true, 3) ]
    (List.map (fun (c, r) -> (c = Ir.Cgpr, r)) (Ir.uses_of_inst i));
  (* Guarded instructions read their predicate and partially define. *)
  let g = { Ir.kind = Ir.Mov (5, Ir.Imm 1); guard = Some { Ir.g_reg = 2; g_pos = false } } in
  Alcotest.(check bool) "guard is a use" true
    (List.mem (Ir.Cpred, 2) (Ir.uses_of_inst g));
  Alcotest.(check bool) "partial def" true (Ir.partial_defs g <> [])

let test_liveness_loop () =
  let f = build_sum_func () in
  let live = Liveness.analyse f in
  (* At the loop head, the accumulator, the counter and x are all live. *)
  let head_in = Liveness.live_in live 1 in
  Alcotest.(check bool) "x live" true (Liveness.RSet.mem (Ir.Cgpr, 0) head_in);
  Alcotest.(check bool) "n live" true (Liveness.RSet.mem (Ir.Cgpr, 1) head_in);
  Alcotest.(check bool) "s live" true (Liveness.RSet.mem (Ir.Cgpr, 2) head_in);
  (* After the exit block nothing is live. *)
  Alcotest.(check int) "exit out empty" 0
    (Liveness.RSet.cardinal (Liveness.live_out live 3))

let test_liveness_dead_def () =
  let b = Ir.Builder.create ~name:"g" ~params:[] in
  let l = Ir.Builder.fresh_label b in
  let d = Ir.Builder.fresh_vreg b in
  Ir.Builder.start_block b l;
  Ir.Builder.emit b (Ir.Mov (d, Ir.Imm 1));
  Ir.Builder.seal b (Ir.Ret (Some (Ir.Imm 0)));
  let f = Ir.Builder.func b in
  let live = Liveness.analyse f in
  Alcotest.(check int) "nothing live in" 0
    (Liveness.RSet.cardinal (Liveness.live_in live l))

let test_memmap_layout () =
  let p =
    { Ir.p_globals =
        [ { Ir.g_name = "a"; g_bytes = 10; g_init = [||] };
          { Ir.g_name = "b"; g_bytes = 4; g_init = [| 0xDEAD |] } ];
      p_funcs = [] }
  in
  let m = Memmap.layout p in
  let a = Memmap.addr_of m "a" and b = Memmap.addr_of m "b" in
  Alcotest.(check bool) "a below b" true (a < b);
  Alcotest.(check int) "word aligned" 0 (b mod 4);
  Alcotest.(check int) "aligned gap" (a + 12) b;
  let mem = Memmap.init_memory m p in
  Alcotest.(check int) "init applied" 0xDEAD (Memmap.read ~size:Ir.I32 ~ext:Ir.Zx mem b);
  Alcotest.check_raises "unknown symbol"
    (Invalid_argument "Memmap.addr_of: unknown global nope")
    (fun () -> ignore (Memmap.addr_of m "nope"))

let test_memmap_big_endian_bytes () =
  let m = Bytes.make 16 '\000' in
  Memmap.write ~size:Ir.I32 m 0 0x11223344;
  Alcotest.(check int) "byte 0 is MSB" 0x11 (Memmap.read ~size:Ir.I8 ~ext:Ir.Zx m 0);
  Alcotest.(check int) "byte 3 is LSB" 0x44 (Memmap.read ~size:Ir.I8 ~ext:Ir.Zx m 3);
  Alcotest.(check int) "halfword" 0x1122 (Memmap.read ~size:Ir.I16 ~ext:Ir.Zx m 0);
  (* Sign extension *)
  Memmap.write ~size:Ir.I8 m 8 0x80;
  Alcotest.(check int) "sx byte" (m32 (-128)) (Memmap.read ~size:Ir.I8 ~ext:Ir.Sx m 8);
  Memmap.write ~size:Ir.I16 m 10 0x8000;
  Alcotest.(check int) "sx half" (m32 (-32768)) (Memmap.read ~size:Ir.I16 ~ext:Ir.Sx m 10)

let compile = Epic.Cfront.compile

let expect_runtime_error src =
  match Interp.run (compile src) ~entry:"main" with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected a runtime error"

let test_interp_errors () =
  expect_runtime_error "int main() { return 1 / 0; }";
  expect_runtime_error "int main() { return 1 % 0; }";
  expect_runtime_error "int a[2]; int main() { return a[3000000]; }";
  (* Unbounded recursion exhausts the simulated stack, not OCaml's. *)
  expect_runtime_error
    "int f(int n) { int big[200]; return f(n + big[0]); }\n\
     int main() { return f(1); }";
  (* Fuel limit catches infinite loops. *)
  (match Interp.run ~fuel:10_000 (compile "int main() { while (1) { } return 0; }") ~entry:"main" with
   | exception Interp.Runtime_error _ -> ()
   | _ -> Alcotest.fail "expected out-of-fuel")

let test_interp_block_counts () =
  let p = compile "int main() { int s = 0; for (int i = 0; i < 10; i++) s += i; return s; }" in
  let r = Interp.run p ~entry:"main" in
  let total = Hashtbl.fold (fun _ c acc -> acc + c) r.Interp.block_counts 0 in
  (* Head runs 11x, body 10x, plus entry/exit. *)
  Alcotest.(check bool) "profile recorded" true (total >= 21)

(* ------------------------------------------------------------------ *)
(* Register allocator *)

let alloc_func src name ~pool =
  let p = Epic.Opt.standard (compile src) in
  match Ir.find_func p name with
  | Some f -> Regalloc.allocate f ~pool
  | None -> Alcotest.failf "no function %s" name

let collect_gprs (f : Ir.func) =
  let regs = ref [] in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun i ->
          List.iter
            (fun (c, r) -> if c = Ir.Cgpr then regs := r :: !regs)
            (Ir.defs_of_inst i @ Ir.uses_of_inst i))
        b.Ir.b_insts;
      List.iter
        (fun (c, r) -> if c = Ir.Cgpr then regs := r :: !regs)
        (Ir.uses_of_term b.Ir.b_term))
    f.Ir.f_blocks;
  List.sort_uniq compare !regs

let busy_src =
  "int main(int p, int q) {\n\
   \  int a = p + 1; int b = p + 2; int c = p + 3; int d = p + 4;\n\
   \  int e = p + 5; int f = p + 6; int g = p + 7; int h = p + 8;\n\
   \  int s = 0;\n\
   \  for (int t = 0; t < q; t++)\n\
   \    s += a * b + c * d + e * f + g * h + t;\n\
   \  return s + a + b + c + d + e + f + g + h;\n\
   }"

let test_alloc_stays_in_pool () =
  let pool = List.init 20 (fun k -> 12 + k) in
  let r = alloc_func busy_src "main" ~pool in
  Alcotest.(check int) "no spills with 20 regs" 0 r.Regalloc.spill_count;
  List.iter
    (fun reg ->
      if not (List.mem reg pool) then Alcotest.failf "r%d outside pool" reg)
    (collect_gprs r.Regalloc.fn);
  List.iter
    (fun reg -> if not (List.mem reg pool) then Alcotest.failf "used_regs r%d outside pool" reg)
    r.Regalloc.used_regs

let test_alloc_spills_under_pressure () =
  let pool = [ 12; 13; 14; 15; 16; 17 ] in
  let r = alloc_func busy_src "main" ~pool in
  Alcotest.(check bool) "spilled" true (r.Regalloc.spill_count > 0);
  Alcotest.(check bool) "frame grew" true (r.Regalloc.fn.Ir.f_frame_bytes > 0);
  (* Spill code present. *)
  let has_spill_ops =
    List.exists
      (fun (b : Ir.block) ->
        List.exists
          (fun (i : Ir.inst) ->
            match i.Ir.kind with
            | Ir.LoadFrame _ | Ir.StoreFrame _ -> true
            | _ -> false)
          b.Ir.b_insts)
      r.Regalloc.fn.Ir.f_blocks
  in
  Alcotest.(check bool) "spill loads/stores emitted" true has_spill_ops

let test_alloc_param_locations () =
  let pool = List.init 20 (fun k -> 12 + k) in
  let r = alloc_func "int main(int x, int y) { return x + 1; }" "main" ~pool in
  (match r.Regalloc.param_locs with
   | [ Some (Regalloc.Lreg p); None ] ->
     Alcotest.(check bool) "x in pool" true (List.mem p pool)
   | _ -> Alcotest.fail "expected [Some reg; None] parameter locations")

let test_alloc_rejects_tiny_pool () =
  match alloc_func busy_src "main" ~pool:[ 12; 13 ] with
  | exception Regalloc.Alloc_error _ -> ()
  | _ -> Alcotest.fail "pool of 2 must be rejected"

(* Spilled code must still be correct: run the spilled variant through the
   full EPIC backend on a tiny register file. *)
let test_spilled_code_correct () =
  let cfg =
    Epic.Config.validate_exn { Epic.Config.default with Epic.Config.n_gprs = 20 }
  in
  let expected = (Interp.run (compile busy_src) ~args:[ 9; 5 ] ~entry:"main").Interp.ret in
  let baked =
    Str.global_replace (Str.regexp_string "int main(") "int body__(" busy_src
    ^ "\nint main() { return body__(9, 5); }"
  in
  let a = Epic.Toolchain.compile_epic cfg ~source:baked () in
  Alcotest.(check int) "spilled run matches" expected
    (Epic.Toolchain.run_epic a).Epic.Sim.ret

let suite =
  [
    Alcotest.test_case "builder + validate + interp" `Quick test_builder_and_validate;
    Alcotest.test_case "validate: bad label" `Quick test_validate_catches_bad_label;
    Alcotest.test_case "validate: bad vreg" `Quick test_validate_catches_bad_vreg;
    Alcotest.test_case "defs/uses metadata" `Quick test_defs_uses;
    Alcotest.test_case "liveness in a loop" `Quick test_liveness_loop;
    Alcotest.test_case "liveness: dead def" `Quick test_liveness_dead_def;
    Alcotest.test_case "memmap layout" `Quick test_memmap_layout;
    Alcotest.test_case "memmap big-endian access" `Quick test_memmap_big_endian_bytes;
    Alcotest.test_case "interp runtime errors" `Quick test_interp_errors;
    Alcotest.test_case "interp block profile" `Quick test_interp_block_counts;
    Alcotest.test_case "regalloc: stays in pool" `Quick test_alloc_stays_in_pool;
    Alcotest.test_case "regalloc: spills under pressure" `Quick test_alloc_spills_under_pressure;
    Alcotest.test_case "regalloc: parameter locations" `Quick test_alloc_param_locations;
    Alcotest.test_case "regalloc: tiny pool rejected" `Quick test_alloc_rejects_tiny_pool;
    Alcotest.test_case "regalloc: spilled code correct" `Quick test_spilled_code_correct;
  ]
