(* Predication (paper Section 2): "predicated instructions transform
   control dependence to data dependence", letting the compiler issue
   both sides of small branches simultaneously and commit only the side
   whose one-bit predicate register is true.

   This example compiles a branchy clamping kernel with and without
   if-conversion, shows the predicated assembly, and measures the cycle
   difference (ablation A4 in DESIGN.md).

   Run with: dune exec examples/predication.exe *)

let source =
  "int data[256];\n\
   int main() {\n\
   \  int i;\n\
   \  // synthesise a sawtooth with negative excursions\n\
   \  for (i = 0; i < 256; i++) data[i] = ((i * 37) & 127) - 50;\n\
   \  int clipped = 0;\n\
   \  int s = 0;\n\
   \  for (i = 0; i < 256; i++) {\n\
   \    int v = data[i];\n\
   \    if (v < 0) { v = 0; clipped++; }\n\
   \    if (v > 40) v = 40;\n\
   \    s += v;\n\
   \  }\n\
   \  return s * 1000 + clipped;\n\
   }\n"

let compile ~predication =
  Epic.Toolchain.compile_epic Epic.Config.default ~source ~predication ()

let () =
  let with_pred = compile ~predication:true in
  let without = compile ~predication:false in
  let r1 = Epic.Toolchain.run_epic with_pred in
  let r0 = Epic.Toolchain.run_epic without in
  assert (r1.Epic.Sim.ret = r0.Epic.Sim.ret);
  Printf.printf "kernel result: %d\n\n" r1.Epic.Sim.ret;

  (* Count guarded operations in the two binaries. *)
  let guarded (a : Epic.Toolchain.epic_artifacts) =
    Array.fold_left
      (fun acc (i : Epic.Isa.inst) -> if i.Epic.Isa.guard <> 0 then acc + 1 else acc)
      0 a.Epic.Toolchain.ea_image.Epic.Asm.Aunit.im_insts
  in
  Printf.printf "%-24s %10s %10s %10s %10s\n" "" "cycles" "bundles"
    "br.bubbles" "guarded";
  let line name (a : Epic.Toolchain.epic_artifacts) (r : Epic.Sim.result) =
    Printf.printf "%-24s %10d %10d %10d %10d\n" name r.Epic.Sim.stats.Epic.Sim.cycles
      r.Epic.Sim.stats.Epic.Sim.bundles r.Epic.Sim.stats.Epic.Sim.branch_bubbles
      (guarded a)
  in
  line "with if-conversion" with_pred r1;
  line "branches only" without r0;
  Printf.printf "\npredication speedup: %.2fx\n"
    (float_of_int r0.Epic.Sim.stats.Epic.Sim.cycles
    /. float_of_int r1.Epic.Sim.stats.Epic.Sim.cycles);

  (* Show some predicated assembly: the clamp became CMPP + guarded ops. *)
  print_endline "\nPredicated bundles from the loop body:";
  let asm = Epic.Asm.Text.to_string with_pred.Epic.Toolchain.ea_unit in
  String.split_on_char '\n' asm
  |> List.filter (fun l ->
         (let has sub =
            let n = String.length sub and m = String.length l in
            let rec go i = i + n <= m && (String.sub l i n = sub || go (i + 1)) in
            go 0
          in
          has "(p"))
  |> List.iteri (fun i l -> if i < 8 then print_endline ("  " ^ l))
