bin/epicc.ml: Arg Array Cli_common Cmd Cmdliner Epic Format Printf Term
