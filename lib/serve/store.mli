(** Persistent on-disk artifact cache for the serving daemon.

    A {!t} maps string keys — configuration fingerprint x source digest x
    request parameters, built by {!Protocol.cache_key} — to string
    payloads (serialised response bodies).  It upgrades the in-memory
    {!Epic_exec.Cache}/[Toolchain.Compile_cache] story to survive the
    process: a campaign replayed tomorrow, or from another daemon, hits
    disk instead of the compiler.

    {b Layout and versioning.}  Entries live under
    [dir/v<version>/<md5(key)>]; the first line of an entry file is the
    (escaped) key, the second is an [md5:<hex>] checksum of the payload,
    the rest is the payload.  The key line guards against digest
    collisions and foreign files: a mismatch reads as a miss.  Opening a
    store removes entry directories of {e other} format versions, so
    bumping {!format_version} (or passing a new [version]) invalidates
    every stale entry at once; a crash mid-removal just resumes at the
    next open (a partially-deleted generation is never the current entry
    directory).

    {b Integrity and quarantine.}  Every read verifies the payload
    against the embedded checksum.  A structurally broken entry —
    truncated, bit-flipped, checksum mismatch — is {e quarantined}:
    moved to [dir/quarantine/] (uniquified name, for post-mortem),
    counted in {!stats}, and reported as a miss so the caller recomputes
    and republishes.  The daemon therefore never serves corrupt bytes
    and never dies on them.  {!verify} is the eager variant: a full
    scrub of the current generation.

    {b Atomicity.}  Writes go to a hidden temporary file in the same
    directory and are published with [Unix.rename], which is atomic on
    POSIX: a reader sees either no entry or a complete one, never a torn
    write.  Leftover temporaries from a crashed writer are swept on open
    (including a version-bump open) and on demand via {!sweep}; the
    sweep count is part of {!stats}.

    {b Concurrency.}  One [t]'s counters are mutex-protected, so
    {!find_or_add} may be called from every domain of a batch at once.
    Multiple processes may share a directory: concurrent writers of the
    same key publish identical bytes (responses are deterministic), and
    rename makes the last one win harmlessly. *)

type t

val format_version : int
(** Current on-disk format version; baked into the entry directory name.
    Version 2 added the per-entry payload checksum line. *)

type stats = {
  st_hits : int;
  st_misses : int;        (** Includes corrupt / mismatched entries. *)
  st_evictions : int;     (** Entries removed by the [max_entries] cap. *)
  st_quarantined : int;   (** Corrupt entries moved to [quarantine/]. *)
  st_swept : int;         (** Crashed-writer temporaries removed. *)
}

val open_ : ?version:int -> ?max_entries:int -> string -> t
(** [open_ dir] creates [dir] (and parents) if needed, sweeps stale
    version directories and leftover temporaries (the sweep count seeds
    [st_swept]), and returns a handle.  [version] defaults to
    {!format_version}; [max_entries] (default unlimited) caps the entry
    count — adding beyond it evicts the oldest-mtime entries. *)

val dir : t -> string

val quarantine_dir : t -> string
(** [dir/quarantine]; created lazily by the first quarantine. *)

val find : t -> key:string -> string option
(** Look up a key; counts a hit or a miss.  A corrupt entry is
    quarantined and counts as a miss.  A hit refreshes the entry's mtime
    (best-effort) so the oldest-mtime eviction order approximates LRU
    rather than insertion order. *)

val add : t -> key:string -> string -> unit
(** Publish a payload atomically (write-temporary-then-rename), then
    apply the eviction cap.  Does not touch the hit/miss counters. *)

val find_or_add : t -> key:string -> (unit -> string) -> string * bool
(** [find_or_add t ~key f] returns [(payload, was_hit)].  On a miss the
    payload is computed with [f] and published.  No in-flight
    deduplication at the disk level: concurrent computers of one key
    write identical bytes (the in-memory compile cache already
    deduplicates the expensive work). *)

val verify : t -> int
(** Scrub every entry of the current generation: re-check the key line
    (entries must sit on their own key's digest path) and the payload
    checksum, quarantining anything broken.  Returns the number of
    entries quarantined.  Hit/miss counters are untouched. *)

val sweep : t -> int
(** Remove crashed-writer temporaries from the entry directory now
    (also done automatically at open).  Returns the number removed and
    adds it to [st_swept]. *)

val entries : t -> int
(** Entry files currently on disk. *)

val quarantined_entries : t -> int
(** Files currently in the quarantine directory (cumulative across
    store lifetimes, unlike the [st_quarantined] counter). *)

val stats : t -> stats
val reset_stats : t -> unit
(** Zero the counters; entries stay on disk. *)

val hit_rate : stats -> float
(** [hits / (hits + misses)]; [0.] when no traffic was recorded. *)

val wipe : t -> unit
(** Remove every entry of the current version (counters untouched,
    except that nothing counts as an eviction). *)

val stats_to_json : t -> Epic.Profile.Json.t
(** [{"hits": _, "misses": _, "evictions": _, "quarantined": _,
    "swept": _, "entries": _}]. *)
