lib/opt/constfold.ml: Common Epic_mir Hashtbl List
