(* Tests for the binary instruction format: field layout, the
   Hamming-distance opcode-numbering property, range checking, and
   encode/decode round-trips (unit + property-based). *)

module Isa = Epic.Isa
module Config = Epic.Config
module Enc = Epic.Encoding

let cfg = Config.default
let table = Enc.make_table cfg

let test_nop_is_zero () =
  Alcotest.(check int64) "all-zero word is NOP" 0L (Enc.encode table cfg Isa.nop);
  Alcotest.(check bool) "decodes back" true
    (Isa.equal_inst Isa.nop (Enc.decode table cfg 0L))

let test_all_opcodes_numbered () =
  List.iter
    (fun op ->
      match Enc.code_of_opcode table op with
      | Some c ->
        (match Enc.opcode_of_code table c with
         | Some op' ->
           Alcotest.(check bool) (Isa.string_of_opcode op) true (Isa.equal_opcode op op')
         | None -> Alcotest.failf "code of %s not decodable" (Isa.string_of_opcode op))
      | None -> Alcotest.failf "%s unnumbered" (Isa.string_of_opcode op))
    Isa.all_base_opcodes

let test_codes_distinct () =
  let codes = List.map snd (Enc.all_codes table) in
  Alcotest.(check int) "no duplicate codes"
    (List.length codes)
    (List.length (List.sort_uniq compare codes))

let popcount v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
  go v 0

(* Paper Section 3.1: the opcode is designed to minimise the Hamming
   distance between two instructions of the same type.  With class tags in
   the top bits, same-unit opcodes never differ in the tag bits. *)
let test_hamming_clustering () =
  let tag_bits code = code lsr (cfg.Config.opcode_bits - 2) in
  let pairs = Enc.all_codes table in
  List.iter
    (fun (op1, c1) ->
      List.iter
        (fun (op2, c2) ->
          if Isa.unit_of op1 = Isa.unit_of op2 && Isa.unit_of op1 <> Isa.U_none then
            Alcotest.(check int)
              (Printf.sprintf "%s / %s same class tag" (Isa.string_of_opcode op1)
                 (Isa.string_of_opcode op2))
              (tag_bits c1) (tag_bits c2))
        pairs)
    pairs;
  (* And intra-class distances are bounded by the bits needed to number the
     largest class (5 for the ~19-op ALU class), not by the full 15-bit
     opcode width. *)
  let max_intra = ref 0 in
  List.iter
    (fun (op1, c1) ->
      List.iter
        (fun (op2, c2) ->
          if op1 <> op2 && Isa.unit_of op1 = Isa.unit_of op2 then
            max_intra := max !max_intra (popcount (c1 lxor c2)))
        pairs)
    pairs;
  Alcotest.(check bool) "intra-class Hamming distance bounded" true (!max_intra <= 5)

let mk op ?(d1 = 0) ?(d2 = 0) ?(s1 = Isa.Simm 0) ?(s2 = Isa.Simm 0) ?(g = 0) () =
  { Isa.op; dst1 = d1; dst2 = d2; src1 = s1; src2 = s2; guard = g }

let roundtrip i =
  let w = Enc.encode table cfg i in
  let i' = Enc.decode table cfg w in
  Alcotest.(check bool)
    (Format.asprintf "%a = %a" Isa.pp_inst i Isa.pp_inst i')
    true (Isa.equal_inst i i')

let test_roundtrip_samples () =
  roundtrip (mk Isa.ADD ~d1:5 ~s1:(Isa.Sreg 3) ~s2:(Isa.Sreg 4) ());
  roundtrip (mk Isa.ADD ~d1:5 ~s1:(Isa.Sreg 3) ~s2:(Isa.Simm (-42)) ());
  roundtrip (mk Isa.MOV ~d1:63 ~s1:(Isa.Simm 16383) ());
  roundtrip (mk Isa.MOV ~d1:63 ~s1:(Isa.Simm (-16384)) ());
  roundtrip (mk (Isa.CMPP Isa.C_ltu) ~d1:3 ~d2:4 ~s1:(Isa.Sreg 1) ~s2:(Isa.Sreg 2) ~g:5 ());
  roundtrip (mk (Isa.LD Isa.M_byte) ~d1:9 ~s1:(Isa.Sreg 8) ~s2:(Isa.Simm 12) ());
  roundtrip (mk (Isa.ST Isa.M_word) ~s1:(Isa.Sreg 8) ~s2:(Isa.Sreg 9) ());
  roundtrip (mk Isa.PBRR ~d1:15 ~s1:(Isa.Simm 1000) ());
  roundtrip (mk Isa.PBRR ~d1:2 ~s1:(Isa.Sreg 2) ());
  roundtrip (mk Isa.BRCT ~s1:(Isa.Simm 15) ~s2:(Isa.Simm 31) ());
  roundtrip (mk Isa.BRL ~d1:2 ~s1:(Isa.Simm 0) ());
  roundtrip (mk Isa.BRU_ ~s1:(Isa.Simm 7) ~g:3 ())

let expect_fail i =
  match Enc.encode table cfg i with
  | exception Enc.Encode_error _ -> ()
  | _ -> Alcotest.failf "expected Encode_error for %s" (Format.asprintf "%a" Isa.pp_inst i)

let test_range_errors () =
  expect_fail (mk Isa.ADD ~d1:64 ~s1:(Isa.Sreg 1) ~s2:(Isa.Sreg 2) ());
  expect_fail (mk Isa.ADD ~d1:1 ~s1:(Isa.Sreg 64) ~s2:(Isa.Sreg 2) ());
  expect_fail (mk Isa.ADD ~d1:1 ~s1:(Isa.Sreg 1) ~s2:(Isa.Simm 16384) ());
  expect_fail (mk Isa.ADD ~d1:1 ~s1:(Isa.Sreg 1) ~s2:(Isa.Simm (-16385)) ());
  expect_fail (mk (Isa.CMPP Isa.C_eq) ~d1:32 ~d2:0 ~s1:(Isa.Sreg 1) ~s2:(Isa.Sreg 2) ());
  expect_fail (mk Isa.PBRR ~d1:16 ~s1:(Isa.Simm 0) ());
  expect_fail (mk Isa.ADD ~d1:1 ~s1:(Isa.Sreg 1) ~s2:(Isa.Sreg 2) ~g:32 ());
  (* Custom op not present in this configuration. *)
  expect_fail (mk (Isa.CUSTOM "ROTR") ~d1:1 ~s1:(Isa.Sreg 1) ~s2:(Isa.Sreg 2) ())

let test_regs_per_inst_limit () =
  let cfg3 = Config.validate_exn { cfg with Config.regs_per_inst = 2 } in
  let t3 = Enc.make_table cfg3 in
  let i = mk Isa.ADD ~d1:5 ~s1:(Isa.Sreg 3) ~s2:(Isa.Sreg 4) () in
  (match Enc.encode t3 cfg3 i with
   | exception Enc.Encode_error _ -> ()
   | _ -> Alcotest.fail "3 distinct GPRs should exceed regs_per_inst = 2");
  (* Repeated registers count once. *)
  let j = mk Isa.ADD ~d1:3 ~s1:(Isa.Sreg 3) ~s2:(Isa.Sreg 3) () in
  ignore (Enc.encode t3 cfg3 j)

let test_custom_op_encoding () =
  let cfgc = Config.add_custom cfg "ROTR" in
  let tc = Enc.make_table cfgc in
  let i = mk (Isa.CUSTOM "ROTR") ~d1:4 ~s1:(Isa.Sreg 2) ~s2:(Isa.Simm 7) () in
  let w = Enc.encode tc cfgc i in
  Alcotest.(check bool) "roundtrip custom" true
    (Isa.equal_inst i (Enc.decode tc cfgc w));
  (* Custom op lives in the ALU code space. *)
  (match Enc.code_of_opcode tc (Isa.CUSTOM "ROTR") with
   | Some c -> Alcotest.(check int) "ALU class tag" 0 (c lsr (cfg.Config.opcode_bits - 2))
   | None -> Alcotest.fail "custom op unnumbered")

let test_bytes_roundtrip () =
  let i = mk Isa.ADD ~d1:5 ~s1:(Isa.Sreg 3) ~s2:(Isa.Simm (-1)) ~g:7 () in
  let w = Enc.encode table cfg i in
  let b = Enc.word_to_bytes cfg w in
  Alcotest.(check int) "8 bytes" 8 (Bytes.length b);
  Alcotest.(check int64) "roundtrip" w (Enc.word_of_bytes cfg b 0)

let test_big_endian_layout () =
  (* The opcode occupies the top bits, so the first byte of the image must
     contain opcode bits: for a non-NOP instruction it is non-zero iff the
     code is >= 2^(64-8-15)... simpler: MOV's code has the ALU tag 0 but a
     non-zero index; check the word's top 15 bits equal the code. *)
  let i = mk Isa.MOV ~d1:1 ~s1:(Isa.Simm 0) () in
  let w = Enc.encode table cfg i in
  let code =
    match Enc.code_of_opcode table Isa.MOV with Some c -> c | None -> assert false
  in
  Alcotest.(check int) "opcode in top bits" code
    (Int64.to_int (Int64.shift_right_logical w (64 - 15)));
  let b = Enc.word_to_bytes cfg w in
  Alcotest.(check int) "MSB first" (code lsr 7) (Char.code (Bytes.get b 0))

(* Generator for well-formed instructions under the default config. *)
let gen_inst =
  let open QCheck.Gen in
  let reg = int_bound (cfg.Config.n_gprs - 1) in
  let src =
    oneof [ map (fun r -> Isa.Sreg r) reg; map (fun v -> Isa.Simm (v - 16384)) (int_bound 32767) ]
  in
  let guard = int_bound (cfg.Config.n_preds - 1) in
  let alu_ops = [| Isa.ADD; Isa.SUB; Isa.MPY; Isa.DIV; Isa.REM; Isa.MIN; Isa.MAX;
                   Isa.AND; Isa.OR; Isa.XOR; Isa.ANDCM; Isa.NAND; Isa.NOR;
                   Isa.SHL; Isa.SHR; Isa.SHRA |] in
  let conds = [| Isa.C_eq; Isa.C_ne; Isa.C_lt; Isa.C_le; Isa.C_gt; Isa.C_ge;
                 Isa.C_ltu; Isa.C_leu; Isa.C_gtu; Isa.C_geu |] in
  let mems = [| Isa.M_byte; Isa.M_half; Isa.M_word |] in
  let mk op d1 d2 s1 s2 g = { Isa.op; dst1 = d1; dst2 = d2; src1 = s1; src2 = s2; guard = g } in
  frequency
    [
      (6, map2 (fun (op, d1) ((s1, s2), g) -> mk op d1 0 s1 s2 g)
         (pair (map (fun k -> alu_ops.(k)) (int_bound (Array.length alu_ops - 1))) reg)
         (pair (pair src src) guard));
      (2, map2 (fun (c, (d1, d2)) ((s1, s2), g) -> mk (Isa.CMPP c) d1 d2 s1 s2 g)
         (pair (map (fun k -> conds.(k)) (int_bound 9))
            (pair (int_bound (cfg.Config.n_preds - 1)) (int_bound (cfg.Config.n_preds - 1))))
         (pair (pair src src) guard));
      (2, map2 (fun (m, d1) ((s1, s2), g) -> mk (Isa.LD m) d1 0 s1 s2 g)
         (pair (map (fun k -> mems.(k)) (int_bound 2)) reg)
         (pair (pair src src) guard));
      (1, map2 (fun (m, r1) (r2, g) -> mk (Isa.ST m) 0 0 (Isa.Sreg r1) (Isa.Sreg r2) g)
         (pair (map (fun k -> mems.(k)) (int_bound 2)) reg)
         (pair reg guard));
      (1, map2 (fun (b, s1) g -> mk Isa.PBRR b 0 s1 (Isa.Simm 0) g)
         (pair (int_bound (cfg.Config.n_btrs - 1)) src)
         guard);
      (1, map2 (fun (b, p) g -> mk Isa.BRCT 0 0 (Isa.Simm b) (Isa.Simm p) g)
         (pair (int_bound (cfg.Config.n_btrs - 1)) (int_bound (cfg.Config.n_preds - 1)))
         guard);
    ]

let arb_inst = QCheck.make ~print:(Format.asprintf "%a" Isa.pp_inst) gen_inst

let prop_encode_decode =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:1000 arb_inst (fun i ->
      match Enc.encode table cfg i with
      | w -> Isa.equal_inst i (Enc.decode table cfg w)
      | exception Enc.Encode_error _ -> QCheck.assume_fail ())

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"word_to_bytes/word_of_bytes roundtrip" ~count:500 arb_inst
    (fun i ->
      match Enc.encode table cfg i with
      | w -> Enc.word_of_bytes cfg (Enc.word_to_bytes cfg w) 0 = w
      | exception Enc.Encode_error _ -> QCheck.assume_fail ())

(* A narrower format still round-trips (parameterised field widths). *)
let prop_narrow_format =
  let cfgn =
    Config.validate_exn
      { cfg with Config.n_gprs = 32; n_preds = 16; n_btrs = 8;
        opcode_bits = 9; dst_bits = 5; src_bits = 11; pred_bits = 4;
        issue_width = 4 }
  in
  let tn = Enc.make_table cfgn in
  QCheck.Test.make ~name:"narrow 45-bit format roundtrip" ~count:500
    QCheck.(triple (int_bound 31) (int_bound 31) (int_range (-512) 511))
    (fun (d, r, v) ->
      let i =
        { Isa.op = Isa.ADD; dst1 = d; dst2 = 0; src1 = Isa.Sreg r;
          src2 = Isa.Simm v; guard = 0 }
      in
      let w = Enc.encode tn cfgn i in
      Isa.equal_inst i (Enc.decode tn cfgn w))

(* Decode is total: any 64-bit pattern decodes without raising — words
   with an unassigned opcode come back as the ILLEGAL marker so the
   simulator can trap on them instead of the decoder crashing.  The
   words are drawn from the repository's seeded PRNG, so the test is
   fully reproducible. *)
let test_decode_total () =
  let rng = Epic.Workloads.Prng.create ~seed:0xFA017 () in
  let word () =
    let hi = Int64.of_int (Epic.Workloads.Prng.next rng) in
    let lo = Int64.of_int (Epic.Workloads.Prng.next rng) in
    Int64.logor (Int64.shift_left hi 32) (Int64.logand lo 0xFFFFFFFFL)
  in
  let illegal = ref 0 in
  for _ = 1 to 20_000 do
    let w = word () in
    match Enc.decode table cfg w with
    | i -> if Enc.is_illegal i.Isa.op then incr illegal
    | exception e ->
      Alcotest.failf "decode %#Lx raised %s" w (Printexc.to_string e)
  done;
  (* The 15-bit opcode space is sparsely assigned, so random words hit
     unassigned codes often; none of them may crash. *)
  Alcotest.(check bool) "some words decode to the ILLEGAL marker" true
    (!illegal > 0)

let test_illegal_marker () =
  (* An unassigned code in the ALU class tag decodes to the marker, which
     no configuration reports as supported. *)
  let used = List.map snd (Enc.all_codes table) in
  let free =
    let rec find c = if List.mem c used then find (c + 1) else c in
    find 1
  in
  let w = Int64.shift_left (Int64.of_int free) (64 - cfg.Config.opcode_bits) in
  let i = Enc.decode table cfg w in
  Alcotest.(check bool) "marker" true (Enc.is_illegal i.Isa.op);
  Alcotest.(check bool) "unsupported" false (Config.op_supported cfg i.Isa.op);
  (* Legal opcodes are never mistaken for the marker. *)
  List.iter
    (fun (op, _) ->
      Alcotest.(check bool) (Isa.string_of_opcode op) false (Enc.is_illegal op))
    (Enc.all_codes table)

(* Every legal opcode round-trips through encode/decode with a
   representative operand assignment matching its field usage. *)
let representative op =
  let s r = Isa.Sreg r and im v = Isa.Simm v in
  let mk = mk op in
  match op with
  | Isa.CMPP _ -> mk ~d1:1 ~d2:2 ~s1:(s 3) ~s2:(im (-5)) ~g:1 ()
  | Isa.PBRR -> mk ~d1:1 ~s1:(im 9) ~g:1 ()
  | Isa.BRL -> mk ~d1:2 ~s1:(im 0) ~g:1 ()
  | Isa.BRU_ -> mk ~s1:(im 1) ~g:1 ()
  | Isa.BRCT | Isa.BRCF -> mk ~s1:(im 1) ~s2:(im 2) ~g:1 ()
  | Isa.ST _ -> mk ~d1:3 ~s1:(s 4) ~s2:(s 5) ~g:1 ()
  | Isa.LD _ | Isa.LDU _ -> mk ~d1:6 ~s1:(s 7) ~s2:(im 8) ~g:1 ()
  | Isa.HALT | Isa.NOP -> mk ()
  | Isa.ABS | Isa.MOV -> mk ~d1:5 ~s1:(s 2) ~g:1 ()
  | _ -> mk ~d1:5 ~s1:(s 2) ~s2:(im (-5)) ~g:1 ()

let test_roundtrip_all_opcodes () =
  List.iter (fun (op, _) -> roundtrip (representative op)) (Enc.all_codes table)

let suite =
  [
    Alcotest.test_case "NOP encodes to zero" `Quick test_nop_is_zero;
    Alcotest.test_case "all opcodes numbered" `Quick test_all_opcodes_numbered;
    Alcotest.test_case "codes distinct" `Quick test_codes_distinct;
    Alcotest.test_case "Hamming clustering by unit" `Quick test_hamming_clustering;
    Alcotest.test_case "roundtrip samples" `Quick test_roundtrip_samples;
    Alcotest.test_case "range errors" `Quick test_range_errors;
    Alcotest.test_case "regs_per_inst limit" `Quick test_regs_per_inst_limit;
    Alcotest.test_case "custom op encoding" `Quick test_custom_op_encoding;
    Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
    Alcotest.test_case "big-endian layout" `Quick test_big_endian_layout;
    Alcotest.test_case "decode is total" `Quick test_decode_total;
    Alcotest.test_case "illegal-opcode marker" `Quick test_illegal_marker;
    Alcotest.test_case "roundtrip all opcodes" `Quick test_roundtrip_all_opcodes;
    QCheck_alcotest.to_alcotest prop_encode_decode;
    QCheck_alcotest.to_alcotest prop_bytes_roundtrip;
    QCheck_alcotest.to_alcotest prop_narrow_format;
  ]
