(* Custom instructions (paper Section 3.3): "inclusion or exclusion of a
   custom instruction only requires modifications of the concerned
   functional unit" — and on the tools side, only a configuration change.

   This example adds the ROTR (rotate right) custom operation to the ALUs
   and compiles SHA-256 twice: with its rotations expanded to three base
   operations, and with the single custom instruction.  It also shows the
   other direction of customisation — removing the divider when the
   application never divides.

   Run with: dune exec examples/custom_instruction.exe *)

module Sources = Epic.Workloads.Sources

let cycles cfg (bm : Sources.benchmark) =
  (Epic.Toolchain.epic_cycles cfg ~source:bm.Sources.bm_source
     ~expected:bm.Sources.bm_expected ())
    .Epic.Sim.cycles

let () =
  let bytes = 2048 in
  let base_cfg = Epic.Config.default in
  let rotr_cfg = Epic.Config.add_custom base_cfg "ROTR" in

  let plain = Sources.sha_benchmark ~bytes () in
  let with_rotr = Sources.sha_benchmark ~use_rotr_custom:true ~bytes () in

  Printf.printf "SHA-256 of %d bytes on the default 4-ALU processor:\n\n" bytes;
  let c_plain = cycles base_cfg plain in
  let c_rotr = cycles rotr_cfg with_rotr in
  let s_plain = (Epic.Area.estimate base_cfg).Epic.Area.slices in
  let s_rotr = (Epic.Area.estimate rotr_cfg).Epic.Area.slices in
  Printf.printf "  %-28s %9s %9s\n" "" "cycles" "slices";
  Printf.printf "  %-28s %9d %9d\n" "base ISA (shift+or rotations)" c_plain s_plain;
  Printf.printf "  %-28s %9d %9d\n" "with X.ROTR custom op" c_rotr s_rotr;
  Printf.printf "  speedup %.2fx for %+d slices\n\n"
    (float_of_int c_plain /. float_of_int c_rotr)
    (s_rotr - s_plain);

  (* The reverse customisation: SHA never divides, so drop the divider
     ("ALUs do not need to support division if this operation is not
     required by the particular application program"). *)
  let lean_cfg =
    { rotr_cfg with Epic.Config.alu_omit = [ Epic.Isa.DIV; Epic.Isa.REM ] }
  in
  let c_lean = cycles lean_cfg with_rotr in
  let s_lean = (Epic.Area.estimate lean_cfg).Epic.Area.slices in
  Printf.printf "  %-28s %9d %9d\n" "…and without the divider" c_lean s_lean;
  Printf.printf "  same cycles, %d slices saved vs base (%.0f%% smaller)\n"
    (s_plain - s_lean)
    (100.0 *. float_of_int (s_plain - s_lean) /. float_of_int s_plain);

  (* The registry offers more; print what is available. *)
  print_endline "\nCustom-operation registry:";
  List.iter
    (fun c ->
      Printf.printf "  %-8s %4d slices/ALU  %s\n" c.Epic.Config.cop_name
        c.Epic.Config.cop_slices c.Epic.Config.cop_description)
    Epic.Config.registry
