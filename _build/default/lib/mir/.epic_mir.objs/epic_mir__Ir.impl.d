lib/mir/ir.ml: Format List Printf String
