(* Block-local constant folding, constant/copy propagation, algebraic
   simplification and strength reduction.  Operates with an empty fact set
   at block entry, so it needs no global dataflow and is trivially sound
   across join points. *)

module Ir = Epic_mir.Ir

type value = Const of int | Copy of Ir.vreg

type env = (Ir.vreg, value) Hashtbl.t

let resolve env (o : Ir.operand) =
  match o with
  | Ir.Imm _ -> o
  | Ir.Reg r ->
    (match Hashtbl.find_opt env r with
     | Some (Const c) -> Ir.Imm c
     | Some (Copy r') -> Ir.Reg r'
     | None -> o)

(* Invalidate everything that depends on [d]: its own binding and any copy
   chains ending at it. *)
let kill env d =
  Hashtbl.remove env d;
  let stale =
    Hashtbl.fold
      (fun v value acc -> match value with Copy r when r = d -> v :: acc | _ -> acc)
      env []
  in
  List.iter (Hashtbl.remove env) stale

let commutative = function
  | Ir.Add | Ir.Mul | Ir.And | Ir.Or | Ir.Xor | Ir.Min | Ir.Max -> true
  | Ir.Sub | Ir.Div | Ir.Rem | Ir.Shl | Ir.Shr | Ir.Shra -> false

(* Simplify a binary operation with resolved operands; returns the
   replacement kind. *)
let simplify_bin op d a b : Ir.inst_kind =
  let canonical_a, canonical_b =
    match (a, b) with
    | Ir.Imm _, Ir.Reg _ when commutative op -> (b, a)
    | _ -> (a, b)
  in
  let a = canonical_a and b = canonical_b in
  match (op, a, b) with
  | _, Ir.Imm x, Ir.Imm y ->
    (match Common.eval_binop op x y with
     | Some v -> Ir.Mov (d, Ir.Imm v)
     | None -> Ir.Bin (op, d, a, b))
  | (Ir.Add | Ir.Sub | Ir.Or | Ir.Xor | Ir.Shl | Ir.Shr | Ir.Shra), x, Ir.Imm 0 ->
    Ir.Mov (d, x)
  | Ir.Mul, _, Ir.Imm 0 -> Ir.Mov (d, Ir.Imm 0)
  | (Ir.Mul | Ir.Div), x, Ir.Imm 1 -> Ir.Mov (d, x)
  | Ir.Rem, _, Ir.Imm 1 -> Ir.Mov (d, Ir.Imm 0)
  | Ir.And, _, Ir.Imm 0 -> Ir.Mov (d, Ir.Imm 0)
  | Ir.And, x, Ir.Imm m when m land 0xFFFFFFFF = 0xFFFFFFFF -> Ir.Mov (d, x)
  | Ir.Mul, x, Ir.Imm k when Common.is_pow2 k ->
    Ir.Bin (Ir.Shl, d, x, Ir.Imm (Common.log2 k))
  | Ir.Sub, Ir.Reg x, Ir.Reg y when x = y -> Ir.Mov (d, Ir.Imm 0)
  | Ir.Xor, Ir.Reg x, Ir.Reg y when x = y -> Ir.Mov (d, Ir.Imm 0)
  | (Ir.And | Ir.Or | Ir.Min | Ir.Max), Ir.Reg x, Ir.Reg y when x = y ->
    Ir.Mov (d, Ir.Reg x)
  | _ -> Ir.Bin (op, d, a, b)

let run_block env (b : Ir.block) =
  Hashtbl.reset env;
  let rewrite (i : Ir.inst) : Ir.inst =
    let guarded = i.Ir.guard <> None in
    let record d value = if not guarded then Hashtbl.replace env d value in
    let kind =
      match i.Ir.kind with
      | Ir.Bin (op, d, a, b) ->
        let a = resolve env a and b = resolve env b in
        let k = simplify_bin op d a b in
        kill env d;
        (match k with
         | Ir.Mov (_, Ir.Imm c) -> record d (Const c)
         | Ir.Mov (_, Ir.Reg r) -> record d (Copy r)
         | _ -> ());
        k
      | Ir.Mov (d, a) ->
        let a = resolve env a in
        kill env d;
        (match a with
         | Ir.Imm c -> record d (Const c)
         | Ir.Reg r -> record d (Copy r));
        Ir.Mov (d, a)
      | Ir.Cmp (r, d, a, b) ->
        let a = resolve env a and b = resolve env b in
        kill env d;
        (match (a, b) with
         | Ir.Imm x, Ir.Imm y ->
           let v = if Common.eval_relop r x y then 1 else 0 in
           record d (Const v);
           Ir.Mov (d, Ir.Imm v)
         | _ -> Ir.Cmp (r, d, a, b))
      | Ir.Setp (r, q, a, b) -> Ir.Setp (r, q, resolve env a, resolve env b)
      | Ir.Custom (n, d, a, b) ->
        let a = resolve env a and b = resolve env b in
        kill env d;
        Ir.Custom (n, d, a, b)
      | Ir.Load (sz, e, d, base, off) ->
        let base = resolve env base and off = resolve env off in
        kill env d;
        Ir.Load (sz, e, d, base, off)
      | Ir.Store (sz, a, v) -> Ir.Store (sz, resolve env a, resolve env v)
      | Ir.Call (d, f, args) ->
        let args = List.map (resolve env) args in
        (match d with Some d -> kill env d | None -> ());
        Ir.Call (d, f, args)
      | Ir.AddrOf (d, g) -> kill env d; Ir.AddrOf (d, g)
      | Ir.FrameAddr (d, off) -> kill env d; Ir.FrameAddr (d, off)
      | Ir.LoadFrame (d, off) -> kill env d; Ir.LoadFrame (d, off)
      | Ir.StoreFrame (off, r) -> Ir.StoreFrame (off, r)
    in
    { i with Ir.kind }
  in
  b.Ir.b_insts <- List.map rewrite b.Ir.b_insts;
  b.Ir.b_term <-
    (match b.Ir.b_term with
     | Ir.Ret (Some o) -> Ir.Ret (Some (resolve env o))
     | Ir.Ret None -> Ir.Ret None
     | Ir.Jmp l -> Ir.Jmp l
     | Ir.Br (r, a, b', lt, lf) -> Ir.Br (r, resolve env a, resolve env b', lt, lf))

let run (p : Ir.program) =
  let env = Hashtbl.create 64 in
  List.iter (fun (f : Ir.func) -> List.iter (run_block env) f.Ir.f_blocks) p.Ir.p_funcs;
  p
