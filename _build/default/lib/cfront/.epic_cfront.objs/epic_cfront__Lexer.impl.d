lib/cfront/lexer.ml: Ast Char List Printf String
