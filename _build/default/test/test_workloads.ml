(* Workload validation: the OCaml references against published test
   vectors, and the compiled benchmarks (via the MIR interpreter) against
   the references. *)

module W = Epic.Workloads
module Cfront = Epic.Cfront
module Interp = Epic.Interp

let test_sha256_vectors () =
  let check msg hex =
    Alcotest.(check string) msg hex (W.Sha256_ref.to_hex (W.Sha256_ref.digest_string msg))
  in
  check "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check "" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  check "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
  (* Exercise multi-block padding boundaries: 55, 56 and 64 bytes. *)
  let rep n c = String.make n c in
  check (rep 55 'a') "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318";
  check (rep 56 'a') "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a";
  check (rep 64 'a') "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"

let test_aes_fips_vector () =
  (* FIPS-197 Appendix C.1 / B: key 000102...0f, plaintext 00112233...ff *)
  let key = Array.init 16 (fun i -> i) in
  let pt = Array.init 16 (fun i -> (i lsl 4) lor i) in
  let w = W.Aes_ref.expand_key key in
  let ct = W.Aes_ref.encrypt_block w pt in
  let expected =
    [| 0x69; 0xc4; 0xe0; 0xd8; 0x6a; 0x7b; 0x04; 0x30; 0xd8; 0xcd; 0xb7; 0x80;
       0x70; 0xb4; 0xc5; 0x5a |]
  in
  Alcotest.(check (array int)) "ciphertext" expected ct;
  Alcotest.(check (array int)) "decrypt inverts" pt (W.Aes_ref.decrypt_block w ct)

let test_aes_roundtrip_random () =
  let prng = W.Prng.create ~seed:0xBEEF () in
  for _ = 1 to 20 do
    let key = Array.init 16 (fun _ -> W.Prng.next_byte prng) in
    let pt = Array.init 16 (fun _ -> W.Prng.next_byte prng) in
    let w = W.Aes_ref.expand_key key in
    Alcotest.(check (array int)) "roundtrip" pt
      (W.Aes_ref.decrypt_block w (W.Aes_ref.encrypt_block w pt))
  done

let test_dct_accuracy () =
  (* Fixed-point DCT roundtrip error stays small on random blocks. *)
  let prng = W.Prng.create ~seed:0xD0C7 () in
  for _ = 1 to 50 do
    let blk = Array.init 64 (fun _ -> W.Prng.next_byte prng) in
    let e = W.Dct_ref.max_error blk in
    if e > 2 then Alcotest.failf "DCT roundtrip error %d too large" e
  done;
  (* A constant block is reproduced exactly up to rounding. *)
  let flat = Array.make 64 128 in
  Alcotest.(check bool) "flat block error <= 1" true (W.Dct_ref.max_error flat <= 1)

let test_dct_dc_coefficient () =
  (* The DC coefficient of a constant block is 8 * value (within fixed-
     point rounding) and all ACs are ~0. *)
  let flat = Array.make 64 100 in
  let c = W.Dct_ref.forward flat in
  Alcotest.(check bool) "DC close to 800" true (abs (c.(0) - 800) <= 2);
  for i = 1 to 63 do
    if abs c.(i) > 1 then Alcotest.failf "AC coefficient %d = %d" i c.(i)
  done

let test_dijkstra_vs_floyd () =
  let prng = W.Prng.create ~seed:0xF10D () in
  let n = 12 in
  let adj = W.Dijkstra_ref.generate_graph prng n in
  let fw = W.Dijkstra_ref.floyd_warshall adj n in
  for s = 0 to n - 1 do
    let d = W.Dijkstra_ref.single_source adj n s in
    for t = 0 to n - 1 do
      Alcotest.(check int) (Printf.sprintf "d(%d,%d)" s t) fw.((s * n) + t) d.(t)
    done
  done

let test_prng_c_matches_ocaml () =
  let src =
    W.Prng.c_source ()
    ^ "int out[16];\n\
       int main() {\n\
       \  int i;\n\
       \  for (i = 0; i < 16; i++) out[i] = prng_next();\n\
       \  return out[15];\n\
       }\n"
  in
  let p = Cfront.compile src in
  let res = Interp.run p ~entry:"main" in
  let prng = W.Prng.create () in
  let expected = ref 0 in
  for _ = 1 to 16 do
    expected := W.Prng.next prng
  done;
  Alcotest.(check int) "16th value" !expected res.Interp.ret

(* The integration tests: every benchmark compiles and computes its
   reference checksum, unoptimised and optimised. *)
let run_benchmark ?(optimise = false) (bm : W.Sources.benchmark) =
  let p = Cfront.compile bm.W.Sources.bm_source in
  let p = if optimise then Epic.Opt.for_epic p else p in
  let custom name a b =
    match Epic.Config.registry_find name with
    | Some c -> c.Epic.Config.cop_semantics ~width:32 a b
    | None -> Alcotest.failf "unknown custom op %s" name
  in
  let res = Interp.run ~custom p ~entry:"main" in
  Alcotest.(check int)
    (Printf.sprintf "%s checksum" bm.W.Sources.bm_name)
    bm.W.Sources.bm_expected res.Interp.ret

let test_benchmark_small _name mk = fun () -> run_benchmark (mk ())

let suite =
  [
    Alcotest.test_case "SHA-256 test vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "AES FIPS-197 vector" `Quick test_aes_fips_vector;
    Alcotest.test_case "AES random roundtrips" `Quick test_aes_roundtrip_random;
    Alcotest.test_case "DCT fixed-point accuracy" `Quick test_dct_accuracy;
    Alcotest.test_case "DCT DC coefficient" `Quick test_dct_dc_coefficient;
    Alcotest.test_case "Dijkstra vs Floyd-Warshall" `Quick test_dijkstra_vs_floyd;
    Alcotest.test_case "PRNG C matches OCaml" `Quick test_prng_c_matches_ocaml;
    Alcotest.test_case "sha benchmark (interp)" `Quick
      (test_benchmark_small "sha" (fun () -> W.Sources.sha_benchmark ~bytes:128 ()));
    Alcotest.test_case "sha benchmark with ROTR custom op" `Quick
      (test_benchmark_small "sha-rotr"
         (fun () -> W.Sources.sha_benchmark ~use_rotr_custom:true ~bytes:128 ()));
    Alcotest.test_case "aes benchmark (interp)" `Quick
      (test_benchmark_small "aes" (fun () -> W.Sources.aes_benchmark ~iters:3 ()));
    Alcotest.test_case "dct benchmark (interp)" `Quick
      (test_benchmark_small "dct" (fun () -> W.Sources.dct_benchmark ~width:16 ~height:8 ()));
    Alcotest.test_case "dijkstra benchmark (interp)" `Quick
      (test_benchmark_small "dijkstra" (fun () -> W.Sources.dijkstra_benchmark ~nodes:10 ()));
    Alcotest.test_case "sha benchmark optimised" `Quick (fun () ->
        run_benchmark ~optimise:true (W.Sources.sha_benchmark ~bytes:128 ()));
    Alcotest.test_case "aes benchmark optimised" `Quick (fun () ->
        run_benchmark ~optimise:true (W.Sources.aes_benchmark ~iters:3 ()));
    Alcotest.test_case "dct benchmark optimised" `Quick (fun () ->
        run_benchmark ~optimise:true (W.Sources.dct_benchmark ~width:16 ~height:8 ()));
    Alcotest.test_case "dijkstra benchmark optimised" `Quick (fun () ->
        run_benchmark ~optimise:true (W.Sources.dijkstra_benchmark ~nodes:10 ()));
  ]
