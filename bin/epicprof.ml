(* epicprof: compile an EPIC-C program, run it on the cycle-level
   simulator with the profiler attached, and report where the cycles go —
   per function, per basic block (with stall-cause breakdown), per
   functional unit — or export the run as Chrome trace-event JSON
   (chrome://tracing / Perfetto) or a machine-readable JSON report. *)

open Cmdliner

type format = Text | Json | Chrome_trace

let run input cfg no_pred format output top =
  Cli_common.handle_errors @@ fun () ->
  let source = Cli_common.read_file input in
  let a = Epic.Toolchain.compile_epic cfg ~source ~predication:(not no_pred) () in
  let keep_events = format = Chrome_trace in
  let r, prof = Epic.Toolchain.profile_epic ~keep_events a in
  let stats = r.Epic.Sim.stats in
  let report = Epic.Profile.report prof in
  (* The attribution is conservative by construction; refuse to emit a
     report that fails to account for every cycle. *)
  if report.Epic.Profile.rp_cycles <> stats.Epic.Sim.cycles then
    failwith
      (Printf.sprintf "profile accounted for %d of %d cycles"
         report.Epic.Profile.rp_cycles stats.Epic.Sim.cycles);
  let with_out f =
    match output with
    | None -> f stdout
    | Some path ->
      let oc = open_out path in
      f oc;
      close_out oc
  in
  (match format with
   | Text ->
     with_out (fun oc ->
         let ppf = Format.formatter_of_out_channel oc in
         Format.fprintf ppf
           "%s: returned %d (0x%08x) in %d cycles (ILP %.2f)@.@.%a@.@,\
            hottest blocks:@.%a@."
           input r.Epic.Sim.ret r.Epic.Sim.ret stats.Epic.Sim.cycles
           (Epic.Sim.ilp stats) Epic.Profile.pp_report report
           (Epic.Profile.pp_hot ~top prof)
           report)
   | Json ->
     with_out (fun oc ->
         output_string oc
           (Epic.Profile.Json.to_string
              (Epic.Profile.Json.Obj
                 [
                   ("source", Epic.Profile.Json.Str input);
                   ("return", Epic.Profile.Json.Int r.Epic.Sim.ret);
                   ("stats", Epic.Profile.stats_to_json stats);
                   ("profile", Epic.Profile.report_to_json report);
                 ]));
         output_string oc "\n")
   | Chrome_trace -> with_out (Epic.Profile.chrome_trace_to_channel prof));
  if output <> None then
    Printf.eprintf "%s: %d cycles profiled, report written to %s\n" input
      stats.Epic.Sim.cycles
      (Option.get output)

let cmd =
  let no_pred =
    Arg.(value & flag & info [ "no-predication" ] ~doc:"Disable if-conversion.")
  in
  let format =
    let fmt_conv =
      Arg.enum
        [ ("text", Text); ("json", Json); ("chrome-trace", Chrome_trace) ]
    in
    Arg.(value & opt fmt_conv Text & info [ "format" ] ~docv:"FMT"
         ~doc:"Output format: $(b,text) (tables + annotated hot blocks), \
               $(b,json) (machine-readable report), or $(b,chrome-trace) \
               (trace-event JSON for chrome://tracing / Perfetto).")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write the report to $(docv) instead of standard output.")
  in
  let top =
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"N"
         ~doc:"Number of hot blocks to annotate in the text report.")
  in
  Cmd.v
    (Cmd.info "epicprof"
       ~doc:"Profile EPIC-C programs on the cycle-level EPIC simulator")
    Term.(const run $ Cli_common.input_term $ Cli_common.config_term $ no_pred
          $ format $ output $ top)

let () = exit (Cmd.eval cmd)
