(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see the experiment index in DESIGN.md) and, for each,
   registers a Bechamel measurement of the machinery behind it.

   Usage:
     dune exec bench/main.exe                 -- everything, default sizes
     dune exec bench/main.exe -- table1       -- one experiment
     dune exec bench/main.exe -- --full all   -- paper-sized inputs
     dune exec bench/main.exe -- bechamel     -- only the Bechamel suite
     dune exec bench/main.exe -- perf         -- host sim-rate table (only
                                                 when named: machine-dependent)

   Cycle counts are deterministic, so the tables need a single run; the
   Bechamel suite measures wall-clock throughput of the toolchain +
   simulator on small instances (one Test per table/figure). *)

module E = Epic.Experiments
module Config = Epic.Config
module Area = Epic.Area

(* Paper reference points (Section 5.2).  The prose fixes the derived
   ratios we compare against: same-clock speedups of the 4-ALU design of
   3.8x (SHA), 12.3x (DCT) and 1.7x (Dijkstra); wall-clock advantages of
   60% (SHA) and 515% (DCT); and the SA-110 winning AES and Dijkstra
   outright. *)
let paper_same_clock = [ ("sha", 3.8); ("dct", 12.3); ("dijkstra", 1.7) ]
let paper_wall_clock = [ ("sha", 1.6); ("dct", 6.15) ]

let hr title =
  Printf.printf "\n=== %s %s\n" title (String.make (max 0 (66 - String.length title)) '=')

let print_table1 rows =
  hr "E1 / Table 1: clock cycles (SA-110 vs EPIC with 1-4 ALUs)";
  Printf.printf "%-10s %12s %12s %12s %12s %12s\n" "" "SA-110" "1 ALU" "2 ALUs"
    "3 ALUs" "4 ALUs";
  List.iter
    (fun (r : E.table1_row) ->
      Printf.printf "%-10s %12d" r.E.t1_name r.E.t1_sa110;
      List.iter (fun (_, c) -> Printf.printf " %12d" c) r.E.t1_epic;
      print_newline ())
    rows;
  hr "D1: derived claims vs paper";
  Printf.printf "%-10s %22s %22s\n" "" "same-clock (paper)" "wall-clock (paper)";
  List.iter
    (fun (r : E.table1_row) ->
      let sp = E.speedups r in
      let ref_str table =
        match List.assoc_opt r.E.t1_name table with
        | Some v -> Printf.sprintf "%.2f" v
        | None -> "SA-110 wins"
      in
      Printf.printf "%-10s %10.2fx %10s %10.2fx %10s\n" r.E.t1_name
        sp.E.sp_same_clock
        (ref_str paper_same_clock)
        sp.E.sp_wall_clock
        (ref_str paper_wall_clock))
    rows

let print_fig n title rows name =
  hr (Printf.sprintf "E%d / Figure %d: %s execution time" n (n + 1) title);
  match List.find_opt (fun (r : E.table1_row) -> r.E.t1_name = name) rows with
  | None -> ()
  | Some row ->
    let pts = E.fig_times row in
    let maxs = List.fold_left (fun m (p : E.fig_point) -> max m p.E.fp_seconds) 0.0 pts in
    List.iter
      (fun (p : E.fig_point) ->
        let bar = int_of_float (48.0 *. p.E.fp_seconds /. maxs) in
        Printf.printf "%-8s %10.6f s  %s\n" p.E.fp_label p.E.fp_seconds
          (String.make (max 1 bar) '#'))
      pts

let print_resources () =
  hr "E5 / Section 5.1: FPGA resource usage";
  Printf.printf "%6s %10s %14s %8s %8s %8s\n" "ALUs" "slices" "paper slices"
    "delta" "BRAMs" "MHz";
  List.iter
    (fun (r : E.resource_row) ->
      let paper = List.assoc_opt r.E.rr_alus E.paper_slices in
      let ps = match paper with Some v -> string_of_int v | None -> "-" in
      let delta =
        match paper with
        | Some v ->
          Printf.sprintf "%+.2f%%"
            (100.0 *. float_of_int (r.E.rr.Area.slices - v) /. float_of_int v)
        | None -> "-"
      in
      Printf.printf "%6d %10d %14s %8s %8d %8.1f\n" r.E.rr_alus
        r.E.rr.Area.slices ps delta r.E.rr.Area.brams r.E.rr.Area.clock_mhz)
    (E.resources ());
  Printf.printf "\nper-ALU increment ~2600 slices (paper: \"around 2600\"); \
                 register file maps to block RAM.\n"

let print_ablate_ports pts =
  hr "A1: register-file port budget and forwarding (SHA, 4 ALUs)";
  Printf.printf "%8s %12s %10s %12s\n" "ports" "forwarding" "cycles" "port stalls";
  List.iter
    (fun (p : E.port_point) ->
      Printf.printf "%8d %12b %10d %12d\n" p.E.pp_budget p.E.pp_forwarding
        p.E.pp_cycles p.E.pp_port_stalls)
    pts

let print_ablate_custom pts =
  hr "A2: ROTR custom instruction (SHA, 4 ALUs)";
  Printf.printf "%-12s %10s %10s\n" "" "cycles" "slices";
  List.iter
    (fun (c : E.custom_point) ->
      Printf.printf "%-12s %10d %10d\n" c.E.cp_label c.E.cp_cycles c.E.cp_slices)
    pts;
  match pts with
  | [ base; rotr ] ->
    Printf.printf "speedup %.2fx for %+d slices\n"
      (float_of_int base.E.cp_cycles /. float_of_int rotr.E.cp_cycles)
      (rotr.E.cp_slices - base.E.cp_slices)
  | _ -> ()

let print_ablate_issue pts =
  hr "A3: instructions per issue (DCT, 4 ALUs)";
  Printf.printf "%8s %10s %12s\n" "issue" "cycles" "nop slots";
  List.iter
    (fun (p : E.issue_point) ->
      Printf.printf "%8d %10d %12d\n" p.E.ip_issue p.E.ip_cycles p.E.ip_nops)
    pts

let print_ablate_pred pts =
  hr "A4: predication (if-conversion) on/off (4 ALUs)";
  Printf.printf "%-10s %14s %14s %10s\n" "" "predicated" "branches" "speedup";
  List.iter
    (fun (p : E.pred_point) ->
      Printf.printf "%-10s %14d %14d %9.2fx\n" p.E.dp_name p.E.dp_with
        p.E.dp_without
        (float_of_int p.E.dp_without /. float_of_int p.E.dp_with))
    pts

let print_ablate_pipeline pts =
  hr "A5: pipeline depth (future work: parameterised pipelining)";
  Printf.printf "%-10s %8s %10s %10s %8s %12s\n" "" "stages" "cycles"
    "bubbles" "MHz" "time (us)";
  List.iter
    (fun (p : E.pipe_point) ->
      Printf.printf "%-10s %8d %10d %10d %8.1f %12.1f\n" p.E.pl_name
        p.E.pl_stages p.E.pl_cycles p.E.pl_bubbles p.E.pl_mhz p.E.pl_micros)
    pts

let print_ablate_power pts =
  hr "A6: power/performance across the ALU sweep (DCT)";
  Printf.printf "%6s %10s %12s %12s %12s %12s\n" "ALUs" "cycles" "time (us)"
    "dyn (mW)" "total (mW)" "energy (uJ)";
  List.iter
    (fun (p : E.power_point) ->
      Printf.printf "%6d %10d %12.1f %12.1f %12.1f %12.2f\n" p.E.po_alus
        p.E.po_cycles p.E.po_micros p.E.po_power.Area.pw_dynamic_mw
        p.E.po_power.Area.pw_total_mw p.E.po_power.Area.pw_energy_uj)
    pts

let print_ablate_autogen pts =
  hr "A7: automatic custom-instruction generation (SHA)";
  Printf.printf "%6s %12s %14s %9s %10s %12s\n" "ALUs" "base cyc"
    "specialised" "speedup" "slices" "(+custom)";
  List.iter
    (fun (p : E.autogen_point) ->
      Printf.printf "%6d %12d %14d %8.2fx %10d %12d\n" p.E.ag_alus
        p.E.ag_base_cycles p.E.ag_spec_cycles
        (float_of_int p.E.ag_base_cycles /. float_of_int p.E.ag_spec_cycles)
        p.E.ag_base_slices p.E.ag_spec_slices)
    pts;
  (match pts with
   | p :: _ ->
     Printf.printf "generated: %s\n" (String.concat ", " p.E.ag_generated)
   | [] -> ())

let print_ablate_unroll pts =
  hr "A8: loop unrolling factor (4 ALUs)";
  Printf.printf "%-10s %8s %10s\n" "" "unroll" "cycles";
  List.iter
    (fun (p : E.unroll_point) ->
      Printf.printf "%-10s %8d %10d\n" p.E.un_name p.E.un_factor p.E.un_cycles)
    pts

let print_ablate_passes pts =
  hr "A9: optimisation-pass ablation (SHA, 4 ALUs)";
  Printf.printf "%-16s %10s %10s %10s\n" "disabled" "cycles" "ops" "slowdown";
  match pts with
  | [] -> ()
  | base :: rest ->
    Printf.printf "%-16s %10d %10d %10s\n" "(none)" base.E.pa_cycles
      base.E.pa_static_ops "-";
    List.iter
      (fun (p : E.pass_point) ->
        Printf.printf "%-16s %10d %10d %9.2fx\n" p.E.pa_pass p.E.pa_cycles
          p.E.pa_static_ops
          (float_of_int p.E.pa_cycles /. float_of_int base.E.pa_cycles))
      rest

(* ------------------------------------------------------------------ *)
(* Machine-readable dump (--json <file>): every table's rows as JSON via
   the profiler's exporter, so BENCH_*.json trajectories can be produced
   mechanically. *)

module J = Epic.Profile.Json

let json_of_table1 rows =
  J.List
    (List.map
       (fun (r : E.table1_row) ->
         let sp = E.speedups r in
         J.Obj
           [
             ("benchmark", J.Str r.E.t1_name);
             ("sa110_cycles", J.Int r.E.t1_sa110);
             ( "epic_cycles",
               J.Obj
                 (List.map
                    (fun (alus, c) -> (string_of_int alus, J.Int c))
                    r.E.t1_epic) );
             ("same_clock_speedup", J.Float sp.E.sp_same_clock);
             ("wall_clock_speedup", J.Float sp.E.sp_wall_clock);
           ])
       rows)

let json_of_resources rows =
  J.List
    (List.map
       (fun (r : E.resource_row) ->
         J.Obj
           [
             ("alus", J.Int r.E.rr_alus);
             ("slices", J.Int r.E.rr.Area.slices);
             ("brams", J.Int r.E.rr.Area.brams);
             ("clock_mhz", J.Float r.E.rr.Area.clock_mhz);
             ( "paper_slices",
               match List.assoc_opt r.E.rr_alus E.paper_slices with
               | Some v -> J.Int v
               | None -> J.Null );
           ])
       rows)

let json_of_ports pts =
  J.List
    (List.map
       (fun (p : E.port_point) ->
         J.Obj
           [
             ("ports", J.Int p.E.pp_budget);
             ("forwarding", J.Bool p.E.pp_forwarding);
             ("cycles", J.Int p.E.pp_cycles);
             ("port_stalls", J.Int p.E.pp_port_stalls);
           ])
       pts)

let json_of_custom pts =
  J.List
    (List.map
       (fun (c : E.custom_point) ->
         J.Obj
           [
             ("config", J.Str c.E.cp_label);
             ("cycles", J.Int c.E.cp_cycles);
             ("slices", J.Int c.E.cp_slices);
           ])
       pts)

let json_of_issue pts =
  J.List
    (List.map
       (fun (p : E.issue_point) ->
         J.Obj
           [
             ("issue", J.Int p.E.ip_issue);
             ("cycles", J.Int p.E.ip_cycles);
             ("nops", J.Int p.E.ip_nops);
           ])
       pts)

let json_of_pred pts =
  J.List
    (List.map
       (fun (p : E.pred_point) ->
         J.Obj
           [
             ("benchmark", J.Str p.E.dp_name);
             ("predicated_cycles", J.Int p.E.dp_with);
             ("branching_cycles", J.Int p.E.dp_without);
           ])
       pts)

let json_of_pipeline pts =
  J.List
    (List.map
       (fun (p : E.pipe_point) ->
         J.Obj
           [
             ("benchmark", J.Str p.E.pl_name);
             ("stages", J.Int p.E.pl_stages);
             ("cycles", J.Int p.E.pl_cycles);
             ("bubbles", J.Int p.E.pl_bubbles);
             ("clock_mhz", J.Float p.E.pl_mhz);
             ("micros", J.Float p.E.pl_micros);
           ])
       pts)

let json_of_power pts =
  J.List
    (List.map
       (fun (p : E.power_point) ->
         J.Obj
           [
             ("alus", J.Int p.E.po_alus);
             ("cycles", J.Int p.E.po_cycles);
             ("micros", J.Float p.E.po_micros);
             ("dynamic_mw", J.Float p.E.po_power.Area.pw_dynamic_mw);
             ("total_mw", J.Float p.E.po_power.Area.pw_total_mw);
             ("energy_uj", J.Float p.E.po_power.Area.pw_energy_uj);
           ])
       pts)

let json_of_autogen pts =
  J.List
    (List.map
       (fun (p : E.autogen_point) ->
         J.Obj
           [
             ("alus", J.Int p.E.ag_alus);
             ("base_cycles", J.Int p.E.ag_base_cycles);
             ("specialised_cycles", J.Int p.E.ag_spec_cycles);
             ("base_slices", J.Int p.E.ag_base_slices);
             ("specialised_slices", J.Int p.E.ag_spec_slices);
             ("generated", J.List (List.map (fun s -> J.Str s) p.E.ag_generated));
           ])
       pts)

let json_of_unroll pts =
  J.List
    (List.map
       (fun (p : E.unroll_point) ->
         J.Obj
           [
             ("benchmark", J.Str p.E.un_name);
             ("unroll", J.Int p.E.un_factor);
             ("cycles", J.Int p.E.un_cycles);
           ])
       pts)

let json_of_passes pts =
  J.List
    (List.map
       (fun (p : E.pass_point) ->
         J.Obj
           [
             ("disabled", J.Str p.E.pa_pass);
             ("cycles", J.Int p.E.pa_cycles);
             ("static_ops", J.Int p.E.pa_static_ops);
           ])
       pts)

let json_of_faults pts =
  J.List
    (List.map
       (fun (p : E.avf_point) ->
         J.Obj
           [
             ("benchmark", J.Str p.E.af_name);
             ("alus", J.Int p.E.af_alus);
             ("report", Epic.Fault.report_to_json p.E.af_report);
           ])
       pts)

let print_inject_faults (pts : E.avf_point list) =
  hr "Fault injection (A10): seeded single-bit-flip campaigns, AVF per structure";
  List.iter
    (fun (p : E.avf_point) ->
      Printf.printf "\n%s, %d ALU(s):\n" p.E.af_name p.E.af_alus;
      Format.printf "%a@." Epic.Fault.pp_report p.E.af_report)
    pts

(* ------------------------------------------------------------------ *)
(* Bechamel suite: one Test per table/figure, measuring the toolchain +
   simulator machinery on small instances. *)

let bechamel_suite () =
  let open Bechamel in
  let module Sources = Epic.Workloads.Sources in
  let run_epic cfg (bm : Sources.benchmark) () =
    let st =
      Epic.Toolchain.epic_cycles cfg ~source:bm.Sources.bm_source
        ~expected:bm.Sources.bm_expected ()
    in
    ignore st
  in
  let run_arm (bm : Sources.benchmark) () =
    ignore
      (Epic.Toolchain.arm_cycles ~source:bm.Sources.bm_source
         ~expected:bm.Sources.bm_expected ())
  in
  let sha = Sources.sha_benchmark ~bytes:128 () in
  let aes = Sources.aes_benchmark ~iters:2 () in
  let dct = Sources.dct_benchmark ~width:8 ~height:8 () in
  let dij = Sources.dijkstra_benchmark ~nodes:8 () in
  let cfg4 = Config.with_alus 4 in
  let t1 =
    Test.make_grouped ~name:"table1(E1)"
      [
        Test.make ~name:"sha/epic4" (Staged.stage (run_epic cfg4 sha));
        Test.make ~name:"aes/epic4" (Staged.stage (run_epic cfg4 aes));
        Test.make ~name:"dct/epic4" (Staged.stage (run_epic cfg4 dct));
        Test.make ~name:"dijkstra/epic4" (Staged.stage (run_epic cfg4 dij));
        Test.make ~name:"sha/sa110" (Staged.stage (run_arm sha));
      ]
  in
  let fig3 =
    Test.make ~name:"fig3(E2):sha-sweep"
      (Staged.stage (fun () ->
           List.iter (fun n -> run_epic (Config.with_alus n) sha ()) [ 1; 4 ]))
  in
  let fig4 =
    Test.make ~name:"fig4(E3):dct-sweep"
      (Staged.stage (fun () ->
           List.iter (fun n -> run_epic (Config.with_alus n) dct ()) [ 1; 4 ]))
  in
  let fig5 =
    Test.make ~name:"fig5(E4):dijkstra-sweep"
      (Staged.stage (fun () ->
           List.iter (fun n -> run_epic (Config.with_alus n) dij ()) [ 1; 4 ]))
  in
  let resources =
    Test.make ~name:"resources(E5):area-model"
      (Staged.stage (fun () ->
           List.iter
             (fun n -> ignore (Area.estimate (Config.with_alus n)))
             [ 1; 2; 3; 4 ]))
  in
  let ablations =
    Test.make_grouped ~name:"ablations"
      [
        Test.make ~name:"A1:ports"
          (Staged.stage (fun () ->
               run_epic { cfg4 with Config.rf_port_budget = 4 } sha ()));
        Test.make ~name:"A2:custom-rotr"
          (Staged.stage
             (let cfg = Config.add_custom cfg4 "ROTR" in
              let bm = Sources.sha_benchmark ~use_rotr_custom:true ~bytes:128 () in
              run_epic cfg bm));
        Test.make ~name:"A3:issue1"
          (Staged.stage (fun () ->
               run_epic { cfg4 with Config.issue_width = 1 } dct ()));
        Test.make ~name:"A4:no-predication"
          (Staged.stage (fun () ->
               let a =
                 Epic.Toolchain.compile_epic ~predication:false cfg4
                   ~source:dij.Sources.bm_source ()
               in
               ignore (Epic.Toolchain.run_epic a)));
      ]
  in
  let tests = Test.make_grouped ~name:"epic" [ t1; fig3; fig4; fig5; resources; ablations ] in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  hr "Bechamel: toolchain + simulator throughput (small instances)";
  Printf.printf "%-40s %16s\n" "test" "time/run";
  Hashtbl.iter
    (fun _measure tbl ->
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some (est :: _) ->
            let pretty =
              if est > 1e9 then Printf.sprintf "%8.2f s" (est /. 1e9)
              else if est > 1e6 then Printf.sprintf "%8.2f ms" (est /. 1e6)
              else Printf.sprintf "%8.2f us" (est /. 1e3)
            in
            Printf.printf "%-40s %16s\n" name pretty
          | _ -> Printf.printf "%-40s %16s\n" name "n/a")
        (List.sort compare rows))
    merged

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let quick = List.mem "--quick" args in
  (* --json <file>: dump every computed table's rows as JSON. *)
  let rec find_json = function
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> find_json rest
    | [] -> None
  in
  let json_path = find_json args in
  (* --jobs N: domains for the campaign grids; 0 or absent means the
     recommended domain count.  Results are identical for every value. *)
  let rec find_jobs = function
    | "--jobs" :: n :: _ -> int_of_string n
    | _ :: rest -> find_jobs rest
    | [] -> 0
  in
  let jobs =
    match find_jobs args with 0 -> Epic.Exec.default_jobs () | n -> n
  in
  let sizes =
    if full then E.paper_sizes
    else if quick then
      { E.sha_bytes = 256; aes_iters = 4; dct_size = (16, 16); dijkstra_nodes = 12 }
    else E.default_sizes
  in
  let selected =
    let rec drop_opts = function
      | ("--json" | "--jobs") :: _ :: rest -> drop_opts rest
      | x :: rest -> x :: drop_opts rest
      | [] -> []
    in
    List.filteri (fun i a -> i > 0 && a <> "--full" && a <> "--quick")
      (drop_opts args)
  in
  let want what = selected = [] || List.mem what selected || List.mem "all" selected in
  let json_acc = ref [] in
  let record key rows = json_acc := (key, rows) :: !json_acc in
  (* One compile cache shared by every campaign below: the 1-4 ALU sweep
     then compiles each workload's frontend once. *)
  let cache = Epic.Toolchain.Compile_cache.create () in
  let campaigns = ref [] in
  (* Campaign wall time and cache statistics go to stderr (and into the
     JSON meta section): stdout stays byte-identical across --jobs. *)
  let campaign label tasks f =
    let result, cs =
      Epic.Exec.run_campaign ~label ~jobs
        ~caches:(fun () -> Epic.Toolchain.Compile_cache.stats cache)
        ~tasks:(fun _ -> tasks) f
    in
    campaigns := cs :: !campaigns;
    result
  in
  Printf.printf
    "EPIC benchmark harness (sizes: sha=%dB aes=%d dct=%dx%d dijkstra=%d)\n"
    sizes.E.sha_bytes sizes.E.aes_iters (fst sizes.E.dct_size)
    (snd sizes.E.dct_size) sizes.E.dijkstra_nodes;
  let rows =
    if want "table1" || want "fig3" || want "fig4" || want "fig5" then
      Some
        (campaign "table1" (4 * (1 + List.length E.alu_sweep)) (fun () ->
             E.table1 ~jobs ~cache ~sizes ()))
    else None
  in
  (match rows with
   | Some rows ->
     record "table1" (json_of_table1 rows);
     if want "table1" then print_table1 rows;
     if want "fig3" then print_fig 2 "SHA" rows "sha";
     if want "fig4" then print_fig 3 "DCT" rows "dct";
     if want "fig5" then print_fig 4 "Dijkstra" rows "dijkstra"
   | None -> ());
  if want "resources" then begin
    record "resources" (json_of_resources (E.resources ()));
    print_resources ()
  end;
  if want "ablate-ports" then begin
    let pts = E.ablate_ports ~sizes () in
    record "ablate_ports" (json_of_ports pts);
    print_ablate_ports pts
  end;
  if want "ablate-custom" then begin
    let pts = E.ablate_custom ~sizes () in
    record "ablate_custom" (json_of_custom pts);
    print_ablate_custom pts
  end;
  if want "ablate-issue" then begin
    let pts = E.ablate_issue ~sizes () in
    record "ablate_issue" (json_of_issue pts);
    print_ablate_issue pts
  end;
  if want "ablate-pred" then begin
    let pts = E.ablate_predication ~sizes () in
    record "ablate_predication" (json_of_pred pts);
    print_ablate_pred pts
  end;
  if want "ablate-pipeline" then begin
    let pts = E.ablate_pipeline ~sizes () in
    record "ablate_pipeline" (json_of_pipeline pts);
    print_ablate_pipeline pts
  end;
  if want "ablate-power" then begin
    let pts = E.ablate_power ~sizes () in
    record "ablate_power" (json_of_power pts);
    print_ablate_power pts
  end;
  if want "ablate-autogen" then begin
    let pts = E.ablate_autogen ~sizes () in
    record "ablate_autogen" (json_of_autogen pts);
    print_ablate_autogen pts
  end;
  if want "ablate-unroll" then begin
    let pts = E.ablate_unroll ~sizes () in
    record "ablate_unroll" (json_of_unroll pts);
    print_ablate_unroll pts
  end;
  if want "ablate-passes" then begin
    let pts = E.ablate_passes ~sizes () in
    record "ablate_passes" (json_of_passes pts);
    print_ablate_passes pts
  end;
  if want "inject-faults" then begin
    (* Campaigns multiply simulation cost by runs x targets, so they use
       dedicated small inputs except under --full. *)
    let fsizes =
      if full then sizes
      else { E.sha_bytes = 64; aes_iters = 1; dct_size = (8, 8); dijkstra_nodes = 6 }
    in
    let alus = if quick then [ 4 ] else E.alu_sweep in
    let runs = if quick then 8 else 16 in
    let pts =
      campaign "inject-faults" (4 * List.length alus) (fun () ->
          E.inject_faults ~jobs ~cache ~sizes:fsizes ~alus ~runs ())
    in
    record "inject_faults" (json_of_faults pts);
    print_inject_faults pts
  end;
  (* Host-throughput table: machine-dependent by design, so it is only
     printed when named explicitly — the default stdout (and "all") stay
     byte-identical across hosts and --jobs values. *)
  if List.mem "perf" selected then begin
    let rows = E.sim_rate_table () in
    hr "perf: host simulator throughput (4 ALUs, small inputs)";
    Printf.printf "%-10s %12s %8s %14s\n" "workload" "cycles/run" "runs"
      "sim cyc/s";
    List.iter
      (fun (name, (r : E.sim_rate)) ->
        Printf.printf "%-10s %12d %8d %14.3e\n" name r.E.sr_cycles r.E.sr_runs
          r.E.sr_cycles_per_s)
      rows
  end;
  if want "bechamel" then bechamel_suite ();
  match json_path with
  | None -> ()
  | Some path ->
    let sizes_json =
      J.Obj
        [
          ("sha_bytes", J.Int sizes.E.sha_bytes);
          ("aes_iters", J.Int sizes.E.aes_iters);
          ("dct_width", J.Int (fst sizes.E.dct_size));
          ("dct_height", J.Int (snd sizes.E.dct_size));
          ("dijkstra_nodes", J.Int sizes.E.dijkstra_nodes);
        ]
    in
    (* The meta section records machine-dependent facts (jobs, wall time,
       cache traffic, host simulation throughput).  Determinism
       comparisons across --jobs values must ignore it; bench_gate uses
       it for the wall-time budget. *)
    let meta =
      J.Obj
        [
          ("jobs", J.Int jobs);
          ("sim_rate", E.sim_rate_to_json (E.sim_rate ()));
          (* Committed alongside the baseline: bench_gate requires the
             current run's sim rate >= baseline / this factor.  Generous
             because CI runners and the baseline recorder differ. *)
          ("sim_rate_tolerance", J.Float 10.0);
          ( "campaigns",
            J.List
              (List.rev_map Epic.Exec.campaign_stats_to_json !campaigns) );
        ]
    in
    let doc =
      J.Obj
        (("sizes", sizes_json) :: List.rev (("meta", meta) :: !json_acc))
    in
    let oc = open_out path in
    output_string oc (J.to_string doc);
    output_string oc "\n";
    close_out oc;
    Printf.printf "\nwrote %s\n" path
