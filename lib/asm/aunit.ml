(* Symbolic assembly units: the representation handed from the code
   generator/scheduler to the assembler.  Instructions are EPIC operations
   whose source fields may still reference code labels; the assembler
   resolves labels to instruction addresses, pads bundles with NOPs to the
   configured issue width (exactly what the paper's assembler does with
   Trimaran output, Section 4.2) and encodes the instruction stream. *)

module Isa = Epic_isa
module Config = Epic_config
module Enc = Epic_encoding
module Diag = Epic_diag

exception Asm_error of Diag.t

let fail ?ctx code fmt =
  Format.kasprintf
    (fun s -> raise (Asm_error (Diag.v ?context:ctx ~code s)))
    fmt

type src = Reg of int | Imm of int | Lab of string

type inst = {
  op : Isa.opcode;
  dst1 : int;
  dst2 : int;
  src1 : src;
  src2 : src;
  guard : int;
}

let nop = { op = Isa.NOP; dst1 = 0; dst2 = 0; src1 = Imm 0; src2 = Imm 0; guard = 0 }

let simple op ?(d1 = 0) ?(d2 = 0) ?(s1 = Imm 0) ?(s2 = Imm 0) ?(g = 0) () =
  { op; dst1 = d1; dst2 = d2; src1 = s1; src2 = s2; guard = g }

(* Approximate an unresolved instruction as a concrete one (labels become
   literal 0) so that the ISA's reads/writes/port metadata applies. *)
let to_isa_approx i =
  let conv = function Reg r -> Isa.Sreg r | Imm v -> Isa.Simm v | Lab _ -> Isa.Simm 0 in
  { Isa.op = i.op; dst1 = i.dst1; dst2 = i.dst2; src1 = conv i.src1;
    src2 = conv i.src2; guard = i.guard }

type item =
  | Ilabel of string
  | Ibundle of inst list  (* at most issue_width operations *)
  | Idirective of string  (* filtered, like Trimaran simulator directives *)

type t = { items : item list }

(* ------------------------------------------------------------------ *)
(* Resolution: labels -> instruction addresses; bundles -> padded rows. *)

(* Code addresses are BUNDLE indices: branch targets are always bundle-
   aligned (the fetch unit fetches whole issue packets), so BTRs hold
   bundle numbers and the literal field covers 2^14 - 1 bundles. *)
type image = {
  im_insts : Isa.inst array;   (* concrete stream, length = bundles * width *)
  im_symbols : (string * int) list;  (* label -> bundle index *)
  im_issue_width : int;
}

let resolve (cfg : Config.t) (u : t) =
  let w = cfg.Config.issue_width in
  (* First pass: labels bind to the next bundle's index. *)
  let addr = ref 0 in
  let symbols = ref [] in
  List.iter
    (function
      | Ilabel l ->
        if List.mem_assoc l !symbols then
          fail "asm/duplicate-label" ~ctx:[ ("label", l) ] "duplicate label %s" l;
        symbols := (l, !addr) :: !symbols
      | Ibundle insts ->
        if List.length insts > w then
          fail "asm/bundle-width" ~ctx:[ ("bundle", string_of_int !addr) ]
            "bundle of %d operations exceeds issue width %d" (List.length insts) w;
        if insts = [] then
          fail "asm/empty-bundle" ~ctx:[ ("bundle", string_of_int !addr) ] "empty bundle";
        incr addr
      | Idirective _ -> ())
    u.items;
  let symbols = List.rev !symbols in
  let lookup l =
    match List.assoc_opt l symbols with
    | Some a -> a
    | None -> fail "asm/undefined-label" ~ctx:[ ("label", l) ] "undefined label %s" l
  in
  let conv_src = function
    | Reg r -> Isa.Sreg r
    | Imm v -> Isa.Simm v
    | Lab l ->
      let a = lookup l in
      if not (Enc.literal_fits cfg a) then
        fail "asm/label-range" ~ctx:[ ("label", l); ("address", string_of_int a) ]
          "label %s resolves to %d, outside the literal range" l a;
      Isa.Simm a
  in
  let out = ref [] in
  List.iter
    (function
      | Ilabel _ | Idirective _ -> ()
      | Ibundle insts ->
        let concrete =
          List.map
            (fun i ->
              { Isa.op = i.op; dst1 = i.dst1; dst2 = i.dst2;
                src1 = conv_src i.src1; src2 = conv_src i.src2; guard = i.guard })
            insts
        in
        let padded =
          concrete @ List.init (w - List.length concrete) (fun _ -> Isa.nop)
        in
        out := List.rev_append padded !out)
    u.items;
  { im_insts = Array.of_list (List.rev !out); im_symbols = symbols; im_issue_width = w }

(* Count the no-ops inserted by padding (paper: "no-op instructions are
   used to make up the difference"). *)
let nop_count image =
  Array.fold_left
    (fun acc (i : Isa.inst) -> if i.Isa.op = Isa.NOP then acc + 1 else acc)
    0 image.im_insts

(* Static checks the assembler performs against the configuration header:
   every operation must be implemented and every operand encodable. *)
let check_image (cfg : Config.t) table image =
  Array.iteri
    (fun k inst ->
      try ignore (Enc.encode table cfg inst) with
      | Enc.Encode_error d ->
        raise
          (Asm_error
             (Diag.add_context
                [ ("inst", string_of_int k); ("op", Isa.string_of_opcode inst.Isa.op) ]
                d)))
    image.im_insts;
  image

let encode_image (cfg : Config.t) table image =
  Array.map (fun i -> Enc.encode table cfg i) image.im_insts

let decode_image (cfg : Config.t) table words =
  Array.map (fun w -> Enc.decode table cfg w) words

(* Full assembly entry point: resolve, validate, encode. *)
let assemble (cfg : Config.t) (u : t) =
  let table = Enc.make_table cfg in
  let image = check_image cfg table (resolve cfg u) in
  (image, encode_image cfg table image)
