(* epicfault: deterministic fault-injection campaigns.  Compiles an
   EPIC-C program for the configured processor, runs a clean golden
   simulation (cross-checked against the MIR reference interpreter), then
   injects seeded single-bit flips into the chosen architectural
   structures and prints the per-structure vulnerability table — as text
   or as machine-readable JSON. *)

open Cmdliner

let parse_targets s =
  if s = "all" then Epic.Fault.all_targets
  else
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun t -> t <> "")
    |> List.map (fun t ->
           match Epic.Fault.target_of_string t with
           | Some target -> target
           | None ->
             failwith
               (Printf.sprintf
                  "unknown fault target %S (expected gpr, pred, btr, mem, inst)"
                  t))

let run input cfg no_pred seed runs targets fuel_factor json with_faults
    pipeline jobs =
  Cli_common.handle_errors @@ fun () ->
  let source = Cli_common.read_file input in
  let targets = parse_targets targets in
  let a =
    Epic.Toolchain.compile_epic cfg ~source ~predication:(not no_pred)
      ~pipeline ()
  in
  Cli_common.report_pipeline pipeline a.Epic.Toolchain.ea_report;
  let rp =
    Cli_common.campaign ~label:"epicfault" ~jobs ~tasks:Epic.Fault.total_runs
      (fun () ->
        Epic.Toolchain.fault_campaign ~seed ~runs ~targets ~fuel_factor ~jobs a)
  in
  if json then
    print_endline
      (Epic.Profile.Json.to_string
         (Epic.Fault.report_to_json ~faults:with_faults rp))
  else begin
    Format.printf "%a@." Epic.Fault.pp_report rp;
    if with_faults then
      List.iter
        (fun (f, o) ->
          Format.printf "  %a -> %s@." Epic.Fault.pp_fault f
            (Epic.Fault.string_of_outcome o))
        rp.Epic.Fault.rp_faults
  end

let cmd =
  let no_pred =
    Arg.(value & flag & info [ "no-predication" ] ~doc:"Disable if-conversion.")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N"
           ~doc:"PRNG seed (non-zero); the same seed reproduces the identical \
                 campaign.")
  in
  let runs =
    Arg.(value & opt int 32
         & info [ "runs" ] ~docv:"N" ~doc:"Injected runs per target structure.")
  in
  let targets =
    Arg.(value & opt string "all"
         & info [ "targets" ] ~docv:"LIST"
           ~doc:"Comma-separated structures to inject into: gpr, pred, btr, \
                 mem, inst (default all).")
  in
  let fuel_factor =
    Arg.(value & opt int 4
         & info [ "fuel-factor" ] ~docv:"N"
           ~doc:"Watchdog budget for injected runs, as a multiple of the \
                 golden cycle count.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let with_faults =
    Arg.(value & flag
         & info [ "faults" ]
           ~doc:"Also list every injected fault with its classification.")
  in
  Cmd.v
    (Cmd.info "epicfault"
       ~doc:"Run deterministic fault-injection campaigns on the EPIC simulator")
    Term.(const run $ Cli_common.input_term $ Cli_common.config_term $ no_pred
          $ seed $ runs $ targets $ fuel_factor $ json $ with_faults
          $ Cli_common.pipeline_term $ Cli_common.jobs_term)

let () = exit (Cmd.eval cmd)
