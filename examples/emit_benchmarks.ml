(* Write the paper's four benchmark sources (default experiment-harness
   sizes) as EPIC-C files, so the command-line tools can be exercised on
   them directly:

     dune exec examples/emit_benchmarks.exe -- /tmp/bench
     dune exec bin/epicc.exe -- /tmp/bench/sha.c \
       --verify-ir --diff-check --time-passes > /dev/null

   Each file carries its expected checksum in a leading comment. *)

module S = Epic.Workloads.Sources

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (bm : S.benchmark) ->
      let path = Filename.concat dir (bm.S.bm_name ^ ".c") in
      let oc = open_out path in
      Printf.fprintf oc "// %s benchmark; main() returns 0x%08x\n%s"
        bm.S.bm_name bm.S.bm_expected bm.S.bm_source;
      close_out oc;
      Printf.printf "wrote %s\n" path)
    (S.all ())
