lib/workloads/sources.ml: Aes_ref Array Buffer Char Dct_ref Dijkstra_ref List Printf Prng Sha256_ref String
