lib/arm/epic_arm.ml: Arm_codegen Arm_isa Arm_sim Epic_mir Runtime
