(* Structured diagnostics: stable code + message + key/value context.
   The shared currency of user-facing errors across the toolchain. *)

type t = {
  code : string;
  message : string;
  context : (string * string) list;
}

exception Error of t

let v ?(context = []) ~code message = { code; message; context }

let errorf ?context ~code fmt =
  Format.kasprintf (fun message -> v ?context ~code message) fmt

let raisef ?context ~code fmt =
  Format.kasprintf (fun message -> raise (Error (v ?context ~code message))) fmt

let add_context extra d = { d with context = extra @ d.context }

let to_string d =
  let ctx =
    match d.context with
    | [] -> ""
    | l ->
      " ["
      ^ String.concat ", " (List.map (fun (k, value) -> k ^ "=" ^ value) l)
      ^ "]"
  in
  Printf.sprintf "%s: %s%s" d.code d.message ctx

let pp ppf d = Format.pp_print_string ppf (to_string d)

let to_string_list ds = String.concat "; " (List.map to_string ds)
