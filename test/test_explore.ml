(* Design-space exploration tests: the Pareto archive against the
   brute-force dominance filter (qcheck), structural properties of the
   subgraph candidate enumerator (convexity, port limits, semantic
   preservation of rewrites), area-model monotonicity along the explored
   axes, backend-only compilation, and the campaign driver's determinism
   contract (jobs-invariance, cold-vs-warm byte identity, warm hit rate,
   manifest resume). *)

module Pareto = Epic_explore.Pareto
module Subgraph = Epic_explore.Subgraph
module C = Epic_explore.Campaign
module CG = Epic.Custom_gen
module Config = Epic.Config
module Area = Epic.Area
module S = Epic.Workloads.Sources
module Ir = Epic.Ir
module Interp = Epic.Interp
module Store = Epic_serve.Store
module Rng = Epic.Difftest.Rng
module Json = Epic.Profile.Json

(* ------------------------------------------------------------------ *)
(* Pareto archive vs the brute-force filter.                           *)

(* Reference: distinct (cost, time) pairs not strictly dominated by any
   other point, in (cost, time) order — on a frontier cost determines
   time, so this is the archive's canonical order too. *)
let brute_frontier pairs =
  let distinct = List.sort_uniq compare pairs in
  List.filter
    (fun (c, t) ->
      not
        (List.exists
           (fun (c', t') -> c' <= c && t' <= t && (c' < c || t' < t))
           distinct))
    distinct

let archive_pairs t =
  List.map
    (fun (p : unit Pareto.point) -> (p.Pareto.pt_cost, p.Pareto.pt_time))
    (Pareto.points t)

let gen_pairs =
  (* Small ranges on purpose: collisions and exact duplicates must be
     common, they are the historical bug. *)
  QCheck.(list_of_size (Gen.int_range 0 40)
            (pair (int_range 0 12) (int_range 0 12)))

let prop_archive_matches_brute =
  QCheck.Test.make ~name:"archive = brute-force frontier (minimal+complete)"
    ~count:500 gen_pairs
    (fun raw ->
      let pairs = List.map (fun (c, t) -> (c, float_of_int t)) raw in
      let archive =
        Pareto.of_list
          (List.map
             (fun (c, t) ->
               { Pareto.pt_cost = c; pt_time = t; pt_data = () })
             pairs)
      in
      archive_pairs archive = brute_frontier pairs)

let prop_archive_order_invariant =
  QCheck.Test.make ~name:"archive independent of insertion order" ~count:200
    QCheck.(pair gen_pairs small_int)
    (fun (raw, seed) ->
      let pairs = List.map (fun (c, t) -> (c, float_of_int t)) raw in
      let points =
        List.map
          (fun (c, t) -> { Pareto.pt_cost = c; pt_time = t; pt_data = () })
          pairs
      in
      let rng = Rng.create seed in
      let shuffled =
        List.map (fun p -> (Rng.int rng 1_000_000, p)) points
        |> List.sort compare |> List.map snd
      in
      archive_pairs (Pareto.of_list points)
      = archive_pairs (Pareto.of_list shuffled))

let test_duplicate_dedup () =
  (* The old epic_explore O(n^2) filter let equal-cost duplicates both
     through; the archive must keep exactly one. *)
  let p cost time = { Pareto.pt_cost = cost; pt_time = time; pt_data = () } in
  let a, v1 = Pareto.add Pareto.empty (p 100 2.0) in
  let a, v2 = Pareto.add a (p 100 2.0) in
  Alcotest.(check bool) "first kept" true (v1 = Pareto.Kept);
  Alcotest.(check bool) "second is duplicate" true (v2 = Pareto.Duplicate);
  Alcotest.(check int) "one survivor" 1 (Pareto.size a)

let test_covers () =
  let p cost time = { Pareto.pt_cost = cost; pt_time = time; pt_data = () } in
  let a = Pareto.of_list [ p 10 5.0; p 20 2.0 ] in
  Alcotest.(check bool) "dominated point covered" true
    (Pareto.covers a ~cost:25 ~time:2.5);
  Alcotest.(check bool) "improving point not covered" false
    (Pareto.covers a ~cost:5 ~time:9.0)

(* ------------------------------------------------------------------ *)
(* Subgraph enumeration: structural properties.                        *)

let distinct_inputs (e : CG.expr) =
  let rec go acc = function
    | CG.X k -> if List.mem k acc then acc else k :: acc
    | CG.C _ -> acc
    | CG.Op (_, a, b) -> go (go acc a) b
  in
  List.length (go [] e)

let check_block_occurrences ~max_ops (f : Ir.func) (b : Ir.block) =
  let n = List.length b.Ir.b_insts in
  List.for_all
    (fun (o : Subgraph.occurrence) ->
      let sizes_ok =
        List.length o.Subgraph.oc_nodes <= max_ops
        && List.length o.Subgraph.oc_nodes >= 2
        && List.for_all (fun k -> k >= 0 && k < n) o.Subgraph.oc_nodes
        && List.mem o.Subgraph.oc_root o.Subgraph.oc_nodes
      in
      let ports_ok =
        let d = distinct_inputs o.Subgraph.oc_expr in
        d >= 1 && d <= 2
      in
      sizes_ok && ports_ok && Subgraph.convex b o.Subgraph.oc_nodes)
    (Subgraph.block_occurrences ~func:f ~max_ops b)

let prop_occurrences_convex_random =
  QCheck.Test.make
    ~name:"random MIR: occurrences convex, sized, within port limits"
    ~count:150
    QCheck.(int_range 0 5_000)
    (fun seed ->
      let rng = Rng.create seed in
      let p = Epic.Difftest.gen_mir_program rng in
      List.for_all
        (fun (f : Ir.func) ->
          List.for_all (check_block_occurrences ~max_ops:4 f) f.Ir.f_blocks)
        p.Ir.p_funcs)

let workload_programs () =
  List.map
    (fun (bm : S.benchmark) ->
      (bm, Epic.Opt.for_epic (Epic.Cfront.compile bm.S.bm_source)))
    [ S.sha_benchmark ~bytes:64 (); S.dct_benchmark ~width:8 ~height:8 () ]

let test_workload_occurrences () =
  List.iter
    (fun ((bm : S.benchmark), p) ->
      List.iter
        (fun (f : Ir.func) ->
          List.iter
            (fun b ->
              Alcotest.(check bool)
                (bm.S.bm_name ^ ": occurrence properties hold")
                true
                (check_block_occurrences ~max_ops:3 f b))
            f.Ir.f_blocks)
        p.Ir.p_funcs)
    (workload_programs ())

let test_sha_finds_rotr () =
  let _, p = List.hd (workload_programs ()) in
  let cands = Subgraph.enumerate ~max_ops:3 ~top:8 p in
  let is_rotr (c : CG.candidate) =
    match c.CG.cg_expr with
    | CG.Op (Ir.Or, CG.Op (Ir.Shl, CG.X 0, CG.C a), CG.Op (Ir.Shr, CG.X 0, CG.C b))
      -> a + b = 32
    | _ -> false
  in
  Alcotest.(check bool) "a rotate pattern is discovered" true
    (List.exists is_rotr cands);
  List.iter
    (fun (c : CG.candidate) ->
      Alcotest.(check bool) "multi-op candidates only" true (c.CG.cg_ops >= 2))
    cands

let test_rewrite_preserves_semantics () =
  List.iter
    (fun ((bm : S.benchmark), p) ->
      let cands = Subgraph.enumerate ~max_ops:3 ~top:3 p in
      let p', rewritten = Subgraph.apply p cands in
      if cands <> [] then
        Alcotest.(check bool)
          (bm.S.bm_name ^ ": at least one site rewritten")
          true (rewritten > 0);
      let custom name a b =
        match
          List.find_opt (fun (c : CG.candidate) -> c.CG.cg_name = name) cands
        with
        | Some c -> (CG.to_custom_op c).Config.cop_semantics ~width:32 a b
        | None -> Alcotest.failf "unknown custom op %s" name
      in
      let r0 = Interp.run p ~entry:"main" in
      let r1 = Interp.run ~custom p' ~entry:"main" in
      Alcotest.(check int)
        (bm.S.bm_name ^ ": rewritten program computes the same result")
        r0.Interp.ret r1.Interp.ret;
      Alcotest.(check bool)
        (bm.S.bm_name ^ ": rewriting shortens the dynamic instruction count")
        true
        (r1.Interp.dyn_insts <= r0.Interp.dyn_insts))
    (workload_programs ())

let prop_rewrite_preserves_random =
  QCheck.Test.make ~name:"random MIR: candidate rewrites preserve the result"
    ~count:75
    QCheck.(int_range 0 5_000)
    (fun seed ->
      let rng = Rng.create seed in
      let p = Epic.Difftest.gen_mir_program rng in
      match Interp.run p ~entry:"main" with
      | exception _ -> true  (* program the interpreter rejects: vacuous *)
      | r0 -> (
        let cands = Subgraph.enumerate ~max_ops:3 ~top:3 p in
        let p', _ = Subgraph.apply p cands in
        let custom name a b =
          match
            List.find_opt (fun (c : CG.candidate) -> c.CG.cg_name = name) cands
          with
          | Some c -> (CG.to_custom_op c).Config.cop_semantics ~width:32 a b
          | None -> failwith ("unknown custom op " ^ name)
        in
        match Interp.run ~custom p' ~entry:"main" with
        | exception _ -> false
        | r1 -> r1.Interp.ret = r0.Interp.ret))

(* ------------------------------------------------------------------ *)
(* Area-model monotonicity along the campaign's pruning axes (the ALU
   axis is covered in test_area.ml).                                   *)

let prop_monotone_in_issue =
  QCheck.Test.make ~name:"slices monotone in issue width" ~count:60
    QCheck.(pair (int_range 1 3) (int_range 1 4))
    (fun (issue, alus) ->
      let cfg i = { Config.default with Config.issue_width = i; n_alus = alus } in
      (Area.estimate (cfg issue)).Area.slices
      <= (Area.estimate (cfg (issue + 1))).Area.slices)

let prop_monotone_alus_any_issue =
  QCheck.Test.make ~name:"slices monotone in ALUs at every issue width"
    ~count:60
    QCheck.(pair (int_range 1 6) (int_range 1 4))
    (fun (alus, issue) ->
      let cfg a = { Config.default with Config.n_alus = a; issue_width = issue } in
      (Area.estimate (cfg alus)).Area.slices
      <= (Area.estimate (cfg (alus + 1))).Area.slices)

(* ------------------------------------------------------------------ *)
(* Backend-only compilation.                                           *)

let test_compile_epic_mir () =
  let bm = S.sha_benchmark ~bytes:64 () in
  let cfg = Config.default in
  let a1 = Epic.Toolchain.compile_epic cfg ~source:bm.S.bm_source () in
  let mir = Epic.Opt.for_epic (Epic.Cfront.compile bm.S.bm_source) in
  let a2 = Epic.Toolchain.compile_epic_mir ~key:"test-sha" cfg ~mir () in
  let r1 = Epic.Toolchain.run_epic a1 in
  let r2 = Epic.Toolchain.run_epic a2 in
  Alcotest.(check int) "same result" r1.Epic.Sim.ret r2.Epic.Sim.ret;
  Alcotest.(check int) "same cycle count" r1.Epic.Sim.stats.Epic.Sim.cycles
    r2.Epic.Sim.stats.Epic.Sim.cycles

(* ------------------------------------------------------------------ *)
(* Campaign driver: determinism, persistence, resume.                  *)

let tmp_dir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "epic-explore-test-%s-%d" name (Unix.getpid ()))
  in
  ignore (Sys.command ("rm -rf " ^ Filename.quote dir));
  dir

let small_campaign ?(budget = 48) ?(resume = false) ~jobs ~dir () =
  { C.o_budget = budget; o_seed = 7; o_jobs = jobs; o_wave = 16;
    o_prune = true; o_max_cands = 2; o_max_ops = 3; o_cache_dir = Some dir;
    o_cache_entries = None; o_resume = resume;
    o_workloads = [ S.sha_benchmark ~bytes:64 () ];
    o_axes =
      { C.ax_alus = [ 1; 2 ]; ax_issues = [ 1; 4 ]; ax_gprs = [ 64 ];
        ax_preds = [ 32 ]; ax_btrs = [ 16 ]; ax_payloads = [ 16 ];
        ax_stages = [ 2; 4 ] } }

let test_campaign_deterministic () =
  let dir = tmp_dir "det" in
  let r1 = C.run (small_campaign ~jobs:2 ~dir ()) in
  let d1 = Json.to_string r1.C.r_doc in
  (match r1.C.r_store with Some st -> Store.reset_stats st | None -> ());
  (* Warm, different job count: byte-identical document, >= 90 % disk
     hits (the explore-smoke CI gate, asserted here without the CLI). *)
  let r2 = C.run (small_campaign ~jobs:1 ~dir ()) in
  let d2 = Json.to_string r2.C.r_doc in
  Alcotest.(check string) "cold jobs=2 and warm jobs=1 agree byte-for-byte" d1
    d2;
  (match r2.C.r_store with
   | Some st ->
     let s = Store.stats st in
     Alcotest.(check bool)
       (Printf.sprintf "warm hit rate %.3f >= 0.9" (Store.hit_rate s))
       true
       (Store.hit_rate s >= 0.9)
   | None -> Alcotest.fail "store expected");
  Alcotest.(check bool) "something was evaluated" true
    (r1.C.r_counts.C.c_evaluated > 0);
  Alcotest.(check bool) "a frontier exists" true
    (List.exists (fun (_, pts) -> pts <> []) r1.C.r_archives);
  ignore (Sys.command ("rm -rf " ^ Filename.quote dir))

let test_campaign_frontier_has_candidates () =
  let dir = tmp_dir "cand" in
  let r = C.run (small_campaign ~jobs:2 ~dir ()) in
  let with_cands =
    List.exists
      (fun (_, pts) ->
        List.exists
          (fun (pt : C.eval Pareto.point) ->
            pt.Pareto.pt_data.C.e_point.C.p_cands > 0)
          pts)
      r.C.r_archives
  in
  Alcotest.(check bool)
    "a discovered multi-op candidate appears on the frontier" true with_cands;
  ignore (Sys.command ("rm -rf " ^ Filename.quote dir))

let test_campaign_resume () =
  let dir = tmp_dir "resume" in
  let r1 = C.run (small_campaign ~jobs:2 ~dir ()) in
  let d1 = Json.to_string r1.C.r_doc in
  (* Resuming a completed campaign restores everything from the manifest
     without evaluating a single point. *)
  let r2 = C.run (small_campaign ~resume:true ~jobs:1 ~dir ()) in
  Alcotest.(check string) "resumed frontier is byte-identical" d1
    (Json.to_string r2.C.r_doc);
  Alcotest.(check int) "all waves restored" r2.C.r_waves r2.C.r_resumed_waves;
  (* Resuming with different campaign parameters must refuse, not
     silently mix archives. *)
  (match
     C.run
       (small_campaign ~budget:12 ~resume:true ~jobs:1 ~dir ())
   with
   | exception Epic.Diag.Error _ -> ()
   | _ -> Alcotest.fail "parameter mismatch must raise");
  ignore (Sys.command ("rm -rf " ^ Filename.quote dir))

let test_campaign_counts_invalid () =
  (* src_bits = 20 at 4-issue exceeds the fetch-bandwidth constraint:
     the campaign must count those points as invalid, not error out. *)
  let dir = tmp_dir "invalid" in
  let opts =
    { (small_campaign ~jobs:2 ~dir ()) with
      C.o_axes =
        { C.ax_alus = [ 1 ]; ax_issues = [ 4 ]; ax_gprs = [ 64 ];
          ax_preds = [ 32 ]; ax_btrs = [ 16 ]; ax_payloads = [ 16; 20 ];
          ax_stages = [ 2 ] };
      o_max_cands = 0; o_budget = 10 }
  in
  let r = C.run opts in
  Alcotest.(check int) "invalid corner counted" 1 r.C.r_counts.C.c_invalid;
  Alcotest.(check int) "valid corner evaluated" 1 r.C.r_counts.C.c_evaluated;
  ignore (Sys.command ("rm -rf " ^ Filename.quote dir))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_archive_matches_brute;
    QCheck_alcotest.to_alcotest prop_archive_order_invariant;
    Alcotest.test_case "equal duplicates deduped" `Quick test_duplicate_dedup;
    Alcotest.test_case "covers = dominance query" `Quick test_covers;
    QCheck_alcotest.to_alcotest prop_occurrences_convex_random;
    Alcotest.test_case "workload occurrence properties" `Quick
      test_workload_occurrences;
    Alcotest.test_case "sha rediscovers a rotate" `Quick test_sha_finds_rotr;
    Alcotest.test_case "rewrites preserve semantics" `Quick
      test_rewrite_preserves_semantics;
    QCheck_alcotest.to_alcotest prop_rewrite_preserves_random;
    QCheck_alcotest.to_alcotest prop_monotone_in_issue;
    QCheck_alcotest.to_alcotest prop_monotone_alus_any_issue;
    Alcotest.test_case "compile_epic_mir matches compile_epic" `Quick
      test_compile_epic_mir;
    Alcotest.test_case "campaign: jobs + cold/warm determinism" `Slow
      test_campaign_deterministic;
    Alcotest.test_case "campaign: candidates reach the frontier" `Slow
      test_campaign_frontier_has_candidates;
    Alcotest.test_case "campaign: manifest resume" `Slow test_campaign_resume;
    Alcotest.test_case "campaign: invalid points counted" `Quick
      test_campaign_counts_invalid;
  ]
