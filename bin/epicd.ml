(* epicd: compile-and-simulate as a service.  A long-running daemon
   accepting newline-delimited JSON requests — compile, simulate,
   fault-campaign, fuzz-batch, explore-slice, stats, shutdown — over a
   Unix socket (--socket) or stdin/stdout (the default pipe mode, one
   daemon per client, convenient under a supervisor or in CI).

   Requests fan out over the Epic_exec domain pool; responses come back
   in request order and are byte-identical for every --jobs value.  With
   --cache-dir, results are served from a persistent on-disk artifact
   cache keyed by configuration fingerprint x source digest x request
   parameters, so a campaign replayed tomorrow — or by the next daemon —
   hits disk instead of the compiler.

   On exit the daemon prints a JSON summary (request counts, latency
   percentiles, queue depth, cache traffic) to stderr; the same numbers
   are available live through a {"op": "stats"} request. *)

open Cmdliner

let run socket max_conns cache_dir cache_entries batch_max queue_max
    deadline_ms jobs =
  Cli_common.handle_errors @@ fun () ->
  let store =
    Option.map
      (fun dir -> Epic_serve.Store.open_ ?max_entries:cache_entries dir)
      cache_dir
  in
  let t =
    Epic_serve.Server.create ~jobs ~batch_max ~queue_max ?deadline_ms ?store ()
  in
  let stop =
    match socket with
    | Some path ->
      Printf.eprintf "epicd: listening on %s (%d domain(s), %d connection(s))\n%!"
        path jobs max_conns;
      Epic_serve.Server.run_socket ~max_conns t ~path
    | None -> Epic_serve.Server.run_pipe t ~in_fd:Unix.stdin ~out:stdout
  in
  ignore (stop : Epic_serve.Server.stop);
  (* The shutdown summary goes to stderr, like every campaign tool's
     statistics: stdout carries only responses. *)
  Printf.eprintf "%s\n"
    (Epic.Profile.Json.to_string (Epic_serve.Server.summary_json t))

let cmd =
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix domain socket instead of stdin/stdout. \
                 A shutdown request stops the daemon; see $(b,--max-conns) \
                 for concurrent connections.")
  in
  let max_conns =
    Arg.(value & opt int 8
         & info [ "max-conns" ] ~docv:"N"
           ~doc:"Serve up to $(docv) socket connections concurrently over one \
                 shared worker pool, with cross-client deduplication of \
                 identical in-flight requests.  With 1, connections are \
                 accepted strictly one at a time.  Ignored in pipe mode.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persistent artifact cache directory.  Results are keyed by \
                 configuration fingerprint, source digest and request \
                 parameters; entries survive restarts and are invalidated \
                 wholesale on a format-version bump.")
  in
  let cache_entries =
    Arg.(value & opt (some int) None
         & info [ "cache-entries" ] ~docv:"N"
           ~doc:"Cap the artifact cache at $(docv) entries; the oldest \
                 entries are evicted beyond it (default: unlimited).")
  in
  let batch_max =
    Arg.(value & opt int 64
         & info [ "batch-max" ] ~docv:"N"
           ~doc:"Dispatch at most $(docv) queued requests to the domain pool \
                 at once.")
  in
  let queue_max =
    Arg.(value & opt int 256
         & info [ "queue-max" ] ~docv:"N"
           ~doc:"Admission high-water mark: when $(docv) requests are already \
                 queued, further work is shed immediately with a \
                 $(i,serve/overload) error instead of growing the queue.")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Default per-request deadline in milliseconds, applied to \
                 requests that do not set their own $(i,deadline_ms) field.  \
                 Work past its deadline is abandoned with a \
                 $(i,serve/deadline) error (default: no deadline).")
  in
  Cmd.v
    (Cmd.info "epicd"
       ~doc:"Serve EPIC compile-and-simulate requests over newline-delimited \
             JSON")
    Term.(const run $ socket $ max_conns $ cache_dir $ cache_entries
          $ batch_max $ queue_max $ deadline_ms $ Cli_common.jobs_term)

let () = exit (Cmd.eval cmd)
