(* End-to-end drivers: C source -> optimised MIR -> (EPIC backend ->
   schedule -> assemble -> cycle simulation) and (ARM backend -> SA-110
   cycle simulation).  This is the narrow waist the executables, the
   examples and the experiment harness all share. *)

module Config = Epic_config
module Cfront = Epic_cfront
module Ir = Epic_mir.Ir
module Memmap = Epic_mir.Memmap
module Opt = Epic_opt
module Sched = Epic_sched
module Asm = Epic_asm
module Sim = Epic_sim
module Arm = Epic_arm

type epic_artifacts = {
  ea_config : Config.t;
  ea_mir : Ir.program;          (* after optimisation *)
  ea_layout : Memmap.t;
  ea_unit : Asm.Aunit.t;        (* scheduled symbolic assembly *)
  ea_image : Asm.Aunit.image;   (* resolved instruction stream *)
  ea_words : int64 array;       (* encoded binary *)
  ea_sched : Sched.Sched.stats;
  ea_report : Opt.Pipeline.report;  (* per-pass pipeline report *)
}

type opt_level = O0 | O1  (** O1 = the full machine-independent pipeline. *)

(* Pipeline control threaded from the command line (epicc --passes,
   --disable-pass, --verify-ir, --diff-check, --time-passes,
   --dump-after) and the experiment harness into the pass manager. *)
type pipeline = {
  pp_passes : string list option;  (* replace the default pass list *)
  pp_disable : string list;        (* drop every occurrence by name *)
  pp_verify : bool;                (* verify MIR between passes *)
  pp_diff_check : bool;            (* differential-check each pass *)
  pp_time : bool;                  (* callers: print the report *)
  pp_dump_after : string list;     (* dump MIR after these passes *)
}

let default_pipeline =
  { pp_passes = None; pp_disable = []; pp_verify = false; pp_diff_check = false;
    pp_time = false; pp_dump_after = [] }

(* Resolve the effective pass list and run it through the pass manager. *)
let run_pipeline (pl : pipeline) ~default mir =
  let base =
    match pl.pp_passes with
    | None -> default
    | Some names -> List.map Opt.Registry.find_exn names
  in
  List.iter (fun n -> ignore (Opt.Registry.find_exn n)) pl.pp_disable;
  let passes =
    List.filter
      (fun (p : Opt.pass) -> not (List.mem p.Opt.pass_name pl.pp_disable))
      base
  in
  let options =
    { Opt.Pipeline.verify = pl.pp_verify; diff_check = pl.pp_diff_check;
      dump_after = pl.pp_dump_after; dump = None }
  in
  Opt.Pipeline.run ~options passes mir

(* Loop unrolling is available (A8 ablation, [?unroll] below) but off by
   default: on these workloads the hand-unrolled kernels already expose
   the ILP, fully flattening the outer loops mostly bloats code (and
   super-linear compile time on the giant blocks), and it slightly hurts
   the DCT through worse I-side behaviour. *)
let default_unroll = 1

let compile_epic ?(opt = O1) ?(predication = true) ?(unroll = default_unroll)
    ?mem_bytes ?(pipeline = default_pipeline) (cfg : Config.t) ~source () =
  let cfg = Config.validate_exn cfg in
  let mir = Cfront.compile ~unroll source in
  let default =
    match opt with
    | O0 -> []
    | O1 -> Opt.default_passes ~epic:true ~predication
  in
  let mir, report = run_pipeline pipeline ~default mir in
  let layout = Memmap.layout ?mem_bytes mir in
  let unit_, sched = Sched.compile_program cfg layout mir in
  let image, words = Asm.assemble cfg unit_ in
  { ea_config = cfg; ea_mir = mir; ea_layout = layout; ea_unit = unit_;
    ea_image = image; ea_words = words; ea_sched = sched; ea_report = report }

let entry_of (a : epic_artifacts) =
  match List.assoc_opt "_start" a.ea_image.Asm.Aunit.im_symbols with
  | Some e -> e
  | None -> 0

let run_epic ?fuel ?trace ?profile (a : epic_artifacts) =
  let mem = Memmap.init_memory a.ea_layout a.ea_mir in
  let sink = Option.map Epic_profile.sink profile in
  Sim.run ?fuel ?trace ?sink a.ea_config ~image:a.ea_image ~mem
    ~entry:(entry_of a) ()

(* Profiled run: attach a fresh recorder and return it with the result. *)
let profile_epic ?fuel ?keep_events (a : epic_artifacts) =
  let profile = Epic_profile.create ?keep_events a.ea_config a.ea_image in
  let r = run_epic ?fuel ~profile a in
  (r, profile)

(* Fault-injection campaign over compiled artifacts.  The golden run is
   cross-checked against the MIR reference interpreter (the same
   differential oracle the pass manager uses), so an SDC classification
   is always relative to an independently validated result. *)
let fault_campaign ?seed ?runs ?targets ?fuel_factor ?(check_golden = true)
    (a : epic_artifacts) =
  let mem = Memmap.init_memory a.ea_layout a.ea_mir in
  let rp =
    Epic_fault.campaign ?seed ?runs ?targets ?fuel_factor a.ea_config
      ~image:a.ea_image ~mem ~entry:(entry_of a) ()
  in
  if check_golden then begin
    let custom = Config.custom_eval a.ea_config in
    let reference =
      (Epic_mir.Interp.run ~custom a.ea_mir ~entry:"main").Epic_mir.Interp.ret
    in
    let reference = Epic_isa.Word.mask a.ea_config.Config.width reference in
    if rp.Epic_fault.rp_golden_ret <> reference then
      Epic_diag.raisef ~code:"fault/golden-mismatch"
        "golden run returned %#x but the MIR reference interpreter returned %#x"
        rp.Epic_fault.rp_golden_ret reference
  end;
  rp

type arm_artifacts = {
  aa_mir : Ir.program;          (* optimised, runtime linked *)
  aa_layout : Memmap.t;
  aa_prog : Arm.Isa.program;
  aa_report : Opt.Pipeline.report;
}

let compile_arm ?(opt = O1) ?(unroll = default_unroll) ?mem_bytes
    ?(pipeline = default_pipeline) ~source () =
  let mir = Cfront.compile ~unroll source in
  let default =
    match opt with
    | O0 -> []
    | O1 -> Opt.default_passes ~epic:false ~predication:false
  in
  let mir, report = run_pipeline pipeline ~default mir in
  let prog, layout, linked = Arm.compile_program ?mem_bytes mir in
  { aa_mir = linked; aa_layout = layout; aa_prog = prog; aa_report = report }

let run_arm ?fuel (a : arm_artifacts) =
  let mem = Memmap.init_memory a.aa_layout a.aa_mir in
  Arm.Sim.run ?fuel a.aa_prog ~mem ()

(* Convenience wrappers used throughout the tests and examples. *)

let epic_cycles ?opt ?predication ?unroll ?pipeline (cfg : Config.t) ~source
    ~expected () =
  let a = compile_epic ?opt ?predication ?unroll ?pipeline cfg ~source () in
  let r = run_epic a in
  (match r.Sim.trap with
   | Some t -> failwith (Format.asprintf "EPIC run trapped: %a" Sim.pp_trap t)
   | None -> ());
  if r.Sim.ret <> expected land 0xFFFFFFFF then
    failwith
      (Printf.sprintf "EPIC run returned %#x, expected %#x" r.Sim.ret
         (expected land 0xFFFFFFFF));
  r.Sim.stats

let arm_cycles ?opt ?unroll ?pipeline ~source ~expected () =
  let a = compile_arm ?opt ?unroll ?pipeline ~source () in
  let r = run_arm a in
  if r.Arm.Sim.ret <> expected land 0xFFFFFFFF then
    failwith
      (Printf.sprintf "ARM run returned %#x, expected %#x" r.Arm.Sim.ret
         (expected land 0xFFFFFFFF));
  r.Arm.Sim.stats
