(* Predecode: the first tier of the two-tier simulation engine.

   Decoding an EPIC image is pure — an instruction's register sets, its
   dispatch class and its latency depend only on the instruction record
   and the configuration — so the simulator used to redo per cycle what
   can be done once per (image x config): [Isa.reads]/[Isa.writes]
   allocated fresh lists for every slot of every fetched bundle, and
   [Config.latency] walked the override alist per executed operation.
   This module resolves all of it up front into flat records the cycle
   loop can consume with plain int loads and no allocation.

   Legality checking moves here too, but the trap TAXONOMY of the old
   per-cycle checks is preserved exactly: a corrupted image must trap at
   the same program point, with the same cause and message, as it did
   when the checks ran inline.  Predecode therefore never raises — it
   records the first decode-stage failure of each bundle
   ([b_fetch_trap]), the first malformed conditional-branch predicate
   operand ([b_p1_trap]) and per-slot malformed branch targets
   ([x_btr] = -1), and the simulator raises them at the original points:
   fetch, issue (phase 1) and execute respectively.  A bundle that is
   never reached never traps, exactly as before.

   A [t] is immutable after construction and holds no reference to
   mutable simulator state, so one predecode may be shared, without
   copying or locking, by concurrent runs on different domains — the
   same contract as the image itself (see epic_sim.mli).  Tampered runs
   (fault injection mutates the instruction stream in place) detect
   touched slots by physical comparison against [p_insts] and re-decode
   just those bundles; see [Epic_sim.run]. *)

module Isa = Epic_isa
module Config = Epic_config
module A = Epic_asm.Aunit
module Ir = Epic_mir.Ir

(* Int-coded dispatch classes: the hot loop branches on these instead of
   matching constructors (CUSTOM/LD/ST/CMPP carry payloads the loop no
   longer needs to destructure). *)
let k_nop = 0
let k_alu = 1
let k_ld = 2
let k_st = 3
let k_cmpp = 4
let k_pbrr = 5
let k_bru = 6
let k_brc = 7
let k_brl = 8
let k_halt = 9

let kind_of (op : Isa.opcode) =
  match op with
  | Isa.ADD | Isa.SUB | Isa.MPY | Isa.DIV | Isa.REM | Isa.MIN | Isa.MAX
  | Isa.ABS | Isa.AND | Isa.OR | Isa.XOR | Isa.ANDCM | Isa.NAND | Isa.NOR
  | Isa.SHL | Isa.SHR | Isa.SHRA | Isa.MOV | Isa.CUSTOM _ -> k_alu
  | Isa.LD _ | Isa.LDU _ -> k_ld
  | Isa.ST _ -> k_st
  | Isa.CMPP _ -> k_cmpp
  | Isa.PBRR -> k_pbrr
  | Isa.BRU_ -> k_bru
  | Isa.BRCT | Isa.BRCF -> k_brc
  | Isa.BRL -> k_brl
  | Isa.HALT -> k_halt
  | Isa.NOP -> k_nop

let kind_name = function
  | 0 -> "nop" | 1 -> "alu" | 2 -> "load" | 3 -> "store" | 4 -> "cmpp"
  | 5 -> "pbrr" | 6 -> "bru" | 7 -> "brc" | 8 -> "brl" | 9 -> "halt"
  | _ -> "?"

(* One resolved operation.  Source operands are encoded as a register
   index ([x_s1r] >= 0, read from the GPR file at issue) or a pre-masked
   literal ([x_s1r] < 0, value in [x_s1v]).  Memory fields, the compare
   condition and branch fields are only meaningful for the matching
   kinds; [x_btr] / [x_bp] are -1 when the corresponding operand is
   malformed (the simulator raises the original execute-/issue-time
   trap). *)
(* Int codes for the ALU sub-operations, in [Isa.eval_alu] order; the
   fast loop evaluates these inline on already-canonical operands.
   [a_custom] falls back to [Isa.eval_alu] (the name lives in [x_op]). *)
let a_add = 0
let a_sub = 1
let a_mpy = 2
let a_div = 3
let a_rem = 4
let a_min = 5
let a_max = 6
let a_abs = 7
let a_and = 8
let a_or = 9
let a_xor = 10
let a_andcm = 11
let a_nand = 12
let a_nor = 13
let a_shl = 14
let a_shr = 15
let a_shra = 16
let a_mov = 17
let a_custom = 18

let alu_code_of (op : Isa.opcode) =
  match op with
  | Isa.ADD -> a_add | Isa.SUB -> a_sub | Isa.MPY -> a_mpy
  | Isa.DIV -> a_div | Isa.REM -> a_rem | Isa.MIN -> a_min
  | Isa.MAX -> a_max | Isa.ABS -> a_abs | Isa.AND -> a_and
  | Isa.OR -> a_or | Isa.XOR -> a_xor | Isa.ANDCM -> a_andcm
  | Isa.NAND -> a_nand | Isa.NOR -> a_nor | Isa.SHL -> a_shl
  | Isa.SHR -> a_shr | Isa.SHRA -> a_shra | Isa.MOV -> a_mov
  | _ -> a_custom

type pop = {
  x_kind : int;
  x_op : Isa.opcode;   (* original opcode: CUSTOM dispatch, events, trace *)
  x_alu : int;         (* ALU sub-operation code (k_alu slots) *)
  x_unit : int;        (* 0 alu / 1 lsu / 2 cmpu / 3 bru / 4 none *)
  x_dst1 : int;
  x_dst2 : int;
  x_s1r : int;
  x_s1v : int;
  x_s2r : int;
  x_s2v : int;
  x_guard : int;
  x_lat : int;                   (* resolved result latency *)
  x_bytes : int;                 (* LD/ST access size *)
  x_size : Ir.mem_size;          (* LD/ST Memmap size *)
  x_ext : Ir.ext;                (* LD sign/zero extension *)
  x_cond : Isa.cmp_cond;         (* CMPP condition *)
  x_stoff : int;                 (* ST: dst1 * access size (EA offset) *)
  x_want : bool;                 (* BRCT: true, BRCF: false *)
  x_btr : int;                   (* branch BTR literal, -1 = malformed *)
  x_bp : int;                    (* BRCT/BRCF predicate literal, -1 = malformed *)
}

(* One bundle.  The read sets of all slots are flattened per register
   file, multiplicity preserved (the port accountant counts a register
   read twice when two operands name it, exactly as the per-slot lists
   did); [b_wg] is the bundle's GPR write-port count. *)
type pbundle = {
  b_slots : pop array;
  b_rg : int array;            (* GPR read indices *)
  b_rp : int array;            (* predicate read indices *)
  b_rb : int array;            (* BTR read indices *)
  b_wg : int;                  (* GPR writes (port accounting) *)
  b_fetch_trap : string option;  (* first decode-stage failure, slot order *)
  b_p1_trap : string option;     (* first malformed branch-predicate operand *)
}

type t = {
  p_cfg : Config.t;            (* configuration the image was decoded under *)
  p_insts : Isa.inst array;    (* exactly the instruction stream decoded *)
  p_w : int;
  p_bundles : pbundle array;
}

(* Decode-stage validation, hoisted from the old per-cycle [check_inst]:
   same checks, same order (operation support, then reads, then writes),
   same messages — but returned instead of raised. *)
let fetch_trap_of (cfg : Config.t) pc slot (i : Isa.inst) =
  if not (Config.op_supported cfg i.Isa.op) then
    Some
      (Printf.sprintf "illegal or unimplemented operation %s (pc %d slot %d)"
         (Isa.string_of_opcode i.Isa.op) pc slot)
  else
    let bad (file, idx) =
      let limit =
        match (file : Isa.regfile) with
        | Isa.R_gpr -> cfg.Config.n_gprs
        | Isa.R_pred -> cfg.Config.n_preds
        | Isa.R_btr -> cfg.Config.n_btrs
      in
      if idx < 0 || idx >= limit then
        Some
          (Printf.sprintf
             "%s register index %d out of range (pc %d slot %d, %s)"
             (match file with
              | Isa.R_gpr -> "GPR"
              | Isa.R_pred -> "predicate"
              | Isa.R_btr -> "BTR")
             idx pc slot
             (Isa.string_of_opcode i.Isa.op))
      else None
    in
    match List.find_map bad (Isa.reads i) with
    | Some _ as r -> r
    | None -> List.find_map bad (Isa.writes i)

(* The old phase-1 validation of a conditional branch's predicate
   operand, returned instead of raised. *)
let p1_trap_of (cfg : Config.t) (i : Isa.inst) =
  match i.Isa.op with
  | Isa.BRCT | Isa.BRCF ->
    (match i.Isa.src2 with
     | Isa.Simm p when p >= 0 && p < cfg.Config.n_preds -> None
     | Isa.Simm p ->
       Some (Printf.sprintf "branch predicate index %d out of range" p)
     | Isa.Sreg _ -> Some "branch predicate operand must be a literal index")
  | _ -> None

let decode_slot (cfg : Config.t) (i : Isa.inst) =
  let m v = Isa.Word.mask cfg.Config.width v in
  let op = i.Isa.op in
  let s1r, s1v =
    match i.Isa.src1 with Isa.Sreg r -> (r, 0) | Isa.Simm v -> (-1, m v)
  in
  let s2r, s2v =
    match i.Isa.src2 with Isa.Sreg r -> (r, 0) | Isa.Simm v -> (-1, m v)
  in
  let bytes, size, ext =
    match op with
    | Isa.LD mw | Isa.LDU mw | Isa.ST mw ->
      let size =
        match mw with
        | Isa.M_byte -> Ir.I8
        | Isa.M_half -> Ir.I16
        | Isa.M_word -> Ir.I32
      in
      let ext = match op with Isa.LD _ -> Ir.Sx | _ -> Ir.Zx in
      (Isa.bytes_of_mem_width mw, size, ext)
    | _ -> (0, Ir.I8, Ir.Zx)
  in
  { x_kind = kind_of op;
    x_op = op;
    x_alu = alu_code_of op;
    x_unit =
      (match Isa.unit_of op with
       | Isa.U_alu -> 0 | Isa.U_lsu -> 1 | Isa.U_cmpu -> 2
       | Isa.U_bru -> 3 | Isa.U_none -> 4);
    x_dst1 = i.Isa.dst1;
    x_dst2 = i.Isa.dst2;
    x_s1r = s1r; x_s1v = s1v; x_s2r = s2r; x_s2v = s2v;
    x_guard = i.Isa.guard;
    x_lat = Config.latency cfg op;
    x_bytes = bytes; x_size = size; x_ext = ext;
    x_cond = (match op with Isa.CMPP c -> c | _ -> Isa.C_eq);
    x_stoff =
      (match op with
       | Isa.ST mw -> i.Isa.dst1 * Isa.bytes_of_mem_width mw
       | _ -> 0);
    x_want = (op = Isa.BRCT);
    x_btr =
      (match op with
       | Isa.BRU_ | Isa.BRCT | Isa.BRCF | Isa.BRL ->
         (match i.Isa.src1 with Isa.Simm b -> b | Isa.Sreg _ -> -1)
       | _ -> -1);
    x_bp =
      (match op with
       | Isa.BRCT | Isa.BRCF ->
         (match i.Isa.src2 with
          | Isa.Simm p when p >= 0 && p < cfg.Config.n_preds -> p
          | _ -> -1)
       | _ -> -1) }

let decode_bundle (cfg : Config.t) (insts : Isa.inst array) pc w =
  let base = pc * w in
  let slots = Array.init w (fun k -> decode_slot cfg insts.(base + k)) in
  let ft = ref None and p1 = ref None in
  let rg = ref [] and rp = ref [] and rb = ref [] in
  let wg = ref 0 in
  for k = 0 to w - 1 do
    let i = insts.(base + k) in
    if i.Isa.op <> Isa.NOP then begin
      (match !ft with
       | None -> ft := fetch_trap_of cfg pc k i
       | Some _ -> ());
      (match !p1 with None -> p1 := p1_trap_of cfg i | Some _ -> ())
    end;
    List.iter
      (fun (file, idx) ->
        match (file : Isa.regfile) with
        | Isa.R_gpr -> rg := idx :: !rg
        | Isa.R_pred -> rp := idx :: !rp
        | Isa.R_btr -> rb := idx :: !rb)
      (Isa.reads i);
    List.iter
      (fun (file, _) ->
        match (file : Isa.regfile) with
        | Isa.R_gpr -> incr wg
        | Isa.R_pred | Isa.R_btr -> ())
      (Isa.writes i)
  done;
  { b_slots = slots;
    b_rg = Array.of_list (List.rev !rg);
    b_rp = Array.of_list (List.rev !rp);
    b_rb = Array.of_list (List.rev !rb);
    b_wg = !wg;
    b_fetch_trap = !ft;
    b_p1_trap = !p1 }

let of_image (cfg : Config.t) (image : A.image) =
  let w = image.A.im_issue_width in
  let insts = image.A.im_insts in
  (* Truncating division: a ragged tail short of a full bundle is
     unreachable, exactly as in the old fetch logic. *)
  let n = Array.length insts / w in
  { p_cfg = cfg;
    p_insts = insts;
    p_w = w;
    p_bundles = Array.init n (fun pc -> decode_bundle cfg insts pc w) }

(* Is [t] a valid predecode of [insts]?  Physical equality per slot is
   the fast path (cache hits and golden-run image copies share the
   records); structural equality accepts a stream that was rebuilt but
   is identical.  Cost is one pass over the image, once per run. *)
let matches_insts t (insts : Isa.inst array) =
  t.p_insts == insts
  || (Array.length t.p_insts = Array.length insts
      && begin
        let ok = ref true in
        Array.iteri
          (fun k i -> if not (i == insts.(k) || i = insts.(k)) then ok := false)
          t.p_insts;
        !ok
      end)

let same_config t (cfg : Config.t) =
  t.p_cfg == cfg || Config.fingerprint t.p_cfg = Config.fingerprint cfg

(* ---- introspection (tests, cache keying) -------------------------- *)

let n_bundles t = Array.length t.p_bundles
let issue_width t = t.p_w
let fetch_trap t pc = t.p_bundles.(pc).b_fetch_trap

let bundle_reads t pc =
  let b = t.p_bundles.(pc) in
  (Array.to_list b.b_rg, Array.to_list b.b_rp, Array.to_list b.b_rb)

let gpr_write_ports t pc = t.p_bundles.(pc).b_wg

let slot_latency t ~bundle ~slot =
  t.p_bundles.(bundle).b_slots.(slot).x_lat

let slot_kind t ~bundle ~slot =
  kind_name t.p_bundles.(bundle).b_slots.(slot).x_kind

(* Content digest of an instruction stream, for keying predecode caches
   by (config fingerprint x image).  Instruction records are plain data
   (no closures), so Marshal is stable for equal streams. *)
let image_digest (image : A.image) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string (image.A.im_insts, image.A.im_issue_width) []))
