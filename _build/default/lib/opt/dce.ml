(* Liveness-based dead-code elimination: an instruction with no side
   effect whose definitions are all dead after it is removed.  Iterates to
   a fixed point because removing one dead instruction can kill the
   definitions feeding it. *)

module Ir = Epic_mir.Ir
module Liveness = Epic_mir.Liveness

let run_func (f : Ir.func) =
  let changed = ref true in
  let rounds = ref 0 in
  (* Each round needs a fresh liveness analysis, which dominates on large
     unrolled functions; a handful of rounds removes all but pathological
     dead chains, and leftovers are only a code-size cost. *)
  while !changed && !rounds < 6 do
    incr rounds;
    changed := false;
    let live = Liveness.analyse f in
    List.iter
      (fun (b : Ir.block) ->
        let keep =
          Liveness.fold_block_backward live b ~init:[] ~f:(fun acc _k i after ->
              let dead =
                (not (Ir.has_side_effect i.Ir.kind))
                && List.for_all
                     (fun d -> not (Liveness.RSet.mem d after))
                     (Ir.defs_of_inst i)
                && Ir.defs_of_inst i <> []
              in
              if dead then begin
                changed := true;
                acc
              end
              else i :: acc)
        in
        b.Ir.b_insts <- keep)
      f.Ir.f_blocks
  done

let run (p : Ir.program) =
  List.iter run_func p.Ir.p_funcs;
  p
