(* epicload: load generator and SLO gate for the epicd daemon.

   Builds a deterministic request scenario (3 workloads x 3
   configurations of compiles, plus simulate / fault-campaign /
   explore-slice traffic in the mixed and bursty scenarios), replays it
   for --passes passes against one of three transports —

     in-process (default)   a fresh Epic_serve.Server per pass, the
                            cheapest harness and the restart test: each
                            pass re-opens the artifact cache directory
     --epicd BIN            spawn the real daemon binary in pipe mode,
                            once per pass
     --connect SOCK         drive an already-running socket daemon

   — and then asserts the service-level objectives: every work request
   succeeded, the responses of later passes are byte-identical to the
   first (the protocol's determinism guarantee), the p95 latency
   reported by the daemon is within --slo-p95-ms, and, when an artifact
   cache is in play, the disk hit rate of every pass after the first
   reaches --expect-hit-rate (default 0.9).  Exit status 1 on any
   violated objective, so CI can gate on it directly. *)

open Cmdliner
module P = Epic_serve.Protocol
module J = Epic.Profile.Json

(* The handwritten-assembly example's gcd program: exercises the
   simulate (assemble-and-run) path without touching the compiler. *)
let gcd_asm =
  ";; gcd(r12, r13) by repeated remainder, result in r3\n\
   _start:\n\
   { MOV r1, #4096 ; MOV r12, #1071 ; MOV r13, #462 ; PBRR b0, @loop }\n\
   loop:\n\
   { CMPP.NE p1, p2, r13, #0 ; PBRR b1, @done }\n\
   { BRCT #1, #2 }\n\
   { REM r14, r12, r13 }\n\
   { MOV r12, r13 ; MOV r13, r14 }\n\
   { BRU #0 }\n\
   done:\n\
   { MOV r3, r12 }\n\
   { STW r1, #2, r3 }\n\
   { HALT }\n"

let wl name params =
  P.Src_workload { P.wl_name = name; wl_params = List.sort compare params }

let workloads =
  [ wl "sha" [ ("bytes", 64) ];
    wl "dct" [ ("width", 8); ("height", 8) ];
    wl "dijkstra" [ ("nodes", 6) ] ]

let configs =
  List.map
    (fun n -> { Epic.Config.default with Epic.Config.n_alus = n })
    [ 2; 3; 4 ]

let compile ?(opt = Epic.Toolchain.O1) cfg src =
  P.Compile
    { P.c_config = cfg; c_source = src; c_opt = opt; c_predication = true;
      c_unroll = Epic.Toolchain.default_unroll; c_fuel = None }

(* 3 workloads x 3 configurations, the acceptance batch. *)
let compile_grid = List.concat_map (fun c -> List.map (compile c) workloads) configs

let extras =
  [ P.Simulate
      { P.s_config = Epic.Config.default; s_asm = gcd_asm; s_fuel = None;
        s_mem_bytes = 65536 };
    P.Fault_campaign
      { P.fc_config = Epic.Config.default; fc_source = wl "sha" [ ("bytes", 64) ];
        fc_seed = 1; fc_runs = 4; fc_targets = Epic.Fault.all_targets;
        fc_fuel_factor = 4 };
    P.Explore_slice
      { P.ex_source = wl "dijkstra" [ ("nodes", 6) ]; ex_alus = [ 1; 2 ];
        ex_issues = [ 4 ] } ]

(* Interleave a stats barrier every [n] requests: forces small batches,
   the bursty-arrival shape. *)
let burstify n ops =
  List.concat
    (List.mapi
       (fun i op -> if i > 0 && i mod n = 0 then [ P.Stats; op ] else [ op ])
       ops)

let scenario_ops = function
  | "mixed" -> compile_grid @ extras
  | "bursty" -> burstify 4 (compile_grid @ extras)
  | "compile-heavy" ->
    List.concat_map
      (fun c ->
        List.concat_map
          (fun w -> [ compile ~opt:Epic.Toolchain.O0 c w; compile c w ])
          workloads)
      configs
  | s ->
    failwith
      (Printf.sprintf
         "unknown scenario %S (expected mixed, bursty, compile-heavy)" s)

(* ------------------------------------------------------------------ *)
(* Transports: each runs one pass (a list of request lines) and returns
   the response lines, in request order. *)

let pass_in_process ~jobs ~cache_dir lines =
  let store = Option.map Epic_serve.Store.open_ cache_dir in
  let t = Epic_serve.Server.create ~jobs ?store () in
  Epic_serve.Server.serve_strings t lines

(* Spawn the daemon binary in pipe mode.  The scenario is a few KB of
   requests — far below the pipe buffer — so writing it whole before
   draining responses cannot deadlock. *)
let pass_spawn ?(extra_args = []) ~jobs ~cache_dir bin lines =
  let args =
    [ bin; "--jobs"; string_of_int jobs ]
    @ (match cache_dir with None -> [] | Some d -> [ "--cache-dir"; d ])
    @ extra_args
  in
  (* cloexec, so the daemon inherits only the dup2'd stdin/stdout: were
     it to keep a copy of req_w, it would never see EOF on its input. *)
  let req_r, req_w = Unix.pipe ~cloexec:true () in
  let resp_r, resp_w = Unix.pipe ~cloexec:true () in
  let pid = Unix.create_process bin (Array.of_list args) req_r resp_w Unix.stderr in
  Unix.close req_r;
  Unix.close resp_w;
  let oc = Unix.out_channel_of_descr req_w in
  List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
  close_out oc;
  let ic = Unix.in_channel_of_descr resp_r in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let responses = read [] in
  close_in ic;
  (match Unix.waitpid [] pid with
   | _, Unix.WEXITED 0 -> ()
   | _, st ->
     let what =
       match st with
       | Unix.WEXITED c -> Printf.sprintf "exited %d" c
       | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
       | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s
     in
     failwith (Printf.sprintf "epicd %s" what));
  responses

let pass_connect path lines =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_UNIX path);
  let oc = Unix.out_channel_of_descr sock in
  List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
  flush oc;
  Unix.shutdown sock Unix.SHUTDOWN_SEND;
  let ic = Unix.in_channel_of_descr sock in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let responses = read [] in
  (try Unix.close sock with Unix.Unix_error (_, _, _) -> ());
  responses

(* ------------------------------------------------------------------ *)
(* Stats-response probing *)

let mem path j =
  List.fold_left (fun j k -> Option.bind j (J.member k)) (Some j) path

let as_num = function
  | Some (J.Int i) -> Some (float_of_int i)
  | Some (J.Float f) -> Some f
  | _ -> None

type lat_dist = {
  l_p50 : float option;
  l_p95 : float option;
  l_p99 : float option;
  l_max : float option;
}

let parse_stats line =
  match J.parse line with
  | Error e -> failwith (Printf.sprintf "unparseable stats response: %s" e)
  | Ok j ->
    let num path = as_num (mem path j) in
    ( { l_p50 = num [ "result"; "latency"; "p50_ms" ];
        l_p95 = num [ "result"; "latency"; "p95_ms" ];
        l_p99 = num [ "result"; "latency"; "p99_ms" ];
        l_max = num [ "result"; "latency"; "max_ms" ] },
      num [ "result"; "disk_cache"; "hits" ],
      num [ "result"; "disk_cache"; "misses" ],
      num [ "result"; "sim_rate"; "cycles_per_s" ] )

let pp_dist d =
  let f = function Some v -> Printf.sprintf "%.1f" v | None -> "-" in
  Printf.sprintf "p50/p95/p99/max %s/%s/%s/%s ms" (f d.l_p50) (f d.l_p95)
    (f d.l_p99) (f d.l_max)

(* A single numeric field out of a stats response line. *)
let stat_field line path =
  match J.parse line with
  | Error _ -> None
  | Ok j -> as_num (mem ("result" :: path) j)

(* ------------------------------------------------------------------ *)

(* Option.bind with the arguments in reading order. *)
let ( =<< ) f x = Option.bind x f

(* ------------------------------------------------------------------ *)
(* Overload scenario: a burst against a deliberately tiny admission
   queue.  The first wave must shed (the point of the test); a retry
   loop with deterministic exponential backoff resends exactly the shed
   requests until everything has been answered.  Zero lost requests and
   at least one shed are both hard objectives. *)

let run_overload ~cache_dir ~epicd_bin ~retries ~retry_base_ms ~retry_seed
    ~jobs =
  let queue_max = 4 in
  let ops = compile_grid @ extras in
  let send_wave =
    match epicd_bin with
    | Some bin ->
      fun lines ->
        pass_spawn ~jobs ~cache_dir bin lines
          ~extra_args:[ "--queue-max"; string_of_int queue_max ]
    | None ->
      (* One long-lived server across the waves: sheds accumulate in its
         stats, and retries hit its in-memory caches even without a
         cache directory. *)
      let store = Option.map Epic_serve.Store.open_ cache_dir in
      let t =
        Epic_serve.Server.create ~jobs ~queue_max ?store ()
      in
      fun lines -> Epic_serve.Server.serve_strings t lines
  in
  let got = Hashtbl.create 16 in
  let sheds = ref 0 in
  let pending = ref (List.mapi (fun i op -> (i, op)) ops) in
  let attempt = ref 0 in
  while !pending <> [] && !attempt <= retries do
    incr attempt;
    if !attempt > 1 then begin
      let delay =
        Epic.Exec.Backoff.delay_ms ~base_ms:retry_base_ms ~seed:retry_seed
          ~key:0 ~attempt:(!attempt - 1) ()
      in
      Unix.sleepf (delay /. 1000.)
    end;
    let lines =
      List.map
        (fun (i, op) ->
          P.to_line { P.rq_id = Some i; rq_deadline_ms = None; rq_op = op })
        !pending
    in
    let responses = send_wave lines in
    List.iter
      (fun line ->
        match Result.to_option (J.parse line) with
        | None -> failwith (Printf.sprintf "unparseable response: %s" line)
        | Some j ->
          let id =
            match J.member "id" j with Some (J.Int i) -> Some i | _ -> None
          in
          let ok =
            match J.member "ok" j with Some (J.Bool b) -> b | _ -> false
          in
          let code =
            match J.member "code" =<< J.member "error" j with
            | Some (J.Str c) -> Some c
            | _ -> None
          in
          match (id, ok, code) with
          | Some i, true, _ -> Hashtbl.replace got i line
          | Some _, false, Some "serve/overload" -> incr sheds
          | _, false, _ ->
            failwith (Printf.sprintf "unexpected error response: %s" line)
          | None, true, _ -> ())
      responses;
    let before = List.length !pending in
    pending := List.filter (fun (i, _) -> not (Hashtbl.mem got i)) !pending;
    Printf.printf
      "overload wave %d: %d sent, %d answered, %d shed so far\n%!" !attempt
      before
      (before - List.length !pending)
      !sheds
  done;
  let lost = List.length !pending in
  if lost > 0 then begin
    Printf.eprintf
      "epicload: FAIL: %d request(s) lost after %d wave(s) of retries\n" lost
      !attempt;
    exit 1
  end;
  if !sheds = 0 then begin
    Printf.eprintf
      "epicload: FAIL: overload scenario never shed — burst too small for \
       queue-max %d\n"
      queue_max;
    exit 1
  end;
  Printf.printf
    "epicload: overload OK (%d requests, %d shed then retried to completion \
     in %d wave(s), 0 lost)\n"
    (List.length ops) !sheds !attempt

(* ------------------------------------------------------------------ *)
(* Chaos mode: hand over to the seeded injection campaign in
   Epic_serve.Chaos, which drives the real daemon binary over pipes. *)

let run_chaos ~cache_dir ~epicd_bin ~seed ~report_file ~jobs =
  let bin =
    match epicd_bin with
    | Some b -> b
    | None -> failwith "--chaos requires --epicd BIN (it drives the real daemon)"
  in
  let cache_dir =
    match cache_dir with
    | Some d -> d
    | None ->
      failwith "--chaos requires --cache-dir DIR (the directory is wiped)"
  in
  let report = Epic_serve.Chaos.run ~jobs ~seed ~bin ~cache_dir () in
  let json = J.to_string (Epic_serve.Chaos.report_to_json report) in
  (match report_file with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     output_string oc json;
     output_char oc '\n';
     close_out oc;
     Printf.printf "chaos: report written to %s\n" path);
  if report.Epic_serve.Chaos.r_ok then
    Printf.printf "epicload: chaos OK (seed %d, %d injections survived)\n" seed
      (List.length report.Epic_serve.Chaos.r_injections)
  else begin
    Printf.eprintf "epicload: FAIL: chaos campaign (seed %d):\n%s\n" seed json;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Concurrent clients: N threads replay the same scenario against one
   socket daemon.  A start barrier makes the identical request streams
   actually overlap, which is what exercises the daemon's cross-client
   in-flight deduplication rather than its disk cache. *)

let run_clients ~path ~clients lines =
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let go = ref false in
  let results = Array.make clients None in
  let threads =
    List.init clients (fun i ->
        Thread.create
          (fun () ->
            Mutex.lock mu;
            while not !go do
              Condition.wait cv mu
            done;
            Mutex.unlock mu;
            results.(i) <-
              Some
                (match pass_connect path lines with
                 | r -> Ok r
                 | exception e -> Error e))
          ())
  in
  Mutex.lock mu;
  go := true;
  Condition.broadcast cv;
  Mutex.unlock mu;
  List.iter Thread.join threads;
  Array.to_list results
  |> List.map (function
       | Some (Ok r) -> r
       | Some (Error e) -> raise e
       | None -> assert false)

(* ------------------------------------------------------------------ *)

let run scenario passes clients cache_dir epicd_bin connect slo_p95
    slo_ref_rate expect_hit deadline_ms retries retry_base_ms retry_seed chaos
    chaos_seed chaos_report stats_json jobs =
  Cli_common.handle_errors @@ fun () ->
  if passes < 1 then failwith "--passes must be >= 1";
  if clients < 1 then failwith "--clients must be >= 1";
  if clients > 1 && connect = None then
    failwith "--clients > 1 drives concurrent socket connections; it requires \
              --connect";
  if epicd_bin <> None && connect <> None then
    failwith "--epicd and --connect are mutually exclusive";
  if chaos then run_chaos ~cache_dir ~epicd_bin ~seed:chaos_seed
      ~report_file:chaos_report ~jobs
  else if scenario = "overload" then begin
    if connect <> None then
      failwith "--scenario overload drives its own daemon; drop --connect";
    run_overload ~cache_dir ~epicd_bin ~retries ~retry_base_ms ~retry_seed
      ~jobs
  end
  else begin
  let ops = scenario_ops scenario @ [ P.Stats ] in
  let reqs =
    List.mapi
      (fun i op ->
        { P.rq_id = Some i;
          rq_deadline_ms = (if P.is_control op then None else deadline_ms);
          rq_op = op })
      ops
  in
  let lines = List.map P.to_line reqs in
  let control =
    List.map (fun r -> P.is_control r.P.rq_op) reqs
  in
  let work_ids =
    List.filter_map
      (fun r -> if P.is_control r.P.rq_op then None else r.P.rq_id)
      reqs
  in
  let run_pass () =
    match (epicd_bin, connect) with
    | Some bin, _ -> [ pass_spawn ~jobs ~cache_dir bin lines ]
    | None, Some path ->
      if clients > 1 then run_clients ~path ~clients lines
      else [ pass_connect path lines ]
    | None, None -> [ pass_in_process ~jobs ~cache_dir lines ]
  in
  let failures = ref [] in
  let fail fmt = Format.kasprintf (fun m -> failures := m :: !failures) fmt in
  let work_of ~client responses =
    (* Responses arrive in request order, so the control mask applies
       positionally. *)
    if List.length responses <> List.length control then
      fail "client %d: expected %d responses, got %d (lost requests)" client
        (List.length control)
        (List.length responses);
    List.filteri
      (fun i _ -> not (try List.nth control i with _ -> true))
      responses
  in
  let baseline = ref [] in
  let last_stats = ref None in
  (* In connect mode the daemon survives across passes, so its stats
     counters are cumulative: track the previous pass's disk totals and
     assert on the delta. *)
  let prev_disk = ref (0., 0.) in
  for pass = 1 to passes do
    let t0 = Epic.Exec.now () in
    let per_client = run_pass () in
    let wall = Epic.Exec.now () -. t0 in
    let works = List.mapi (fun ci r -> work_of ~client:ci r) per_client in
    List.iteri
      (fun ci work ->
        List.iteri
          (fun i line ->
            match J.member "ok" =<< Result.to_option (J.parse line) with
            | Some (J.Bool true) -> ()
            | _ ->
              fail "pass %d client %d: work response %d not ok: %s" pass ci i
                line)
          work;
        (* Per-connection ordering: every client's response ids must be
           the request ids, in request order. *)
        let got_ids =
          List.map
            (fun line ->
              match J.member "id" =<< Result.to_option (J.parse line) with
              | Some (J.Int i) -> Some i
              | _ -> None)
            work
        in
        if got_ids <> List.map Option.some work_ids then
          fail "pass %d client %d: response ids out of request order" pass ci)
      works;
    let work = match works with w :: _ -> w | [] -> [] in
    List.iteri
      (fun ci w ->
        if ci > 0 && w <> work then
          fail
            "pass %d: client %d responses differ from client 0 (determinism \
             violation)"
            pass ci)
      works;
    (* With one client the scenario's trailing stats barrier doubles as
       the probe; with several, each client got its own stats response
       (excluded from byte-identity), so a dedicated control connection
       reads the daemon-wide totals after the pass. *)
    let stats_line =
      if clients > 1 then
        match connect with
        | Some path ->
          let l =
            P.to_line
              { P.rq_id = Some 999_999; rq_deadline_ms = None; rq_op = P.Stats }
          in
          (match List.rev (pass_connect path [ l ]) with
           | last :: _ -> Some last
           | [] -> None)
        | None -> None
      else
        match List.rev (List.concat per_client) with
        | last :: _ -> Some last
        | [] -> None
    in
    last_stats := stats_line;
    let dist, hits, misses, rate =
      match stats_line with
      | Some last -> parse_stats last
      | None ->
        ( { l_p50 = None; l_p95 = None; l_p99 = None; l_max = None },
          None, None, None )
    in
    (* Normalise the SLO by the daemon's own host-throughput probe: a
       runner sustaining half the reference simulated-cycles-per-second
       is allowed twice the latency.  Fast runners never tighten the
       objective (the scale factor is clamped at 1). *)
    let slo_eff =
      match rate with
      | Some m when slo_ref_rate > 0. && m > 0. ->
        slo_p95 *. Float.max 1.0 (slo_ref_rate /. m)
      | _ -> slo_p95
    in
    (match dist.l_p95 with
     | Some v when v > slo_eff ->
       fail "pass %d: p95 latency %.1f ms exceeds SLO of %.1f ms%s" pass v
         slo_eff
         (if slo_eff <> slo_p95 then
            Printf.sprintf " (%.1f ms scaled by host sim rate)" slo_p95
          else "")
     | _ -> ());
    let hit_rate =
      match (hits, misses) with
      | Some h, Some m ->
        let ph, pm = !prev_disk in
        if connect <> None then prev_disk := (h, m);
        let dh, dm = (h -. ph, m -. pm) in
        if dh +. dm > 0. then Some (dh /. (dh +. dm)) else None
      | _ -> None
    in
    (match hit_rate with
     | Some r when pass > 1 && r < expect_hit ->
       fail "pass %d: disk hit rate %.0f%% below expected %.0f%%" pass
         (100. *. r) (100. *. expect_hit)
     | _ -> ());
    if pass = 1 then baseline := work
    else if work <> !baseline then
      fail "pass %d: responses differ from pass 1 (determinism violation)" pass;
    Printf.printf "pass %d: %d responses%s in %.2f s, %s%s%s\n%!" pass
      (List.fold_left (fun n r -> n + List.length r) 0 per_client)
      (if clients > 1 then Printf.sprintf " across %d clients" clients else "")
      wall (pp_dist dist)
      (match rate with
       | Some m -> Printf.sprintf ", host %.2e cyc/s" m
       | None -> "")
      (match hit_rate with
       | Some r -> Printf.sprintf ", disk hit rate %.0f%%" (100. *. r)
       | None -> "")
  done;
  (* Overlapping identical streams must collapse: if N barrier-started
     clients replaying the same scenario never shared one in-flight
     evaluation, the concurrent path is not actually concurrent. *)
  (if clients > 1 then
     match Option.bind !last_stats (fun l -> stat_field l [ "dedup_hits" ]) with
     | Some d when d > 0. ->
       Printf.printf "epicload: %d in-flight dedup hits across %d clients\n"
         (int_of_float d) clients
     | Some _ ->
       fail "no in-flight dedup hits across %d concurrent clients" clients
     | None -> fail "stats response carries no dedup_hits field");
  (match (stats_json, !last_stats) with
   | Some file, Some line ->
     let oc = open_out file in
     output_string oc line;
     output_char oc '\n';
     close_out oc;
     Printf.printf "epicload: stats written to %s\n" file
   | Some _, None -> fail "no stats response to write"
   | None, _ -> ());
  (match List.rev !failures with
   | [] ->
     Printf.printf "epicload: %s x%d%s OK (%d requests per pass)\n" scenario
       passes
       (if clients > 1 then Printf.sprintf " x%d clients" clients else "")
       (List.length lines)
   | fs ->
     List.iter (Printf.eprintf "epicload: FAIL: %s\n") fs;
     exit 1)
  end

let cmd =
  let scenario =
    Arg.(value & opt string "mixed"
         & info [ "scenario" ] ~docv:"NAME"
           ~doc:"Traffic shape: mixed (compile grid + simulate, \
                 fault-campaign, explore-slice), bursty (mixed with stats \
                 barriers every 4 requests), compile-heavy, or overload (a \
                 burst against a tiny admission queue, retried with seeded \
                 exponential backoff until zero requests are lost).")
  in
  let passes =
    Arg.(value & opt int 2
         & info [ "passes" ] ~docv:"N"
           ~doc:"Replay the scenario $(docv) times; passes after the first \
                 must be byte-identical and (with a cache) mostly disk hits.")
  in
  let clients =
    Arg.(value & opt int 1
         & info [ "clients" ] ~docv:"N"
           ~doc:"Replay each pass from $(docv) concurrent socket clients \
                 (requires --connect and a daemon started with \
                 $(b,--max-conns) >= $(docv)).  All clients must receive \
                 complete, identical, in-order response streams, and the \
                 daemon must report in-flight dedup hits.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Artifact cache directory for in-process and --epicd modes \
                 (re-opened by each pass: the restart test).")
  in
  let epicd_bin =
    Arg.(value & opt (some string) None
         & info [ "epicd" ] ~docv:"BIN"
           ~doc:"Spawn this epicd binary in pipe mode, once per pass, \
                 instead of serving in-process.")
  in
  let connect =
    Arg.(value & opt (some string) None
         & info [ "connect" ] ~docv:"SOCKET"
           ~doc:"Drive an already-running daemon over its Unix socket.")
  in
  let slo =
    Arg.(value & opt float 30000.
         & info [ "slo-p95-ms" ] ~docv:"MS"
           ~doc:"Fail if the daemon reports a p95 request latency above \
                 $(docv) milliseconds.")
  in
  let slo_ref_rate =
    Arg.(value & opt float 0.
         & info [ "slo-ref-rate" ] ~docv:"CYC_PER_S"
           ~doc:"Reference host simulated-cycles-per-second the SLO was \
                 calibrated on.  When positive, the p95 objective is \
                 scaled by $(docv) / (the daemon's own sim_rate probe), \
                 clamped at 1x, so slower CI runners don't flake.  0 \
                 disables normalisation.")
  in
  let expect_hit =
    Arg.(value & opt float 0.9
         & info [ "expect-hit-rate" ] ~docv:"R"
           ~doc:"Minimum disk-cache hit rate (0-1) required of every pass \
                 after the first.")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Stamp every work request with this per-request deadline; \
                 the daemon abandons work past it with a \
                 $(i,serve/deadline) error.")
  in
  let retries =
    Arg.(value & opt int 5
         & info [ "retries" ] ~docv:"N"
           ~doc:"Retry waves allowed in the overload scenario before shed \
                 requests count as lost.")
  in
  let retry_base_ms =
    Arg.(value & opt float 25.
         & info [ "retry-base-ms" ] ~docv:"MS"
           ~doc:"Base delay of the exponential backoff between retry waves \
                 (doubled each wave, with deterministic seeded jitter, \
                 capped at 2 s).")
  in
  let retry_seed =
    Arg.(value & opt int 0
         & info [ "retry-seed" ] ~docv:"SEED"
           ~doc:"Seed of the backoff jitter; the same seed replays the same \
                 delays.")
  in
  let chaos =
    Arg.(value & flag
         & info [ "chaos" ]
           ~doc:"Run the seeded chaos campaign instead of a load scenario: \
                 torn writes, bit flips, garbage and oversized frames, a \
                 slow-loris client, blown deadlines, and a kill-and-restart, \
                 each followed by byte-identity and cache-recovery checks.  \
                 Requires --epicd and --cache-dir (the directory is wiped).")
  in
  let chaos_seed =
    Arg.(value & opt int 0
         & info [ "chaos-seed" ] ~docv:"SEED"
           ~doc:"Seed of the chaos campaign; every injected fault is a pure \
                 function of it.")
  in
  let chaos_report =
    Arg.(value & opt (some string) None
         & info [ "chaos-report" ] ~docv:"FILE"
           ~doc:"Write the chaos campaign's JSON report to $(docv).")
  in
  let stats_json =
    Arg.(value & opt (some string) None
         & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"Write the final stats response (one JSON line) to $(docv) — \
                 the CI artifact.")
  in
  Cmd.v
    (Cmd.info "epicload"
       ~doc:"Generate load against epicd and assert its service-level \
             objectives")
    Term.(const run $ scenario $ passes $ clients $ cache_dir $ epicd_bin
          $ connect $ slo $ slo_ref_rate $ expect_hit $ deadline_ms $ retries
          $ retry_base_ms $ retry_seed $ chaos $ chaos_seed $ chaos_report
          $ stats_json $ Cli_common.jobs_term)

let () = exit (Cmd.eval cmd)
