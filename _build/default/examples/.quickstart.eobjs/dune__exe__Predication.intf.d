examples/predication.mli:
