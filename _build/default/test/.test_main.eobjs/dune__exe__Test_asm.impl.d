test/test_asm.ml: Alcotest Array Epic Format Gen List Printf QCheck QCheck_alcotest Test
