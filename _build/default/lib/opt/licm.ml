(* Loop-invariant code motion.  Pure instructions whose operands are not
   defined inside the loop move to a fresh preheader.  The big practical
   winners here are global-address materialisations (AddrOf) and address
   arithmetic recomputed on every iteration, which local CSE cannot reach
   across the back edge.

   Safety conditions for hoisting instruction [i] with destination [d]:
   - pure, unguarded, and total (no Div/Rem: the preheader executes even
     when the loop body would not);
   - every register operand has no definition inside the loop;
   - [d] has exactly one definition in the loop (this one);
   - [d] is not live into the header (no use of a previous-iteration or
     pre-loop value);
   - [d] is not live into any loop exit (the loop may exit before the
     original definition executed).

   Hoisting iterates, so chains of invariant computations migrate one
   layer per round. *)

module Ir = Epic_mir.Ir
module Dom = Epic_mir.Dominators
module Liveness = Epic_mir.Liveness

let pure_total (k : Ir.inst_kind) =
  match k with
  | Ir.Bin ((Ir.Div | Ir.Rem), _, _, _) -> false
  | Ir.Bin _ | Ir.Mov _ | Ir.Cmp _ | Ir.Custom _ | Ir.AddrOf _ | Ir.FrameAddr _ ->
    true
  | Ir.Load _ | Ir.LoadFrame _  (* memory may change inside the loop *)
  | Ir.Store _ | Ir.StoreFrame _ | Ir.Call _ | Ir.Setp _ ->
    false

let fresh_label (f : Ir.func) =
  1 + List.fold_left (fun acc (b : Ir.block) -> max acc b.Ir.b_id) 0 f.Ir.f_blocks

(* Retarget every edge into [header] from outside [body] to [pre]. *)
let redirect_entries (f : Ir.func) body header pre =
  List.iter
    (fun (b : Ir.block) ->
      if (not (Dom.LSet.mem b.Ir.b_id body)) && b.Ir.b_id <> pre then begin
        let r l = if l = header then pre else l in
        b.Ir.b_term <-
          (match b.Ir.b_term with
           | Ir.Jmp l -> Ir.Jmp (r l)
           | Ir.Br (c, x, y, lt, lf) -> Ir.Br (c, x, y, r lt, r lf)
           | Ir.Ret _ as t -> t)
      end)
    f.Ir.f_blocks

let hoist_loop (f : Ir.func) (l : Dom.loop) =
  let body_blocks =
    List.filter (fun (b : Ir.block) -> Dom.LSet.mem b.Ir.b_id l.Dom.body) f.Ir.f_blocks
  in
  (* Definition counts inside the loop, per GPR-class register. *)
  let def_count = Hashtbl.create 32 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun i ->
          List.iter
            (fun (c, r) ->
              if c = Ir.Cgpr then
                Hashtbl.replace def_count r
                  (1 + Option.value ~default:0 (Hashtbl.find_opt def_count r)))
            (Ir.defs_of_inst i))
        b.Ir.b_insts)
    body_blocks;
  let live = Liveness.analyse f in
  let header_live_in = Liveness.live_in live l.Dom.header in
  (* Labels outside the loop reachable from inside (exit targets). *)
  let exit_live =
    List.fold_left
      (fun acc (b : Ir.block) ->
        List.fold_left
          (fun acc s ->
            if Dom.LSet.mem s l.Dom.body then acc
            else Liveness.RSet.union acc (Liveness.live_in live s))
          acc
          (Ir.successors b.Ir.b_term))
      Liveness.RSet.empty body_blocks
  in
  let operand_invariant (o : Ir.operand) =
    match o with
    | Ir.Imm _ -> true
    | Ir.Reg r -> not (Hashtbl.mem def_count r)
  in
  let hoistable (i : Ir.inst) =
    i.Ir.guard = None
    && pure_total i.Ir.kind
    && List.for_all
         (fun (c, r) -> c <> Ir.Cgpr || not (Hashtbl.mem def_count r))
         (Ir.uses_of_inst i)
    && (match Ir.defs_of_inst i with
        | [ (Ir.Cgpr, d) ] ->
          Hashtbl.find_opt def_count d = Some 1
          && (not (Liveness.RSet.mem (Ir.Cgpr, d) header_live_in))
          && not (Liveness.RSet.mem (Ir.Cgpr, d) exit_live)
        | _ -> false)
    &&
    (* operand_invariant is already covered by the uses check; keep the
       helper for readability of intent. *)
    List.for_all
      (fun o -> operand_invariant o)
      (match i.Ir.kind with
       | Ir.Bin (_, _, a, b) | Ir.Cmp (_, _, a, b) | Ir.Custom (_, _, a, b) ->
         [ a; b ]
       | Ir.Mov (_, a) -> [ a ]
       | _ -> [])
  in
  let hoisted = ref [] in
  List.iter
    (fun (b : Ir.block) ->
      let keep, out = List.partition (fun i -> not (hoistable i)) b.Ir.b_insts in
      if out <> [] then begin
        b.Ir.b_insts <- keep;
        hoisted := !hoisted @ out;
        (* The moved definitions no longer count as in-loop defs, but we
           only perform one harvest per loop per round; chains migrate on
           the next round. *)
        List.iter
          (fun i ->
            List.iter
              (fun (c, r) -> if c = Ir.Cgpr then Hashtbl.remove def_count r)
              (Ir.defs_of_inst i))
          out
      end)
    body_blocks;
  match !hoisted with
  | [] -> false
  | insts ->
    let pre = fresh_label f in
    let pre_block = { Ir.b_id = pre; b_insts = insts; b_term = Ir.Jmp l.Dom.header } in
    redirect_entries f l.Dom.body l.Dom.header pre;
    (* Keep layout order: the preheader sits right before its header. *)
    let rec insert = function
      | [] -> [ pre_block ]
      | (b : Ir.block) :: rest when b.Ir.b_id = l.Dom.header -> pre_block :: b :: rest
      | b :: rest -> b :: insert rest
    in
    f.Ir.f_blocks <- insert f.Ir.f_blocks;
    true

let run_func (f : Ir.func) =
  (* Hoisting rewires the CFG, so loop/dominator/liveness facts go stale
     after every successful hoist: harvest one loop per round and
     re-analyse.  Innermost (smallest) loops first, so values migrate
     outward one level per round. *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 16 do
    incr rounds;
    changed := false;
    let doms = Dom.analyse f in
    let loops =
      List.sort
        (fun a b -> compare (Dom.LSet.cardinal a.Dom.body) (Dom.LSet.cardinal b.Dom.body))
        (Dom.natural_loops doms f)
    in
    changed := List.exists (fun l -> hoist_loop f l) loops
  done

let run (p : Ir.program) =
  List.iter run_func p.Ir.p_funcs;
  p
