(* Recursive-descent parser for EPIC-C with standard C operator
   precedence.  Assignment (including compound assignment and ++/--) is a
   statement form, not an expression, which keeps evaluation order
   explicit. *)

exception Parse_error of string * Ast.pos

type state = { toks : Lexer.ltoken array; mutable k : int }

let error st msg = raise (Parse_error (msg, st.toks.(st.k).Lexer.pos))

let cur st = st.toks.(st.k).Lexer.tok
let cur_pos st = st.toks.(st.k).Lexer.pos
let advance st = if st.k < Array.length st.toks - 1 then st.k <- st.k + 1

let expect_punct st p =
  match cur st with
  | Lexer.PUNCT q when q = p -> advance st
  | t -> error st (Printf.sprintf "expected %S, found %s" p (Lexer.string_of_token t))

let expect_kw st kw =
  match cur st with
  | Lexer.KW q when q = kw -> advance st
  | t -> error st (Printf.sprintf "expected %S, found %s" kw (Lexer.string_of_token t))

let expect_ident st =
  match cur st with
  | Lexer.IDENT s -> advance st; s
  | t -> error st (Printf.sprintf "expected identifier, found %s" (Lexer.string_of_token t))

let eat_punct st p =
  match cur st with
  | Lexer.PUNCT q when q = p -> advance st; true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions *)

let binop_of_punct = function
  | "+" -> Some Ast.Badd | "-" -> Some Ast.Bsub | "*" -> Some Ast.Bmul
  | "/" -> Some Ast.Bdiv | "%" -> Some Ast.Brem | "&" -> Some Ast.Band
  | "|" -> Some Ast.Bor | "^" -> Some Ast.Bxor | "<<" -> Some Ast.Bshl
  | ">>" -> Some Ast.Bshr | "==" -> Some Ast.Beq | "!=" -> Some Ast.Bne
  | "<" -> Some Ast.Blt | "<=" -> Some Ast.Ble | ">" -> Some Ast.Bgt
  | ">=" -> Some Ast.Bge | "&&" -> Some Ast.Bland | "||" -> Some Ast.Blor
  | _ -> None

(* Precedence levels, loosest first; ternary handled separately above. *)
let levels =
  [ [ "||" ]; [ "&&" ]; [ "|" ]; [ "^" ]; [ "&" ]; [ "=="; "!=" ];
    [ "<"; "<="; ">"; ">=" ]; [ "<<"; ">>" ]; [ "+"; "-" ]; [ "*"; "/"; "%" ] ]

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let p = cur_pos st in
  let c = parse_binary st levels in
  if eat_punct st "?" then begin
    let a = parse_ternary st in
    expect_punct st ":";
    let b = parse_ternary st in
    Ast.Econd (c, a, b, p)
  end
  else c

and parse_binary st = function
  | [] -> parse_unary st
  | ops :: tighter ->
    let rec loop lhs =
      match cur st with
      | Lexer.PUNCT p when List.mem p ops ->
        let pos = cur_pos st in
        advance st;
        let rhs = parse_binary st tighter in
        let op = match binop_of_punct p with Some o -> o | None -> assert false in
        loop (Ast.Ebin (op, lhs, rhs, pos))
      | _ -> lhs
    in
    loop (parse_binary st tighter)

and parse_unary st =
  let p = cur_pos st in
  match cur st with
  | Lexer.PUNCT "-" -> advance st; Ast.Eun (Ast.Uneg, parse_unary st, p)
  | Lexer.PUNCT "~" -> advance st; Ast.Eun (Ast.Unot, parse_unary st, p)
  | Lexer.PUNCT "!" -> advance st; Ast.Eun (Ast.Ulnot, parse_unary st, p)
  | Lexer.PUNCT "+" -> advance st; parse_unary st
  | _ -> parse_postfix st

and parse_postfix st =
  let p = cur_pos st in
  match cur st with
  | Lexer.INT v -> advance st; Ast.Eint (v, p)
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | Lexer.IDENT name ->
    advance st;
    (match cur st with
     | Lexer.PUNCT "(" ->
       advance st;
       let args =
         if eat_punct st ")" then []
         else begin
           let rec go acc =
             let a = parse_expr st in
             if eat_punct st "," then go (a :: acc) else (expect_punct st ")"; List.rev (a :: acc))
           in
           go []
         end
       in
       Ast.Ecall (name, args, p)
     | Lexer.PUNCT "[" ->
       advance st;
       let idx = parse_expr st in
       expect_punct st "]";
       Ast.Eindex (name, idx, p)
     | _ -> Ast.Evar (name, p))
  | t -> error st (Printf.sprintf "expected expression, found %s" (Lexer.string_of_token t))

(* ------------------------------------------------------------------ *)
(* Statements *)

let compound_ops =
  [ ("+=", Ast.Badd); ("-=", Ast.Bsub); ("*=", Ast.Bmul); ("/=", Ast.Bdiv);
    ("%=", Ast.Brem); ("&=", Ast.Band); ("|=", Ast.Bor); ("^=", Ast.Bxor);
    ("<<=", Ast.Bshl); (">>=", Ast.Bshr) ]

(* A "simple statement": assignment, ++/--, or a bare expression (call). *)
let parse_simple st =
  let p = cur_pos st in
  let lvalue_and_assign name =
    let lv =
      if eat_punct st "[" then begin
        let idx = parse_expr st in
        expect_punct st "]";
        Ast.Lindex (name, idx, p)
      end
      else Ast.Lvar (name, p)
    in
    match cur st with
    | Lexer.PUNCT "=" ->
      advance st;
      let e = parse_expr st in
      Ast.Sassign (lv, None, e, p)
    | Lexer.PUNCT "++" -> advance st; Ast.Sassign (lv, Some Ast.Badd, Ast.Eint (1, p), p)
    | Lexer.PUNCT "--" -> advance st; Ast.Sassign (lv, Some Ast.Bsub, Ast.Eint (1, p), p)
    | Lexer.PUNCT q when List.mem_assoc q compound_ops ->
      advance st;
      let e = parse_expr st in
      Ast.Sassign (lv, Some (List.assoc q compound_ops), e, p)
    | _ ->
      (* Not an assignment after all: re-parse as an expression statement.
         The only legal form is a call, checked during lowering. *)
      (match lv with
       | Ast.Lvar (n, _) -> Ast.Sexpr (Ast.Evar (n, p), p)
       | Ast.Lindex (n, i, _) -> Ast.Sexpr (Ast.Eindex (n, i, p), p))
  in
  match cur st with
  | Lexer.PUNCT "++" ->
    advance st;
    let name = expect_ident st in
    Ast.Sassign (Ast.Lvar (name, p), Some Ast.Badd, Ast.Eint (1, p), p)
  | Lexer.PUNCT "--" ->
    advance st;
    let name = expect_ident st in
    Ast.Sassign (Ast.Lvar (name, p), Some Ast.Bsub, Ast.Eint (1, p), p)
  | Lexer.IDENT name ->
    advance st;
    (match cur st with
     | Lexer.PUNCT "(" ->
       st.k <- st.k - 1;
       let e = parse_expr st in
       Ast.Sexpr (e, p)
     | _ -> lvalue_and_assign name)
  | _ ->
    let e = parse_expr st in
    Ast.Sexpr (e, p)

let parse_const_expr st =
  (* Constant expressions for array sizes: allow a literal, possibly
     parenthesised or negated (checked positive during lowering). *)
  let e = parse_expr st in
  let rec eval = function
    | Ast.Eint (v, _) -> v
    | Ast.Eun (Ast.Uneg, e, _) -> -eval e
    | Ast.Ebin (op, a, b, _) ->
      let a = eval a and b = eval b in
      (match op with
       | Ast.Badd -> a + b | Ast.Bsub -> a - b | Ast.Bmul -> a * b
       | Ast.Bdiv -> a / b | Ast.Bshl -> a lsl b
       | _ -> error st "unsupported constant expression")
    | _ -> error st "array size must be a constant expression"
  in
  eval e

let rec parse_stmt st =
  let p = cur_pos st in
  match cur st with
  | Lexer.PUNCT "{" ->
    advance st;
    let rec go acc =
      if eat_punct st "}" then List.rev acc else go (parse_stmt st :: acc)
    in
    Ast.Sblock (go [])
  | Lexer.PUNCT ";" -> advance st; Ast.Snop
  | Lexer.KW "if" ->
    advance st;
    expect_punct st "(";
    let c = parse_expr st in
    expect_punct st ")";
    let then_ = parse_stmt st in
    let else_ =
      match cur st with
      | Lexer.KW "else" -> advance st; Some (parse_stmt st)
      | _ -> None
    in
    Ast.Sif (c, then_, else_, p)
  | Lexer.KW "while" ->
    advance st;
    expect_punct st "(";
    let c = parse_expr st in
    expect_punct st ")";
    Ast.Swhile (c, parse_stmt st, p)
  | Lexer.KW "do" ->
    advance st;
    let body = parse_stmt st in
    expect_kw st "while";
    expect_punct st "(";
    let c = parse_expr st in
    expect_punct st ")";
    expect_punct st ";";
    Ast.Sdo (body, c, p)
  | Lexer.KW "for" ->
    advance st;
    expect_punct st "(";
    let init = if eat_punct st ";" then None else begin
      let s =
        match cur st with
        | Lexer.KW "int" -> parse_local_decl st
        | _ -> parse_simple st
      in
      expect_punct st ";"; Some s
    end in
    let cond = if eat_punct st ";" then None else begin
      let e = parse_expr st in expect_punct st ";"; Some e
    end in
    let step =
      match cur st with
      | Lexer.PUNCT ")" -> advance st; None
      | _ ->
        let s = parse_simple st in
        expect_punct st ")";
        Some s
    in
    Ast.Sfor (init, cond, step, parse_stmt st, p)
  | Lexer.KW "return" ->
    advance st;
    if eat_punct st ";" then Ast.Sreturn (None, p)
    else begin
      let e = parse_expr st in
      expect_punct st ";";
      Ast.Sreturn (Some e, p)
    end
  | Lexer.KW "break" -> advance st; expect_punct st ";"; Ast.Sbreak p
  | Lexer.KW "continue" -> advance st; expect_punct st ";"; Ast.Scontinue p
  | Lexer.KW "int" ->
    let s = parse_local_decl st in
    expect_punct st ";";
    s
  | _ ->
    let s = parse_simple st in
    expect_punct st ";";
    s

and parse_local_decl st =
  let p = cur_pos st in
  expect_kw st "int";
  let name = expect_ident st in
  if eat_punct st "[" then begin
    let n = parse_const_expr st in
    expect_punct st "]";
    Ast.Sdecl (name, Some n, None, p)
  end
  else if eat_punct st "=" then Ast.Sdecl (name, None, Some (parse_expr st), p)
  else Ast.Sdecl (name, None, None, p)

(* ------------------------------------------------------------------ *)
(* Top level *)

let parse_params st =
  expect_punct st "(";
  if eat_punct st ")" then []
  else begin
    let rec go acc =
      let p = cur_pos st in
      (match cur st with
       | Lexer.KW "int" -> advance st
       | Lexer.KW "void" when acc = [] && cur_pos st = p ->
         (* f(void) *)
         advance st;
         expect_punct st ")";
         raise Exit
       | t -> error st (Printf.sprintf "expected parameter type, found %s" (Lexer.string_of_token t)));
      let name = expect_ident st in
      let arr =
        if eat_punct st "[" then begin expect_punct st "]"; true end else false
      in
      let prm = { Ast.p_name = name; p_array = arr; p_pos = p } in
      if eat_punct st "," then go (prm :: acc)
      else begin
        expect_punct st ")";
        List.rev (prm :: acc)
      end
    in
    try go [] with Exit -> []
  end

let parse_decl st =
  let p = cur_pos st in
  (match cur st with
   | Lexer.KW "int" | Lexer.KW "void" -> advance st
   | t -> error st (Printf.sprintf "expected declaration, found %s" (Lexer.string_of_token t)));
  let name = expect_ident st in
  match cur st with
  | Lexer.PUNCT "(" ->
    let params = parse_params st in
    (match cur st with
     | Lexer.PUNCT "{" ->
       let body =
         match parse_stmt st with
         | Ast.Sblock b -> b
         | _ -> assert false
       in
       Ast.Dfunc { Ast.fn_name = name; fn_params = params; fn_body = body; fn_pos = p }
     | t -> error st (Printf.sprintf "expected function body, found %s" (Lexer.string_of_token t)))
  | Lexer.PUNCT "[" ->
    advance st;
    let n = parse_const_expr st in
    expect_punct st "]";
    let init =
      if eat_punct st "=" then begin
        expect_punct st "{";
        let rec go acc =
          let v =
            match cur st with
            | Lexer.PUNCT "-" ->
              advance st;
              (match cur st with
               | Lexer.INT v -> advance st; -v
               | t -> error st (Printf.sprintf "expected integer, found %s" (Lexer.string_of_token t)))
            | Lexer.INT v -> advance st; v
            | t -> error st (Printf.sprintf "expected integer, found %s" (Lexer.string_of_token t))
          in
          if eat_punct st "," then
            if cur st = Lexer.PUNCT "}" then begin advance st; List.rev (v :: acc) end
            else go (v :: acc)
          else begin
            expect_punct st "}";
            List.rev (v :: acc)
          end
        in
        go []
      end
      else []
    in
    expect_punct st ";";
    Ast.Dglobal { Ast.gl_name = name; gl_array = Some n; gl_init = init; gl_pos = p }
  | _ ->
    let init =
      if eat_punct st "=" then begin
        match cur st with
        | Lexer.INT v -> advance st; [ v ]
        | Lexer.PUNCT "-" ->
          advance st;
          (match cur st with
           | Lexer.INT v -> advance st; [ -v ]
           | t -> error st (Printf.sprintf "expected integer, found %s" (Lexer.string_of_token t)))
        | t -> error st (Printf.sprintf "expected integer initialiser, found %s" (Lexer.string_of_token t))
      end
      else []
    in
    expect_punct st ";";
    Ast.Dglobal { Ast.gl_name = name; gl_array = None; gl_init = init; gl_pos = p }

let parse_program src =
  let st = { toks = Array.of_list (Lexer.tokenize src); k = 0 } in
  let rec go acc =
    match cur st with
    | Lexer.EOF -> List.rev acc
    | _ -> go (parse_decl st :: acc)
  in
  go []
