(* Serving-daemon tests: wire-protocol round-trips for every request
   kind, strict-parser diagnostics for malformed input, byte-identity of
   batch responses across --jobs values, disk-cache persistence across
   daemon restarts, the store's atomicity/eviction/versioning mechanics,
   and the memo-cache observation API. *)

module P = Epic_serve.Protocol
module Server = Epic_serve.Server
module Store = Epic_serve.Store
module Config = Epic.Config
module J = Epic.Profile.Json

let tiny_asm = "_start:\n{ MOV r3, #42 }\n{ HALT }\n"

let sha_wl = P.Src_workload { P.wl_name = "sha"; wl_params = [ ("bytes", 64) ] }

let sample_requests =
  [ P.Compile
      { P.c_config = { Config.default with Config.n_alus = 2 };
        c_source = sha_wl; c_opt = Epic.Toolchain.O0; c_predication = false;
        c_unroll = 2; c_fuel = Some 100000 };
    P.Simulate
      { P.s_config = Config.default; s_asm = tiny_asm; s_fuel = None;
        s_mem_bytes = 4096 };
    P.Fault_campaign
      { P.fc_config = { Config.default with Config.issue_width = 2 };
        fc_source = P.Src_text "int main() { return 7; }"; fc_seed = 3;
        fc_runs = 2; fc_targets = [ Epic.Fault.F_gpr; Epic.Fault.F_mem ];
        fc_fuel_factor = 8 };
    P.Fuzz_batch
      { P.fz_seed = 5; fz_cases = 4; fz_kinds = [ Epic.Difftest.K_enc ];
        fz_shrink = false };
    P.Explore_slice
      { P.ex_source = sha_wl; ex_alus = [ 1; 3 ]; ex_issues = [ 2; 4 ] };
    P.Stats; P.Shutdown ]

(* ---- protocol ----------------------------------------------------- *)

let test_roundtrip () =
  List.iteri
    (fun i op ->
      let r = { P.rq_id = Some i; rq_op = op } in
      match P.request_of_line (P.to_line r) with
      | Ok r' ->
        Alcotest.(check bool)
          (Printf.sprintf "round-trip %s" (P.op_name op))
          true (P.request_equal r r')
      | Error d ->
        Alcotest.failf "%s failed to re-parse: %s" (P.op_name op)
          (Epic.Diag.to_string d))
    sample_requests;
  (* An id-less request survives too. *)
  match P.request_of_line (P.to_line { P.rq_id = None; rq_op = P.Stats }) with
  | Ok r -> Alcotest.(check bool) "no id" true (r.P.rq_id = None)
  | Error _ -> Alcotest.fail "id-less request rejected"

let check_bad name line expected_code =
  match P.request_of_line line with
  | Ok _ -> Alcotest.failf "%s: parsed but should not" name
  | Error d -> Alcotest.(check string) name expected_code d.Epic.Diag.code

let test_malformed () =
  check_bad "not json" "{oops" "serve/parse";
  check_bad "unknown op" {|{"op":"teleport"}|} "serve/op";
  check_bad "missing op" {|{"id":1}|} "serve/request";
  check_bad "unknown field"
    {|{"op":"compile","workload":{"name":"sha"},"volume":11}|} "serve/request";
  check_bad "ill-typed id" {|{"id":"seven","op":"stats"}|} "serve/request";
  check_bad "invalid config"
    {|{"op":"compile","config":{"alus":0},"workload":{"name":"sha"}}|}
    "serve/config";
  check_bad "unknown custom"
    {|{"op":"compile","config":{"custom":["WARP"]},"workload":{"name":"sha"}}|}
    "serve/config";
  check_bad "both sources"
    {|{"op":"compile","source":"int main(){return 0;}","workload":{"name":"sha"}}|}
    "serve/request";
  check_bad "missing asm" {|{"op":"simulate"}|} "serve/request"

(* Errors only detectable at evaluation time come back as ok:false
   responses with structured diagnostics. *)
let test_eval_errors () =
  let t = Server.create ~jobs:1 () in
  let lines =
    [ {|{"id":0,"op":"compile","workload":{"name":"quicksort"}}|};
      {|{"id":1,"op":"simulate","asm":"{ FLY b0 }"}|};
      {|{"id":2,"op":"simulate","asm":"_start:\n{ HALT }\n","mem_bytes":-4}|} ]
  in
  let responses = Server.serve_strings t lines in
  Alcotest.(check int) "three responses" 3 (List.length responses);
  List.iter
    (fun line ->
      match J.parse line with
      | Error e -> Alcotest.failf "unparseable response: %s" e
      | Ok j ->
        Alcotest.(check bool) "ok:false" true
          (J.member "ok" j = Some (J.Bool false));
        (match Option.bind (J.member "error" j) (J.member "code") with
         | Some (J.Str code) ->
           Alcotest.(check bool)
             (Printf.sprintf "code %s is serve/*or asm" code)
             true
             (String.length code > 0)
         | _ -> Alcotest.fail "missing error.code"))
    responses;
  (* The workload error specifically carries the serve/workload code. *)
  match J.parse (List.hd responses) with
  | Ok j ->
    (match Option.bind (J.member "error" j) (J.member "code") with
     | Some (J.Str c) -> Alcotest.(check string) "workload code" "serve/workload" c
     | _ -> Alcotest.fail "missing code")
  | Error e -> Alcotest.failf "unparseable: %s" e

(* ---- determinism across jobs -------------------------------------- *)

let work_batch () =
  let reqs =
    List.mapi
      (fun i op -> { P.rq_id = Some i; rq_op = op })
      (List.filter (fun op -> not (P.is_control op)) sample_requests)
  in
  List.map P.to_line reqs

let test_jobs_invariance () =
  let serve jobs =
    Server.serve_strings (Server.create ~jobs ()) (work_batch ())
  in
  let r1 = serve 1 in
  let r3 = serve 3 in
  let r4 = serve 4 in
  Alcotest.(check (list string)) "jobs 1 = jobs 3" r1 r3;
  Alcotest.(check (list string)) "jobs 1 = jobs 4" r1 r4;
  List.iter
    (fun line ->
      match Option.bind (Result.to_option (J.parse line)) (J.member "ok") with
      | Some (J.Bool true) -> ()
      | _ -> Alcotest.failf "work response not ok: %s" line)
    r1

(* ---- disk persistence across restarts ----------------------------- *)

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "epic_serve_test_%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm dir;
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let test_restart_persistence () =
  with_tmpdir @@ fun dir ->
  let batch = work_batch () in
  let n_cacheable = List.length batch in
  (* First daemon lifetime: all misses, entries written. *)
  let store1 = Store.open_ dir in
  let r1 = Server.serve_strings (Server.create ~jobs:2 ~store:store1 ()) batch in
  let s1 = Store.stats store1 in
  Alcotest.(check int) "first run misses" n_cacheable s1.Store.st_misses;
  Alcotest.(check int) "first run hits" 0 s1.Store.st_hits;
  Alcotest.(check int) "entries on disk" n_cacheable (Store.entries store1);
  (* Second daemon lifetime (a restart): same directory, fresh handles —
     every request is a disk hit and the bytes are identical. *)
  let store2 = Store.open_ dir in
  let r2 = Server.serve_strings (Server.create ~jobs:2 ~store:store2 ()) batch in
  let s2 = Store.stats store2 in
  Alcotest.(check int) "second run hits" n_cacheable s2.Store.st_hits;
  Alcotest.(check int) "second run misses" 0 s2.Store.st_misses;
  Alcotest.(check (float 1e-9)) "hit rate" 1.0 (Store.hit_rate s2);
  Alcotest.(check (list string)) "byte-identical responses" r1 r2

(* ---- store mechanics ---------------------------------------------- *)

let entry_path dir key =
  Filename.concat
    (Filename.concat dir (Printf.sprintf "v%d" Store.format_version))
    (Digest.to_hex (Digest.string key))

let test_store_key_guard () =
  with_tmpdir @@ fun dir ->
  let st = Store.open_ dir in
  Store.add st ~key:"alpha" "payload-a";
  Alcotest.(check (option string)) "hit" (Some "payload-a")
    (Store.find st ~key:"alpha");
  (* A foreign file squatting on a key's digest path reads as a miss,
     not as someone else's payload. *)
  let oc = open_out_bin (entry_path dir "beta") in
  output_string oc "gamma\nstolen";
  close_out oc;
  Alcotest.(check (option string)) "foreign file is a miss" None
    (Store.find st ~key:"beta");
  (* Truncated (empty) entry: also a miss. *)
  let oc = open_out_bin (entry_path dir "delta") in
  close_out oc;
  Alcotest.(check (option string)) "empty file is a miss" None
    (Store.find st ~key:"delta")

let test_store_eviction () =
  with_tmpdir @@ fun dir ->
  let st = Store.open_ ~max_entries:2 dir in
  Store.add st ~key:"one" "1";
  Store.add st ~key:"two" "2";
  Store.add st ~key:"three" "3";
  Alcotest.(check int) "capped" 2 (Store.entries st);
  Alcotest.(check int) "evictions counted" 1 (Store.stats st).Store.st_evictions

let test_store_versioning () =
  with_tmpdir @@ fun dir ->
  let st = Store.open_ dir in
  Store.add st ~key:"k" "v";
  Alcotest.(check int) "one entry" 1 (Store.entries st);
  (* A leftover temporary from a crashed writer is swept on open. *)
  let tmp =
    Filename.concat
      (Filename.concat dir (Printf.sprintf "v%d" Store.format_version))
      ".tmp-999-1"
  in
  let oc = open_out_bin tmp in
  output_string oc "torn";
  close_out oc;
  (* Bumping the format version invalidates the old generation wholesale. *)
  let st2 = Store.open_ ~version:(Store.format_version + 1) dir in
  Alcotest.(check int) "new generation empty" 0 (Store.entries st2);
  Alcotest.(check (option string)) "old entry gone" None (Store.find st2 ~key:"k");
  Alcotest.(check bool) "old generation removed" false
    (Sys.file_exists
       (Filename.concat dir (Printf.sprintf "v%d" Store.format_version)));
  (* Re-opening the original version again: the sweep removed it, so the
     store is empty but usable. *)
  let st3 = Store.open_ dir in
  Alcotest.(check bool) "tmp swept" false (Sys.file_exists tmp);
  Alcotest.(check (option string)) "fresh generation" None
    (Store.find st3 ~key:"k")

(* ---- memo-cache observation API ----------------------------------- *)

let test_cache_snapshot_reset () =
  let c = Epic.Exec.Cache.create ~name:"t" () in
  ignore (Epic.Exec.Cache.find_or_add c "k" (fun () -> 1));
  ignore (Epic.Exec.Cache.find_or_add c "k" (fun () -> 2));
  let s = Epic.Exec.Cache.snapshot c in
  Alcotest.(check int) "one miss" 1 s.Epic.Exec.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Epic.Exec.Cache.hits;
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Epic.Exec.Cache.hit_rate s);
  Epic.Exec.Cache.reset_stats c;
  let s0 = Epic.Exec.Cache.snapshot c in
  Alcotest.(check int) "counters zeroed" 0
    (s0.Epic.Exec.Cache.hits + s0.Epic.Exec.Cache.misses);
  (* Entries survive a counter reset: the next lookup is a pure hit. *)
  Alcotest.(check int) "entry kept" 1
    (Epic.Exec.Cache.find_or_add c "k" (fun () -> 3));
  let s1 = Epic.Exec.Cache.snapshot c in
  Alcotest.(check int) "hit after reset" 1 s1.Epic.Exec.Cache.hits;
  Alcotest.(check int) "no miss after reset" 0 s1.Epic.Exec.Cache.misses

let suite =
  [ Alcotest.test_case "protocol round-trip" `Quick test_roundtrip;
    Alcotest.test_case "malformed requests" `Quick test_malformed;
    Alcotest.test_case "evaluation errors" `Quick test_eval_errors;
    Alcotest.test_case "jobs invariance" `Quick test_jobs_invariance;
    Alcotest.test_case "restart persistence" `Quick test_restart_persistence;
    Alcotest.test_case "store key guard" `Quick test_store_key_guard;
    Alcotest.test_case "store eviction" `Quick test_store_eviction;
    Alcotest.test_case "store versioning" `Quick test_store_versioning;
    Alcotest.test_case "cache snapshot/reset" `Quick test_cache_snapshot_reset ]
