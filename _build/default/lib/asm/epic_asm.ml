(** Assembler for the customisable EPIC processor (paper Section 4.2).

    - {!Aunit}: symbolic assembly units (labels + issue bundles), label
      resolution to bundle addresses, NOP padding to the configured issue
      width, validation against the configuration header, and encoding.
    - {!Text}: the concrete assembly syntax (parser and printer),
      including directive filtering.

    Like the paper's assembler, retargeting needs no recompilation: every
    width, register count and the custom-operation set come from the
    {!Epic_config.t} value (the "configuration header file"). *)

module Aunit = Aunit
module Text = Text

exception Asm_error = Aunit.Asm_error

let assemble = Aunit.assemble

(** Assemble from source text. *)
let assemble_text cfg text = Aunit.assemble cfg (Text.of_string text)
