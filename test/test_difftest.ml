(* The differential fuzzer: regression tests for divergences it found
   (each is a shrunk failing case committed with the fix), plus qcheck
   properties running the cross-engine oracles directly. *)

module D = Epic.Difftest
module Ir = Epic.Ir
module Interp = Epic.Interp
module Memmap = Epic.Memmap
module Config = Epic.Config
module Sim = Epic.Sim
module Sched = Epic.Sched.Sched
module Mdes = Epic.Mdes

let ng = Ir.no_guard

let mk_main ?(globals = []) ?(nvregs = 8) ?(npregs = 3) blocks =
  { Ir.p_globals = globals;
    p_funcs =
      [ { Ir.f_name = "main"; f_params = []; f_nvregs = nvregs;
          f_npregs = npregs; f_frame_bytes = 16; f_blocks = blocks } ] }

(* The narrow 45-bit instruction format: 10-bit immediate payload. *)
let narrow =
  let cfg = { (D.narrow_fields Config.default) with Config.issue_width = 2 } in
  (match Config.validate cfg with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "narrow test configuration is invalid");
  cfg

let compile_and_run cfg ~scheduling p =
  let image, layout, entry, compiled, violations =
    D.compile_mir cfg ~scheduling p
  in
  Alcotest.(check (list string)) "schedule contract" [] violations;
  let mem = Memmap.init_memory layout compiled in
  Sim.run ~fuel:2_000_000 cfg ~image ~mem ~entry ()

(* Compile and run [p] under [cfg] with scheduling on and off; both runs
   must finish untrapped and agree with the reference interpreter. *)
let check_against_interp ?(cfgs = [ Config.default; narrow ]) p =
  let reference = Interp.run ~fuel:2_000_000 p ~entry:"main" in
  List.iter
    (fun cfg ->
      List.iter
        (fun scheduling ->
          let r = compile_and_run cfg ~scheduling p in
          (match r.Sim.trap with
           | Some t -> Alcotest.failf "trapped: %a" Sim.pp_trap t
           | None -> ());
          Alcotest.(check int) "return value" reference.Interp.ret r.Sim.ret)
        [ true; false ])
    cfgs;
  reference.Interp.ret

(* Regression (fuzzer case, shrunk): [emit_const] chunked large constants
   in hard-coded 13-bit pieces, so under a narrow immediate payload the
   intermediate literals themselves exceeded the field and the assembler
   rejected the program.  Chunking now tracks the configured payload. *)
let test_narrow_large_const () =
  List.iter
    (fun v ->
      let p =
        mk_main [ { Ir.b_id = 0; b_insts = []; b_term = Ir.Ret (Some (Ir.Imm v)) } ]
      in
      ignore (check_against_interp p))
    [ 2740; -2073; 123456; 0x12345678; -0x7ffffff ]

(* Regression (fuzzer case, shrunk): a predicate set in one block and
   used as a guard in another was rejected with "guard predicate used
   before its setp" because predicate pairs were allocated per block.
   Cross-block predicates are now pinned to function-wide pairs. *)
let test_cross_block_predicate () =
  let guard q pos = Some { Ir.g_reg = q; g_pos = pos } in
  let p =
    mk_main
      [ { Ir.b_id = 0;
          b_insts =
            [ ng (Ir.Mov (0, Ir.Imm 5));
              ng (Ir.Setp (Ir.Rlt, 1, Ir.Imm 1, Ir.Imm 2));
              ng (Ir.Setp (Ir.Rlt, 2, Ir.Imm 2, Ir.Imm 1)) ];
          b_term = Ir.Jmp 1 };
        { Ir.b_id = 1;
          b_insts =
            [ { Ir.kind = Ir.Mov (0, Ir.Imm 7); guard = guard 1 true };
              { Ir.kind = Ir.Mov (0, Ir.Imm 9); guard = guard 2 true } ];
          b_term = Ir.Ret (Some (Ir.Reg 0)) } ]
  in
  Alcotest.(check int) "true guard fires, false guard does not" 7
    (check_against_interp p)

(* A predicate that is live around a loop back edge: guard use precedes
   the (re-)defining setp inside the loop body, so the value flows in
   from the previous iteration. *)
let test_loop_carried_predicate () =
  let p =
    mk_main
      [ { Ir.b_id = 0;
          b_insts =
            [ ng (Ir.Mov (0, Ir.Imm 0));
              ng (Ir.Mov (1, Ir.Imm 0));
              ng (Ir.Setp (Ir.Req, 1, Ir.Imm 0, Ir.Imm 0)) ];
          b_term = Ir.Jmp 1 };
        { Ir.b_id = 1;
          b_insts =
            [ { Ir.kind = Ir.Bin (Ir.Add, 0, Ir.Reg 0, Ir.Imm 2);
                guard = Some { Ir.g_reg = 1; g_pos = true } };
              ng (Ir.Setp (Ir.Req, 1, Ir.Imm 1, Ir.Imm 0));
              ng (Ir.Bin (Ir.Add, 1, Ir.Reg 1, Ir.Imm 1)) ];
          b_term = Ir.Br (Ir.Rlt, Ir.Reg 1, Ir.Imm 3, 1, 2) };
        { Ir.b_id = 2; b_insts = []; b_term = Ir.Ret (Some (Ir.Reg 0)) } ]
  in
  Alcotest.(check int) "guard true on first iteration only" 2
    (check_against_interp p)

(* Regression (fuzzer case, shrunk): a branch comparing two literals that
   both exceed the narrow payload ran out of scratch registers (the Br
   site has exactly one).  Two-immediate operations with an out-of-range
   literal are now constant-folded; same for setp and plain ALU ops. *)
let test_two_immediate_fold () =
  let p =
    mk_main
      [ { Ir.b_id = 0;
          b_insts =
            [ ng (Ir.Mov (0, Ir.Imm 1));
              ng (Ir.Setp (Ir.Rle, 1, Ir.Imm (-3501), Ir.Imm 2777));
              { Ir.kind = Ir.Mov (0, Ir.Imm 9);
                guard = Some { Ir.g_reg = 1; g_pos = true } };
              ng (Ir.Bin (Ir.Xor, 2, Ir.Imm (-2846), Ir.Imm (-2613)));
              ng (Ir.Bin (Ir.Add, 0, Ir.Reg 0, Ir.Reg 2)) ];
          b_term = Ir.Br (Ir.Rgt, Ir.Imm 3561, Ir.Imm (-1801), 1, 2) };
        { Ir.b_id = 1; b_insts = []; b_term = Ir.Ret (Some (Ir.Reg 0)) };
        { Ir.b_id = 2; b_insts = []; b_term = Ir.Ret (Some (Ir.Imm 0)) } ]
  in
  ignore (check_against_interp p)

(* Two large-immediate division: divisor in range must not fold away the
   div-by-zero path, and a folded division must agree with the datapath. *)
let test_two_immediate_div () =
  let p =
    mk_main
      [ { Ir.b_id = 0;
          b_insts = [ ng (Ir.Bin (Ir.Div, 0, Ir.Imm (-123456), Ir.Imm 1000)) ];
          b_term = Ir.Ret (Some (Ir.Reg 0)) } ]
  in
  Alcotest.(check int) "folded signed division"
    (check_against_interp p)
    ((-123456) / 1000 land 0xFFFFFFFF)

(* The campaign is deterministic and jobs-invariant: the same seed gives
   the same findings (none) for any worker count. *)
let test_fuzz_jobs_invariant () =
  let r1 = D.fuzz ~jobs:1 ~seed:5 ~cases:24 () in
  let r2 = D.fuzz ~jobs:2 ~seed:5 ~cases:24 () in
  Alcotest.(check int) "no findings" 0 (List.length r1.D.r_findings);
  Alcotest.(check bool) "jobs-invariant findings" true
    (r1.D.r_findings = r2.D.r_findings)

(* ---- properties ---------------------------------------------------- *)

(* Encode -> decode -> re-encode under random field-width configurations:
   the enc oracle itself must find nothing, whatever the seed. *)
let prop_enc_oracle =
  QCheck.Test.make ~name:"enc oracle finds nothing" ~count:150
    QCheck.small_nat (fun n ->
      D.check_enc ~case:n (D.Rng.create (D.Rng.case_seed ~seed:17 ~index:n)) = [])

(* Random MIR programs through the full backend under the sampled grid:
   scheduling on and off must agree with the interpreter, and every
   emitted schedule must pass the contract checker. *)
let prop_mir_oracle =
  QCheck.Test.make ~name:"mir oracle finds nothing" ~count:40
    QCheck.small_nat (fun n ->
      let rng = D.Rng.create (D.Rng.case_seed ~seed:23 ~index:n) in
      D.check_mir ~case:n ~repro:"" (D.gen_mir_program rng) = [])

(* Random legal assembly bundles under timing variations and the
   decode round trip. *)
let prop_asm_oracle =
  QCheck.Test.make ~name:"asm oracle finds nothing" ~count:40
    QCheck.small_nat (fun n ->
      let rng = D.Rng.create (D.Rng.case_seed ~seed:29 ~index:n) in
      let cfg, u = D.gen_asm_case rng in
      D.check_asm ~case:n ~repro:"" cfg u = [])

(* schedule_block is exactly the cycle map with empty cycles dropped, and
   the cycle map honours the machine-description contract. *)
let prop_schedule_contract =
  QCheck.Test.make ~name:"schedule_block passes the mdes contract" ~count:100
    QCheck.small_nat (fun n ->
      let rng = D.Rng.create (D.Rng.case_seed ~seed:31 ~index:n) in
      let cfg = Config.default in
      let md = Mdes.of_config cfg in
      let module A = Epic.Asm.Aunit in
      let ops =
        [| Epic.Isa.ADD; Epic.Isa.SUB; Epic.Isa.MPY; Epic.Isa.AND;
           Epic.Isa.OR; Epic.Isa.XOR; Epic.Isa.SHL; Epic.Isa.MOV;
           Epic.Isa.LDU Epic.Isa.M_word; Epic.Isa.ST Epic.Isa.M_word;
           Epic.Isa.CMPP Epic.Isa.C_lt |]
      in
      let reg () = 1 + D.Rng.int rng 15 in
      let src () =
        if D.Rng.bool rng then A.Reg (reg ())
        else A.Imm (D.Rng.range rng (-100) 100)
      in
      let insts =
        List.init (1 + D.Rng.int rng 10) (fun _ ->
            A.simple ops.(D.Rng.int rng (Array.length ops)) ~d1:(reg ())
              ~s1:(src ()) ~s2:(src ()) ())
      in
      let cycles = Sched.schedule_block_cycles md insts in
      Sched.schedule_block md insts
        = (Array.to_list cycles |> List.filter (fun b -> b <> []))
      && D.Contract.check md ~original:insts cycles = [])

let suite =
  [
    Alcotest.test_case "narrow payload: large constants" `Quick test_narrow_large_const;
    Alcotest.test_case "cross-block predicate" `Quick test_cross_block_predicate;
    Alcotest.test_case "loop-carried predicate" `Quick test_loop_carried_predicate;
    Alcotest.test_case "two-immediate fold" `Quick test_two_immediate_fold;
    Alcotest.test_case "two-immediate division" `Quick test_two_immediate_div;
    Alcotest.test_case "fuzz campaign jobs-invariant" `Quick test_fuzz_jobs_invariant;
    QCheck_alcotest.to_alcotest prop_enc_oracle;
    QCheck_alcotest.to_alcotest prop_mir_oracle;
    QCheck_alcotest.to_alcotest prop_asm_oracle;
    QCheck_alcotest.to_alcotest prop_schedule_contract;
  ]
