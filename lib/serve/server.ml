(* The epicd serving core: a batching request loop over the Epic_exec
   domain pool, fronted by the persistent disk cache.

   Requests are read line by line.  Work requests accumulate in a batch
   while more input is immediately available (or until the batch cap);
   the batch then fans out across the pool and the responses are emitted
   in request order — so the response stream is byte-identical for every
   jobs value, exactly like the campaign CLIs.  Control requests (stats,
   shutdown) act as barriers: they flush the pending batch, then answer
   sequentially.

   Work results are served through {!Store.find_or_add} when a disk
   cache is attached: the cache key is {!Protocol.cache_key}, the cached
   value is the serialised result payload, and a hit splices those bytes
   verbatim into the response.  An in-memory {!Epic.Toolchain.Compile_cache}
   additionally deduplicates compiles inside one process (including
   between concurrent jobs of one batch). *)

module J = Epic.Profile.Json
module P = Protocol
module Diag = Epic.Diag

type t = {
  jobs : int;
  batch_max : int;
  store : Store.t option;
  cache : Epic.Toolchain.Compile_cache.t;
  pre_cache : Epic.Sim.Predecode.t Epic.Exec.Cache.t;
      (* raw-asm simulate requests: config fingerprint x image digest ->
         predecode (compile-based ops reuse the one in the artifacts) *)
  sim_rate : Epic.Experiments.sim_rate Lazy.t;
      (* host throughput probe: ~0.25s, forced on the first stats
         request (the control path is sequential, so forcing is safe) *)
  t_start : float;
  mutable n_ok : int;
  mutable n_err : int;
  mutable n_disk_served : int;      (* ok responses spliced from disk *)
  mutable op_counts : (string * int) list;
  mutable lat_ms : float list;      (* per work request, service+wait *)
  mutable q_max : int;              (* deepest batch seen *)
  mutable batches : int;
}

let create ?(jobs = Epic.Exec.default_jobs ()) ?(batch_max = 64) ?store () =
  if jobs < 1 then invalid_arg "Epic_serve.Server.create: jobs must be >= 1";
  if batch_max < 1 then
    invalid_arg "Epic_serve.Server.create: batch_max must be >= 1";
  { jobs; batch_max; store; cache = Epic.Toolchain.Compile_cache.create ();
    pre_cache = Epic.Exec.Cache.create ~name:"predecode" ();
    sim_rate = lazy (Epic.Experiments.sim_rate ());
    t_start = Epic.Exec.now (); n_ok = 0; n_err = 0; n_disk_served = 0;
    op_counts = []; lat_ms = []; q_max = 0; batches = 0 }

let store t = t.store

(* ------------------------------------------------------------------ *)
(* Result payload builders: deterministic functions of the request —
   never include wall time, cache state or anything machine-dependent,
   so the serialised payload is cacheable and replays byte-identically. *)

let json_of_trap = function
  | None -> J.Null
  | Some (tr : Epic.Sim.trap) ->
    J.Str (Epic.Sim.string_of_trap_cause tr.Epic.Sim.tr_cause)

let entry_of (image : Epic.Asm.Aunit.image) =
  match List.assoc_opt "_start" image.Epic.Asm.Aunit.im_symbols with
  | Some e -> e
  | None -> 0

let compile_result t (c : P.compile_req) =
  let source = P.resolve_source c.P.c_source in
  let a =
    Epic.Toolchain.compile_epic ~opt:c.P.c_opt ~predication:c.P.c_predication
      ~unroll:c.P.c_unroll ~cache:t.cache c.P.c_config ~source ()
  in
  let r = Epic.Toolchain.run_epic ?fuel:c.P.c_fuel a in
  let area = Epic.Area.estimate c.P.c_config in
  J.Obj
    [ ("ret", J.Int r.Epic.Sim.ret);
      ("trap", json_of_trap r.Epic.Sim.trap);
      ("stats", Epic.Profile.stats_to_json r.Epic.Sim.stats);
      ( "sched",
        J.Obj
          [ ("blocks", J.Int a.Epic.Toolchain.ea_sched.Epic.Sched.Sched.st_blocks);
            ("insts", J.Int a.Epic.Toolchain.ea_sched.Epic.Sched.Sched.st_insts);
            ("bundles", J.Int a.Epic.Toolchain.ea_sched.Epic.Sched.Sched.st_bundles)
          ] );
      ("slices", J.Int area.Epic.Area.slices);
      ("clock_mhz", J.Float area.Epic.Area.clock_mhz) ]

let simulate_result t (s : P.simulate_req) =
  if s.P.s_mem_bytes <= 0 then
    Diag.raisef ~code:"serve/request" "simulate: mem_bytes must be positive";
  let image, _words = Epic.Asm.assemble_text s.P.s_config s.P.s_asm in
  (* One predecode per (config x instruction stream), shared across the
     whole batch stream — a re-submitted scenario skips decode entirely. *)
  let key =
    Epic.Config.fingerprint s.P.s_config ^ "|"
    ^ Epic.Sim.Predecode.image_digest image
  in
  let pre =
    Epic.Exec.Cache.find_or_add t.pre_cache key (fun () ->
        Epic.Sim.Predecode.of_image s.P.s_config image)
  in
  let mem = Bytes.make s.P.s_mem_bytes '\000' in
  let r =
    Epic.Sim.run ?fuel:s.P.s_fuel ~pre s.P.s_config ~image ~mem
      ~entry:(entry_of image) ()
  in
  J.Obj
    [ ("ret", J.Int r.Epic.Sim.ret);
      ("trap", json_of_trap r.Epic.Sim.trap);
      ("stats", Epic.Profile.stats_to_json r.Epic.Sim.stats) ]

let fault_result t (f : P.fault_req) =
  let source = P.resolve_source f.P.fc_source in
  let a =
    Epic.Toolchain.compile_epic ~cache:t.cache f.P.fc_config ~source ()
  in
  let rp =
    Epic.Toolchain.fault_campaign ~seed:f.P.fc_seed ~runs:f.P.fc_runs
      ~targets:f.P.fc_targets ~fuel_factor:f.P.fc_fuel_factor a
  in
  Epic.Fault.report_to_json rp

let fuzz_result (f : P.fuzz_req) =
  let r =
    Epic.Difftest.fuzz ~jobs:1 ~shrink:f.P.fz_shrink ~kinds:f.P.fz_kinds
      ~seed:f.P.fz_seed ~cases:f.P.fz_cases ()
  in
  J.Obj
    [ ("cases", J.Int r.Epic.Difftest.r_cases);
      ("mir", J.Int r.Epic.Difftest.r_mir);
      ("asm", J.Int r.Epic.Difftest.r_asm);
      ("enc", J.Int r.Epic.Difftest.r_enc);
      ( "findings",
        J.List
          (List.map
             (fun (f : Epic.Difftest.finding) ->
               J.Obj
                 [ ("case", J.Int f.Epic.Difftest.f_case);
                   ( "kind",
                     J.Str (Epic.Difftest.string_of_kind f.Epic.Difftest.f_kind)
                   );
                   ("class", J.Str f.Epic.Difftest.f_class);
                   ("engine", J.Str f.Epic.Difftest.f_engine);
                   ("detail", J.Str f.Epic.Difftest.f_detail) ])
             r.Epic.Difftest.r_findings) ) ]

let explore_result t (e : P.explore_req) =
  let source = P.resolve_source e.P.ex_source in
  let points =
    List.concat_map
      (fun issue ->
        List.map
          (fun alus ->
            let cfg =
              { Epic.Config.default with Epic.Config.n_alus = alus;
                issue_width = issue }
            in
            match Epic.Config.validate cfg with
            | Error ds ->
              J.Obj
                [ ("alus", J.Int alus); ("issue", J.Int issue);
                  ("invalid", J.Str (Diag.to_string_list ds)) ]
            | Ok () ->
              let a = Epic.Toolchain.compile_epic ~cache:t.cache cfg ~source () in
              let r = Epic.Toolchain.run_epic a in
              let area = Epic.Area.estimate cfg in
              let cycles = r.Epic.Sim.stats.Epic.Sim.cycles in
              J.Obj
                [ ("alus", J.Int alus); ("issue", J.Int issue);
                  ("cycles", J.Int cycles);
                  ("slices", J.Int area.Epic.Area.slices);
                  ("brams", J.Int area.Epic.Area.brams);
                  ("clock_mhz", J.Float area.Epic.Area.clock_mhz);
                  ( "millis",
                    J.Float
                      (float_of_int cycles /. (area.Epic.Area.clock_mhz *. 1e3))
                  ) ])
          e.P.ex_alus)
      e.P.ex_issues
  in
  J.Obj [ ("points", J.List points) ]

let work_payload t (op : P.op) =
  let j =
    match op with
    | P.Compile c -> compile_result t c
    | P.Simulate s -> simulate_result t s
    | P.Fault_campaign f -> fault_result t f
    | P.Fuzz_batch f -> fuzz_result f
    | P.Explore_slice e -> explore_result t e
    | P.Stats | P.Shutdown -> assert false
  in
  J.to_string j

(* Every toolchain failure a bad request can provoke, rendered as a
   structured diagnostic for the error response.  The catch-all matters:
   a long-running daemon answers what it cannot serve; it never dies on
   one request. *)
let diag_of_exn = function
  | Diag.Error d -> Some d
  | Epic.Asm.Asm_error d | Epic.Encoding.Encode_error d | Epic.Sim.Sim_error d ->
    Some d
  | Epic.Cfront.Error m -> Some (Diag.v ~code:"serve/compile" m)
  | Epic.Opt.Pipeline.Error m -> Some (Diag.v ~code:"serve/pipeline" m)
  | Epic.Sched.Codegen.Codegen_error m -> Some (Diag.v ~code:"serve/codegen" m)
  | Failure m -> Some (Diag.v ~code:"serve/failure" m)
  | Invalid_argument m -> Some (Diag.v ~code:"serve/invalid" m)
  | P.Bad d -> Some d
  | (Stack_overflow | Out_of_memory | Assert_failure _) as e -> raise e
  | e -> Some (Diag.v ~code:"serve/op" (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Batch evaluation *)

type queued = {
  qu_line_no : int;                           (* for unparseable requests *)
  qu_req : (P.request, Diag.t) result;
  qu_enq : float;
}

type evaluated = {
  ev_line : string;   (* complete response line *)
  ev_op : string;
  ev_ok : bool;
  ev_disk : bool;
  ev_ms : float;
}

let eval t (q : queued) : evaluated =
  let finish ~op ~ok ~disk line =
    { ev_line = line; ev_op = op; ev_ok = ok; ev_disk = disk;
      ev_ms = (Epic.Exec.now () -. q.qu_enq) *. 1e3 }
  in
  match q.qu_req with
  | Error d ->
    finish ~op:"invalid" ~ok:false ~disk:false (P.error_response ~id:None d)
  | Ok { P.rq_id = id; rq_op = op } ->
    let opn = P.op_name op in
    (match
       match (t.store, P.cache_key op) with
       | Some st, Some key -> Store.find_or_add st ~key (fun () -> work_payload t op)
       | _ -> (work_payload t op, false)
     with
     | payload, disk ->
       finish ~op:opn ~ok:true ~disk (P.ok_response ~id ~result:payload)
     | exception e ->
       (match diag_of_exn e with
        | Some d -> finish ~op:opn ~ok:false ~disk:false (P.error_response ~id d)
        | None -> raise e))

let bump t op =
  t.op_counts <-
    (match List.assoc_opt op t.op_counts with
     | None -> (op, 1) :: t.op_counts
     | Some n -> (op, n + 1) :: List.remove_assoc op t.op_counts)

let record t (e : evaluated) =
  if e.ev_ok then t.n_ok <- t.n_ok + 1 else t.n_err <- t.n_err + 1;
  if e.ev_disk then t.n_disk_served <- t.n_disk_served + 1;
  bump t e.ev_op;
  t.lat_ms <- e.ev_ms :: t.lat_ms

let flush_batch t emit = function
  | [] -> ()
  | queue ->
    let arr = Array.of_list (List.rev queue) in
    let n = Array.length arr in
    t.q_max <- max t.q_max n;
    t.batches <- t.batches + 1;
    let results =
      Epic.Exec.Pool.run ~jobs:t.jobs n (fun i -> eval t arr.(i))
    in
    Array.iter
      (fun e ->
        record t e;
        emit e.ev_line)
      results

(* ------------------------------------------------------------------ *)
(* Statistics *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1))

let latency_json t =
  let sorted = Array.of_list t.lat_ms in
  Array.sort compare sorted;
  J.Obj
    [ ("count", J.Int (Array.length sorted));
      ("p50_ms", J.Float (percentile sorted 50.));
      ("p95_ms", J.Float (percentile sorted 95.));
      ("p99_ms", J.Float (percentile sorted 99.));
      ("max_ms", J.Float (if Array.length sorted = 0 then 0. else sorted.(Array.length sorted - 1))) ]

let stats_json t =
  J.Obj
    [ ("uptime_s", J.Float (Epic.Exec.now () -. t.t_start));
      ("jobs", J.Int t.jobs);
      ("served", J.Int (t.n_ok + t.n_err));
      ("ok", J.Int t.n_ok);
      ("errors", J.Int t.n_err);
      ("ops", J.Obj (List.rev_map (fun (k, n) -> (k, J.Int n)) t.op_counts));
      ("latency", latency_json t);
      ("batches", J.Int t.batches);
      ("queue_depth_max", J.Int t.q_max);
      ("disk_served", J.Int t.n_disk_served);
      ( "sim_rate",
        Epic.Experiments.sim_rate_to_json (Lazy.force t.sim_rate) );
      ( "predecode_cache",
        Epic.Exec.Cache.stats_to_json (Epic.Exec.Cache.stats t.pre_cache) );
      ( "disk_cache",
        match t.store with None -> J.Null | Some st -> Store.stats_to_json st );
      ( "compile_cache",
        J.Obj
          (List.map
             (fun (name, s) -> (name, Epic.Exec.Cache.stats_to_json s))
             (Epic.Toolchain.Compile_cache.stats t.cache)) ) ]

let summary_json = stats_json

(* ------------------------------------------------------------------ *)
(* Serve loop over an abstract line transport *)

type io = {
  next_line : unit -> string option;  (* blocking; None = end of input *)
  pending : unit -> bool;     (* more input available without blocking? *)
  emit : string -> unit;              (* send one response line *)
}

type stop = Eof | Shutdown_requested

let serve t io : stop =
  let emit line = io.emit line in
  let rec loop queue depth =
    match io.next_line () with
    | None ->
      flush_batch t emit queue;
      Eof
    | Some line ->
      let enq = Epic.Exec.now () in
      let req = P.request_of_line line in
      (match req with
       | Ok { P.rq_id = id; rq_op = P.Stats } ->
         flush_batch t emit queue;
         bump t "stats";
         emit (P.ok_response ~id ~result:(J.to_string (stats_json t)));
         loop [] 0
       | Ok { P.rq_id = id; rq_op = P.Shutdown } ->
         flush_batch t emit queue;
         bump t "shutdown";
         emit (P.ok_response ~id ~result:(J.to_string (summary_json t)));
         Shutdown_requested
       | _ ->
         let queue = { qu_line_no = depth; qu_req = req; qu_enq = enq } :: queue in
         let depth = depth + 1 in
         if depth >= t.batch_max || not (io.pending ()) then begin
           flush_batch t emit queue;
           loop [] 0
         end
         else loop queue depth)
  in
  loop [] 0

(* In-memory transport: the whole request list is one pending stream, so
   batching (up to [batch_max]) and control barriers behave exactly as
   they do on a pipe under load.  Used by the tests and epicload's
   in-process mode. *)
let serve_strings t lines =
  let rem = ref lines in
  let out = ref [] in
  let io =
    { next_line =
        (fun () ->
          match !rem with [] -> None | x :: r -> rem := r; Some x);
      pending = (fun () -> !rem <> []);
      emit = (fun s -> out := s :: !out) }
  in
  ignore (serve t io);
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Pipe / socket transports.

   The reader works on the raw file descriptor with its own buffer, so
   "is more input pending?" is answerable: a buffered newline, or the
   descriptor selecting readable.  (A stdlib in_channel would read
   ahead invisibly and defeat the batching heuristic.) *)

module Line_reader = struct
  type r = {
    fd : Unix.file_descr;
    chunk : Bytes.t;
    mutable buf : Buffer.t;
    mutable eof : bool;
  }

  let create fd = { fd; chunk = Bytes.create 65536; buf = Buffer.create 65536; eof = false }

  let refill r =
    match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
    | 0 -> r.eof <- true
    | n -> Buffer.add_subbytes r.buf r.chunk 0 n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

  let take_line r =
    let s = Buffer.contents r.buf in
    match String.index_opt s '\n' with
    | Some i ->
      let line = String.sub s 0 i in
      r.buf <- Buffer.create 65536;
      Buffer.add_string r.buf (String.sub s (i + 1) (String.length s - i - 1));
      let line =
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Some line
    | None -> None

  let rec next_line r =
    match take_line r with
    | Some line -> Some line
    | None ->
      if r.eof then
        if Buffer.length r.buf > 0 then begin
          let line = Buffer.contents r.buf in
          Buffer.clear r.buf;
          Some line
        end
        else None
      else begin
        refill r;
        next_line r
      end

  (* A complete buffered line, or bytes already readable on the fd:
     either way the serve loop should keep queueing before it flushes. *)
  let pending r =
    (not r.eof)
    && (String.contains (Buffer.contents r.buf) '\n'
        ||
        match Unix.select [ r.fd ] [] [] 0.0 with
        | [ _ ], _, _ -> true
        | _ -> false
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false)
end

let io_of_fd in_fd oc =
  let r = Line_reader.create in_fd in
  { next_line = (fun () -> Line_reader.next_line r);
    pending = (fun () -> Line_reader.pending r);
    emit =
      (fun s ->
        output_string oc s;
        output_char oc '\n';
        flush oc) }

let run_pipe t ~in_fd ~out : stop = serve t (io_of_fd in_fd out)

(* Unix-socket mode: connections are accepted one at a time; the
   requests of a connection fan out over the pool exactly as in pipe
   mode.  A shutdown request stops the daemon after answering. *)
let run_socket t ~path : stop =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  let rec accept_loop () =
    let conn, _ = Unix.accept sock in
    let oc = Unix.out_channel_of_descr conn in
    let stop = try serve t (io_of_fd conn oc) with e -> Unix.close conn; raise e in
    (try flush oc with Sys_error _ -> ());
    (try Unix.close conn with Unix.Unix_error (_, _, _) -> ());
    match stop with Eof -> accept_loop () | Shutdown_requested -> Shutdown_requested
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error (_, _, _) -> ());
      try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
    accept_loop
