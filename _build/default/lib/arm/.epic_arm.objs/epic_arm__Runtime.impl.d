lib/arm/runtime.ml: Epic_cfront Epic_mir List
