(* End-to-end drivers: C source -> optimised MIR -> (EPIC backend ->
   schedule -> assemble -> cycle simulation) and (ARM backend -> SA-110
   cycle simulation).  This is the narrow waist the executables, the
   examples and the experiment harness all share. *)

module Config = Epic_config
module Cfront = Epic_cfront
module Ir = Epic_mir.Ir
module Memmap = Epic_mir.Memmap
module Opt = Epic_opt
module Sched = Epic_sched
module Asm = Epic_asm
module Sim = Epic_sim
module Arm = Epic_arm

type epic_artifacts = {
  ea_config : Config.t;
  ea_mir : Ir.program;          (* after optimisation *)
  ea_layout : Memmap.t;
  ea_unit : Asm.Aunit.t;        (* scheduled symbolic assembly *)
  ea_image : Asm.Aunit.image;   (* resolved instruction stream *)
  ea_words : int64 array;       (* encoded binary *)
  ea_sched : Sched.Sched.stats;
}

type opt_level = O0 | O1  (** O1 = the full machine-independent pipeline. *)

(* Loop unrolling is available (A8 ablation, [?unroll] below) but off by
   default: on these workloads the hand-unrolled kernels already expose
   the ILP, fully flattening the outer loops mostly bloats code (and
   super-linear compile time on the giant blocks), and it slightly hurts
   the DCT through worse I-side behaviour. *)
let default_unroll = 1

let compile_epic ?(opt = O1) ?(predication = true) ?(unroll = default_unroll)
    ?mem_bytes (cfg : Config.t) ~source () =
  let cfg = Config.validate_exn cfg in
  let mir = Cfront.compile ~unroll source in
  let mir =
    match opt with
    | O0 -> Opt.none mir
    | O1 -> Opt.for_epic ~predication mir
  in
  let layout = Memmap.layout ?mem_bytes mir in
  let unit_, sched = Sched.compile_program cfg layout mir in
  let image, words = Asm.assemble cfg unit_ in
  { ea_config = cfg; ea_mir = mir; ea_layout = layout; ea_unit = unit_;
    ea_image = image; ea_words = words; ea_sched = sched }

let run_epic ?fuel ?trace ?profile (a : epic_artifacts) =
  let mem = Memmap.init_memory a.ea_layout a.ea_mir in
  let entry =
    match List.assoc_opt "_start" a.ea_image.Asm.Aunit.im_symbols with
    | Some e -> e
    | None -> 0
  in
  let sink = Option.map Epic_profile.sink profile in
  Sim.run ?fuel ?trace ?sink a.ea_config ~image:a.ea_image ~mem ~entry ()

(* Profiled run: attach a fresh recorder and return it with the result. *)
let profile_epic ?fuel ?keep_events (a : epic_artifacts) =
  let profile = Epic_profile.create ?keep_events a.ea_config a.ea_image in
  let r = run_epic ?fuel ~profile a in
  (r, profile)

type arm_artifacts = {
  aa_mir : Ir.program;          (* optimised, runtime linked *)
  aa_layout : Memmap.t;
  aa_prog : Arm.Isa.program;
}

let compile_arm ?(opt = O1) ?(unroll = default_unroll) ?mem_bytes ~source () =
  let mir = Cfront.compile ~unroll source in
  let mir = match opt with O0 -> Opt.none mir | O1 -> Opt.standard mir in
  let prog, layout, linked = Arm.compile_program ?mem_bytes mir in
  { aa_mir = linked; aa_layout = layout; aa_prog = prog }

let run_arm ?fuel (a : arm_artifacts) =
  let mem = Memmap.init_memory a.aa_layout a.aa_mir in
  Arm.Sim.run ?fuel a.aa_prog ~mem ()

(* Convenience wrappers used throughout the tests and examples. *)

let epic_cycles ?opt ?predication ?unroll (cfg : Config.t) ~source ~expected () =
  let a = compile_epic ?opt ?predication ?unroll cfg ~source () in
  let r = run_epic a in
  if r.Sim.ret <> expected land 0xFFFFFFFF then
    failwith
      (Printf.sprintf "EPIC run returned %#x, expected %#x" r.Sim.ret
         (expected land 0xFFFFFFFF));
  r.Sim.stats

let arm_cycles ?opt ?unroll ~source ~expected () =
  let a = compile_arm ?opt ?unroll ~source () in
  let r = run_arm a in
  if r.Arm.Sim.ret <> expected land 0xFFFFFFFF then
    failwith
      (Printf.sprintf "ARM run returned %#x, expected %#x" r.Arm.Sim.ret
         (expected land 0xFFFFFFFF));
  r.Arm.Sim.stats
