(* Textual assembly syntax.  One bundle per line inside braces, operations
   separated by ';'; labels end with ':'; lines starting with '.' are
   directives (the paper's assembler filters Trimaran simulator
   directives; ours are kept in the unit but ignored by resolution).

     ; comment
     .trimaran sim_trace on     ; filtered directive
     main:
     { MOV r1, #1048576 ; NOP }
     { PBRR b0, @loop ; ADD r5, r4, #-1 (p3) }
     { STW r1, #2, r6 ; BRCT #0, #3 }

   Operand syntax: rN (GPR), pN (predicate), bN (BTR), #imm (literal),
   @label (code label).  A trailing "(pN)" guards the operation. *)

module Isa = Epic_isa

exception Text_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Text_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Printing *)

let pp_src ppf = function
  | Aunit.Reg r -> Format.fprintf ppf "r%d" r
  | Aunit.Imm v -> Format.fprintf ppf "#%d" v
  | Aunit.Lab l -> Format.fprintf ppf "@@%s" l

let pp_inst ppf (i : Aunit.inst) =
  let pp_guard ppf g = if g <> 0 then Format.fprintf ppf " (p%d)" g in
  let op = Isa.string_of_opcode i.Aunit.op in
  (match i.Aunit.op with
   | Isa.NOP -> Format.fprintf ppf "NOP"
   | Isa.HALT -> Format.fprintf ppf "HALT"
   | Isa.ABS | Isa.MOV ->
     Format.fprintf ppf "%s r%d, %a" op i.Aunit.dst1 pp_src i.Aunit.src1
   | Isa.ST _ ->
     Format.fprintf ppf "%s %a, #%d, %a" op pp_src i.Aunit.src1 i.Aunit.dst1
       pp_src i.Aunit.src2
   | Isa.CMPP _ ->
     Format.fprintf ppf "%s p%d, p%d, %a, %a" op i.Aunit.dst1 i.Aunit.dst2
       pp_src i.Aunit.src1 pp_src i.Aunit.src2
   | Isa.PBRR ->
     Format.fprintf ppf "%s b%d, %a" op i.Aunit.dst1 pp_src i.Aunit.src1
   | Isa.BRU_ -> Format.fprintf ppf "%s %a" op pp_src i.Aunit.src1
   | Isa.BRCT | Isa.BRCF ->
     Format.fprintf ppf "%s %a, %a" op pp_src i.Aunit.src1 pp_src i.Aunit.src2
   | Isa.BRL ->
     Format.fprintf ppf "%s r%d, %a" op i.Aunit.dst1 pp_src i.Aunit.src1
   | Isa.ADD | Isa.SUB | Isa.MPY | Isa.DIV | Isa.REM | Isa.MIN | Isa.MAX
   | Isa.AND | Isa.OR | Isa.XOR | Isa.ANDCM | Isa.NAND | Isa.NOR
   | Isa.SHL | Isa.SHR | Isa.SHRA | Isa.CUSTOM _ | Isa.LD _ | Isa.LDU _ ->
     Format.fprintf ppf "%s r%d, %a, %a" op i.Aunit.dst1 pp_src i.Aunit.src1
       pp_src i.Aunit.src2);
  pp_guard ppf i.Aunit.guard

let pp_unit ppf (u : Aunit.t) =
  List.iter
    (function
      | Aunit.Ilabel l -> Format.fprintf ppf "%s:@." l
      | Aunit.Idirective d -> Format.fprintf ppf ".%s@." d
      | Aunit.Ibundle insts ->
        Format.fprintf ppf "{ ";
        List.iteri
          (fun k i ->
            if k > 0 then Format.fprintf ppf " ; ";
            pp_inst ppf i)
          insts;
        Format.fprintf ppf " }@.")
    u.Aunit.items

let to_string u = Format.asprintf "%a" pp_unit u

(* ------------------------------------------------------------------ *)
(* Parsing *)

(* ';' inside a bundle separates instructions, so comments use ";;". *)
let trim = String.trim

let parse_src tok =
  if tok = "" then fail "empty operand";
  match tok.[0] with
  | 'r' -> (try Aunit.Reg (int_of_string (String.sub tok 1 (String.length tok - 1)))
            with _ -> fail "bad register %s" tok)
  | '#' -> (try Aunit.Imm (int_of_string (String.sub tok 1 (String.length tok - 1)))
            with _ -> fail "bad literal %s" tok)
  | '@' -> Aunit.Lab (String.sub tok 1 (String.length tok - 1))
  | _ -> fail "bad operand %s" tok

let parse_indexed prefix tok =
  if String.length tok > 1 && tok.[0] = prefix then
    try int_of_string (String.sub tok 1 (String.length tok - 1))
    with _ -> fail "bad %c-operand %s" prefix tok
  else fail "expected %c-operand, got %s" prefix tok

let parse_imm tok =
  if String.length tok > 1 && tok.[0] = '#' then
    try int_of_string (String.sub tok 1 (String.length tok - 1))
    with _ -> fail "bad immediate %s" tok
  else fail "expected immediate, got %s" tok

(* Parse one operation: "OPC operands... [(pN)]". *)
let parse_inst text =
  let text = trim text in
  (* Extract trailing guard. *)
  let text, guard =
    match String.rindex_opt text '(' with
    | Some i when String.length text > i + 2 && text.[i + 1] = 'p'
                  && text.[String.length text - 1] = ')' ->
      let inner = String.sub text (i + 2) (String.length text - i - 3) in
      (match int_of_string_opt inner with
       | Some g -> (trim (String.sub text 0 i), g)
       | None -> (text, 0))
    | _ -> (text, 0)
  in
  let mnemonic, rest =
    match String.index_opt text ' ' with
    | Some i -> (String.sub text 0 i, String.sub text i (String.length text - i))
    | None -> (text, "")
  in
  let op =
    match Isa.opcode_of_string mnemonic with
    | Some op -> op
    | None -> fail "unknown mnemonic %s" mnemonic
  in
  let operands =
    String.split_on_char ',' rest
    |> List.map trim
    |> List.filter (fun s -> s <> "")
  in
  let mk = Aunit.simple in
  match (op, operands) with
  | Isa.NOP, [] -> mk Isa.NOP ~g:guard ()
  | Isa.HALT, [] -> mk Isa.HALT ~g:guard ()
  | (Isa.ABS | Isa.MOV), [ d; s ] ->
    mk op ~d1:(parse_indexed 'r' d) ~s1:(parse_src s) ~g:guard ()
  | Isa.ST _, [ base; off; v ] ->
    mk op ~d1:(parse_imm off) ~s1:(parse_src base) ~s2:(parse_src v) ~g:guard ()
  | Isa.CMPP _, [ d1; d2; a; b ] ->
    mk op ~d1:(parse_indexed 'p' d1) ~d2:(parse_indexed 'p' d2)
      ~s1:(parse_src a) ~s2:(parse_src b) ~g:guard ()
  | Isa.PBRR, [ d; s ] ->
    mk op ~d1:(parse_indexed 'b' d) ~s1:(parse_src s) ~g:guard ()
  | Isa.BRU_, [ s ] -> mk op ~s1:(parse_src s) ~g:guard ()
  | (Isa.BRCT | Isa.BRCF), [ b; p ] ->
    mk op ~s1:(parse_src b) ~s2:(parse_src p) ~g:guard ()
  | Isa.BRL, [ d; s ] ->
    mk op ~d1:(parse_indexed 'r' d) ~s1:(parse_src s) ~g:guard ()
  | ( Isa.ADD | Isa.SUB | Isa.MPY | Isa.DIV | Isa.REM | Isa.MIN | Isa.MAX
    | Isa.AND | Isa.OR | Isa.XOR | Isa.ANDCM | Isa.NAND | Isa.NOR
    | Isa.SHL | Isa.SHR | Isa.SHRA | Isa.CUSTOM _ | Isa.LD _ | Isa.LDU _ ),
    [ d; a; b ] ->
    mk op ~d1:(parse_indexed 'r' d) ~s1:(parse_src a) ~s2:(parse_src b) ~g:guard ()
  | _, _ ->
    fail "wrong operand count for %s (got %d)" (Isa.string_of_opcode op)
      (List.length operands)

let parse_bundle line =
  (* line without braces; instructions separated by ';' *)
  let parts = String.split_on_char ';' line |> List.map trim |> List.filter (( <> ) "") in
  if parts = [] then fail "empty bundle";
  Aunit.Ibundle (List.map parse_inst parts)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let items = ref [] in
  List.iteri
    (fun lineno line ->
      let line =
        (* ";;" starts a comment. *)
        let rec find i =
          if i + 1 >= String.length line then line
          else if line.[i] = ';' && line.[i + 1] = ';' then String.sub line 0 i
          else find (i + 1)
        in
        trim (find 0)
      in
      if line = "" then ()
      else
        try
          (* Labels may start with '.' (compiler-local ones do), so the
             trailing ':' takes precedence over the directive prefix. *)
          if line.[String.length line - 1] = ':' then
            items := Aunit.Ilabel (String.sub line 0 (String.length line - 1)) :: !items
          else if line.[0] = '.' then
            items := Aunit.Idirective (String.sub line 1 (String.length line - 1)) :: !items
          else if line.[0] = '{' then begin
            if line.[String.length line - 1] <> '}' then fail "bundle must close on the same line";
            items := parse_bundle (String.sub line 1 (String.length line - 2)) :: !items
          end
          else fail "cannot parse line"
        with Text_error m -> fail "line %d: %s" (lineno + 1) m)
    lines;
  { Aunit.items = List.rev !items }
