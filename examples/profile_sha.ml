(* Profiling a program with Epic_profile: compile SHA-256, run it with
   the profiler attached, show where the cycles go, and export a Chrome
   trace (open the file in chrome://tracing or https://ui.perfetto.dev).

     dune exec examples/profile_sha.exe

   The same flow is available from the shell:

     dune exec bin/epicprof.exe -- examples/sha256.c
     dune exec bin/epicprof.exe -- examples/sha256.c --format=chrome-trace \
       -o trace.json *)

let () =
  let bm = Epic.Workloads.Sources.sha_benchmark ~bytes:256 () in
  let cfg = Epic.Config.with_alus 4 in
  let artifacts =
    Epic.Toolchain.compile_epic cfg ~source:bm.Epic.Workloads.Sources.bm_source ()
  in
  (* keep_events retains the full event log for the trace export;
     aggregation alone (the tables below) needs only the default. *)
  let result, prof = Epic.Toolchain.profile_epic ~keep_events:true artifacts in
  assert (result.Epic.Sim.ret = bm.Epic.Workloads.Sources.bm_expected);
  let report = Epic.Profile.report prof in

  (* 1. Per-function and per-basic-block attribution; the block totals
     sum to stats.cycles exactly. *)
  Format.printf "%a@." Epic.Profile.pp_report report;
  assert (report.Epic.Profile.rp_cycles = result.Epic.Sim.stats.Epic.Sim.cycles);

  (* 2. The three hottest blocks with their scheduled assembly: for SHA
     these are the compression-loop blocks, and the operand-stall column
     shows which bundles wait on the rotate-xor dependence chains — the
     feedback custom-instruction identification needs (a ROTR custom op
     collapses exactly those chains; see examples/custom_instruction.ml). *)
  Format.printf "@.hottest blocks:@.%a@." (Epic.Profile.pp_hot ~top:3 prof) report;

  (* 3. Machine-readable dumps. *)
  let oc = open_out "sha_trace.json" in
  Epic.Profile.chrome_trace_to_channel prof oc;
  close_out oc;
  Printf.printf
    "\nwrote sha_trace.json (%d events) — open in chrome://tracing\n"
    (result.Epic.Sim.stats.Epic.Sim.cycles);
  let summary =
    Epic.Profile.Json.to_string
      (Epic.Profile.stats_to_json result.Epic.Sim.stats)
  in
  Printf.printf "stats as JSON: %s\n"
    (if String.length summary > 160 then String.sub summary 0 160 ^ "..."
     else summary)
