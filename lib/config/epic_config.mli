(** Compile-time configuration of the customisable EPIC processor.

    This is the "configuration header file" of the paper (Section 3.3): it
    carries every architectural parameter the paper lists — number of ALUs,
    general-purpose / predicate / branch-target registers, registers per
    instruction, instructions per issue, datapath and register width, ALU
    functionality (omitted operations and custom instructions) — plus the
    instruction-format field widths that constrain them, and the
    microarchitectural constants of the prototype (register-file port
    budget, forwarding, memory banks). *)

type custom_op = {
  cop_name : string;  (** Mnemonic (assembly syntax [X.NAME]). *)
  cop_semantics : width:int -> int -> int -> int;
      (** Combinational function on canonical [width]-bit operands; the
          result is masked to [width] bits by the evaluator. *)
  cop_latency : int;       (** Producer-to-consumer latency in cycles. *)
  cop_slices : int;        (** Area cost added per ALU (Virtex-II slices). *)
  cop_description : string;
}
(** A custom ALU instruction (paper Section 3.3: "inclusion of a custom
    instruction only requires modifications of the concerned functional
    unit"). *)

type t = {
  n_alus : int;            (** Number of ALUs (default 4). *)
  n_gprs : int;            (** General-purpose registers (default 64). *)
  n_preds : int;           (** Predicate registers (default 32). *)
  n_btrs : int;            (** Branch-target registers (default 16). *)
  regs_per_inst : int;     (** Max GPR operands one instruction may name (default 4). *)
  issue_width : int;       (** Instructions issued per cycle, 1-4 (default 4). *)
  width : int;             (** Datapath and register width in bits (default 32). *)
  alu_omit : Epic_isa.opcode list;
      (** ALU-class base operations removed from the datapath ("ALUs do not
          need to support division if this operation is not required"). *)
  custom_ops : custom_op list;  (** Custom instructions included. *)
  opcode_bits : int;       (** Instruction-format field widths; defaults *)
  dst_bits : int;          (** 15/6/16/5 as in paper Fig. 1, all          *)
  src_bits : int;          (** parameterisable because exceeding a limit  *)
  pred_bits : int;         (** "requires a re-design of the format".      *)
  rf_port_budget : int;
      (** Register-file operations (reads + writes) available per processor
          cycle: dual-port BRAM quad-pumped = 8 (paper Section 3.2). *)
  forwarding : bool;       (** Forwarding of just-computed results by the
                               register-file controller. *)
  mem_banks : int;         (** External 32-bit memory banks (default 4). *)
  pipeline_stages : int;
      (** Pipeline depth, 2-4.  The paper's prototype is the 2-stage
          Fetch/Decode/Issue | Execute/Write-back split; deeper pipelines
          (its stated future work, "parameterising the level of
          pipelining") raise the clock but pay more refill cycles on
          taken branches. *)
  clock_mhz : float;       (** Achieved clock of the 2-stage prototype (41.8). *)
  lat_overrides : (Epic_isa.opcode * int) list;
      (** Per-operation latency overrides (e.g. an area-reduced iterative
          multiplier): the machine description inherits them, so the
          scheduler and the simulator stay consistent. *)
}

val default : t
(** The paper's default instantiation: 4 ALUs, 64 GPRs, 32 predicate
    registers, 16 BTRs, 4-issue, 32-bit datapath, 41.8 MHz. *)

val with_alus : int -> t
(** [with_alus n] is {!default} with [n] ALUs (the paper's 1-4 ALU sweep). *)

val inst_bits : t -> int
(** Total encoded instruction width: opcode + 2 destinations + 2 sources +
    predicate (64 with default field widths). *)

val validate : t -> (unit, Epic_diag.t list) result
(** Check every parameter against the instruction format and the memory
    bandwidth constraint (paper: "the number of instructions per issue is
    constrained between one and four" because issue fetch may not exceed
    [mem_banks * 32 * 2] bits per cycle).  All violated constraints are
    collected, each as a structured diagnostic with a stable [config/*]
    code, so a bad header is reported in one pass. *)

val validate_exn : t -> t
(** Like {!validate} but returns the config or raises [Invalid_argument]
    carrying every diagnostic rendered on one line. *)

(** {1 Custom-operation registry}

    Known custom instructions that a configuration may include by name.
    Semantics live here so that machine descriptions remain serialisable:
    an mdes refers to custom operations by name only. *)

val registry : custom_op list
(** ROTR, ROTL, BSWAP, POPCNT, CLZ, SATADD. *)

val registry_find : string -> custom_op option

val add_custom : t -> string -> t
(** [add_custom cfg name] includes the registry operation [name].
    @raise Invalid_argument if the name is unknown. *)

val add_custom_op : t -> custom_op -> t
(** Include an arbitrary custom operation — the hook used by automatic
    custom-instruction generation (a registry entry is not required;
    idempotent on the name). *)

val find_custom : t -> string -> custom_op option
(** Look up a custom operation included in this configuration. *)

val custom_eval : t -> string -> int -> int -> int
(** Semantics resolver for {!Epic_isa.eval_alu}'s [~custom] argument.
    @raise Invalid_argument for operations not in the configuration. *)

val op_supported : t -> Epic_isa.opcode -> bool
(** Whether the configured datapath implements the opcode (checks
    [alu_omit] and the custom-op list). *)

val latency : t -> Epic_isa.opcode -> int
(** Operation latency under this configuration: [lat_overrides] first,
    then the custom-op registry entry, then {!Epic_isa.default_latency}. *)

val pp : Format.formatter -> t -> unit
(** Render the configuration header (readable key/value form). *)

val equal : t -> t -> bool
(** Structural equality ignoring custom-op semantics closures (compares
    custom operations by name). *)

val fingerprint : t -> string
(** Canonical string over every architectural field, the configuration
    half of a compile-cache key ({!Epic_exec.Cache}): configurations
    equal up to {!equal} have equal fingerprints, and changing any field
    changes it.  Custom operations contribute name, latency and slice
    cost — semantics closures are identified by name, as in {!equal}. *)
