lib/workloads/sha256_ref.ml: Array Char Printf String
