(* Retargeting through the machine description, the paper's Section 4.1
   flow: "by modifying the appropriate entries in the machine description
   file during customisation, the compiler is able to support our design,
   without the need for recompiling the compiler itself."

   Customising a functional unit means changing the configuration header
   (here: an area-reduced iterative multiplier with latency 6 instead of
   the 3-cycle block multiplier).  The machine description regenerates
   from it, the scheduler spreads dependent operations further apart, and
   the simulator charges the new latency — no tool is recompiled, and the
   textual description round-trips for storage beside the design.

   Run with: dune exec examples/retarget_mdes.exe *)

let source =
  "int a[32];\n\
   int main() {\n\
   \  int i;\n\
   \  for (i = 0; i < 32; i++) a[i] = i;\n\
   \  int s = 0;\n\
   \  for (i = 0; i < 32; i++) s += a[i] * (i + 3) * (a[i] + 5);\n\
   \  return s;\n\
   }\n"

let run cfg =
  let a = Epic.Toolchain.compile_epic cfg ~source () in
  (a.Epic.Toolchain.ea_sched, Epic.Toolchain.run_epic a)

let () =
  let fast = Epic.Config.default in
  let slow =
    Epic.Config.validate_exn
      { fast with Epic.Config.lat_overrides = [ (Epic.Isa.MPY, 6) ] }
  in

  (* The description regenerates from the configuration... *)
  let md_fast = Epic.Mdes.of_config fast in
  let md_slow = Epic.Mdes.of_config ~name:"epic-slow-mpy" slow in
  Printf.printf "MPY latency in the two machine descriptions: %d vs %d\n"
    (Epic.Mdes.latency md_fast Epic.Isa.MPY)
    (Epic.Mdes.latency md_slow Epic.Isa.MPY);

  (* ...and its textual form round-trips, so it can live next to the
     design sources (exactly how HMDES files are used in Trimaran). *)
  (match Epic.Mdes.of_string (Epic.Mdes.to_string md_slow) with
   | Ok md -> assert (Epic.Mdes.equal md md_slow)
   | Error m -> failwith m);
  print_endline "textual description round-trip: OK\n";

  let st_fast, r_fast = run fast in
  let st_slow, r_slow = run slow in
  assert (r_fast.Epic.Sim.ret = r_slow.Epic.Sim.ret);
  Printf.printf "result (both machines): %d\n\n" r_fast.Epic.Sim.ret;
  Printf.printf "%-28s %14s %14s\n" "" "3-cycle MPY" "6-cycle MPY";
  Printf.printf "%-28s %14d %14d\n" "static bundles"
    st_fast.Epic.Sched.Sched.st_bundles st_slow.Epic.Sched.Sched.st_bundles;
  Printf.printf "%-28s %14d %14d\n" "cycles"
    r_fast.Epic.Sim.stats.Epic.Sim.cycles r_slow.Epic.Sim.stats.Epic.Sim.cycles;
  Printf.printf "%-28s %14d %14d\n" "operand stalls"
    r_fast.Epic.Sim.stats.Epic.Sim.operand_stalls
    r_slow.Epic.Sim.stats.Epic.Sim.operand_stalls;
  print_endline
    "\nSame binary semantics, different schedule and timing, all driven by\n\
     one edited latency entry in the configuration header."
