(* epicc: the EPIC compiler driver.  Compiles EPIC-C to scheduled EPIC
   assembly (default), an encoded binary hex dump (--hex), or dumps the
   machine description the scheduler used (--mdes).  The optimisation
   pipeline is fully scriptable: --passes/--disable-pass select passes,
   --verify-ir/--diff-check check each pass, --time-passes/--dump-after
   report on it (see --list-passes for the registry). *)

open Cmdliner

let run input cfg emit_hex emit_mdes no_opt no_pred stats pipeline list_passes =
  Cli_common.handle_errors @@ fun () ->
  if list_passes then Cli_common.list_passes ()
  else begin
    let input =
      match input with Some f -> f | None -> failwith "missing input FILE"
    in
    let source = Cli_common.read_file input in
    if emit_mdes then
      print_string (Epic.Mdes.to_string (Epic.Mdes.of_config cfg))
    else begin
      let a =
        Epic.Toolchain.compile_epic cfg ~source
          ~opt:(if no_opt then Epic.Toolchain.O0 else Epic.Toolchain.O1)
          ~predication:(not no_pred) ~pipeline ()
      in
      Cli_common.report_pipeline pipeline a.Epic.Toolchain.ea_report;
      if emit_hex then
        Array.iter (fun w -> Printf.printf "%016Lx\n" w) a.Epic.Toolchain.ea_words
      else print_string (Epic.Asm.Text.to_string a.Epic.Toolchain.ea_unit);
      if stats then begin
        let s = a.Epic.Toolchain.ea_sched in
        Printf.eprintf "blocks %d, operations %d, bundles %d, nop slots %d\n"
          s.Epic.Sched.Sched.st_blocks s.Epic.Sched.Sched.st_insts
          s.Epic.Sched.Sched.st_bundles
          (Epic.Asm.Aunit.nop_count a.Epic.Toolchain.ea_image);
        let area = Epic.Area.estimate cfg in
        Format.eprintf "%a@." Epic.Area.pp area
      end
    end
  end

let cmd =
  let emit_hex = Arg.(value & flag & info [ "hex" ] ~doc:"Emit the encoded binary as hex words.") in
  let emit_mdes = Arg.(value & flag & info [ "mdes" ] ~doc:"Dump the machine description and exit.") in
  let no_opt = Arg.(value & flag & info [ "O0" ] ~doc:"Disable the optimiser.") in
  let no_pred = Arg.(value & flag & info [ "no-predication" ] ~doc:"Disable if-conversion.") in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print scheduling and area statistics to stderr.") in
  let list_passes =
    Arg.(value & flag & info [ "list-passes" ]
         ~doc:"List the registered optimisation passes and exit.")
  in
  let input =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input file.")
  in
  Cmd.v
    (Cmd.info "epicc" ~doc:"Compile EPIC-C for the customisable EPIC processor")
    Term.(const run $ input $ Cli_common.config_term $ emit_hex
          $ emit_mdes $ no_opt $ no_pred $ stats $ Cli_common.pipeline_term
          $ list_passes)

let () = exit (Cmd.eval cmd)
