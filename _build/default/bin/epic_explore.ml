(* epic_explore: design-space exploration.  Sweeps ALU count (and
   optionally issue width) for a given EPIC-C program and prints the
   performance/area trade-off table the paper advocates exploring
   ("a platform for designers to explore performance/area trade-offs"). *)

open Cmdliner

let run input max_alus sweep_issue =
  Cli_common.handle_errors @@ fun () ->
  let source = Cli_common.read_file input in
  let issues = if sweep_issue then [ 1; 2; 4 ] else [ 4 ] in
  Printf.printf "%5s %6s %8s %8s %8s %10s %12s\n" "ALUs" "issue" "cycles"
    "slices" "BRAMs" "MHz" "time (ms)";
  let points = ref [] in
  List.iter
    (fun issue ->
      List.iter
        (fun alus ->
          let cfg =
            { Epic.Config.default with Epic.Config.n_alus = alus; issue_width = issue }
          in
          match Epic.Config.validate cfg with
          | Error _ -> ()
          | Ok () ->
            let a = Epic.Toolchain.compile_epic cfg ~source () in
            let r = Epic.Toolchain.run_epic a in
            let area = Epic.Area.estimate cfg in
            let ms =
              float_of_int r.Epic.Sim.stats.Epic.Sim.cycles
              /. (area.Epic.Area.clock_mhz *. 1e3)
            in
            points := (alus, issue, r.Epic.Sim.stats.Epic.Sim.cycles, area.Epic.Area.slices, ms) :: !points;
            Printf.printf "%5d %6d %8d %8d %8d %10.1f %12.3f\n" alus issue
              r.Epic.Sim.stats.Epic.Sim.cycles area.Epic.Area.slices
              area.Epic.Area.brams area.Epic.Area.clock_mhz ms)
        (List.init max_alus (fun k -> k + 1)))
    issues;
  (* Pareto frontier on (slices, time). *)
  let pts = List.rev !points in
  let pareto =
    List.filter
      (fun (_, _, _, s, t) ->
        not
          (List.exists
             (fun (_, _, _, s', t') -> (s' < s && t' <= t) || (s' <= s && t' < t))
             pts))
      pts
  in
  Printf.printf "\nPareto-optimal designs (slices vs time):\n";
  List.iter
    (fun (alus, issue, _, s, t) ->
      Printf.printf "  %d ALU(s), %d-issue: %d slices, %.3f ms\n" alus issue s t)
    pareto

let cmd =
  let max_alus =
    Arg.(value & opt int 4 & info [ "max-alus" ] ~docv:"N" ~doc:"Sweep 1..N ALUs.")
  in
  let sweep_issue =
    Arg.(value & flag & info [ "sweep-issue" ] ~doc:"Also sweep issue widths 1, 2, 4.")
  in
  Cmd.v
    (Cmd.info "epic_explore" ~doc:"Explore performance/area trade-offs of EPIC designs")
    Term.(const run $ Cli_common.input_term $ max_alus $ sweep_issue)

let () = exit (Cmd.eval cmd)
