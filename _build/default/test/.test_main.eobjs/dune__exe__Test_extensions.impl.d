test/test_extensions.ml: Alcotest Epic List Str
