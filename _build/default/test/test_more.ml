(* Additional edge-case coverage: SHA padding boundaries through the
   compiled benchmark, automatic-specialisation semantics on random
   programs, ARM condition-code behaviour, and store-offset encoding
   bounds. *)

module W = Epic.Workloads
module Interp = Epic.Interp
module Cfront = Epic.Cfront
module T = Epic.Toolchain
module Config = Epic.Config

(* SHA-256 padding has three regimes (message + 0x80 + length fitting or
   not in the last block); exercise the compiled kernel across them. *)
let test_sha_padding_boundaries () =
  List.iter
    (fun bytes ->
      let bm = W.Sources.sha_benchmark ~bytes () in
      let r = Interp.run (Cfront.compile bm.W.Sources.bm_source) ~entry:"main" in
      Alcotest.(check int)
        (Printf.sprintf "sha %d bytes" bytes)
        bm.W.Sources.bm_expected r.Interp.ret)
    [ 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]

let test_dct_odd_shapes () =
  List.iter
    (fun (w, h) ->
      let bm = W.Sources.dct_benchmark ~width:w ~height:h () in
      let r = Interp.run (Cfront.compile bm.W.Sources.bm_source) ~entry:"main" in
      Alcotest.(check int)
        (Printf.sprintf "dct %dx%d" w h)
        bm.W.Sources.bm_expected r.Interp.ret)
    [ (8, 8); (8, 24); (24, 8) ]

let test_dijkstra_sizes () =
  List.iter
    (fun n ->
      let bm = W.Sources.dijkstra_benchmark ~nodes:n () in
      let r = Interp.run (Cfront.compile bm.W.Sources.bm_source) ~entry:"main" in
      Alcotest.(check int)
        (Printf.sprintf "dijkstra %d" n)
        bm.W.Sources.bm_expected r.Interp.ret)
    [ 2; 3; 8 ]

(* Specialisation must preserve semantics on arbitrary programs, not just
   the rotation-rich ones. *)
let prop_specialise_preserves_semantics =
  QCheck.Test.make ~name:"Custom_gen.specialise preserves semantics" ~count:25
    (QCheck.make
       ~print:(fun (src, x, y) -> Printf.sprintf "x=%d y=%d\n%s" x y src)
       QCheck.Gen.(triple Test_opt.gen_program (int_range (-300) 300) (int_range (-300) 300)))
    (fun (src, x, y) ->
      let baked =
        Str.global_replace (Str.regexp_string "int main(") "int body__(" src
        ^ Printf.sprintf "\nint main() { return body__(%d, %d); }" x y
      in
      let p = Epic.Opt.standard (Cfront.compile baked) in
      let expected = (Interp.run p ~entry:"main").Interp.ret in
      match Epic.Custom_gen.specialise ~rounds:2 Config.default p with
      | None -> true
      | Some (cfg, p', _) ->
        let custom name a b = Config.custom_eval cfg name a b in
        (Interp.run ~custom p' ~entry:"main").Interp.ret = expected)

(* ARM condition codes, including the unsigned ones, through the whole
   baseline pipeline. *)
let test_arm_condition_codes () =
  let check name src expected =
    let a = T.compile_arm ~source:src () in
    Alcotest.(check int) name expected (T.run_arm a).Epic.Arm.Sim.ret
  in
  check "signed lt vs unsigned ltu"
    "int main() { return (0 - 1 < 1) * 10 + __ltu(0 - 1, 1); }" 10;
  check "geu on equal" "int main() { return __geu(5, 5); }" 1;
  check "gtu wraparound" "int main() { return __gtu(0 - 1, 0x7FFFFFFF); }" 1;
  check "min of negatives" "int main() { return __min(0 - 7, 0 - 3); }"
    (-7 land 0xFFFFFFFF);
  check "max mixed" "int main() { return __max(0 - 7, 3); }" 3;
  check "conditional value" "int main(int x, int y) { return (3 > 2) + (2 > 3); }" 1

let test_arm_division_runtime () =
  (* The software divider handles the awkward corners (by-zero semantics
     match the EPIC datapath; INT_MIN magnitudes). *)
  let run src =
    let a = T.compile_arm ~source:src () in
    (T.run_arm a).Epic.Arm.Sim.ret
  in
  Alcotest.(check int) "div by zero -> 0" 0 (run "int main() { int z = 0; return 7 / z; }");
  Alcotest.(check int) "rem by zero -> dividend" 7 (run "int main() { int z = 0; return 7 % z; }");
  Alcotest.(check int) "int_min / -1" 0x80000000
    (run "int main() { int m = 0x80000000; return m / (0 - 1); }");
  Alcotest.(check int) "large unsigned magnitudes" ((-2147483648) / 3 land 0xFFFFFFFF)
    (run "int main() { int m = 0x80000000; return m / 3; }")

(* Store-offset field limits: 6 bits of access-size units. *)
let test_store_offset_bounds () =
  let cfg = Config.default in
  let ok text = ignore (Epic.Asm.assemble_text cfg text) in
  let bad text =
    match Epic.Asm.assemble_text cfg text with
    | exception Epic.Asm.Asm_error _ -> ()
    | _ -> Alcotest.failf "expected rejection of %s" text
  in
  ok "m:\n{ STW r1, #63, r2 }\n";
  bad "m:\n{ STW r1, #64, r2 }\n";
  ok "m:\n{ STB r1, #63, r2 }\n";
  bad "m:\n{ STH r1, #-1, r2 }\n"

(* The STW offset field is honoured by the simulator (scaled by the access
   size). *)
let test_store_offset_scaling () =
  let text =
    "_start:\n\
     { MOV r1, #1000 ; MOV r12, #77 }\n\
     { STW r1, #3, r12 }\n\
     { STB r1, #3, r12 }\n\
     { LDUW r3, r1, #12 }\n\
     { HALT }\n"
  in
  let image, _ = Epic.Asm.assemble_text Config.default text in
  let mem = Bytes.make 4096 '\000' in
  let r = Epic.Sim.run Config.default ~image ~mem () in
  Alcotest.(check int) "word at 1000+12" 77 r.Epic.Sim.ret;
  Alcotest.(check int) "byte at 1000+3" 77
    (Epic.Memmap.read ~size:Epic.Ir.I8 ~ext:Epic.Ir.Zx r.Epic.Sim.mem 1003)

(* Deep pipelines and narrow datapaths still agree on the benchmarks. *)
let test_benchmark_exotic_configs () =
  let bm = W.Sources.dijkstra_benchmark ~nodes:8 () in
  List.iter
    (fun cfg ->
      let st =
        T.epic_cycles (Config.validate_exn cfg) ~source:bm.W.Sources.bm_source
          ~expected:bm.W.Sources.bm_expected ()
      in
      Alcotest.(check bool) "ran" true (st.Epic.Sim.cycles > 0))
    [ { Config.default with Config.pipeline_stages = 4 };
      { Config.default with Config.n_alus = 8; rf_port_budget = 16 };
      { Config.default with Config.issue_width = 2; mem_banks = 2 };
      { (Config.add_custom Config.default "CLZ") with Config.n_preds = 4 } ]

let suite =
  [
    Alcotest.test_case "sha padding boundaries" `Quick test_sha_padding_boundaries;
    Alcotest.test_case "dct non-square images" `Quick test_dct_odd_shapes;
    Alcotest.test_case "dijkstra graph sizes" `Quick test_dijkstra_sizes;
    QCheck_alcotest.to_alcotest prop_specialise_preserves_semantics;
    Alcotest.test_case "arm condition codes" `Quick test_arm_condition_codes;
    Alcotest.test_case "arm software division" `Quick test_arm_division_runtime;
    Alcotest.test_case "store offset bounds" `Quick test_store_offset_bounds;
    Alcotest.test_case "store offset scaling" `Quick test_store_offset_scaling;
    Alcotest.test_case "exotic configurations" `Quick test_benchmark_exotic_configs;
  ]
