bin/epic_explore.ml: Arg Cli_common Cmd Cmdliner Epic List Printf Term
