(** Linear-scan register allocation on MIR (Poletto & Sarkar style).

    Both backends use this pass: the EPIC backend with the large
    configurable register file (paper default: 64 GPRs, of which 52 are
    allocatable), the SA-110 baseline with ARM's 8 allocatable registers.
    The allocator is deliberately target-neutral: it maps virtual
    registers onto an arbitrary list of physical register numbers and
    spills the rest to frame slots ({!Epic_mir.Ir.LoadFrame} /
    [StoreFrame]).

    Free registers are handed out FIFO so that recently-freed registers
    are not reused immediately: this reduces false (WAR/WAW) dependences,
    which matters for the EPIC list scheduler downstream.

    Predicate virtuals are not allocated here — they are block-local by
    construction (if-conversion) and mapped by the EPIC backend. *)

module Ir = Epic_mir.Ir
module Liveness = Epic_mir.Liveness

exception Alloc_error of string

type location = Lreg of int | Lslot of int  (** Physical register or frame byte offset. *)

type result = {
  fn : Ir.func;
      (** Rewritten function: every GPR-class virtual register is a
          physical register number from the pool (or a scratch); spill
          code has been inserted; [f_frame_bytes] includes spill slots. *)
  param_locs : location option list;
      (** Where each parameter value must be placed by the prologue;
          [None] when the parameter is never used. *)
  used_regs : int list;
      (** Physical registers the body writes (for callee-save). *)
  spill_count : int;  (** Virtual registers that received a frame slot. *)
}

(* Linearise: assign each instruction a position; block boundaries get
   positions too so that cross-block liveness extends intervals. *)
let build_intervals (f : Ir.func) =
  let live = Liveness.analyse f in
  let start_of = Hashtbl.create 64 and end_of = Hashtbl.create 64 in
  let touch r pos =
    if not (Hashtbl.mem start_of r) then Hashtbl.replace start_of r pos;
    Hashtbl.replace end_of r (max pos (try Hashtbl.find end_of r with Not_found -> pos));
    if pos < Hashtbl.find start_of r then Hashtbl.replace start_of r pos
  in
  let pos = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      let bstart = !pos in
      Liveness.RSet.iter
        (fun (cls, r) -> if cls = Ir.Cgpr then touch r bstart)
        (Liveness.live_in live b.Ir.b_id);
      List.iter
        (fun (i : Ir.inst) ->
          incr pos;
          List.iter
            (fun (cls, r) -> if cls = Ir.Cgpr then touch r !pos)
            (Ir.uses_of_inst i @ Ir.defs_of_inst i))
        b.Ir.b_insts;
      incr pos;
      List.iter
        (fun (cls, r) -> if cls = Ir.Cgpr then touch r !pos)
        (Ir.uses_of_term b.Ir.b_term);
      Liveness.RSet.iter
        (fun (cls, r) -> if cls = Ir.Cgpr then touch r !pos)
        (Liveness.live_out live b.Ir.b_id))
    f.Ir.f_blocks;
  Hashtbl.fold
    (fun r s acc -> (r, s, Hashtbl.find end_of r) :: acc)
    start_of []
  |> List.sort (fun (_, s1, _) (_, s2, _) -> compare s1 s2)

(* Core linear scan: returns vreg -> location.

   Register hand-out policy: recycled registers are used FIFO (reduces
   false dependences), but fresh never-touched registers are only drawn
   while the footprint stays proportional to the actual pressure (twice
   the live-interval count, plus slack).  This keeps the callee-save set
   — and hence the call save/restore memory traffic — small for simple
   functions, while ILP-rich kernels still spread across the whole file
   and avoid false WAW/WAR dependences from eager reuse. *)
let footprint_slack = 12

let scan intervals pool =
  let fresh = Queue.create () in
  List.iter (fun r -> Queue.add r fresh) pool;
  let recycled = Queue.create () in
  let touched = ref 0 in
  let active = ref [] in  (* (end, vreg, phys), sorted by end *)
  let take_free () =
    let target = (2 * List.length !active) + footprint_slack in
    if (not (Queue.is_empty recycled))
       && (!touched >= target || Queue.is_empty fresh)
    then Some (Queue.pop recycled)
    else if not (Queue.is_empty fresh) then begin
      incr touched;
      Some (Queue.pop fresh)
    end
    else if not (Queue.is_empty recycled) then Some (Queue.pop recycled)
    else None
  in
  let assignment = Hashtbl.create 64 in
  let spills = ref [] in
  let expire start =
    let expired, rest = List.partition (fun (e, _, _) -> e < start) !active in
    List.iter (fun (_, _, phys) -> Queue.add phys recycled) expired;
    active := rest
  in
  let add_active entry =
    active := List.sort (fun (e1, _, _) (e2, _, _) -> compare e1 e2) (entry :: !active)
  in
  List.iter
    (fun (vreg, s, e) ->
      expire s;
      match take_free () with
      | None ->
        (* Spill the interval that ends furthest in the future. *)
        (match List.rev !active with
         | (e', v', phys) :: _ when e' > e ->
           Hashtbl.replace assignment v' `Spill;
           spills := v' :: !spills;
           active := List.filter (fun (_, v, _) -> v <> v') !active;
           Hashtbl.replace assignment vreg (`Reg phys);
           add_active (e, vreg, phys)
         | _ ->
           Hashtbl.replace assignment vreg `Spill;
           spills := vreg :: !spills)
      | Some phys ->
        Hashtbl.replace assignment vreg (`Reg phys);
        add_active (e, vreg, phys))
    intervals;
  assignment

(* Rewrite the body with the assignment, inserting spill code.  Scratch
   registers host spilled values around single instructions.  Returns the
   rewritten function, the final frame size, the set of physical registers
   touched, and the spill-slot table (vreg -> frame offset). *)
let rewrite (f : Ir.func) assignment ~scratch =
  let slot_of = Hashtbl.create 16 in
  let next_slot = ref f.Ir.f_frame_bytes in
  let slot v =
    match Hashtbl.find_opt slot_of v with
    | Some s -> s
    | None ->
      let s = !next_slot in
      next_slot := s + 4;
      Hashtbl.replace slot_of v s;
      s
  in
  let used = Hashtbl.create 16 in
  let loc v =
    match Hashtbl.find_opt assignment v with
    | Some (`Reg p) -> Lreg p
    | Some `Spill -> Lslot (slot v)
    | None -> Lreg (List.hd scratch)  (* dead vreg: any scratch will do *)
  in
  let rewrite_inst (i : Ir.inst) =
    (* Map spilled uses to scratch registers (reloaded before), spilled
       defs to a scratch stored after. *)
    let pre = ref [] and post = ref [] in
    let scratch_pool = ref scratch in
    let take_scratch () =
      match !scratch_pool with
      | s :: rest -> scratch_pool := rest; s
      | [] -> raise (Alloc_error "ran out of spill scratch registers")
    in
    let use_map = Hashtbl.create 4 in
    let map_use v =
      match loc v with
      | Lreg p -> Hashtbl.replace used p (); p
      | Lslot off ->
        (match Hashtbl.find_opt use_map v with
         | Some s -> s
         | None ->
           let s = take_scratch () in
           Hashtbl.replace use_map v s;
           (* A guarded instruction's reload must be unconditional: the
              scratch read happens only if the guard is true, but loading
              is always safe. *)
           pre := !pre @ [ Ir.no_guard (Ir.LoadFrame (s, off)) ];
           Hashtbl.replace used s ();
           s)
    in
    let map_def v =
      match loc v with
      | Lreg p -> Hashtbl.replace used p (); p
      | Lslot off ->
        (* Reuse the scratch already holding this vreg if the instruction
           both reads and writes it. *)
        let s =
          match Hashtbl.find_opt use_map v with
          | Some s -> s
          | None -> take_scratch ()
        in
        (* A guarded def must only store when the guard fires; carry the
           guard onto the spill store. *)
        post := !post @ [ { Ir.kind = Ir.StoreFrame (off, s); guard = i.Ir.guard } ];
        Hashtbl.replace used s ();
        s
    in
    let op = function Ir.Reg v -> Ir.Reg (map_use v) | Ir.Imm _ as o -> o in
    let kind =
      match i.Ir.kind with
      | Ir.Bin (o, d, a, b) ->
        let a = op a and b = op b in
        Ir.Bin (o, map_def d, a, b)
      | Ir.Mov (d, a) -> let a = op a in Ir.Mov (map_def d, a)
      | Ir.Cmp (r, d, a, b) ->
        let a = op a and b = op b in
        Ir.Cmp (r, map_def d, a, b)
      | Ir.Setp (r, q, a, b) -> Ir.Setp (r, q, op a, op b)
      | Ir.Custom (n, d, a, b) ->
        let a = op a and b = op b in
        Ir.Custom (n, map_def d, a, b)
      | Ir.Load (sz, e, d, base, off) ->
        let base = op base and off = op off in
        Ir.Load (sz, e, map_def d, base, off)
      | Ir.Store (sz, a, v) -> Ir.Store (sz, op a, op v)
      | Ir.Call (d, g, args) ->
        let args = List.map op args in
        Ir.Call (Option.map map_def d, g, args)
      | Ir.AddrOf (d, g) -> Ir.AddrOf (map_def d, g)
      | Ir.FrameAddr (d, o) -> Ir.FrameAddr (map_def d, o)
      | Ir.LoadFrame (d, o) -> Ir.LoadFrame (map_def d, o)
      | Ir.StoreFrame (o, v) -> Ir.StoreFrame (o, map_use v)
    in
    !pre @ [ { i with Ir.kind } ] @ !post
  in
  List.iter
    (fun (b : Ir.block) ->
      b.Ir.b_insts <- List.concat_map rewrite_inst b.Ir.b_insts;
      (* Terminators read registers too. *)
      let pre = ref [] in
      let term_op o =
        match o with
        | Ir.Imm _ -> o
        | Ir.Reg v ->
          (match loc v with
           | Lreg p -> Hashtbl.replace used p (); Ir.Reg p
           | Lslot off ->
             let s = List.hd scratch in
             pre := !pre @ [ Ir.no_guard (Ir.LoadFrame (s, off)) ];
             Hashtbl.replace used s ();
             Ir.Reg s)
      in
      let term_op2 a b =
        match (a, b) with
        | Ir.Reg va, Ir.Reg vb when loc va = loc vb -> let a' = term_op a in (a', a')
        | _ ->
          let a' = term_op a in
          let b' =
            match b with
            | Ir.Imm _ -> b
            | Ir.Reg v ->
              (match loc v with
               | Lreg p -> Hashtbl.replace used p (); Ir.Reg p
               | Lslot off ->
                 let s = List.nth scratch 1 in
                 pre := !pre @ [ Ir.no_guard (Ir.LoadFrame (s, off)) ];
                 Hashtbl.replace used s ();
                 Ir.Reg s)
          in
          (a', b')
      in
      (match b.Ir.b_term with
       | Ir.Ret (Some o) -> b.Ir.b_term <- Ir.Ret (Some (term_op o))
       | Ir.Ret None | Ir.Jmp _ -> ()
       | Ir.Br (r, a, b', lt, lf) ->
         let a, b'' = term_op2 a b' in
         b.Ir.b_term <- Ir.Br (r, a, b'', lt, lf));
      (* Reloads for terminator operands come after the body. *)
      b.Ir.b_insts <- b.Ir.b_insts @ !pre)
    f.Ir.f_blocks;
  (f, !next_slot, used, slot_of)

let allocate (f : Ir.func) ~pool =
  if List.length pool < 5 then
    raise (Alloc_error "register pool too small (need at least 5)");
  let f = {
    Ir.f_name = f.Ir.f_name;
    f_params = f.Ir.f_params;
    f_nvregs = f.Ir.f_nvregs;
    f_npregs = f.Ir.f_npregs;
    f_blocks =
      List.map
        (fun (b : Ir.block) ->
          { Ir.b_id = b.Ir.b_id; b_insts = b.Ir.b_insts; b_term = b.Ir.b_term })
        f.Ir.f_blocks;
    f_frame_bytes = f.Ir.f_frame_bytes;
  } in
  let intervals = build_intervals f in
  (* First try with the whole pool; if anything spills, retry with three
     registers reserved as spill scratch. *)
  let attempt reserve =
    let scratch, avail =
      if reserve then
        (match pool with
         | a :: b :: c :: rest -> ([ a; b; c ], rest)
         | _ -> assert false)
      else ([ List.hd pool ], pool)
    in
    let assignment = scan intervals avail in
    let any_spill = Hashtbl.fold (fun _ v acc -> acc || v = `Spill) assignment false in
    if any_spill && not reserve then None else Some (assignment, scratch)
  in
  let assignment, scratch =
    match attempt false with
    | Some r -> r
    | None ->
      (match attempt true with
       | Some r -> r
       | None -> assert false)
  in
  let spill_count = Hashtbl.fold (fun _ v acc -> if v = `Spill then acc + 1 else acc) assignment 0 in
  let f, frame_bytes, used, slot_of = rewrite f assignment ~scratch in
  f.Ir.f_frame_bytes <- frame_bytes;
  let param_locs =
    List.map
      (fun v ->
        match Hashtbl.find_opt assignment v with
        | Some (`Reg p) -> Some (Lreg p)
        | Some `Spill ->
          (* A spilled parameter that is actually used has a slot from the
             body rewrite; the prologue stores the incoming register there.
             A spilled-but-untouched parameter would have no slot, but a
             vreg only gets an interval (and thus an assignment) when some
             instruction mentions it. *)
          (match Hashtbl.find_opt slot_of v with
           | Some off -> Some (Lslot off)
           | None ->
             raise (Alloc_error (Printf.sprintf "spilled parameter v%d has no slot" v)))
        | None -> None  (* parameter never used *))
      f.Ir.f_params
  in
  let used_regs = Hashtbl.fold (fun r () acc -> r :: acc) used [] |> List.sort compare in
  { fn = f; param_locs; used_regs; spill_count }
