test/test_backend.ml: Alcotest Array Bytes Epic Format List Printf QCheck QCheck_alcotest Str String Test_opt
