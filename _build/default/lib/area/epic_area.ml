(** Analytical FPGA resource and clock model, calibrated against the
    paper's Virtex-II results (Section 5.1):

    - 1/2/3/4-ALU designs take 4181/6779/9367/11988 slices, i.e. about
      2600 slices per ALU over a ~1580-slice base (least-squares fit:
      2601 slices/ALU + 1577);
    - the prototype clocks at 41.8 MHz, and "varying the number of ALUs
      has little impact on the critical path; so is the case of enlarging
      the register file";
    - the register file lives in SelectRAM block RAM (negligible slices);
    - multiplication uses the on-chip block multipliers.

    The model extends those anchors along the paper's customisation axes:
    datapath width scales the per-unit costs, omitted ALU operations
    return their slices (removing the iterative divider is the big win),
    and custom operations add their registry cost to every ALU. *)

module Isa = Epic_isa
module Config = Epic_config

type report = {
  slices : int;
  brams : int;           (* 18 Kb block RAMs for the register files *)
  multipliers : int;     (* 18x18 block multipliers *)
  clock_mhz : float;
  breakdown : (string * int) list;  (* component -> slices *)
}

(* Calibrated anchors (32-bit datapath, 4-issue). *)
let base_slices_4issue = 1481  (* so that base + preds + btrs = 1577 at the default config *)
let alu_slices_32 = 2601

(* Slice cost of individual ALU operations, used when alu_omit removes
   them.  The iterative divider dominates. *)
let op_slices (op : Isa.opcode) =
  match op with
  | Isa.DIV -> 1050
  | Isa.REM -> 350   (* shares the divider datapath with DIV *)
  | Isa.MPY -> 60    (* wiring to the block multiplier *)
  | Isa.MIN | Isa.MAX -> 40
  | Isa.ABS -> 30
  | Isa.SHL | Isa.SHR | Isa.SHRA -> 90
  | Isa.ADD | Isa.SUB -> 50
  | Isa.AND | Isa.OR | Isa.XOR | Isa.ANDCM | Isa.NAND | Isa.NOR -> 20
  | Isa.MOV -> 10
  | Isa.CUSTOM _ | Isa.LD _ | Isa.LDU _ | Isa.ST _ | Isa.CMPP _ | Isa.PBRR
  | Isa.BRU_ | Isa.BRCT | Isa.BRCF | Isa.BRL | Isa.HALT | Isa.NOP -> 0

let scale_width (cfg : Config.t) v =
  (* Datapath logic scales roughly linearly in width. *)
  v * cfg.Config.width / 32

let estimate (cfg : Config.t) =
  let issue_factor num = num * (2 + cfg.Config.issue_width) / 6 in
  (* Fetch/decode/issue, write-back and the memory controller grow with
     issue width; at the paper's 4-issue the factor is 1. *)
  let control = issue_factor (scale_width cfg base_slices_4issue) in
  let omit_savings =
    List.fold_left (fun acc op -> acc + scale_width cfg (op_slices op)) 0 cfg.Config.alu_omit
  in
  let custom_cost =
    List.fold_left (fun acc c -> acc + scale_width cfg c.Config.cop_slices) 0
      cfg.Config.custom_ops
  in
  let per_alu = max 200 (scale_width cfg alu_slices_32 - omit_savings + custom_cost) in
  let alus = cfg.Config.n_alus * per_alu in
  (* Predicate and branch-target registers are distributed flip-flops. *)
  let preds = cfg.Config.n_preds in
  let btrs = cfg.Config.n_btrs * cfg.Config.width / 8 in
  let slices = control + alus + preds + btrs in
  (* Register file: dual-port block RAM, quad-pumped; one BRAM pair per
     18 Kb of storage ("increasing the size of the register file has
     negligible effects on number of slices"). *)
  let rf_bits = cfg.Config.n_gprs * cfg.Config.width in
  let brams = max 2 (2 * ((rf_bits + 18431) / 18432)) in
  let multipliers =
    if Config.op_supported cfg Isa.MPY then
      cfg.Config.n_alus * ((cfg.Config.width + 17) / 18)
    else 0
  in
  (* The ALUs sit in parallel, so the clock is flat in their number; a
     wider issue window lengthens the issue-select path slightly, and
     deeper pipelining shortens the critical path substantially (the
     paper: "with further optimisations in the design of the datapath, a
     speedup in clock rate should be possible"). *)
  let clock_mhz =
    41.8
    *. (1.0 +. (0.015 *. float_of_int (4 - cfg.Config.issue_width)))
    *. (1.0 +. (0.32 *. float_of_int (cfg.Config.pipeline_stages - 2)))
  in
  (* Extra pipeline registers cost a little area. *)
  let slices =
    slices + (slices * 4 * (cfg.Config.pipeline_stages - 2) / 100)
  in
  {
    slices;
    brams;
    multipliers;
    clock_mhz;
    breakdown =
      [ ("control+issue+memctl", control);
        (Printf.sprintf "%d ALU(s)" cfg.Config.n_alus, alus);
        ("predicate regs", preds);
        ("branch target regs", btrs) ];
  }

let pp ppf r =
  Format.fprintf ppf "@[<v>slices       %d@,block RAMs   %d@,multipliers  %d@,clock        %.1f MHz"
    r.slices r.brams r.multipliers r.clock_mhz;
  List.iter (fun (name, s) -> Format.fprintf ppf "@,  %-22s %6d" name s) r.breakdown;
  Format.fprintf ppf "@]"


(* ------------------------------------------------------------------ *)
(* Power model (the paper's future work: "characterising the trade-offs
   in performance, size and power consumption", citing Vermeulen et al.).
   Dynamic energy is charged per operation by unit class, plus a fetch
   cost per issued bundle slot; static power is proportional to the
   occupied slices.  Constants are plausible Virtex-II-era values (nJ per
   operation, mW per slice) — the model is for comparing configurations,
   not for absolute accuracy. *)

type activity = {
  ac_cycles : int;
  ac_alu_ops : int;
  ac_lsu_ops : int;
  ac_cmpu_ops : int;
  ac_bru_ops : int;
  ac_nops : int;
}

type power_report = {
  pw_dynamic_mw : float;
  pw_static_mw : float;
  pw_total_mw : float;
  pw_energy_uj : float;   (* total energy for the run *)
}

let nj_alu = 1.1
let nj_lsu = 2.3
let nj_cmpu = 0.4
let nj_bru = 0.6
let nj_fetch_slot = 0.15  (* per fetched slot, NOPs included *)
let mw_per_slice = 0.012

let power (cfg : Config.t) (a : activity) =
  let r = estimate cfg in
  let seconds = float_of_int a.ac_cycles /. (r.clock_mhz *. 1e6) in
  let slots = a.ac_cycles * cfg.Config.issue_width in
  let dyn_nj =
    (float_of_int a.ac_alu_ops *. nj_alu)
    +. (float_of_int a.ac_lsu_ops *. nj_lsu)
    +. (float_of_int a.ac_cmpu_ops *. nj_cmpu)
    +. (float_of_int a.ac_bru_ops *. nj_bru)
    +. (float_of_int slots *. nj_fetch_slot)
  in
  let dynamic_mw = if seconds = 0.0 then 0.0 else dyn_nj *. 1e-9 /. seconds *. 1e3 in
  let static_mw = float_of_int r.slices *. mw_per_slice in
  let static_nj = static_mw *. 1e-3 *. seconds *. 1e9 in
  {
    pw_dynamic_mw = dynamic_mw;
    pw_static_mw = static_mw;
    pw_total_mw = dynamic_mw +. static_mw;
    pw_energy_uj = (dyn_nj +. static_nj) /. 1e3;
  }

let pp_power ppf p =
  Format.fprintf ppf
    "dynamic %.1f mW + static %.1f mW = %.1f mW; energy %.2f uJ"
    p.pw_dynamic_mw p.pw_static_mw p.pw_total_mw p.pw_energy_uj
