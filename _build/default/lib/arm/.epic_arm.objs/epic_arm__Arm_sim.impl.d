lib/arm/arm_sim.ml: Arm_isa Array Bytes Epic_isa Epic_mir Format Hashtbl List
