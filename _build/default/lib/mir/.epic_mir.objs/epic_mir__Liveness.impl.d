lib/mir/liveness.ml: Array Hashtbl Ir List Set
