test/test_area.ml: Alcotest Epic List Printf QCheck QCheck_alcotest
