lib/core/toolchain.mli: Epic_arm Epic_asm Epic_config Epic_mir Epic_sched Epic_sim Format
