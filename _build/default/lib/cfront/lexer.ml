(* Hand-written lexer for EPIC-C. *)

exception Lex_error of string * Ast.pos

type token =
  | INT of int
  | IDENT of string
  | KW of string          (* int void if else while do for return break continue *)
  | PUNCT of string       (* operators and delimiters *)
  | EOF

type ltoken = { tok : token; pos : Ast.pos }

let keywords = [ "int"; "void"; "if"; "else"; "while"; "do"; "for"; "return";
                 "break"; "continue" ]

type state = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let make src = { src; off = 0; line = 1; bol = 0 }

let pos s = { Ast.line = s.line; col = s.off - s.bol + 1 }

let error s msg = raise (Lex_error (msg, pos s))

let peek s = if s.off < String.length s.src then Some s.src.[s.off] else None
let peek2 s = if s.off + 1 < String.length s.src then Some s.src.[s.off + 1] else None

let advance s =
  (match peek s with
   | Some '\n' ->
     s.line <- s.line + 1;
     s.bol <- s.off + 1
   | _ -> ());
  s.off <- s.off + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let rec skip_ws_and_comments s =
  match peek s with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance s;
    skip_ws_and_comments s
  | Some '/' when peek2 s = Some '/' ->
    while peek s <> None && peek s <> Some '\n' do advance s done;
    skip_ws_and_comments s
  | Some '/' when peek2 s = Some '*' ->
    advance s; advance s;
    let rec go () =
      match peek s with
      | None -> error s "unterminated comment"
      | Some '*' when peek2 s = Some '/' -> advance s; advance s
      | Some _ -> advance s; go ()
    in
    go ();
    skip_ws_and_comments s
  | Some _ | None -> ()

let lex_number s =
  let start = s.off in
  if peek s = Some '0' && (peek2 s = Some 'x' || peek2 s = Some 'X') then begin
    advance s; advance s;
    while (match peek s with Some c -> is_hex c | None -> false) do advance s done;
    let text = String.sub s.src start (s.off - start) in
    int_of_string text
  end
  else begin
    while (match peek s with Some c -> is_digit c | None -> false) do advance s done;
    int_of_string (String.sub s.src start (s.off - start))
  end

let lex_char_literal s =
  advance s; (* opening quote *)
  let v =
    match peek s with
    | Some '\\' ->
      advance s;
      let c =
        match peek s with
        | Some 'n' -> 10 | Some 't' -> 9 | Some 'r' -> 13 | Some '0' -> 0
        | Some '\\' -> 92 | Some '\'' -> 39
        | Some c -> error s (Printf.sprintf "unknown escape \\%c" c)
        | None -> error s "unterminated character literal"
      in
      advance s; c
    | Some c -> advance s; Char.code c
    | None -> error s "unterminated character literal"
  in
  (match peek s with
   | Some '\'' -> advance s
   | _ -> error s "unterminated character literal");
  v

(* Multi-character punctuators, longest first. *)
let puncts3 = [ "<<="; ">>=" ]
let puncts2 = [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "+="; "-=";
                "*="; "/="; "%="; "&="; "|="; "^="; "++"; "--" ]

let next s =
  skip_ws_and_comments s;
  let p = pos s in
  match peek s with
  | None -> { tok = EOF; pos = p }
  | Some c when is_digit c -> { tok = INT (lex_number s); pos = p }
  | Some '\'' -> { tok = INT (lex_char_literal s); pos = p }
  | Some c when is_ident_start c ->
    let start = s.off in
    while (match peek s with Some c -> is_ident c | None -> false) do advance s done;
    let text = String.sub s.src start (s.off - start) in
    if List.mem text keywords then { tok = KW text; pos = p }
    else { tok = IDENT text; pos = p }
  | Some _ ->
    let take n =
      let t = String.sub s.src s.off n in
      for _ = 1 to n do advance s done;
      t
    in
    let remaining = String.length s.src - s.off in
    let try_list n cands =
      if remaining >= n && List.mem (String.sub s.src s.off n) cands then
        Some (take n)
      else None
    in
    (match try_list 3 puncts3 with
     | Some t -> { tok = PUNCT t; pos = p }
     | None ->
       match try_list 2 puncts2 with
       | Some t -> { tok = PUNCT t; pos = p }
       | None ->
         let c = take 1 in
         if String.contains "+-*/%<>=!&|^~(){}[];,?:" c.[0] then
           { tok = PUNCT c; pos = p }
         else error s (Printf.sprintf "unexpected character %C" c.[0]))

let tokenize src =
  let s = make src in
  let rec go acc =
    let t = next s in
    match t.tok with EOF -> List.rev (t :: acc) | _ -> go (t :: acc)
  in
  go []

let string_of_token = function
  | INT v -> string_of_int v
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> Printf.sprintf "%S" s
  | EOF -> "<eof>"
