test/test_main.ml: Alcotest Test_area Test_asm Test_backend Test_cfront Test_config Test_encoding Test_extensions Test_isa Test_mdes Test_mir Test_more Test_opt Test_workloads
