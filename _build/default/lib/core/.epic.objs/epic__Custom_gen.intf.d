lib/core/custom_gen.mli: Epic_config Epic_mir Format
