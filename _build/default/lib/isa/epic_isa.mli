(** Instruction-set architecture of the customisable EPIC processor.

    The instruction set is a proper subset of the HPL-PD meta-architecture
    (Kathail, Schlansker, Rau: HPL-93-80), restricted to the integer
    operations the paper implements on FPGA, plus a registry-driven custom
    operation extension point (paper Section 3.3). *)

(** Fixed-width two's-complement arithmetic helpers.

    Values are stored as OCaml [int]s in canonical unsigned form
    [0 .. 2^w - 1].  Because [2^w] divides [2^63] for all supported widths,
    native wrap-around arithmetic followed by masking is exact. *)
module Word : sig
  val max_width : int
  (** Largest supported datapath width (32). *)

  val mask : int -> int -> int
  (** [mask w v] is [v] reduced to [w] bits (canonical unsigned form). *)

  val to_signed : int -> int -> int
  (** [to_signed w v] interprets canonical [v] as a signed [w]-bit value. *)

  val of_signed : int -> int -> int
  (** [of_signed w v] is the canonical form of the signed value [v]. *)

  val min_signed : int -> int
  (** Smallest signed value representable in [w] bits. *)

  val max_signed : int -> int
  (** Largest signed value representable in [w] bits. *)

  val max_unsigned : int -> int
  (** Largest unsigned value representable in [w] bits. *)
end

(** {1 Instruction set} *)

type cmp_cond =
  | C_eq
  | C_ne
  | C_lt
  | C_le
  | C_gt
  | C_ge
  | C_ltu
  | C_leu
  | C_gtu
  | C_geu
      (** Comparison conditions for CMPP (signed and unsigned variants). *)

type mem_width = M_byte | M_half | M_word
    (** Access widths for loads and stores. *)

type opcode =
  | ADD
  | SUB
  | MPY
  | DIV  (** Signed division; division by zero yields 0 (FPGA divider). *)
  | REM  (** Signed remainder; remainder by zero yields the dividend. *)
  | MIN
  | MAX
  | ABS  (** Unary; src2 ignored. *)
  | AND
  | OR
  | XOR
  | ANDCM  (** [a land (lnot b)], HPL-PD and-complement. *)
  | NAND
  | NOR
  | SHL
  | SHR   (** Logical right shift. *)
  | SHRA  (** Arithmetic right shift. *)
  | MOV   (** [dst1 <- src1]; doubles as load-immediate. src2 ignored. *)
  | CUSTOM of string
      (** Custom ALU operation resolved through the configuration's
          custom-operation registry (paper Section 3.3). *)
  | LD of mem_width   (** Sign-extending load; address is src1 + src2. *)
  | LDU of mem_width  (** Zero-extending load. *)
  | ST of mem_width
      (** Store: memory[src1 + dst1 * size] <- src2.  The value occupies
          the second source field, so the otherwise-unused DEST1 field is
          repurposed as a small unsigned offset in units of the access
          size (it indexes nothing, hence costs no register port). *)
  | CMPP of cmp_cond
      (** Compare-to-predicate: dst1 (pred) <- cond, dst2 (pred) <- not cond.
          Predicate register 0 is hardwired true; writes to it are dropped. *)
  | PBRR
      (** Prepare-to-branch: BTR dst1 <- src1 (literal address or GPR),
          covering both direct targets and indirect/return targets. *)
  | BRU_  (** Unconditional branch through BTR src1. *)
  | BRCT  (** Branch through BTR src1 if predicate [src2] is true. *)
  | BRCF  (** Branch through BTR src1 if predicate [src2] is false. *)
  | BRL   (** Branch and link through BTR src1; GPR dst1 <- return address. *)
  | HALT  (** Stop the processor (prototype testbench control). *)
  | NOP

type src = Sreg of int | Simm of int
    (** A source field: general-purpose register index or literal. *)

type inst = {
  op : opcode;
  dst1 : int;  (** GPR, predicate or BTR index depending on [op]; 0 unused. *)
  dst2 : int;  (** Second destination (CMPP complement predicate). *)
  src1 : src;
  src2 : src;
  guard : int; (** Guarding predicate register; 0 means always execute. *)
}
(** One EPIC operation, the unit the 64-bit format encodes (paper Fig. 1). *)

val nop : inst

(** Functional unit classes of the datapath (paper Fig. 2). *)
type unit_class = U_alu | U_lsu | U_cmpu | U_bru | U_none

type regfile = R_gpr | R_pred | R_btr
    (** The three architectural register files. *)

val unit_of : opcode -> unit_class

val is_branch : opcode -> bool
(** True for operations executed by the branch unit that change control
    flow (BRU_, BRCT, BRCF, BRL — not PBRR). *)

val is_store : opcode -> bool

val is_load : opcode -> bool

val writes : inst -> (regfile * int) list
(** Architectural registers written by the instruction (register file and
    index), with hardwired sinks (GPR 0, predicate 0) removed. *)

val reads : inst -> (regfile * int) list
(** Architectural registers read, including the guard predicate (when
    non-zero) and the predicate operand of conditional branches. *)

val gpr_port_ops : inst -> int
(** Number of general-purpose register-file accesses (reads + writes) the
    instruction makes, for the 8-ops-per-cycle port budget of the
    quad-pumped register-file controller (paper Section 3.2). *)

val default_latency : opcode -> int
(** Producer-to-consumer latency in cycles assumed by the default machine
    description; custom operations default to 1 and may be overridden. *)

(** {1 Semantics} *)

val eval_alu :
  width:int -> custom:(string -> int -> int -> int) -> opcode -> int -> int
  -> int
(** [eval_alu ~width ~custom op a b] evaluates an ALU-class operation on
    canonical [width]-bit operands.  [custom] resolves CUSTOM semantics.
    @raise Invalid_argument on non-ALU opcodes. *)

val eval_cmp : width:int -> cmp_cond -> int -> int -> bool
(** Evaluate a comparison condition on canonical operands. *)

val bytes_of_mem_width : mem_width -> int

(** {1 Printing and parsing} *)

val string_of_cond : cmp_cond -> string
val cond_of_string : string -> cmp_cond option
val string_of_opcode : opcode -> string
val opcode_of_string : string -> opcode option
(** Opcode mnemonics are bijective: [opcode_of_string (string_of_opcode o)
    = Some o] for every opcode, including [CUSTOM]. *)

val pp_src : Format.formatter -> src -> unit
val pp_inst : Format.formatter -> inst -> unit
val equal_opcode : opcode -> opcode -> bool
val equal_inst : inst -> inst -> bool

val all_base_opcodes : opcode list
(** Every non-custom opcode, for enumeration in tests and opcode-table
    construction. *)
