(** Cycle-level simulator of the customisable EPIC processor (the
    ReaCT-ILP role in the paper's flow: "the number of cycles taken by our
    EPIC design is measured by ... a cycle-level simulator").

    Modelled microarchitecture (paper Sections 3.2-3.3):
    - 2-stage pipeline: Fetch/Decode/Issue, then Execute/Write-back; a
      taken branch costs one refill bubble;
    - in-order issue of one bundle (up to [issue_width] operations) per
      cycle, whole-bundle stall on a not-yet-ready operand (scoreboard
      interlock, so mis-scheduled code is slow rather than wrong);
    - register-file controller: at most [rf_port_budget] GPR reads+writes
      per processor cycle (dual-port block RAM clocked at 4x); exceeding
      the budget stalls for the extra controller rounds; with
      [forwarding] on, a value consumed the cycle it becomes available
      bypasses the register file and costs no port;
    - predication: a false guard nullifies the operation;
    - branch-target registers written by PBRR, read by branches.

    Register values are canonical [width]-bit unsigned ints; r0 and p0 are
    hardwired.  Memory is the byte-addressable big-endian data memory
    shared with the MIR tooling ({!Epic_mir.Memmap}). *)

module Isa = Epic_isa
module Config = Epic_config
module A = Epic_asm.Aunit
module Memmap = Epic_mir.Memmap
module Predecode = Predecode

module Diag = Epic_diag

exception Sim_error of Diag.t

let fail ?ctx code fmt =
  Format.kasprintf (fun s -> raise (Sim_error (Diag.v ?context:ctx ~code s))) fmt

(* ---- architectural trap model ------------------------------------- *)

(* A fault detected while executing — runaway PC, out-of-bounds memory
   access, an operation the configured datapath does not implement, fuel
   exhaustion — terminates the run gracefully: the simulator catches the
   internal [Trap] exception at the top of its cycle loop and returns a
   normal [result] carrying the trap record alongside the partial
   statistics and final architectural state.  Nothing escapes as an
   exception from [run]; [run_exn] restores the old raising behaviour. *)

type trap_cause =
  | T_bad_pc      (* PC left the code image *)
  | T_mem_bounds  (* load/store outside data memory *)
  | T_illegal_op  (* unimplemented/illegal operation or operand *)
  | T_fuel        (* watchdog: cycle budget exhausted *)

type trap = {
  tr_cause : trap_cause;
  tr_pc : int;        (* bundle index at the faulting cycle *)
  tr_cycle : int;     (* architectural cycle of the fault *)
  tr_message : string;
}

exception Trap of trap_cause * string

let trap_ cause fmt = Format.kasprintf (fun s -> raise (Trap (cause, s))) fmt

let string_of_trap_cause = function
  | T_bad_pc -> "bad-pc"
  | T_mem_bounds -> "mem-bounds"
  | T_illegal_op -> "illegal-op"
  | T_fuel -> "fuel"

let pp_trap ppf t =
  Format.fprintf ppf "trap %s at pc=%d cycle=%d: %s"
    (string_of_trap_cause t.tr_cause) t.tr_pc t.tr_cycle t.tr_message

type stats = {
  mutable cycles : int;
  mutable bundles : int;       (* bundles issued (not counting stalls) *)
  mutable ops : int;           (* non-NOP operations issued *)
  mutable nops : int;          (* NOP slots fetched *)
  mutable squashed : int;      (* operations nullified by a false guard *)
  mutable operand_stalls : int;
  mutable port_stalls : int;
  mutable branch_bubbles : int;
  mutable mem_reads : int;
  mutable mem_writes : int;
  mutable alu_ops : int;
  mutable lsu_ops : int;
  mutable cmpu_ops : int;
  mutable bru_ops : int;
}

type result = {
  ret : int;            (* r3 at HALT (or at the trap, for faulting runs) *)
  stats : stats;
  mem : Bytes.t;
  gprs : int array;
  trap : trap option;   (* None: clean HALT; Some: why the run ended early *)
}

(* Mutable view of the whole architectural state, handed to a [tamper]
   hook once per cycle — the fault-injection surface.  The arrays and the
   byte buffer are the simulator's own (mutations take effect
   immediately); [m_insts] is the image's instruction stream, indexed
   [bundle * issue_width + slot]. *)
type machine = {
  m_gprs : int array;
  m_preds : bool array;
  m_btrs : int array;
  m_mem : Bytes.t;
  m_insts : Isa.inst array;
  m_issue_width : int;
  m_pc : int;
  m_cycle : int;
}

let mk_stats () =
  { cycles = 0; bundles = 0; ops = 0; nops = 0; squashed = 0;
    operand_stalls = 0; port_stalls = 0; branch_bubbles = 0;
    mem_reads = 0; mem_writes = 0; alu_ops = 0; lsu_ops = 0; cmpu_ops = 0;
    bru_ops = 0 }

let ilp st = if st.cycles = 0 then 0.0 else float_of_int st.ops /. float_of_int st.cycles

(* ---- structured event stream ------------------------------------- *)

(* The profiling hook: when [run] is given a [sink], it emits one event
   per issued bundle and one per stall, in simulated-time order.  The
   stream is conservative by construction: every simulated cycle is
   covered by exactly one event (an issue costs one cycle, a stall event
   carries its cycle count), so a consumer summing over events recovers
   [stats.cycles] exactly.  With no sink the simulator takes the exact
   same path as before — cycle counts are bit-identical. *)

type stall_cause =
  | S_operand   (* scoreboard interlock: a source operand not yet ready *)
  | S_port      (* register-file port budget exceeded *)
  | S_branch    (* pipeline refill bubbles after a taken branch *)

type slot =
  | Sl_empty                  (* NOP padding slot *)
  | Sl_op of Isa.opcode       (* issued and executed *)
  | Sl_squashed of Isa.opcode (* nullified by a false guard *)
  | Sl_shadowed of Isa.opcode (* skipped: an earlier slot took a branch *)

type event =
  | Ev_stall of { at : int; pc : int; cause : stall_cause; cycles : int }
  | Ev_issue of {
      at : int;              (* cycle the bundle issued *)
      pc : int;              (* bundle index *)
      slots : slot array;    (* one entry per issue slot *)
      next_pc : int;         (* bundle executing next *)
      taken : bool;          (* a branch (or HALT) redirected the flow *)
    }

let string_of_stall_cause = function
  | S_operand -> "operand"
  | S_port -> "port"
  | S_branch -> "branch"


(* ---- two-tier execution -------------------------------------------

   [run] predecodes the image (or adopts a caller-supplied
   {!Predecode.t}) and then selects one of two cycle loops over the
   same resolved records:

   - the FAST loop, taken when no [sink]/[trace]/[tamper] hook is
     present: no option matching and no allocation per cycle — every
     per-cycle scratch array and accumulator is hoisted out of the
     [while];
   - the INSTRUMENTED loop, which adds the event stream, the trace
     printer and the tamper hook, and — because a tamper hook may
     rewrite instruction words in place — re-decodes any bundle whose
     fetched slots are no longer the records the predecode was built
     from (physical comparison per slot; untouched bundles pay one
     pointer compare per slot).

   Stats, final state and traps are bit-identical between the two loops;
   test/test_engine.ml and the differential fuzzer hold them equal. *)

(* [trace] receives one line per issued bundle: cycle, PC and the
   non-NOP operations (squashed ones bracketed).  Used by epicsim
   --trace and handy when debugging schedules. *)
let default_fuel = 500_000_000

let run ?(fuel = default_fuel) ?trace ?sink ?tamper ?pre (cfg : Config.t)
    ~(image : A.image) ~(mem : Bytes.t) ?(entry = 0) () =
  let w = image.A.im_issue_width in
  if w <> cfg.Config.issue_width then
    fail "sim/issue-width"
      ~ctx:
        [ ("image", string_of_int w);
          ("config", string_of_int cfg.Config.issue_width) ]
      "image was assembled for issue width %d, configuration has %d" w
      cfg.Config.issue_width;
  let insts = image.A.im_insts in
  let pre =
    match pre with
    | None -> Predecode.of_image cfg image
    | Some p ->
      if p.Predecode.p_w <> w then
        fail "sim/predecode-mismatch"
          "predecode was built for issue width %d, image has %d"
          p.Predecode.p_w w;
      if not (Predecode.same_config p cfg) then
        fail "sim/predecode-mismatch"
          "predecode was built under a different configuration";
      (match tamper with
       | None ->
         if not (Predecode.matches_insts p insts) then
           fail "sim/predecode-mismatch"
             "predecode does not match this image's instruction stream"
       | Some _ ->
         (* Tampered runs legitimately diverge from the predecoded
            stream mid-run (touched bundles are re-decoded below), but
            the shapes must agree. *)
         if Array.length p.Predecode.p_insts <> Array.length insts then
           fail "sim/predecode-mismatch"
             "predecode was built for a different image size");
      p
  in
  let bundles = pre.Predecode.p_bundles in
  let n_bundles = Array.length bundles in
  let width = cfg.Config.width in
  let msk = Isa.Word.max_unsigned width in
  let m v = v land msk in
  let gprs = Array.make cfg.Config.n_gprs 0 in
  let preds = Array.make cfg.Config.n_preds false in
  preds.(0) <- true;
  let btrs = Array.make cfg.Config.n_btrs 0 in
  (* Cycle at which each register's latest value becomes readable. *)
  let gpr_ready = Array.make cfg.Config.n_gprs 0 in
  let pred_ready = Array.make cfg.Config.n_preds 0 in
  let btr_ready = Array.make cfg.Config.n_btrs 0 in
  let st = mk_stats () in
  let custom name a b = Config.custom_eval cfg name a b in
  (* Inline ALU evaluation over canonical (already-masked) operands,
     dispatched on the predecoded sub-operation code — semantics
     identical to [Isa.eval_alu], which remains the fallback for the
     configured custom operations (their name lives in [x_op]). *)
  let sign_bit = 1 lsl (width - 1) in
  let modulus = 1 lsl width in
  let ts v = if v land sign_bit <> 0 then v - modulus else v in
  let alu_eval code op a b =
    match code with
    | 0 -> (a + b) land msk                                       (* ADD *)
    | 1 -> (a - b) land msk                                       (* SUB *)
    | 2 -> (a * b) land msk                                       (* MPY *)
    | 3 -> let d = ts b in if d = 0 then 0 else (ts a / d) land msk
    | 4 -> let d = ts b in if d = 0 then a else (ts a mod d) land msk
    | 5 -> if ts a <= ts b then a else b                          (* MIN *)
    | 6 -> if ts a >= ts b then a else b                          (* MAX *)
    | 7 -> abs (ts a) land msk                                    (* ABS *)
    | 8 -> a land b
    | 9 -> a lor b
    | 10 -> a lxor b
    | 11 -> a land lnot b                                         (* ANDCM *)
    | 12 -> lnot (a land b) land msk                              (* NAND *)
    | 13 -> lnot (a lor b) land msk                               (* NOR *)
    | 14 -> if b >= width then 0 else (a lsl b) land msk          (* SHL *)
    | 15 -> if b >= width then 0 else a lsr b                     (* SHR *)
    | 16 ->
      let n = if b >= width then width - 1 else b in
      ts a asr n land msk                                         (* SHRA *)
    | 17 -> a                                                     (* MOV *)
    | _ -> Isa.eval_alu ~width ~custom op a b                     (* CUSTOM *)
  in
  let mem_len = Bytes.length mem in
  let budget = cfg.Config.rf_port_budget in
  let fwd = cfg.Config.forwarding in
  let bubbles = cfg.Config.pipeline_stages - 1 in
  let halted = ref false in
  let ret = ref 0 in
  let pc = ref entry in
  let now = ref 0 in
  let trap_info = ref None in
  (* Per-cycle scratch, hoisted so the fast loop never allocates. *)
  let vals1 = Array.make w 0 and vals2 = Array.make w 0 in
  let enabled = Array.make w false in
  let branch_pred = Array.make w true in
  let ready_cycle = ref 0 in
  let port_ops = ref 0 in
  let next_pc = ref 0 in
  let taken = ref false in
  (* The shared cycle body, phases in the exact order of the original
     single loop.  [b] is the current bundle's predecode. *)
  (try
     match trace, sink, tamper with
     | None, None, None ->
       (* ================= FAST LOOP ================================ *)
       while not !halted do
         if !now > fuel then trap_ T_fuel "out of fuel after %d cycles" fuel;
         let pcv = !pc in
         if pcv < 0 || pcv >= n_bundles then
           trap_ T_bad_pc "PC %d outside code (cycle %d)" pcv st.cycles;
         let b = Array.unsafe_get bundles pcv in
         (match b.Predecode.b_fetch_trap with
          | Some msg -> raise (Trap (T_illegal_op, msg))
          | None -> ());
         (* readiness: stall the whole bundle until every source (and
            guard) of every operation is available. *)
         let rg = b.Predecode.b_rg in
         let rp = b.Predecode.b_rp in
         let rb = b.Predecode.b_rb in
         ready_cycle := 0;
         for j = 0 to Array.length rg - 1 do
           let r = Array.unsafe_get gpr_ready (Array.unsafe_get rg j) in
           if r > !ready_cycle then ready_cycle := r
         done;
         for j = 0 to Array.length rp - 1 do
           let r = Array.unsafe_get pred_ready (Array.unsafe_get rp j) in
           if r > !ready_cycle then ready_cycle := r
         done;
         for j = 0 to Array.length rb - 1 do
           let r = Array.unsafe_get btr_ready (Array.unsafe_get rb j) in
           if r > !ready_cycle then ready_cycle := r
         done;
         if !ready_cycle > !now then begin
           st.operand_stalls <- st.operand_stalls + (!ready_cycle - !now);
           st.cycles <- st.cycles + (!ready_cycle - !now);
           now := !ready_cycle
         end;
         (* register-file port accounting: a forwarded GPR read is free,
            every other GPR read and every GPR write costs one port. *)
         port_ops := b.Predecode.b_wg;
         if fwd then begin
           let nowv = !now in
           for j = 0 to Array.length rg - 1 do
             let fwd_hit =
               Array.unsafe_get gpr_ready (Array.unsafe_get rg j) = nowv
               && nowv > 0
             in
             if not fwd_hit then incr port_ops
           done
         end
         else port_ops := !port_ops + Array.length rg;
         if !port_ops > budget then begin
           let extra = ((!port_ops + budget - 1) / budget) - 1 in
           st.port_stalls <- st.port_stalls + extra;
           st.cycles <- st.cycles + extra;
           now := !now + extra
         end;
         (* phase 1: read all sources (register reads happen at issue). *)
         let slots = b.Predecode.b_slots in
         for k = 0 to w - 1 do
           let s = Array.unsafe_get slots k in
           let r1 = s.Predecode.x_s1r in
           Array.unsafe_set vals1 k
             (if r1 >= 0 then Array.unsafe_get gprs r1 else s.Predecode.x_s1v);
           let r2 = s.Predecode.x_s2r in
           Array.unsafe_set vals2 k
             (if r2 >= 0 then Array.unsafe_get gprs r2 else s.Predecode.x_s2v);
           let g = s.Predecode.x_guard in
           Array.unsafe_set enabled k (g = 0 || Array.unsafe_get preds g);
           (* Conditional branches also read their branch predicate at
              issue ([x_bp] is -1 exactly when [b_p1_trap] is set, which
              raises below before the value could be consumed). *)
           let bp = s.Predecode.x_bp in
           if s.Predecode.x_kind = 7 (* k_brc *) && bp >= 0 then
             Array.unsafe_set branch_pred k (Array.unsafe_get preds bp)
         done;
         (match b.Predecode.b_p1_trap with
          | Some msg -> raise (Trap (T_illegal_op, msg))
          | None -> ());
         (* phase 2: execute and write back. *)
         let cycle = !now in
         next_pc := pcv + 1;
         taken := false;
         for k = 0 to w - 1 do
           if not !taken then begin
             let s = Array.unsafe_get slots k in
             let kind = s.Predecode.x_kind in
             if kind = 0 (* k_nop *) then st.nops <- st.nops + 1
             else if not (Array.unsafe_get enabled k) then begin
               st.squashed <- st.squashed + 1;
               st.ops <- st.ops + 1
             end
             else begin
               st.ops <- st.ops + 1;
               (match s.Predecode.x_unit with
                | 0 -> st.alu_ops <- st.alu_ops + 1
                | 1 -> st.lsu_ops <- st.lsu_ops + 1
                | 2 -> st.cmpu_ops <- st.cmpu_ops + 1
                | 3 -> st.bru_ops <- st.bru_ops + 1
                | _ -> ());
               if kind = 1 (* k_alu *) then begin
                 let v =
                   alu_eval s.Predecode.x_alu s.Predecode.x_op
                     (Array.unsafe_get vals1 k) (Array.unsafe_get vals2 k)
                 in
                 let d = s.Predecode.x_dst1 in
                 if d <> 0 then begin
                   gprs.(d) <- m v;
                   gpr_ready.(d) <- cycle + s.Predecode.x_lat
                 end
               end
               else if kind = 2 (* k_ld *) then begin
                 let ea = m (Array.unsafe_get vals1 k + Array.unsafe_get vals2 k) in
                 if ea < 0 || ea + s.Predecode.x_bytes > mem_len then
                   trap_ T_mem_bounds "load: address %#x out of bounds (cycle %d)"
                     ea st.cycles;
                 st.mem_reads <- st.mem_reads + 1;
                 let v =
                   Memmap.read ~size:s.Predecode.x_size ~ext:s.Predecode.x_ext
                     mem ea
                 in
                 let d = s.Predecode.x_dst1 in
                 if d <> 0 then begin
                   gprs.(d) <- m v;
                   gpr_ready.(d) <- cycle + s.Predecode.x_lat
                 end
               end
               else if kind = 3 (* k_st *) then begin
                 let ea = m (Array.unsafe_get vals1 k + s.Predecode.x_stoff) in
                 if ea < 0 || ea + s.Predecode.x_bytes > mem_len then
                   trap_ T_mem_bounds "store: address %#x out of bounds (cycle %d)"
                     ea st.cycles;
                 st.mem_writes <- st.mem_writes + 1;
                 Memmap.write ~size:s.Predecode.x_size mem ea
                   (Array.unsafe_get vals2 k)
               end
               else if kind = 4 (* k_cmpp *) then begin
                 let t =
                   Isa.eval_cmp ~width s.Predecode.x_cond
                     (Array.unsafe_get vals1 k) (Array.unsafe_get vals2 k)
                 in
                 let d1 = s.Predecode.x_dst1 in
                 if d1 <> 0 then begin
                   preds.(d1) <- t;
                   pred_ready.(d1) <- cycle + s.Predecode.x_lat
                 end;
                 let d2 = s.Predecode.x_dst2 in
                 if d2 <> 0 then begin
                   preds.(d2) <- not t;
                   pred_ready.(d2) <- cycle + s.Predecode.x_lat
                 end
               end
               else if kind = 5 (* k_pbrr *) then begin
                 btrs.(s.Predecode.x_dst1) <- Array.unsafe_get vals1 k;
                 btr_ready.(s.Predecode.x_dst1) <- cycle + s.Predecode.x_lat
               end
               else if kind = 6 (* k_bru *) then begin
                 let bi = s.Predecode.x_btr in
                 if bi >= 0 then begin next_pc := btrs.(bi); taken := true end
                 else trap_ T_illegal_op "BRU operand must be a BTR index"
               end
               else if kind = 7 (* k_brc *) then begin
                 if Array.unsafe_get branch_pred k = s.Predecode.x_want then begin
                   let bi = s.Predecode.x_btr in
                   if bi >= 0 then begin next_pc := btrs.(bi); taken := true end
                   else trap_ T_illegal_op "branch operand must be a BTR index"
                 end
               end
               else if kind = 8 (* k_brl *) then begin
                 let bi = s.Predecode.x_btr in
                 if bi >= 0 then begin
                   let d = s.Predecode.x_dst1 in
                   if d <> 0 then begin
                     gprs.(d) <- m (pcv + 1);
                     gpr_ready.(d) <- cycle + s.Predecode.x_lat
                   end;
                   next_pc := btrs.(bi);
                   taken := true
                 end
                 else trap_ T_illegal_op "BRL operand must be a BTR index"
               end
               else begin (* k_halt *)
                 halted := true;
                 ret := gprs.(3);
                 taken := true
               end
             end
           end
         done;
         st.bundles <- st.bundles + 1;
         st.cycles <- st.cycles + 1;
         now := !now + 1;
         if !taken && not !halted && bubbles > 0 then begin
           st.branch_bubbles <- st.branch_bubbles + bubbles;
           st.cycles <- st.cycles + bubbles;
           now := !now + bubbles
         end;
         pc := !next_pc
       done
     | _ ->
       (* ================= INSTRUMENTED LOOP ======================== *)
       (* Same phases over the same predecode, plus the event sink, the
          trace printer and the tamper hook.  With a tamper hook the
          instruction stream may be rewritten under us, so each fetch
          compares the live slots against the records the predecode was
          built from and re-decodes the bundle when they differ —
          injected corruption is decoded fresh, restored slots go back
          to the predecoded fast path. *)
       let psrc = pre.Predecode.p_insts in
       let fetch_bundle pcv =
         match tamper with
         | None -> bundles.(pcv)
         | Some _ ->
           let base = pcv * w in
           let clean = ref true in
           for k = 0 to w - 1 do
             if not (insts.(base + k) == psrc.(base + k)) then clean := false
           done;
           if !clean then bundles.(pcv)
           else Predecode.decode_bundle cfg insts pcv w
       in
       while not !halted do
         if !now > fuel then trap_ T_fuel "out of fuel after %d cycles" fuel;
         if !pc < 0 || !pc >= n_bundles then
           trap_ T_bad_pc "PC %d outside code (cycle %d)" !pc st.cycles;
         (match tamper with
          | Some f ->
            f { m_gprs = gprs; m_preds = preds; m_btrs = btrs; m_mem = mem;
                m_insts = insts; m_issue_width = w; m_pc = !pc; m_cycle = !now }
          | None -> ());
         let pcv = !pc in
         let b = fetch_bundle pcv in
         (match b.Predecode.b_fetch_trap with
          | Some msg -> raise (Trap (T_illegal_op, msg))
          | None -> ());
         let rg = b.Predecode.b_rg in
         let rp = b.Predecode.b_rp in
         let rb = b.Predecode.b_rb in
         ready_cycle := 0;
         for j = 0 to Array.length rg - 1 do
           let r = gpr_ready.(rg.(j)) in
           if r > !ready_cycle then ready_cycle := r
         done;
         for j = 0 to Array.length rp - 1 do
           let r = pred_ready.(rp.(j)) in
           if r > !ready_cycle then ready_cycle := r
         done;
         for j = 0 to Array.length rb - 1 do
           let r = btr_ready.(rb.(j)) in
           if r > !ready_cycle then ready_cycle := r
         done;
         if !ready_cycle > !now then begin
           (match sink with
            | Some f ->
              f (Ev_stall { at = !now; pc = pcv; cause = S_operand;
                            cycles = !ready_cycle - !now })
            | None -> ());
           st.operand_stalls <- st.operand_stalls + (!ready_cycle - !now);
           st.cycles <- st.cycles + (!ready_cycle - !now);
           now := !ready_cycle
         end;
         port_ops := b.Predecode.b_wg;
         if fwd then begin
           let nowv = !now in
           for j = 0 to Array.length rg - 1 do
             let fwd_hit = gpr_ready.(rg.(j)) = nowv && nowv > 0 in
             if not fwd_hit then incr port_ops
           done
         end
         else port_ops := !port_ops + Array.length rg;
         if !port_ops > budget then begin
           let extra = ((!port_ops + budget - 1) / budget) - 1 in
           (match sink with
            | Some f when extra > 0 ->
              f (Ev_stall { at = !now; pc = pcv; cause = S_port; cycles = extra })
            | _ -> ());
           st.port_stalls <- st.port_stalls + extra;
           st.cycles <- st.cycles + extra;
           now := !now + extra
         end;
         let slots = b.Predecode.b_slots in
         for k = 0 to w - 1 do
           let s = slots.(k) in
           let r1 = s.Predecode.x_s1r in
           vals1.(k) <- (if r1 >= 0 then gprs.(r1) else s.Predecode.x_s1v);
           let r2 = s.Predecode.x_s2r in
           vals2.(k) <- (if r2 >= 0 then gprs.(r2) else s.Predecode.x_s2v);
           let g = s.Predecode.x_guard in
           enabled.(k) <- (g = 0 || preds.(g));
           let bp = s.Predecode.x_bp in
           if s.Predecode.x_kind = 7 (* k_brc *) && bp >= 0 then
             branch_pred.(k) <- preds.(bp)
         done;
         (match b.Predecode.b_p1_trap with
          | Some msg -> raise (Trap (T_illegal_op, msg))
          | None -> ());
         let cycle = !now in
         next_pc := pcv + 1;
         taken := false;
         (* Per-slot outcome, recorded only when a sink is listening. *)
         let ev_slots =
           match sink with Some _ -> Some (Array.make w Sl_empty) | None -> None
         in
         let set_slot k s = match ev_slots with Some a -> a.(k) <- s | None -> () in
         for k = 0 to w - 1 do
           let s = slots.(k) in
           let kind = s.Predecode.x_kind in
           if !taken then begin
             if kind <> 0 then set_slot k (Sl_shadowed s.Predecode.x_op)
           end
           else if kind = 0 then st.nops <- st.nops + 1
           else if not enabled.(k) then begin
             set_slot k (Sl_squashed s.Predecode.x_op);
             st.squashed <- st.squashed + 1;
             st.ops <- st.ops + 1
           end
           else begin
             set_slot k (Sl_op s.Predecode.x_op);
             st.ops <- st.ops + 1;
             (match s.Predecode.x_unit with
              | 0 -> st.alu_ops <- st.alu_ops + 1
              | 1 -> st.lsu_ops <- st.lsu_ops + 1
              | 2 -> st.cmpu_ops <- st.cmpu_ops + 1
              | 3 -> st.bru_ops <- st.bru_ops + 1
              | _ -> ());
             if kind = 1 then begin
               let v =
                 alu_eval s.Predecode.x_alu s.Predecode.x_op vals1.(k) vals2.(k)
               in
               let d = s.Predecode.x_dst1 in
               if d <> 0 then begin
                 gprs.(d) <- m v;
                 gpr_ready.(d) <- cycle + s.Predecode.x_lat
               end
             end
             else if kind = 2 then begin
               let ea = m (vals1.(k) + vals2.(k)) in
               if ea < 0 || ea + s.Predecode.x_bytes > mem_len then
                 trap_ T_mem_bounds "load: address %#x out of bounds (cycle %d)"
                   ea st.cycles;
               st.mem_reads <- st.mem_reads + 1;
               let v =
                 Memmap.read ~size:s.Predecode.x_size ~ext:s.Predecode.x_ext
                   mem ea
               in
               let d = s.Predecode.x_dst1 in
               if d <> 0 then begin
                 gprs.(d) <- m v;
                 gpr_ready.(d) <- cycle + s.Predecode.x_lat
               end
             end
             else if kind = 3 then begin
               let ea = m (vals1.(k) + s.Predecode.x_stoff) in
               if ea < 0 || ea + s.Predecode.x_bytes > mem_len then
                 trap_ T_mem_bounds "store: address %#x out of bounds (cycle %d)"
                   ea st.cycles;
               st.mem_writes <- st.mem_writes + 1;
               Memmap.write ~size:s.Predecode.x_size mem ea vals2.(k)
             end
             else if kind = 4 then begin
               let t = Isa.eval_cmp ~width s.Predecode.x_cond vals1.(k) vals2.(k) in
               let d1 = s.Predecode.x_dst1 in
               if d1 <> 0 then begin
                 preds.(d1) <- t;
                 pred_ready.(d1) <- cycle + s.Predecode.x_lat
               end;
               let d2 = s.Predecode.x_dst2 in
               if d2 <> 0 then begin
                 preds.(d2) <- not t;
                 pred_ready.(d2) <- cycle + s.Predecode.x_lat
               end
             end
             else if kind = 5 then begin
               btrs.(s.Predecode.x_dst1) <- vals1.(k);
               btr_ready.(s.Predecode.x_dst1) <- cycle + s.Predecode.x_lat
             end
             else if kind = 6 then begin
               let bi = s.Predecode.x_btr in
               if bi >= 0 then begin next_pc := btrs.(bi); taken := true end
               else trap_ T_illegal_op "BRU operand must be a BTR index"
             end
             else if kind = 7 then begin
               if branch_pred.(k) = s.Predecode.x_want then begin
                 let bi = s.Predecode.x_btr in
                 if bi >= 0 then begin next_pc := btrs.(bi); taken := true end
                 else trap_ T_illegal_op "branch operand must be a BTR index"
               end
             end
             else if kind = 8 then begin
               let bi = s.Predecode.x_btr in
               if bi >= 0 then begin
                 let d = s.Predecode.x_dst1 in
                 if d <> 0 then begin
                   gprs.(d) <- m (pcv + 1);
                   gpr_ready.(d) <- cycle + s.Predecode.x_lat
                 end;
                 next_pc := btrs.(bi);
                 taken := true
               end
               else trap_ T_illegal_op "BRL operand must be a BTR index"
             end
             else begin (* k_halt *)
               halted := true;
               ret := gprs.(3);
               taken := true
             end
           end
         done;
         (match trace with
          | Some ppf ->
            Format.fprintf ppf "%8d  pc=%-6d" !now pcv;
            for k = 0 to w - 1 do
              let i = insts.((pcv * w) + k) in
              if i.Isa.op <> Isa.NOP then
                if enabled.(k) then Format.fprintf ppf " | %a" Isa.pp_inst i
                else Format.fprintf ppf " | [%a]" Isa.pp_inst i
            done;
            Format.fprintf ppf "@."
          | None -> ());
         (match sink, ev_slots with
          | Some f, Some a ->
            f (Ev_issue { at = cycle; pc = pcv; slots = a; next_pc = !next_pc;
                          taken = !taken })
          | _ -> ());
         st.bundles <- st.bundles + 1;
         st.cycles <- st.cycles + 1;
         now := !now + 1;
         if !taken && not !halted then begin
           (* Taken branch: refill the front of the pipeline — one bubble
              per stage before execute (1 in the paper's 2-stage
              prototype). *)
           (match sink with
            | Some f when bubbles > 0 ->
              f (Ev_stall { at = !now; pc = pcv; cause = S_branch;
                            cycles = bubbles })
            | _ -> ());
           st.branch_bubbles <- st.branch_bubbles + bubbles;
           st.cycles <- st.cycles + bubbles;
           now := !now + bubbles
         end;
         pc := !next_pc
       done
   with Trap (cause, msg) ->
     (* Graceful termination: freeze the architectural state, record the
        fault, and fall through to the normal result path.  [ret] reflects
        r3 at the trap so partial results remain observable. *)
     ret := gprs.(3);
     trap_info :=
       Some { tr_cause = cause; tr_pc = !pc; tr_cycle = st.cycles; tr_message = msg });
  { ret = !ret; stats = st; mem; gprs; trap = !trap_info }

let run_exn ?fuel ?trace ?sink ?tamper ?pre cfg ~image ~mem ?entry () =
  let r = run ?fuel ?trace ?sink ?tamper ?pre cfg ~image ~mem ?entry () in
  match r.trap with
  | None -> r
  | Some t ->
    raise
      (Sim_error
         (Diag.errorf
            ~code:("sim/trap-" ^ string_of_trap_cause t.tr_cause)
            ~context:
              [ ("pc", string_of_int t.tr_pc);
                ("cycle", string_of_int t.tr_cycle) ]
            "%a" pp_trap t))

let pp_stats ppf st =
  Format.fprintf ppf
    "@[<v>cycles          %d@,bundles         %d@,operations      %d@,\
     nop slots       %d@,squashed        %d@,operand stalls  %d@,\
     port stalls     %d@,branch bubbles  %d@,memory reads    %d@,\
     memory writes   %d@,ALU/LSU/CMPU/BRU %d/%d/%d/%d@,ILP             %.2f@]"
    st.cycles st.bundles st.ops st.nops st.squashed st.operand_stalls
    st.port_stalls st.branch_bubbles st.mem_reads st.mem_writes st.alu_ops
    st.lsu_ops st.cmpu_ops st.bru_ops (ilp st)
