(* epicc: the EPIC compiler driver.  Compiles EPIC-C to scheduled EPIC
   assembly (default), an encoded binary hex dump (--hex), or dumps the
   machine description the scheduler used (--mdes). *)

open Cmdliner

let run input cfg emit_hex emit_mdes no_opt no_pred stats =
  Cli_common.handle_errors @@ fun () ->
  let source = Cli_common.read_file input in
  if emit_mdes then
    print_string (Epic.Mdes.to_string (Epic.Mdes.of_config cfg))
  else begin
    let a =
      Epic.Toolchain.compile_epic cfg ~source
        ~opt:(if no_opt then Epic.Toolchain.O0 else Epic.Toolchain.O1)
        ~predication:(not no_pred) ()
    in
    if emit_hex then
      Array.iter (fun w -> Printf.printf "%016Lx\n" w) a.Epic.Toolchain.ea_words
    else print_string (Epic.Asm.Text.to_string a.Epic.Toolchain.ea_unit);
    if stats then begin
      let s = a.Epic.Toolchain.ea_sched in
      Printf.eprintf "blocks %d, operations %d, bundles %d, nop slots %d\n"
        s.Epic.Sched.Sched.st_blocks s.Epic.Sched.Sched.st_insts
        s.Epic.Sched.Sched.st_bundles
        (Epic.Asm.Aunit.nop_count a.Epic.Toolchain.ea_image);
      let area = Epic.Area.estimate cfg in
      Format.eprintf "%a@." Epic.Area.pp area
    end
  end

let cmd =
  let emit_hex = Arg.(value & flag & info [ "hex" ] ~doc:"Emit the encoded binary as hex words.") in
  let emit_mdes = Arg.(value & flag & info [ "mdes" ] ~doc:"Dump the machine description and exit.") in
  let no_opt = Arg.(value & flag & info [ "O0" ] ~doc:"Disable the optimiser.") in
  let no_pred = Arg.(value & flag & info [ "no-predication" ] ~doc:"Disable if-conversion.") in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print scheduling and area statistics to stderr.") in
  Cmd.v
    (Cmd.info "epicc" ~doc:"Compile EPIC-C for the customisable EPIC processor")
    Term.(const run $ Cli_common.input_term $ Cli_common.config_term $ emit_hex
          $ emit_mdes $ no_opt $ no_pred $ stats)

let () = exit (Cmd.eval cmd)
