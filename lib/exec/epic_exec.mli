(** Parallel campaign engine: a Domain-based job pool with deterministic
    result ordering, and a keyed memo cache for compiled artifacts.

    Every campaign in the repository — [epic_explore] sweeps, [bench]
    tables, [epicfault] injection runs — is a set of hundreds of
    independent simulations.  {!Pool} fans them out across OCaml 5
    domains while keeping the observable output {e bit-identical} to a
    sequential run: jobs are identified by their index, results land in
    an index-keyed array, and the first (lowest-index) failure is the one
    re-raised, exactly as a sequential loop would.

    {b Immutability contract.}  The pool provides no isolation: job
    functions run concurrently in one heap.  Callers must only share
    read-only data between jobs.  The toolchain's artifacts honour this
    contract ({!Epic_sim.run} never writes the image or the
    configuration — see its interface; fault injection copies the image
    and memory per run), which is what makes the campaign layers safe to
    parallelise.  Requires OCaml >= 5.0 ([Domain]). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default for every [--jobs]
    flag. *)

module Pool : sig
  val run : ?jobs:int -> int -> (int -> 'a) -> 'a array
  (** [run ~jobs n f] computes [[| f 0; ...; f (n-1) |]].  With
      [jobs <= 1] (or [n <= 1]) this is a plain sequential loop in index
      order.  Otherwise [jobs] domains (capped at [n]) self-schedule job
      indices from a shared queue — idle domains keep pulling work, so
      load balances like work stealing — and each result is stored at its
      job's index: the returned array never depends on execution order.

      If jobs raise, the remaining jobs still run, and the exception of
      the {e lowest-index} failing job is re-raised — the same exception
      a sequential loop would have surfaced first.  [jobs] defaults to
      {!default_jobs}.
      @raise Invalid_argument on [n < 0]. *)

  val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
  (** [map ~jobs f xs] is [List.map f xs] evaluated by {!run}: same
      order, same first-error semantics. *)
end

module Cache : sig
  type 'a t
  (** A domain-safe memo table from string keys to values.  Concurrent
      lookups of the same key block until the first requester finishes
      computing, so a value is computed once per key — including when a
      parallel sweep requests it from every domain at the same time.  A
      computation that raises is also memoised: every requester of that
      key re-raises the same exception (deterministic failures). *)

  type stats = { hits : int; misses : int }

  val create : ?name:string -> unit -> 'a t
  (** [name] (default ["cache"]) labels the stats in reports. *)

  val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
  (** [find_or_add t key f] returns the cached value for [key], computing
      it with [f] on the first request.  A hit returns the physically
      identical value.  Waiting for an in-flight computation counts as a
      hit. *)

  val stats : 'a t -> stats
  val name : 'a t -> string
  val length : 'a t -> int
  val reset : 'a t -> unit
  (** Drop every entry and zero the counters. *)

  val snapshot : 'a t -> stats
  (** Atomic read of the hit/miss counters (alias of {!stats}, named for
      observation points: the serving daemon and the tests take
      snapshots before and after a batch and diff them, never peeking at
      internals). *)

  val reset_stats : 'a t -> unit
  (** Zero the hit/miss counters but keep every cached entry — the
      warm-cache observation primitive: reset, replay, snapshot. *)

  val hit_rate : stats -> float
  (** [hits / (hits + misses)]; [0.] when no traffic was recorded. *)

  val stats_to_json : stats -> Epic_profile.Json.t
end

module Workq : sig
  (** A {e persistent} worker pool: [jobs] domains that outlive any one
      fan-out.  {!Pool} spawns domains per call — right for campaigns,
      wrong for a long-running daemon dispatching small batches.  Any
      thread (systhread or domain) may {!submit} thunks; idle workers
      execute them in FIFO submission order.  Completion signalling is
      the submitter's job: a task typically writes a completion cell and
      signals the submitter's own condition variable, which is what lets
      one queue serve many independent submitters (the concurrent
      daemon's connections) without the queue knowing about response
      routing.

      Tasks must not let exceptions escape (the pool swallows them as a
      last resort so a worker can never die); wrap the real work and
      route failures through the completion cell. *)

  type t

  val create : ?jobs:int -> unit -> t
  (** Spawn [jobs] (default {!default_jobs}) worker domains.
      @raise Invalid_argument on [jobs < 1]. *)

  val submit : t -> (unit -> unit) -> unit
  (** Enqueue a task.  @raise Invalid_argument after {!shutdown}. *)

  val live : t -> int
  (** Tasks submitted but not yet finished (queued + running). *)

  val shutdown : t -> unit
  (** Graceful stop: pending tasks still run, workers exit once the
      queue drains, and every worker domain is joined. *)
end

module Backoff : sig
  (** Deterministic retry backoff for clients of an overloaded service
      (the [epicload] retry policy, the chaos harness).  Exponential
      windows with {e seeded} full jitter: the delay is a pure function
      of [(seed, key, attempt)], so replayed campaigns sleep identical
      amounts while distinct request keys de-synchronise within each
      window. *)

  val delay_ms :
    ?base_ms:float ->
    ?cap_ms:float ->
    seed:int ->
    key:int ->
    attempt:int ->
    unit ->
    float
  (** Delay before retry number [attempt] (1-based; [attempt <= 0] is
      [0.]) of request [key].  The window doubles per attempt from
      [base_ms] (default 25) and is capped at [cap_ms] (default 2000);
      the returned delay is uniform in (0, window]. *)
end

(** {1 Campaign reporting}

    Wall-time and cache-effectiveness observability for the campaign
    layers, rendered through {!Epic_profile}'s JSON values so [bench
    --json] dumps compose with the existing reporting. *)

type campaign_stats = {
  cs_label : string;                    (** Campaign name (e.g. ["table1"]). *)
  cs_jobs : int;                        (** Domains used. *)
  cs_tasks : int;                       (** Independent jobs executed. *)
  cs_wall_s : float;                    (** Wall-clock seconds. *)
  cs_caches : (string * Cache.stats) list;  (** Per-cache hit/miss counts. *)
  cs_notes : (string * int) list;
      (** Campaign-specific counters appended to the stats line (e.g. the
          explorer's skipped-invalid and pruned point counts). *)
}

val now : unit -> float
(** [Unix.gettimeofday] — wall clock for campaign timing. *)

val pp_campaign_stats : Format.formatter -> campaign_stats -> unit
(** One line: label, tasks, jobs, wall time, cache hit rates. *)

val campaign_stats_to_json : campaign_stats -> Epic_profile.Json.t

val run_campaign :
  ?quiet:bool ->
  label:string ->
  jobs:int ->
  ?caches:(unit -> (string * Cache.stats) list) ->
  ?notes:('a -> (string * int) list) ->
  tasks:('a -> int) ->
  (unit -> 'a) ->
  'a * campaign_stats
(** The campaign convention shared by every CLI and the bench harness:
    time [f ()] on the wall clock, read the cache counters {e after} it
    finishes ([caches], default none), derive the task count and any
    extra counters ([notes], default none) from the result, and — unless
    [quiet] — print the one-line {!pp_campaign_stats} summary to
    {b stderr}, so stdout stays byte-identical across [--jobs] values. *)
