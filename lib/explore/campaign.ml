(* The design-space exploration campaign: configuration axes x candidate
   custom-instruction sets, costed by the calibrated area/clock model and
   the cycle-level simulator, pruned incrementally by a Pareto archive
   ({!Pareto}) plus a cheap lower-bound cut, and persisted through the
   serving daemon's on-disk {!Epic_serve.Store}.

   Determinism contract (the explore-smoke CI gate): stdout and the
   [--json] frontier document are byte-identical for any [--jobs] value
   and for cold vs warm caches.  The campaign therefore runs in {e
   waves}: pruning decisions for a wave use only the archive and
   best-cycle state frozen at the end of the previous wave, evaluations
   fan out over {!Epic_exec.Pool} (index-ordered results), and the
   archive is folded in canonical point order.  Volatile observability —
   wall time, hit rates — never enters the document; it goes to stderr
   via {!Epic_exec.run_campaign} and the optional [--stats-json].

   The lower-bound cut is a {e heuristic}: a point is skipped when even
   an optimistic execution time (90 % of the best cycle count seen so
   far for the workload, at this configuration's clock) is already
   weakly dominated by the archive.  More resources occasionally cost
   cycles (deeper pipelines pay refill), so [--no-prune] disables the
   cut for exact sweeps; skip decisions depend only on frozen wave
   state, so either mode is deterministic. *)

module Config = Epic_config
module Area = Epic_area
module S = Epic_workloads.Sources
module CG = Epic.Custom_gen
module Json = Epic_profile.Json
module Store = Epic_serve.Store
module Exec = Epic_exec
module Sim = Epic_sim
module Toolchain = Epic.Toolchain

(* ------------------------------------------------------------------ *)
(* The swept space.                                                    *)

type axes = {
  ax_alus : int list;
  ax_issues : int list;
  ax_gprs : int list;      (* <= 64: dst_bits = 6 caps the file *)
  ax_preds : int list;
  ax_btrs : int list;
  ax_payloads : int list;  (* src_bits — immediate payload width *)
  ax_stages : int list;    (* pipeline depth, 2-4 *)
}

(* Defaults span the paper's published 1-4-ALU sweep plus every
   customisation axis the config header exposes.  src_bits = 20 at
   4-issue exceeds the memory-bandwidth constraint on purpose: the grid
   deliberately contains invalid corners so their count is visible on
   the campaign stats line. *)
let default_axes = {
  ax_alus = [ 1; 2; 3; 4 ];
  ax_issues = [ 1; 2; 3; 4 ];
  ax_gprs = [ 32; 48; 64 ];
  ax_preds = [ 16; 32 ];
  ax_btrs = [ 8; 16 ];
  ax_payloads = [ 12; 16; 20 ];
  ax_stages = [ 2; 3; 4 ];
}

type point = {
  p_workload : string;
  p_cands : int;    (* candidate-set prefix length, 0 = base ISA *)
  p_alus : int;
  p_issue : int;
  p_gprs : int;
  p_preds : int;
  p_btrs : int;
  p_payload : int;
  p_stages : int;
}

type options = {
  o_budget : int;          (* points to evaluate (grid sampled if larger) *)
  o_seed : int;            (* sampling seed *)
  o_jobs : int;            (* 0 = Epic_exec.default_jobs *)
  o_wave : int;            (* points per wave (pruning granularity) *)
  o_prune : bool;          (* lower-bound cut on/off *)
  o_max_cands : int;       (* candidate prefixes swept: 0..max_cands *)
  o_max_ops : int;         (* max fused operations per candidate *)
  o_cache_dir : string option;
  o_cache_entries : int option;
  o_resume : bool;         (* restore wave progress from the manifest *)
  o_workloads : S.benchmark list;
  o_axes : axes;
}

let default_options = {
  o_budget = 10_000;
  o_seed = 1;
  o_jobs = 0;
  o_wave = 256;
  o_prune = true;
  o_max_cands = 3;
  o_max_ops = 3;
  o_cache_dir = None;
  o_cache_entries = None;
  o_resume = false;
  o_workloads = S.all ();
  o_axes = default_axes;
}

(* ------------------------------------------------------------------ *)
(* Per-point evaluation record (the Pareto payload).                   *)

type outcome = Measured of int | Failed of string

type eval = {
  e_point : point;
  e_slices : int;
  e_brams : int;
  e_mults : int;
  e_clock : float;   (* achieved clock (MHz) from the area model *)
  e_outcome : outcome;
}

let time_ms ~cycles ~clock = float_of_int cycles /. (clock *. 1000.)

type counts = {
  mutable c_evaluated : int;   (* measured (computed or cache hit) *)
  mutable c_pruned : int;      (* skipped by the lower-bound cut *)
  mutable c_invalid : int;     (* rejected by Config.validate *)
  mutable c_errors : int;      (* valid config, failed compile/run *)
  mutable c_kept : int;        (* archive verdicts over measured points *)
  mutable c_dominated : int;
  mutable c_duplicates : int;
}

let zero_counts () =
  { c_evaluated = 0; c_pruned = 0; c_invalid = 0; c_errors = 0; c_kept = 0;
    c_dominated = 0; c_duplicates = 0 }

(* ------------------------------------------------------------------ *)
(* Workload preparation: front-compile once, enumerate candidates once,
   pre-build the rewritten program for every candidate prefix. *)

type prepared = {
  w_bm : S.benchmark;
  w_digest : string;                       (* md5 of the source *)
  w_cands : CG.candidate list;             (* ranked, <= max_cands *)
  w_progs : (Epic_mir.Ir.program * string) array;
      (* index = prefix length; program + candidate-set digest *)
}

let md5 s = Digest.to_hex (Digest.string s)

let rec prefix n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: prefix (n - 1) rest

let prepare ~max_cands ~max_ops (bm : S.benchmark) =
  let program = Epic_opt.for_epic (Epic_cfront.compile bm.S.bm_source) in
  let cands = Subgraph.enumerate ~max_ops ~top:max_cands program in
  let progs =
    Array.init
      (List.length cands + 1)
      (fun k ->
        let chosen = prefix k cands in
        let digest =
          if k = 0 then "-"
          else
            md5
              (String.concat ";"
                 (List.map
                    (fun (c : CG.candidate) -> CG.expr_to_string c.CG.cg_expr)
                    chosen))
        in
        if k = 0 then (program, digest)
        else (fst (Subgraph.apply program chosen), digest))
  in
  { w_bm = bm; w_digest = md5 bm.S.bm_source; w_cands = cands;
    w_progs = progs }

let config_of (w : prepared) (p : point) =
  let base =
    { Config.default with
      n_alus = p.p_alus; issue_width = p.p_issue; n_gprs = p.p_gprs;
      n_preds = p.p_preds; n_btrs = p.p_btrs; src_bits = p.p_payload;
      pipeline_stages = p.p_stages }
  in
  List.fold_left
    (fun cfg c -> Config.add_custom_op cfg (CG.to_custom_op c))
    base
    (prefix p.p_cands w.w_cands)

(* ------------------------------------------------------------------ *)
(* The grid, in canonical order (workload-major, then candidate prefix,
   then each axis in the order given).  Sampling, pruning and archive
   folding all follow this order — the root of byte-identical output. *)

let grid (o : options) (ws : prepared list) =
  let ax = o.o_axes in
  let points = ref [] in
  List.iter
    (fun w ->
      for k = 0 to Array.length w.w_progs - 1 do
        List.iter (fun alus ->
        List.iter (fun issue ->
        List.iter (fun gprs ->
        List.iter (fun preds ->
        List.iter (fun btrs ->
        List.iter (fun payload ->
        List.iter (fun stages ->
          points :=
            { p_workload = w.w_bm.S.bm_name; p_cands = k; p_alus = alus;
              p_issue = issue; p_gprs = gprs; p_preds = preds; p_btrs = btrs;
              p_payload = payload; p_stages = stages }
            :: !points)
          ax.ax_stages) ax.ax_payloads) ax.ax_btrs) ax.ax_preds)
          ax.ax_gprs) ax.ax_issues) ax.ax_alus
      done)
    ws;
  Array.of_list (List.rev !points)

(* Seeded sampling without replacement: partial Fisher-Yates driven by a
   splitmix-style mixer, selected indices re-sorted into canonical
   order.  A pure function of (seed, budget, n). *)
let mix64 (x : int64) =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

let sample ~seed ~budget n =
  if budget >= n then Array.init n (fun i -> i)
  else begin
    let a = Array.init n (fun i -> i) in
    let state = ref (Int64.of_int ((seed * 2) + 1)) in
    let rand_below m =
      state := Int64.add !state 0x9E3779B97F4A7C15L;
      Int64.to_int
        (Int64.rem
           (Int64.logand (mix64 !state) Int64.max_int)
           (Int64.of_int m))
    in
    for i = 0 to budget - 1 do
      let j = i + rand_below (n - i) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    let chosen = Array.sub a 0 budget in
    Array.sort compare chosen;
    chosen
  end

(* ------------------------------------------------------------------ *)
(* Point evaluation through the disk store.  The payload is a tiny
   deterministic JSON document; cold and warm runs therefore agree
   byte-for-byte.  Errors are cached too — they are deterministic
   functions of the inputs, so recomputing them would only waste the
   warm pass. *)

let payload_of_outcome = function
  | Measured cycles -> Json.to_string (Json.Obj [ ("cycles", Json.Int cycles) ])
  | Failed msg -> Json.to_string (Json.Obj [ ("error", Json.Str msg) ])

let outcome_of_payload s =
  match Json.parse s with
  | Ok j -> (
    match Json.member "cycles" j with
    | Some (Json.Int n) -> Measured n
    | _ -> (
      match Json.member "error" j with
      | Some (Json.Str e) -> Failed e
      | _ -> Failed "malformed cache payload"))
  | Error e -> Failed ("malformed cache payload: " ^ e)

(* Same key discipline as epicd ({!Epic_serve.Protocol.cache_key}):
   operation | config fingerprint | source digest | parameters.  The
   fingerprint covers every architectural field including the custom
   operations; the candidate digest additionally pins their exact
   expressions (names hash only 24 bits of them). *)
let store_key (w : prepared) (cfg : Config.t) ~cdigest =
  Printf.sprintf "explore-point|v1|%s|src=%s|cands=%s"
    (Config.fingerprint cfg) w.w_digest cdigest

let compute_outcome (w : prepared) (cfg : Config.t) ~key (mir : Epic_mir.Ir.program) =
  try
    let a = Toolchain.compile_epic_mir ~key cfg ~mir () in
    let r = Toolchain.run_epic a in
    match r.Sim.trap with
    | Some t -> Failed (Format.asprintf "trap: %a" Sim.pp_trap t)
    | None ->
      if r.Sim.ret <> w.w_bm.S.bm_expected land 0xFFFFFFFF then
        Failed
          (Printf.sprintf "wrong result: %#x, expected %#x" r.Sim.ret
             (w.w_bm.S.bm_expected land 0xFFFFFFFF))
      else Measured r.Sim.stats.Sim.cycles
  with
  | Epic_asm.Asm_error d -> Failed ("asm: " ^ Epic_diag.to_string d)
  | Epic_diag.Error d -> Failed (Epic_diag.to_string d)
  | Failure m | Invalid_argument m -> Failed m
  | e -> Failed (Printexc.to_string e)

let evaluate ?store (w : prepared) (p : point) =
  let cfg = config_of w p in
  let area = Area.estimate cfg in
  let mir, cdigest = w.w_progs.(p.p_cands) in
  let key = store_key w cfg ~cdigest in
  let payload =
    match store with
    | Some st ->
      fst (Store.find_or_add st ~key (fun () ->
               payload_of_outcome (compute_outcome w cfg ~key mir)))
    | None -> payload_of_outcome (compute_outcome w cfg ~key mir)
  in
  { e_point = p; e_slices = area.Area.slices; e_brams = area.Area.brams;
    e_mults = area.Area.multipliers; e_clock = area.Area.clock_mhz;
    e_outcome = outcome_of_payload payload }

(* ------------------------------------------------------------------ *)
(* Campaign manifest: wave-granular progress persisted next to the
   store's entry directory (atomic tmp+rename, like the store's own
   writes), so an interrupted campaign resumes at the last completed
   wave under [--resume] — archives, best-cycle table and counters are
   restored instead of re-read point by point.  The manifest is bound to
   a digest of every parameter that shapes the campaign; resuming with
   different parameters is an error, not silent corruption. *)

let params_digest (o : options) (ws : prepared list) =
  let ax = o.o_axes in
  let ints l = String.concat "," (List.map string_of_int l) in
  md5
    (String.concat "|"
       ([ string_of_int o.o_budget; string_of_int o.o_seed;
          string_of_int o.o_wave; string_of_bool o.o_prune;
          string_of_int o.o_max_cands; string_of_int o.o_max_ops;
          ints ax.ax_alus; ints ax.ax_issues; ints ax.ax_gprs;
          ints ax.ax_preds; ints ax.ax_btrs; ints ax.ax_payloads;
          ints ax.ax_stages ]
       @ List.concat_map
           (fun w -> [ w.w_digest; snd w.w_progs.(Array.length w.w_progs - 1) ])
           ws))

let point_to_json (p : point) =
  Json.Obj
    [ ("workload", Json.Str p.p_workload); ("cands", Json.Int p.p_cands);
      ("alus", Json.Int p.p_alus); ("issue", Json.Int p.p_issue);
      ("gprs", Json.Int p.p_gprs); ("preds", Json.Int p.p_preds);
      ("btrs", Json.Int p.p_btrs); ("payload", Json.Int p.p_payload);
      ("stages", Json.Int p.p_stages) ]

let point_of_json j =
  let int k =
    match Json.member k j with
    | Some (Json.Int n) -> n
    | _ -> invalid_arg ("explore manifest: missing field " ^ k)
  in
  let str k =
    match Json.member k j with
    | Some (Json.Str s) -> s
    | _ -> invalid_arg ("explore manifest: missing field " ^ k)
  in
  { p_workload = str "workload"; p_cands = int "cands"; p_alus = int "alus";
    p_issue = int "issue"; p_gprs = int "gprs"; p_preds = int "preds";
    p_btrs = int "btrs"; p_payload = int "payload"; p_stages = int "stages" }

let manifest_path store =
  Filename.concat (Store.dir store) "explore-manifest.json"

let write_manifest store ~params ~waves_done ~counts ~cbest ~archives =
  let c = counts in
  let doc =
    Json.Obj
      [ ("params", Json.Str params);
        ("waves_done", Json.Int waves_done);
        ( "counts",
          Json.Obj
            [ ("evaluated", Json.Int c.c_evaluated);
              ("pruned", Json.Int c.c_pruned);
              ("invalid", Json.Int c.c_invalid);
              ("errors", Json.Int c.c_errors);
              ("kept", Json.Int c.c_kept);
              ("dominated", Json.Int c.c_dominated);
              ("duplicates", Json.Int c.c_duplicates) ] );
        ( "cbest",
          Json.Obj
            (List.map (fun (wname, n) -> (wname, Json.Int n)) cbest) );
        ( "archives",
          Json.Obj
            (List.map
               (fun (wname, (points : eval Pareto.point list)) ->
                 ( wname,
                   Json.List
                     (List.map
                        (fun (pt : eval Pareto.point) ->
                          let cycles =
                            match pt.Pareto.pt_data.e_outcome with
                            | Measured n -> n
                            | Failed _ -> 0
                          in
                          Json.Obj
                            [ ("point", point_to_json pt.Pareto.pt_data.e_point);
                              ("cycles", Json.Int cycles) ])
                        points) ))
               archives) ) ]
  in
  let path = manifest_path store in
  let tmp = Filename.concat (Store.dir store) ".explore-manifest.tmp" in
  let oc = open_out_bin tmp in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

(* Restore an archive point: times and areas are recomputed from the
   stored cycle count and config, never parsed from floats, so the
   restored archive is bit-identical to the one the interrupted campaign
   held. *)
let load_manifest store ~params (ws : prepared list) =
  let path = manifest_path store in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let body = really_input_string ic len in
    close_in ic;
    match Json.parse body with
    | Error e ->
      Epic_diag.raisef ~code:"explore/manifest-corrupt"
        "cannot parse campaign manifest %s: %s" path e
    | Ok doc ->
      (match Json.member "params" doc with
       | Some (Json.Str p) when p = params -> ()
       | _ ->
         Epic_diag.raisef ~code:"explore/manifest-mismatch"
           "manifest %s was written by a campaign with different \
            parameters; rerun without --resume (or remove the file)"
           path);
      let int_field j k =
        match Json.member k j with Some (Json.Int n) -> n | _ -> 0
      in
      let waves_done = int_field doc "waves_done" in
      let counts = zero_counts () in
      (match Json.member "counts" doc with
       | Some cj ->
         counts.c_evaluated <- int_field cj "evaluated";
         counts.c_pruned <- int_field cj "pruned";
         counts.c_invalid <- int_field cj "invalid";
         counts.c_errors <- int_field cj "errors";
         counts.c_kept <- int_field cj "kept";
         counts.c_dominated <- int_field cj "dominated";
         counts.c_duplicates <- int_field cj "duplicates"
       | None -> ());
      let cbest =
        match Json.member "cbest" doc with
        | Some (Json.Obj kvs) ->
          List.filter_map
            (function name, Json.Int n -> Some (name, n) | _ -> None)
            kvs
        | _ -> []
      in
      let archives =
        match Json.member "archives" doc with
        | Some (Json.Obj kvs) ->
          List.filter_map
            (fun (wname, aj) ->
              match (List.find_opt (fun w -> w.w_bm.S.bm_name = wname) ws, aj)
              with
              | Some w, Json.List pts ->
                let evals =
                  List.map
                    (fun pj ->
                      let p =
                        match Json.member "point" pj with
                        | Some j -> point_of_json j
                        | None -> invalid_arg "explore manifest: missing point"
                      in
                      let cycles = int_field pj "cycles" in
                      let area = Area.estimate (config_of w p) in
                      let e =
                        { e_point = p; e_slices = area.Area.slices;
                          e_brams = area.Area.brams;
                          e_mults = area.Area.multipliers;
                          e_clock = area.Area.clock_mhz;
                          e_outcome = Measured cycles }
                      in
                      { Pareto.pt_cost = e.e_slices;
                        pt_time = time_ms ~cycles ~clock:e.e_clock;
                        pt_data = e })
                    pts
                in
                Some (wname, Pareto.of_list evals)
              | _ -> None)
            kvs
        | _ -> []
      in
      Some (waves_done, counts, cbest, archives)
  end

(* ------------------------------------------------------------------ *)
(* The campaign proper.                                                *)

type result = {
  r_doc : Json.t;   (* the deterministic frontier document (--json) *)
  r_archives : (string * eval Pareto.point list) list;
  r_candidates : (string * CG.candidate list) list;
  r_counts : counts;
  r_grid : int;
  r_sampled : int;
  r_waves : int;
  r_resumed_waves : int;
  r_store : Store.t option;
}

let frontier_doc (o : options) (ws : prepared list) ~counts ~grid_n ~sampled_n
    archives =
  let ax = o.o_axes in
  let ints l = Json.List (List.map (fun i -> Json.Int i) l) in
  let c = counts in
  Json.Obj
    [ ( "campaign",
        Json.Obj
          [ ("budget", Json.Int o.o_budget); ("seed", Json.Int o.o_seed);
            ("grid", Json.Int grid_n); ("sampled", Json.Int sampled_n);
            ("wave", Json.Int o.o_wave); ("prune", Json.Bool o.o_prune);
            ("max_cands", Json.Int o.o_max_cands);
            ("max_ops", Json.Int o.o_max_ops);
            ( "axes",
              Json.Obj
                [ ("alus", ints ax.ax_alus); ("issues", ints ax.ax_issues);
                  ("gprs", ints ax.ax_gprs); ("preds", ints ax.ax_preds);
                  ("btrs", ints ax.ax_btrs); ("payloads", ints ax.ax_payloads);
                  ("stages", ints ax.ax_stages) ] ) ] );
      ( "workloads",
        Json.List
          (List.map
             (fun w ->
               let wname = w.w_bm.S.bm_name in
               let archive =
                 Option.value ~default:Pareto.empty
                   (List.assoc_opt wname archives)
               in
               Json.Obj
                 [ ("name", Json.Str wname);
                   ("source_digest", Json.Str w.w_digest);
                   ( "candidates",
                     Json.List
                       (List.map
                          (fun (cand : CG.candidate) ->
                            Json.Obj
                              [ ("name", Json.Str cand.CG.cg_name);
                                ( "expr",
                                  Json.Str (CG.expr_to_string cand.CG.cg_expr)
                                );
                                ("ops", Json.Int cand.CG.cg_ops);
                                ("inputs", Json.Int cand.CG.cg_inputs);
                                ("saved_ops", Json.Int cand.CG.cg_saved_ops) ])
                          w.w_cands) );
                   ( "frontier",
                     Json.List
                       (List.map
                          (fun (pt : eval Pareto.point) ->
                            let e = pt.Pareto.pt_data in
                            let p = e.e_point in
                            let cycles =
                              match e.e_outcome with
                              | Measured n -> n
                              | Failed _ -> 0
                            in
                            Json.Obj
                              [ ("slices", Json.Int e.e_slices);
                                ("brams", Json.Int e.e_brams);
                                ("multipliers", Json.Int e.e_mults);
                                ("clock_mhz", Json.Float e.e_clock);
                                ("cycles", Json.Int cycles);
                                ("time_ms", Json.Float pt.Pareto.pt_time);
                                ("alus", Json.Int p.p_alus);
                                ("issue", Json.Int p.p_issue);
                                ("gprs", Json.Int p.p_gprs);
                                ("preds", Json.Int p.p_preds);
                                ("btrs", Json.Int p.p_btrs);
                                ("payload", Json.Int p.p_payload);
                                ("stages", Json.Int p.p_stages);
                                ( "candidates",
                                  Json.List
                                    (List.map
                                       (fun (cand : CG.candidate) ->
                                         Json.Str cand.CG.cg_name)
                                       (prefix p.p_cands w.w_cands)) ) ])
                          (Pareto.points archive)) ) ])
             ws) );
      ( "stats",
        Json.Obj
          [ ("evaluated", Json.Int c.c_evaluated);
            ("pruned", Json.Int c.c_pruned);
            ("invalid", Json.Int c.c_invalid);
            ("errors", Json.Int c.c_errors);
            ("kept", Json.Int c.c_kept);
            ("dominated", Json.Int c.c_dominated);
            ("duplicates", Json.Int c.c_duplicates) ] ) ]

let run ?(progress = fun (_ : string) -> ()) (o : options) =
  let store =
    Option.map
      (fun dir -> Store.open_ ?max_entries:o.o_cache_entries dir)
      o.o_cache_dir
  in
  let ws =
    List.map (prepare ~max_cands:o.o_max_cands ~max_ops:o.o_max_ops)
      o.o_workloads
  in
  let find_w name = List.find (fun w -> w.w_bm.S.bm_name = name) ws in
  let points = grid o ws in
  let grid_n = Array.length points in
  let chosen = sample ~seed:o.o_seed ~budget:o.o_budget grid_n in
  let sampled_n = Array.length chosen in
  let params = params_digest o ws in
  let counts = ref (zero_counts ()) in
  let archives = Hashtbl.create 8 in    (* workload -> eval Pareto.t *)
  let cbest = Hashtbl.create 8 in       (* workload -> best cycles *)
  let resumed_waves =
    match store with
    | Some st when o.o_resume -> (
      match load_manifest st ~params ws with
      | None -> 0
      | Some (waves_done, cts, cb, archs) ->
        counts := cts;
        List.iter (fun (n, v) -> Hashtbl.replace cbest n v) cb;
        List.iter (fun (n, a) -> Hashtbl.replace archives n a) archs;
        waves_done)
    | _ -> 0
  in
  let archive_of name =
    Option.value ~default:Pareto.empty (Hashtbl.find_opt archives name)
  in
  let n_waves = (sampled_n + o.o_wave - 1) / o.o_wave in
  for wave = resumed_waves to n_waves - 1 do
    let lo = wave * o.o_wave in
    let hi = min sampled_n (lo + o.o_wave) in
    (* Triage against the archive state frozen at the end of the
       previous wave: invalid points are counted out, the lower-bound
       cut skips points whose optimistic time is already dominated. *)
    let c = !counts in
    let batch = ref [] in
    for i = hi - 1 downto lo do
      let p = points.(chosen.(i)) in
      let w = find_w p.p_workload in
      let cfg = config_of w p in
      match Config.validate cfg with
      | Error _ -> c.c_invalid <- c.c_invalid + 1
      | Ok () ->
        let skip =
          o.o_prune
          && (match Hashtbl.find_opt cbest p.p_workload with
              | None -> false
              | Some best ->
                let area = Area.estimate cfg in
                let lb =
                  0.9
                  *. time_ms ~cycles:best ~clock:area.Area.clock_mhz
                in
                Pareto.covers (archive_of p.p_workload)
                  ~cost:area.Area.slices ~time:lb)
        in
        if skip then c.c_pruned <- c.c_pruned + 1
        else batch := (w, p) :: !batch
    done;
    (* Fan the wave out; results come back in batch order regardless of
       [jobs] (Epic_exec.Pool's contract). *)
    let evals =
      Exec.Pool.map
        ~jobs:(if o.o_jobs > 0 then o.o_jobs else Exec.default_jobs ())
        (fun (w, p) -> evaluate ?store w p)
        !batch
    in
    (* Fold in canonical order. *)
    List.iter
      (fun e ->
        c.c_evaluated <- c.c_evaluated + 1;
        match e.e_outcome with
        | Failed _ -> c.c_errors <- c.c_errors + 1
        | Measured cycles ->
          let wname = e.e_point.p_workload in
          (match Hashtbl.find_opt cbest wname with
           | Some best when best <= cycles -> ()
           | _ -> Hashtbl.replace cbest wname cycles);
          let pt =
            { Pareto.pt_cost = e.e_slices;
              pt_time = time_ms ~cycles ~clock:e.e_clock; pt_data = e }
          in
          let archive, verdict = Pareto.add (archive_of wname) pt in
          Hashtbl.replace archives wname archive;
          (match verdict with
           | Pareto.Kept -> c.c_kept <- c.c_kept + 1
           | Pareto.Dominated -> c.c_dominated <- c.c_dominated + 1
           | Pareto.Duplicate -> c.c_duplicates <- c.c_duplicates + 1))
      evals;
    (match store with
     | Some st ->
       write_manifest st ~params ~waves_done:(wave + 1) ~counts:c
         ~cbest:
           (List.filter_map
              (fun w ->
                Option.map
                  (fun v -> (w.w_bm.S.bm_name, v))
                  (Hashtbl.find_opt cbest w.w_bm.S.bm_name))
              ws)
         ~archives:
           (List.filter_map
              (fun w ->
                Option.map
                  (fun a -> (w.w_bm.S.bm_name, Pareto.points a))
                  (Hashtbl.find_opt archives w.w_bm.S.bm_name))
              ws)
     | None -> ());
    progress
      (Printf.sprintf "wave %d/%d: %d evaluated, %d pruned, %d invalid"
         (wave + 1) n_waves c.c_evaluated c.c_pruned c.c_invalid)
  done;
  let archive_list =
    List.map
      (fun w ->
        (w.w_bm.S.bm_name, Pareto.points (archive_of w.w_bm.S.bm_name)))
      ws
  in
  { r_doc =
      frontier_doc o ws ~counts:!counts ~grid_n ~sampled_n
        (List.map
           (fun w ->
             (w.w_bm.S.bm_name, archive_of w.w_bm.S.bm_name))
           ws);
    r_archives = archive_list;
    r_candidates = List.map (fun w -> (w.w_bm.S.bm_name, w.w_cands)) ws;
    r_counts = !counts;
    r_grid = grid_n;
    r_sampled = sampled_n;
    r_waves = n_waves;
    r_resumed_waves = min resumed_waves n_waves;
    r_store = store }
