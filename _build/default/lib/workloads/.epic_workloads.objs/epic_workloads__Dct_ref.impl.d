lib/workloads/dct_ref.ml: Array Float
