lib/arm/arm_codegen.ml: Arm_isa Epic_mir Epic_regalloc Format List Printf
