lib/mir/memmap.ml: Array Bytes Char Ir List Printf
