(* Two-tier engine tests: the fast loop and the instrumented loop must
   be observationally identical (stats, return value, final memory and
   registers, trap records) on every workload and on trapping programs;
   predecode must agree with the per-instruction ISA metadata it
   flattens; campaigns must not depend on who built the predecode; and a
   predecode for the wrong image or config must be rejected. *)

module Isa = Epic.Isa
module Config = Epic.Config
module Sim = Epic.Sim
module Pre = Epic.Sim.Predecode
module A = Epic.Asm.Aunit
module Text = Epic.Asm.Text
module Memmap = Epic.Memmap
module S = Epic.Workloads.Sources
module T = Epic.Toolchain
module Fault = Epic.Fault
module D = Epic.Difftest

let cfg = Config.default

let image_of c text = A.resolve c (Text.of_string text)

let entry_of (image : A.image) =
  match List.assoc_opt "_start" image.A.im_symbols with
  | Some e -> e
  | None -> 0

(* Full observational equality of two runs. *)
let check_same_result label (a : Sim.result) (b : Sim.result) =
  Alcotest.(check int) (label ^ ": ret") a.Sim.ret b.Sim.ret;
  Alcotest.(check bool) (label ^ ": stats") true (a.Sim.stats = b.Sim.stats);
  Alcotest.(check bool) (label ^ ": mem") true (Bytes.equal a.Sim.mem b.Sim.mem);
  Alcotest.(check bool) (label ^ ": gprs") true (a.Sim.gprs = b.Sim.gprs);
  Alcotest.(check bool) (label ^ ": trap") true (a.Sim.trap = b.Sim.trap)

(* ---- fast path == instrumented path on the four workloads ---------- *)

let cache = T.Compile_cache.create ()

let benchmarks () =
  [ S.sha_benchmark ~bytes:64 ();
    S.aes_benchmark ~iters:1 ();
    S.dct_benchmark ~width:8 ~height:8 ();
    S.dijkstra_benchmark ~nodes:6 () ]

let test_workload_equivalence () =
  List.iter
    (fun (bm : S.benchmark) ->
      List.iter
        (fun alus ->
          let label = Printf.sprintf "%s/%d-alu" bm.S.bm_name alus in
          let c = Config.with_alus alus in
          let a = T.compile_epic ~cache c ~source:bm.S.bm_source () in
          let image = a.T.ea_image in
          let entry = entry_of image in
          let mem0 = Memmap.init_memory a.T.ea_layout a.T.ea_mir in
          let go ?sink ?pre () =
            Sim.run ?sink ?pre c ~image ~mem:(Bytes.copy mem0) ~entry ()
          in
          let fast = go () in
          check_same_result (label ^ " instrumented")
            fast (go ~sink:ignore ());
          check_same_result (label ^ " fast+pre") fast (go ~pre:a.T.ea_pre ());
          check_same_result (label ^ " instrumented+pre")
            fast (go ~sink:ignore ~pre:a.T.ea_pre ()))
        [ 1; 2; 3; 4 ])
    (benchmarks ())

(* ---- trap equivalence on handwritten programs ---------------------- *)

(* Run under both engines (optionally with an explicit predecode) and
   demand identical trap records — cause, pc, cycle and message. *)
let check_trap_equiv ?(cfg = cfg) ?fuel label image ~mem_bytes =
  let go ?sink () =
    Sim.run ?fuel ?sink ~pre:(Pre.of_image cfg image) cfg ~image
      ~mem:(Bytes.make mem_bytes '\000') ~entry:(entry_of image) ()
  in
  let fast = go () in
  check_same_result label fast (go ~sink:ignore ());
  fast

let test_trap_equivalence () =
  let r =
    check_trap_equiv "bad pc"
      (image_of cfg "_start:\n{ PBRR b0, #999 }\n{ BRU #0 }\n") ~mem_bytes:64
  in
  (match r.Sim.trap with
   | Some t -> Alcotest.(check int) "bad pc target" 999 t.Sim.tr_pc
   | None -> Alcotest.fail "expected a bad-pc trap");
  let r =
    check_trap_equiv "mem bounds"
      (image_of cfg "_start:\n{ MOV r4, #1000 }\n{ LDW r3, r4, #0 }\n{ HALT }\n")
      ~mem_bytes:64
  in
  (match r.Sim.trap with
   | Some t ->
     Alcotest.(check bool) "mem-bounds cause" true
       (t.Sim.tr_cause = Sim.T_mem_bounds)
   | None -> Alcotest.fail "expected a mem-bounds trap");
  let r =
    check_trap_equiv "fuel" ~fuel:50_000
      (image_of cfg "_start:\n{ PBRR b0, #0 }\nloop:\n{ BRU #0 }\n")
      ~mem_bytes:64
  in
  (match r.Sim.trap with
   | Some t ->
     Alcotest.(check bool) "fuel cause" true (t.Sim.tr_cause = Sim.T_fuel)
   | None -> Alcotest.fail "expected a fuel trap")

let test_trap_equivalence_fuel () =
  (* Tight fuel: both engines must stop on the same cycle. *)
  let image = image_of cfg "_start:\n{ PBRR b0, #0 }\nloop:\n{ BRU #0 }\n" in
  let go ?sink () =
    Sim.run ~fuel:100 ?sink cfg ~image ~mem:(Bytes.make 64 '\000') ()
  in
  check_same_result "fuel=100" (go ()) (go ~sink:ignore ())

let test_trap_equivalence_illegal () =
  (* Assemble DIV under the full configuration, run on a datapath that
     omits the divider: the predecode records the failure, both engines
     raise it at fetch time with the same message. *)
  let no_div = Config.validate_exn { cfg with Config.alu_omit = [ Isa.DIV ] } in
  let image = image_of cfg "_start:\n{ DIV r3, r4, r5 }\n{ HALT }\n" in
  let r = check_trap_equiv ~cfg:no_div "illegal op" image ~mem_bytes:64 in
  (match r.Sim.trap with
   | Some t ->
     Alcotest.(check bool) "illegal-op cause" true
       (t.Sim.tr_cause = Sim.T_illegal_op)
   | None -> Alcotest.fail "expected an illegal-op trap")

let test_unreached_illegal_bundle () =
  (* The legality check moved to predecode time, but the trap taxonomy
     is positional: an illegal bundle the program never reaches must not
     trap — in either engine. *)
  let no_div = Config.validate_exn { cfg with Config.alu_omit = [ Isa.DIV ] } in
  let image =
    image_of cfg "_start:\n{ MOV r3, #7 }\n{ HALT }\n{ DIV r5, r4, r4 }\n"
  in
  let pre = Pre.of_image no_div image in
  Alcotest.(check bool) "predecode recorded the failure" true
    (Pre.fetch_trap pre 2 <> None);
  Alcotest.(check bool) "reachable bundles are clean" true
    (Pre.fetch_trap pre 0 = None && Pre.fetch_trap pre 1 = None);
  let go ?sink () =
    Sim.run ?sink ~pre no_div ~image ~mem:(Bytes.make 64 '\000') ()
  in
  let fast = go () in
  check_same_result "unreached illegal" fast (go ~sink:ignore ());
  Alcotest.(check int) "clean return" 7 fast.Sim.ret;
  Alcotest.(check bool) "no trap" true (fast.Sim.trap = None)

(* ---- predecode sharing across layers ------------------------------- *)

let test_campaign_pre_invariance () =
  (* A campaign given an explicit predecode must produce the exact
     report of one that builds its own (the tamper/re-decode contract:
     injected instruction flips are still seen through the predecode). *)
  let bm = S.sha_benchmark ~bytes:64 () in
  let a = T.compile_epic ~cache (Config.with_alus 2) ~source:bm.S.bm_source () in
  let image = a.T.ea_image in
  let mem = Memmap.init_memory a.T.ea_layout a.T.ea_mir in
  let entry = entry_of image in
  let r1 =
    Fault.campaign ~seed:3 ~runs:4 a.T.ea_config ~image ~mem ~entry ()
  in
  let r2 =
    Fault.campaign ~seed:3 ~runs:4 ~pre:a.T.ea_pre a.T.ea_config ~image ~mem
      ~entry ()
  in
  Alcotest.(check bool) "reports identical" true (r1 = r2)

let test_pre_mismatch_rejected () =
  let im1 = image_of cfg "_start:\n{ MOV r3, #1 }\n{ HALT }\n" in
  let im2 = image_of cfg "_start:\n{ MOV r3, #2 }\n{ HALT }\n" in
  let expect_reject label f =
    match f () with
    | (_ : Sim.result) -> Alcotest.failf "%s: expected Sim_error" label
    | exception Sim.Sim_error d ->
      Alcotest.(check string) (label ^ ": code") "sim/predecode-mismatch"
        d.Epic.Diag.code
  in
  expect_reject "wrong image" (fun () ->
      Sim.run ~pre:(Pre.of_image cfg im2) cfg ~image:im1
        ~mem:(Bytes.make 64 '\000') ());
  let other = Config.validate_exn { cfg with Config.alu_omit = [ Isa.DIV ] } in
  expect_reject "wrong config" (fun () ->
      Sim.run ~pre:(Pre.of_image cfg im1) other ~image:im1
        ~mem:(Bytes.make 64 '\000') ());
  (* The matching predecode is accepted. *)
  let r =
    Sim.run ~pre:(Pre.of_image cfg im1) cfg ~image:im1
      ~mem:(Bytes.make 64 '\000') ()
  in
  Alcotest.(check int) "accepted" 1 r.Sim.ret

let test_digest_keys () =
  let im1 = image_of cfg "_start:\n{ MOV r3, #1 }\n{ HALT }\n" in
  let im1' = image_of cfg "_start:\n{ MOV r3, #1 }\n{ HALT }\n" in
  let im2 = image_of cfg "_start:\n{ MOV r3, #2 }\n{ HALT }\n" in
  Alcotest.(check string) "equal streams, equal digests"
    (Pre.image_digest im1) (Pre.image_digest im1');
  Alcotest.(check bool) "distinct streams, distinct digests" true
    (Pre.image_digest im1 <> Pre.image_digest im2)

(* ---- qcheck: predecode round-trips the ISA metadata ---------------- *)

(* Well-formed instructions under the default configuration (the same
   shape the encoding round-trip uses). *)
let gen_inst =
  let open QCheck.Gen in
  let reg = int_bound (cfg.Config.n_gprs - 1) in
  let src =
    oneof
      [ map (fun r -> Isa.Sreg r) reg;
        map (fun v -> Isa.Simm (v - 16384)) (int_bound 32767) ]
  in
  let guard = int_bound (cfg.Config.n_preds - 1) in
  let alu_ops =
    [| Isa.ADD; Isa.SUB; Isa.MPY; Isa.DIV; Isa.REM; Isa.MIN; Isa.MAX;
       Isa.AND; Isa.OR; Isa.XOR; Isa.ANDCM; Isa.NAND; Isa.NOR;
       Isa.SHL; Isa.SHR; Isa.SHRA; Isa.MOV; Isa.ABS |]
  in
  let conds =
    [| Isa.C_eq; Isa.C_ne; Isa.C_lt; Isa.C_le; Isa.C_gt; Isa.C_ge;
       Isa.C_ltu; Isa.C_leu; Isa.C_gtu; Isa.C_geu |]
  in
  let mems = [| Isa.M_byte; Isa.M_half; Isa.M_word |] in
  let mk op d1 d2 s1 s2 g =
    { Isa.op; dst1 = d1; dst2 = d2; src1 = s1; src2 = s2; guard = g }
  in
  frequency
    [ (1, return (mk Isa.NOP 0 0 (Isa.Simm 0) (Isa.Simm 0) 0));
      (6,
       map2
         (fun (op, d1) ((s1, s2), g) -> mk op d1 0 s1 s2 g)
         (pair
            (map (fun k -> alu_ops.(k)) (int_bound (Array.length alu_ops - 1)))
            reg)
         (pair (pair src src) guard));
      (2,
       map2
         (fun (c, (d1, d2)) ((s1, s2), g) -> mk (Isa.CMPP c) d1 d2 s1 s2 g)
         (pair
            (map (fun k -> conds.(k)) (int_bound 9))
            (pair
               (int_bound (cfg.Config.n_preds - 1))
               (int_bound (cfg.Config.n_preds - 1))))
         (pair (pair src src) guard));
      (2,
       map2
         (fun (m, d1) ((s1, s2), g) -> mk (Isa.LD m) d1 0 s1 s2 g)
         (pair (map (fun k -> mems.(k)) (int_bound 2)) reg)
         (pair (pair src src) guard));
      (1,
       map2
         (fun (m, r1) (r2, g) -> mk (Isa.ST m) 0 0 (Isa.Sreg r1) (Isa.Sreg r2) g)
         (pair (map (fun k -> mems.(k)) (int_bound 2)) reg)
         (pair reg guard));
      (1,
       map2
         (fun (b, s1) g -> mk Isa.PBRR b 0 s1 (Isa.Simm 0) g)
         (pair (int_bound (cfg.Config.n_btrs - 1)) src)
         guard);
      (1,
       map2
         (fun (b, p) g -> mk Isa.BRCT 0 0 (Isa.Simm b) (Isa.Simm p) g)
         (pair
            (int_bound (cfg.Config.n_btrs - 1))
            (int_bound (cfg.Config.n_preds - 1)))
         guard) ]

let arb_inst = QCheck.make ~print:(Format.asprintf "%a" Isa.pp_inst) gen_inst

(* Multiset of read indices per file, from the ISA metadata. *)
let reads_of_file file i =
  List.sort compare
    (List.filter_map
       (fun (f, idx) -> if f = file then Some idx else None)
       (Isa.reads i))

let prop_predecode_roundtrip =
  QCheck.Test.make ~name:"predecode round-trips ISA metadata" ~count:500
    arb_inst (fun i ->
      let image = { A.im_insts = [| i |]; im_symbols = []; im_issue_width = 1 } in
      let pre = Pre.of_image cfg image in
      let rg, rp, rb = Pre.bundle_reads pre 0 in
      Pre.fetch_trap pre 0 = None
      && List.sort compare rg = reads_of_file Isa.R_gpr i
      && List.sort compare rp = reads_of_file Isa.R_pred i
      && List.sort compare rb = reads_of_file Isa.R_btr i
      && Pre.gpr_write_ports pre 0
         = List.length
             (List.filter (fun (f, _) -> f = Isa.R_gpr) (Isa.writes i))
      && Pre.slot_latency pre ~bundle:0 ~slot:0 = Config.latency cfg i.Isa.op
      && Pre.n_bundles pre = 1
      && Pre.issue_width pre = 1)

(* ---- seeded fuzz corpus against the refactored engine -------------- *)

let test_fuzz_corpus () =
  (* A fresh seed (distinct from the difftest suite's) so the corpus the
     multi-way oracle explores differs from the committed regressions. *)
  let r = D.fuzz ~jobs:1 ~seed:42 ~cases:48 () in
  Alcotest.(check int) "cases" 48 r.D.r_cases;
  Alcotest.(check int) "no findings" 0 (List.length r.D.r_findings)

let suite =
  [ Alcotest.test_case "fast == instrumented on all workloads x 1-4 ALUs"
      `Slow test_workload_equivalence;
    Alcotest.test_case "trap equivalence (bad pc, mem bounds, fuel)" `Quick
      test_trap_equivalence;
    Alcotest.test_case "trap equivalence under tight fuel" `Quick
      test_trap_equivalence_fuel;
    Alcotest.test_case "trap equivalence for illegal ops" `Quick
      test_trap_equivalence_illegal;
    Alcotest.test_case "unreached illegal bundle never traps" `Quick
      test_unreached_illegal_bundle;
    Alcotest.test_case "campaign invariant under explicit predecode" `Quick
      test_campaign_pre_invariance;
    Alcotest.test_case "mismatched predecode rejected" `Quick
      test_pre_mismatch_rejected;
    Alcotest.test_case "image digests key the cache" `Quick test_digest_keys;
    QCheck_alcotest.to_alcotest prop_predecode_roundtrip;
    Alcotest.test_case "seeded fuzz corpus is clean" `Slow test_fuzz_corpus ]
