(* Shared helpers for optimisation passes: program copying (passes mutate
   their input program) and 32-bit constant evaluation mirroring the
   reference interpreter's semantics.

   Copy discipline: passes mutate only the MUTABLE CONTAINERS of the IR —
   the [b_insts]/[b_term] fields of block records and the
   [f_blocks]/[f_nvregs]/[f_npregs]/[f_frame_bytes] fields of function
   records.  Instruction records and list cells are immutable and always
   replaced wholesale, never updated in place (see the contract in
   {!Registry}).  [copy_block] therefore deliberately shares the
   instruction LIST with the original: a fresh block record is enough to
   isolate the original from every legal mutation.  The same reasoning
   lets [copy_program] share [p_globals] (no pass touches globals). *)

module Ir = Epic_mir.Ir
module Word = Epic_isa.Word

let copy_block (b : Ir.block) =
  { Ir.b_id = b.Ir.b_id; b_insts = b.Ir.b_insts; b_term = b.Ir.b_term }

let copy_func (f : Ir.func) =
  {
    Ir.f_name = f.Ir.f_name;
    f_params = f.Ir.f_params;
    f_nvregs = f.Ir.f_nvregs;
    f_npregs = f.Ir.f_npregs;
    f_blocks = List.map copy_block f.Ir.f_blocks;
    f_frame_bytes = f.Ir.f_frame_bytes;
  }

let copy_program (p : Ir.program) =
  { Ir.p_globals = p.Ir.p_globals; p_funcs = List.map copy_func p.Ir.p_funcs }

let m32 v = v land 0xFFFFFFFF

(* Constant evaluation; [None] when the operation would trap (division by
   zero must stay in the program and fail at run time). *)
let eval_binop (op : Ir.binop) a b =
  let a = m32 a and b = m32 b in
  let sa = Word.to_signed 32 a and sb = Word.to_signed 32 b in
  match op with
  | Ir.Add -> Some (m32 (a + b))
  | Ir.Sub -> Some (m32 (a - b))
  | Ir.Mul -> Some (m32 (a * b))
  | Ir.Div -> if sb = 0 then None else Some (Word.of_signed 32 (sa / sb))
  | Ir.Rem -> if sb = 0 then None else Some (Word.of_signed 32 (sa mod sb))
  | Ir.And -> Some (a land b)
  | Ir.Or -> Some (a lor b)
  | Ir.Xor -> Some (a lxor b)
  | Ir.Shl -> Some (if b >= 32 then 0 else m32 (a lsl b))
  | Ir.Shr -> Some (if b >= 32 then 0 else a lsr b)
  | Ir.Shra -> Some (Word.of_signed 32 (sa asr min b 31))
  | Ir.Min -> Some (if sa <= sb then a else b)
  | Ir.Max -> Some (if sa >= sb then a else b)

let eval_relop (r : Ir.relop) a b =
  let a = m32 a and b = m32 b in
  let sa = Word.to_signed 32 a and sb = Word.to_signed 32 b in
  match r with
  | Ir.Req -> a = b
  | Ir.Rne -> a <> b
  | Ir.Rlt -> sa < sb
  | Ir.Rle -> sa <= sb
  | Ir.Rgt -> sa > sb
  | Ir.Rge -> sa >= sb
  | Ir.Rltu -> a < b
  | Ir.Rleu -> a <= b
  | Ir.Rgtu -> a > b
  | Ir.Rgeu -> a >= b

let is_pow2 v = v > 0 && v land (v - 1) = 0

let log2 v =
  let rec go k = if 1 lsl k = v then k else go (k + 1) in
  go 0
