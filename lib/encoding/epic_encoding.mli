(** Binary instruction encoding for the customisable EPIC processor.

    Implements the paper's fixed-width format (Fig. 1):
    [OPCODE | DEST1 | DEST2 | SRC1 | SRC2 | PRED], 64 bits with the default
    field widths (15/6/6/16/16/5), all widths taken from the configuration
    because "the instruction width and the width of each individual field
    [are] made parameterisable".

    Each source field spends its top bit as a literal flag: 1 means the
    remaining [src_bits - 1] bits are a sign-extended literal, 0 a register
    index.  The machine is big-endian (paper Section 3.1), so the memory
    image serialises words most-significant byte first. *)

exception Encode_error of Epic_diag.t
(** Raised when an instruction does not fit the configured format (register
    index out of range, literal too wide, unsupported operation, more
    distinct GPR operands than [regs_per_inst] allows).  The diagnostic
    carries a stable [enc/*] code. *)

(** Opcode numbering table.  Codes place the functional-unit class in the
    top bits and enumerate operations within the class in the low bits, so
    that two instructions executed by the same unit type have minimal
    Hamming distance (paper Section 3.1); the all-zero code is NOP, making
    zeroed instruction memory safe. *)
type table

val make_table : Epic_config.t -> table
(** Build the numbering for a configuration: base operations first, then
    that configuration's custom operations (in ALU code space). *)

val code_of_opcode : table -> Epic_isa.opcode -> int option
val opcode_of_code : table -> int -> Epic_isa.opcode option

val all_codes : table -> (Epic_isa.opcode * int) list
(** The complete numbering, for documentation dumps and tests. *)

(** How an operation populates the destination fields: a register of some
    file, a raw immediate (the word-scaled store offset), or unused. *)
type dst_usage = Dreg of Epic_isa.regfile | Dimm | Dnone

type field_usage = {
  u_dst1 : dst_usage;
  u_dst2 : dst_usage;
  u_src1 : bool;
  u_src2 : bool;
}

val usage : Epic_isa.opcode -> field_usage
(** The field map the encoder applies to an operation — exported so that
    generators (the differential fuzzer, property tests) can build
    plausibly-legal random instructions field by field. *)

val encode : table -> Epic_config.t -> Epic_isa.inst -> int64
(** Encode one instruction. @raise Encode_error when it does not fit. *)

val decode : table -> Epic_config.t -> int64 -> Epic_isa.inst
(** Decode one instruction word.  Decoding is total: a word whose opcode
    pattern is unassigned decodes to an ILLEGAL marker instruction
    (recognised by {!is_illegal}) rather than raising, so arbitrary junk —
    including fault-injected instruction words — flows through decode and
    surfaces as an architectural illegal-operation trap in the simulator. *)

val is_illegal : Epic_isa.opcode -> bool
(** Whether an opcode is the ILLEGAL marker produced by {!decode} for an
    unassigned opcode bit pattern. *)

val word_to_bytes : Epic_config.t -> int64 -> bytes
(** Big-endian memory image of one instruction word
    ([inst_bits / 8] bytes). *)

val word_of_bytes : Epic_config.t -> bytes -> int -> int64
(** [word_of_bytes cfg b off] reads an instruction word back from a
    big-endian memory image at byte offset [off]. *)

val literal_fits : Epic_config.t -> int -> bool
(** Whether a literal value fits the sign-extended [src_bits - 1]-bit
    source-field payload. *)
