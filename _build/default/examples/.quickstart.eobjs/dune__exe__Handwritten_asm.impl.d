examples/handwritten_asm.ml: Array Bytes Epic Format Printf
