(* EPIC-C sources of the paper's four benchmarks (Section 5.2).  Inputs
   are synthesised inside the programs with the shared xorshift32 PRNG so
   that the OCaml reference implementations can replay them exactly; see
   DESIGN.md for the substitution rationale (the paper's PPM images are
   unavailable).  Sizes are parameters: the paper uses 256x256 images and
   a "large graph"; the experiment harness defaults to smaller instances
   that preserve the cycle-count shape and offers --full for paper-sized
   runs. *)

let pp_array name values =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "int %s[%d] = {" name (List.length values));
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string buf ",";
      if i mod 12 = 0 then Buffer.add_string buf "\n  ";
      Buffer.add_string buf (string_of_int v))
    values;
  Buffer.add_string buf "\n};\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* SHA-256 *)

(* [rotate] selects the inline shift/or expansion (base ISA) or the ROTR
   custom instruction (ablation A2). *)
let sha ?(use_rotr_custom = false) ~bytes () =
  let padded = (bytes + 9 + 63) / 64 * 64 in
  let rotr x n =
    if use_rotr_custom then Printf.sprintf "__x_rotr(%s, %d)" x n
    else Printf.sprintf "(__lsr(%s, %d) | (%s << %d))" x n x (32 - n)
  in
  String.concat ""
    [
      Prng.c_source ();
      pp_array "K" (Array.to_list Sha256_ref.k);
      Printf.sprintf "int data[%d];\n" padded;
      "int H[8];\nint W[64];\n";
      Printf.sprintf
        "int main() {\n\
         \  int i; int t; int blk; int bitlen;\n\
         \  for (i = 0; i < %d; i++) data[i] = prng_next() & 255;\n\
         \  data[%d] = 0x80;\n\
         \  bitlen = %d;\n\
         \  for (i = 0; i < 8; i++) data[%d - 1 - i] = __lsr(bitlen, 8 * i) & 255;\n"
        bytes bytes (bytes * 8) padded;
      "  H[0] = 0x6a09e667; H[1] = 0xbb67ae85; H[2] = 0x3c6ef372; H[3] = 0xa54ff53a;\n\
       \  H[4] = 0x510e527f; H[5] = 0x9b05688c; H[6] = 0x1f83d9ab; H[7] = 0x5be0cd19;\n";
      Printf.sprintf "  for (blk = 0; blk < %d; blk++) {\n" (padded / 64);
      "    int base = blk * 64;\n\
       \    for (t = 0; t < 16; t++)\n\
       \      W[t] = (data[base + 4*t] << 24) | (data[base + 4*t + 1] << 16)\n\
       \           | (data[base + 4*t + 2] << 8) | data[base + 4*t + 3];\n\
       \    for (t = 16; t < 64; t++) {\n\
       \      int x = W[t - 15];\n\
       \      int y = W[t - 2];\n";
      Printf.sprintf "      int s0 = %s ^ %s ^ __lsr(x, 3);\n" (rotr "x" 7) (rotr "x" 18);
      Printf.sprintf "      int s1 = %s ^ %s ^ __lsr(y, 10);\n" (rotr "y" 17) (rotr "y" 19);
      "      W[t] = W[t - 16] + s0 + W[t - 7] + s1;\n\
       \    }\n\
       \    int a = H[0]; int b = H[1]; int c = H[2]; int d = H[3];\n\
       \    int e = H[4]; int f = H[5]; int g = H[6]; int h = H[7];\n\
       \    for (t = 0; t < 64; t++) {\n";
      Printf.sprintf "      int s1 = %s ^ %s ^ %s;\n" (rotr "e" 6) (rotr "e" 11) (rotr "e" 25);
      "      int ch = (e & f) ^ (~e & g);\n\
       \      int t1 = h + s1 + ch + K[t] + W[t];\n";
      Printf.sprintf "      int s0 = %s ^ %s ^ %s;\n" (rotr "a" 2) (rotr "a" 13) (rotr "a" 22);
      "      int maj = (a & b) ^ (a & c) ^ (b & c);\n\
       \      int t2 = s0 + maj;\n\
       \      h = g; g = f; f = e; e = d + t1; d = c; c = b; b = a; a = t1 + t2;\n\
       \    }\n\
       \    H[0] += a; H[1] += b; H[2] += c; H[3] += d;\n\
       \    H[4] += e; H[5] += f; H[6] += g; H[7] += h;\n\
       \  }\n\
       \  return H[0] ^ H[1] ^ H[2] ^ H[3] ^ H[4] ^ H[5] ^ H[6] ^ H[7];\n\
       }\n";
    ]

let sha_expected ~bytes =
  let prng = Prng.create () in
  let msg = Array.init bytes (fun _ -> Prng.next_byte prng) in
  let h = Sha256_ref.digest msg in
  Array.fold_left (fun acc w -> acc lxor w) 0 h

(* ------------------------------------------------------------------ *)
(* AES-128 *)

let aes_key = [ 0x2b; 0x7e; 0x15; 0x16; 0x28; 0xae; 0xd2; 0xa6;
                0xab; 0xf7; 0x15; 0x88; 0x09; 0xcf; 0x4f; 0x3c ]

let aes_plaintext = "Hello AES World!"

let aes ~iters () =
  String.concat ""
    [
      pp_array "SBOX" (Array.to_list Aes_ref.sbox);
      pp_array "ISBOX" (Array.to_list Aes_ref.inv_sbox);
      pp_array "RCON" (Array.to_list Aes_ref.rcon);
      pp_array "KEY" aes_key;
      pp_array "PT"
        (List.init (String.length aes_plaintext) (fun i -> Char.code aes_plaintext.[i]));
      "int w[176];\nint state[16];\nint tmp[16];\nint CT[16];\n";
      "int xtime(int b) {\n\
       \  int b2 = b << 1;\n\
       \  if (b & 0x80) b2 = b2 ^ 0x1b;\n\
       \  return b2 & 255;\n\
       }\n";
      "void expand_key() {\n\
       \  int i; int k;\n\
       \  for (i = 0; i < 16; i++) w[i] = KEY[i];\n\
       \  for (i = 4; i < 44; i++) {\n\
       \    int t0 = w[4*(i-1)];  int t1 = w[4*(i-1)+1];\n\
       \    int t2 = w[4*(i-1)+2]; int t3 = w[4*(i-1)+3];\n\
       \    if (i % 4 == 0) {\n\
       \      int r0 = SBOX[t1]; int r1 = SBOX[t2]; int r2 = SBOX[t3]; int r3 = SBOX[t0];\n\
       \      t0 = r0 ^ RCON[i / 4 - 1]; t1 = r1; t2 = r2; t3 = r3;\n\
       \    }\n\
       \    w[4*i]   = w[4*(i-4)]   ^ t0;\n\
       \    w[4*i+1] = w[4*(i-4)+1] ^ t1;\n\
       \    w[4*i+2] = w[4*(i-4)+2] ^ t2;\n\
       \    w[4*i+3] = w[4*(i-4)+3] ^ t3;\n\
       \  }\n\
       }\n";
      "void add_round_key(int round) {\n\
       \  int i;\n\
       \  for (i = 0; i < 16; i++) state[i] = state[i] ^ w[16*round + i];\n\
       }\n";
      "void sub_bytes() { int i; for (i = 0; i < 16; i++) state[i] = SBOX[state[i]]; }\n";
      "void inv_sub_bytes() { int i; for (i = 0; i < 16; i++) state[i] = ISBOX[state[i]]; }\n";
      "void shift_rows() {\n\
       \  int c; int r; int i;\n\
       \  for (i = 0; i < 16; i++) tmp[i] = state[i];\n\
       \  for (c = 0; c < 4; c++)\n\
       \    for (r = 1; r < 4; r++)\n\
       \      state[4*c + r] = tmp[4*((c + r) & 3) + r];\n\
       }\n";
      "void inv_shift_rows() {\n\
       \  int c; int r; int i;\n\
       \  for (i = 0; i < 16; i++) tmp[i] = state[i];\n\
       \  for (c = 0; c < 4; c++)\n\
       \    for (r = 1; r < 4; r++)\n\
       \      state[4*((c + r) & 3) + r] = tmp[4*c + r];\n\
       }\n";
      "void mix_columns() {\n\
       \  int c;\n\
       \  for (c = 0; c < 4; c++) {\n\
       \    int a0 = state[4*c]; int a1 = state[4*c+1]; int a2 = state[4*c+2]; int a3 = state[4*c+3];\n\
       \    state[4*c]   = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;\n\
       \    state[4*c+1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;\n\
       \    state[4*c+2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);\n\
       \    state[4*c+3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);\n\
       \  }\n\
       }\n";
      "void inv_mix_columns() {\n\
       \  int c;\n\
       \  for (c = 0; c < 4; c++) {\n\
       \    int a0 = state[4*c]; int a1 = state[4*c+1]; int a2 = state[4*c+2]; int a3 = state[4*c+3];\n\
       \    int x20 = xtime(a0); int x40 = xtime(x20); int x80 = xtime(x40);\n\
       \    int x21 = xtime(a1); int x41 = xtime(x21); int x81 = xtime(x41);\n\
       \    int x22 = xtime(a2); int x42 = xtime(x22); int x82 = xtime(x42);\n\
       \    int x23 = xtime(a3); int x43 = xtime(x23); int x83 = xtime(x43);\n\
       \    state[4*c]   = (x80 ^ x40 ^ x20) ^ (x81 ^ x21 ^ a1) ^ (x82 ^ x42 ^ a2) ^ (x83 ^ a3);\n\
       \    state[4*c+1] = (x80 ^ a0) ^ (x81 ^ x41 ^ x21) ^ (x82 ^ x22 ^ a2) ^ (x83 ^ x43 ^ a3);\n\
       \    state[4*c+2] = (x80 ^ x40 ^ a0) ^ (x81 ^ a1) ^ (x82 ^ x42 ^ x22) ^ (x83 ^ x23 ^ a3);\n\
       \    state[4*c+3] = (x80 ^ x20 ^ a0) ^ (x81 ^ x41 ^ a1) ^ (x82 ^ a2) ^ (x83 ^ x43 ^ x23);\n\
       \  }\n\
       }\n";
      "void encrypt_state() {\n\
       \  int round;\n\
       \  add_round_key(0);\n\
       \  for (round = 1; round < 10; round++) {\n\
       \    sub_bytes(); shift_rows(); mix_columns(); add_round_key(round);\n\
       \  }\n\
       \  sub_bytes(); shift_rows(); add_round_key(10);\n\
       }\n";
      "void decrypt_state() {\n\
       \  int round;\n\
       \  add_round_key(10);\n\
       \  for (round = 9; round >= 1; round--) {\n\
       \    inv_shift_rows(); inv_sub_bytes(); add_round_key(round); inv_mix_columns();\n\
       \  }\n\
       \  inv_shift_rows(); inv_sub_bytes(); add_round_key(0);\n\
       }\n";
      Printf.sprintf
        "int main() {\n\
         \  int i; int it; int cs; int ok;\n\
         \  expand_key();\n\
         \  for (i = 0; i < 16; i++) state[i] = PT[i];\n\
         \  for (it = 0; it < %d; it++) encrypt_state();\n\
         \  for (i = 0; i < 16; i++) CT[i] = state[i];\n\
         \  for (it = 0; it < %d; it++) decrypt_state();\n\
         \  ok = 1;\n\
         \  for (i = 0; i < 16; i++) if (state[i] != PT[i]) ok = 0;\n\
         \  cs = 0;\n\
         \  for (i = 0; i < 16; i++) cs = cs * 31 + CT[i];\n\
         \  if (ok == 0) cs = cs ^ 0xDEADBEEF;\n\
         \  return cs;\n\
         }\n"
        iters iters;
    ]

let aes_expected ~iters =
  let w = Aes_ref.expand_key (Array.of_list aes_key) in
  let pt = Array.init 16 (fun i -> Char.code aes_plaintext.[i]) in
  let ct = ref (Array.copy pt) in
  for _ = 1 to iters do
    ct := Aes_ref.encrypt_block w !ct
  done;
  let back = ref (Array.copy !ct) in
  for _ = 1 to iters do
    back := Aes_ref.decrypt_block w !back
  done;
  assert (!back = pt);
  Array.fold_left (fun acc b -> (acc * 31) + b land 0xFFFFFFFF land 0xFFFFFFFF) 0 !ct
  land 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Fixed-point DCT *)

let dct ~width ~height () =
  if width mod 8 <> 0 || height mod 8 <> 0 then
    invalid_arg "Sources.dct: dimensions must be multiples of 8";
  (* The kernels are emitted fully unrolled with the fixed-point cosine
     coefficients as literal constants (the standard shape for production
     integer DCTs): pixels are loaded once per column/row into scalars and
     the 8-tap dot products run entirely in registers, which is what gives
     the DCT its ALU-bound, highly parallel profile (the paper's
     "arithmetic-intensive" benchmark that scales with the ALU count). *)
  let t u x = Dct_ref.table.(u).(x) in
  let buf = Buffer.create 8192 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let dot coeff_of =
    String.concat " + "
      (List.init 8 (fun k -> Printf.sprintf "v%d * %d" k (coeff_of k)))
  in
  line "void fdct() {";
  line "  int y; int u;";
  line "  for (y = 0; y < 8; y++) {";
  List.iteri (fun k () -> line "    int v%d = blk[%d + y];" k (8 * k)) (List.init 8 (fun _ -> ()));
  for u = 0 to 7 do
    line "    tmp[%d + y] = (%s + 1024) >> 11;" (8 * u) (dot (fun x -> t u x))
  done;
  line "  }";
  line "  for (u = 0; u < 8; u++) {";
  List.iteri (fun k () -> line "    int v%d = tmp[u * 8 + %d];" k k) (List.init 8 (fun _ -> ()));
  for v = 0 to 7 do
    line "    coef[u * 8 + %d] = (%s + 1024) >> 11;" v (dot (fun y -> t v y))
  done;
  line "  }";
  line "}";
  line "void idct() {";
  line "  int x; int v;";
  line "  for (v = 0; v < 8; v++) {";
  List.iteri (fun k () -> line "    int v%d = coef[%d + v];" k (8 * k)) (List.init 8 (fun _ -> ()));
  for x = 0 to 7 do
    line "    tmp[%d + v] = (%s + 1024) >> 11;" (8 * x) (dot (fun u -> t u x))
  done;
  line "  }";
  line "  for (x = 0; x < 8; x++) {";
  List.iteri (fun k () -> line "    int v%d = tmp[x * 8 + %d];" k k) (List.init 8 (fun _ -> ()));
  for y = 0 to 7 do
    line "    int p%d = (%s + 1024) >> 11;" y (dot (fun v -> t v y));
    line "    if (p%d < 0) p%d = 0;" y y;
    line "    if (p%d > 255) p%d = 255;" y y;
    line "    blk[x * 8 + %d] = p%d;" y y
  done;
  line "  }";
  line "}";
  String.concat ""
    [
      Prng.c_source ();
      Printf.sprintf "int pix[%d];\nint blk[64];\nint coef[64];\nint tmp[64];\n"
        (width * height);
      Buffer.contents buf;
      Printf.sprintf
        "int main() {\n\
         \  int i; int bx; int by; int r; int c; int cs;\n\
         \  for (i = 0; i < %d; i++) pix[i] = prng_next() & 255;\n\
         \  cs = 0;\n\
         \  for (by = 0; by < %d; by++)\n\
         \    for (bx = 0; bx < %d; bx++) {\n\
         \      for (r = 0; r < 8; r++)\n\
         \        for (c = 0; c < 8; c++)\n\
         \          blk[r*8 + c] = pix[(by*8 + r) * %d + bx*8 + c];\n\
         \      fdct();\n\
         \      idct();\n\
         \      for (r = 0; r < 8; r++)\n\
         \        for (c = 0; c < 8; c++)\n\
         \          cs = cs * 31 + blk[r*8 + c];\n\
         \    }\n\
         \  return cs;\n\
         }\n"
        (width * height) (height / 8) (width / 8) width;
    ]

let dct_expected ~width ~height =
  let prng = Prng.create () in
  let pix = Array.init (width * height) (fun _ -> Prng.next_byte prng) in
  let cs = ref 0 in
  for by = 0 to (height / 8) - 1 do
    for bx = 0 to (width / 8) - 1 do
      let blk = Array.make 64 0 in
      for r = 0 to 7 do
        for c = 0 to 7 do
          blk.((r * 8) + c) <- pix.(((by * 8) + r) * width + (bx * 8) + c)
        done
      done;
      let recon = Dct_ref.roundtrip blk in
      for r = 0 to 7 do
        for c = 0 to 7 do
          cs := (!cs * 31) + recon.((r * 8) + c) land 0xFFFFFFFF;
          cs := !cs land 0xFFFFFFFF
        done
      done
    done
  done;
  !cs

(* ------------------------------------------------------------------ *)
(* Dijkstra all-pairs *)

let dijkstra ~nodes () =
  let n = nodes in
  String.concat ""
    [
      Prng.c_source ();
      Printf.sprintf "int adj[%d];\nint dist[%d];\nint visited[%d];\n" (n * n) n n;
      Printf.sprintf
        "int main() {\n\
         \  int i; int j; int s; int k; int cs;\n\
         \  for (i = 0; i < %d; i++)\n\
         \    for (j = 0; j < %d; j++)\n\
         \      if (i != j) adj[i * %d + j] = (prng_next() & 0x3F) + 1;\n\
         \      else adj[i * %d + j] = 0;\n\
         \  cs = 0;\n\
         \  for (s = 0; s < %d; s++) {\n\
         \    for (i = 0; i < %d; i++) { dist[i] = 0x3FFFFFFF; visited[i] = 0; }\n\
         \    dist[s] = 0;\n\
         \    for (k = 0; k < %d; k++) {\n\
         \      int u = -1;\n\
         \      int best = 0x3FFFFFFF;\n\
         \      for (i = 0; i < %d; i++)\n\
         \        if (!visited[i] && dist[i] < best) { best = dist[i]; u = i; }\n\
         \      if (u >= 0) {\n\
         \        visited[u] = 1;\n\
         \        for (j = 0; j < %d; j++) {\n\
         \          int w = adj[u * %d + j];\n\
         \          if (w > 0 && dist[u] + w < dist[j]) dist[j] = dist[u] + w;\n\
         \        }\n\
         \      }\n\
         \    }\n\
         \    for (i = 0; i < %d; i++) cs = cs + dist[i];\n\
         \  }\n\
         \  return cs;\n\
         }\n"
        n n n n n n n n n n n;
    ]

let dijkstra_expected ~nodes =
  let prng = Prng.create () in
  let adj = Dijkstra_ref.generate_graph prng nodes in
  Dijkstra_ref.all_pairs_checksum adj nodes

(* ------------------------------------------------------------------ *)
(* Benchmark descriptors *)

type benchmark = {
  bm_name : string;
  bm_source : string;
  bm_expected : int;  (* canonical 32-bit return value of main *)
  bm_description : string;
}

(* Default sizes keep a full toolchain + cycle simulation run fast while
   preserving the paper's cycle-count shape; the paper-sized instances are
   available through the size parameters. *)
let default_sha_bytes = 16 * 16 * 3
let default_aes_iters = 40
let default_dct_width, default_dct_height = (32, 32)
let default_dijkstra_nodes = 24

let sha_benchmark ?(use_rotr_custom = false) ?(bytes = default_sha_bytes) () =
  {
    bm_name = "sha";
    bm_source = sha ~use_rotr_custom ~bytes ();
    bm_expected = sha_expected ~bytes;
    bm_description =
      Printf.sprintf "SHA-256 of a %d-byte synthetic image stream" bytes;
  }

let aes_benchmark ?(iters = default_aes_iters) () =
  {
    bm_name = "aes";
    bm_source = aes ~iters ();
    bm_expected = aes_expected ~iters;
    bm_description =
      Printf.sprintf "AES-128: encrypt %S %d times, then decrypt" aes_plaintext iters;
  }

let dct_benchmark ?(width = default_dct_width) ?(height = default_dct_height) () =
  {
    bm_name = "dct";
    bm_source = dct ~width ~height ();
    bm_expected = dct_expected ~width ~height;
    bm_description =
      Printf.sprintf "fixed-point DCT encode+decode of a %dx%d image" width height;
  }

let dijkstra_benchmark ?(nodes = default_dijkstra_nodes) () =
  {
    bm_name = "dijkstra";
    bm_source = dijkstra ~nodes ();
    bm_expected = dijkstra_expected ~nodes;
    bm_description =
      Printf.sprintf "Dijkstra shortest paths between every pair of %d nodes" nodes;
  }

let all ?sha_bytes ?aes_iters ?dct_size ?dijkstra_nodes () =
  let width, height =
    match dct_size with Some (w, h) -> (w, h) | None -> (default_dct_width, default_dct_height)
  in
  [
    sha_benchmark ?bytes:sha_bytes ();
    aes_benchmark ?iters:aes_iters ();
    dct_benchmark ~width ~height ();
    dijkstra_benchmark ?nodes:dijkstra_nodes ();
  ]
