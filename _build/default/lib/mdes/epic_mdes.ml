(** Machine description (the HMDES role in the paper's Trimaran flow).

    The scheduler never looks at the configuration directly: it consumes a
    machine description derived from it — "processor organisation
    information, including number of functional units, instruction issues
    per cycle and functionality of each module, is captured in the machine
    description language HMDES and serves as an input to elcor" (paper
    Section 4.1).  Retargeting the compiler to a customised processor
    therefore only means regenerating this description.

    A textual form (HMDES-flavoured sections) can be printed and parsed
    back, so descriptions can be stored next to a design. *)

module Isa = Epic_isa
module Config = Epic_config

type op_entry = {
  oe_op : Isa.opcode;
  oe_unit : Isa.unit_class;
  oe_latency : int;
}

type t = {
  md_name : string;
  md_alus : int;
  md_lsus : int;
  md_cmpus : int;
  md_brus : int;
  md_issue_width : int;
  md_rf_port_budget : int;
  md_forwarding : bool;
      (** Whether the register-file controller forwards results that are
          consumed the cycle they become available (paper Section 3.2);
          the scheduler then stops charging ports for such reads. *)
  md_ops : op_entry list;  (** Operations the datapath implements. *)
}

let unit_count md = function
  | Isa.U_alu -> md.md_alus
  | Isa.U_lsu -> md.md_lsus
  | Isa.U_cmpu -> md.md_cmpus
  | Isa.U_bru -> md.md_brus
  | Isa.U_none -> max_int

let find_op md op =
  List.find_opt (fun e -> Isa.equal_opcode e.oe_op op) md.md_ops

let latency md op =
  match find_op md op with
  | Some e -> e.oe_latency
  | None -> Isa.default_latency op

let op_supported md op = find_op md op <> None

let of_config ?(name = "epic") (cfg : Config.t) =
  let base =
    List.filter (Config.op_supported cfg) Isa.all_base_opcodes
  in
  let customs = List.map (fun c -> Isa.CUSTOM c.Config.cop_name) cfg.Config.custom_ops in
  {
    md_name = name;
    md_alus = cfg.Config.n_alus;
    md_lsus = 1;
    md_cmpus = 1;
    md_brus = 1;
    md_issue_width = cfg.Config.issue_width;
    md_rf_port_budget = cfg.Config.rf_port_budget;
    md_forwarding = cfg.Config.forwarding;
    md_ops =
      List.map
        (fun op -> { oe_op = op; oe_unit = Isa.unit_of op; oe_latency = Config.latency cfg op })
        (base @ customs);
  }

(* ------------------------------------------------------------------ *)
(* Textual form *)

let string_of_unit = function
  | Isa.U_alu -> "ALU"
  | Isa.U_lsu -> "LSU"
  | Isa.U_cmpu -> "CMPU"
  | Isa.U_bru -> "BRU"
  | Isa.U_none -> "NONE"

let unit_of_string = function
  | "ALU" -> Some Isa.U_alu
  | "LSU" -> Some Isa.U_lsu
  | "CMPU" -> Some Isa.U_cmpu
  | "BRU" -> Some Isa.U_bru
  | "NONE" -> Some Isa.U_none
  | _ -> None

let pp ppf md =
  Format.fprintf ppf "// HMDES-style machine description: %s@." md.md_name;
  Format.fprintf ppf "SECTION Resource {@.";
  Format.fprintf ppf "  ALU(count(%d));@." md.md_alus;
  Format.fprintf ppf "  LSU(count(%d));@." md.md_lsus;
  Format.fprintf ppf "  CMPU(count(%d));@." md.md_cmpus;
  Format.fprintf ppf "  BRU(count(%d));@." md.md_brus;
  Format.fprintf ppf "  ISSUE(count(%d));@." md.md_issue_width;
  Format.fprintf ppf "  RFPORT(count(%d));@." md.md_rf_port_budget;
  Format.fprintf ppf "  FORWARD(count(%d));@." (if md.md_forwarding then 1 else 0);
  Format.fprintf ppf "}@.";
  Format.fprintf ppf "SECTION Operation {@.";
  List.iter
    (fun e ->
      Format.fprintf ppf "  %s(unit(%s) latency(%d));@."
        (Isa.string_of_opcode e.oe_op) (string_of_unit e.oe_unit) e.oe_latency)
    md.md_ops;
  Format.fprintf ppf "}@."

let to_string md = Format.asprintf "%a" pp md

(* A small recursive-descent parser for the section syntax above. *)
exception Parse_error of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | Some '/' when !pos + 1 < n && text.[!pos + 1] = '/' ->
      while peek () <> None && peek () <> Some '\n' do advance () done;
      skip_ws ()
    | _ -> ()
  in
  let ident () =
    skip_ws ();
    let start = !pos in
    let is_ident c =
      (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
      || c = '_' || c = '.'
    in
    while (match peek () with Some c -> is_ident c | None -> false) do advance () done;
    if !pos = start then raise (Parse_error (Printf.sprintf "expected identifier at %d" start));
    String.sub text start (!pos - start)
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise (Parse_error (Printf.sprintf "expected %c at %d" c !pos))
  in
  let number () =
    skip_ws ();
    let start = !pos in
    while (match peek () with Some c -> c >= '0' && c <= '9' | None -> false) do advance () done;
    if !pos = start then raise (Parse_error "expected number");
    int_of_string (String.sub text start (!pos - start))
  in
  let resources = Hashtbl.create 8 in
  let ops = ref [] in
  let parse_resource_entry () =
    let name = ident () in
    expect '('; let _ = ident () (* count *) in
    expect '('; let v = number () in expect ')'; expect ')'; expect ';';
    Hashtbl.replace resources name v
  in
  let parse_op_entry () =
    let name = ident () in
    let op =
      match Isa.opcode_of_string name with
      | Some op -> op
      | None -> raise (Parse_error (Printf.sprintf "unknown operation %s" name))
    in
    expect '(';
    let u = ref Isa.U_alu and l = ref 1 in
    let rec attrs () =
      skip_ws ();
      match peek () with
      | Some ')' -> advance ()
      | _ ->
        let key = ident () in
        expect '(';
        (match key with
         | "unit" ->
           let uname = ident () in
           (match unit_of_string uname with
            | Some uc -> u := uc
            | None -> raise (Parse_error (Printf.sprintf "unknown unit %s" uname)))
         | "latency" -> l := number ()
         | _ -> raise (Parse_error (Printf.sprintf "unknown attribute %s" key)));
        expect ')';
        attrs ()
    in
    attrs ();
    expect ';';
    ops := { oe_op = op; oe_unit = !u; oe_latency = !l } :: !ops
  in
  let name = ref "parsed" in
  (* Optional leading comment carries the name; comments are skipped, so
     parse sections directly. *)
  let rec sections () =
    skip_ws ();
    if !pos >= n then ()
    else begin
      let kw = ident () in
      if kw <> "SECTION" then raise (Parse_error (Printf.sprintf "expected SECTION, got %s" kw));
      let sname = ident () in
      expect '{';
      let rec entries () =
        skip_ws ();
        match peek () with
        | Some '}' -> advance ()
        | None -> raise (Parse_error "unterminated section")
        | Some _ ->
          (match sname with
           | "Resource" -> parse_resource_entry ()
           | "Operation" -> parse_op_entry ()
           | _ -> raise (Parse_error (Printf.sprintf "unknown section %s" sname)));
          entries ()
      in
      entries ();
      sections ()
    end
  in
  (try sections () with Parse_error _ as e -> raise e);
  let res name default = try Hashtbl.find resources name with Not_found -> default in
  {
    md_name = !name;
    md_alus = res "ALU" 1;
    md_lsus = res "LSU" 1;
    md_cmpus = res "CMPU" 1;
    md_brus = res "BRU" 1;
    md_issue_width = res "ISSUE" 1;
    md_rf_port_budget = res "RFPORT" 8;
    md_forwarding = res "FORWARD" 1 <> 0;
    md_ops = List.rev !ops;
  }

let of_string text =
  match parse text with
  | md -> Ok md
  | exception Parse_error m -> Error m

let equal a b =
  a.md_alus = b.md_alus && a.md_lsus = b.md_lsus && a.md_cmpus = b.md_cmpus
  && a.md_brus = b.md_brus && a.md_issue_width = b.md_issue_width
  && a.md_rf_port_budget = b.md_rf_port_budget
  && a.md_forwarding = b.md_forwarding
  && List.length a.md_ops = List.length b.md_ops
  && List.for_all2
       (fun x y ->
         Isa.equal_opcode x.oe_op y.oe_op && x.oe_unit = y.oe_unit
         && x.oe_latency = y.oe_latency)
       a.md_ops b.md_ops
