(* Control-flow graph simplification:
   - fold branches whose condition is constant,
   - thread jumps through empty forwarding blocks,
   - remove unreachable blocks,
   - merge a block into its unique successor when it is that block's
     unique predecessor. *)

module Ir = Epic_mir.Ir

let fold_constant_branches (f : Ir.func) =
  List.iter
    (fun (b : Ir.block) ->
      match b.Ir.b_term with
      | Ir.Br (r, Ir.Imm x, Ir.Imm y, lt, lf) ->
        b.Ir.b_term <- Ir.Jmp (if Common.eval_relop r x y then lt else lf)
      | Ir.Br (r, a, b', lt, lf) when lt = lf ->
        ignore (r, a, b');
        b.Ir.b_term <- Ir.Jmp lt
      | Ir.Br _ | Ir.Jmp _ | Ir.Ret _ -> ())
    f.Ir.f_blocks

(* Blocks containing nothing but a jump forward their predecessors. *)
let thread_jumps (f : Ir.func) =
  let forward = Hashtbl.create 8 in
  List.iter
    (fun (b : Ir.block) ->
      match (b.Ir.b_insts, b.Ir.b_term) with
      | [], Ir.Jmp l when l <> b.Ir.b_id -> Hashtbl.replace forward b.Ir.b_id l
      | _ -> ())
    f.Ir.f_blocks;
  (* Resolve chains, cutting cycles. *)
  let rec resolve seen l =
    match Hashtbl.find_opt forward l with
    | Some l' when not (List.mem l' seen) -> resolve (l' :: seen) l'
    | Some _ | None -> l
  in
  List.iter
    (fun (b : Ir.block) ->
      let r l = resolve [ b.Ir.b_id ] l in
      match b.Ir.b_term with
      | Ir.Jmp l -> b.Ir.b_term <- Ir.Jmp (r l)
      | Ir.Br (rel, a, b', lt, lf) ->
        let lt = r lt and lf = r lf in
        b.Ir.b_term <- (if lt = lf then Ir.Jmp lt else Ir.Br (rel, a, b', lt, lf))
      | Ir.Ret _ -> ())
    f.Ir.f_blocks

let remove_unreachable (f : Ir.func) =
  let reachable = Hashtbl.create 16 in
  let rec visit l =
    if not (Hashtbl.mem reachable l) then begin
      Hashtbl.replace reachable l ();
      List.iter visit (Ir.successors (Ir.find_block f l).Ir.b_term)
    end
  in
  visit (Ir.entry_block f).Ir.b_id;
  f.Ir.f_blocks <- List.filter (fun b -> Hashtbl.mem reachable b.Ir.b_id) f.Ir.f_blocks

let predecessor_counts (f : Ir.func) =
  let counts = Hashtbl.create 16 in
  List.iter (fun (b : Ir.block) -> Hashtbl.replace counts b.Ir.b_id 0) f.Ir.f_blocks;
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun s -> Hashtbl.replace counts s (Hashtbl.find counts s + 1))
        (Ir.successors b.Ir.b_term))
    f.Ir.f_blocks;
  counts

let merge_linear (f : Ir.func) =
  (* One merge per scan: merging invalidates both the predecessor counts
     and the iteration, so restart after each change. *)
  let changed = ref true in
  while !changed do
    changed := false;
    let counts = predecessor_counts f in
    let entry = (Ir.entry_block f).Ir.b_id in
    let candidate =
      List.find_opt
        (fun (b : Ir.block) ->
          match b.Ir.b_term with
          | Ir.Jmp l -> l <> b.Ir.b_id && l <> entry && Hashtbl.find counts l = 1
          | Ir.Br _ | Ir.Ret _ -> false)
        f.Ir.f_blocks
    in
    match candidate with
    | Some b ->
      let l = match b.Ir.b_term with Ir.Jmp l -> l | Ir.Br _ | Ir.Ret _ -> assert false in
      let succ = Ir.find_block f l in
      b.Ir.b_insts <- b.Ir.b_insts @ succ.Ir.b_insts;
      b.Ir.b_term <- succ.Ir.b_term;
      f.Ir.f_blocks <- List.filter (fun x -> x.Ir.b_id <> l) f.Ir.f_blocks;
      changed := true
    | None -> ()
  done

let run_func (f : Ir.func) =
  fold_constant_branches f;
  thread_jumps f;
  remove_unreachable f;
  merge_linear f;
  remove_unreachable f

let run (p : Ir.program) =
  List.iter run_func p.Ir.p_funcs;
  p
