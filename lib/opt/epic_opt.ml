(** Machine-independent optimiser (the IMPACT role in the paper's flow).

    Passes (see {!Registry} for the per-pass metadata and the mutation
    contract; each pass takes and returns a program and mutates the
    argument's blocks/functions, so the pipeline driver copies first):
    - {!Simplify}: CFG cleaning — constant branches, jump threading,
      unreachable-block removal, linear-block merging.
    - {!Constfold}: block-local constant folding, constant/copy
      propagation, algebraic simplification, strength reduction.
    - {!Cse}: block-local common-subexpression elimination, including
      loads under a memory generation counter.
    - {!Dce}: liveness-based dead-code elimination.
    - {!Ifconvert}: if-conversion to predicated (guarded) instructions —
      the EPIC-specific transformation; run it only when the target
      supports predication.
    - {!Inline}: bottom-up function inlining (leaf callees that are small
      or single-use), which both removes call overhead and widens block
      scope for the scheduler.
    - {!Licm}: loop-invariant code motion to fresh preheaders (hoists
      global-address materialisation and invariant address arithmetic
      that block-local CSE cannot reach).

    Pipelines are driven by {!Pipeline}, which adds per-pass timing and
    IR-delta statistics, optional MIR verification ({!Epic_mir.Verify})
    between passes, and differential checking against the reference
    interpreter. *)

module Ir = Epic_mir.Ir
module Common = Common
module Simplify = Simplify
module Constfold = Constfold
module Cse = Cse
module Dce = Dce
module Ifconvert = Ifconvert
module Inline = Inline
module Licm = Licm
module Registry = Registry
module Pipeline = Pipeline

type pass = Registry.pass = {
  pass_name : string;
  pass_descr : string;
  pass_run : Ir.program -> Ir.program;
}

let simplify = Registry.simplify
let inline = Registry.inline
let inline_small = Registry.inline_small
let constfold = Registry.constfold
let cse = Registry.cse
let licm = Registry.licm
let dce = Registry.dce
let if_convert = Registry.if_convert

(* Two rounds: CSE exposes copies that constfold propagates, which exposes
   dead code, which exposes further merges. *)
let cleanup_passes =
  [ simplify; constfold; cse; constfold; dce; simplify; licm;
    constfold; cse; constfold; dce; simplify ]

let standard_passes = (simplify :: inline_small :: cleanup_passes)

let epic_passes =
  (simplify :: inline :: cleanup_passes) @ [ if_convert; constfold; dce; simplify ]

(** The default pass list for a target: O1 on EPIC (with or without
    if-conversion) or on the scalar baseline; the empty pipeline is O0. *)
let default_passes ~epic ~predication =
  if epic && predication then epic_passes else standard_passes

(** Run a pass list through the pipeline driver, discarding the report.
    Copies the input program first, so callers may mutate the result. *)
let apply ?options passes p = fst (Pipeline.run ?options passes p)

(** Optimise for a scalar target (no predication). *)
let standard p = apply standard_passes p

(** Optimise for the EPIC target: the standard pipeline plus
    if-conversion.  [~predication:false] disables if-conversion (the A4
    ablation). *)
let for_epic ?(predication = true) p =
  apply (default_passes ~epic:true ~predication) p

(** No optimisation at all: the empty pipeline (still copies, so callers
    may mutate). *)
let none p = apply [] p
