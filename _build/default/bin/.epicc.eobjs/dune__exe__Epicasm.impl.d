bin/epicasm.ml: Arg Array Bytes Cli_common Cmd Cmdliner Epic Format List Printf Term
