examples/quickstart.ml: Epic Format List Printf String
