# Convenience targets; everything is driven by dune underneath.

.PHONY: all build test check bench perf gate baseline fuzz serve-smoke \
	chaos-smoke explore-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate: full build, the complete test suite, and the epicprof
# golden flow (profile the SHA-256 example and validate the emitted
# Chrome trace with the profiler's own JSON parser via the test suite).
check:
	dune build
	dune runtest
	dune exec bin/epicprof.exe -- examples/sha256.c --format=chrome-trace \
	  -o _build/check_trace.json
	dune exec bench/main.exe -- inject-faults --quick
	$(MAKE) serve-smoke
	$(MAKE) chaos-smoke
	$(MAKE) explore-smoke
	@echo "make check: OK"

bench:
	dune exec bench/main.exe -- table1

# Host simulator throughput per workload (machine-dependent; the gated
# SHA probe plus the other three workloads).
perf:
	dune exec bench/main.exe -- perf

# Benchmark-regression gate: rerun the gated experiments, then compare
# cycle counts (exact), slice counts (exact), campaign wall time
# (budgeted) and host sim rate (lower band, tolerance committed in the
# baseline's meta) against the committed baseline.
gate:
	dune exec bench/main.exe -- table1 resources --json _build/bench_current.json
	dune exec bin/bench_gate.exe -- BENCH_BASELINE.json _build/bench_current.json

# Differential-fuzzing smoke campaign: a fixed seed so CI is
# reproducible, fanned out over the campaign engine.  Campaign stats go
# to stderr; stdout (findings + summary) is byte-identical for any
# --jobs value.
fuzz:
	dune exec bin/epicfuzz.exe -- --seed 0 --cases 1000 --jobs 2

# epicd smoke: spawn the daemon binary in pipe mode for each of two
# passes of the mixed scenario over a shared artifact cache.  epicload
# fails unless every request succeeds, the second pass is byte-identical
# and >= 90% disk hits, and the daemon's reported p95 latency meets the
# SLO — the full service acceptance gate in one command.
#
# Then the concurrent gate: one socket daemon (--max-conns 8), the same
# scenario replayed by 4 clients at once.  epicload fails unless every
# client gets every response back in request order and byte-identical to
# the others, the warm pass stays byte-identical and >= 90% disk hits,
# and the daemon reports dedup_hits > 0 (identical in-flight requests
# were collapsed across connections).  The final stats snapshot lands in
# _build/serve_smoke_stats.json for CI to archive.
serve-smoke:
	dune build bin/epicd.exe bin/epicload.exe
	rm -rf _build/serve_smoke_cache _build/serve_smoke_conc_cache
	rm -f _build/serve_smoke.sock _build/serve_smoke_stats.json
	dune exec bin/epicload.exe -- \
	  --epicd _build/default/bin/epicd.exe \
	  --cache-dir _build/serve_smoke_cache \
	  --scenario mixed --passes 2 --slo-p95-ms 30000 \
	  --slo-ref-rate 1.0e7 --expect-hit-rate 0.9
	_build/default/bin/epicd.exe --socket _build/serve_smoke.sock \
	  --max-conns 8 --jobs 2 --cache-dir _build/serve_smoke_conc_cache & \
	pid=$$!; \
	for i in $$(seq 1 100); do \
	  [ -S _build/serve_smoke.sock ] && break; sleep 0.1; \
	done; \
	_build/default/bin/epicload.exe \
	  --connect _build/serve_smoke.sock --clients 4 \
	  --scenario mixed --passes 2 --slo-p95-ms 30000 \
	  --slo-ref-rate 1.0e7 --expect-hit-rate 0.9 \
	  --stats-json _build/serve_smoke_stats.json; \
	st=$$?; kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; exit $$st
	@echo "serve-smoke: OK"

# Fault-injection campaign against the real daemon: seeded (so a failure
# replays exactly) and wall-clock-cheap (a few seconds warm).  Each
# injection — torn writes, bit flips, garbage/oversized frames, a
# slow-loris client, blown deadlines, SIGKILL and restart — must leave
# the daemon serving byte-identical responses from a >= 90%-warm cache.
# The JSON report lands in _build/chaos_report.json for CI to archive.
chaos-smoke:
	dune build bin/epicd.exe bin/epicload.exe
	rm -rf _build/chaos_smoke_cache
	dune exec bin/epicload.exe -- --chaos --chaos-seed 0 \
	  --epicd _build/default/bin/epicd.exe \
	  --cache-dir _build/chaos_smoke_cache \
	  --chaos-report _build/chaos_report.json --jobs 2
	@echo "chaos-smoke: OK"

# Design-space exploration smoke: a seeded campaign over the small
# workload variants, run cold at --jobs 4 and warm at --jobs 1 against
# the same disk cache.  The frontier document and the stdout report must
# be byte-identical across the two runs (jobs-invariance AND cold/warm
# identity in one comparison), the warm pass must hit the disk cache at
# >= 90%, and at least one discovered multi-op candidate (a GEN_xxxxxx
# custom instruction) must appear on a frontier.  CI raises the budget
# via EXPLORE_BUDGET.
EXPLORE_BUDGET ?= 600

explore-smoke:
	dune build bin/epic_explore.exe
	rm -rf _build/explore_smoke_cache
	dune exec bin/epic_explore.exe -- --small \
	  --budget $(EXPLORE_BUDGET) --seed 1 --jobs 4 \
	  --cache-dir _build/explore_smoke_cache \
	  --json _build/explore_cold.json > _build/explore_cold.txt
	dune exec bin/epic_explore.exe -- --small \
	  --budget $(EXPLORE_BUDGET) --seed 1 --jobs 1 \
	  --cache-dir _build/explore_smoke_cache \
	  --json _build/explore_warm.json \
	  --stats-json _build/explore_stats.json \
	  --expect-hit-rate 0.9 > _build/explore_warm.txt
	cmp _build/explore_cold.json _build/explore_warm.json
	cmp _build/explore_cold.txt _build/explore_warm.txt
	grep -q "GEN_" _build/explore_cold.txt
	@echo "explore-smoke: OK"

# Refresh the committed baseline after an intentional performance change.
baseline:
	dune exec bench/main.exe -- table1 resources --jobs 1 --json BENCH_BASELINE.json

clean:
	dune clean
	rm -f trace.json sha_trace.json
