bin/epicasm.mli:
