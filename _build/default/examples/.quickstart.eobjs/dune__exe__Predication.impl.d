examples/predication.ml: Array Epic List Printf String
