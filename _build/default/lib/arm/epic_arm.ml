(** The StrongARM SA-110 baseline (the paper compares against it using the
    SimIt-ARM simulator; this library is our substitute, fed from the same
    front-end and optimiser so the comparison isolates the architectures).

    - {!Arm_isa}: the ARM-like scalar instruction set.
    - {!Runtime}: software division (ARMv4 has no divide instruction) and
      the Div/Rem call rewrite.
    - {!Arm_codegen}: MIR -> ARM code generation.
    - {!Arm_sim}: the SA-110 cycle model. *)

module Isa = Arm_isa
module Runtime = Runtime
module Codegen = Arm_codegen
module Sim = Arm_sim

(** Compile an optimised MIR program (no guards) for the baseline.  The
    runtime is linked first, so the memory layout is computed here (the
    runtime adds globals) and returned along with the code. *)
let compile_program ?mem_bytes p =
  let p = Runtime.link_and_rewrite p in
  let layout = Epic_mir.Memmap.layout ?mem_bytes p in
  (Arm_codegen.gen_program layout p, layout, p)
