(* ARM-like scalar instruction set standing in for the StrongARM SA-110
   (the paper's hardcore baseline, measured with SimIt-ARM).  This is an
   abstraction of ARMv4: 16 registers (r13 = sp, r14 = lr), a flags
   register modelled as the operands of the last CMP, conditional moves
   (ARM conditional execution restricted to the MOV we need), and no
   divide instruction — division is a software routine, as on the real
   part.  Immediates are 16-bit signed (a simplification of ARM's rotated
   8-bit immediates plus literal pools; both targets materialise larger
   constants with short instruction chains, keeping the comparison fair). *)

type reg = int

let reg_rv = 0        (* r0: first argument and return value *)
let reg_arg0 = 0
let max_args = 4
let reg_scratch = 12
let reg_sp = 13
let reg_lr = 14
let n_regs = 16

type cond = Ceq | Cne | Clt | Cle | Cgt | Cge | Cltu | Cleu | Cgtu | Cgeu

type aluop = Aadd | Asub | Arsb | Amul | Aand | Aorr | Aeor | Abic
           | Alsl | Alsr | Aasr

type op2 = Rop of reg | Iop of int

type size = S8 | S16 | S32
type ext = Xs | Xz

type inst =
  | Alu of aluop * reg * reg * op2          (* rd <- rn OP op2 *)
  | Mov of reg * op2
  | Mvn of reg * op2                        (* rd <- lnot op2 *)
  | Cmp of reg * op2                        (* set flags *)
  | CondMov of cond * reg * op2             (* MOVcc *)
  | Ldr of size * ext * reg * reg * op2     (* rd <- mem[rn + op2] *)
  | Str of size * reg * reg * op2           (* mem[rn + op2] <- rs *)
  | B of string
  | Bc of cond * string
  | Bl of string
  | Bx of reg                               (* branch to register (return) *)
  | Halt

let imm_min = -32768
let imm_max = 32767
let imm_fits v = v >= imm_min && v <= imm_max

let string_of_cond = function
  | Ceq -> "EQ" | Cne -> "NE" | Clt -> "LT" | Cle -> "LE" | Cgt -> "GT"
  | Cge -> "GE" | Cltu -> "CC" | Cleu -> "LS" | Cgtu -> "HI" | Cgeu -> "CS"

let string_of_aluop = function
  | Aadd -> "ADD" | Asub -> "SUB" | Arsb -> "RSB" | Amul -> "MUL"
  | Aand -> "AND" | Aorr -> "ORR" | Aeor -> "EOR" | Abic -> "BIC"
  | Alsl -> "LSL" | Alsr -> "LSR" | Aasr -> "ASR"

let pp_op2 ppf = function
  | Rop r -> Format.fprintf ppf "r%d" r
  | Iop v -> Format.fprintf ppf "#%d" v

let size_suffix = function S8 -> "B" | S16 -> "H" | S32 -> ""

let pp_inst ppf = function
  | Alu (op, rd, rn, o) ->
    Format.fprintf ppf "%s r%d, r%d, %a" (string_of_aluop op) rd rn pp_op2 o
  | Mov (rd, o) -> Format.fprintf ppf "MOV r%d, %a" rd pp_op2 o
  | Mvn (rd, o) -> Format.fprintf ppf "MVN r%d, %a" rd pp_op2 o
  | Cmp (rn, o) -> Format.fprintf ppf "CMP r%d, %a" rn pp_op2 o
  | CondMov (c, rd, o) ->
    Format.fprintf ppf "MOV%s r%d, %a" (string_of_cond c) rd pp_op2 o
  | Ldr (sz, ext, rd, rn, o) ->
    Format.fprintf ppf "LDR%s%s r%d, [r%d, %a]"
      (match ext with Xs when sz <> S32 -> "S" | _ -> "")
      (size_suffix sz) rd rn pp_op2 o
  | Str (sz, rs, rn, o) ->
    Format.fprintf ppf "STR%s r%d, [r%d, %a]" (size_suffix sz) rs rn pp_op2 o
  | B l -> Format.fprintf ppf "B %s" l
  | Bc (c, l) -> Format.fprintf ppf "B%s %s" (string_of_cond c) l
  | Bl l -> Format.fprintf ppf "BL %s" l
  | Bx r -> Format.fprintf ppf "BX r%d" r
  | Halt -> Format.fprintf ppf "HALT"

type item = Label of string | Inst of inst

type program = item list

let pp_program ppf items =
  List.iter
    (function
      | Label l -> Format.fprintf ppf "%s:@." l
      | Inst i -> Format.fprintf ppf "        %a@." pp_inst i)
    items
