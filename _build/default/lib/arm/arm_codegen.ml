(* MIR -> ARM-like code generation for the SA-110 baseline.

   Convention (AAPCS-flavoured): r0-r3 arguments and return value, r4-r11
   allocatable (callee-saved by our prologue), r12 scratch, r13 sp,
   r14 lr.  Functions with more than 4 arguments are rejected (none of
   the benchmarks needs them). *)

module Ir = Epic_mir.Ir
module Memmap = Epic_mir.Memmap
module Regalloc = Epic_regalloc
module I = Arm_isa

exception Codegen_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Codegen_error s)) fmt

type ctx = { layout : Memmap.t; mutable out : I.item list (* reversed *) }

let emit ctx i = ctx.out <- I.Inst i :: ctx.out

(* Materialise a 32-bit constant with MOV/LSL/ORR chains (standing in for
   ARMv4 literal pools; see Arm_isa). *)
let emit_const ctx rd v =
  let v32 = v land 0xFFFFFFFF in
  let signed = if v32 land 0x80000000 <> 0 then v32 - 0x100000000 else v32 in
  if I.imm_fits signed then emit ctx (I.Mov (rd, I.Iop signed))
  else begin
    let c0 = v32 land 0x1FFF in
    let c1 = (v32 lsr 13) land 0x1FFF in
    let c2 = v32 lsr 26 in
    if c2 <> 0 then begin
      emit ctx (I.Mov (rd, I.Iop c2));
      emit ctx (I.Alu (I.Alsl, rd, rd, I.Iop 13));
      emit ctx (I.Alu (I.Aorr, rd, rd, I.Iop c1))
    end
    else emit ctx (I.Mov (rd, I.Iop c1));
    emit ctx (I.Alu (I.Alsl, rd, rd, I.Iop 13));
    emit ctx (I.Alu (I.Aorr, rd, rd, I.Iop c0))
  end

(* Operand conversion; big immediates go through a scratch register. *)
let op2_of ctx ~scratch (o : Ir.operand) =
  match o with
  | Ir.Reg r -> I.Rop r
  | Ir.Imm v ->
    let v32 = v land 0xFFFFFFFF in
    let signed = if v32 land 0x80000000 <> 0 then v32 - 0x100000000 else v32 in
    if I.imm_fits signed then I.Iop signed
    else begin
      match !scratch with
      | s :: rest ->
        scratch := rest;
        emit_const ctx s v;
        I.Rop s
      | [] -> fail "out of scratch registers materialising %d" v
    end

(* A register holding the operand (ALU rn and MUL operands must be
   registers). *)
let reg_of ctx ~scratch o =
  match op2_of ctx ~scratch o with
  | I.Rop r -> r
  | I.Iop v ->
    (match !scratch with
     | s :: rest ->
       scratch := rest;
       emit ctx (I.Mov (s, I.Iop v));
       s
     | [] -> fail "out of scratch registers for %d" v)

let cond_of_relop = function
  | Ir.Req -> I.Ceq | Ir.Rne -> I.Cne | Ir.Rlt -> I.Clt | Ir.Rle -> I.Cle
  | Ir.Rgt -> I.Cgt | Ir.Rge -> I.Cge | Ir.Rltu -> I.Cltu | Ir.Rleu -> I.Cleu
  | Ir.Rgtu -> I.Cgtu | Ir.Rgeu -> I.Cgeu

let size_of = function Ir.I8 -> I.S8 | Ir.I16 -> I.S16 | Ir.I32 -> I.S32

let scratches ?dst ~reads () =
  match dst with
  | Some d when (not (List.mem d reads)) && d <> I.reg_scratch -> [ d; I.reg_scratch ]
  | _ -> [ I.reg_scratch ]

let operand_reads ops =
  List.filter_map (function Ir.Reg r -> Some r | Ir.Imm _ -> None) ops

let emit_inst ctx (i : Ir.inst) =
  if i.Ir.guard <> None then
    fail "the scalar baseline pipeline must not see guarded instructions";
  match i.Ir.kind with
  | Ir.Bin (op, d, a, b) ->
    let scratch = ref (scratches ~dst:d ~reads:(operand_reads [ a; b ]) ()) in
    (match op with
     | Ir.Add | Ir.Sub | Ir.And | Ir.Or | Ir.Xor | Ir.Shl | Ir.Shr | Ir.Shra ->
       let rn = reg_of ctx ~scratch a in
       let o2 = op2_of ctx ~scratch b in
       let aop = match op with
         | Ir.Add -> I.Aadd | Ir.Sub -> I.Asub | Ir.And -> I.Aand
         | Ir.Or -> I.Aorr | Ir.Xor -> I.Aeor | Ir.Shl -> I.Alsl
         | Ir.Shr -> I.Alsr | Ir.Shra -> I.Aasr
         | _ -> assert false
       in
       emit ctx (I.Alu (aop, d, rn, o2))
     | Ir.Mul ->
       let rn = reg_of ctx ~scratch a in
       let rm = reg_of ctx ~scratch b in
       emit ctx (I.Alu (I.Amul, d, rn, I.Rop rm))
     | Ir.Min | Ir.Max ->
       let ra = reg_of ctx ~scratch a in
       let o2 = op2_of ctx ~scratch b in
       emit ctx (I.Cmp (ra, o2));
       (match o2 with
        | I.Rop r when r = d ->
          (* b already lives in d: overwrite d with a only when a wins. *)
          emit ctx
            (I.CondMov ((if op = Ir.Min then I.Cle else I.Cge), d, I.Rop ra))
        | _ ->
          (* CMP precedes the writes, so d aliasing a is harmless. *)
          if d <> ra then emit ctx (I.Mov (d, I.Rop ra));
          emit ctx (I.CondMov ((if op = Ir.Min then I.Cgt else I.Clt), d, o2)))
     | Ir.Div | Ir.Rem ->
       fail "Div/Rem must be lowered to runtime calls before ARM codegen")
  | Ir.Mov (d, Ir.Imm v) -> emit_const ctx d v
  | Ir.Mov (d, Ir.Reg r) -> emit ctx (I.Mov (d, I.Rop r))
  | Ir.Cmp (rel, d, a, b) ->
    (* CMP first: d may alias an operand register, and MOV does not
       disturb the flags. *)
    let scratch = ref (scratches ~reads:(operand_reads [ a; b ]) ()) in
    let ra = reg_of ctx ~scratch a in
    let o2 = op2_of ctx ~scratch b in
    emit ctx (I.Cmp (ra, o2));
    emit ctx (I.Mov (d, I.Iop 0));
    emit ctx (I.CondMov (cond_of_relop rel, d, I.Iop 1))
  | Ir.Setp _ -> fail "the scalar baseline has no predicate registers"
  | Ir.Custom (name, _, _, _) ->
    fail "custom operation %s has no scalar equivalent; compile without it" name
  | Ir.Load (sz, e, d, base, off) ->
    let scratch = ref (scratches ~dst:d ~reads:(operand_reads [ base; off ]) ()) in
    let rn = reg_of ctx ~scratch base in
    let o2 = op2_of ctx ~scratch off in
    emit ctx (I.Ldr (size_of sz, (match e with Ir.Sx -> I.Xs | Ir.Zx -> I.Xz), d, rn, o2))
  | Ir.Store (sz, addr, v) ->
    let scratch = ref [ I.reg_scratch ] in
    let rn = reg_of ctx ~scratch addr in
    let rs =
      match v with
      | Ir.Reg r -> r
      | Ir.Imm value ->
        (match !scratch with
         | s :: rest -> scratch := rest; emit_const ctx s value; s
         | [] -> fail "out of scratch registers for store value")
    in
    emit ctx (I.Str (size_of sz, rs, rn, I.Iop 0))
  | Ir.Call (d, fname, args) ->
    if List.length args > I.max_args then
      fail "%s passes %d arguments; the ARM convention here supports %d" fname
        (List.length args) I.max_args;
    List.iteri
      (fun k (arg : Ir.operand) ->
        let dst = I.reg_arg0 + k in
        match arg with
        | Ir.Reg r -> emit ctx (I.Mov (dst, I.Rop r))
        | Ir.Imm v -> emit_const ctx dst v)
      args;
    emit ctx (I.Bl fname);
    (match d with
     | Some d when d <> I.reg_rv -> emit ctx (I.Mov (d, I.Rop I.reg_rv))
     | Some _ | None -> ())
  | Ir.AddrOf (d, g) -> emit_const ctx d (Memmap.addr_of ctx.layout g)
  | Ir.FrameAddr (d, off) ->
    if I.imm_fits off then emit ctx (I.Alu (I.Aadd, d, I.reg_sp, I.Iop off))
    else begin
      emit_const ctx d off;
      emit ctx (I.Alu (I.Aadd, d, I.reg_sp, I.Rop d))
    end
  | Ir.LoadFrame (d, off) ->
    if not (I.imm_fits off) then fail "frame offset %d too large" off;
    emit ctx (I.Ldr (I.S32, I.Xz, d, I.reg_sp, I.Iop off))
  | Ir.StoreFrame (off, r) ->
    if not (I.imm_fits off) then fail "frame offset %d too large" off;
    emit ctx (I.Str (I.S32, r, I.reg_sp, I.Iop off))

let block_label fname id = Printf.sprintf ".A%s_%d" fname id

let align8 v = (v + 7) land lnot 7

let rebase_frame_offsets (f : Ir.func) delta =
  if delta <> 0 then
    List.iter
      (fun (b : Ir.block) ->
        b.Ir.b_insts <-
          List.map
            (fun (i : Ir.inst) ->
              let kind =
                match i.Ir.kind with
                | Ir.FrameAddr (d, off) -> Ir.FrameAddr (d, off + delta)
                | Ir.LoadFrame (d, off) -> Ir.LoadFrame (d, off + delta)
                | Ir.StoreFrame (off, r) -> Ir.StoreFrame (off + delta, r)
                | k -> k
              in
              { i with Ir.kind })
            b.Ir.b_insts)
      f.Ir.f_blocks

let gen_func layout (f : Ir.func) : I.item list =
  if List.length f.Ir.f_params > I.max_args then
    fail "%s takes %d parameters; the ARM convention here supports %d" f.Ir.f_name
      (List.length f.Ir.f_params) I.max_args;
  let pool = [ 4; 5; 6; 7; 8; 9; 10; 11 ] in
  let ra = Regalloc.allocate f ~pool in
  let body = ra.Regalloc.fn in
  let makes_calls =
    List.exists
      (fun (b : Ir.block) ->
        List.exists
          (fun (i : Ir.inst) -> match i.Ir.kind with Ir.Call _ -> true | _ -> false)
          b.Ir.b_insts)
      body.Ir.f_blocks
  in
  let saves = (if makes_calls then [ I.reg_lr ] else []) @ ra.Regalloc.used_regs in
  let save_bytes = 4 * List.length saves in
  rebase_frame_offsets body save_bytes;
  let frame_total = align8 (save_bytes + body.Ir.f_frame_bytes) in
  if not (I.imm_fits frame_total) then fail "%s frame too large" f.Ir.f_name;
  let ctx = { layout; out = [] } in
  ctx.out <- [ I.Label f.Ir.f_name ];
  if frame_total > 0 then emit ctx (I.Alu (I.Asub, I.reg_sp, I.reg_sp, I.Iop frame_total));
  List.iteri (fun k r -> emit ctx (I.Str (I.S32, r, I.reg_sp, I.Iop (4 * k)))) saves;
  List.iteri
    (fun k loc ->
      let arg = I.reg_arg0 + k in
      match (loc : Regalloc.location option) with
      | Some (Regalloc.Lreg p) -> if p <> arg then emit ctx (I.Mov (p, I.Rop arg))
      | Some (Regalloc.Lslot off) ->
        emit ctx (I.Str (I.S32, arg, I.reg_sp, I.Iop (off + save_bytes)))
      | None -> ())
    ra.Regalloc.param_locs;
  let epilogue () =
    List.iteri (fun k r -> emit ctx (I.Ldr (I.S32, I.Xz, r, I.reg_sp, I.Iop (4 * k)))) saves;
    if frame_total > 0 then emit ctx (I.Alu (I.Aadd, I.reg_sp, I.reg_sp, I.Iop frame_total));
    emit ctx (I.Bx I.reg_lr)
  in
  let order = List.map (fun (b : Ir.block) -> b.Ir.b_id) body.Ir.f_blocks in
  let next_of =
    let rec pairs = function
      | a :: (b :: _ as rest) -> (a, Some b) :: pairs rest
      | [ a ] -> [ (a, None) ]
      | [] -> []
    in
    pairs order
  in
  List.iter
    (fun (b : Ir.block) ->
      ctx.out <- I.Label (block_label f.Ir.f_name b.Ir.b_id) :: ctx.out;
      List.iter (emit_inst ctx) b.Ir.b_insts;
      let next = List.assoc b.Ir.b_id next_of in
      match b.Ir.b_term with
      | Ir.Ret o ->
        (match o with
         | Some (Ir.Reg r) -> if r <> I.reg_rv then emit ctx (I.Mov (I.reg_rv, I.Rop r))
         | Some (Ir.Imm v) -> emit_const ctx I.reg_rv v
         | None -> emit ctx (I.Mov (I.reg_rv, I.Iop 0)));
        epilogue ()
      | Ir.Jmp l ->
        if next <> Some l then emit ctx (I.B (block_label f.Ir.f_name l))
      | Ir.Br (rel, x, y, lt, lf) ->
        let scratch = ref [ I.reg_scratch ] in
        let rx = reg_of ctx ~scratch x in
        let o2 = op2_of ctx ~scratch y in
        emit ctx (I.Cmp (rx, o2));
        if next = Some lf then emit ctx (I.Bc (cond_of_relop rel, block_label f.Ir.f_name lt))
        else if next = Some lt then begin
          let neg = function
            | I.Ceq -> I.Cne | I.Cne -> I.Ceq | I.Clt -> I.Cge | I.Cle -> I.Cgt
            | I.Cgt -> I.Cle | I.Cge -> I.Clt | I.Cltu -> I.Cgeu
            | I.Cleu -> I.Cgtu | I.Cgtu -> I.Cleu | I.Cgeu -> I.Cltu
          in
          emit ctx (I.Bc (neg (cond_of_relop rel), block_label f.Ir.f_name lf))
        end
        else begin
          emit ctx (I.Bc (cond_of_relop rel, block_label f.Ir.f_name lt));
          emit ctx (I.B (block_label f.Ir.f_name lf))
        end)
    body.Ir.f_blocks;
  List.rev ctx.out

let gen_start layout : I.item list =
  let ctx = { layout; out = [] } in
  ctx.out <- [ I.Label "_start" ];
  emit_const ctx I.reg_sp layout.Memmap.stack_top;
  emit ctx (I.Bl "main");
  emit ctx I.Halt;
  List.rev ctx.out

let gen_program layout (p : Ir.program) : I.program =
  if Ir.find_func p "main" = None then fail "program has no main function";
  gen_start layout @ List.concat_map (gen_func layout) p.Ir.p_funcs
