(** EPIC-C front-end: the machine-independent entry to the toolchain (the
    IMPACT role in the paper's Trimaran-based flow).

    - {!Lexer}, {!Parser}: concrete syntax of the C subset.
    - {!Ast}: abstract syntax.
    - {!Lower}: AST to MIR translation.

    The usual entry point is {!compile}. *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Lower = Lower

exception Error of string
(** Any front-end failure (lexical, syntactic or semantic), with a
    position-annotated message. *)

(** [compile ?unroll source] parses and lowers EPIC-C.  [unroll] fully
    unrolls counted [for] loops with at most that many iterations
    (default 1 = off); the toolchain drivers enable it. *)
let compile ?unroll source =
  try Lower.lower_program ?unroll (Parser.parse_program source) with
  | Lexer.Lex_error (m, p) ->
    raise (Error (Printf.sprintf "lexical error: %s (%s)" m (Ast.string_of_pos p)))
  | Parser.Parse_error (m, p) ->
    raise (Error (Printf.sprintf "syntax error: %s (%s)" m (Ast.string_of_pos p)))
  | Lower.Sema_error (m, p) ->
    raise (Error (Printf.sprintf "semantic error: %s (%s)" m (Ast.string_of_pos p)))
