(* Front-end tests: EPIC-C programs are compiled to MIR and executed with
   the reference interpreter; results are compared against the C semantics
   computed by hand (or by OCaml). *)

module Cfront = Epic.Cfront
module Interp = Epic.Interp
module Ir = Epic.Ir

let run ?args src =
  let p = Cfront.compile src in
  (match Ir.validate_program p with
   | Ok () -> ()
   | Error m -> Alcotest.failf "invalid MIR: %s" m);
  (Interp.run ?args p ~entry:"main").Interp.ret

let check_run name expected ?args src =
  Alcotest.(check int) name (expected land 0xFFFFFFFF) (run ?args src)

let expect_error src =
  match Cfront.compile src with
  | exception Cfront.Error _ -> ()
  | _ -> Alcotest.fail "expected a front-end error"

let test_return_constant () =
  check_run "42" 42 "int main() { return 42; }";
  check_run "hex" 0xABCD "int main() { return 0xABCD; }";
  check_run "char" 65 "int main() { return 'A'; }";
  check_run "escape" 10 "int main() { return '\\n'; }";
  check_run "negative" (-7) "int main() { return -7; }";
  check_run "void return" 0 "int main() { return; }";
  check_run "fallthrough" 0 "int main() { int x; x = 3; }"

let test_arithmetic () =
  check_run "prec" 14 "int main() { return 2 + 3 * 4; }";
  check_run "paren" 20 "int main() { return (2 + 3) * 4; }";
  check_run "div" 3 "int main() { return 10 / 3; }";
  check_run "rem" 1 "int main() { return 10 % 3; }";
  check_run "neg div" (-3) "int main() { return -10 / 3; }";
  check_run "bitops" (0b1100 lxor 0b1010) "int main() { return 12 ^ 10; }";
  check_run "and or" 0b1110 "int main() { return (12 & 10) | (12 ^ 10); }";
  check_run "shl" 40 "int main() { return 5 << 3; }";
  check_run "shr arith" (-1) "int main() { return -1 >> 4; }";
  check_run "lsr intrinsic" 0x0FFFFFFF "int main() { return __lsr(-1, 4); }";
  check_run "asr intrinsic" (-1) "int main() { return __asr(-1, 4); }";
  check_run "min" 3 "int main() { return __min(7, 3); }";
  check_run "max" 7 "int main() { return __max(7, 3); }";
  check_run "min negative" (-7) "int main() { return __min(-7, 3); }";
  check_run "unary not" (-13) "int main() { return ~12; }";
  check_run "logical not" 1 "int main() { return !0; }";
  check_run "logical not nonzero" 0 "int main() { return !42; }";
  check_run "wrap add" 0 "int main() { return 0x7FFFFFFF + 0x7FFFFFFF + 2; }"

let test_comparisons () =
  check_run "lt" 1 "int main() { return 3 < 4; }";
  check_run "ge" 0 "int main() { return 3 >= 4; }";
  check_run "eq" 1 "int main() { return 5 == 5; }";
  check_run "signed compare" 1 "int main() { return -1 < 1; }";
  check_run "cmp in arith" 11 "int main() { return 10 + (3 < 4); }"

let test_short_circuit () =
  check_run "and both" 1 "int main() { return 1 && 2; }";
  check_run "and first false" 0 "int main() { return 0 && 1; }";
  check_run "or" 1 "int main() { return 0 || 3; }";
  (* Short-circuiting must not evaluate the second operand. *)
  check_run "no div by zero" 0
    "int g = 0;\n\
     int boom() { g = g / g; return 1; }\n\
     int main() { return 0 && boom(); }";
  check_run "ternary" 10 "int main() { return 1 ? 10 : 20; }";
  check_run "ternary false" 20 "int main() { return 0 ? 10 : 20; }";
  check_run "nested ternary" 3 "int main() { int x; x = 7; return x < 5 ? 1 : x < 10 ? 3 : 5; }"

let test_control_flow () =
  check_run "if" 1 "int main() { if (3 < 4) return 1; return 2; }";
  check_run "if else" 2 "int main() { if (4 < 3) return 1; else return 2; }";
  check_run "while sum" 55
    "int main() { int s; int i; s = 0; i = 1; while (i <= 10) { s += i; i++; } return s; }";
  check_run "for sum" 55 "int main() { int s = 0; for (int i = 1; i <= 10; i++) s += i; return s; }";
  check_run "do while" 1 "int main() { int i = 0; do { i++; } while (i < 1); return i; }";
  check_run "break" 5 "int main() { int i; for (i = 0; i < 10; i++) { if (i == 5) break; } return i; }";
  check_run "continue" 25
    "int main() { int s = 0; for (int i = 0; i < 10; i++) { if (i % 2 == 0) continue; s += i; } return s; }";
  check_run "nested loops" 100
    "int main() { int s = 0; for (int i = 0; i < 10; i++) for (int j = 0; j < 10; j++) s++; return s; }";
  check_run "infinite for with break" 7
    "int main() { int i = 0; for (;;) { i++; if (i == 7) break; } return i; }"

let test_functions () =
  check_run "call" 7 "int add(int a, int b) { return a + b; } int main() { return add(3, 4); }";
  check_run "recursion" 120
    "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }\n\
     int main() { return fact(5); }";
  check_run "fib" 55
    "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
     int main() { return fib(10); }";
  (* Mutual recursion works without prototypes: all functions are in
     scope for the whole program. *)
  check_run "mutual" 1
    "int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }\n\
     int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }\n\
     int main() { return is_odd(7); }";
  check_run "void function" 5
    "int g = 0;\n\
     void bump(int n) { g += n; }\n\
     int main() { bump(2); bump(3); return g; }"

let test_globals () =
  check_run "global scalar" 12 "int g = 5; int main() { g = g + 7; return g; }";
  check_run "global default zero" 0 "int g; int main() { return g; }";
  check_run "global array" 6
    "int a[3] = { 1, 2, 3 };\n\
     int main() { return a[0] + a[1] + a[2]; }";
  check_run "global array write" 99
    "int a[10];\n\
     int main() { a[5] = 99; return a[5]; }";
  check_run "array zero fill" 3
    "int a[4] = { 1, 2 };\n\
     int main() { return a[0] + a[1] + a[2] + a[3]; }";
  check_run "negative initialiser" (-5) "int g = -5; int main() { return g; }"

let test_local_arrays () =
  check_run "local array" 10
    "int main() { int a[4]; a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;\n\
     return a[0] + a[1] + a[2] + a[3]; }";
  check_run "array param" 6
    "int sum(int a[], int n) { int s = 0; for (int i = 0; i < n; i++) s += a[i]; return s; }\n\
     int main() { int a[3]; a[0] = 1; a[1] = 2; a[2] = 3; return sum(a, 3); }";
  check_run "two frames" 30
    "int fill(int a[], int n, int v) { for (int i = 0; i < n; i++) a[i] = v; return 0; }\n\
     int sum(int a[], int n) { int s = 0; for (int i = 0; i < n; i++) s += a[i]; return s; }\n\
     int main() { int x[5]; int y[5]; fill(x, 5, 2); fill(y, 5, 4); return sum(x, 5) + sum(y, 5); }"

let test_compound_assign () =
  check_run "+=" 15 "int main() { int x = 10; x += 5; return x; }";
  check_run "<<=" 40 "int main() { int x = 5; x <<= 3; return x; }";
  check_run "array +=" 7 "int a[2]; int main() { a[1] = 3; a[1] += 4; return a[1]; }";
  check_run "global -=" 3 "int g = 10; int main() { g -= 7; return g; }";
  check_run "++ stmt" 6 "int main() { int i = 5; i++; return i; }";
  check_run "prefix ++" 6 "int main() { int i = 5; ++i; return i; }";
  check_run "-- stmt" 4 "int main() { int i = 5; i--; return i; }"

let test_scoping () =
  check_run "shadowing" 5
    "int main() { int x = 5; { int x = 9; x = 10; } return x; }";
  check_run "for scope" 3
    "int main() { int i = 3; for (int i = 0; i < 10; i++) { } return i; }"

let test_args () =
  check_run "main with args" 30 ~args:[ 10; 20 ]
    "int main(int a, int b) { return a + b; }"

let test_custom_intrinsic () =
  let p = Cfront.compile "int main() { return __x_rotr(0x80000001, 1); }" in
  let custom name a b =
    Alcotest.(check string) "custom name" "ROTR" name;
    ((a lsr b) lor (a lsl (32 - b))) land 0xFFFFFFFF
  in
  Alcotest.(check int) "rotr" 0xC0000000 (Interp.run ~custom p ~entry:"main").Interp.ret

let test_errors () =
  expect_error "int main() { return x; }";
  expect_error "int main() { foo(); }";
  expect_error "int main() { return 1 +; }";
  expect_error "int main() { if (1) }";
  expect_error "int f(int a, int a) { return a; }";
  expect_error "int g; int g; int main() { return 0; }";
  expect_error "int f() { return 0; } int f() { return 1; } int main() { return 0; }";
  expect_error "int main() { break; }";
  expect_error "int main() { continue; }";
  expect_error "int a[2]; int main() { a = 3; return 0; }";
  expect_error "int main() { int x; return x[0]; }";
  expect_error "int f(int a) { return a; } int main() { return f(1, 2); }";
  expect_error "int main() { return __lsr(1); }";
  expect_error "int a[-1]; int main() { return 0; }" |> ignore;
  expect_error "int main() { int a[0]; return 0; }";
  expect_error "int a[2] = {1,2,3}; int main() { return 0; }";
  expect_error "int main() { return 1 } ";
  expect_error "int main() { /* unterminated"

let test_comments_and_format () =
  check_run "comments" 3
    "// leading comment\n\
     int main() { /* block\n comment */ return 3; // trailing\n }"

(* Property: sum of a PRNG-filled array computed by a compiled loop matches
   OCaml's fold. *)
let prop_array_sum =
  QCheck.Test.make ~name:"compiled array sum matches OCaml" ~count:30
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (int_range (-10000) 10000))
    (fun xs ->
      let n = List.length xs in
      let inits = String.concat ", " (List.map string_of_int xs) in
      let src =
        Printf.sprintf
          "int a[%d] = { %s };\n\
           int main() { int s = 0; for (int i = 0; i < %d; i++) s += a[i]; return s; }"
          n inits n
      in
      run src = List.fold_left ( + ) 0 xs land 0xFFFFFFFF)

(* Property: expression evaluation matches OCaml for a random arithmetic
   expression over two variables (restricted to total operations). *)
let prop_expr_eval =
  let open QCheck in
  Test.make ~name:"expression semantics match OCaml" ~count:200
    (triple (int_range (-1000) 1000) (int_range (-1000) 1000) (int_bound 5))
    (fun (x, y, k) ->
      let exprs =
        [| ("x + y * 3", fun x y -> x + (y * 3));
           ("(x ^ y) & 0xFF", fun x y -> (x lxor y) land 0xFF);
           ("x - (y << 2)", fun x y -> x - (y lsl 2));
           ("(x > y) + (x < y)", fun x y -> (if x > y then 1 else 0) + if x < y then 1 else 0);
           ("__max(x, y) - __min(x, y)", fun x y -> max x y - min x y);
           ("x * y + (x % 7) * (y % 5)", fun x y -> (x * y) + (x mod 7 * (y mod 5))) |]
      in
      let text, f = exprs.(k) in
      let src = Printf.sprintf "int main(int x, int y) { return %s; }" text in
      run ~args:[ x land 0xFFFFFFFF; y land 0xFFFFFFFF ] src = f x y land 0xFFFFFFFF)

let suite =
  [
    Alcotest.test_case "return constants" `Quick test_return_constant;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "short-circuit and ternary" `Quick test_short_circuit;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "functions" `Quick test_functions;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "local arrays" `Quick test_local_arrays;
    Alcotest.test_case "compound assignment" `Quick test_compound_assign;
    Alcotest.test_case "scoping" `Quick test_scoping;
    Alcotest.test_case "main arguments" `Quick test_args;
    Alcotest.test_case "custom intrinsic" `Quick test_custom_intrinsic;
    Alcotest.test_case "front-end errors" `Quick test_errors;
    Alcotest.test_case "comments" `Quick test_comments_and_format;
    QCheck_alcotest.to_alcotest prop_array_sum;
    QCheck_alcotest.to_alcotest prop_expr_eval;
  ]
