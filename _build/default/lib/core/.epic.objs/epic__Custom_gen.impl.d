lib/core/custom_gen.ml: Array Epic_config Epic_isa Epic_mir Epic_opt Format Hashtbl List Option Printf
