examples/auto_custom.mli:
