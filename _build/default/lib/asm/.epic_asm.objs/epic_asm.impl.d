lib/asm/epic_asm.ml: Aunit Text
