(* Deterministic xorshift32 generator.  The benchmark C sources embed the
   same algorithm to synthesise their inputs (the paper's 256x256 PPM
   images and graphs are proprietary-free but unavailable; a fixed PRNG
   stream exercises the same code paths), and the OCaml reference
   implementations replay the identical stream through this module. *)

type t = { mutable state : int }

let default_seed = 0x2545F491

let create ?(seed = default_seed) () =
  if seed land 0xFFFFFFFF = 0 then invalid_arg "Prng.create: seed must be non-zero";
  { state = seed land 0xFFFFFFFF }

let m32 v = v land 0xFFFFFFFF

let next t =
  let s = t.state in
  let s = m32 (s lxor m32 (s lsl 13)) in
  let s = m32 (s lxor (s lsr 17)) in
  let s = m32 (s lxor m32 (s lsl 5)) in
  t.state <- s;
  s

let next_byte t = next t land 0xFF

(* Benchmarks derive bounded values by masking, never by [mod]: the C
   subset's remainder is signed and would disagree on values >= 2^31. *)
let next_masked t mask = next t land mask

(* The C-subset implementation of the same generator, for inclusion in
   benchmark sources.  [seed] must match the OCaml side. *)
let c_source ?(seed = default_seed) () =
  Printf.sprintf
    "int __prng_state = %d;\n\
     int prng_next() {\n\
     \  int s = __prng_state;\n\
     \  s = s ^ (s << 13);\n\
     \  s = s ^ __lsr(s, 17);\n\
     \  s = s ^ (s << 5);\n\
     \  __prng_state = s;\n\
     \  return s;\n\
     }\n"
    seed
