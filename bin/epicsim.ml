(* epicsim: compile an EPIC-C program and run it on the cycle-level
   simulator of the configured processor (and optionally on the SA-110
   baseline for comparison). *)

open Cmdliner

let pct total n =
  if total = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int total

let run input cfg no_pred compare_arm verbose trace profile fuel pipeline =
  Cli_common.handle_errors @@ fun () ->
  let source = Cli_common.read_file input in
  let a =
    Epic.Toolchain.compile_epic cfg ~source ~predication:(not no_pred)
      ~pipeline ()
  in
  Cli_common.report_pipeline pipeline a.Epic.Toolchain.ea_report;
  let prof =
    if profile then Some (Epic.Profile.create cfg a.Epic.Toolchain.ea_image)
    else None
  in
  let r =
    Epic.Toolchain.run_epic ?fuel
      ?trace:(if trace then Some Format.err_formatter else None) ?profile:prof a
  in
  (match r.Epic.Sim.trap with
   | Some t ->
     (* Graceful termination: partial statistics plus the machine-readable
        trap, with a distinct exit code for the watchdog (3) versus other
        architectural faults (2). *)
     Printf.printf "EPIC (%d ALUs, %d-issue): %s\n" cfg.Epic.Config.n_alus
       cfg.Epic.Config.issue_width
       (Format.asprintf "%a" Epic.Sim.pp_trap t);
     Printf.printf "r3 at trap: %d (0x%08x)\n" r.Epic.Sim.ret r.Epic.Sim.ret;
     Format.printf "partial statistics:@.%a@." Epic.Sim.pp_stats r.Epic.Sim.stats;
     exit (Cli_common.trap_exit_code t)
   | None -> ());
  Printf.printf "EPIC (%d ALUs, %d-issue, %.1f MHz): returned %d (0x%08x)\n"
    cfg.Epic.Config.n_alus cfg.Epic.Config.issue_width
    (Epic.Area.estimate cfg).Epic.Area.clock_mhz r.Epic.Sim.ret r.Epic.Sim.ret;
  let st = r.Epic.Sim.stats in
  if verbose then begin
    Format.printf "%a@." Epic.Sim.pp_stats st;
    Printf.printf
      "stall breakdown: operand %.1f%%, port %.1f%%, branch %.1f%% of %d cycles\n"
      (pct st.Epic.Sim.cycles st.Epic.Sim.operand_stalls)
      (pct st.Epic.Sim.cycles st.Epic.Sim.port_stalls)
      (pct st.Epic.Sim.cycles st.Epic.Sim.branch_bubbles)
      st.Epic.Sim.cycles
  end
  else
    Printf.printf "cycles: %d  ILP: %.2f\n" st.Epic.Sim.cycles
      (Epic.Sim.ilp st);
  (match prof with
   | Some p ->
     Format.printf "@.%a@." Epic.Profile.pp_report (Epic.Profile.report p)
   | None -> ());
  if compare_arm then begin
    let aa = Epic.Toolchain.compile_arm ~source () in
    let ra = Epic.Toolchain.run_arm aa in
    Printf.printf "SA-110 (100 MHz): returned %d (0x%08x)\n" ra.Epic.Arm.Sim.ret
      ra.Epic.Arm.Sim.ret;
    if verbose then Format.printf "%a@." Epic.Arm.Sim.pp_stats ra.Epic.Arm.Sim.stats
    else Printf.printf "cycles: %d\n" ra.Epic.Arm.Sim.stats.Epic.Arm.Sim.cycles;
    let ec = float_of_int r.Epic.Sim.stats.Epic.Sim.cycles in
    let ac = float_of_int ra.Epic.Arm.Sim.stats.Epic.Arm.Sim.cycles in
    let eclk = (Epic.Area.estimate cfg).Epic.Area.clock_mhz *. 1e6 in
    Printf.printf "same-clock speedup: %.2fx;  wall-clock speedup: %.2fx\n"
      (ac /. ec)
      (ac /. 100e6 /. (ec /. eclk))
  end

let cmd =
  let no_pred = Arg.(value & flag & info [ "no-predication" ] ~doc:"Disable if-conversion.") in
  let compare_arm =
    Arg.(value & flag & info [ "compare-sa110" ] ~doc:"Also run the StrongARM SA-110 baseline.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Full statistics.") in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print every issued bundle to stderr.")
  in
  let profile =
    Arg.(value & flag & info [ "profile" ]
         ~doc:"Attach the cycle-attribution profiler and print its report \
               (epicprof offers more output formats).")
  in
  let fuel =
    Arg.(value & opt (some int) None
         & info [ "fuel" ] ~docv:"CYCLES"
           ~doc:"Watchdog: end the run after CYCLES simulated cycles with \
                 partial statistics and a fuel trap (exit code 3).")
  in
  Cmd.v
    (Cmd.info "epicsim" ~doc:"Run EPIC-C programs on the cycle-level EPIC simulator")
    Term.(const run $ Cli_common.input_term $ Cli_common.config_term $ no_pred
          $ compare_arm $ verbose $ trace $ profile $ fuel
          $ Cli_common.pipeline_term)

let () = exit (Cmd.eval cmd)
