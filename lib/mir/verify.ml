(* MIR well-formedness verifier, run between optimisation passes (under
   the pipeline's [~verify] flag) and by the test suite.  It subsumes the
   structural checks of {!Ir.validate_program} and adds the dataflow
   invariants a pass can silently break:

   - block ids unique within a function, at least one block, the entry
     block first in layout order;
   - every branch target resolves to a block of the same function;
   - every vreg/preg index (uses, defs, guards, parameters) lies within
     [f_nvregs]/[f_npregs];
   - frame accesses stay inside [f_frame_bytes];
   - calls resolve to a function of the program with matching arity;
   - global names unique and initialisers no larger than the allocation;
   - operands are defined where required: a forward must-be-defined
     dataflow over both register classes flags any use that some path
     reaches without a prior definition.  A guarded (predicated)
     definition counts as defining — if-conversion turns the control
     dependence that made the definition conditional into a data
     dependence on the predicate, and the verifier follows that reading.
     Function parameters and the hardwired predicate q0 are defined on
     entry.

   Errors are reported as human-readable strings, every finding at once
   (the pipeline wants one actionable report per pass, not the first
   failure). *)

module RSet = Liveness.RSet

(* [None] stands for "all registers defined" (top), the starting value of
   the must-analysis on not-yet-visited blocks. *)
type fact = RSet.t option

let meet (a : fact) (b : fact) =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (RSet.inter a b)

let fact_mem r = function None -> true | Some s -> RSet.mem r s

(* Structural compare is unreliable on sets (equal sets, different tree
   shapes), so the fixpoint needs real set equality. *)
let fact_equal (a : fact) (b : fact) =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> RSet.equal a b
  | None, Some _ | Some _, None -> false

let reg_name (c, r) =
  match (c : Ir.rclass) with
  | Ir.Cgpr -> Printf.sprintf "v%d" r
  | Ir.Cpred -> Printf.sprintf "q%d" r

(* ------------------------------------------------------------------ *)

let func_errors (f : Ir.func) =
  let errs = ref [] in
  let err fmt =
    Format.kasprintf (fun s -> errs := (f.Ir.f_name ^ ": " ^ s) :: !errs) fmt
  in
  let labels = List.map (fun (b : Ir.block) -> b.Ir.b_id) f.Ir.f_blocks in
  if f.Ir.f_blocks = [] then err "no blocks"
  else begin
    if List.length (List.sort_uniq compare labels) <> List.length labels then
      err "duplicate block ids";
    (* Parameters must be valid, distinct vregs. *)
    List.iter
      (fun p ->
        if p < 0 || p >= f.Ir.f_nvregs then
          err "parameter v%d outside f_nvregs=%d" p f.Ir.f_nvregs)
      f.Ir.f_params;
    if
      List.length (List.sort_uniq compare f.Ir.f_params)
      <> List.length f.Ir.f_params
    then err "duplicate parameters";
    if f.Ir.f_npregs < 1 then err "f_npregs=%d leaves no hardwired q0" f.Ir.f_npregs;
    if f.Ir.f_frame_bytes < 0 then err "negative frame size %d" f.Ir.f_frame_bytes;
    let check_reg where (cls, r) =
      let limit =
        match (cls : Ir.rclass) with
        | Ir.Cgpr -> f.Ir.f_nvregs
        | Ir.Cpred -> f.Ir.f_npregs
      in
      if r < 0 || r >= limit then
        err "L%d: register %s out of range (limit %d)" where (reg_name (cls, r))
          limit
    in
    let check_frame where off bytes =
      if off < 0 || off + bytes > max 0 f.Ir.f_frame_bytes then
        err "L%d: frame access [%d..%d) outside frame of %d bytes" where off
          (off + bytes) f.Ir.f_frame_bytes
    in
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun t ->
            if not (List.mem t labels) then
              err "L%d: branch target L%d does not resolve" b.Ir.b_id t)
          (Ir.successors b.Ir.b_term);
        List.iter
          (fun (i : Ir.inst) ->
            List.iter (check_reg b.Ir.b_id) (Ir.uses_of_inst i);
            List.iter (check_reg b.Ir.b_id) (Ir.defs_of_inst i);
            match i.Ir.kind with
            | Ir.FrameAddr (_, off) -> check_frame b.Ir.b_id off 0
            | Ir.LoadFrame (_, off) | Ir.StoreFrame (off, _) ->
              check_frame b.Ir.b_id off 4
            | _ -> ())
          b.Ir.b_insts;
        List.iter (check_reg b.Ir.b_id) (Ir.uses_of_term b.Ir.b_term))
      f.Ir.f_blocks;
    (* Defined-before-use dataflow.  Run only on otherwise-sound CFGs: the
       fixpoint below indexes blocks by id and would crash on dangling
       targets already reported above. *)
    if !errs = [] then begin
      let base =
        List.fold_left
          (fun s p -> RSet.add (Ir.Cgpr, p) s)
          (RSet.singleton (Ir.Cpred, 0))
          f.Ir.f_params
      in
      let entry = (Ir.entry_block f).Ir.b_id in
      let out_facts : (Ir.label, fact) Hashtbl.t = Hashtbl.create 16 in
      List.iter (fun l -> Hashtbl.replace out_facts l None) labels;
      let preds : (Ir.label, Ir.label list) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun s ->
              Hashtbl.replace preds s
                (b.Ir.b_id :: Option.value ~default:[] (Hashtbl.find_opt preds s)))
            (Ir.successors b.Ir.b_term))
        f.Ir.f_blocks;
      let in_fact (b : Ir.block) : fact =
        (* The entry is reached from outside with only the base set
           defined, whatever back edges also lead to it. *)
        if b.Ir.b_id = entry then Some base
        else
          List.fold_left
            (fun acc p -> meet acc (Hashtbl.find out_facts p))
            None
            (Option.value ~default:[] (Hashtbl.find_opt preds b.Ir.b_id))
      in
      let transfer ?on_use (b : Ir.block) (fact : fact) : fact =
        let use where rs fact =
          (match on_use with
           | Some report ->
             List.iter (fun r -> if not (fact_mem r fact) then report where r) rs
           | None -> ());
          fact
        in
        let def rs fact =
          match fact with
          | None -> None
          | Some s -> Some (List.fold_left (fun s r -> RSet.add r s) s rs)
        in
        let fact =
          List.fold_left
            (fun fact (i : Ir.inst) ->
              fact
              |> use b.Ir.b_id (Ir.uses_of_inst i)
              |> def (Ir.defs_of_inst i))
            fact b.Ir.b_insts
        in
        use b.Ir.b_id (Ir.uses_of_term b.Ir.b_term) fact
      in
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (b : Ir.block) ->
            let out = transfer b (in_fact b) in
            if not (fact_equal out (Hashtbl.find out_facts b.Ir.b_id)) then begin
              Hashtbl.replace out_facts b.Ir.b_id out;
              changed := true
            end)
          f.Ir.f_blocks
      done;
      (* Report uses against the converged facts, deduplicated. *)
      let seen = Hashtbl.create 16 in
      let report where r =
        if not (Hashtbl.mem seen (where, r)) then begin
          Hashtbl.replace seen (where, r) ();
          err "L%d: %s may be used before definition" where (reg_name r)
        end
      in
      List.iter
        (fun (b : Ir.block) -> ignore (transfer ~on_use:report b (in_fact b)))
        f.Ir.f_blocks
    end
  end;
  List.rev !errs

let program_errors (p : Ir.program) =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let gnames = List.map (fun (g : Ir.global) -> g.Ir.g_name) p.Ir.p_globals in
  if List.length (List.sort_uniq compare gnames) <> List.length gnames then
    err "duplicate global names";
  List.iter
    (fun (g : Ir.global) ->
      if g.Ir.g_bytes <= 0 then err "global %s has size %d" g.Ir.g_name g.Ir.g_bytes;
      if 4 * Array.length g.Ir.g_init > (g.Ir.g_bytes + 3) land lnot 3 then
        err "global %s: initialiser larger than allocation" g.Ir.g_name)
    p.Ir.p_globals;
  let fnames = List.map (fun (f : Ir.func) -> f.Ir.f_name) p.Ir.p_funcs in
  if List.length (List.sort_uniq compare fnames) <> List.length fnames then
    err "duplicate function names";
  (* Call sites resolve with matching arity. *)
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.inst) ->
              match i.Ir.kind with
              | Ir.Call (_, g, args) ->
                (match Ir.find_func p g with
                 | None -> err "%s: L%d: call to undefined function %s" f.Ir.f_name b.Ir.b_id g
                 | Some callee ->
                   if List.length args <> List.length callee.Ir.f_params then
                     err "%s: L%d: call to %s with %d arguments (expects %d)"
                       f.Ir.f_name b.Ir.b_id g (List.length args)
                       (List.length callee.Ir.f_params))
              | _ -> ())
            b.Ir.b_insts)
        f.Ir.f_blocks)
    p.Ir.p_funcs;
  List.rev !errs @ List.concat_map func_errors p.Ir.p_funcs

let check_program (p : Ir.program) =
  match program_errors p with [] -> Ok () | errs -> Error errs
