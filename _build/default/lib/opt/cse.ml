(* Local common-subexpression elimination.  Pure expressions (ALU
   operations, comparisons, custom operations, address formation) are
   keyed on their resolved operands; loads participate too, versioned by a
   memory generation counter that stores and calls bump. *)

module Ir = Epic_mir.Ir

type key =
  | Kbin of Ir.binop * Ir.operand * Ir.operand
  | Kcmp of Ir.relop * Ir.operand * Ir.operand
  | Kcustom of string * Ir.operand * Ir.operand
  | Kaddr of string
  | Kframe of int
  | Kload of Ir.mem_size * Ir.ext * Ir.operand * Ir.operand * int

let key_mentions r = function
  | Kbin (_, a, b) | Kcmp (_, a, b) | Kcustom (_, a, b) | Kload (_, _, a, b, _) ->
    a = Ir.Reg r || b = Ir.Reg r
  | Kaddr _ | Kframe _ -> false

let run_block (b : Ir.block) =
  let avail : (key, Ir.vreg) Hashtbl.t = Hashtbl.create 32 in
  let memgen = ref 0 in
  let kill d =
    let stale =
      Hashtbl.fold
        (fun k v acc -> if v = d || key_mentions d k then k :: acc else acc)
        avail []
    in
    List.iter (Hashtbl.remove avail) stale
  in
  let rewrite (i : Ir.inst) : Ir.inst =
    let guarded = i.Ir.guard <> None in
    let try_cse d key mk =
      match Hashtbl.find_opt avail key with
      | Some v when v <> d -> { i with Ir.kind = Ir.Mov (d, Ir.Reg v) }
      | Some _ | None ->
        if not guarded then begin
          kill d;
          Hashtbl.replace avail key d
        end
        else kill d;
        { i with Ir.kind = mk }
    in
    match i.Ir.kind with
    | Ir.Bin (op, d, a, b') -> try_cse d (Kbin (op, a, b')) (Ir.Bin (op, d, a, b'))
    | Ir.Cmp (r, d, a, b') -> try_cse d (Kcmp (r, a, b')) (Ir.Cmp (r, d, a, b'))
    | Ir.Custom (n, d, a, b') -> try_cse d (Kcustom (n, a, b')) (Ir.Custom (n, d, a, b'))
    | Ir.AddrOf (d, g) -> try_cse d (Kaddr g) (Ir.AddrOf (d, g))
    | Ir.FrameAddr (d, off) -> try_cse d (Kframe off) (Ir.FrameAddr (d, off))
    | Ir.Load (sz, e, d, base, off) ->
      try_cse d (Kload (sz, e, base, off, !memgen)) (Ir.Load (sz, e, d, base, off))
    | Ir.Mov (d, _) -> kill d; i
    | Ir.Setp _ -> i
    | Ir.LoadFrame (d, _) -> kill d; i
    | Ir.StoreFrame _ -> incr memgen; i
    | Ir.Store _ -> incr memgen; i
    | Ir.Call (d, _, _) ->
      incr memgen;
      (match d with Some d -> kill d | None -> ());
      i
  in
  b.Ir.b_insts <- List.map rewrite b.Ir.b_insts

let run (p : Ir.program) =
  List.iter (fun (f : Ir.func) -> List.iter run_block f.Ir.f_blocks) p.Ir.p_funcs;
  p
