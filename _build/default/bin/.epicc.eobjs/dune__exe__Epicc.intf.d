bin/epicc.mli:
