lib/arm/arm_isa.ml: Format List
