test/test_workloads.ml: Alcotest Array Epic Printf String
