module Word = struct
  let max_width = 32

  let check w =
    if w < 1 || w > max_width then
      invalid_arg (Printf.sprintf "Epic_isa.Word: unsupported width %d" w)

  let mask w v =
    check w;
    v land ((1 lsl w) - 1)

  let to_signed w v =
    let v = mask w v in
    if v land (1 lsl (w - 1)) <> 0 then v - (1 lsl w) else v

  let of_signed w v = mask w v
  let min_signed w = check w; - (1 lsl (w - 1))
  let max_signed w = check w; (1 lsl (w - 1)) - 1
  let max_unsigned w = check w; (1 lsl w) - 1
end

type cmp_cond =
  | C_eq
  | C_ne
  | C_lt
  | C_le
  | C_gt
  | C_ge
  | C_ltu
  | C_leu
  | C_gtu
  | C_geu

type mem_width = M_byte | M_half | M_word

type opcode =
  | ADD
  | SUB
  | MPY
  | DIV
  | REM
  | MIN
  | MAX
  | ABS
  | AND
  | OR
  | XOR
  | ANDCM
  | NAND
  | NOR
  | SHL
  | SHR
  | SHRA
  | MOV
  | CUSTOM of string
  | LD of mem_width
  | LDU of mem_width
  | ST of mem_width
  | CMPP of cmp_cond
  | PBRR
  | BRU_
  | BRCT
  | BRCF
  | BRL
  | HALT
  | NOP

type src = Sreg of int | Simm of int

type inst = {
  op : opcode;
  dst1 : int;
  dst2 : int;
  src1 : src;
  src2 : src;
  guard : int;
}

let nop = { op = NOP; dst1 = 0; dst2 = 0; src1 = Simm 0; src2 = Simm 0; guard = 0 }

type unit_class = U_alu | U_lsu | U_cmpu | U_bru | U_none

type regfile = R_gpr | R_pred | R_btr

let unit_of = function
  | ADD | SUB | MPY | DIV | REM | MIN | MAX | ABS
  | AND | OR | XOR | ANDCM | NAND | NOR
  | SHL | SHR | SHRA | MOV | CUSTOM _ -> U_alu
  | LD _ | LDU _ | ST _ -> U_lsu
  | CMPP _ -> U_cmpu
  | PBRR | BRU_ | BRCT | BRCF | BRL | HALT -> U_bru
  | NOP -> U_none

let is_branch = function
  | BRU_ | BRCT | BRCF | BRL -> true
  | ADD | SUB | MPY | DIV | REM | MIN | MAX | ABS
  | AND | OR | XOR | ANDCM | NAND | NOR | SHL | SHR | SHRA | MOV
  | CUSTOM _ | LD _ | LDU _ | ST _ | CMPP _ | PBRR | HALT | NOP -> false

let is_store = function ST _ -> true | _ -> false
let is_load = function LD _ | LDU _ -> true | _ -> false

(* Destination register files used by each field.  [None] means the field
   is unused by the operation. *)
let dst_files op =
  match op with
  | ADD | SUB | MPY | DIV | REM | MIN | MAX | ABS
  | AND | OR | XOR | ANDCM | NAND | NOR | SHL | SHR | SHRA | MOV
  | CUSTOM _ | LD _ | LDU _ -> (Some R_gpr, None)
  | CMPP _ -> (Some R_pred, Some R_pred)
  | PBRR -> (Some R_btr, None)
  | BRL -> (Some R_gpr, None)
  | ST _ | BRU_ | BRCT | BRCF | HALT | NOP -> (None, None)

let writes i =
  let keep file idx acc =
    (* GPR 0 and predicate 0 are hardwired; writes are discarded. *)
    match file with
    | R_gpr | R_pred -> if idx = 0 then acc else (file, idx) :: acc
    | R_btr -> (file, idx) :: acc
  in
  let d1, d2 = dst_files i.op in
  let acc = match d2 with Some f -> keep f i.dst2 [] | None -> [] in
  match d1 with Some f -> keep f i.dst1 acc | None -> acc

let reads i =
  let src_read acc = function Sreg r when r <> 0 -> (R_gpr, r) :: acc | Sreg _ | Simm _ -> acc in
  let base =
    match i.op with
    | ADD | SUB | MPY | DIV | REM | MIN | MAX
    | AND | OR | XOR | ANDCM | NAND | NOR | SHL | SHR | SHRA
    | CUSTOM _ | LD _ | LDU _ | CMPP _ ->
      src_read (src_read [] i.src2) i.src1
    | ABS | MOV -> src_read [] i.src1
    | ST _ -> src_read (src_read [] i.src2) i.src1
    | PBRR -> src_read [] i.src1
    | BRU_ | BRL ->
      (* src1 is a BTR index, encoded as a literal field. *)
      (match i.src1 with Simm b -> [ (R_btr, b) ] | Sreg _ -> [])
    | BRCT | BRCF ->
      let btr = match i.src1 with Simm b -> [ (R_btr, b) ] | Sreg _ -> [] in
      let p = match i.src2 with Simm p when p <> 0 -> [ (R_pred, p) ] | Simm _ | Sreg _ -> [] in
      btr @ p
    | HALT | NOP -> []
  in
  if i.guard <> 0 then (R_pred, i.guard) :: base else base

let gpr_port_ops i =
  let count f = List.length (List.filter (fun (file, _) -> file = f) (writes i))
              + List.length (List.filter (fun (file, _) -> file = f) (reads i))
  in
  count R_gpr

let default_latency = function
  | ADD | SUB | MIN | MAX | ABS
  | AND | OR | XOR | ANDCM | NAND | NOR | SHL | SHR | SHRA | MOV -> 1
  | MPY -> 3
  | DIV | REM -> 12
  | CUSTOM _ -> 1
  | LD _ | LDU _ -> 2
  | ST _ -> 1
  | CMPP _ -> 1
  | PBRR -> 1
  | BRL -> 1
  | BRU_ | BRCT | BRCF | HALT | NOP -> 1

let eval_cmp ~width c a b =
  let sa = Word.to_signed width a and sb = Word.to_signed width b in
  let ua = Word.mask width a and ub = Word.mask width b in
  match c with
  | C_eq -> ua = ub
  | C_ne -> ua <> ub
  | C_lt -> sa < sb
  | C_le -> sa <= sb
  | C_gt -> sa > sb
  | C_ge -> sa >= sb
  | C_ltu -> ua < ub
  | C_leu -> ua <= ub
  | C_gtu -> ua > ub
  | C_geu -> ua >= ub

(* Hot path of the simulator's execute stage: no closures, no partial
   applications — signed views and shift amounts are computed only in
   the branches that need them. *)
let eval_alu ~width ~custom op a b =
  let m v = Word.mask width v in
  let a = m a and b = m b in
  match op with
  | ADD -> m (a + b)
  | SUB -> m (a - b)
  | MPY -> m (a * b)
  | DIV ->
    let d = Word.to_signed width b in
    if d = 0 then 0 else Word.of_signed width (Word.to_signed width a / d)
  | REM ->
    let d = Word.to_signed width b in
    if d = 0 then a else Word.of_signed width (Word.to_signed width a mod d)
  | MIN -> if Word.to_signed width a <= Word.to_signed width b then a else b
  | MAX -> if Word.to_signed width a >= Word.to_signed width b then a else b
  | ABS -> Word.of_signed width (abs (Word.to_signed width a))
  | AND -> a land b
  | OR -> a lor b
  | XOR -> a lxor b
  | ANDCM -> a land m (lnot b)
  | NAND -> m (lnot (a land b))
  | NOR -> m (lnot (a lor b))
  | SHL ->
    let shift_amount = b land (Word.max_unsigned width) in
    if shift_amount >= width then 0 else m (a lsl shift_amount)
  | SHR ->
    let shift_amount = b land (Word.max_unsigned width) in
    if shift_amount >= width then 0 else a lsr shift_amount
  | SHRA ->
    let shift_amount = b land (Word.max_unsigned width) in
    let n = if shift_amount >= width then width - 1 else shift_amount in
    Word.of_signed width (Word.to_signed width a asr n)
  | MOV -> a
  | CUSTOM name -> m (custom name a b)
  | LD _ | LDU _ | ST _ | CMPP _ | PBRR | BRU_ | BRCT | BRCF | BRL | HALT | NOP ->
    invalid_arg "Epic_isa.eval_alu: not an ALU operation"

let bytes_of_mem_width = function M_byte -> 1 | M_half -> 2 | M_word -> 4

let string_of_cond = function
  | C_eq -> "EQ" | C_ne -> "NE" | C_lt -> "LT" | C_le -> "LE"
  | C_gt -> "GT" | C_ge -> "GE" | C_ltu -> "LTU" | C_leu -> "LEU"
  | C_gtu -> "GTU" | C_geu -> "GEU"

let cond_of_string = function
  | "EQ" -> Some C_eq | "NE" -> Some C_ne | "LT" -> Some C_lt
  | "LE" -> Some C_le | "GT" -> Some C_gt | "GE" -> Some C_ge
  | "LTU" -> Some C_ltu | "LEU" -> Some C_leu | "GTU" -> Some C_gtu
  | "GEU" -> Some C_geu | _ -> None

let mem_suffix = function M_byte -> "B" | M_half -> "H" | M_word -> "W"

let mem_of_suffix = function
  | "B" -> Some M_byte | "H" -> Some M_half | "W" -> Some M_word | _ -> None

let string_of_opcode = function
  | ADD -> "ADD" | SUB -> "SUB" | MPY -> "MPY" | DIV -> "DIV" | REM -> "REM"
  | MIN -> "MIN" | MAX -> "MAX" | ABS -> "ABS"
  | AND -> "AND" | OR -> "OR" | XOR -> "XOR" | ANDCM -> "ANDCM"
  | NAND -> "NAND" | NOR -> "NOR"
  | SHL -> "SHL" | SHR -> "SHR" | SHRA -> "SHRA" | MOV -> "MOV"
  | CUSTOM name -> "X." ^ name
  | LD w -> "LD" ^ mem_suffix w
  | LDU w -> "LDU" ^ mem_suffix w
  | ST w -> "ST" ^ mem_suffix w
  | CMPP c -> "CMPP." ^ string_of_cond c
  | PBRR -> "PBRR" | BRU_ -> "BRU" | BRCT -> "BRCT" | BRCF -> "BRCF"
  | BRL -> "BRL" | HALT -> "HALT" | NOP -> "NOP"

let opcode_of_string s =
  match s with
  | "ADD" -> Some ADD | "SUB" -> Some SUB | "MPY" -> Some MPY
  | "DIV" -> Some DIV | "REM" -> Some REM | "MIN" -> Some MIN
  | "MAX" -> Some MAX | "ABS" -> Some ABS | "AND" -> Some AND
  | "OR" -> Some OR | "XOR" -> Some XOR | "ANDCM" -> Some ANDCM
  | "NAND" -> Some NAND | "NOR" -> Some NOR | "SHL" -> Some SHL
  | "SHR" -> Some SHR | "SHRA" -> Some SHRA | "MOV" -> Some MOV
  | "PBRR" -> Some PBRR | "BRU" -> Some BRU_ | "BRCT" -> Some BRCT
  | "BRCF" -> Some BRCF | "BRL" -> Some BRL | "HALT" -> Some HALT
  | "NOP" -> Some NOP
  | _ ->
    let with_prefix prefix k =
      if String.length s > String.length prefix
         && String.sub s 0 (String.length prefix) = prefix
      then k (String.sub s (String.length prefix) (String.length s - String.length prefix))
      else None
    in
    (match with_prefix "X." (fun name -> Some (CUSTOM name)) with
     | Some _ as r -> r
     | None ->
       match with_prefix "CMPP." (fun c -> Option.map (fun c -> CMPP c) (cond_of_string c)) with
       | Some _ as r -> r
       | None ->
         match with_prefix "LDU" (fun w -> Option.map (fun w -> LDU w) (mem_of_suffix w)) with
         | Some _ as r -> r
         | None ->
           match with_prefix "LD" (fun w -> Option.map (fun w -> LD w) (mem_of_suffix w)) with
           | Some _ as r -> r
           | None ->
             with_prefix "ST" (fun w -> Option.map (fun w -> ST w) (mem_of_suffix w)))

let pp_src ppf = function
  | Sreg r -> Format.fprintf ppf "r%d" r
  | Simm v -> Format.fprintf ppf "#%d" v

let pp_inst ppf i =
  let pp_guard ppf g = if g <> 0 then Format.fprintf ppf " (p%d)" g in
  let op = string_of_opcode i.op in
  match i.op with
  | NOP -> Format.fprintf ppf "NOP"
  | ADD | SUB | MPY | DIV | REM | MIN | MAX
  | AND | OR | XOR | ANDCM | NAND | NOR | SHL | SHR | SHRA | CUSTOM _ ->
    Format.fprintf ppf "%s r%d, %a, %a%a" op i.dst1 pp_src i.src1 pp_src i.src2
      pp_guard i.guard
  | ABS | MOV ->
    Format.fprintf ppf "%s r%d, %a%a" op i.dst1 pp_src i.src1 pp_guard i.guard
  | LD _ | LDU _ ->
    Format.fprintf ppf "%s r%d, %a, %a%a" op i.dst1 pp_src i.src1 pp_src i.src2
      pp_guard i.guard
  | ST _ ->
    Format.fprintf ppf "%s %a, #%d, %a%a" op pp_src i.src1 i.dst1 pp_src i.src2
      pp_guard i.guard
  | CMPP _ ->
    Format.fprintf ppf "%s p%d, p%d, %a, %a%a" op i.dst1 i.dst2 pp_src i.src1
      pp_src i.src2 pp_guard i.guard
  | PBRR ->
    Format.fprintf ppf "%s b%d, %a%a" op i.dst1 pp_src i.src1 pp_guard i.guard
  | BRU_ ->
    Format.fprintf ppf "%s %a%a" op pp_src i.src1 pp_guard i.guard
  | BRCT | BRCF ->
    Format.fprintf ppf "%s %a, %a%a" op pp_src i.src1 pp_src i.src2 pp_guard i.guard
  | BRL ->
    Format.fprintf ppf "%s r%d, %a%a" op i.dst1 pp_src i.src1 pp_guard i.guard
  | HALT -> Format.fprintf ppf "HALT%a" pp_guard i.guard

let equal_opcode (a : opcode) (b : opcode) = a = b
let equal_inst (a : inst) (b : inst) = a = b

let all_base_opcodes =
  [ ADD; SUB; MPY; DIV; REM; MIN; MAX; ABS; AND; OR; XOR; ANDCM; NAND; NOR;
    SHL; SHR; SHRA; MOV;
    LD M_byte; LD M_half; LD M_word; LDU M_byte; LDU M_half; LDU M_word;
    ST M_byte; ST M_half; ST M_word;
    CMPP C_eq; CMPP C_ne; CMPP C_lt; CMPP C_le; CMPP C_gt; CMPP C_ge;
    CMPP C_ltu; CMPP C_leu; CMPP C_gtu; CMPP C_geu;
    PBRR; BRU_; BRCT; BRCF; BRL; HALT; NOP ]
