lib/opt/common.ml: Epic_isa Epic_mir List
