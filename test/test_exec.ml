(* Parallel campaign engine tests: pool determinism (ordering and
   first-error semantics), memo-cache single-computation and hit
   accounting, the configuration fingerprint feeding the compile-cache
   key, compile-cache reuse across a sweep, and end-to-end bit-identity
   of campaign results across --jobs values. *)

module Exec = Epic.Exec
module Config = Epic.Config
module T = Epic.Toolchain
module E = Epic.Experiments
module Fault = Epic.Fault
module J = Epic.Profile.Json

(* ---- pool --------------------------------------------------------- *)

let test_pool_ordered () =
  let f i = (i * i) - (3 * i) in
  let seq = Exec.Pool.run ~jobs:1 200 f in
  let par = Exec.Pool.run ~jobs:4 200 f in
  Alcotest.(check (array int)) "parallel = sequential" seq par;
  Alcotest.(check int) "length" 200 (Array.length par);
  Alcotest.(check int) "slot 137" (f 137) par.(137)

let test_pool_edges () =
  Alcotest.(check (array int)) "n=0" [||] (Exec.Pool.run ~jobs:4 0 (fun i -> i));
  Alcotest.(check (array int)) "n=1" [| 7 |]
    (Exec.Pool.run ~jobs:4 1 (fun _ -> 7));
  Alcotest.check_raises "n<0"
    (Invalid_argument "Epic_exec.Pool.run: negative job count") (fun () ->
      ignore (Exec.Pool.run (-1) (fun i -> i)))

let test_pool_map () =
  let xs = List.init 50 (fun i -> i * 7) in
  Alcotest.(check (list int)) "map order"
    (List.map (fun x -> x + 1) xs)
    (Exec.Pool.map ~jobs:3 (fun x -> x + 1) xs)

let test_pool_first_error () =
  (* Jobs 5..19 all fail; whatever order domains execute them in, the
     lowest-index failure is the one surfaced — as in a sequential loop. *)
  for _ = 1 to 5 do
    Alcotest.check_raises "lowest-index error" (Failure "boom 5") (fun () ->
        ignore
          (Exec.Pool.run ~jobs:4 20 (fun i ->
               if i >= 5 then failwith (Printf.sprintf "boom %d" i) else i)))
  done

(* ---- memo cache --------------------------------------------------- *)

let test_cache_compute_once () =
  let c = Exec.Cache.create ~name:"t" () in
  let calls = ref 0 in
  let mk () = incr calls; [ !calls; 42 ] in
  let a = Exec.Cache.find_or_add c "k" mk in
  let b = Exec.Cache.find_or_add c "k" mk in
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check bool) "hit is physically equal" true (a == b);
  let s = Exec.Cache.stats c in
  Alcotest.(check int) "misses" 1 s.Exec.Cache.misses;
  Alcotest.(check int) "hits" 1 s.Exec.Cache.hits;
  Alcotest.(check int) "length" 1 (Exec.Cache.length c);
  let d = Exec.Cache.find_or_add c "k2" mk in
  Alcotest.(check bool) "distinct keys distinct values" true (d != a)

let test_cache_concurrent () =
  let c = Exec.Cache.create () in
  let calls = Atomic.make 0 in
  let vs =
    Exec.Pool.run ~jobs:4 16 (fun _ ->
        Exec.Cache.find_or_add c "shared" (fun () ->
            Atomic.incr calls;
            Array.make 8 (Atomic.get calls)))
  in
  Alcotest.(check int) "computed once across domains" 1 (Atomic.get calls);
  Array.iter
    (fun v -> Alcotest.(check bool) "all requesters share" true (v == vs.(0)))
    vs;
  let s = Exec.Cache.stats c in
  Alcotest.(check int) "one miss" 1 s.Exec.Cache.misses;
  Alcotest.(check int) "fifteen hits" 15 s.Exec.Cache.hits

let test_cache_error_memoised () =
  let c = Exec.Cache.create () in
  let calls = ref 0 in
  let mk () = incr calls; failwith "nope" in
  Alcotest.check_raises "first raises" (Failure "nope") (fun () ->
      ignore (Exec.Cache.find_or_add c "bad" mk));
  Alcotest.check_raises "replay raises the same" (Failure "nope") (fun () ->
      ignore (Exec.Cache.find_or_add c "bad" mk));
  Alcotest.(check int) "not recomputed" 1 !calls;
  Exec.Cache.reset c;
  Alcotest.(check int) "reset empties" 0 (Exec.Cache.length c)

(* ---- configuration fingerprint ------------------------------------ *)

(* Every architectural field must feed the fingerprint: a mutation of any
   one of them yields a different compile-cache key.  One mutator per
   field of Epic_config.t; qcheck picks (field, magnitude) pairs. *)
let mutators : (string * (int -> Config.t -> Config.t)) list =
  let d delta base = max 1 (base + delta) in
  [
    ("n_alus", fun k c -> { c with Config.n_alus = d k c.Config.n_alus });
    ("n_gprs", fun k c -> { c with Config.n_gprs = d k c.Config.n_gprs });
    ("n_preds", fun k c -> { c with Config.n_preds = d k c.Config.n_preds });
    ("n_btrs", fun k c -> { c with Config.n_btrs = d k c.Config.n_btrs });
    ( "regs_per_inst",
      fun k c -> { c with Config.regs_per_inst = d k c.Config.regs_per_inst } );
    ( "issue_width",
      fun k c -> { c with Config.issue_width = 1 + ((c.Config.issue_width + k) mod 4) } );
    ("width", fun k c -> { c with Config.width = d k c.Config.width });
    ( "alu_omit",
      fun k c ->
        { c with
          Config.alu_omit =
            (if k mod 2 = 0 then [ Epic.Isa.DIV ] else [ Epic.Isa.MPY ]) } );
    ("custom_ops", fun _ c -> Config.add_custom c "ROTR");
    ("opcode_bits", fun k c -> { c with Config.opcode_bits = d k c.Config.opcode_bits });
    ("dst_bits", fun k c -> { c with Config.dst_bits = d k c.Config.dst_bits });
    ("src_bits", fun k c -> { c with Config.src_bits = d k c.Config.src_bits });
    ("pred_bits", fun k c -> { c with Config.pred_bits = d k c.Config.pred_bits });
    ( "rf_port_budget",
      fun k c -> { c with Config.rf_port_budget = d k c.Config.rf_port_budget } );
    ("forwarding", fun _ c -> { c with Config.forwarding = not c.Config.forwarding });
    ("mem_banks", fun k c -> { c with Config.mem_banks = d k c.Config.mem_banks });
    ( "pipeline_stages",
      fun k c -> { c with Config.pipeline_stages = 2 + ((c.Config.pipeline_stages + k) mod 3) } );
    ( "clock_mhz",
      fun k c -> { c with Config.clock_mhz = c.Config.clock_mhz +. float_of_int (d k 1) } );
    ( "lat_overrides",
      fun k c -> { c with Config.lat_overrides = [ (Epic.Isa.MPY, 1 + (abs k mod 7)) ] } );
  ]

let prop_fingerprint_sensitive =
  QCheck.Test.make ~name:"fingerprint changes when any field changes"
    ~count:200
    QCheck.(pair (int_range 0 (List.length mutators - 1)) (int_range 1 16))
    (fun (which, delta) ->
      let name, mutate = List.nth mutators which in
      let base = Config.default in
      let mutated = mutate delta base in
      (* The mutator must actually have changed the field (guards like
         issue_width wrap-around can be identity for some deltas). *)
      QCheck.assume (not (Config.equal base mutated));
      if Config.fingerprint base = Config.fingerprint mutated then
        QCheck.Test.fail_reportf "field %s not in fingerprint" name
      else true)

let test_fingerprint_stable () =
  Alcotest.(check string) "pure function"
    (Config.fingerprint Config.default)
    (Config.fingerprint Config.default);
  Alcotest.(check bool) "alu sweep points distinct" true
    (Config.fingerprint (Config.with_alus 1)
     <> Config.fingerprint (Config.with_alus 2))

(* ---- compile cache ------------------------------------------------ *)

let source = "int main() { int s = 0; for (int i = 0; i < 9; i = i + 1) { s = s + i; } return s; }"

let test_compile_cache_hit () =
  let cache = T.Compile_cache.create () in
  let a = T.compile_epic ~cache Config.default ~source () in
  let b = T.compile_epic ~cache Config.default ~source () in
  Alcotest.(check bool) "second compile is the cached artifact" true (a == b);
  let r1 = T.run_epic a and r2 = T.run_epic b in
  Alcotest.(check int) "cached artifact simulates identically"
    r1.Epic.Sim.stats.Epic.Sim.cycles r2.Epic.Sim.stats.Epic.Sim.cycles

let test_compile_cache_sweep () =
  (* A 1-4 ALU sweep shares one frontend compile; each design point still
     gets its own backend artifact. *)
  let cache = T.Compile_cache.create () in
  List.iter
    (fun n -> ignore (T.compile_epic ~cache (Config.with_alus n) ~source ()))
    [ 1; 2; 3; 4 ];
  let front = T.Compile_cache.frontend_stats cache in
  Alcotest.(check int) "one frontend miss" 1 front.Exec.Cache.misses;
  Alcotest.(check int) "three frontend hits" 3 front.Exec.Cache.hits;
  let arts = T.Compile_cache.artifact_stats cache in
  Alcotest.(check int) "four artifact misses" 4 arts.Exec.Cache.misses;
  Alcotest.(check int) "no artifact hits" 0 arts.Exec.Cache.hits

let test_compile_cache_isolation () =
  (* A cache hit hands out a *copy* of the frontend MIR, so one design
     point's backend (which mutates MIR in place) cannot leak scheduling
     into another's.  Equal cycle counts with and without the cache is
     the observable contract. *)
  let cold n =
    (T.compile_epic (Config.with_alus n) ~source () |> T.run_epic)
      .Epic.Sim.stats.Epic.Sim.cycles
  in
  let cache = T.Compile_cache.create () in
  let warm n =
    (T.compile_epic ~cache (Config.with_alus n) ~source () |> T.run_epic)
      .Epic.Sim.stats.Epic.Sim.cycles
  in
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "%d-ALU cycles unchanged by cache" n)
        (cold n) (warm n))
    [ 1; 2; 3; 4 ]

(* ---- campaign determinism across --jobs --------------------------- *)

let test_fault_campaign_jobs () =
  let a = T.compile_epic Config.default ~source () in
  let r1 = T.fault_campaign ~seed:11 ~runs:24 ~jobs:1 a in
  let r4 = T.fault_campaign ~seed:11 ~runs:24 ~jobs:4 a in
  Alcotest.(check string) "fault report identical across jobs"
    (J.to_string (Fault.report_to_json ~faults:true r1))
    (J.to_string (Fault.report_to_json ~faults:true r4))

let tiny_sizes =
  { E.sha_bytes = 64; aes_iters = 1; dct_size = (8, 8); dijkstra_nodes = 6 }

let test_table1_jobs () =
  let rows1 = E.table1 ~jobs:1 ~sizes:tiny_sizes ~alus:[ 1; 4 ] () in
  let rows4 = E.table1 ~jobs:4 ~sizes:tiny_sizes ~alus:[ 1; 4 ] () in
  Alcotest.(check bool) "table1 rows identical across jobs" true
    (rows1 = rows4);
  (* And the grid must actually have produced every point. *)
  List.iter
    (fun (r : E.table1_row) ->
      Alcotest.(check int) "two design points" 2 (List.length r.E.t1_epic))
    rows1

let test_avf_jobs () =
  let p1 = E.inject_faults ~jobs:1 ~sizes:tiny_sizes ~alus:[ 4 ] ~runs:6 () in
  let p4 = E.inject_faults ~jobs:3 ~sizes:tiny_sizes ~alus:[ 4 ] ~runs:6 () in
  let render pts =
    J.to_string
      (J.List
         (List.map
            (fun (p : E.avf_point) ->
              J.Obj
                [ ("name", J.Str p.E.af_name); ("alus", J.Int p.E.af_alus);
                  ("report", Fault.report_to_json ~faults:true p.E.af_report) ])
            pts))
  in
  Alcotest.(check string) "AVF rows identical across jobs" (render p1)
    (render p4)

let suite =
  [
    Alcotest.test_case "pool: results in index order" `Quick test_pool_ordered;
    Alcotest.test_case "pool: edge cases" `Quick test_pool_edges;
    Alcotest.test_case "pool: map preserves order" `Quick test_pool_map;
    Alcotest.test_case "pool: lowest-index error wins" `Quick
      test_pool_first_error;
    Alcotest.test_case "cache: computes once, hit is physical" `Quick
      test_cache_compute_once;
    Alcotest.test_case "cache: concurrent requesters share one compute"
      `Quick test_cache_concurrent;
    Alcotest.test_case "cache: failures memoised" `Quick
      test_cache_error_memoised;
    QCheck_alcotest.to_alcotest prop_fingerprint_sensitive;
    Alcotest.test_case "fingerprint: stable and sweep-distinct" `Quick
      test_fingerprint_stable;
    Alcotest.test_case "compile cache: hit returns same artifact" `Quick
      test_compile_cache_hit;
    Alcotest.test_case "compile cache: sweep shares the frontend" `Quick
      test_compile_cache_sweep;
    Alcotest.test_case "compile cache: cycles unchanged by caching" `Quick
      test_compile_cache_isolation;
    Alcotest.test_case "fault campaign: jobs 1 = jobs 4" `Quick
      test_fault_campaign_jobs;
    Alcotest.test_case "table1: jobs 1 = jobs 4" `Quick test_table1_jobs;
    Alcotest.test_case "AVF grid: jobs 1 = jobs 3" `Quick test_avf_jobs;
  ]
