test/test_mdes.ml: Alcotest Epic List
