lib/opt/licm.ml: Epic_mir Hashtbl List Option
