(* Backward iterative liveness analysis over MIR, covering both register
   classes (GPR-class virtuals and predicate virtuals). *)

module RSet = Set.Make (struct
  type t = Ir.rclass * int

  let compare = compare
end)

type t = {
  live_in : (Ir.label, RSet.t) Hashtbl.t;
  live_out : (Ir.label, RSet.t) Hashtbl.t;
}

let block_use_def (b : Ir.block) =
  (* use = registers read before any (full) definition; def = registers
     fully defined.  A guarded definition does not kill. *)
  let rec go insts use def =
    match insts with
    | [] ->
      let term_uses = Ir.uses_of_term b.b_term in
      let use =
        List.fold_left
          (fun use r -> if RSet.mem r def then use else RSet.add r use)
          use term_uses
      in
      (use, def)
    | i :: rest ->
      let use =
        List.fold_left
          (fun use r -> if RSet.mem r def then use else RSet.add r use)
          use
          (Ir.uses_of_inst i @ Ir.partial_defs i)
      in
      let def =
        if i.Ir.guard = None then
          List.fold_left (fun def r -> RSet.add r def) def (Ir.defs_of_inst i)
        else def
      in
      go rest use def
  in
  go b.b_insts RSet.empty RSet.empty

let analyse (f : Ir.func) =
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  let use_def = Hashtbl.create 16 in
  List.iter
    (fun b ->
      Hashtbl.replace use_def b.Ir.b_id (block_use_def b);
      Hashtbl.replace live_in b.Ir.b_id RSet.empty;
      Hashtbl.replace live_out b.Ir.b_id RSet.empty)
    f.f_blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    (* Reverse order converges faster for mostly-forward CFGs. *)
    List.iter
      (fun b ->
        let id = b.Ir.b_id in
        let out =
          List.fold_left
            (fun acc s -> RSet.union acc (Hashtbl.find live_in s))
            RSet.empty
            (Ir.successors b.Ir.b_term)
        in
        let use, def = Hashtbl.find use_def id in
        let inn = RSet.union use (RSet.diff out def) in
        if not (RSet.equal out (Hashtbl.find live_out id)) then begin
          Hashtbl.replace live_out id out;
          changed := true
        end;
        if not (RSet.equal inn (Hashtbl.find live_in id)) then begin
          Hashtbl.replace live_in id inn;
          changed := true
        end)
      (List.rev f.f_blocks)
  done;
  { live_in; live_out }

let live_in t l = Hashtbl.find t.live_in l
let live_out t l = Hashtbl.find t.live_out l

(* Walk a block backwards producing the live set before each instruction;
   [f] receives the instruction index and the set live *after* it.  Used by
   dead-code elimination and interval construction. *)
let fold_block_backward t (b : Ir.block) ~init ~f =
  let after_term = live_out t b.Ir.b_id in
  let live = ref (RSet.union after_term (RSet.of_list (Ir.uses_of_term b.Ir.b_term))) in
  let n = List.length b.Ir.b_insts in
  let arr = Array.of_list b.Ir.b_insts in
  let acc = ref init in
  for k = n - 1 downto 0 do
    let i = arr.(k) in
    acc := f !acc k i !live;
    let without_defs =
      if i.Ir.guard = None then
        List.fold_left (fun s r -> RSet.remove r s) !live (Ir.defs_of_inst i)
      else !live
    in
    live :=
      List.fold_left
        (fun s r -> RSet.add r s)
        without_defs
        (Ir.uses_of_inst i @ Ir.partial_defs i)
  done;
  !acc
