bin/cli_common.ml: Arg Cmdliner Epic List Printf String Term
