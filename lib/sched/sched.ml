(* Resource-constrained list scheduling of basic blocks into issue
   bundles, driven by the machine description (the elcor role: "statically
   schedule the instructions by performing dependence analysis and
   resource conflict avoidance", paper Section 4.1).

   Dependences (on architectural registers from the ISA metadata, plus
   memory and control):
   - RAW: consumer at least [latency producer] cycles later;
   - WAR: same cycle allowed (register reads happen at issue);
   - WAW: later by enough cycles that the second write lands last;
   - memory: stores are ordered against all following memory operations
     and loads against following stores (no alias analysis);
   - control: every operation must issue no later than the block's branch,
     and branches are ordered among themselves.

   Resources per cycle: the per-unit counts from the mdes, total issue
   width, and the register-file port budget (the scheduler counts every
   GPR read and write against the 8-op budget — conservative with respect
   to forwarding, so a conforming schedule never stalls the hardware). *)

module Isa = Epic_isa
module Mdes = Epic_mdes
module A = Epic_asm.Aunit

type stats = {
  st_blocks : int;
  st_insts : int;        (* real operations scheduled *)
  st_bundles : int;      (* bundles emitted *)
}

let empty_stats = { st_blocks = 0; st_insts = 0; st_bundles = 0 }

let add_stats a b =
  { st_blocks = a.st_blocks + b.st_blocks;
    st_insts = a.st_insts + b.st_insts;
    st_bundles = a.st_bundles + b.st_bundles }

(* Dependence graph edge: (pred index, min cycle distance). *)
let build_deps (md : Mdes.t) (insts : A.inst array) =
  let n = Array.length insts in
  let approx = Array.map A.to_isa_approx insts in
  let edges = Array.make n [] in  (* edges.(j) = [(i, delay); ...] with i < j *)
  let add_edge i j delay = edges.(j) <- (i, delay) :: edges.(j) in
  let lat i = Mdes.latency md approx.(i).Isa.op in
  for j = 0 to n - 1 do
    let jr = Isa.reads approx.(j) and jw = Isa.writes approx.(j) in
    let j_mem = Isa.is_load approx.(j).Isa.op || Isa.is_store approx.(j).Isa.op in
    let j_store = Isa.is_store approx.(j).Isa.op in
    let j_branch = Isa.is_branch approx.(j).Isa.op || approx.(j).Isa.op = Isa.HALT in
    for i = 0 to j - 1 do
      let iw = Isa.writes approx.(i) and ir = Isa.reads approx.(i) in
      let i_mem = Isa.is_load approx.(i).Isa.op || Isa.is_store approx.(i).Isa.op in
      let i_store = Isa.is_store approx.(i).Isa.op in
      let i_branch = Isa.is_branch approx.(i).Isa.op || approx.(i).Isa.op = Isa.HALT in
      (* RAW *)
      if List.exists (fun r -> List.mem r jr) iw then add_edge i j (lat i);
      (* WAR: write after read, same cycle legal *)
      if List.exists (fun r -> List.mem r ir) jw then add_edge i j 0;
      (* WAW: the later instruction's write must land strictly later *)
      if List.exists (fun r -> List.mem r iw) jw then
        add_edge i j (max 1 (lat i - lat j + 1));
      (* Memory ordering *)
      if (i_store && j_mem) || (i_mem && j_store) then add_edge i j 1;
      (* Control: branches stay in order and nothing moves past them *)
      if i_branch then add_edge i j 1;
      if j_branch && not i_branch then add_edge i j 0
    done
  done;
  edges

(* Critical-path height for priority. *)
let heights insts edges =
  let n = Array.length insts in
  let succ = Array.make n [] in
  Array.iteri
    (fun j preds -> List.iter (fun (i, d) -> succ.(i) <- (j, d) :: succ.(i)) preds)
    edges;
  let h = Array.make n 0 in
  for i = n - 1 downto 0 do
    h.(i) <- List.fold_left (fun acc (j, d) -> max acc (h.(j) + max 1 d)) 0 succ.(i)
  done;
  h

let unit_usage op = Isa.unit_of op

(* Schedule one block's instruction list into cycle-indexed bundles:
   index = issue cycle, empty cycles left in place.  This is the
   stall-free form the schedule-contract checker (Epic_difftest) replays
   against the mdes; [schedule_block] below compresses it for emission
   (safe under the interlock: bundles are never merged, so within-bundle
   semantics are unchanged and the scoreboard re-inserts the latency
   cycles). *)
let schedule_block_cycles (md : Mdes.t) (insts : A.inst list) : A.inst list array =
  let insts = Array.of_list insts in
  let n = Array.length insts in
  if n = 0 then [||]
  else begin
    let approx = Array.map A.to_isa_approx insts in
    (* Feasibility: every instruction must fit an empty cycle, otherwise
       the greedy loop below could never place it. *)
    Array.iter
      (fun a ->
        let u = Isa.unit_of a.Isa.op in
        let cap =
          match u with
          | Isa.U_alu -> md.Mdes.md_alus
          | Isa.U_lsu -> md.Mdes.md_lsus
          | Isa.U_cmpu -> md.Mdes.md_cmpus
          | Isa.U_bru -> md.Mdes.md_brus
          | Isa.U_none -> max_int
        in
        if cap < 1 || Isa.gpr_port_ops a > md.Mdes.md_rf_port_budget then
          Epic_diag.raisef ~code:"sched/infeasible"
            ~context:
              [ ("op", Isa.string_of_opcode a.Isa.op);
                ("ports", string_of_int (Isa.gpr_port_ops a));
                ("port_budget", string_of_int md.Mdes.md_rf_port_budget) ]
            "%a cannot execute on this machine (unit absent or register \
             ports exceed the budget)"
            Isa.pp_inst a)
      approx;
    let edges = build_deps md insts in
    let height = heights insts edges in
    let cycle_of = Array.make n (-1) in
    let scheduled = ref 0 in
    (* Incremental readiness: count incoming dependence edges; placing an
       instruction decrements its successors and pushes their earliest
       start.  Keeps scheduling near O(V + E) instead of rescanning the
       whole block every cycle (unrolled DCT blocks exceed 10^3 ops). *)
    let pred_count = Array.make n 0 in
    let succ = Array.make n [] in
    Array.iteri
      (fun j preds ->
        pred_count.(j) <- List.length preds;
        List.iter (fun (i, d) -> succ.(i) <- (j, d) :: succ.(i)) preds)
      edges;
    let earliest = Array.make n 0 in
    let avail = ref [] in
    Array.iteri (fun k c -> if c = 0 then avail := k :: !avail) pred_count;
    (* When each architectural GPR's latest in-block value becomes
       available, for forwarding-aware port accounting (mirrors the
       simulator: a read is free exactly when the value arrives). *)
    let gpr_available : (int, int) Hashtbl.t = Hashtbl.create 32 in
    (* Per-cycle resource tables, grown on demand. *)
    let cycles : (int, int array * int ref * int ref) Hashtbl.t = Hashtbl.create 16 in
    (* (unit counts indexed by class, total issued, gpr ports) *)
    let unit_index = function
      | Isa.U_alu -> 0 | Isa.U_lsu -> 1 | Isa.U_cmpu -> 2 | Isa.U_bru -> 3
      | Isa.U_none -> 4
    in
    let capacity = function
      | Isa.U_alu -> md.Mdes.md_alus
      | Isa.U_lsu -> md.Mdes.md_lsus
      | Isa.U_cmpu -> md.Mdes.md_cmpus
      | Isa.U_bru -> md.Mdes.md_brus
      | Isa.U_none -> max_int
    in
    let cycle_state c =
      match Hashtbl.find_opt cycles c with
      | Some s -> s
      | None ->
        let s = (Array.make 5 0, ref 0, ref 0) in
        Hashtbl.replace cycles c s;
        s
    in
    let port_need c k =
      let a = approx.(k) in
      let reads =
        List.fold_left
          (fun acc (file, idx) ->
            match (file : Isa.regfile) with
            | Isa.R_gpr ->
              let forwarded =
                md.Mdes.md_forwarding && Hashtbl.find_opt gpr_available idx = Some c
              in
              if forwarded then acc else acc + 1
            | Isa.R_pred | Isa.R_btr -> acc)
          0 (Isa.reads a)
      in
      let writes =
        List.fold_left
          (fun acc (file, _) -> match (file : Isa.regfile) with
             | Isa.R_gpr -> acc + 1 | Isa.R_pred | Isa.R_btr -> acc)
          0 (Isa.writes a)
      in
      reads + writes
    in
    let fits c k =
      let units, total, ports = cycle_state c in
      let u = unit_usage approx.(k).Isa.op in
      !total < md.Mdes.md_issue_width
      && units.(unit_index u) < capacity u
      && !ports + port_need c k <= md.Mdes.md_rf_port_budget
    in
    let place c k =
      let units, total, ports = cycle_state c in
      let u = unit_usage approx.(k).Isa.op in
      units.(unit_index u) <- units.(unit_index u) + 1;
      incr total;
      ports := !ports + port_need c k;
      List.iter
        (fun (file, idx) ->
          match (file : Isa.regfile) with
          | Isa.R_gpr ->
            Hashtbl.replace gpr_available idx
              (c + Mdes.latency md approx.(k).Isa.op)
          | Isa.R_pred | Isa.R_btr -> ())
        (Isa.writes approx.(k));
      cycle_of.(k) <- c;
      incr scheduled;
      List.iter
        (fun (j, d) ->
          earliest.(j) <- max earliest.(j) (c + d);
          pred_count.(j) <- pred_count.(j) - 1;
          if pred_count.(j) = 0 then avail := j :: !avail)
        succ.(k)
    in
    let current = ref 0 in
    while !scheduled < n do
      let ready, waiting = List.partition (fun k -> earliest.(k) <= !current) !avail in
      let ready = List.sort (fun a b -> compare (- height.(a), a) (- height.(b), b)) ready in
      (* [place] pushes instructions that just became ready onto [avail];
         start from empty so they are kept. *)
      avail := [];
      let leftover =
        List.filter
          (fun k ->
            if fits !current k && earliest.(k) <= !current then begin
              place !current k;
              false
            end
            else true)
          ready
      in
      avail := !avail @ leftover @ waiting;
      (* Jump to the next cycle where something can become ready. *)
      (match !avail with
       | [] -> incr current
       | ks ->
         let next = List.fold_left (fun m k -> min m earliest.(k)) max_int ks in
         current := max (!current + 1) (min next (!current + 1000000)))
    done;
    let max_cycle = Array.fold_left max 0 cycle_of in
    let bundles = Array.make (max_cycle + 1) [] in
    Array.iteri (fun k c -> bundles.(c) <- k :: bundles.(c)) cycle_of;
    (* Preserve original order within a bundle: phase-2 execution is
       sequential over slots, so program order within a cycle keeps
       same-bundle memory and branch semantics sequential. *)
    Array.map (fun ks -> List.map (fun k -> insts.(k)) (List.sort compare ks)) bundles
  end

(* Schedule one block's instruction list into bundles. *)
let schedule_block (md : Mdes.t) (insts : A.inst list) : A.inst list list =
  Array.to_list (schedule_block_cycles md insts) |> List.filter (fun b -> b <> [])

(* A trivial one-op-per-bundle schedule, for debugging and as a baseline
   in the scheduler's own tests. *)
let schedule_sequential (insts : A.inst list) : A.inst list list =
  List.map (fun i -> [ i ]) insts

(* Schedule a code-generated function into assembly items. *)
let schedule_cfunc ?(scheduling = true) (md : Mdes.t) (cf : Codegen.cfunc) =
  let stats = ref empty_stats in
  let items =
    List.concat_map
      (fun (cb : Codegen.cblock) ->
        let bundles =
          if scheduling then schedule_block md cb.Codegen.cb_insts
          else schedule_sequential cb.Codegen.cb_insts
        in
        stats :=
          add_stats !stats
            { st_blocks = 1;
              st_insts = List.length cb.Codegen.cb_insts;
              st_bundles = List.length bundles };
        A.Ilabel cb.Codegen.cb_label :: List.map (fun b -> A.Ibundle b) bundles)
      cf.Codegen.cf_blocks
  in
  (items, !stats)

let schedule_program ?scheduling (md : Mdes.t) (cfuncs : Codegen.cfunc list) =
  let stats = ref empty_stats in
  let items =
    List.concat_map
      (fun cf ->
        let items, st = schedule_cfunc ?scheduling md cf in
        stats := add_stats !stats st;
        items)
      cfuncs
  in
  ({ A.items }, !stats)
