(** Cycle-level simulator of the customisable EPIC processor (the
    ReaCT-ILP role in the paper's flow: "the number of cycles taken by our
    EPIC design is measured by ... a cycle-level simulator").

    Modelled microarchitecture (paper Sections 3.2-3.3):
    - 2-stage pipeline: Fetch/Decode/Issue, then Execute/Write-back; a
      taken branch costs one refill bubble;
    - in-order issue of one bundle (up to [issue_width] operations) per
      cycle, whole-bundle stall on a not-yet-ready operand (scoreboard
      interlock, so mis-scheduled code is slow rather than wrong);
    - register-file controller: at most [rf_port_budget] GPR reads+writes
      per processor cycle (dual-port block RAM clocked at 4x); exceeding
      the budget stalls for the extra controller rounds; with
      [forwarding] on, a value consumed the cycle it becomes available
      bypasses the register file and costs no port;
    - predication: a false guard nullifies the operation;
    - branch-target registers written by PBRR, read by branches.

    Register values are canonical [width]-bit unsigned ints; r0 and p0 are
    hardwired.  Memory is the byte-addressable big-endian data memory
    shared with the MIR tooling ({!Epic_mir.Memmap}). *)

module Isa = Epic_isa
module Config = Epic_config
module A = Epic_asm.Aunit
module Memmap = Epic_mir.Memmap

module Diag = Epic_diag

exception Sim_error of Diag.t

let fail ?ctx code fmt =
  Format.kasprintf (fun s -> raise (Sim_error (Diag.v ?context:ctx ~code s))) fmt

(* ---- architectural trap model ------------------------------------- *)

(* A fault detected while executing — runaway PC, out-of-bounds memory
   access, an operation the configured datapath does not implement, fuel
   exhaustion — terminates the run gracefully: the simulator catches the
   internal [Trap] exception at the top of its cycle loop and returns a
   normal [result] carrying the trap record alongside the partial
   statistics and final architectural state.  Nothing escapes as an
   exception from [run]; [run_exn] restores the old raising behaviour. *)

type trap_cause =
  | T_bad_pc      (* PC left the code image *)
  | T_mem_bounds  (* load/store outside data memory *)
  | T_illegal_op  (* unimplemented/illegal operation or operand *)
  | T_fuel        (* watchdog: cycle budget exhausted *)

type trap = {
  tr_cause : trap_cause;
  tr_pc : int;        (* bundle index at the faulting cycle *)
  tr_cycle : int;     (* architectural cycle of the fault *)
  tr_message : string;
}

exception Trap of trap_cause * string

let trap_ cause fmt = Format.kasprintf (fun s -> raise (Trap (cause, s))) fmt

let string_of_trap_cause = function
  | T_bad_pc -> "bad-pc"
  | T_mem_bounds -> "mem-bounds"
  | T_illegal_op -> "illegal-op"
  | T_fuel -> "fuel"

let pp_trap ppf t =
  Format.fprintf ppf "trap %s at pc=%d cycle=%d: %s"
    (string_of_trap_cause t.tr_cause) t.tr_pc t.tr_cycle t.tr_message

type stats = {
  mutable cycles : int;
  mutable bundles : int;       (* bundles issued (not counting stalls) *)
  mutable ops : int;           (* non-NOP operations issued *)
  mutable nops : int;          (* NOP slots fetched *)
  mutable squashed : int;      (* operations nullified by a false guard *)
  mutable operand_stalls : int;
  mutable port_stalls : int;
  mutable branch_bubbles : int;
  mutable mem_reads : int;
  mutable mem_writes : int;
  mutable alu_ops : int;
  mutable lsu_ops : int;
  mutable cmpu_ops : int;
  mutable bru_ops : int;
}

type result = {
  ret : int;            (* r3 at HALT (or at the trap, for faulting runs) *)
  stats : stats;
  mem : Bytes.t;
  gprs : int array;
  trap : trap option;   (* None: clean HALT; Some: why the run ended early *)
}

(* Mutable view of the whole architectural state, handed to a [tamper]
   hook once per cycle — the fault-injection surface.  The arrays and the
   byte buffer are the simulator's own (mutations take effect
   immediately); [m_insts] is the image's instruction stream, indexed
   [bundle * issue_width + slot]. *)
type machine = {
  m_gprs : int array;
  m_preds : bool array;
  m_btrs : int array;
  m_mem : Bytes.t;
  m_insts : Isa.inst array;
  m_issue_width : int;
  m_pc : int;
  m_cycle : int;
}

let mk_stats () =
  { cycles = 0; bundles = 0; ops = 0; nops = 0; squashed = 0;
    operand_stalls = 0; port_stalls = 0; branch_bubbles = 0;
    mem_reads = 0; mem_writes = 0; alu_ops = 0; lsu_ops = 0; cmpu_ops = 0;
    bru_ops = 0 }

let ilp st = if st.cycles = 0 then 0.0 else float_of_int st.ops /. float_of_int st.cycles

(* ---- structured event stream ------------------------------------- *)

(* The profiling hook: when [run] is given a [sink], it emits one event
   per issued bundle and one per stall, in simulated-time order.  The
   stream is conservative by construction: every simulated cycle is
   covered by exactly one event (an issue costs one cycle, a stall event
   carries its cycle count), so a consumer summing over events recovers
   [stats.cycles] exactly.  With no sink the simulator takes the exact
   same path as before — cycle counts are bit-identical. *)

type stall_cause =
  | S_operand   (* scoreboard interlock: a source operand not yet ready *)
  | S_port      (* register-file port budget exceeded *)
  | S_branch    (* pipeline refill bubbles after a taken branch *)

type slot =
  | Sl_empty                  (* NOP padding slot *)
  | Sl_op of Isa.opcode       (* issued and executed *)
  | Sl_squashed of Isa.opcode (* nullified by a false guard *)
  | Sl_shadowed of Isa.opcode (* skipped: an earlier slot took a branch *)

type event =
  | Ev_stall of { at : int; pc : int; cause : stall_cause; cycles : int }
  | Ev_issue of {
      at : int;              (* cycle the bundle issued *)
      pc : int;              (* bundle index *)
      slots : slot array;    (* one entry per issue slot *)
      next_pc : int;         (* bundle executing next *)
      taken : bool;          (* a branch (or HALT) redirected the flow *)
    }

let string_of_stall_cause = function
  | S_operand -> "operand"
  | S_port -> "port"
  | S_branch -> "branch"


(* [trace] receives one line per issued bundle: cycle, PC and the
   non-NOP operations (squashed ones bracketed).  Used by epicsim
   --trace and handy when debugging schedules. *)
let run ?(fuel = 500_000_000) ?trace ?sink ?tamper (cfg : Config.t)
    ~(image : A.image) ~(mem : Bytes.t) ?(entry = 0) () =
  let w = image.A.im_issue_width in
  if w <> cfg.Config.issue_width then
    fail "sim/issue-width"
      ~ctx:
        [ ("image", string_of_int w);
          ("config", string_of_int cfg.Config.issue_width) ]
      "image was assembled for issue width %d, configuration has %d" w
      cfg.Config.issue_width;
  let insts = image.A.im_insts in
  let n_bundles = Array.length insts / w in
  let width = cfg.Config.width in
  let m v = Isa.Word.mask width v in
  let gprs = Array.make cfg.Config.n_gprs 0 in
  let preds = Array.make cfg.Config.n_preds false in
  preds.(0) <- true;
  let btrs = Array.make cfg.Config.n_btrs 0 in
  (* Cycle at which each register's latest value becomes readable. *)
  let gpr_ready = Array.make cfg.Config.n_gprs 0 in
  let pred_ready = Array.make cfg.Config.n_preds 0 in
  let btr_ready = Array.make cfg.Config.n_btrs 0 in
  let st = mk_stats () in
  let custom name a b = Config.custom_eval cfg name a b in
  let mem_len = Bytes.length mem in
  let check_addr a n op =
    if a < 0 || a + n > mem_len then
      trap_ T_mem_bounds "%s: address %#x out of bounds (cycle %d)" op a st.cycles
  in
  (* Decode-stage validation: before issue, every fetched operation must
     be implemented by the configured datapath and name only registers
     that exist.  A clean image always passes (the assembler enforces the
     same constraints), so this changes nothing for normal runs; it turns
     corrupted instruction words — e.g. injected bit flips that decode to
     junk indices or to the ILLEGAL marker — into architectural traps
     instead of array-bounds crashes. *)
  let check_inst pc slot (i : Isa.inst) =
    if not (Config.op_supported cfg i.Isa.op) then
      trap_ T_illegal_op "illegal or unimplemented operation %s (pc %d slot %d)"
        (Isa.string_of_opcode i.Isa.op) pc slot;
    let check_reg (file, idx) =
      let limit =
        match (file : Isa.regfile) with
        | Isa.R_gpr -> cfg.Config.n_gprs
        | Isa.R_pred -> cfg.Config.n_preds
        | Isa.R_btr -> cfg.Config.n_btrs
      in
      if idx < 0 || idx >= limit then
        trap_ T_illegal_op "%s register index %d out of range (pc %d slot %d, %s)"
          (match file with Isa.R_gpr -> "GPR" | Isa.R_pred -> "predicate" | Isa.R_btr -> "BTR")
          idx pc slot
          (Isa.string_of_opcode i.Isa.op)
    in
    List.iter check_reg (Isa.reads i);
    List.iter check_reg (Isa.writes i)
  in
  let halted = ref false in
  let ret = ref 0 in
  let pc = ref entry in
  let now = ref 0 in
  let latency op = Config.latency cfg op in
  (* One fetched operation, pre-decoded operand values filled per cycle. *)
  let bundle = Array.make w Isa.nop in
  let trap_info = ref None in
  (try
  while not !halted do
    if !now > fuel then trap_ T_fuel "out of fuel after %d cycles" fuel;
    if !pc < 0 || !pc >= n_bundles then
      trap_ T_bad_pc "PC %d outside code (cycle %d)" !pc st.cycles;
    (match tamper with
     | Some f ->
       f { m_gprs = gprs; m_preds = preds; m_btrs = btrs; m_mem = mem;
           m_insts = insts; m_issue_width = w; m_pc = !pc; m_cycle = !now }
     | None -> ());
    for k = 0 to w - 1 do
      bundle.(k) <- insts.((!pc * w) + k);
      if bundle.(k).Isa.op <> Isa.NOP then check_inst !pc k bundle.(k)
    done;
    (* ---- readiness: stall the whole bundle until every source (and
       guard) of every operation is available. *)
    let ready_cycle = ref 0 in
    for k = 0 to w - 1 do
      let i = bundle.(k) in
      List.iter
        (fun (file, idx) ->
          let r =
            match (file : Isa.regfile) with
            | Isa.R_gpr -> gpr_ready.(idx)
            | Isa.R_pred -> pred_ready.(idx)
            | Isa.R_btr -> btr_ready.(idx)
          in
          if r > !ready_cycle then ready_cycle := r)
        (Isa.reads i)
    done;
    if !ready_cycle > !now then begin
      (match sink with
       | Some f ->
         f (Ev_stall { at = !now; pc = !pc; cause = S_operand;
                       cycles = !ready_cycle - !now })
       | None -> ());
      st.operand_stalls <- st.operand_stalls + (!ready_cycle - !now);
      st.cycles <- st.cycles + (!ready_cycle - !now);
      now := !ready_cycle
    end;
    (* ---- register-file port accounting.  A GPR read whose value became
       ready exactly this cycle is forwarded (free) when forwarding is
       enabled; every other GPR read and every GPR write costs one port
       operation on the quad-pumped controller. *)
    let port_ops = ref 0 in
    for k = 0 to w - 1 do
      let i = bundle.(k) in
      List.iter
        (fun (file, idx) ->
          match (file : Isa.regfile) with
          | Isa.R_gpr ->
            let forwarded = cfg.Config.forwarding && gpr_ready.(idx) = !now && !now > 0 in
            if not forwarded then incr port_ops
          | Isa.R_pred | Isa.R_btr -> ())
        (Isa.reads i);
      List.iter
        (fun (file, idx) ->
          ignore idx;
          match (file : Isa.regfile) with
          | Isa.R_gpr -> incr port_ops
          | Isa.R_pred | Isa.R_btr -> ())
        (Isa.writes i)
    done;
    let budget = cfg.Config.rf_port_budget in
    if !port_ops > budget then begin
      let extra = ((!port_ops + budget - 1) / budget) - 1 in
      (match sink with
       | Some f when extra > 0 ->
         f (Ev_stall { at = !now; pc = !pc; cause = S_port; cycles = extra })
       | _ -> ());
      st.port_stalls <- st.port_stalls + extra;
      st.cycles <- st.cycles + extra;
      now := !now + extra
    end;
    (* ---- phase 1: read all sources (register reads happen at issue). *)
    let src_val (s : Isa.src) =
      match s with Isa.Sreg r -> gprs.(r) | Isa.Simm v -> m v
    in
    let vals1 = Array.make w 0 and vals2 = Array.make w 0 in
    let enabled = Array.make w false in
    for k = 0 to w - 1 do
      let i = bundle.(k) in
      vals1.(k) <- src_val i.Isa.src1;
      vals2.(k) <- src_val i.Isa.src2;
      enabled.(k) <- i.Isa.guard = 0 || preds.(i.Isa.guard)
    done;
    (* Predicate operand of conditional branches is read at issue too. *)
    let branch_pred = Array.make w true in
    for k = 0 to w - 1 do
      let i = bundle.(k) in
      match i.Isa.op with
      | Isa.BRCT | Isa.BRCF ->
        (match i.Isa.src2 with
         | Isa.Simm p when p >= 0 && p < cfg.Config.n_preds -> branch_pred.(k) <- preds.(p)
         | Isa.Simm p -> trap_ T_illegal_op "branch predicate index %d out of range" p
         | Isa.Sreg _ -> trap_ T_illegal_op "branch predicate operand must be a literal index")
      | _ -> ()
    done;
    (* ---- phase 2: execute and write back. *)
    let cycle = !now in
    let write_gpr r v lat =
      if r <> 0 then begin
        gprs.(r) <- m v;
        gpr_ready.(r) <- cycle + lat
      end
    in
    let next_pc = ref (!pc + 1) in
    let taken = ref false in
    (* Per-slot outcome, recorded only when a sink is listening. *)
    let slots =
      match sink with Some _ -> Some (Array.make w Sl_empty) | None -> None
    in
    let set_slot k s = match slots with Some a -> a.(k) <- s | None -> () in
    for k = 0 to w - 1 do
         if !taken then begin
           let op = bundle.(k).Isa.op in
           if op <> Isa.NOP then set_slot k (Sl_shadowed op)
         end
         else begin
           let i = bundle.(k) in
           let op = i.Isa.op in
           if op = Isa.NOP then st.nops <- st.nops + 1
           else if not enabled.(k) then begin
             set_slot k (Sl_squashed op);
             st.squashed <- st.squashed + 1;
             st.ops <- st.ops + 1
           end
           else begin
             set_slot k (Sl_op op);
             st.ops <- st.ops + 1;
             (match Isa.unit_of op with
              | Isa.U_alu -> st.alu_ops <- st.alu_ops + 1
              | Isa.U_lsu -> st.lsu_ops <- st.lsu_ops + 1
              | Isa.U_cmpu -> st.cmpu_ops <- st.cmpu_ops + 1
              | Isa.U_bru -> st.bru_ops <- st.bru_ops + 1
              | Isa.U_none -> ());
             match op with
             | Isa.ADD | Isa.SUB | Isa.MPY | Isa.DIV | Isa.REM | Isa.MIN
             | Isa.MAX | Isa.ABS | Isa.AND | Isa.OR | Isa.XOR | Isa.ANDCM
             | Isa.NAND | Isa.NOR | Isa.SHL | Isa.SHR | Isa.SHRA | Isa.MOV
             | Isa.CUSTOM _ ->
               let v = Isa.eval_alu ~width ~custom op vals1.(k) vals2.(k) in
               write_gpr i.Isa.dst1 v (latency op)
             | Isa.LD mw | Isa.LDU mw ->
               let ea = m (vals1.(k) + vals2.(k)) in
               let bytes = Isa.bytes_of_mem_width mw in
               check_addr ea bytes "load";
               st.mem_reads <- st.mem_reads + 1;
               let size = match mw with
                 | Isa.M_byte -> Epic_mir.Ir.I8
                 | Isa.M_half -> Epic_mir.Ir.I16
                 | Isa.M_word -> Epic_mir.Ir.I32
               in
               let ext = match op with Isa.LD _ -> Epic_mir.Ir.Sx | _ -> Epic_mir.Ir.Zx in
               let v = Memmap.read ~size ~ext mem ea in
               write_gpr i.Isa.dst1 (m v) (latency op)
             | Isa.ST mw ->
               let bytes = Isa.bytes_of_mem_width mw in
               let ea = m (vals1.(k) + (i.Isa.dst1 * bytes)) in
               check_addr ea bytes "store";
               st.mem_writes <- st.mem_writes + 1;
               let size = match mw with
                 | Isa.M_byte -> Epic_mir.Ir.I8
                 | Isa.M_half -> Epic_mir.Ir.I16
                 | Isa.M_word -> Epic_mir.Ir.I32
               in
               Memmap.write ~size mem ea vals2.(k)
             | Isa.CMPP c ->
               let t = Isa.eval_cmp ~width c vals1.(k) vals2.(k) in
               if i.Isa.dst1 <> 0 then begin
                 preds.(i.Isa.dst1) <- t;
                 pred_ready.(i.Isa.dst1) <- cycle + latency op
               end;
               if i.Isa.dst2 <> 0 then begin
                 preds.(i.Isa.dst2) <- not t;
                 pred_ready.(i.Isa.dst2) <- cycle + latency op
               end
             | Isa.PBRR ->
               btrs.(i.Isa.dst1) <- vals1.(k);
               btr_ready.(i.Isa.dst1) <- cycle + latency op
             | Isa.BRU_ ->
               (match i.Isa.src1 with
                | Isa.Simm b -> next_pc := btrs.(b); taken := true
                | Isa.Sreg _ -> trap_ T_illegal_op "BRU operand must be a BTR index")
             | Isa.BRCT | Isa.BRCF ->
               let want = op = Isa.BRCT in
               if branch_pred.(k) = want then begin
                 (match i.Isa.src1 with
                  | Isa.Simm b -> next_pc := btrs.(b); taken := true
                  | Isa.Sreg _ -> trap_ T_illegal_op "branch operand must be a BTR index")
               end
             | Isa.BRL ->
               (match i.Isa.src1 with
                | Isa.Simm b ->
                  write_gpr i.Isa.dst1 (!pc + 1) (latency op);
                  next_pc := btrs.(b);
                  taken := true
                | Isa.Sreg _ -> trap_ T_illegal_op "BRL operand must be a BTR index")
             | Isa.HALT ->
               halted := true;
               ret := gprs.(3);
               taken := true
             | Isa.NOP -> ()
           end
         end
       done;
    (match trace with
     | Some ppf ->
       Format.fprintf ppf "%8d  pc=%-6d" !now !pc;
       for k = 0 to w - 1 do
         let i = bundle.(k) in
         if i.Isa.op <> Isa.NOP then
           if enabled.(k) then Format.fprintf ppf " | %a" Isa.pp_inst i
           else Format.fprintf ppf " | [%a]" Isa.pp_inst i
       done;
       Format.fprintf ppf "@."
     | None -> ());
    (match sink, slots with
     | Some f, Some a ->
       f (Ev_issue { at = cycle; pc = !pc; slots = a; next_pc = !next_pc;
                     taken = !taken })
     | _ -> ());
    st.bundles <- st.bundles + 1;
    st.cycles <- st.cycles + 1;
    now := !now + 1;
    if !taken && not !halted then begin
      (* Taken branch: refill the front of the pipeline — one bubble per
         stage before execute (1 in the paper's 2-stage prototype). *)
      let bubbles = cfg.Config.pipeline_stages - 1 in
      (match sink with
       | Some f when bubbles > 0 ->
         f (Ev_stall { at = !now; pc = !pc; cause = S_branch; cycles = bubbles })
       | _ -> ());
      st.branch_bubbles <- st.branch_bubbles + bubbles;
      st.cycles <- st.cycles + bubbles;
      now := !now + bubbles
    end;
    pc := !next_pc
  done
  with Trap (cause, msg) ->
    (* Graceful termination: freeze the architectural state, record the
       fault, and fall through to the normal result path.  [ret] reflects
       r3 at the trap so partial results remain observable. *)
    ret := gprs.(3);
    trap_info :=
      Some { tr_cause = cause; tr_pc = !pc; tr_cycle = st.cycles; tr_message = msg });
  { ret = !ret; stats = st; mem; gprs; trap = !trap_info }

let run_exn ?fuel ?trace ?sink ?tamper cfg ~image ~mem ?entry () =
  let r = run ?fuel ?trace ?sink ?tamper cfg ~image ~mem ?entry () in
  match r.trap with
  | None -> r
  | Some t ->
    raise
      (Sim_error
         (Diag.errorf
            ~code:("sim/trap-" ^ string_of_trap_cause t.tr_cause)
            ~context:
              [ ("pc", string_of_int t.tr_pc);
                ("cycle", string_of_int t.tr_cycle) ]
            "%a" pp_trap t))

let pp_stats ppf st =
  Format.fprintf ppf
    "@[<v>cycles          %d@,bundles         %d@,operations      %d@,\
     nop slots       %d@,squashed        %d@,operand stalls  %d@,\
     port stalls     %d@,branch bubbles  %d@,memory reads    %d@,\
     memory writes   %d@,ALU/LSU/CMPU/BRU %d/%d/%d/%d@,ILP             %.2f@]"
    st.cycles st.bundles st.ops st.nops st.squashed st.operand_stalls
    st.port_stalls st.branch_bubbles st.mem_reads st.mem_writes st.alu_ops
    st.lsu_ops st.cmpu_ops st.bru_ops (ilp st)
