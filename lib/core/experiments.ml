(* Experiment harness regenerating every table and figure of the paper's
   evaluation (Section 5); see DESIGN.md for the experiment index. *)

module Config = Epic_config
module Sources = Epic_workloads.Sources
module Area = Epic_area
module T = Toolchain

(* Benchmark sizes.  [default] keeps a full sweep fast; [paper] matches
   the paper's inputs (256x256 images, a large graph). *)
type sizes = {
  sha_bytes : int;
  aes_iters : int;
  dct_size : int * int;
  dijkstra_nodes : int;
}

let default_sizes =
  { sha_bytes = Sources.default_sha_bytes;
    aes_iters = Sources.default_aes_iters;
    dct_size = (Sources.default_dct_width, Sources.default_dct_height);
    dijkstra_nodes = Sources.default_dijkstra_nodes }

let paper_sizes =
  { sha_bytes = 256 * 256 * 3; aes_iters = 1000; dct_size = (256, 256);
    dijkstra_nodes = 100 }

let benchmarks sizes =
  let w, h = sizes.dct_size in
  [ Sources.sha_benchmark ~bytes:sizes.sha_bytes ();
    Sources.aes_benchmark ~iters:sizes.aes_iters ();
    Sources.dct_benchmark ~width:w ~height:h ();
    Sources.dijkstra_benchmark ~nodes:sizes.dijkstra_nodes () ]

(* ------------------------------------------------------------------ *)
(* E1 / Table 1: cycle counts on the SA-110 and on EPIC with 1-4 ALUs. *)

type table1_row = {
  t1_name : string;
  t1_sa110 : int;
  t1_epic : (int * int) list;  (* (#ALUs, cycles) *)
}

let alu_sweep = [ 1; 2; 3; 4 ]

(* Each (workload x design point) of the grid is an independent
   compile-and-simulate job: fan them out with [jobs] domains and regroup
   by position, so the rows never depend on execution order.  The shared
   compile cache makes the ALU sweep optimise each workload once. *)
let table1 ?(jobs = 1) ?cache ?(sizes = default_sizes) ?(alus = alu_sweep) () =
  let cache = match cache with Some c -> c | None -> T.Compile_cache.create () in
  let bms = benchmarks sizes in
  let points = `Arm :: List.map (fun n -> `Epic n) alus in
  let grid =
    List.concat_map
      (fun (bm : Sources.benchmark) -> List.map (fun p -> (bm, p)) points)
      bms
  in
  let cycles =
    Epic_exec.Pool.map ~jobs
      (fun ((bm : Sources.benchmark), point) ->
        let source = bm.Sources.bm_source and expected = bm.Sources.bm_expected in
        match point with
        | `Arm -> (T.arm_cycles ~cache ~source ~expected ()).Epic_arm.Sim.cycles
        | `Epic n ->
          (T.epic_cycles ~cache (Config.with_alus n) ~source ~expected ())
            .Epic_sim.cycles)
      grid
  in
  let per_bm = List.length points in
  List.mapi
    (fun i (bm : Sources.benchmark) ->
      let row = List.filteri (fun j _ -> j / per_bm = i) cycles in
      match row with
      | sa110 :: epic ->
        { t1_name = bm.Sources.bm_name; t1_sa110 = sa110;
          t1_epic = List.combine alus epic }
      | [] -> assert false)
    bms

(* ------------------------------------------------------------------ *)
(* E2-E4 / Figures 3-5: execution time = cycles x clock period.  The
   SA-110 runs at 100 MHz (paper Section 5.2), the EPIC prototype at the
   area model's clock (41.8 MHz for the default format). *)

let sa110_mhz = 100.0

type fig_point = { fp_label : string; fp_seconds : float }

let fig_times (row : table1_row) =
  { fp_label = "SA110"; fp_seconds = float_of_int row.t1_sa110 /. (sa110_mhz *. 1e6) }
  :: List.map
       (fun (n, cycles) ->
         let clock = (Area.estimate (Config.with_alus n)).Area.clock_mhz in
         { fp_label = Printf.sprintf "%d ALU%s" n (if n = 1 then "" else "s");
           fp_seconds = float_of_int cycles /. (clock *. 1e6) })
       row.t1_epic

(* Derived claims (paper Section 5.2): same-clock speedup of the 4-ALU
   design over the SA-110, and the wall-clock ratio. *)
type speedup = { sp_same_clock : float; sp_wall_clock : float }

let speedups (row : table1_row) =
  let epic4 = List.assoc 4 row.t1_epic in
  let clock4 = (Area.estimate (Config.with_alus 4)).Area.clock_mhz in
  {
    sp_same_clock = float_of_int row.t1_sa110 /. float_of_int epic4;
    sp_wall_clock =
      float_of_int row.t1_sa110 /. (sa110_mhz *. 1e6)
      /. (float_of_int epic4 /. (clock4 *. 1e6));
  }

(* ------------------------------------------------------------------ *)
(* E5 / Section 5.1: resource usage for the 1-4 ALU designs. *)

type resource_row = { rr_alus : int; rr : Area.report }

let resources ?(alus = alu_sweep) () =
  List.map (fun n -> { rr_alus = n; rr = Area.estimate (Config.with_alus n) }) alus

let paper_slices = [ (1, 4181); (2, 6779); (3, 9367); (4, 11988) ]

(* ------------------------------------------------------------------ *)
(* A1: register-file port budget and forwarding (paper Section 3.2). *)

type port_point = { pp_budget : int; pp_forwarding : bool; pp_cycles : int; pp_port_stalls : int }

let ablate_ports ?(sizes = default_sizes) ?(budgets = [ 4; 8; 16 ]) () =
  let bm = Sources.sha_benchmark ~bytes:sizes.sha_bytes () in
  List.concat_map
    (fun budget ->
      List.map
        (fun forwarding ->
          let cfg = { (Config.with_alus 4) with Config.rf_port_budget = budget; forwarding } in
          let st =
            T.epic_cycles cfg ~source:bm.Sources.bm_source
              ~expected:bm.Sources.bm_expected ()
          in
          { pp_budget = budget; pp_forwarding = forwarding;
            pp_cycles = st.Epic_sim.cycles; pp_port_stalls = st.Epic_sim.port_stalls })
        [ true; false ])
    budgets

(* A2: the ROTR custom instruction for SHA (paper Section 3.3). *)

type custom_point = { cp_label : string; cp_cycles : int; cp_slices : int }

let ablate_custom ?(sizes = default_sizes) () =
  let base = Config.with_alus 4 in
  let with_rotr = Config.add_custom base "ROTR" in
  let bm = Sources.sha_benchmark ~bytes:sizes.sha_bytes () in
  let bm_rotr = Sources.sha_benchmark ~use_rotr_custom:true ~bytes:sizes.sha_bytes () in
  [
    { cp_label = "base ISA";
      cp_cycles =
        (T.epic_cycles base ~source:bm.Sources.bm_source
           ~expected:bm.Sources.bm_expected ()).Epic_sim.cycles;
      cp_slices = (Area.estimate base).Area.slices };
    { cp_label = "+ROTR";
      cp_cycles =
        (T.epic_cycles with_rotr ~source:bm_rotr.Sources.bm_source
           ~expected:bm_rotr.Sources.bm_expected ()).Epic_sim.cycles;
      cp_slices = (Area.estimate with_rotr).Area.slices };
  ]

(* A3: instructions per issue (paper Section 3.3 lists it as a parameter;
   bandwidth constrains it to 1..4). *)

type issue_point = { ip_issue : int; ip_cycles : int; ip_nops : int }

let ablate_issue ?(sizes = default_sizes) () =
  let w, h = sizes.dct_size in
  let bm = Sources.dct_benchmark ~width:w ~height:h () in
  List.map
    (fun iw ->
      let cfg = { (Config.with_alus 4) with Config.issue_width = iw } in
      let a = T.compile_epic cfg ~source:bm.Sources.bm_source () in
      let r = T.run_epic a in
      assert (r.Epic_sim.ret = bm.Sources.bm_expected);
      { ip_issue = iw; ip_cycles = r.Epic_sim.stats.Epic_sim.cycles;
        ip_nops = Epic_asm.Aunit.nop_count a.T.ea_image })
    [ 1; 2; 3; 4 ]

(* A4: predication (if-conversion) on/off. *)

type pred_point = { dp_name : string; dp_with : int; dp_without : int }

let ablate_predication ?(sizes = default_sizes) () =
  let run bm predication =
    (T.epic_cycles ~predication (Config.with_alus 4)
       ~source:bm.Sources.bm_source ~expected:bm.Sources.bm_expected ())
      .Epic_sim.cycles
  in
  List.map
    (fun bm ->
      { dp_name = bm.Sources.bm_name;
        dp_with = run bm true;
        dp_without = run bm false })
    [ Sources.dijkstra_benchmark ~nodes:sizes.dijkstra_nodes ();
      Sources.dct_benchmark () ]

(* A5: pipeline depth (paper future work: "parameterising the level of
   pipelining").  Deeper pipelines raise the clock but pay more refill
   bubbles on taken branches — branchy code gains less. *)

type pipe_point = {
  pl_stages : int;
  pl_name : string;
  pl_cycles : int;
  pl_bubbles : int;
  pl_mhz : float;
  pl_micros : float;
}

let ablate_pipeline ?(sizes = default_sizes) () =
  let w, h = sizes.dct_size in
  let bms =
    [ Sources.dct_benchmark ~width:w ~height:h ();
      Sources.dijkstra_benchmark ~nodes:sizes.dijkstra_nodes () ]
  in
  List.concat_map
    (fun (bm : Sources.benchmark) ->
      List.map
        (fun stages ->
          let cfg = { (Config.with_alus 4) with Config.pipeline_stages = stages } in
          let st =
            T.epic_cycles cfg ~source:bm.Sources.bm_source
              ~expected:bm.Sources.bm_expected ()
          in
          let mhz = (Area.estimate cfg).Area.clock_mhz in
          {
            pl_stages = stages;
            pl_name = bm.Sources.bm_name;
            pl_cycles = st.Epic_sim.cycles;
            pl_bubbles = st.Epic_sim.branch_bubbles;
            pl_mhz = mhz;
            pl_micros = float_of_int st.Epic_sim.cycles /. mhz;
          })
        [ 2; 3; 4 ])
    bms

(* A6: power/performance across the ALU sweep (paper future work:
   "characterising the trade-offs in performance, size and power"). *)

let activity_of_stats (st : Epic_sim.stats) =
  {
    Area.ac_cycles = st.Epic_sim.cycles;
    ac_alu_ops = st.Epic_sim.alu_ops;
    ac_lsu_ops = st.Epic_sim.lsu_ops;
    ac_cmpu_ops = st.Epic_sim.cmpu_ops;
    ac_bru_ops = st.Epic_sim.bru_ops;
    ac_nops = st.Epic_sim.nops;
  }

type power_point = {
  po_alus : int;
  po_cycles : int;
  po_power : Area.power_report;
  po_micros : float;
}

let ablate_power ?(sizes = default_sizes) () =
  let w, h = sizes.dct_size in
  let bm = Sources.dct_benchmark ~width:w ~height:h () in
  List.map
    (fun alus ->
      let cfg = Config.with_alus alus in
      let st =
        T.epic_cycles cfg ~source:bm.Sources.bm_source
          ~expected:bm.Sources.bm_expected ()
      in
      let power = Area.power cfg (activity_of_stats st) in
      {
        po_alus = alus;
        po_cycles = st.Epic_sim.cycles;
        po_power = power;
        po_micros =
          float_of_int st.Epic_sim.cycles /. (Area.estimate cfg).Area.clock_mhz;
      })
    alu_sweep

(* A7: automatic custom-instruction generation (paper future work:
   "supporting automatic generation of custom instructions"). *)

type autogen_point = {
  ag_alus : int;
  ag_base_cycles : int;
  ag_spec_cycles : int;
  ag_generated : string list;
  ag_base_slices : int;
  ag_spec_slices : int;
}

let ablate_autogen ?(sizes = default_sizes) () =
  let bm = Sources.sha_benchmark ~bytes:sizes.sha_bytes () in
  let program = Epic_opt.for_epic (Epic_cfront.compile bm.Sources.bm_source) in
  List.filter_map
    (fun alus ->
      let cfg = Config.with_alus alus in
      let base =
        (T.epic_cycles cfg ~source:bm.Sources.bm_source
           ~expected:bm.Sources.bm_expected ())
          .Epic_sim.cycles
      in
      match Custom_gen.specialise ~rounds:6 cfg program with
      | None -> None
      | Some (cfg', program', chosen) ->
        let layout = Epic_mir.Memmap.layout program' in
        let unit_, _ = Epic_sched.compile_program cfg' layout program' in
        let image, _ = Epic_asm.assemble cfg' unit_ in
        let mem = Epic_mir.Memmap.init_memory layout program' in
        let r = Epic_sim.run cfg' ~image ~mem () in
        assert (r.Epic_sim.ret = bm.Sources.bm_expected);
        Some
          {
            ag_alus = alus;
            ag_base_cycles = base;
            ag_spec_cycles = r.Epic_sim.stats.Epic_sim.cycles;
            ag_generated =
              List.map
                (fun ((c : Custom_gen.candidate), _) ->
                  Custom_gen.expr_to_string c.Custom_gen.cg_expr)
                chosen;
            ag_base_slices = (Area.estimate cfg).Area.slices;
            ag_spec_slices = (Area.estimate cfg').Area.slices;
          })
    [ 1; 2; 4 ]

(* A8: loop unrolling (the remaining IMPACT-style knob).  AES's short
   fixed-trip loops benefit; the DCT (already hand-unrolled kernels)
   does not — unrolling is a per-application choice. *)

type unroll_point = { un_factor : int; un_name : string; un_cycles : int }

let ablate_unroll ?(sizes = default_sizes) () =
  let bms =
    [ Sources.aes_benchmark ~iters:(max 2 (sizes.aes_iters / 4)) ();
      Sources.dct_benchmark ~width:16 ~height:16 () ]
  in
  List.concat_map
    (fun (bm : Sources.benchmark) ->
      List.map
        (fun factor ->
          let st =
            T.epic_cycles ~unroll:factor (Config.with_alus 4)
              ~source:bm.Sources.bm_source ~expected:bm.Sources.bm_expected ()
          in
          { un_factor = factor; un_name = bm.Sources.bm_name;
            un_cycles = st.Epic_sim.cycles })
        [ 1; 4; 8 ])
    bms

(* A9: optimisation-pass ablation, through the pass manager's
   --disable-pass mechanism: recompile SHA (4 ALUs) with each default
   pipeline pass removed in turn and measure the cycle cost it was
   buying.  Passes appearing more than once in the pipeline (simplify-cfg)
   lose every occurrence. *)

type pass_point = {
  pa_pass : string;      (* disabled pass ("" = full pipeline baseline) *)
  pa_cycles : int;
  pa_static_ops : int;   (* scheduled operations (code-size proxy) *)
}

let ablate_passes ?(sizes = default_sizes) () =
  let bm = Sources.sha_benchmark ~bytes:sizes.sha_bytes () in
  let cfg = Config.with_alus 4 in
  let measure pipeline label =
    let a = T.compile_epic cfg ~pipeline ~source:bm.Sources.bm_source () in
    let r = T.run_epic a in
    assert (r.Epic_sim.ret = bm.Sources.bm_expected);
    { pa_pass = label;
      pa_cycles = r.Epic_sim.stats.Epic_sim.cycles;
      pa_static_ops = a.T.ea_sched.Epic_sched.Sched.st_insts }
  in
  let ablatable =
    List.sort_uniq compare
      (List.map (fun (p : Epic_opt.pass) -> p.Epic_opt.pass_name)
         Epic_opt.epic_passes)
  in
  measure T.default_pipeline ""
  :: List.map
       (fun name ->
         measure { T.default_pipeline with T.pp_disable = [ name ] } name)
       ablatable

(* ------------------------------------------------------------------ *)
(* A10: fault-injection campaigns — the AVF table per workload and ALU
   count.  The golden run of each campaign is checksum-verified against
   the benchmark's expected result (and, inside [T.fault_campaign],
   against the MIR reference interpreter), so every classification is
   relative to a validated baseline. *)

type avf_point = {
  af_name : string;
  af_alus : int;
  af_report : Epic_fault.report;
}

(* The grid level is the parallel one (campaigns inside each point stay
   sequential — nesting domain pools would oversubscribe the cores); the
   compile cache still deduplicates the per-workload front-end work. *)
let inject_faults ?(jobs = 1) ?cache ?(sizes = default_sizes)
    ?(alus = alu_sweep) ?(seed = 1) ?(runs = 16) () =
  let cache = match cache with Some c -> c | None -> T.Compile_cache.create () in
  let grid =
    List.concat_map
      (fun (bm : Sources.benchmark) -> List.map (fun n -> (bm, n)) alus)
      (benchmarks sizes)
  in
  Epic_exec.Pool.map ~jobs
    (fun ((bm : Sources.benchmark), n) ->
      let a =
        T.compile_epic ~cache (Config.with_alus n) ~source:bm.Sources.bm_source
          ()
      in
      let rp = T.fault_campaign ~seed ~runs a in
      if rp.Epic_fault.rp_golden_ret <> bm.Sources.bm_expected land 0xFFFFFFFF
      then
        failwith
          (Printf.sprintf "%s golden run returned %#x, expected %#x"
             bm.Sources.bm_name rp.Epic_fault.rp_golden_ret
             (bm.Sources.bm_expected land 0xFFFFFFFF));
      { af_name = bm.Sources.bm_name; af_alus = n; af_report = rp })
    grid

(* ------------------------------------------------------------------ *)
(* Host throughput probe: how many simulated cycles per second this
   machine sustains.  A small fixed workload (SHA over 64 bytes, 4 ALUs)
   is compiled once and re-simulated until the wall-clock budget runs
   out.  The number is machine-dependent by design — it belongs in the
   bench JSON's meta section, never in a determinism comparison. *)

type sim_rate = {
  sr_runs : int;
  sr_cycles : int;
  sr_wall_s : float;
  sr_cycles_per_s : float;
}

let sim_rate_of ?(budget_s = 0.25) (bm : Sources.benchmark) =
  let cfg = Config.with_alus 4 in
  let a = T.compile_epic cfg ~source:bm.Sources.bm_source () in
  let cycles = (T.run_epic a).Epic_sim.stats.Epic_sim.cycles in  (* warm-up *)
  let t0 = Epic_exec.now () in
  let rec loop runs total =
    let wall = Epic_exec.now () -. t0 in
    if wall >= budget_s && runs > 0 then (runs, total, wall)
    else
      loop (runs + 1)
        (total + (T.run_epic a).Epic_sim.stats.Epic_sim.cycles)
  in
  let runs, total, wall = loop 0 0 in
  { sr_runs = runs; sr_cycles = cycles; sr_wall_s = wall;
    sr_cycles_per_s =
      (if wall > 0. then float_of_int total /. wall else 0.) }

let sim_rate ?budget_s () =
  sim_rate_of ?budget_s (Sources.sha_benchmark ~bytes:64 ())

(* Small fixed inputs: the table is about host throughput per workload
   shape (branchy vs ALU-dense), not about the paper's problem sizes. *)
let sim_rate_table ?budget_s () =
  List.map
    (fun bm -> (bm.Sources.bm_name, sim_rate_of ?budget_s bm))
    [ Sources.sha_benchmark ~bytes:64 ();
      Sources.aes_benchmark ~iters:1 ();
      Sources.dct_benchmark ~width:8 ~height:8 ();
      Sources.dijkstra_benchmark ~nodes:6 () ]

let sim_rate_to_json r =
  Epic_profile.Json.Obj
    [ ("runs", Epic_profile.Json.Int r.sr_runs);
      ("cycles_per_run", Epic_profile.Json.Int r.sr_cycles);
      ("wall_s", Epic_profile.Json.Float r.sr_wall_s);
      ("cycles_per_s", Epic_profile.Json.Float r.sr_cycles_per_s) ]
