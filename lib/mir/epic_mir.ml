(** Target-independent mid-level IR (MIR) of the EPIC toolchain.

    - {!Ir}: the IR itself — three-address instructions over virtual
      registers, basic blocks, functions, programs, def/use metadata,
      printing and validation.
    - {!Liveness}: backward dataflow liveness over both register classes.
    - {!Dominators}: dominator sets and natural-loop discovery.
    - {!Memmap}: data-memory layout (globals, stack) and big-endian byte
      access shared by the interpreter and both backends.
    - {!Interp}: the reference interpreter defining MIR semantics.
    - {!Verify}: the well-formedness verifier run between optimisation
      passes. *)

module Ir = Ir
module Liveness = Liveness
module Dominators = Dominators
module Memmap = Memmap
module Interp = Interp
module Verify = Verify
