(** Linear-scan register allocation on MIR (Poletto & Sarkar style),
    shared by both backends: the EPIC target allocates from the large
    configurable register file (paper default: 64 GPRs, 52 allocatable),
    the SA-110 baseline from ARM's 8 allocatable registers.

    The allocator is target-neutral: it maps virtual registers onto an
    arbitrary list of physical register numbers and spills the rest to
    frame slots ({!Epic_mir.Ir.LoadFrame} / [StoreFrame]).  Free registers
    are handed out FIFO, drawing fresh never-touched registers while the
    footprint stays proportional to actual pressure: eager reuse would
    manufacture WAW/WAR dependences that throttle the downstream EPIC list
    scheduler, while an unbounded footprint would inflate the callee-save
    set of small functions.

    Predicate virtual registers are not handled here — they are
    block-local by construction (if-conversion) and mapped to hardware
    predicate pairs by the EPIC code generator. *)

exception Alloc_error of string

type location =
  | Lreg of int   (** Physical register number. *)
  | Lslot of int  (** Frame byte offset of a spill slot. *)

type result = {
  fn : Epic_mir.Ir.func;
      (** Rewritten function: every GPR-class virtual register is now a
          physical register number from the pool; spill code is in place;
          [f_frame_bytes] includes the spill slots. *)
  param_locs : location option list;
      (** Where the prologue must put each incoming parameter ([None] for
          parameters the body never reads). *)
  used_regs : int list;
      (** Physical registers the body touches, for callee-saving. *)
  spill_count : int;  (** Virtual registers assigned a frame slot. *)
}

val allocate : Epic_mir.Ir.func -> pool:int list -> result
(** Allocate [fn] over the given physical registers.  The pool must have
    at least 5 entries (up to 3 are reserved as spill scratch when
    spilling becomes necessary).  The input function is not mutated.
    @raise Alloc_error when the pool is too small. *)
